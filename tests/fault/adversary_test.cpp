// Unit tests of the link-level mutators, applied to hand-built messages.

#include "fault/adversary.h"

#include <gtest/gtest.h>

namespace aoft::fault {
namespace {

sim::Message data_msg(cube::NodeId from, int stage, int iter,
                      std::vector<sim::Key> data) {
  sim::Message m;
  m.from = from;
  m.stage = stage;
  m.iter = iter;
  m.data = std::move(data);
  return m;
}

TEST(AdversaryTest, EmptyAdversaryPassesEverything) {
  Adversary a;
  auto m = data_msg(1, 0, 0, {5});
  EXPECT_TRUE(a.on_send(1, 2, m));
  EXPECT_EQ(a.touched(), 0u);
  EXPECT_EQ(m.data[0], 5);
}

TEST(AdversaryTest, CorruptDataHitsExactPointOnly) {
  Adversary a;
  a.add(corrupt_data(3, {2, 1}, 100));
  auto hit = data_msg(3, 2, 1, {5, 6});
  EXPECT_TRUE(a.on_send(3, 2, hit));
  EXPECT_EQ(hit.data, (std::vector<sim::Key>{105, 106}));
  EXPECT_EQ(a.touched(), 1u);

  auto wrong_stage = data_msg(3, 1, 1, {5});
  a.on_send(3, 2, wrong_stage);
  EXPECT_EQ(wrong_stage.data[0], 5);

  auto wrong_sender = data_msg(2, 2, 1, {5});
  a.on_send(2, 3, wrong_sender);
  EXPECT_EQ(wrong_sender.data[0], 5);
  EXPECT_EQ(a.touched(), 1u);
}

TEST(AdversaryTest, DropMessageDropsOnlyThePoint) {
  Adversary a;
  a.add(drop_message(1, {0, 0}));
  auto m1 = data_msg(1, 0, 0, {1});
  EXPECT_FALSE(a.on_send(1, 0, m1));
  auto m2 = data_msg(1, 1, 0, {1});
  EXPECT_TRUE(a.on_send(1, 0, m2));
  EXPECT_EQ(a.touched(), 1u);
}

TEST(AdversaryTest, DeadLinkKillsOneDirectionFromPointOn) {
  Adversary a;
  a.add(dead_link(4, 5, {1, 1}));
  auto before = data_msg(4, 0, 0, {1});
  EXPECT_TRUE(a.on_send(4, 5, before));
  auto at = data_msg(4, 1, 1, {1});
  EXPECT_FALSE(a.on_send(4, 5, at));
  auto later = data_msg(4, 2, 0, {1});
  EXPECT_FALSE(a.on_send(4, 5, later));
  auto other_dest = data_msg(4, 2, 0, {1});
  EXPECT_TRUE(a.on_send(4, 6, other_dest));
}

TEST(AdversaryTest, GossipEntryCorruptionLocatesWindow) {
  Adversary a;
  a.add(corrupt_gossip_entry(/*faulty=*/5, {1, 1}, /*entry=*/6, 10, 1));
  // Stage-1 window of node 5 is [4..7]; slice index of entry 6 is 2.
  auto m = data_msg(5, 1, 1, {});
  m.lbs = {40, 50, 60, 70};
  EXPECT_TRUE(a.on_send(5, 7, m));
  EXPECT_EQ(m.lbs, (std::vector<sim::Key>{40, 50, 70, 70}));
}

TEST(AdversaryTest, GossipCorruptionSkipsMessagesWithoutLbs) {
  Adversary a;
  a.add(corrupt_gossip_entry(5, {0, 0}, 5, 10, 1));
  auto m = data_msg(5, 1, 0, {1});
  EXPECT_TRUE(a.on_send(5, 4, m));
  EXPECT_EQ(a.touched(), 0u);
}

TEST(AdversaryTest, TwoFacedLiesOnlyToSelectedPeers) {
  Adversary a;
  a.add(two_faced_gossip(0, {0, 0}, 0, 5, 1,
                         [](cube::NodeId dest) { return dest == 1; }));
  auto to_victim = data_msg(0, 0, 0, {});
  to_victim.lbs = {100, 0};
  a.on_send(0, 1, to_victim);
  EXPECT_EQ(to_victim.lbs[0], 105);

  auto to_other = data_msg(0, 1, 0, {});
  to_other.lbs = {100, 0};
  a.on_send(0, 2, to_other);
  EXPECT_EQ(to_other.lbs[0], 100);
}

TEST(AdversaryTest, GarbleReplacesWholeSliceDeterministically) {
  Adversary a1, a2;
  a1.add(garble_lbs(2, {0, 0}, 99));
  a2.add(garble_lbs(2, {0, 0}, 99));
  auto m1 = data_msg(2, 1, 0, {});
  m1.lbs = {1, 2, 3, 4};
  auto m2 = m1;
  a1.on_send(2, 3, m1);
  a2.on_send(2, 3, m2);
  EXPECT_NE(m1.lbs, (std::vector<sim::Key>{1, 2, 3, 4}));
  EXPECT_EQ(m1.lbs, m2.lbs);  // same seed, same garbage
}

TEST(AdversaryTest, BlockGossipCorruptionHitsAllWords) {
  Adversary a;
  a.add(corrupt_gossip_entry(0, {0, 0}, 1, 7, /*m=*/2));
  auto m = data_msg(0, 0, 0, {});
  m.lbs = {10, 11, 20, 21};  // entries 0 and 1, two words each
  a.on_send(0, 1, m);
  EXPECT_EQ(m.lbs, (std::vector<sim::Key>{10, 11, 27, 28}));
}

TEST(AdversaryTest, MutatorsCompose) {
  Adversary a;
  a.add(corrupt_data(1, {0, 0}, 1));
  a.add(drop_message(1, {0, 0}));
  auto m = data_msg(1, 0, 0, {5});
  EXPECT_FALSE(a.on_send(1, 0, m));  // corrupted, then dropped
  EXPECT_EQ(a.touched(), 2u);
}

}  // namespace
}  // namespace aoft::fault
