#include "fault/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/adversary.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

TEST(RecoveryTest, CleanRunNeedsOneAttempt) {
  auto input = util::random_keys(1, 16);
  const auto run = run_sft_with_recovery(4, input, {}, nullptr, 3);
  EXPECT_EQ(run.attempts, 1);
  EXPECT_FALSE(run.recovered);
  EXPECT_TRUE(run.diagnoses.empty());
  EXPECT_EQ(sort::classify(run.last, input), sort::Outcome::kCorrect);
}

TEST(RecoveryTest, TransientFaultIsRecovered) {
  auto input = util::random_keys(2, 16);
  Adversary glitch;
  glitch.add(drop_message(6, {1, 1}));
  const auto run = run_sft_with_recovery(
      4, input, {},
      [&glitch](int attempt) -> sim::LinkInterceptor* {
        return attempt == 0 ? &glitch : nullptr;  // gone on retry
      },
      3);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_TRUE(run.recovered);
  ASSERT_EQ(run.diagnoses.size(), 1u);
  EXPECT_EQ(sort::classify(run.last, input), sort::Outcome::kCorrect);
}

TEST(RecoveryTest, PermanentProcessorFaultExhaustsAttempts) {
  auto input = util::random_keys(3, 16);
  sort::SftOptions base;
  base.node_faults[9].halt_at = StagePoint{2, 0};  // permanent
  const auto run = run_sft_with_recovery(4, input, base, nullptr, 3);
  EXPECT_EQ(run.attempts, 3);
  EXPECT_FALSE(run.recovered);
  EXPECT_TRUE(run.last.fail_stop());
  ASSERT_EQ(run.diagnoses.size(), 3u);
  const auto persistent = persistent_suspects(run);
  ASSERT_EQ(persistent.size(), 1u);
  EXPECT_EQ(persistent.front(), 9u);
}

TEST(RecoveryTest, PermanentLinkFaultYieldsStablePair) {
  auto input = util::random_keys(4, 16);
  Adversary dead;
  dead.add(dead_link(3, 2, {1, 0}));
  const auto run = run_sft_with_recovery(
      4, input, {},
      [&dead](int) -> sim::LinkInterceptor* { return &dead; }, 2);
  EXPECT_FALSE(run.recovered);
  const auto persistent = persistent_suspects(run);
  ASSERT_FALSE(persistent.empty());
  // The dead link's endpoints are the persistent candidates.
  for (auto s : persistent) EXPECT_TRUE(s == 2u || s == 3u) << s;
}

TEST(RecoveryTest, PersistentSuspectsOfDisjointDiagnosesIsEmpty) {
  RecoveryRun run;
  run.diagnoses.resize(2);
  run.diagnoses[0].suspects = {1, 2};
  run.diagnoses[1].suspects = {3};
  EXPECT_TRUE(persistent_suspects(run).empty());
}

TEST(RecoveryTest, NoDiagnosesMeansNoPersistentSuspects) {
  EXPECT_TRUE(persistent_suspects(RecoveryRun{}).empty());
}

TEST(RecoveryTest, InconclusiveDiagnosisDoesNotVacateIntersection) {
  // The middle attempt cascaded before localization could pin anyone: it
  // carries no exculpatory evidence and must not empty the intersection.
  std::vector<Diagnosis> diagnoses(3);
  diagnoses[0].suspects = {5};
  diagnoses[1].suspects = {};
  diagnoses[2].suspects = {5};
  const auto persistent = persistent_suspects(diagnoses);
  ASSERT_EQ(persistent.size(), 1u);
  EXPECT_EQ(persistent.front(), 5u);
}

TEST(RecoveryTest, AllInconclusiveYieldsEmpty) {
  std::vector<Diagnosis> diagnoses(3);  // all empty suspect lists
  EXPECT_TRUE(persistent_suspects(diagnoses).empty());
}

TEST(RecoveryTest, LinkPairSurvivesIntersection) {
  // Definition 3 case 2a: a dead link accuses both endpoints; the recurring
  // pair intersects to itself, not to an arbitrary pick.
  std::vector<Diagnosis> diagnoses(2);
  for (auto& d : diagnoses) {
    d.suspects = {2, 3};
    d.link_suspected = true;
  }
  const auto persistent = persistent_suspects(diagnoses);
  EXPECT_EQ(persistent, (std::vector<cube::NodeId>{2, 3}));
}

TEST(RecoveryTest, NonRecurringSuspectDropped) {
  std::vector<Diagnosis> diagnoses(2);
  diagnoses[0].suspects = {1, 2};
  diagnoses[1].suspects = {2, 4};
  const auto persistent = persistent_suspects(diagnoses);
  ASSERT_EQ(persistent.size(), 1u);
  EXPECT_EQ(persistent.front(), 2u);
}

}  // namespace
}  // namespace aoft::fault
