#include "fault/campaign.h"

#include <gtest/gtest.h>

#include "hypercube/subcube.h"

namespace aoft::fault {
namespace {

TEST(ScenarioTest, DrawIsReproducible) {
  CampaignConfig cfg;
  cfg.dim = 4;
  util::Rng r1(9), r2(9);
  for (FaultClass c : kAllFaultClasses) {
    const auto a = draw_scenario(c, cfg, r1);
    const auto b = draw_scenario(c, cfg, r2);
    EXPECT_EQ(a.faulty, b.faulty);
    EXPECT_EQ(a.point, b.point);
    EXPECT_EQ(a.delta, b.delta);
    EXPECT_EQ(a.input_seed, b.input_seed);
  }
}

TEST(ScenarioTest, DrawRespectsBounds) {
  CampaignConfig cfg;
  cfg.dim = 3;
  util::Rng rng(5);
  for (int rep = 0; rep < 50; ++rep)
    for (FaultClass c : kAllFaultClasses) {
      const auto s = draw_scenario(c, cfg, rng);
      EXPECT_LT(s.faulty, 8u);
      EXPECT_GE(s.point.stage, c == FaultClass::kSubstituteValue ? 1 : 0);
      EXPECT_LT(s.point.stage, 3);
      EXPECT_GE(s.point.iter, 0);
      EXPECT_LE(s.point.iter, s.point.stage);
      EXPECT_NE(s.delta, 0);
      if (c == FaultClass::kRelayTamper) {
        // The tampered entry lies within the faulty node's stage window.
        const auto window = cube::home_subcube(s.point.stage + 1, s.faulty);
        EXPECT_TRUE(window.contains(s.aux_node));
        EXPECT_NE(s.aux_node, s.faulty);
      }
    }
}

// Regression: kSubstituteValue/kReplayStale constrain the injection stage to
// >= 1, so on a dim-1 cube the old draw called next_below(0) — division by
// zero.  The draw must clamp and the campaign must skip unsupported classes.
TEST(ScenarioTest, Dim1DrawDoesNotDivideByZero) {
  CampaignConfig cfg;
  cfg.dim = 1;
  util::Rng rng(17);
  for (int rep = 0; rep < 100; ++rep)
    for (FaultClass c : kAllFaultClasses) {
      const auto s = draw_scenario(c, cfg, rng);
      EXPECT_LT(s.faulty, 2u);
      EXPECT_EQ(s.point.stage, 0) << to_string(c);
      EXPECT_EQ(s.point.iter, 0) << to_string(c);
    }
}

TEST(ScenarioTest, MinDimMatchesStageConstraints) {
  for (FaultClass c : kAllFaultClasses) {
    const bool needs_prior_stage =
        c == FaultClass::kSubstituteValue || c == FaultClass::kReplayStale;
    EXPECT_EQ(min_dim(c), needs_prior_stage ? 2 : 1) << to_string(c);
  }
}

TEST(CampaignTest, Dim1CampaignSkipsUnsupportedClassesAndCompletes) {
  CampaignConfig cfg;
  cfg.dim = 1;
  cfg.runs_per_class = 3;
  cfg.seed = 11;
  const auto summary = run_campaign(cfg);
  ASSERT_EQ(summary.sft.size(), std::size(kAllFaultClasses));
  for (const auto& tally : summary.sft) {
    EXPECT_EQ(tally.silent_wrong, 0) << to_string(tally.fclass);
    EXPECT_EQ(tally.runs + tally.dropped, cfg.runs_per_class)
        << to_string(tally.fclass);
    if (cfg.dim < min_dim(tally.fclass)) {
      EXPECT_EQ(tally.runs, 0) << to_string(tally.fclass);
      EXPECT_EQ(tally.attempts, 0) << to_string(tally.fclass);
      EXPECT_EQ(tally.dropped, cfg.runs_per_class) << to_string(tally.fclass);
    }
  }
}

TEST(CampaignTest, TalliesAccountForEveryAttemptAndDrop) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 5;
  cfg.seed = 99;
  const auto summary = run_campaign(cfg);
  for (const auto& tally : summary.sft) {
    EXPECT_EQ(tally.runs + tally.dropped, cfg.runs_per_class)
        << to_string(tally.fclass);
    // Every counted run consumed at least one attempt; redraws only add.
    EXPECT_GE(tally.attempts, tally.runs) << to_string(tally.fclass);
    EXPECT_LE(tally.attempts, cfg.runs_per_class * kMaxSlotAttempts)
        << to_string(tally.fclass);
  }
}

TEST(ScenarioTest, SftScenarioRunsAreDeterministic) {
  CampaignConfig cfg;
  cfg.dim = 3;
  util::Rng rng(31);
  const auto s = draw_scenario(FaultClass::kCorruptData, cfg, rng);
  const auto a = run_scenario_sft(s, cfg);
  const auto b = run_scenario_sft(s, cfg);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.detection_stage, b.detection_stage);
}

TEST(CampaignTest, SftNeverSilentlyWrong) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 4;
  cfg.seed = 2024;
  const auto summary = run_campaign(cfg);
  ASSERT_EQ(summary.sft.size(), std::size(kAllFaultClasses));
  for (const auto& tally : summary.sft) {
    EXPECT_EQ(tally.silent_wrong, 0) << to_string(tally.fclass);
    EXPECT_EQ(tally.runs, cfg.runs_per_class) << to_string(tally.fclass);
    EXPECT_EQ(tally.detected + tally.masked, tally.runs);
  }
}

TEST(CampaignTest, SnrShowsSilentCorruption) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 6;
  cfg.seed = 7;
  const auto summary = run_campaign(cfg);
  int snr_silent = 0, snr_runs = 0;
  for (const auto& tally : summary.snr) {
    snr_silent += tally.silent_wrong;
    snr_runs += tally.runs;
  }
  EXPECT_GT(snr_runs, 0);
  EXPECT_GT(snr_silent, 0) << "the unprotected baseline should corrupt silently";
}

TEST(CampaignTest, RecordsEveryRun) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 2;
  const auto summary = run_campaign(cfg);
  EXPECT_EQ(summary.runs.size(),
            std::size(kAllFaultClasses) * static_cast<std::size_t>(cfg.runs_per_class));
  for (const auto& r : summary.runs) EXPECT_TRUE(r.fault_exercised);
}

TEST(MultiCampaignTest, DrawsDistinctFaultyNodes) {
  CampaignConfig cfg;
  cfg.dim = 4;
  util::Rng rng(12);
  for (int rep = 0; rep < 20; ++rep) {
    const auto ms = draw_multi_scenario(3, cfg, rng);
    ASSERT_EQ(ms.faults.size(), 3u);
    EXPECT_NE(ms.faults[0].faulty, ms.faults[1].faulty);
    EXPECT_NE(ms.faults[0].faulty, ms.faults[2].faulty);
    EXPECT_NE(ms.faults[1].faulty, ms.faults[2].faulty);
    for (const auto& f : ms.faults)
      EXPECT_EQ(f.input_seed, ms.input_seed) << "shared input per multi-run";
  }
}

TEST(MultiCampaignTest, WithinBoundNeverSilentWrong) {
  CampaignConfig cfg;
  cfg.dim = 4;
  cfg.runs_per_class = 6;
  cfg.seed = 321;
  const auto tallies = run_multi_campaign(cfg, cfg.dim - 1);
  ASSERT_EQ(tallies.size(), 3u);
  for (const auto& t : tallies) {
    EXPECT_EQ(t.silent_wrong, 0) << "k=" << t.k;
    EXPECT_EQ(t.runs, cfg.runs_per_class) << "k=" << t.k;
    EXPECT_EQ(t.detected + t.masked, t.runs) << "k=" << t.k;
  }
}

TEST(MultiCampaignTest, MoreFaultsMoreDetections) {
  CampaignConfig cfg;
  cfg.dim = 4;
  cfg.runs_per_class = 10;
  cfg.seed = 654;
  const auto tallies = run_multi_campaign(cfg, 3);
  EXPECT_GE(tallies.back().detected, tallies.front().detected);
}

TEST(CampaignTest, DetectionStageIsPlausible) {
  CampaignConfig cfg;
  cfg.dim = 4;
  cfg.runs_per_class = 3;
  const auto summary = run_campaign(cfg);
  for (const auto& r : summary.runs) {
    if (r.outcome != sort::Outcome::kFailStop) continue;
    EXPECT_GE(r.detection_stage, r.scenario.point.stage)
        << "cannot detect before the fault occurs (" << to_string(r.scenario.fclass)
        << ")";
    EXPECT_LE(r.detection_stage, cfg.dim + 1);
  }
}

}  // namespace
}  // namespace aoft::fault
