// Transport-aware campaign identity (docs/PROTOCOL.md §10/§11): checkpoints
// record which backend produced their slots, a cross-transport resume is an
// identity mismatch (loud StoreStatus, never a silent mix), and the campaign
// engines refuse non-sim backends outright — their injection-exercised
// accounting reads interceptor counters that live in the worker's address
// space, which a forked shm child never shares back.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "fault/campaign.h"
#include "fault/campaign_store.h"
#include "util/bitvec.h"

namespace {

using namespace aoft;
using fault::CampaignConfig;
using fault::CampaignIdentity;
using fault::CheckpointData;
using fault::StoreStatus;

std::string fresh_path(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "aoft_ct_" + std::to_string(getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

CheckpointData empty_store(const CampaignIdentity& id) {
  CheckpointData data;
  data.identity = id;
  data.done = util::BitVec(fault::identity_total_slots(id));
  return data;
}

TEST(CampaignTransport, IdentityRoundTripsTheBackend) {
  CampaignConfig cfg;
  EXPECT_EQ(fault::identity_of(cfg).transport, 0) << "sim is transport 0";

  cfg.backend = transport::Backend::kShm;
  const auto id = fault::identity_of(cfg);
  EXPECT_EQ(id.transport, 1);
  EXPECT_EQ(fault::config_of(id).backend, transport::Backend::kShm);
}

TEST(CampaignTransport, CheckpointPersistsTheTransportByte) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 2;
  cfg.backend = transport::Backend::kShm;
  const auto path = fresh_path("ckpt");
  std::string err;
  ASSERT_TRUE(fault::save_checkpoint(path, empty_store(fault::identity_of(cfg)),
                                     &err))
      << err;
  CheckpointData loaded;
  ASSERT_EQ(fault::load_checkpoint(path, &loaded, &err), StoreStatus::kOk)
      << err;
  EXPECT_EQ(loaded.identity.transport, 1);
  EXPECT_EQ(loaded.identity, fault::identity_of(cfg));
}

TEST(CampaignTransport, CrossTransportIdentitiesAreDifferentCampaigns) {
  CampaignConfig cfg;
  const auto sim_id = fault::identity_of(cfg);
  cfg.backend = transport::Backend::kShm;
  const auto shm_id = fault::identity_of(cfg);
  EXPECT_FALSE(sim_id.same_campaign(shm_id))
      << "a sim checkpoint must never resume an shm campaign";
}

TEST(CampaignTransport, OutOfRangeTransportByteLoadsAsMalformed) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 2;
  auto id = fault::identity_of(cfg);
  id.transport = 7;  // no such backend
  const auto path = fresh_path("bad_transport");
  std::string err;
  ASSERT_TRUE(fault::save_checkpoint(path, empty_store(id), &err)) << err;
  CheckpointData loaded;
  EXPECT_EQ(fault::load_checkpoint(path, &loaded, &err),
            StoreStatus::kMalformed);
}

TEST(CampaignTransport, EnginesRefuseNonSimBackends) {
  CampaignConfig cfg;
  cfg.dim = 2;
  cfg.runs_per_class = 1;
  cfg.backend = transport::Backend::kShm;
  EXPECT_THROW(fault::run_campaign(cfg), std::invalid_argument);
  EXPECT_THROW(fault::run_multi_campaign(cfg, 1), std::invalid_argument);
  cfg.injection.mode = fault::InjectionMode::kIndependent;
  cfg.injection.p = 0.5;
  EXPECT_THROW(fault::run_soak_campaign(cfg), std::invalid_argument);
}

}  // namespace
