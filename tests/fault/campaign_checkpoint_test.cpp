// Durable-campaign suite: checkpoint save/load, resume bit-identity, every
// corruption shape a crash can produce, and shard merging.
//
// The contract (fault/campaign_store.h, docs/PROTOCOL.md §10): a resumed,
// sharded-and-merged, or stopped-and-continued campaign must reconstruct a
// CampaignSummary — and a slot stream — bit-identical to one uninterrupted
// serial run, and an unusable checkpoint must fail with a loud, specific
// StoreStatus rather than a crash or a silent partial resume.

#include "fault/campaign_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "util/atomic_file.h"

namespace aoft::fault {
namespace {

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 3;
  cfg.seed = 0x10cdcULL;
  cfg.jobs = 1;
  return cfg;
}

// A fresh temp path: any stale artifact from a previous run is removed so a
// test never accidentally "resumes" from it.
std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "aoft_ckpt_" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::string out, err;
  EXPECT_TRUE(util::read_file(path, &out, &err)) << path << ": " << err;
  return out;
}

void expect_same_tally(const ClassTally& a, const ClassTally& b) {
  EXPECT_EQ(a.fclass, b.fclass);
  EXPECT_EQ(a.runs, b.runs) << to_string(a.fclass);
  EXPECT_EQ(a.detected, b.detected) << to_string(a.fclass);
  EXPECT_EQ(a.masked, b.masked) << to_string(a.fclass);
  EXPECT_EQ(a.silent_wrong, b.silent_wrong) << to_string(a.fclass);
  EXPECT_EQ(a.attempts, b.attempts) << to_string(a.fclass);
  EXPECT_EQ(a.dropped, b.dropped) << to_string(a.fclass);
  EXPECT_EQ(a.multi_fired, b.multi_fired) << to_string(a.fclass);
}

void expect_same_summary(const CampaignSummary& a, const CampaignSummary& b) {
  ASSERT_EQ(a.sft.size(), b.sft.size());
  ASSERT_EQ(a.snr.size(), b.snr.size());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.slots_total, b.slots_total);
  EXPECT_EQ(a.slots_done, b.slots_done);
  for (std::size_t i = 0; i < a.sft.size(); ++i) {
    expect_same_tally(a.sft[i], b.sft[i]);
    expect_same_tally(a.snr[i], b.snr[i]);
  }
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& x = a.runs[i];
    const auto& y = b.runs[i];
    EXPECT_EQ(x.scenario.fclass, y.scenario.fclass) << "run " << i;
    EXPECT_EQ(x.scenario.faulty, y.scenario.faulty) << "run " << i;
    EXPECT_EQ(x.scenario.point, y.scenario.point) << "run " << i;
    EXPECT_EQ(x.scenario.delta, y.scenario.delta) << "run " << i;
    EXPECT_EQ(x.scenario.input_seed, y.scenario.input_seed) << "run " << i;
    EXPECT_EQ(x.scenario.aux_node, y.scenario.aux_node) << "run " << i;
    EXPECT_EQ(x.outcome, y.outcome) << "run " << i;
    EXPECT_EQ(x.fault_exercised, y.fault_exercised) << "run " << i;
    EXPECT_EQ(x.first_detector, y.first_detector) << "run " << i;
    EXPECT_EQ(x.detection_stage, y.detection_stage) << "run " << i;
    EXPECT_EQ(x.faults_fired, y.faults_fired) << "run " << i;
  }
}

// ---- save/load roundtrip ----------------------------------------------------

TEST(CampaignCheckpointTest, CompletedCampaignRoundTripsThroughTheFile) {
  auto cfg = small_config();
  cfg.checkpoint_path = fresh_path("roundtrip.ckp");
  const auto direct = run_campaign(cfg);

  CheckpointData data;
  std::string err;
  ASSERT_EQ(load_checkpoint(cfg.checkpoint_path, &data, &err),
            StoreStatus::kOk)
      << err;
  EXPECT_EQ(data.identity, identity_of(cfg));
  EXPECT_EQ(data.done.count(), data.records.size());
  EXPECT_EQ(data.records.size(), identity_total_slots(data.identity));

  // Aggregating the stored records reproduces the in-process summary exactly.
  expect_same_summary(direct, summarize_slots(cfg, data));
}

TEST(CampaignCheckpointTest, FindRecordLocatesEveryStoredSlot) {
  auto cfg = small_config();
  cfg.checkpoint_path = fresh_path("find.ckp");
  run_campaign(cfg);

  CheckpointData data;
  std::string err;
  ASSERT_EQ(load_checkpoint(cfg.checkpoint_path, &data, &err),
            StoreStatus::kOk)
      << err;
  for (const auto& rec : data.records) {
    const SlotRecord* found = find_record(data, rec.gslot);
    ASSERT_NE(found, nullptr) << "g=" << rec.gslot;
    EXPECT_EQ(*found, rec);
  }
  EXPECT_EQ(find_record(data, identity_total_slots(data.identity)), nullptr);
}

// ---- resume bit-identity ----------------------------------------------------

TEST(CampaignCheckpointTest, StopAndResumeIsBitIdenticalAtEveryKillPoint) {
  const auto oracle_cfg = small_config();
  const auto oracle = run_campaign(oracle_cfg);

  auto stream_cfg = oracle_cfg;
  stream_cfg.checkpoint_path = fresh_path("oracle.ckp");
  stream_cfg.stream_path = fresh_path("oracle.jsonl");
  run_campaign(stream_cfg);
  const std::string oracle_stream = slurp(stream_cfg.stream_path);
  const std::size_t total = oracle.slots_total;
  ASSERT_GT(total, 1u);

  for (const int stop_after :
       {1, 2, static_cast<int>(total / 2), static_cast<int>(total - 1)}) {
    auto cfg = small_config();
    cfg.checkpoint_path = fresh_path("resume.ckp");
    cfg.stream_path = fresh_path("resume.jsonl");
    cfg.resume = true;
    cfg.stop_after_slots = stop_after;
    const auto partial = run_campaign(cfg);
    EXPECT_EQ(partial.slots_done, static_cast<std::size_t>(stop_after));

    cfg.stop_after_slots = 0;
    const auto resumed = run_campaign(cfg);
    expect_same_summary(oracle, resumed);
    EXPECT_EQ(slurp(cfg.stream_path), oracle_stream)
        << "stream differs after kill at slot " << stop_after;
  }
}

TEST(CampaignCheckpointTest, ResumeIsJobCountInvariant) {
  const auto oracle = run_campaign(small_config());

  auto cfg = small_config();
  cfg.jobs = 4;
  cfg.checkpoint_path = fresh_path("jobs.ckp");
  cfg.resume = true;
  cfg.stop_after_slots = 5;
  run_campaign(cfg);
  cfg.stop_after_slots = 0;
  expect_same_summary(oracle, run_campaign(cfg));
}

TEST(CampaignCheckpointTest, CoarseCheckpointCadenceStillResumesExactly) {
  const auto oracle = run_campaign(small_config());

  // With checkpoint_every > 1 the stream can run ahead of the last saved
  // checkpoint; resume must rewind it to the checkpointed prefix and still
  // finish bit-identical.
  auto cfg = small_config();
  cfg.checkpoint_path = fresh_path("cadence.ckp");
  cfg.stream_path = fresh_path("cadence.jsonl");
  cfg.checkpoint_every = 7;
  cfg.resume = true;
  cfg.stop_after_slots = 10;
  run_campaign(cfg);
  cfg.stop_after_slots = 0;
  expect_same_summary(oracle, run_campaign(cfg));
}

TEST(CampaignCheckpointTest, ResumeOfACompleteCampaignRunsNothing) {
  auto cfg = small_config();
  cfg.checkpoint_path = fresh_path("complete.ckp");
  const auto first = run_campaign(cfg);
  cfg.resume = true;
  expect_same_summary(first, run_campaign(cfg));
}

// ---- corruption shapes ------------------------------------------------------

class CampaignCorruptionTest : public ::testing::Test {
 protected:
  // A valid completed checkpoint to mutilate, reloaded as raw bytes.
  void SetUp() override {
    cfg_ = small_config();
    cfg_.checkpoint_path = fresh_path("corrupt.ckp");
    run_campaign(cfg_);
    bytes_ = slurp(cfg_.checkpoint_path);
    ASSERT_GT(bytes_.size(), 32u);
  }

  StoreStatus load_mutated(const std::string& bytes, std::string* err) {
    std::string werr;
    EXPECT_TRUE(util::write_file_atomic(cfg_.checkpoint_path, bytes, &werr))
        << werr;
    CheckpointData data;
    return load_checkpoint(cfg_.checkpoint_path, &data, err);
  }

  CampaignConfig cfg_;
  std::string bytes_;
};

TEST_F(CampaignCorruptionTest, MissingFileIsItsOwnStatus) {
  CheckpointData data;
  std::string err;
  EXPECT_EQ(load_checkpoint(fresh_path("nonexistent.ckp"), &data, &err),
            StoreStatus::kMissing);
  EXPECT_FALSE(err.empty());
}

TEST_F(CampaignCorruptionTest, FileShorterThanFramingIsTruncated) {
  std::string err;
  EXPECT_EQ(load_mutated(bytes_.substr(0, 10), &err), StoreStatus::kTruncated);
  EXPECT_FALSE(err.empty());
}

TEST_F(CampaignCorruptionTest, ForeignFileIsBadMagic) {
  std::string mutated = bytes_;
  mutated.replace(0, 8, "NOTACKPT");
  std::string err;
  EXPECT_EQ(load_mutated(mutated, &err), StoreStatus::kBadMagic);
}

TEST_F(CampaignCorruptionTest, PayloadBitFlipIsDigestMismatch) {
  std::string mutated = bytes_;
  mutated[24] = static_cast<char>(mutated[24] ^ 0x40);
  std::string err;
  EXPECT_EQ(load_mutated(mutated, &err), StoreStatus::kDigestMismatch);
  EXPECT_FALSE(err.empty());
}

TEST_F(CampaignCorruptionTest, TornTailIsDigestMismatch) {
  // A crash mid-write leaves a prefix; the digest no longer covers the
  // payload, so the loss is loud even though the framing is intact.
  std::string err;
  EXPECT_EQ(load_mutated(bytes_.substr(0, bytes_.size() - 5), &err),
            StoreStatus::kDigestMismatch);
}

TEST_F(CampaignCorruptionTest, FutureVersionIsBadVersion) {
  // Rewrite the version field *and* recompute the digest: the file is
  // internally consistent, just from a format we do not speak.
  std::string mutated = bytes_;
  mutated[16] = 99;  // version u32 LE, first payload byte
  const std::uint64_t digest =
      util::fnv1a64(mutated.data() + 16, mutated.size() - 16);
  for (int i = 0; i < 8; ++i)
    mutated[8 + i] = static_cast<char>((digest >> (8 * i)) & 0xFF);
  std::string err;
  EXPECT_EQ(load_mutated(mutated, &err), StoreStatus::kBadVersion);
}

TEST_F(CampaignCorruptionTest, ResumeThrowsOnCorruptionWithoutForceRestart) {
  std::string mutated = bytes_;
  mutated[30] = static_cast<char>(mutated[30] ^ 0x01);
  std::string werr;
  ASSERT_TRUE(util::write_file_atomic(cfg_.checkpoint_path, mutated, &werr));

  auto cfg = cfg_;
  cfg.resume = true;
  try {
    run_campaign(cfg);
    FAIL() << "resume accepted a corrupted checkpoint";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.status(), StoreStatus::kDigestMismatch);
    EXPECT_FALSE(std::string(e.what()).empty());
  }
}

TEST_F(CampaignCorruptionTest, ForceRestartDiscardsTheCorruptFile) {
  std::string mutated = bytes_;
  mutated[30] = static_cast<char>(mutated[30] ^ 0x01);
  std::string werr;
  ASSERT_TRUE(util::write_file_atomic(cfg_.checkpoint_path, mutated, &werr));

  auto cfg = cfg_;
  cfg.resume = true;
  cfg.force_restart = true;
  const auto restarted = run_campaign(cfg);
  expect_same_summary(run_campaign(small_config()), restarted);

  // The rewritten checkpoint is healthy again.
  CheckpointData data;
  std::string err;
  EXPECT_EQ(load_checkpoint(cfg.checkpoint_path, &data, &err),
            StoreStatus::kOk)
      << err;
}

TEST_F(CampaignCorruptionTest, DifferentCampaignIsIdentityMismatch) {
  auto cfg = cfg_;
  cfg.seed += 1;
  cfg.resume = true;
  try {
    run_campaign(cfg);
    FAIL() << "resume accepted another campaign's checkpoint";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.status(), StoreStatus::kIdentityMismatch);
    // The operator escape hatch must be named in the message.
    EXPECT_NE(std::string(e.what()).find("force-restart"), std::string::npos);
  }
}

// ---- sharding and merge -----------------------------------------------------

TEST(CampaignShardTest, ShardsPartitionTheSlotSpace) {
  auto id = identity_of(small_config());
  id.shard_count = 3;
  std::vector<bool> owned(identity_total_slots(id), false);
  for (int i = 0; i < 3; ++i) {
    id.shard_index = i;
    for (const auto g : shard_slots(id)) {
      EXPECT_EQ(g % 3, static_cast<std::uint64_t>(i));
      EXPECT_FALSE(owned[g]) << "slot " << g << " owned twice";
      owned[g] = true;
    }
  }
  for (std::size_t g = 0; g < owned.size(); ++g)
    EXPECT_TRUE(owned[g]) << "slot " << g << " unowned";
}

TEST(CampaignShardTest, MergedShardsEqualTheUnshardedRun) {
  const auto oracle_cfg = small_config();
  const auto oracle = run_campaign(oracle_cfg);
  auto oracle_stream_cfg = oracle_cfg;
  oracle_stream_cfg.checkpoint_path = fresh_path("merge_oracle.ckp");
  oracle_stream_cfg.stream_path = fresh_path("merge_oracle.jsonl");
  run_campaign(oracle_stream_cfg);
  const std::string oracle_stream = slurp(oracle_stream_cfg.stream_path);

  std::vector<CheckpointData> parts(2);
  for (int i = 0; i < 2; ++i) {
    auto cfg = small_config();
    cfg.shard_index = i;
    cfg.shard_count = 2;
    cfg.checkpoint_path = fresh_path("shard" + std::to_string(i) + ".ckp");
    const auto part = run_campaign(cfg);
    EXPECT_LT(part.slots_done, oracle.slots_total);
    std::string err;
    ASSERT_EQ(load_checkpoint(cfg.checkpoint_path, &parts[i], &err),
              StoreStatus::kOk)
        << err;
  }

  CheckpointData merged;
  std::string err;
  ASSERT_EQ(merge_checkpoints(parts, &merged, &err), StoreStatus::kOk) << err;
  EXPECT_EQ(merged.identity.shard_index, 0);
  EXPECT_EQ(merged.identity.shard_count, 1);
  EXPECT_EQ(merged.records.size(), oracle.slots_total);

  expect_same_summary(oracle, summarize_slots(oracle_cfg, merged));

  // Re-serializing the merged records reproduces the unsharded stream
  // byte for byte.
  std::string merged_stream = stream_header(merged.identity);
  for (const auto& rec : merged.records)
    merged_stream += stream_line(merged.identity, rec);
  EXPECT_EQ(merged_stream, oracle_stream);
}

TEST(CampaignShardTest, MergeRefusesForeignAndDuplicateShards) {
  auto make_part = [](std::uint64_t seed, int index) {
    auto cfg = small_config();
    cfg.seed = seed;
    cfg.shard_index = index;
    cfg.shard_count = 2;
    cfg.checkpoint_path =
        fresh_path("refuse" + std::to_string(index) + ".ckp");
    run_campaign(cfg);
    CheckpointData data;
    std::string err;
    EXPECT_EQ(load_checkpoint(cfg.checkpoint_path, &data, &err),
              StoreStatus::kOk)
        << err;
    return data;
  };

  const auto part0 = make_part(small_config().seed, 0);
  const auto foreign = make_part(small_config().seed + 1, 1);
  CheckpointData merged;
  std::string err;
  EXPECT_EQ(merge_checkpoints({part0, foreign}, &merged, &err),
            StoreStatus::kIdentityMismatch);
  EXPECT_FALSE(err.empty());

  EXPECT_EQ(merge_checkpoints({part0, part0}, &merged, &err),
            StoreStatus::kMalformed);
}

}  // namespace
}  // namespace aoft::fault
