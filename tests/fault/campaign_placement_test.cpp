// Placement-invariance suite for the campaign engine.
//
// The contract (fault/campaign.h, util/topology.h, docs/PROTOCOL.md §9.4):
// worker placement is an efficiency knob.  Pinning workers to CPUs or NUMA
// nodes changes wall-clock only — the CampaignSummary, the merged metrics
// and the serialized trace (minus the worker.cpu / worker.node environment
// records) are bit-identical across every policy and every job count.

#include "fault/campaign.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_io.h"
#include "util/topology.h"

namespace aoft::fault {
namespace {

void expect_same_tally(const ClassTally& a, const ClassTally& b) {
  EXPECT_EQ(a.fclass, b.fclass);
  EXPECT_EQ(a.runs, b.runs) << to_string(a.fclass);
  EXPECT_EQ(a.detected, b.detected) << to_string(a.fclass);
  EXPECT_EQ(a.masked, b.masked) << to_string(a.fclass);
  EXPECT_EQ(a.silent_wrong, b.silent_wrong) << to_string(a.fclass);
  EXPECT_EQ(a.attempts, b.attempts) << to_string(a.fclass);
  EXPECT_EQ(a.dropped, b.dropped) << to_string(a.fclass);
}

void expect_same_summary(const CampaignSummary& a, const CampaignSummary& b) {
  ASSERT_EQ(a.sft.size(), b.sft.size());
  ASSERT_EQ(a.snr.size(), b.snr.size());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.sft.size(); ++i) {
    expect_same_tally(a.sft[i], b.sft[i]);
    expect_same_tally(a.snr[i], b.snr[i]);
  }
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].scenario.input_seed, b.runs[i].scenario.input_seed);
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
    EXPECT_EQ(a.runs[i].detection_stage, b.runs[i].detection_stage);
  }
}

CampaignConfig small_config(int jobs, const util::PlacementPolicy& placement) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 3;
  cfg.seed = 0xfeedULL;
  cfg.jobs = jobs;
  cfg.placement = placement;
  return cfg;
}

util::PlacementPolicy policy(const std::string& spec) {
  util::PlacementPolicy p;
  std::string err;
  EXPECT_TRUE(util::PlacementPolicy::parse(spec, &p, &err)) << err;
  return p;
}

// An explicit policy naming a CPU this process really owns.
util::PlacementPolicy first_cpu_policy() {
  const auto topo = util::HostTopology::discover();
  return policy(std::to_string(topo.cpus.front().cpu));
}

// Serialize the campaign trace exactly as aoft_sort_cli --trace would.
std::string traced_campaign(CampaignConfig cfg, obs::MetricsRegistry* metrics,
                            CampaignSummary* summary = nullptr) {
  obs::Tracer tracer;
  cfg.tracer = &tracer;
  cfg.metrics = metrics;
  auto s = run_campaign(cfg);
  if (summary != nullptr) *summary = std::move(s);
  obs::TraceMeta meta;
  meta.dim = cfg.dim;
  meta.seed = cfg.seed;
  meta.mode = "campaign";
  std::stringstream ss;
  obs::write_jsonl(ss, meta, tracer);
  return ss.str();
}

// Drop worker.cpu / worker.node lines and the header's event count — the
// same normalization trace_inspect --diff applies (PROTOCOL.md §9.4).
std::string strip_placement(const std::string& trace) {
  std::stringstream in(trace), out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"k\":\"worker.", 0) == 0) continue;
    if (line.rfind("{\"schema\":", 0) == 0) {
      const auto pos = line.rfind(",\"events\":");
      if (pos != std::string::npos) line.resize(pos);
    }
    out << line << '\n';
  }
  return out.str();
}

std::size_t count_prefix(const std::string& trace, const std::string& prefix) {
  std::stringstream in(trace);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line))
    if (line.rfind(prefix, 0) == 0) ++n;
  return n;
}

TEST(CampaignPlacementTest, SummaryIsPlacementAndJobCountInvariant) {
  const auto baseline = run_campaign(small_config(1, policy("none")));
  for (const auto& p :
       {policy("none"), policy("compact"), policy("scatter"),
        first_cpu_policy()}) {
    for (int jobs : {1, 2, 4}) {
      const auto summary = run_campaign(small_config(jobs, p));
      SCOPED_TRACE("pin=" + p.str() + " jobs=" + std::to_string(jobs));
      expect_same_summary(baseline, summary);
    }
  }
}

TEST(CampaignPlacementTest, TracesAreIdenticalAcrossPoliciesAfterFiltering) {
  obs::MetricsRegistry m0;
  const auto reference =
      strip_placement(traced_campaign(small_config(1, policy("none")), &m0));
  ASSERT_FALSE(reference.empty());
  for (const auto& p : {policy("none"), policy("compact"), policy("scatter"),
                        first_cpu_policy()}) {
    for (int jobs : {2, 4}) {
      obs::MetricsRegistry m;
      const auto trace =
          strip_placement(traced_campaign(small_config(jobs, p), &m));
      SCOPED_TRACE("pin=" + p.str() + " jobs=" + std::to_string(jobs));
      EXPECT_EQ(reference, trace);
    }
  }
}

TEST(CampaignPlacementTest, PinPlanIsRecordedAsWorkerEvents) {
  obs::MetricsRegistry metrics;
  const auto trace =
      traced_campaign(small_config(4, policy("compact")), &metrics);
  EXPECT_EQ(count_prefix(trace, "{\"k\":\"worker.cpu\""), 4u);
  EXPECT_EQ(count_prefix(trace, "{\"k\":\"worker.node\""), 4u);
  EXPECT_NE(trace.find("\"d\":\"compact\""), std::string::npos)
      << "policy name missing from worker.cpu detail";
  // Every planned pin on this host is a real CPU, so each worker counts.
  EXPECT_EQ(metrics.get(obs::Counter::kWorkersPinned), 4u);
}

TEST(CampaignPlacementTest, NoWorkerEventsWithoutAPolicyOrAPool) {
  obs::MetricsRegistry m1;
  const auto none = traced_campaign(small_config(4, policy("none")), &m1);
  EXPECT_EQ(count_prefix(none, "{\"k\":\"worker."), 0u);
  EXPECT_EQ(m1.get(obs::Counter::kWorkersPinned), 0u);
  // jobs == 1 never spins up a pool, so there is nothing to pin.
  obs::MetricsRegistry m2;
  const auto serial = traced_campaign(small_config(1, policy("compact")), &m2);
  EXPECT_EQ(count_prefix(serial, "{\"k\":\"worker."), 0u);
  EXPECT_EQ(m2.get(obs::Counter::kWorkersPinned), 0u);
}

TEST(CampaignPlacementTest, ExplicitUnavailableCpuFailsLoudly) {
  // CPU ids this high cannot be in the affinity mask (CPU_SETSIZE is 1024).
  const auto cfg = small_config(2, policy("1048576"));
  EXPECT_THROW(run_campaign(cfg), std::invalid_argument);
}

TEST(CampaignPlacementTest, PlacementDoesNotLeakIntoTheorem3Verdict) {
  for (const auto& p : {policy("compact"), policy("scatter")}) {
    const auto summary = run_campaign(small_config(0, p));
    for (const auto& tally : summary.sft)
      EXPECT_EQ(tally.silent_wrong, 0)
          << to_string(tally.fclass) << " pin=" << p.str();
  }
}

}  // namespace
}  // namespace aoft::fault
