// Localization: the true culprit must be among the suspects for every fault
// class, and link-evidenced classes identify it exactly.

#include "fault/localization.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/adversary.h"
#include "fault/campaign.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

bool suspects_contain(const Diagnosis& d, cube::NodeId node) {
  return std::find(d.suspects.begin(), d.suspects.end(), node) != d.suspects.end();
}

TEST(LocalizationTest, EmptyReportsMeanNoSuspects) {
  const auto d = localize({}, 4);
  EXPECT_TRUE(d.suspects.empty());
  EXPECT_FALSE(d.conclusive);
}

TEST(LocalizationTest, TimeoutAccusesThePartner) {
  std::vector<sim::ErrorReport> reports{
      {6, 2, 1, sim::ErrorSource::kTimeout, "no message"}};
  const auto d = localize(reports, 4);
  ASSERT_TRUE(d.conclusive);
  EXPECT_EQ(d.suspects.front(), 6u ^ 2u);
}

TEST(LocalizationTest, CascadedTimeoutsAreIgnored) {
  // First (protocol order) report at stage 1 iter 1 accuses 5^2=7; the later
  // cascade at stage 1 iter 0 and stage 2 must not dilute it.
  std::vector<sim::ErrorReport> reports{
      {4, 2, 0, sim::ErrorSource::kTimeout, "cascade"},
      {5, 1, 1, sim::ErrorSource::kTimeout, "primary"},
      {1, 1, 0, sim::ErrorSource::kTimeout, "cascade"},
  };
  const auto d = localize(reports, 4);
  ASSERT_TRUE(d.conclusive);
  EXPECT_EQ(d.suspects.front(), 5u ^ 2u);
}

TEST(LocalizationTest, IterationOrderWithinAStage) {
  // Iteration 2 precedes iteration 0 within stage 2.
  std::vector<sim::ErrorReport> reports{
      {0, 2, 0, sim::ErrorSource::kTimeout, "later"},
      {8, 2, 2, sim::ErrorSource::kTimeout, "earlier"},
  };
  const auto d = localize(reports, 4);
  ASSERT_TRUE(d.conclusive);
  EXPECT_EQ(d.suspects.front(), 8u ^ 4u);
}

TEST(LocalizationTest, StageEndPhiFAccusesTheInnerSubcube) {
  // A stage-1 Φ_F report from node 0 localizes the bad element to the dim-1
  // inner window {0, 1} it compared (reporters included: a consistent liar
  // checks and reports like everyone else).
  std::vector<sim::ErrorReport> reports{
      {0, 1, -1, sim::ErrorSource::kPhiF, "not complete"},
  };
  const auto d = localize(reports, 4);
  EXPECT_EQ(d.suspects.size(), 2u);
  EXPECT_TRUE(suspects_contain(d, 0));
  EXPECT_TRUE(suspects_contain(d, 1));
}

TEST(LocalizationTest, StageEndPhiPAccusesTheFullWindow) {
  std::vector<sim::ErrorReport> reports{
      {0, 1, -1, sim::ErrorSource::kPhiP, "not bitonic"},
  };
  const auto d = localize(reports, 4);
  EXPECT_EQ(d.suspects.size(), 4u);  // SC_2 = {0..3}
}

TEST(LocalizationTest, IntersectingInnerWindowsSharpenTheSuspects) {
  // Φ_F reporters from the upper half + Φ_P reporters from the lower half:
  // the upper inner window collects both kinds of votes and wins.
  std::vector<sim::ErrorReport> reports{
      {4, 2, -1, sim::ErrorSource::kPhiF, "not complete"},
      {5, 2, -1, sim::ErrorSource::kPhiF, "not complete"},
      {0, 2, -1, sim::ErrorSource::kPhiP, "not bitonic"},
      {1, 2, -1, sim::ErrorSource::kPhiP, "not bitonic"},
  };
  const auto d = localize(reports, 4);
  EXPECT_EQ(d.suspects.size(), 4u);  // SC_2(4) = {4..7}
  EXPECT_TRUE(suspects_contain(d, 4));
  EXPECT_TRUE(suspects_contain(d, 7));
  EXPECT_FALSE(suspects_contain(d, 0));
}

// --- end-to-end localization per fault class --------------------------------

Diagnosis diagnose_scenario(const Scenario& s) {
  CampaignConfig cfg;
  cfg.dim = s.dim;
  const auto result = run_scenario_sft(s, cfg);
  EXPECT_EQ(result.outcome, sort::Outcome::kFailStop);
  // Re-run to fetch the raw reports (run_scenario_sft returns outcomes only).
  auto input = util::random_keys(s.input_seed, (std::size_t{1} << s.dim) * s.block);
  Adversary adversary;
  sort::SftOptions opts;
  opts.block = s.block;
  NodeFaultMap nf;
  switch (s.fclass) {
    case FaultClass::kHaltNode: nf[s.faulty].halt_at = s.point; break;
    case FaultClass::kDropMessage:
      adversary.add(drop_message(s.faulty, s.point));
      opts.interceptor = &adversary;
      break;
    case FaultClass::kSubstituteValue:
      nf[s.faulty].substitute_at = s.point;
      nf[s.faulty].substitute_value = 987654321;
      break;
    case FaultClass::kGarbleLbs:
      adversary.add(garble_lbs(s.faulty, s.point, 5));
      opts.interceptor = &adversary;
      break;
    default: ADD_FAILURE() << "unsupported class in this helper"; break;
  }
  opts.node_faults = std::move(nf);
  auto run = sort::run_sft(s.dim, input, opts);
  return localize(run.errors, s.dim);
}

Scenario base_scenario(FaultClass fclass, cube::NodeId faulty, StagePoint point) {
  Scenario s;
  s.fclass = fclass;
  s.dim = 4;
  s.block = 1;
  s.faulty = faulty;
  s.point = point;
  s.input_seed = 321;
  return s;
}

TEST(LocalizationEndToEndTest, HaltedNodeIsIdentified) {
  const auto d = diagnose_scenario(
      base_scenario(FaultClass::kHaltNode, 6, StagePoint{2, 1}));
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_TRUE(suspects_contain(d, 6));
  EXPECT_TRUE(d.conclusive);
}

TEST(LocalizationEndToEndTest, DroppedMessageLocalizesToTheLink) {
  // Both endpoints of the dead exchange time out and accuse each other —
  // the paper's Definition 3 case 2a: a link fault between healthy nodes is
  // only attributable to the pair (the paper then assigns arbitrarily).
  const auto d = diagnose_scenario(
      base_scenario(FaultClass::kDropMessage, 9, StagePoint{1, 0}));
  ASSERT_EQ(d.suspects.size(), 2u);
  EXPECT_TRUE(suspects_contain(d, 9));
  EXPECT_TRUE(suspects_contain(d, 9 ^ 1));
  EXPECT_TRUE(d.link_suspected);
}

TEST(LocalizationEndToEndTest, GarbledGossipSenderIsIdentified) {
  const auto d = diagnose_scenario(
      base_scenario(FaultClass::kGarbleLbs, 3, StagePoint{1, 1}));
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_TRUE(suspects_contain(d, 3));
}

TEST(LocalizationEndToEndTest, ConsistentLiarIsAmongWindowSuspects) {
  // A consistent liar is only localizable to the inner subcube whose Φ_F
  // comparisons fail — the suspects must contain it and stay within that
  // subcube.
  const auto d = diagnose_scenario(
      base_scenario(FaultClass::kSubstituteValue, 5, StagePoint{2, 0}));
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_TRUE(suspects_contain(d, 5));
  const auto inner = cube::home_subcube(2, 5);
  for (auto s : d.suspects) EXPECT_TRUE(inner.contains(s)) << s;
}

TEST(LocalizationEndToEndTest, EveryDetectedCampaignRunYieldsSuspects) {
  // Soundness across the whole single-fault space: whenever S_FT fail-stops,
  // the diagnosis must produce a non-empty suspect set (an alarm that cannot
  // be attributed at all would be useless to the reconfiguration layer).
  CampaignConfig cfg;
  cfg.dim = 4;
  cfg.runs_per_class = 3;
  cfg.seed = 5150;
  const auto summary = run_campaign(cfg);
  int checked = 0;
  for (const auto& r : summary.runs) {
    if (r.outcome != sort::Outcome::kFailStop) continue;
    // Reconstruct the reports by re-running the recorded scenario.
    auto input = util::random_keys(r.scenario.input_seed,
                                   (std::size_t{1} << r.scenario.dim) *
                                       r.scenario.block);
    // run_scenario_sft discards reports; use the class helpers where we can.
    // Halt faults are representative and cheap to reconstruct:
    if (r.scenario.fclass != FaultClass::kHaltNode) continue;
    sort::SftOptions opts;
    opts.node_faults[r.scenario.faulty].halt_at = r.scenario.point;
    auto run = sort::run_sft(r.scenario.dim, input, opts);
    const auto d = localize(run.errors, r.scenario.dim);
    EXPECT_FALSE(d.suspects.empty());
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(LocalizationEndToEndTest, RandomHaltsAreAlwaysLocalized) {
  util::Rng rng(2718);
  for (int rep = 0; rep < 12; ++rep) {
    const auto faulty = static_cast<cube::NodeId>(rng.next_below(16));
    const int stage = 1 + static_cast<int>(rng.next_below(3));
    const int iter = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(stage + 1)));
    const auto d = diagnose_scenario(
        base_scenario(FaultClass::kHaltNode, faulty, StagePoint{stage, iter}));
    EXPECT_TRUE(suspects_contain(d, faulty))
        << "faulty=" << faulty << " stage=" << stage << " iter=" << iter;
  }
}

}  // namespace
}  // namespace aoft::fault
