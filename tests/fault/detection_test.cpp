// Per-class detection tests: for every adversary class the paper's fault
// model covers, S_FT must end fail-stop (or correct, if the deviation was
// harmless) — never silently wrong — and the expected predicate fires.

#include <gtest/gtest.h>

#include "fault/adversary.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

using sort::Outcome;

std::vector<sim::Key> input16() { return util::random_keys(77, 16); }

sort::SortRun run_with(Adversary* adversary, NodeFaultMap faults,
                       sort::SftOptions opts = {}) {
  opts.interceptor = adversary;
  opts.node_faults = std::move(faults);
  auto in = input16();
  return sort::run_sft(4, in, opts);
}

TEST(DetectionTest, OperandCorruptionAtStageStartCaughtImmediately) {
  Adversary a;
  a.add(corrupt_data(5, {2, 2}, 1000));  // passive operand at j == i
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
  // The j == i gossip/operand cross-check convicts on the spot.
  EXPECT_EQ(run.errors.front().source, sim::ErrorSource::kPhiC);
  EXPECT_EQ(run.errors.front().stage, 2);
}

TEST(DetectionTest, ReplyCorruptionCaughtByPairCheck) {
  Adversary a;
  // Corrupt the active node's (a, b) reply mid-stage.
  a.add(corrupt_data(4, {2, 1}, 999));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
  EXPECT_EQ(run.errors.front().source, sim::ErrorSource::kPhiF);
}

TEST(DetectionTest, UniformGossipLieCaught) {
  Adversary a;
  a.add(corrupt_gossip_entry(6, {1, 1}, 6, 12345, 1));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
  EXPECT_NE(sort::classify(run, input16()), Outcome::kSilentWrong);
}

TEST(DetectionTest, TwoFacedGossipConvictedByConsistency) {
  Adversary a;
  // Node 2 lies to odd-labelled peers about node 3's element — an entry the
  // victims already hold a true copy of (node 3 holds its own), so the two
  // vertex-disjoint copies meet and disagree: only Φ_C can convict this.
  a.add(two_faced_gossip(2, {2, 0}, 3, 777, 1,
                         [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
  bool phi_c_fired = false;
  for (const auto& e : run.errors)
    phi_c_fired |= e.source == sim::ErrorSource::kPhiC;
  EXPECT_TRUE(phi_c_fired);
}

TEST(DetectionTest, RelayTamperingCaught) {
  Adversary a;
  // Node 3 corrupts the copy of node 1's element it relays from stage 1 on.
  a.add(corrupt_gossip_entry(3, {1, 0}, 1, 55, 1));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
}

TEST(DetectionTest, DroppedMessageDetectedAsAbsence) {
  Adversary a;
  a.add(drop_message(7, {1, 0}));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
  bool timeout_fired = false;
  for (const auto& e : run.errors)
    timeout_fired |= e.source == sim::ErrorSource::kTimeout;
  EXPECT_TRUE(timeout_fired);
}

TEST(DetectionTest, DeadLinkDetected) {
  Adversary a;
  a.add(dead_link(7, 5, {1, 1}));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
}

TEST(DetectionTest, GarbledGossipCaught) {
  Adversary a;
  a.add(garble_lbs(1, {1, 1}, 4242));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
}

TEST(DetectionTest, StaleReplayCaught) {
  Adversary a;
  // Record node 4's gossip at (2,2) and replay the stale copy at (2,1)/(2,0):
  // the replayed slice claims coverage it does not honestly carry.
  a.add(replay_stale_lbs(4, {2, 2}));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
  EXPECT_NE(sort::classify(run, input16()), Outcome::kSilentWrong);
}

TEST(DetectionTest, HaltedNodeDetectedByPeers) {
  NodeFaultMap nf;
  nf[6].halt_at = StagePoint{2, 1};
  auto run = run_with(nullptr, std::move(nf));
  ASSERT_TRUE(run.fail_stop());
  bool timeout_fired = false;
  for (const auto& e : run.errors)
    timeout_fired |= e.source == sim::ErrorSource::kTimeout;
  EXPECT_TRUE(timeout_fired);
}

TEST(DetectionTest, InvertedDirectionCaught) {
  NodeFaultMap nf;
  nf[5].invert_direction_from = StagePoint{1, 1};
  auto run = run_with(nullptr, std::move(nf));
  ASSERT_TRUE(run.fail_stop());
  // The very fault S_NR silently accepts (see snr_test.cpp).
}

TEST(DetectionTest, ConsistentLiarCaughtByFeasibility) {
  NodeFaultMap nf;
  nf[4].substitute_at = StagePoint{2, 0};
  nf[4].substitute_value = 999999999;
  auto run = run_with(nullptr, std::move(nf));
  ASSERT_TRUE(run.fail_stop());
  bool phi_pf_fired = false;
  for (const auto& e : run.errors)
    phi_pf_fired |= e.source == sim::ErrorSource::kPhiF ||
                    e.source == sim::ErrorSource::kPhiP;
  EXPECT_TRUE(phi_pf_fired);
}

TEST(DetectionTest, LateStageFaultCaughtByFinalVerification) {
  // A lie in the very last stage can only be caught by the final
  // pure-exchange round — the reason that round exists.
  NodeFaultMap nf;
  nf[9].substitute_at = StagePoint{3, 0};
  nf[9].substitute_value = -888888888;
  auto run = run_with(nullptr, std::move(nf));
  ASSERT_TRUE(run.fail_stop());
}

TEST(DetectionTest, CorruptionInFinalRoundGossipCaught) {
  Adversary a;
  // stage index n (= 4 here) marks the final verification round.
  a.add(corrupt_gossip_entry(2, {4, 3}, 2, 31337, 1));
  auto run = run_with(&a, {});
  ASSERT_TRUE(run.fail_stop());
}

// --- ablations: which predicate is load-bearing for which class -------------

TEST(DetectionAblationTest, WithoutConsistencyTwoFacedStillNeverSilentWrong) {
  Adversary a;
  a.add(two_faced_gossip(2, {1, 1}, 2, 777, 1,
                         [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
  sort::SftOptions opts;
  opts.check_consistency = false;
  opts.interceptor = &a;
  auto in = input16();
  auto run = sort::run_sft(4, in, opts);
  EXPECT_NE(sort::classify(run, in), Outcome::kSilentWrong);
}

TEST(DetectionAblationTest, ExchangeCheckOffDefersToStageChecks) {
  Adversary a;
  a.add(corrupt_data(4, {1, 1}, 999));
  sort::SftOptions opts;
  opts.check_exchange = false;
  opts.interceptor = &a;
  auto in = input16();
  auto run = sort::run_sft(4, in, opts);
  // Detection is delayed past the exchange itself but must still happen.
  EXPECT_EQ(sort::classify(run, in), Outcome::kFailStop);
}

TEST(DetectionAblationTest, AllChecksOffIsSilentlyWrong) {
  // Sanity check that the faults in this file are actually harmful: with the
  // whole constraint predicate disabled, S_FT degenerates to S_NR behaviour.
  NodeFaultMap nf;
  nf[5].invert_direction_from = StagePoint{1, 1};
  sort::SftOptions opts;
  opts.check_progress = false;
  opts.check_feasibility = false;
  opts.check_consistency = false;
  opts.check_exchange = false;
  opts.node_faults = nf;
  auto in = input16();
  auto run = sort::run_sft(4, in, opts);
  EXPECT_EQ(sort::classify(run, in), Outcome::kSilentWrong);
}

}  // namespace
}  // namespace aoft::fault
