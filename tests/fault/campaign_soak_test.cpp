// Probabilistic soak campaigns (InjectionMode::kIndependent / kRunLength).
//
// The contract (fault/campaign.h, docs/PROTOCOL.md §10.3): a soak campaign
// is a pure function of (seed, mode, params) at every job count; the
// Theorem 3 silent-wrong == 0 assertion applies only while the faulty-node
// count stays within the <= n-1 resilience bound, and anything beyond the
// bound is recorded (with the output's dislocation) rather than counted as a
// violation.

#include "fault/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "fault/campaign_store.h"
#include "util/atomic_file.h"

namespace aoft::fault {
namespace {

CampaignConfig soak_config(InjectionMode mode, int jobs = 1) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 8;  // soak: total slots, there is no class axis
  cfg.seed = 0x50a7ULL;
  cfg.jobs = jobs;
  cfg.injection.mode = mode;
  cfg.injection.p = 0.05;
  cfg.injection.k = 2;
  return cfg;
}

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "aoft_soak_" + name;
  std::remove(path.c_str());
  return path;
}

void expect_same_tally(const SoakTally& a, const SoakTally& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.silent_wrong_in_bound, b.silent_wrong_in_bound);
  EXPECT_EQ(a.silent_wrong_beyond, b.silent_wrong_beyond);
  EXPECT_EQ(a.beyond_bound_runs, b.beyond_bound_runs);
  EXPECT_EQ(a.multi_fired, b.multi_fired);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.max_dislocation, b.max_dislocation);
  EXPECT_EQ(a.slots_total, b.slots_total);
  EXPECT_EQ(a.slots_done, b.slots_done);
}

TEST(CampaignSoakTest, SameSeedTwiceIsByteIdentical) {
  for (const auto mode :
       {InjectionMode::kIndependent, InjectionMode::kRunLength}) {
    const auto cfg = soak_config(mode);
    expect_same_tally(run_soak_campaign(cfg), run_soak_campaign(cfg));
  }
}

TEST(CampaignSoakTest, ParallelEqualsSerialExactly) {
  for (const auto mode :
       {InjectionMode::kIndependent, InjectionMode::kRunLength}) {
    expect_same_tally(run_soak_campaign(soak_config(mode, 1)),
                      run_soak_campaign(soak_config(mode, 4)));
  }
}

TEST(CampaignSoakTest, DifferentSeedsDrawDifferentArrivals) {
  auto a_cfg = soak_config(InjectionMode::kIndependent);
  auto b_cfg = a_cfg;
  b_cfg.seed += 1;
  const auto a = run_soak_campaign(a_cfg);
  const auto b = run_soak_campaign(b_cfg);
  EXPECT_TRUE(a.faults_fired != b.faults_fired ||
              a.detected != b.detected || a.attempts != b.attempts)
      << "seed change never reached the arrival draws";
}

TEST(CampaignSoakTest, OutcomeAccountingIsComplete) {
  for (const auto mode :
       {InjectionMode::kIndependent, InjectionMode::kRunLength}) {
    const auto cfg = soak_config(mode);
    const auto t = run_soak_campaign(cfg);
    EXPECT_EQ(t.slots_total, static_cast<std::size_t>(cfg.runs_per_class));
    EXPECT_EQ(t.slots_done, t.slots_total);
    EXPECT_EQ(t.runs + t.dropped, cfg.runs_per_class);
    EXPECT_EQ(t.runs, t.detected + t.masked + t.silent_wrong_in_bound +
                          t.silent_wrong_beyond);
    EXPECT_GE(t.attempts, t.runs);
    EXPECT_GE(t.faults_fired, static_cast<long long>(t.runs));
  }
}

TEST(CampaignSoakTest, RunLengthStaysWithinTheResilienceBound) {
  // kRunLength crashes exactly one drawn node, so no run can exceed the
  // <= n-1 bound and the Theorem 3 gate applies to every slot.
  const auto t = run_soak_campaign(soak_config(InjectionMode::kRunLength));
  EXPECT_GT(t.runs, 0);
  EXPECT_EQ(t.beyond_bound_runs, 0);
  EXPECT_EQ(t.silent_wrong_beyond, 0);
  EXPECT_EQ(t.silent_wrong_in_bound, 0) << "Theorem 3 violated under soak";
  EXPECT_EQ(t.max_dislocation, 0u);
}

TEST(CampaignSoakTest, DenseIndependentArrivalsFireMultipleTimes) {
  auto cfg = soak_config(InjectionMode::kIndependent);
  cfg.injection.p = 0.3;  // dense enough that some run corrupts > 1 message
  const auto t = run_soak_campaign(cfg);
  EXPECT_GT(t.runs, 0);
  EXPECT_GT(t.multi_fired, 0) << "p=0.3 never fired twice in one run";
  EXPECT_GT(t.faults_fired, static_cast<long long>(t.runs));
}

TEST(CampaignSoakTest, InBoundSilentWrongIsAlwaysZero) {
  for (const double p : {0.01, 0.05, 0.2}) {
    auto cfg = soak_config(InjectionMode::kIndependent);
    cfg.injection.p = p;
    const auto t = run_soak_campaign(cfg);
    EXPECT_EQ(t.silent_wrong_in_bound, 0) << "p=" << p;
    // Beyond-bound runs are the only place a dislocation may be recorded.
    if (t.silent_wrong_beyond == 0) EXPECT_EQ(t.max_dislocation, 0u);
  }
}

TEST(CampaignSoakTest, SoakResumeIsBitIdentical) {
  const auto oracle = run_soak_campaign(soak_config(InjectionMode::kIndependent));

  auto oracle_stream_cfg = soak_config(InjectionMode::kIndependent);
  oracle_stream_cfg.checkpoint_path = fresh_path("oracle.ckp");
  oracle_stream_cfg.stream_path = fresh_path("oracle.jsonl");
  run_soak_campaign(oracle_stream_cfg);
  std::string oracle_stream, err;
  ASSERT_TRUE(
      util::read_file(oracle_stream_cfg.stream_path, &oracle_stream, &err))
      << err;

  auto cfg = soak_config(InjectionMode::kIndependent);
  cfg.checkpoint_path = fresh_path("resume.ckp");
  cfg.stream_path = fresh_path("resume.jsonl");
  cfg.resume = true;
  cfg.stop_after_slots = 3;
  const auto partial = run_soak_campaign(cfg);
  EXPECT_EQ(partial.slots_done, 3u);

  cfg.stop_after_slots = 0;
  expect_same_tally(oracle, run_soak_campaign(cfg));
  std::string resumed_stream;
  ASSERT_TRUE(util::read_file(cfg.stream_path, &resumed_stream, &err)) << err;
  EXPECT_EQ(resumed_stream, oracle_stream);
}

TEST(CampaignSoakTest, SoakShardsMergeToTheUnshardedTally) {
  const auto oracle_cfg = soak_config(InjectionMode::kRunLength);
  const auto oracle = run_soak_campaign(oracle_cfg);

  std::vector<CheckpointData> parts(2);
  for (int i = 0; i < 2; ++i) {
    auto cfg = oracle_cfg;
    cfg.shard_index = i;
    cfg.shard_count = 2;
    cfg.checkpoint_path = fresh_path("shard" + std::to_string(i) + ".ckp");
    run_soak_campaign(cfg);
    std::string err;
    ASSERT_EQ(load_checkpoint(cfg.checkpoint_path, &parts[i], &err),
              StoreStatus::kOk)
        << err;
  }
  CheckpointData merged;
  std::string err;
  ASSERT_EQ(merge_checkpoints(parts, &merged, &err), StoreStatus::kOk) << err;
  expect_same_tally(oracle, summarize_soak(oracle_cfg, merged));
}

// ---- max_dislocation --------------------------------------------------------

TEST(MaxDislocationTest, SortedInputIsZero) {
  const std::vector<sim::Key> sorted = {1, 2, 3, 4, 5};
  EXPECT_EQ(max_dislocation(sorted), 0u);
  EXPECT_EQ(max_dislocation(std::span<const sim::Key>{}), 0u);
}

TEST(MaxDislocationTest, AdjacentSwapIsOne) {
  const std::vector<sim::Key> keys = {1, 3, 2, 4};
  EXPECT_EQ(max_dislocation(keys), 1u);
}

TEST(MaxDislocationTest, ReversedInputIsLengthMinusOne) {
  const std::vector<sim::Key> keys = {5, 4, 3, 2, 1};
  EXPECT_EQ(max_dislocation(keys), 4u);
}

TEST(MaxDislocationTest, OneFarElementDominates) {
  // 9 belongs at the end: displaced by 4; everyone else shifts by 1.
  const std::vector<sim::Key> keys = {9, 1, 2, 3, 4};
  EXPECT_EQ(max_dislocation(keys), 4u);
}

}  // namespace
}  // namespace aoft::fault
