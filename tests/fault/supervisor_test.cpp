#include "fault/supervisor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/adversary.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

TEST(SupervisorTest, CleanRunIsOneInitialAttempt) {
  auto input = util::random_keys(11, 16);
  const auto run = run_supervised_sort(4, input, {});
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_EQ(run.attempts, 1);
  EXPECT_EQ(run.final_rung, Rung::kInitial);
  EXPECT_FALSE(run.recovered);
  EXPECT_TRUE(run.retired.empty());
  ASSERT_EQ(run.events.size(), 1u);
  EXPECT_EQ(run.events[0].rung, Rung::kInitial);
  EXPECT_EQ(run.events[0].resume_stage, 0);
  EXPECT_EQ(sort::classify(run.last, input), sort::Outcome::kCorrect);
}

TEST(SupervisorTest, TransientMidSortFaultRecoveredByRollback) {
  auto input = util::random_keys(12, 16);
  Adversary glitch;
  glitch.add(drop_message(6, {2, 1}));  // mid-sort: boundaries 0 and 1 done
  const auto run = run_supervised_sort(
      4, input, {}, {},
      [&glitch](int attempt) -> sim::LinkInterceptor* {
        return attempt == 0 ? &glitch : nullptr;  // transient
      });
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_TRUE(run.recovered);
  EXPECT_EQ(run.final_rung, Rung::kRollback);
  EXPECT_GT(run.stages_salvaged, 0);
  ASSERT_EQ(run.events.size(), 2u);
  EXPECT_EQ(run.events[1].rung, Rung::kRollback);
  EXPECT_GT(run.events[1].resume_stage, 0);
  EXPECT_TRUE(run.retired.empty());  // transient: nobody loses their seat
}

TEST(SupervisorTest, EarlyFaultFallsBackToFullRestart) {
  auto input = util::random_keys(13, 16);
  Adversary glitch;
  glitch.add(drop_message(6, {0, 0}));  // before any certified boundary
  const auto run = run_supervised_sort(
      4, input, {}, {},
      [&glitch](int attempt) -> sim::LinkInterceptor* {
        return attempt == 0 ? &glitch : nullptr;
      });
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.final_rung, Rung::kRestart);
  EXPECT_EQ(run.stages_salvaged, 0);
}

TEST(SupervisorTest, PermanentProcessorFaultTriggersReconfiguration) {
  auto input = util::random_keys(14, 16);
  sort::SftOptions base;
  base.node_faults[9].halt_at = StagePoint{2, 0};  // permanent
  const auto run = run_supervised_sort(4, input, base);
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_TRUE(run.recovered);
  EXPECT_EQ(run.final_rung, Rung::kSubcube);
  ASSERT_EQ(run.retired.size(), 1u);
  EXPECT_EQ(run.retired.front(), 9u);
  // The successful attempt ran on the collapsed cube with doubled blocks.
  const auto& last = run.events.back();
  EXPECT_EQ(last.config_dim, 3);
  EXPECT_EQ(last.block, 2u);
  EXPECT_EQ(sort::classify(run.last, input), sort::Outcome::kCorrect);
}

TEST(SupervisorTest, PermanentLinkFaultRetiresBothEndpoints) {
  auto input = util::random_keys(15, 16);
  Adversary dead;
  dead.add(dead_link(3, 2, {1, 0}));  // permanent: installed on every attempt
  const auto run = run_supervised_sort(
      4, input, {}, {},
      [&dead](int) -> sim::LinkInterceptor* { return &dead; });
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_EQ(run.final_rung, Rung::kSubcube);
  // Definition 3 case 2a: the pair cannot be split, so both endpoints go.
  for (auto s : run.retired) EXPECT_TRUE(s == 2u || s == 3u) << s;
  EXPECT_FALSE(run.retired.empty());
}

TEST(SupervisorTest, ReconfigurationDisabledEndsInHostSort) {
  auto input = util::random_keys(16, 16);
  sort::SftOptions base;
  base.node_faults[5].halt_at = StagePoint{1, 0};  // permanent
  RecoveryPolicy policy;
  policy.reconfigure = false;
  policy.attempts_per_config = 2;
  policy.max_attempts = 2;
  const auto run = run_supervised_sort(4, input, base, policy);
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_TRUE(run.recovered);
  EXPECT_EQ(run.final_rung, Rung::kHostSort);
  EXPECT_EQ(run.attempts, 3);  // two S_FT attempts + the terminal host sort
  EXPECT_EQ(run.events.back().rung, Rung::kHostSort);
  EXPECT_EQ(sort::classify(run.last, input), sort::Outcome::kCorrect);
}

TEST(SupervisorTest, FullRestartPolicyMatchesLegacySemantics) {
  auto input = util::random_keys(17, 16);
  sort::SftOptions base;
  base.node_faults[9].halt_at = StagePoint{2, 0};
  const auto run =
      run_supervised_sort(4, input, base, RecoveryPolicy::full_restart(3));
  EXPECT_EQ(run.outcome, sort::Outcome::kFailStop);
  EXPECT_EQ(run.attempts, 3);
  EXPECT_FALSE(run.recovered);
  EXPECT_EQ(run.final_rung, Rung::kRestart);
  ASSERT_EQ(run.diagnoses.size(), 3u);
  for (const auto& ev : run.events) {
    EXPECT_EQ(ev.resume_stage, 0);  // no rollback under full restart
    EXPECT_EQ(ev.config_dim, 4);    // no reconfiguration either
  }
}

TEST(SupervisorTest, EventLogIsConsistent) {
  auto input = util::random_keys(18, 32);
  sort::SftOptions base;
  base.block = 2;
  base.node_faults[7].halt_at = StagePoint{2, 1};
  const auto run = run_supervised_sort(4, input, base);
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  ASSERT_EQ(static_cast<int>(run.events.size()), run.attempts);
  double ticks = 0.0;
  for (int i = 0; i < run.attempts; ++i) {
    EXPECT_EQ(run.events[i].attempt, i);
    EXPECT_GT(run.events[i].ticks, 0.0);
    ticks += run.events[i].ticks;
  }
  EXPECT_DOUBLE_EQ(ticks, run.total_ticks);
  EXPECT_EQ(run.events.back().outcome, sort::Outcome::kCorrect);
  for (int i = 0; i + 1 < run.attempts; ++i)
    EXPECT_NE(run.events[i].outcome, sort::Outcome::kCorrect);
}

TEST(SupervisorTest, BackoffChargesIntoTotalTicks) {
  auto input = util::random_keys(19, 16);
  Adversary glitch;
  glitch.add(drop_message(6, {2, 1}));
  auto transient = [&glitch](int attempt) -> sim::LinkInterceptor* {
    return attempt == 0 ? &glitch : nullptr;
  };
  RecoveryPolicy quiet;
  RecoveryPolicy waity;
  waity.backoff_ticks = 1000.0;
  const auto a = run_supervised_sort(4, input, {}, quiet, transient);
  const auto b = run_supervised_sort(4, input, {}, waity, transient);
  EXPECT_EQ(a.outcome, sort::Outcome::kCorrect);
  EXPECT_EQ(b.outcome, sort::Outcome::kCorrect);
  EXPECT_DOUBLE_EQ(b.total_ticks, a.total_ticks + 1000.0);
}

}  // namespace
}  // namespace aoft::fault
