// Faulty checkers: detection must not hinge on any single peer's honesty.
//
// Lemma 6 allows up to i faulty nodes per dim-i subcube precisely because
// every element is verified redundantly.  Here some nodes are *complicit* —
// they run the protocol but swallow every violation — and the remaining
// honest peers must still convict the active liar.

#include <gtest/gtest.h>

#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

using sort::Outcome;

TEST(SilentCheckerTest, SilentCheckersAloneAreHarmless) {
  // Complicit silence with nothing to hide: the run completes correctly.
  auto input = util::random_keys(1, 16);
  sort::SftOptions opts;
  opts.node_faults[3].silent_checker = true;
  opts.node_faults[11].silent_checker = true;
  auto run = sort::run_sft(4, input, opts);
  EXPECT_EQ(sort::classify(run, input), Outcome::kCorrect);
}

TEST(SilentCheckerTest, OneComplicitPeerCannotShieldALiar) {
  // Node 4 substitutes its element at stage 2; node 5 — its pair partner and
  // first-line checker — stays silent.  The other checkers of SC_2(4)
  // still fail the feasibility comparison.
  auto input = util::random_keys(2, 16);
  sort::SftOptions opts;
  opts.node_faults[4].substitute_at = StagePoint{2, 0};
  opts.node_faults[4].substitute_value = 777777777;
  opts.node_faults[5].silent_checker = true;
  auto run = sort::run_sft(4, input, opts);
  EXPECT_EQ(sort::classify(run, input), Outcome::kFailStop);
  bool honest_reporter = false;
  for (const auto& e : run.errors)
    honest_reporter |= e.node != 4 && e.node != 5;
  EXPECT_TRUE(honest_reporter);
}

TEST(SilentCheckerTest, EntireInnerSubcubeComplicitStillCaught) {
  // Silence all of SC_2(5) = {4,6,7} around the stage-2 liar 5.  The inner
  // checkers of stage 2 are all complicit, but at stage 3 the fabricated
  // element is gossiped across the whole cube and honest nodes outside the
  // silenced subcube run the same comparisons.
  auto input = util::random_keys(3, 16);
  sort::SftOptions opts;
  opts.node_faults[5].substitute_at = StagePoint{2, 0};
  opts.node_faults[5].substitute_value = -777777777;
  opts.node_faults[5].silent_checker = true;  // a real liar also keeps quiet
  opts.node_faults[4].silent_checker = true;
  opts.node_faults[6].silent_checker = true;
  opts.node_faults[7].silent_checker = true;
  auto run = sort::run_sft(4, input, opts);
  EXPECT_EQ(sort::classify(run, input), Outcome::kFailStop);
  // Detection comes from outside the complicit subcube.
  for (const auto& e : run.errors)
    EXPECT_TRUE(e.node < 4 || e.node > 7) << "node " << e.node;
}

TEST(SilentCheckerTest, SilentVictimOfTwoFacedLieDefersDetection) {
  // The node that receives the disagreeing copy stays silent; the lie then
  // either surfaces at another checker or the corrupted collection fails a
  // later stage-end comparison.  Either way: never silent-wrong.
  auto input = util::random_keys(4, 16);
  sort::SftOptions opts;
  opts.node_faults[5].invert_direction_from = StagePoint{1, 1};
  // Silence node 7 and node 4, the immediate pair partners at stage 1.
  opts.node_faults[7].silent_checker = true;
  opts.node_faults[4].silent_checker = true;
  auto run = sort::run_sft(4, input, opts);
  EXPECT_NE(sort::classify(run, input), Outcome::kSilentWrong);
}

TEST(SilentCheckerTest, RandomizedComplicityNeverSilentWrong) {
  // One liar plus up to n-2 random silent checkers: total faulty <= n-1, the
  // Theorem-3 bound, so no run may end silently wrong.
  util::Rng rng(555);
  for (int rep = 0; rep < 15; ++rep) {
    const int dim = 4;
    auto input = util::random_keys(rng.next_u64(), 16);
    sort::SftOptions opts;
    const auto liar = static_cast<cube::NodeId>(rng.next_below(16));
    const int stage = 1 + static_cast<int>(rng.next_below(3));
    opts.node_faults[liar].substitute_at = StagePoint{stage, 0};
    opts.node_faults[liar].substitute_value =
        rng.next_in(1 << 28, 1 << 29);
    for (int k = 0; k < dim - 2; ++k) {
      const auto s = static_cast<cube::NodeId>(rng.next_below(16));
      if (s != liar) opts.node_faults[s].silent_checker = true;
    }
    auto run = sort::run_sft(dim, input, opts);
    EXPECT_NE(sort::classify(run, input), Outcome::kSilentWrong)
        << "rep=" << rep << " liar=" << liar << " stage=" << stage;
  }
}

}  // namespace
}  // namespace aoft::fault
