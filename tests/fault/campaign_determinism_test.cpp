// Determinism suite for the parallel campaign engine.
//
// The contract (fault/campaign.h, docs/PROTOCOL.md §8): a CampaignSummary is
// a pure function of CampaignConfig — same seed twice gives byte-identical
// results, and the job count changes wall-clock only, never a single field.
// These tests compare every field of every tally and every recorded run, so
// any nondeterminism (shared RNG, out-of-order aggregation, data race on a
// tally) fails loudly rather than shifting a percentage point in a bench.

#include "fault/campaign.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace_io.h"

namespace aoft::fault {
namespace {

void expect_same_tally(const ClassTally& a, const ClassTally& b) {
  EXPECT_EQ(a.fclass, b.fclass);
  EXPECT_EQ(a.runs, b.runs) << to_string(a.fclass);
  EXPECT_EQ(a.detected, b.detected) << to_string(a.fclass);
  EXPECT_EQ(a.masked, b.masked) << to_string(a.fclass);
  EXPECT_EQ(a.silent_wrong, b.silent_wrong) << to_string(a.fclass);
  EXPECT_EQ(a.attempts, b.attempts) << to_string(a.fclass);
  EXPECT_EQ(a.dropped, b.dropped) << to_string(a.fclass);
}

void expect_same_run(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.scenario.fclass, b.scenario.fclass);
  EXPECT_EQ(a.scenario.dim, b.scenario.dim);
  EXPECT_EQ(a.scenario.block, b.scenario.block);
  EXPECT_EQ(a.scenario.faulty, b.scenario.faulty);
  EXPECT_EQ(a.scenario.point, b.scenario.point);
  EXPECT_EQ(a.scenario.delta, b.scenario.delta);
  EXPECT_EQ(a.scenario.input_seed, b.scenario.input_seed);
  EXPECT_EQ(a.scenario.aux_node, b.scenario.aux_node);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.fault_exercised, b.fault_exercised);
  EXPECT_EQ(a.first_detector, b.first_detector);
  EXPECT_EQ(a.detection_stage, b.detection_stage);
}

void expect_same_summary(const CampaignSummary& a, const CampaignSummary& b) {
  ASSERT_EQ(a.sft.size(), b.sft.size());
  ASSERT_EQ(a.snr.size(), b.snr.size());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.sft.size(); ++i) {
    expect_same_tally(a.sft[i], b.sft[i]);
    expect_same_tally(a.snr[i], b.snr[i]);
  }
  for (std::size_t i = 0; i < a.runs.size(); ++i)
    expect_same_run(a.runs[i], b.runs[i]);
}

void expect_same_multi(const std::vector<MultiTally>& a,
                       const std::vector<MultiTally>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].k, b[i].k);
    EXPECT_EQ(a[i].runs, b[i].runs) << "k=" << a[i].k;
    EXPECT_EQ(a[i].detected, b[i].detected) << "k=" << a[i].k;
    EXPECT_EQ(a[i].masked, b[i].masked) << "k=" << a[i].k;
    EXPECT_EQ(a[i].silent_wrong, b[i].silent_wrong) << "k=" << a[i].k;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "k=" << a[i].k;
    EXPECT_EQ(a[i].dropped, b[i].dropped) << "k=" << a[i].k;
  }
}

CampaignConfig small_config(int jobs) {
  CampaignConfig cfg;
  cfg.dim = 3;
  cfg.runs_per_class = 4;
  cfg.seed = 0xfeedULL;
  cfg.jobs = jobs;
  return cfg;
}

TEST(CampaignDeterminismTest, SameSeedTwiceIsByteIdentical) {
  const auto cfg = small_config(1);
  expect_same_summary(run_campaign(cfg), run_campaign(cfg));
}

TEST(CampaignDeterminismTest, ParallelEqualsSerialExactly) {
  const auto serial = run_campaign(small_config(1));
  const auto parallel = run_campaign(small_config(4));
  expect_same_summary(serial, parallel);
}

TEST(CampaignDeterminismTest, HardwareConcurrencyEqualsSerial) {
  const auto serial = run_campaign(small_config(1));
  const auto parallel = run_campaign(small_config(0));  // 0 = all cores
  expect_same_summary(serial, parallel);
}

// scenario_batch changes only which worker claims which consecutive slots;
// results must be bit-identical for every batch size, combined with any job
// count — same contract as jobs/placement (docs/PROTOCOL.md §12).
TEST(CampaignDeterminismTest, BatchSizeIsResultInvariant) {
  const auto serial = run_campaign(small_config(1));
  for (const int batch : {2, 4, 64}) {
    for (const int jobs : {1, 3}) {
      auto cfg = small_config(jobs);
      cfg.scenario_batch = batch;
      expect_same_summary(serial, run_campaign(cfg));
    }
  }
}

// Batching composes with trace collection the same way jobs does: per-slot
// sinks merge in (class, slot) order, so the serialized trace and metrics are
// byte-identical whether a worker ran one scenario or a whole batch.
TEST(CampaignDeterminismTest, TraceAndMetricsAreBatchSizeInvariant) {
  auto traced = [](int jobs, int batch) {
    obs::Tracer tracer;
    auto cfg = small_config(jobs);
    cfg.scenario_batch = batch;
    cfg.tracer = &tracer;
    run_campaign(cfg);
    obs::TraceMeta meta;
    meta.dim = cfg.dim;
    meta.seed = cfg.seed;
    meta.mode = "campaign";
    std::stringstream ss;
    obs::write_jsonl(ss, meta, tracer);
    return ss.str();
  };
  const std::string one = traced(1, 1);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, traced(4, 1));
  EXPECT_EQ(one, traced(4, 8));
  EXPECT_EQ(one, traced(2, 64));
}

TEST(CampaignDeterminismTest, DifferentSeedsDiffer) {
  auto a_cfg = small_config(1);
  auto b_cfg = small_config(1);
  b_cfg.seed = a_cfg.seed + 1;
  const auto a = run_campaign(a_cfg);
  const auto b = run_campaign(b_cfg);
  ASSERT_FALSE(a.runs.empty());
  ASSERT_FALSE(b.runs.empty());
  bool any_difference = false;
  for (std::size_t i = 0; i < std::min(a.runs.size(), b.runs.size()); ++i)
    any_difference |= a.runs[i].scenario.input_seed != b.runs[i].scenario.input_seed;
  EXPECT_TRUE(any_difference) << "seed change did not reach the scenarios";
}

TEST(CampaignDeterminismTest, MultiCampaignParallelEqualsSerial) {
  auto serial_cfg = small_config(1);
  serial_cfg.dim = 4;  // room for k = 3 distinct faulty nodes
  auto parallel_cfg = serial_cfg;
  parallel_cfg.jobs = 4;
  expect_same_multi(run_multi_campaign(serial_cfg, 3),
                    run_multi_campaign(parallel_cfg, 3));
}

TEST(CampaignDeterminismTest, MultiCampaignSameSeedTwiceIdentical) {
  auto cfg = small_config(2);
  cfg.dim = 4;
  expect_same_multi(run_multi_campaign(cfg, 3), run_multi_campaign(cfg, 3));
}

// The observability layer must not weaken the determinism contract: per-slot
// tracers/registries are merged in (class, slot) order after the pool
// drains, so the serialized trace and the merged metrics are byte-identical
// for every job count.
TEST(CampaignDeterminismTest, TraceAndMetricsAreJobCountInvariant) {
  auto traced = [](int jobs) {
    struct Out {
      std::string trace;
      obs::MetricsRegistry metrics;
    } out;
    obs::Tracer tracer;
    auto cfg = small_config(jobs);
    cfg.tracer = &tracer;
    cfg.metrics = &out.metrics;
    run_campaign(cfg);
    obs::TraceMeta meta;
    meta.dim = cfg.dim;
    meta.seed = cfg.seed;
    meta.mode = "campaign";
    std::stringstream ss;
    obs::write_jsonl(ss, meta, tracer);
    out.trace = ss.str();
    return out;
  };
  const auto serial = traced(1);
  const auto parallel = traced(4);
  ASSERT_FALSE(serial.trace.empty());
  EXPECT_EQ(serial.trace, parallel.trace);
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    EXPECT_EQ(serial.metrics.get(c), parallel.metrics.get(c))
        << obs::to_string(c);
  }
  EXPECT_GT(serial.metrics.get(obs::Counter::kScenarios), 0u);

  // The merged trace is schema-valid as written.
  std::stringstream ss(serial.trace);
  std::string error;
  EXPECT_TRUE(obs::read_jsonl(ss, &error)) << error;
}

// Attaching a tracer must not perturb the campaign itself.
TEST(CampaignDeterminismTest, TracingDoesNotChangeTheSummary) {
  const auto plain = run_campaign(small_config(2));
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  auto cfg = small_config(2);
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  const auto traced = run_campaign(cfg);
  expect_same_summary(plain, traced);
  EXPECT_FALSE(tracer.empty());
}

TEST(CampaignDeterminismTest, JobCountDoesNotLeakIntoTheorem3Verdict) {
  for (int jobs : {1, 2, 0}) {
    auto cfg = small_config(jobs);
    const auto summary = run_campaign(cfg);
    for (const auto& tally : summary.sft)
      EXPECT_EQ(tally.silent_wrong, 0)
          << to_string(tally.fclass) << " jobs=" << jobs;
  }
}

}  // namespace
}  // namespace aoft::fault
