#include "hypercube/subcube.h"

#include <gtest/gtest.h>

namespace aoft::cube {
namespace {

TEST(SubcubeTest, Definition4Examples) {
  // SC_{i,j} starts at j - j mod 2^i and spans 2^i labels (paper Def. 4).
  auto sc = home_subcube(2, 6);  // j = 6, i = 2 -> [4, 7]
  EXPECT_EQ(sc.start, 4u);
  EXPECT_EQ(sc.end, 7u);
  EXPECT_EQ(sc.size(), 4u);

  sc = home_subcube(3, 5);  // [0, 7]
  EXPECT_EQ(sc.start, 0u);
  EXPECT_EQ(sc.end, 7u);

  sc = home_subcube(0, 9);  // a single node
  EXPECT_EQ(sc.start, 9u);
  EXPECT_EQ(sc.end, 9u);
  EXPECT_EQ(sc.size(), 1u);
}

TEST(SubcubeTest, EveryMemberSharesTheSubcube) {
  for (int i = 0; i <= 4; ++i)
    for (NodeId j = 0; j < 32; ++j) {
      const auto sc = home_subcube(i, j);
      EXPECT_TRUE(sc.contains(j));
      for (NodeId p = sc.start; p <= sc.end; ++p)
        EXPECT_EQ(home_subcube(i, p), sc);
    }
}

TEST(SubcubeTest, MidAndHalves) {
  const auto sc = home_subcube(3, 12);  // [8, 15]
  EXPECT_EQ(sc.mid(), 12u);
  EXPECT_EQ(sc.lower_half(), home_subcube(2, 8));
  EXPECT_EQ(sc.upper_half(), home_subcube(2, 12));
}

TEST(SubcubeTest, ContainsIsInclusive) {
  const auto sc = home_subcube(2, 4);  // [4, 7]
  EXPECT_TRUE(sc.contains(4));
  EXPECT_TRUE(sc.contains(7));
  EXPECT_FALSE(sc.contains(3));
  EXPECT_FALSE(sc.contains(8));
}

TEST(SubcubeTest, StageAscendingMatchesPaperModFormula) {
  // Paper Fig. 2: ascending iff node mod 2^{i+2} < 2^{i+1}.
  for (NodeId node = 0; node < 64; ++node)
    for (int stage = 0; stage <= 4; ++stage) {
      const bool paper = node % (NodeId{1} << (stage + 2)) < (NodeId{1} << (stage + 1));
      EXPECT_EQ(stage_ascending(node, stage), paper) << node << "@" << stage;
    }
}

TEST(SubcubeTest, FinalStageIsAlwaysAscending) {
  // At stage n-1, bit n of any valid label is 0.
  const int n = 5;
  for (NodeId node = 0; node < (NodeId{1} << n); ++node)
    EXPECT_TRUE(stage_ascending(node, n - 1));
}

TEST(SubcubeTest, SubcubeDirectionAlternatesOnBitI) {
  EXPECT_TRUE(subcube_sorted_ascending(2, 0b0011));   // bit 2 clear
  EXPECT_FALSE(subcube_sorted_ascending(2, 0b0111));  // bit 2 set
}

TEST(SubcubeTest, PairHalvesOfStageWindowHaveOppositeDirections) {
  // Within SC_{i+1}, the lower dim-i half is ascending, the upper descending.
  for (int i = 1; i <= 4; ++i)
    for (NodeId j = 0; j < 32; ++j) {
      const auto outer = home_subcube(i + 1, j);
      EXPECT_TRUE(subcube_sorted_ascending(i, outer.start));
      EXPECT_FALSE(subcube_sorted_ascending(i, outer.mid()));
    }
}

}  // namespace
}  // namespace aoft::cube
