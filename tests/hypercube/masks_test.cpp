// Tests of the gossip-coverage mask algebra, including the Lemma 3 semantics:
// vect_mask must equal the set of elements actually deliverable by the stage-i
// exchange schedule.

#include "hypercube/masks.h"

#include <gtest/gtest.h>

#include "hypercube/subcube.h"

namespace aoft::cube {
namespace {

TEST(MasksTest, BaseCaseIsSelfAndPartner) {
  Topology t(4);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 0; i < t.dimension(); ++i) {
      const auto m = vect_mask(t, i, i, p);
      EXPECT_EQ(m.count(), 2u);
      EXPECT_TRUE(m.test(p));
      EXPECT_TRUE(m.test(p ^ (NodeId{1} << i)));
    }
}

TEST(MasksTest, RecursiveMatchesClosedFormEverywhere) {
  for (int dim = 1; dim <= 5; ++dim) {
    Topology t(dim);
    for (NodeId p = 0; p < t.num_nodes(); ++p)
      for (int i = 0; i < dim; ++i)
        for (int j = 0; j <= i; ++j)
          EXPECT_EQ(vect_mask_recursive(t, i, j, p), vect_mask(t, i, j, p))
              << "dim=" << dim << " i=" << i << " j=" << j << " p=" << p;
  }
}

TEST(MasksTest, CountsMatchLemma) {
  Topology t(6);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j <= i; ++j) {
      EXPECT_EQ(vect_mask(t, i, j, 5 % t.num_nodes()).count(), vect_mask_count(i, j));
      EXPECT_EQ(pre_mask(t, i, j, 5 % t.num_nodes()).count(), pre_mask_count(i, j));
    }
}

TEST(MasksTest, PostExchangeIsUnionOfPartnersPreMasks) {
  Topology t(5);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 0; i < 5; ++i)
      for (int j = 0; j <= i; ++j) {
        const NodeId partner = p ^ (NodeId{1} << j);
        EXPECT_EQ(vect_mask(t, i, j, p),
                  pre_mask(t, i, j, p) | pre_mask(t, i, j, partner));
      }
}

TEST(MasksTest, PartnersPreMasksAreDisjoint) {
  // The same element never reaches both exchange partners before they talk:
  // within one stage each entry travels a unique route (the redundancy comes
  // from the active node's post-merge reply, not from the forward gossip).
  Topology t(5);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 0; i < 5; ++i)
      for (int j = 0; j <= i; ++j) {
        const NodeId partner = p ^ (NodeId{1} << j);
        EXPECT_FALSE(pre_mask(t, i, j, p).intersects(pre_mask(t, i, j, partner)));
      }
}

TEST(MasksTest, PartnersAgreeOnPostExchangeCoverage) {
  Topology t(4);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j <= i; ++j)
        EXPECT_EQ(vect_mask(t, i, j, p), vect_mask(t, i, j, p ^ (NodeId{1} << j)));
}

TEST(MasksTest, PreMaskChainsThroughIterations) {
  // Before iteration j < i the coverage equals the post-coverage of j+1.
  Topology t(5);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 1; i < 5; ++i)
      for (int j = 0; j < i; ++j)
        EXPECT_EQ(pre_mask(t, i, j, p), vect_mask(t, i, j + 1, p));
}

TEST(MasksTest, StageEndCoversExactlyTheStageWindow) {
  // After iteration 0 of stage i, a node holds exactly SC_{i+1}.
  Topology t(6);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 0; i < 6; ++i) {
      const auto m = vect_mask(t, i, 0, p);
      const auto window = home_subcube(i + 1, p);
      EXPECT_EQ(m.count(), window.size());
      for (NodeId q = window.start; q <= window.end; ++q) EXPECT_TRUE(m.test(q));
    }
}

TEST(MasksTest, CoverageNeverLeavesTheWindow) {
  Topology t(5);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int i = 0; i < 5; ++i)
      for (int j = 0; j <= i; ++j) {
        const auto window = home_subcube(i + 1, p);
        for (std::size_t b : vect_mask(t, i, j, p).set_bits())
          EXPECT_TRUE(window.contains(static_cast<NodeId>(b)));
      }
}

TEST(MasksTest, Lemma3AgainstSimulatedGossip) {
  // Directly simulate the stage-i exchange schedule on sets and compare with
  // the closed form — the literal statement of Lemma 3.
  const int dim = 5;
  Topology t(dim);
  const auto n = t.num_nodes();
  for (int i = 0; i < dim; ++i) {
    std::vector<util::BitVec> have(n);
    for (NodeId p = 0; p < n; ++p) have[p] = util::BitVec::single(n, p);
    for (int j = i; j >= 0; --j) {
      std::vector<util::BitVec> next = have;
      for (NodeId p = 0; p < n; ++p) next[p] |= have[p ^ (NodeId{1} << j)];
      have = std::move(next);
      for (NodeId p = 0; p < n; ++p)
        ASSERT_EQ(have[p], vect_mask(t, i, j, p)) << "i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace aoft::cube
