#include "hypercube/topology.h"

#include <gtest/gtest.h>

namespace aoft::cube {
namespace {

TEST(TopologyTest, NodeCountIsPowerOfTwo) {
  EXPECT_EQ(Topology(0).num_nodes(), 1u);
  EXPECT_EQ(Topology(5).num_nodes(), 32u);
  EXPECT_EQ(Topology(10).num_nodes(), 1024u);
}

TEST(TopologyTest, NeighborFlipsExactlyOneBit) {
  Topology t(4);
  EXPECT_EQ(t.neighbor(0b0101, 1), 0b0111u);
  EXPECT_EQ(t.neighbor(0b0101, 0), 0b0100u);
}

TEST(TopologyTest, NeighborIsInvolution) {
  Topology t(6);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (int k = 0; k < t.dimension(); ++k)
      EXPECT_EQ(t.neighbor(t.neighbor(p, k), k), p);
}

TEST(TopologyTest, AdjacencyIsHammingDistanceOne) {
  Topology t(4);
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (NodeId q = 0; q < t.num_nodes(); ++q)
      EXPECT_EQ(t.adjacent(p, q), t.distance(p, q) == 1) << p << "," << q;
}

TEST(TopologyTest, SelfIsNotAdjacent) {
  Topology t(3);
  for (NodeId p = 0; p < t.num_nodes(); ++p) EXPECT_FALSE(t.adjacent(p, p));
}

TEST(TopologyTest, DistanceExamples) {
  Topology t(5);
  EXPECT_EQ(t.distance(0, 0), 0);
  EXPECT_EQ(t.distance(0b00000, 0b11111), 5);
  EXPECT_EQ(t.distance(0b10100, 0b10001), 2);
}

TEST(TopologyTest, EachNodeHasDimensionNeighbors) {
  Topology t(5);
  for (NodeId p = 0; p < t.num_nodes(); ++p) {
    auto nb = t.neighbors(p);
    ASSERT_EQ(nb.size(), 5u);
    for (auto q : nb) EXPECT_TRUE(t.adjacent(p, q));
  }
}

TEST(TopologyTest, ValidNode) {
  Topology t(3);
  EXPECT_TRUE(t.valid_node(7));
  EXPECT_FALSE(t.valid_node(8));
}

TEST(TopologyTest, NodeBit) {
  EXPECT_TRUE(node_bit(0b100, 2));
  EXPECT_FALSE(node_bit(0b100, 1));
  EXPECT_FALSE(node_bit(0b100, 31));
}

TEST(TopologyTest, DimensionZeroCube) {
  Topology t(0);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.neighbors(0).empty());
}

}  // namespace
}  // namespace aoft::cube
