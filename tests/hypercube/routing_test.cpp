#include "hypercube/routing.h"

#include <gtest/gtest.h>

namespace aoft::cube {
namespace {

TEST(RoutingTest, EcubeRouteEndpoints) {
  Topology t(4);
  const auto p = ecube_route(t, 3, 12);
  EXPECT_EQ(p.front(), 3u);
  EXPECT_EQ(p.back(), 12u);
}

TEST(RoutingTest, EcubeRouteLengthIsHammingDistance) {
  Topology t(5);
  for (NodeId s = 0; s < t.num_nodes(); s += 3)
    for (NodeId d = 0; d < t.num_nodes(); d += 5) {
      const auto path = ecube_route(t, s, d);
      EXPECT_EQ(path.size(), static_cast<std::size_t>(t.distance(s, d)) + 1);
    }
}

TEST(RoutingTest, EcubeHopsAreEdges) {
  Topology t(5);
  const auto path = ecube_route(t, 0b00000, 0b11011);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_TRUE(t.adjacent(path[i], path[i + 1]));
}

TEST(RoutingTest, EcubeCorrectsLowDimensionsFirst) {
  Topology t(4);
  EXPECT_EQ(ecube_route(t, 0b0000, 0b1010),
            (Path{0b0000, 0b0010, 0b1010}));
}

TEST(RoutingTest, SelfRouteIsTrivial) {
  Topology t(3);
  EXPECT_EQ(ecube_route(t, 5, 5), Path{5});
}

TEST(RoutingTest, DisjointPathCountEqualsDimension) {
  for (int dim = 1; dim <= 6; ++dim) {
    Topology t(dim);
    const auto paths = vertex_disjoint_paths(t, 0, 1);
    EXPECT_EQ(paths.size(), static_cast<std::size_t>(dim));
  }
}

TEST(RoutingTest, PathsAreInternallyDisjointEverywhere) {
  // The fact Lemma 6 leans on: between adjacent nodes there are n
  // internally-vertex-disjoint routes.
  for (int dim = 1; dim <= 5; ++dim) {
    Topology t(dim);
    for (NodeId u = 0; u < t.num_nodes(); ++u)
      for (int k = 0; k < dim; ++k) {
        const NodeId v = t.neighbor(u, k);
        const auto paths = vertex_disjoint_paths(t, u, v);
        EXPECT_TRUE(internally_vertex_disjoint(paths)) << u << "->" << v;
        for (const auto& p : paths) {
          EXPECT_EQ(p.front(), u);
          EXPECT_EQ(p.back(), v);
          for (std::size_t i = 0; i + 1 < p.size(); ++i)
            EXPECT_TRUE(t.adjacent(p[i], p[i + 1]));
        }
      }
  }
}

TEST(RoutingTest, DetectsSharedInteriorNode) {
  std::vector<Path> shared{{0, 2, 3, 1}, {0, 2, 6, 1}};  // both via node 2
  EXPECT_FALSE(internally_vertex_disjoint(shared));
  std::vector<Path> ok{{0, 2, 3, 1}, {0, 4, 5, 1}};
  EXPECT_TRUE(internally_vertex_disjoint(ok));
}

}  // namespace
}  // namespace aoft::cube
