#include "hypercube/gray.h"

#include <gtest/gtest.h>

#include <set>

namespace aoft::cube {
namespace {

TEST(GrayTest, FirstEightCodes) {
  const NodeId expect[] = {0, 1, 3, 2, 6, 7, 5, 4};
  for (NodeId r = 0; r < 8; ++r) EXPECT_EQ(gray(r), expect[r]) << r;
}

TEST(GrayTest, RankInvertsGray) {
  for (NodeId r = 0; r < 1024; ++r) EXPECT_EQ(gray_rank(gray(r)), r);
}

TEST(GrayTest, IsAPermutation) {
  std::set<NodeId> seen;
  for (NodeId r = 0; r < 256; ++r) seen.insert(gray(r));
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(GrayTest, ConsecutiveRanksAreCubeNeighbors) {
  Topology t(6);
  for (NodeId r = 0; r + 1 < t.num_nodes(); ++r)
    EXPECT_TRUE(t.adjacent(gray(r), gray(r + 1))) << "rank " << r;
}

TEST(GrayTest, RingWrapEdgeIsAlsoACubeEdge) {
  for (int dim = 1; dim <= 8; ++dim) {
    Topology t(dim);
    EXPECT_TRUE(t.adjacent(gray(0), gray(t.num_nodes() - 1))) << dim;
  }
}

TEST(GrayTest, ChainPositionEndpoints) {
  Topology t(3);
  const auto first = gray_chain_position(t, gray(0));
  EXPECT_FALSE(first.has_prev);
  EXPECT_TRUE(first.has_next);
  EXPECT_EQ(first.next, gray(1));
  const auto last = gray_chain_position(t, gray(7));
  EXPECT_TRUE(last.has_prev);
  EXPECT_FALSE(last.has_next);
  EXPECT_EQ(last.prev, gray(6));
}

TEST(GrayTest, ChainPositionInterior) {
  Topology t(4);
  for (NodeId r = 1; r + 1 < t.num_nodes(); ++r) {
    const auto pos = gray_chain_position(t, gray(r));
    EXPECT_EQ(pos.rank, r);
    EXPECT_EQ(pos.prev, gray(r - 1));
    EXPECT_EQ(pos.next, gray(r + 1));
  }
}

TEST(GrayTest, RingNeighborsAreInverse) {
  Topology t(5);
  for (NodeId p = 0; p < t.num_nodes(); ++p) {
    EXPECT_EQ(gray_ring_prev(t, gray_ring_next(t, p)), p);
    EXPECT_TRUE(t.adjacent(p, gray_ring_next(t, p)));
  }
}

}  // namespace
}  // namespace aoft::cube
