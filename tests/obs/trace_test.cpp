// Observability layer: trace emission and (de)serialization.
//
// The JSONL schema is the stable machine-readable record of a run
// (docs/PROTOCOL.md §9), so these tests pin down (a) the roundtrip — what a
// Tracer held is exactly what read_jsonl returns, (b) that the validator
// rejects corrupted files with a line number rather than absorbing them, and
// (c) that an instrumented S_FT run actually emits the events the Theorem 3
// argument needs: stage spans, Φ verdicts, and the detection event of an
// injected fault.

#include "obs/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/sink.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::obs {
namespace {

TraceMeta test_meta() {
  TraceMeta m;
  m.dim = 3;
  m.block = 2;
  m.seed = 42;
  m.mode = "single";
  return m;
}

Tracer sample_tracer() {
  Tracer tr;
  tr.instant(Ev::kRunBegin, kGlobal, 0, -1, 0.0, 3, 2);
  tr.span(Ev::kStage, 5, 1, 10.25, 17.5);
  tr.instant(Ev::kPhiP, 5, 1, -1, 17.5, 1, 0);
  tr.instant(Ev::kPhiC, 2, 1, 0, 12.0, 0, 7, "stale entry, pos 7");
  tr.instant(Ev::kError, 2, 1, 0, 12.0, 2, 0, "detail with \"quotes\"\n");
  tr.instant(Ev::kRunEnd, kGlobal, -1, -1, 99.125, 1, 0);
  return tr;
}

TEST(TraceIoTest, EveryEventKindRoundTripsByName) {
  for (int k = 0; k <= static_cast<int>(Ev::kScenario); ++k) {
    const auto ev = static_cast<Ev>(k);
    Ev back;
    ASSERT_TRUE(ev_from_string(to_string(ev), back)) << to_string(ev);
    EXPECT_EQ(back, ev);
  }
  Ev dummy;
  EXPECT_FALSE(ev_from_string("no_such_kind", dummy));
}

TEST(TraceIoTest, JsonlRoundTripPreservesEverything) {
  const auto meta = test_meta();
  const auto tr = sample_tracer();
  std::stringstream ss;
  write_jsonl(ss, meta, tr);

  std::string error;
  auto parsed = read_jsonl(ss, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->meta, meta);
  ASSERT_EQ(parsed->events.size(), tr.size());
  for (std::size_t i = 0; i < tr.size(); ++i)
    EXPECT_EQ(parsed->events[i], tr.events()[i]) << "event " << i;
}

TEST(TraceIoTest, SameTracerWritesIdenticalBytes) {
  const auto meta = test_meta();
  const auto tr = sample_tracer();
  std::stringstream a, b;
  write_jsonl(a, meta, tr);
  write_jsonl(b, meta, tr);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TraceIoTest, RejectsMissingHeader) {
  std::stringstream ss(
      R"({"k":"stage","n":0,"s":0,"i":-1,"t0":0,"t1":1,"a":0,"b":0})" "\n");
  std::string error;
  EXPECT_FALSE(read_jsonl(ss, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(TraceIoTest, RejectsUnknownEventKindWithLineNumber) {
  std::stringstream ss;
  write_jsonl(ss, test_meta(), Tracer{});
  ss.clear();
  ss.seekp(0, std::ios::end);
  ss << R"({"k":"bogus","n":0,"s":0,"i":-1,"t0":0,"t1":0,"a":0,"b":0})" << "\n";
  std::string error;
  EXPECT_FALSE(read_jsonl(ss, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(TraceIoTest, RejectsSpanEndingBeforeItStarts) {
  std::stringstream ss;
  write_jsonl(ss, test_meta(), Tracer{});
  ss.clear();
  ss.seekp(0, std::ios::end);
  ss << R"({"k":"stage","n":0,"s":0,"i":-1,"t0":5,"t1":4,"a":0,"b":0})" << "\n";
  std::string error;
  EXPECT_FALSE(read_jsonl(ss, &error));
  EXPECT_NE(error.find("ends before"), std::string::npos) << error;
}

TEST(TraceIoTest, RejectsNonBinaryVerdictPayload) {
  std::stringstream ss;
  write_jsonl(ss, test_meta(), Tracer{});
  ss.clear();
  ss.seekp(0, std::ios::end);
  ss << R"({"k":"phi_p","n":0,"s":0,"i":-1,"t0":0,"t1":0,"a":2,"b":0})" << "\n";
  std::string error;
  EXPECT_FALSE(read_jsonl(ss, &error));
  EXPECT_NE(error.find("verdict"), std::string::npos) << error;
}

TEST(TraceIoTest, RejectsTruncatedFileViaDeclaredEventCount) {
  const auto meta = test_meta();
  const auto tr = sample_tracer();
  std::stringstream full;
  write_jsonl(full, meta, tr);
  // Drop the last line: the header still declares tr.size() events.
  std::string text = full.str();
  text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  std::stringstream truncated(text);
  std::string error;
  EXPECT_FALSE(read_jsonl(truncated, &error));
  EXPECT_NE(error.find("declares"), std::string::npos) << error;
}

TEST(TraceIoTest, ChromeExportValidates) {
  std::stringstream ss;
  write_chrome(ss, test_meta(), sample_tracer());
  std::string error;
  std::size_t events = 0;
  EXPECT_TRUE(validate_chrome(ss, &error, &events)) << error;
  // 6 events + one thread_name metadata record per distinct node (5, 2,
  // kGlobal).
  EXPECT_EQ(events, 6u + 3u);
}

TEST(TraceIoTest, ChromeValidatorRejectsEventWithoutTimestamp) {
  std::stringstream ss(
      R"({"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]})");
  std::string error;
  EXPECT_FALSE(validate_chrome(ss, &error));
  EXPECT_NE(error.find("ts"), std::string::npos) << error;
}

// ---- instrumented S_FT runs -------------------------------------------------

struct Collected {
  Tracer tracer;
  MetricsRegistry metrics;
  sort::SortRun run;
};

Collected traced_sft(int dim, const sort::SftOptions& opts, std::uint64_t seed) {
  Collected c;
  const auto n = std::size_t{1} << dim;
  auto input = util::random_keys(seed, n * opts.block);
  ScopedSink bind(&c.tracer, &c.metrics);
  c.run = sort::run_sft(dim, input, opts);
  return c;
}

TEST(TraceSftTest, FaultFreeRunEmitsSpansAndVerdicts) {
  const int dim = 3;
  const auto c = traced_sft(dim, {}, 7);
  ASSERT_TRUE(c.run.errors.empty());
  ASSERT_FALSE(c.tracer.empty());

  const auto& evs = c.tracer.events();
  EXPECT_EQ(evs.front().kind, Ev::kRunBegin);
  EXPECT_EQ(evs.front().a, dim);
  EXPECT_EQ(evs.back().kind, Ev::kRunEnd);
  EXPECT_EQ(evs.back().a, 0);  // no errors

  // Every node closes a span per stage plus the final verification round.
  std::size_t stage_spans = 0;
  for (const auto& e : evs)
    if (e.kind == Ev::kStage) {
      ++stage_spans;
      EXPECT_GE(e.t1, e.t0);
      EXPECT_GE(e.stage, 0);
      EXPECT_LE(e.stage, dim);
    }
  const auto n = std::size_t{1} << dim;
  EXPECT_EQ(stage_spans, n * (dim + 1));

  // All predicates passed, and the metrics agree with the trace.
  EXPECT_GT(c.metrics.get(Counter::kPhiPPass), 0u);
  EXPECT_GT(c.metrics.get(Counter::kPhiFPass), 0u);
  EXPECT_GT(c.metrics.get(Counter::kPhiCPass), 0u);
  EXPECT_EQ(c.metrics.get(Counter::kPhiPFail), 0u);
  EXPECT_EQ(c.metrics.get(Counter::kPhiFFail), 0u);
  EXPECT_EQ(c.metrics.get(Counter::kPhiCFail), 0u);
  EXPECT_EQ(c.metrics.get(Counter::kErrors), 0u);
  for (const auto& e : evs) {
    if (e.kind == Ev::kPhiP || e.kind == Ev::kPhiF || e.kind == Ev::kPhiC) {
      EXPECT_EQ(e.a, 1) << to_string(e.kind) << " at stage " << e.stage;
    }
  }
}

TEST(TraceSftTest, LinkCountersMatchTheMachineSummary) {
  // No checkpointing and no faults: all traffic is node-node, so the metrics
  // view and the machine's own accounting must coincide exactly.
  const auto c = traced_sft(3, {}, 11);
  ASSERT_TRUE(c.run.errors.empty());
  EXPECT_EQ(c.metrics.get(Counter::kLinkMsgs), c.run.summary.total_msgs);
  EXPECT_EQ(c.metrics.get(Counter::kLinkWords), c.run.summary.total_words);
  EXPECT_EQ(c.metrics.get(Counter::kHostMsgs), 0u);
  EXPECT_EQ(c.metrics.msg_words().total(), c.run.summary.total_msgs);
}

TEST(TraceSftTest, InjectedHaltShowsUpAsDetectionEvents) {
  const int dim = 3;
  sort::SftOptions opts;
  opts.node_faults[5].halt_at = fault::StagePoint{1, 1};
  const auto c = traced_sft(dim, opts, 13);
  ASSERT_TRUE(c.run.fail_stop());

  std::size_t errors = 0, timeouts = 0, watchdogs = 0;
  for (const auto& e : c.tracer.events()) {
    if (e.kind == Ev::kError) ++errors;
    if (e.kind == Ev::kTimeout) ++timeouts;
    if (e.kind == Ev::kWatchdogRound) ++watchdogs;
  }
  EXPECT_EQ(errors, c.run.errors.size());
  EXPECT_GE(timeouts, 1u);
  EXPECT_GE(watchdogs, 1u);
  EXPECT_EQ(c.metrics.get(Counter::kErrors), errors);
  EXPECT_EQ(c.metrics.get(Counter::kWatchdogRounds),
            static_cast<std::uint64_t>(c.run.summary.watchdog_rounds));

  // The run-end record carries the failure: a = number of error reports.
  const auto& last = c.tracer.events().back();
  ASSERT_EQ(last.kind, Ev::kRunEnd);
  EXPECT_EQ(last.a, static_cast<std::int64_t>(c.run.errors.size()));
}

TEST(TraceSftTest, CheckpointRunEmitsUploadsAndCertifications) {
  const int dim = 3;
  sort::SftOptions opts;
  opts.checkpoint = true;
  const auto c = traced_sft(dim, opts, 17);
  ASSERT_TRUE(c.run.errors.empty());

  std::size_t uploads = 0, certs = 0;
  for (const auto& e : c.tracer.events()) {
    if (e.kind == Ev::kCkptUpload) ++uploads;
    if (e.kind == Ev::kCkptCertify) ++certs;
  }
  // One upload per node per stage boundary.
  const auto n = std::size_t{1} << dim;
  EXPECT_EQ(uploads, n * dim);
  EXPECT_EQ(certs, c.run.checkpoints.size());
  EXPECT_EQ(c.metrics.get(Counter::kCkptUploads), uploads);
  EXPECT_GT(c.metrics.get(Counter::kHostMsgs), 0u);
}

TEST(TraceSftTest, TraceIsDeterministicAcrossRepeatedRuns) {
  sort::SftOptions opts;
  opts.node_faults[3].halt_at = fault::StagePoint{2, 0};
  const auto a = traced_sft(3, opts, 23);
  const auto b = traced_sft(3, opts, 23);
  std::stringstream sa, sb;
  write_jsonl(sa, test_meta(), a.tracer);
  write_jsonl(sb, test_meta(), b.tracer);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(TraceSftTest, NothingIsEmittedWithoutABoundSink) {
  // The disabled path must leave no trace: no sink, no events, no counters.
  Tracer ambient;
  MetricsRegistry ambient_metrics;
  {
    ScopedSink outer(&ambient, &ambient_metrics);
    // Inner scope rebinds to null: instrumentation inside must see nothing.
    ScopedSink inner(nullptr, nullptr);
    auto input = util::random_keys(29, 8);
    auto run = sort::run_sft(3, input);
    ASSERT_TRUE(run.errors.empty());
  }
  EXPECT_TRUE(ambient.empty());
  EXPECT_EQ(ambient_metrics.get(Counter::kLinkMsgs), 0u);
}

}  // namespace
}  // namespace aoft::obs
