// MetricsRegistry: counters, log2 histograms, per-stage verdict pools, and
// the in-order merge the parallel campaigns rely on (one registry per slot,
// merged after the pool drains — same discipline as CampaignSummary, so the
// totals are bit-identical for every job count).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstring>

#include "obs/trace.h"

namespace aoft::obs {
namespace {

TEST(MetricsTest, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry m;
  for (std::size_t i = 0; i < kNumCounters; ++i)
    EXPECT_EQ(m.get(static_cast<Counter>(i)), 0u);
  m.inc(Counter::kLinkMsgs);
  m.inc(Counter::kLinkMsgs);
  m.inc(Counter::kLinkWords, 40);
  EXPECT_EQ(m.get(Counter::kLinkMsgs), 2u);
  EXPECT_EQ(m.get(Counter::kLinkWords), 40u);
  EXPECT_EQ(m.get(Counter::kTimeouts), 0u);
}

TEST(MetricsTest, EveryCounterHasADistinctName) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* name = to_string(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_STRNE(name, to_string(static_cast<Counter>(j)));
  }
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram h;
  h.observe(0);            // bucket 0
  h.observe(1);            // bucket 1: [1, 2)
  h.observe(2);            // bucket 2: [2, 4)
  h.observe(3);            // bucket 2
  h.observe(4);            // bucket 3: [4, 8)
  h.observe(1024);         // bucket 11: [1024, 2048)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.max(), 1024u);
}

TEST(MetricsTest, HistogramClampsHugeValuesIntoTheLastBucket) {
  Histogram h;
  h.observe(~std::uint64_t{0});  // bit_width 64 >> kBuckets
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(MetricsTest, PhiVerdictsPoolPerStage) {
  MetricsRegistry m;
  m.phi_verdict(0, true);
  m.phi_verdict(2, true);
  m.phi_verdict(2, false);
  ASSERT_EQ(m.per_stage().size(), 3u);
  EXPECT_EQ(m.per_stage()[0].pass, 1u);
  EXPECT_EQ(m.per_stage()[0].fail, 0u);
  EXPECT_EQ(m.per_stage()[1].pass, 0u);
  EXPECT_EQ(m.per_stage()[2].pass, 1u);
  EXPECT_EQ(m.per_stage()[2].fail, 1u);
  // Negative stages (host / global scope) must not grow the table.
  m.phi_verdict(-1, true);
  EXPECT_EQ(m.per_stage().size(), 3u);
}

TEST(MetricsTest, MergeAddsEveryComponent) {
  MetricsRegistry a, b;
  a.inc(Counter::kErrors, 2);
  a.observe_msg_words(8);
  a.phi_verdict(1, true);
  b.inc(Counter::kErrors, 3);
  b.inc(Counter::kRollbacks);
  b.observe_msg_words(8);
  b.observe_queue_depth(5);
  b.phi_verdict(1, false);
  b.phi_verdict(3, true);

  a.merge(b);
  EXPECT_EQ(a.get(Counter::kErrors), 5u);
  EXPECT_EQ(a.get(Counter::kRollbacks), 1u);
  EXPECT_EQ(a.msg_words().total(), 2u);
  EXPECT_EQ(a.queue_depth().total(), 1u);
  ASSERT_EQ(a.per_stage().size(), 4u);
  EXPECT_EQ(a.per_stage()[1].pass, 1u);
  EXPECT_EQ(a.per_stage()[1].fail, 1u);
  EXPECT_EQ(a.per_stage()[3].pass, 1u);
}

TEST(MetricsTest, SlotMergeEqualsSequentialCollection) {
  // The campaign discipline: writing into per-slot registries and merging in
  // slot order must equal writing everything into one registry directly.
  MetricsRegistry slot0, slot1, merged, direct;
  auto record = [](MetricsRegistry& m, int base) {
    m.inc(Counter::kLinkMsgs, static_cast<std::uint64_t>(base));
    m.observe_msg_words(static_cast<std::uint64_t>(base));
    m.phi_verdict(base % 3, base % 2 == 0);
  };
  record(slot0, 4);
  record(slot1, 9);
  record(direct, 4);
  record(direct, 9);
  merged.merge(slot0);
  merged.merge(slot1);
  EXPECT_EQ(merged.get(Counter::kLinkMsgs), direct.get(Counter::kLinkMsgs));
  EXPECT_EQ(merged.msg_words().total(), direct.msg_words().total());
  EXPECT_EQ(merged.msg_words().max(), direct.msg_words().max());
  ASSERT_EQ(merged.per_stage().size(), direct.per_stage().size());
  for (std::size_t s = 0; s < merged.per_stage().size(); ++s) {
    EXPECT_EQ(merged.per_stage()[s].pass, direct.per_stage()[s].pass);
    EXPECT_EQ(merged.per_stage()[s].fail, direct.per_stage()[s].fail);
  }
}

TEST(MetricsTest, TracerAppendKeepsSlotOrder) {
  Tracer a, b;
  a.instant(Ev::kScenario, kGlobal, -1, -1, 0.0, /*slot=*/0, 0);
  b.instant(Ev::kScenario, kGlobal, -1, -1, 0.0, /*slot=*/1, 0);
  b.instant(Ev::kRunEnd, kGlobal, -1, -1, 1.0);
  a.append(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.events()[0].a, 0);
  EXPECT_EQ(a.events()[1].a, 1);
  EXPECT_EQ(a.events()[2].kind, Ev::kRunEnd);
}

}  // namespace
}  // namespace aoft::obs
