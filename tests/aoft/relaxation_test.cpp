// AOFT Jacobi relaxation: convergence, maximum principle, and fail-stop
// detection of injected halo faults — the paradigm beyond sorting.

#include "aoft/relaxation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/adversary.h"

namespace aoft::core {
namespace {

TEST(RelaxationTest, ConvergesTowardLinearProfile) {
  RelaxOptions opts;
  opts.cells_per_node = 8;
  opts.sweeps = 4000;
  opts.left = 0.0;
  opts.right = 1.0;
  auto run = run_relaxation(3, {}, opts);
  ASSERT_TRUE(run.errors.empty());
  const std::size_t total = run.u.size();
  ASSERT_EQ(total, 64u);
  // The fixed point of u_k = (u_{k-1}+u_{k+1})/2 with these ends is the
  // linear ramp u_k = (k+1)/(total+1).
  for (std::size_t k = 0; k < total; ++k) {
    const double expect = static_cast<double>(k + 1) / static_cast<double>(total + 1);
    EXPECT_NEAR(run.u[k], expect, 0.02) << "cell " << k;
  }
  EXPECT_LT(run.max_update_last_sweep, 1e-3);
}

TEST(RelaxationTest, RespectsMaximumPrinciple) {
  RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 50;
  opts.left = -2.0;
  opts.right = 3.0;
  std::vector<double> init(4 * 16, 1.0);
  init[10] = 2.5;  // interior bump inside the band
  auto run = run_relaxation(4, init, opts);
  ASSERT_TRUE(run.errors.empty());
  for (double v : run.u) {
    EXPECT_GE(v, -2.0 - 1e-9);
    EXPECT_LE(v, 3.0 + 1e-9);
  }
}

TEST(RelaxationTest, UpdateMagnitudeDecays) {
  RelaxOptions opts;
  opts.cells_per_node = 8;
  opts.sweeps = 10;
  auto short_run = run_relaxation(3, {}, opts);
  opts.sweeps = 200;
  auto long_run = run_relaxation(3, {}, opts);
  EXPECT_LT(long_run.max_update_last_sweep, short_run.max_update_last_sweep);
}

TEST(RelaxationTest, DimensionZeroSolvesAlone) {
  RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 500;
  auto run = run_relaxation(0, {}, opts);
  ASSERT_TRUE(run.errors.empty());
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(run.u[k], static_cast<double>(k + 1) / 5.0, 0.01);
}

// A mutator corrupting the halo value on one directed link from one sweep on.
fault::Mutator corrupt_halo(cube::NodeId from, cube::NodeId to, int sweep,
                            double bogus) {
  return [=](cube::NodeId f, cube::NodeId t, sim::Message& m) {
    if (f != from || t != to || m.kind != sim::MsgKind::kApp || m.stage < sweep ||
        m.data.size() != 3)
      return fault::Action::kPass;
    m.data[0] = std::bit_cast<sim::Key>(bogus);
    return fault::Action::kMutated;
  };
}

TEST(RelaxationTest, OutOfBandHaloTripsFeasibility) {
  fault::Adversary adversary;
  // Gray-code rank neighbors of node 0 (rank 0) include node 1 (rank 1).
  adversary.add(corrupt_halo(1, 0, 5, 50.0));  // far outside [0, 1]
  RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 40;
  opts.interceptor = &adversary;
  // Isolate Φ_F: the jump would otherwise trip the progress assertion first.
  opts.check_progress = false;
  auto run = run_relaxation(3, {}, opts);
  ASSERT_TRUE(run.fail_stop());
  EXPECT_EQ(run.errors.front().source, sim::ErrorSource::kPhiF);
}

TEST(RelaxationTest, InBandHaloLieTrippedByEchoConsistency) {
  fault::Adversary adversary;
  adversary.add(corrupt_halo(1, 0, 5, 0.25));  // plausible value, still a lie
  RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 40;
  opts.interceptor = &adversary;
  // Isolate Φ_C: the victim must survive its own checks long enough to echo
  // the lie back to the sender, which is where the conviction happens.
  opts.check_progress = false;
  opts.check_feasibility = false;
  auto run = run_relaxation(3, {}, opts);
  ASSERT_TRUE(run.fail_stop());
  bool echo_fired = false;
  for (const auto& e : run.errors)
    echo_fired |= e.source == sim::ErrorSource::kPhiC;
  EXPECT_TRUE(echo_fired) << "the lied-to value is echoed back and convicts";
}

TEST(RelaxationTest, DroppedHaloDetectedAsTimeout) {
  struct DropLink : sim::LinkInterceptor {
    bool on_send(cube::NodeId from, cube::NodeId to, sim::Message& m) override {
      return !(from == 3 && to == 2 && m.stage >= 7);
    }
  } drop;
  RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 40;
  opts.interceptor = &drop;
  auto run = run_relaxation(3, {}, opts);
  ASSERT_TRUE(run.fail_stop());
  bool timeout_fired = false;
  for (const auto& e : run.errors)
    timeout_fired |= e.source == sim::ErrorSource::kTimeout;
  EXPECT_TRUE(timeout_fired);
}

TEST(RelaxationTest, ChecksCanBeDisabled) {
  fault::Adversary adversary;
  adversary.add(corrupt_halo(1, 0, 5, 0.25));
  RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 20;
  opts.interceptor = &adversary;
  opts.check_progress = false;
  opts.check_feasibility = false;
  opts.check_consistency = false;
  auto run = run_relaxation(3, {}, opts);
  EXPECT_FALSE(run.fail_stop()) << "unprotected run absorbs the lie silently";
}

}  // namespace
}  // namespace aoft::core
