#include "aoft/constraint.h"

#include <gtest/gtest.h>

namespace aoft::core {
namespace {

struct Counter {
  int value = 0;
};

TEST(ConstraintPredicateTest, EmptyPredicateAlwaysHolds) {
  ConstraintPredicate<Counter> phi;
  EXPECT_EQ(phi.size(), 0u);
  EXPECT_FALSE(phi(Counter{0}, Counter{5}).has_value());
}

TEST(ConstraintPredicateTest, ReportsTheRegisteredMetric) {
  ConstraintPredicate<Counter> phi;
  phi.feasibility([](const Counter&, const Counter& c) -> std::optional<std::string> {
    if (c.value < 0) return "negative";
    return std::nullopt;
  });
  const auto v = phi(Counter{0}, Counter{-1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->metric, Violation::Metric::kFeasibility);
  EXPECT_EQ(v->detail, "negative");
}

TEST(ConstraintPredicateTest, ProgressSeesPreviousState) {
  ConstraintPredicate<Counter> phi;
  phi.progress([](const Counter& prev, const Counter& cur) -> std::optional<std::string> {
    if (cur.value <= prev.value) return "no progress";
    return std::nullopt;
  });
  EXPECT_FALSE(phi(Counter{1}, Counter{2}).has_value());
  EXPECT_TRUE(phi(Counter{2}, Counter{2}).has_value());
}

TEST(ConstraintPredicateTest, FirstViolationInRegistrationOrderWins) {
  ConstraintPredicate<Counter> phi;
  phi.progress([](const Counter&, const Counter&) -> std::optional<std::string> {
    return "p";
  });
  phi.consistency([](const Counter&, const Counter&) -> std::optional<std::string> {
    return "c";
  });
  const auto v = phi(Counter{}, Counter{});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->metric, Violation::Metric::kProgress);
}

TEST(ConstraintPredicateTest, AllThreeMetricsCompose) {
  ConstraintPredicate<Counter> phi;
  int calls = 0;
  auto pass = [&calls](const Counter&, const Counter&) -> std::optional<std::string> {
    ++calls;
    return std::nullopt;
  };
  phi.progress(pass).feasibility(pass).consistency(pass);
  EXPECT_EQ(phi.size(), 3u);
  EXPECT_FALSE(phi(Counter{}, Counter{}).has_value());
  EXPECT_EQ(calls, 3);
}

TEST(ConstraintPredicateTest, MetricNames) {
  EXPECT_STREQ(to_string(Violation::Metric::kProgress), "progress");
  EXPECT_STREQ(to_string(Violation::Metric::kFeasibility), "feasibility");
  EXPECT_STREQ(to_string(Violation::Metric::kConsistency), "consistency");
}

}  // namespace
}  // namespace aoft::core
