// AOFT relaxation labeling: convergence to confident consistent labelings,
// provable alarm-freedom of the progress predicate, fail-stop under halo
// tampering.

#include "aoft/labeling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/adversary.h"
#include "util/rng.h"

namespace aoft::core {
namespace {

// A noisy two-label chain: the left half leans to label 0, the right half to
// label 1, with adjustable lean.
LabelingProblem two_region_problem(std::size_t objects, double lean,
                                   std::uint64_t seed) {
  LabelingProblem prob;
  prob.labels = 2;
  prob.compat = smoothing_compat(2, 0.0);
  prob.initial.resize(objects * 2);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < objects; ++i) {
    const double noise = 0.1 * rng.next_unit();
    const double p0 = (i < objects / 2 ? 0.5 + lean : 0.5 - lean) + noise - 0.05;
    const double clamped = std::min(0.95, std::max(0.05, p0));
    prob.initial[i * 2] = clamped;
    prob.initial[i * 2 + 1] = 1.0 - clamped;
  }
  return prob;
}

TEST(LabelingTest, SmoothsToTwoConfidentRegions) {
  LabelingOptions opts;
  opts.objects_per_node = 4;
  opts.sweeps = 60;
  const std::size_t objects = 4 * 16;
  auto prob = two_region_problem(objects, 0.15, 7);
  auto run = run_labeling(4, prob, opts);
  ASSERT_TRUE(run.errors.empty())
      << run.errors.front().detail;
  const auto decisions = run.decisions(2);
  // Interior objects must follow their region (boundaries may waver).
  for (std::size_t i = 2; i + 2 < objects; ++i) {
    if (i < objects / 2 - 2) {
      EXPECT_EQ(decisions[i], 0u) << "object " << i;
    } else if (i > objects / 2 + 2) {
      EXPECT_EQ(decisions[i], 1u) << "object " << i;
    }
  }
}

TEST(LabelingTest, OutputsStayOnTheSimplex) {
  LabelingOptions opts;
  opts.objects_per_node = 8;
  opts.sweeps = 40;
  auto prob = two_region_problem(8 * 8, 0.1, 11);
  auto run = run_labeling(3, prob, opts);
  ASSERT_TRUE(run.errors.empty());
  for (std::size_t i = 0; i * 2 < run.p.size(); ++i) {
    EXPECT_GE(run.p[i * 2], -1e-9);
    EXPECT_LE(run.p[i * 2], 1.0 + 1e-9);
    EXPECT_NEAR(run.p[i * 2] + run.p[i * 2 + 1], 1.0, 1e-9);
  }
}

TEST(LabelingTest, AlarmFreeAcrossSeedsAndShapes) {
  // The progress predicate is a theorem for q >= 0; no configuration of
  // inputs may trip it (or any other check) without a fault.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    for (int dim : {1, 3}) {
      LabelingOptions opts;
      opts.objects_per_node = 3;
      opts.sweeps = 25;
      auto prob = two_region_problem(3u * (1u << dim), 0.2, seed);
      auto run = run_labeling(dim, prob, opts);
      EXPECT_TRUE(run.errors.empty()) << "dim=" << dim << " seed=" << seed;
    }
  }
}

TEST(LabelingTest, ThreeLabelAlphabet) {
  LabelingOptions opts;
  opts.objects_per_node = 4;
  opts.sweeps = 30;
  LabelingProblem prob;
  prob.labels = 3;
  prob.compat = smoothing_compat(3, 0.2);
  const std::size_t objects = 4 * 8;
  prob.initial.resize(objects * 3);
  util::Rng rng(5);
  for (std::size_t i = 0; i < objects; ++i) {
    double sum = 0.0;
    for (std::size_t l = 0; l < 3; ++l) {
      prob.initial[i * 3 + l] = 0.1 + rng.next_unit();
      sum += prob.initial[i * 3 + l];
    }
    for (std::size_t l = 0; l < 3; ++l) prob.initial[i * 3 + l] /= sum;
  }
  auto run = run_labeling(3, prob, opts);
  EXPECT_TRUE(run.errors.empty());
  EXPECT_EQ(run.decisions(3).size(), objects);
}

// Corrupt one halo label vector on one directed link from one sweep on.
fault::Mutator corrupt_label_halo(cube::NodeId from, cube::NodeId to, int sweep,
                                  double bogus) {
  return [=](cube::NodeId f, cube::NodeId t, sim::Message& m) {
    if (f != from || t != to || m.kind != sim::MsgKind::kApp || m.stage < sweep ||
        m.data.size() < 2)
      return fault::Action::kPass;
    m.data[1] = std::bit_cast<sim::Key>(bogus);  // first edge-vector entry
    return fault::Action::kMutated;
  };
}

TEST(LabelingTest, OffSimplexHaloTripsFeasibilityOrProgress) {
  fault::Adversary adversary;
  adversary.add(corrupt_label_halo(1, 0, 5, 9.5));
  LabelingOptions opts;
  opts.objects_per_node = 4;
  opts.sweeps = 30;
  opts.interceptor = &adversary;
  auto prob = two_region_problem(4 * 8, 0.15, 13);
  auto run = run_labeling(3, prob, opts);
  ASSERT_TRUE(run.fail_stop());
}

TEST(LabelingTest, PlausibleHaloLieTrippedByEcho) {
  fault::Adversary adversary;
  adversary.add(corrupt_label_halo(1, 0, 5, 0.42));  // still a valid-looking prob
  LabelingOptions opts;
  opts.objects_per_node = 4;
  opts.sweeps = 30;
  opts.interceptor = &adversary;
  opts.check_progress = false;     // isolate Φ_C
  opts.check_feasibility = false;
  auto prob = two_region_problem(4 * 8, 0.15, 17);
  auto run = run_labeling(3, prob, opts);
  ASSERT_TRUE(run.fail_stop());
  bool echo_fired = false;
  for (const auto& e : run.errors)
    echo_fired |= e.source == sim::ErrorSource::kPhiC;
  EXPECT_TRUE(echo_fired);
}

TEST(LabelingTest, UnprotectedRunAbsorbsTheLie) {
  fault::Adversary adversary;
  adversary.add(corrupt_label_halo(1, 0, 5, 0.42));
  LabelingOptions opts;
  opts.objects_per_node = 4;
  opts.sweeps = 30;
  opts.interceptor = &adversary;
  opts.check_progress = false;
  opts.check_feasibility = false;
  opts.check_consistency = false;
  auto prob = two_region_problem(4 * 8, 0.15, 17);
  auto run = run_labeling(3, prob, opts);
  EXPECT_FALSE(run.fail_stop());
}

TEST(SmoothingCompatTest, ShapeAndSymmetry) {
  const auto r = smoothing_compat(3, 0.25);
  ASSERT_EQ(r.size(), 9u);
  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_EQ(r[a * 3 + b], r[b * 3 + a]);
      EXPECT_EQ(r[a * 3 + b], a == b ? 1.0 : 0.25);
    }
}

}  // namespace
}  // namespace aoft::core
