// Cross-algorithm integration: all four sorters agree on the answer, and the
// cost model reproduces the paper's qualitative §5 story.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

TEST(EndToEndTest, AllAlgorithmsProduceTheSameSort) {
  for (int dim : {1, 3, 5, 7}) {
    auto input = util::random_keys(1000 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    const auto snr = run_snr(dim, input);
    const auto sft = run_sft(dim, input);
    const auto host = run_host_sort(dim, input);
    const auto verified = run_host_verified_snr(dim, input);
    EXPECT_EQ(snr.output, sft.output) << "dim=" << dim;
    EXPECT_EQ(snr.output, host.output) << "dim=" << dim;
    EXPECT_EQ(snr.output, verified.output) << "dim=" << dim;
    EXPECT_TRUE(std::is_sorted(sft.output.begin(), sft.output.end()));
  }
}

TEST(EndToEndTest, BlockVariantsAgreeToo) {
  const std::size_t m = 4;
  const int dim = 4;
  auto input = util::random_keys(55, (std::size_t{1} << dim) * m);
  SnrOptions snr_opts;
  snr_opts.block = m;
  SftOptions sft_opts;
  sft_opts.block = m;
  HostSortOptions host_opts;
  host_opts.block = m;
  EXPECT_EQ(run_snr(dim, input, snr_opts).output,
            run_sft(dim, input, sft_opts).output);
  EXPECT_EQ(run_sft(dim, input, sft_opts).output,
            run_host_sort(dim, input, host_opts).output);
}

TEST(EndToEndTest, FaultToleranceCostsCommunication) {
  // S_FT pays for reliability in message *length*: same exchange schedule,
  // strictly more communication volume than S_NR.
  auto input = util::random_keys(77, 64);
  const auto snr = run_snr(6, input);
  const auto sft = run_sft(6, input);
  EXPECT_GT(sft.summary.total_words, 3 * snr.summary.total_words);
  EXPECT_GT(sft.summary.max_comm, snr.summary.max_comm);
  EXPECT_GT(sft.summary.elapsed, snr.summary.elapsed);
}

TEST(EndToEndTest, MessageComplexityUnchangedUpToFinalRound) {
  // The paper's efficiency claim: checking rides along existing messages.
  // S_FT sends exactly the S_NR schedule plus the final verification round
  // (one exchange per dimension): N·n extra messages in total.
  for (int dim : {2, 4, 6}) {
    auto input = util::random_keys(88, std::size_t{1} << dim);
    const auto snr = run_snr(dim, input);
    const auto sft = run_sft(dim, input);
    const std::uint64_t n = static_cast<std::uint64_t>(dim);
    EXPECT_EQ(sft.summary.total_msgs,
              snr.summary.total_msgs + (std::uint64_t{1} << dim) * n)
        << "dim=" << dim;
  }
}

TEST(EndToEndTest, HostSortWinsAtFigure6Sizes) {
  // Figure 6: at 4..32 nodes the host sort is still faster than S_FT
  // (the constant multiplier dominates, as the paper observes).
  for (int dim : {2, 3, 4, 5}) {
    auto input = util::random_keys(99, std::size_t{1} << dim);
    const auto sft = run_sft(dim, input);
    const auto host = run_host_sort(dim, input);
    EXPECT_LT(host.summary.elapsed, sft.summary.elapsed) << "dim=" << dim;
  }
}

TEST(EndToEndTest, SftOvertakesHostSortAtScale) {
  // Figure 7: the projected crossover is within realistic multicomputer
  // sizes.  Simulate directly rather than project: by 2048 nodes the host's
  // serial O(N) link cost dominates S_FT's O(log²N)-latency schedule.
  auto input = util::random_keys(111, std::size_t{1} << 11);
  const auto sft = run_sft(11, input);
  const auto host = run_host_sort(11, input);
  EXPECT_LT(sft.summary.elapsed, host.summary.elapsed);
}

TEST(EndToEndTest, SnrIsAlwaysTheCheapest) {
  auto input = util::random_keys(121, 256);
  const auto snr = run_snr(8, input);
  const auto sft = run_sft(8, input);
  const auto host = run_host_sort(8, input);
  EXPECT_LT(snr.summary.elapsed, sft.summary.elapsed);
  EXPECT_LT(snr.summary.elapsed, host.summary.elapsed);
}

}  // namespace
}  // namespace aoft::sort
