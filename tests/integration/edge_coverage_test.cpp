// Edge coverage across module seams that the mainline suites do not hit:
// host-verified block sorting, host-side error reporting, mixed-fault
// recovery, labeling decisions, degenerate fits.

#include <gtest/gtest.h>

#include <algorithm>

#include "aoft/labeling.h"
#include "analysis/fit.h"
#include "fault/adversary.h"
#include "fault/recovery.h"
#include "sort/sequential.h"
#include "util/rng.h"

namespace aoft {
namespace {

TEST(EdgeCoverageTest, HostVerifiedBlockSortAccepts) {
  sort::HostVerifyOptions opts;
  opts.block = 4;
  auto input = util::random_keys(61, 16 * 4);
  auto run = sort::run_host_verified_snr(4, input, opts);
  EXPECT_TRUE(run.errors.empty());
  std::vector<sort::Key> expect(input.begin(), input.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(run.output, expect);
}

TEST(EdgeCoverageTest, HostVerifiedBlockSortRejectsCorruption) {
  sort::HostVerifyOptions opts;
  opts.block = 4;
  opts.node_faults[5].invert_direction_from = fault::StagePoint{1, 1};
  auto input = util::random_keys(62, 16 * 4);
  auto run = sort::run_host_verified_snr(4, input, opts);
  EXPECT_EQ(sort::classify(run, input), sort::Outcome::kFailStop);
}

TEST(EdgeCoverageTest, HostErrorReportsAppearInRunErrors) {
  sim::Machine machine(cube::Topology{1}, sim::CostModel{});
  machine.run([](sim::Ctx&) -> sim::SimTask { co_return; },
              [](sim::HostCtx& host) -> sim::SimTask {
                host.error({0, 7, -1, sim::ErrorSource::kApp, "host said no"});
                co_return;
              });
  ASSERT_EQ(machine.errors().size(), 1u);
  EXPECT_EQ(machine.errors()[0].stage, 7);
  EXPECT_TRUE(machine.failed_stop());
}

TEST(EdgeCoverageTest, RecoveryAcrossDifferentTransientFaults) {
  // Attempt 0 and 1 fail with *different* faults; attempt 2 is clean.  The
  // per-attempt diagnoses disagree, so no suspect is persistent — exactly
  // the signature of transient noise rather than a broken node.
  auto input = util::random_keys(63, 16);
  fault::Adversary first, second;
  first.add(fault::drop_message(2, {1, 1}));
  second.add(fault::drop_message(12, {2, 0}));
  const auto run = fault::run_sft_with_recovery(
      4, input, {},
      [&](int attempt) -> sim::LinkInterceptor* {
        if (attempt == 0) return &first;
        if (attempt == 1) return &second;
        return nullptr;
      },
      3);
  EXPECT_EQ(run.attempts, 3);
  EXPECT_TRUE(run.recovered);
  ASSERT_EQ(run.diagnoses.size(), 2u);
  EXPECT_TRUE(fault::persistent_suspects(run).empty());
}

TEST(EdgeCoverageTest, LabelingDecisionsPickArgmax) {
  core::LabelingRun run;
  run.p = {0.2, 0.8, 0.9, 0.1, 0.5, 0.5};
  const auto d = run.decisions(2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 1u);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[2], 0u);  // ties resolve to the lower label
}

TEST(EdgeCoverageTest, CollinearBasisFitThrows) {
  // Two identical basis functions make the normal equations singular; the
  // fitter must refuse rather than return garbage coefficients.
  std::vector<analysis::Basis> basis{{"N", [](double n) { return n; }},
                                     {"N again", [](double n) { return n; }}};
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_THROW(analysis::fit(basis, xs, ys), std::runtime_error);
}

TEST(EdgeCoverageTest, DimensionOneSftWithBlocks) {
  // The smallest nontrivial machine: two nodes, blocks, full protocol
  // including the final verification round.
  sort::SftOptions opts;
  opts.block = 5;
  auto input = util::random_keys(64, 2 * 5);
  auto run = sort::run_sft(1, input, opts);
  EXPECT_TRUE(run.errors.empty());
  std::vector<sort::Key> expect(input.begin(), input.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(run.output, expect);
}

TEST(EdgeCoverageTest, ReplayOfIdenticalContentIsNotFlagged) {
  // A replayed message whose content happens to be identical to the honest
  // one is not a semantic deviation; the adversary reports it untouched and
  // the run completes cleanly.  (All-zero keys make every slice — including
  // the never-collected positions of the gossip buffers — bit-identical.)
  fault::Adversary a;
  a.add(fault::replay_stale_lbs(3, {1, 1}));
  sort::SftOptions opts;
  opts.interceptor = &a;
  std::vector<sort::Key> input(16, 0);
  auto run = sort::run_sft(4, input, opts);
  EXPECT_TRUE(run.errors.empty());
  EXPECT_EQ(sort::classify(run, input), sort::Outcome::kCorrect);
}

}  // namespace
}  // namespace aoft
