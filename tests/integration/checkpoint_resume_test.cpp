// Checkpoint/resume determinism (recovery supervisor, DESIGN §7).
//
// The rollback rung is only sound if re-entering S_FT at a certified stage
// boundary reproduces the uninterrupted run exactly: same output bits, same
// downstream Φ evaluations, and — when a fault hits after the resume point —
// the same fail-stop diagnostics.  The deterministic scheduler makes this a
// strict equality property, not a statistical one.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "fault/adversary.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

// Key: (stage, node) -> (lbs_window, llbs_window) as seen by the observer.
using SnapshotMap =
    std::map<std::pair<int, cube::NodeId>, std::pair<std::vector<Key>, std::vector<Key>>>;

SftOptions snapshotting(SnapshotMap& into, std::size_t block) {
  SftOptions opts;
  opts.block = block;
  opts.checkpoint = true;
  opts.observer = [&into](const StageSnapshot& s) {
    into[{s.stage, s.node}] = {s.lbs_window, s.llbs_window};
  };
  return opts;
}

TEST(CheckpointResumeTest, CleanRunCertifiesEveryBoundary) {
  for (int dim = 2; dim <= 6; ++dim) {
    const std::size_t block = 1 + dim % 2;
    auto input = util::random_keys(100 + dim, (std::size_t{1} << dim) * block);
    SftOptions opts;
    opts.block = block;
    opts.checkpoint = true;
    const auto run = run_sft(dim, input, opts);
    EXPECT_EQ(classify(run, input), Outcome::kCorrect) << "dim " << dim;
    ASSERT_EQ(run.checkpoints.size(), static_cast<std::size_t>(dim));
    for (const auto& ck : run.checkpoints) {
      EXPECT_TRUE(ck.certified) << "dim " << dim << " stage " << ck.stage;
      EXPECT_EQ(ck.windows_agreed, ck.windows_total);
      EXPECT_TRUE(is_permutation_of(ck.state, input));
    }
    // The collector drains until quiescence: exactly one watchdog round.
    EXPECT_EQ(run.summary.watchdog_rounds, 1);
  }
}

TEST(CheckpointResumeTest, ResumedRunIsBitIdentical) {
  for (int dim = 2; dim <= 6; ++dim) {
    for (std::uint64_t seed : {1u, 2u}) {
      const std::size_t block = 1 + seed % 2;
      auto input =
          util::random_keys(200 * dim + seed, (std::size_t{1} << dim) * block);
      SnapshotMap full_snaps;
      const auto full = run_sft(dim, input, snapshotting(full_snaps, block));
      ASSERT_EQ(classify(full, input), Outcome::kCorrect);

      for (int k = 1; k < dim; ++k) {
        ResumeState rs;
        rs.stage = k;
        rs.blocks = full.checkpoints[k].state;
        rs.llbs = full.checkpoints[k - 1].state;
        SnapshotMap resumed_snaps;
        const auto resumed =
            resume_sft(dim, rs, snapshotting(resumed_snaps, block));
        EXPECT_EQ(resumed.output, full.output)
            << "dim " << dim << " resume from " << k;
        EXPECT_TRUE(resumed.errors.empty());
        // Every downstream Φ evaluation saw the same bits.
        for (const auto& [key, windows] : resumed_snaps) {
          ASSERT_TRUE(full_snaps.count(key));
          EXPECT_EQ(windows, full_snaps.at(key))
              << "stage " << key.first << " node " << key.second;
        }
        // Re-certified checkpoints match the originals word for word.
        for (const auto& ck : resumed.checkpoints) {
          EXPECT_TRUE(ck.certified);
          EXPECT_EQ(ck.state, full.checkpoints[ck.stage].state);
        }
      }
    }
  }
}

TEST(CheckpointResumeTest, ResumedRunReproducesDownstreamFailStop) {
  // A fault that strikes after the resume point must produce the identical
  // diagnosis whether the run started at stage 0 or at the checkpoint.
  const int dim = 4;
  for (std::uint64_t seed : {7u, 8u}) {
    auto input = util::random_keys(seed, std::size_t{1} << dim);
    fault::Adversary adv;
    adv.add(fault::drop_message(6, {3, 1}));

    SftOptions opts;
    opts.checkpoint = true;
    opts.interceptor = &adv;
    const auto full = run_sft(dim, input, opts);
    ASSERT_EQ(classify(full, input), Outcome::kFailStop);

    const auto rs = make_resume_state(full.checkpoints);
    ASSERT_TRUE(rs.has_value());
    EXPECT_EQ(rs->stage, 2);  // C_2 and C_1 certified before the stage-3 hit
    const auto resumed = resume_sft(dim, *rs, opts);
    // Each node detects at the identical protocol position; only the order
    // the reports reach the host differs (the resumed run's clocks restart
    // at zero, so the watchdog drains blocked receivers in another order).
    auto positions = [](const std::vector<sim::ErrorReport>& errors) {
      std::vector<std::tuple<cube::NodeId, int, int, sim::ErrorSource>> out;
      for (const auto& e : errors) out.emplace_back(e.node, e.stage, e.iter, e.source);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(positions(resumed.errors), positions(full.errors));
  }
}

TEST(CheckpointResumeTest, MakeResumeStateNeedsACertifiedPair) {
  std::vector<StageCheckpoint> cks(3);
  for (int i = 0; i < 3; ++i) cks[i].stage = i;
  EXPECT_FALSE(make_resume_state(cks).has_value());  // nothing certified
  cks[0].certified = true;
  EXPECT_FALSE(make_resume_state(cks).has_value());  // C_0 alone: k >= 1 needed
  cks[2].certified = true;
  EXPECT_FALSE(make_resume_state(cks).has_value());  // C_2 without C_1
  cks[1].certified = true;
  const auto rs = make_resume_state(cks);
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->stage, 2);  // deepest pair wins
}

}  // namespace
}  // namespace aoft::sort
