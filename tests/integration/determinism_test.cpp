// Whole-system determinism: every runner replays bit-identically for the
// same (input, fault plan), across all applications.  The fault campaigns,
// the recovery logic and the experiment benches all assume this.

#include <gtest/gtest.h>

#include "aoft/labeling.h"
#include "aoft/relaxation.h"
#include "fault/adversary.h"
#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft {
namespace {

TEST(DeterminismTest, SnrReplaysExactly) {
  auto input = util::random_keys(71, 64);
  const auto a = sort::run_snr(6, input);
  const auto b = sort::run_snr(6, input);
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.summary.elapsed, b.summary.elapsed);
}

TEST(DeterminismTest, FaultySftReplaysExactly) {
  auto input = util::random_keys(72, 16);
  auto make_run = [&] {
    fault::Adversary adversary;
    adversary.add(fault::garble_lbs(3, {1, 1}, 99));
    sort::SftOptions opts;
    opts.interceptor = &adversary;
    opts.node_faults[9].invert_direction_from = fault::StagePoint{2, 0};
    return sort::run_sft(4, input, opts);
  };
  const auto a = make_run();
  const auto b = make_run();
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].node, b.errors[i].node);
    EXPECT_EQ(a.errors[i].stage, b.errors[i].stage);
    EXPECT_EQ(a.errors[i].iter, b.errors[i].iter);
    EXPECT_EQ(a.errors[i].source, b.errors[i].source);
  }
  EXPECT_EQ(a.output, b.output);
}

TEST(DeterminismTest, HostSortReplaysExactly) {
  auto input = util::random_keys(73, 32);
  const auto a = sort::run_host_sort(5, input);
  const auto b = sort::run_host_sort(5, input);
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.summary.host_comm, b.summary.host_comm);
  EXPECT_DOUBLE_EQ(a.summary.host_comp, b.summary.host_comp);
}

TEST(DeterminismTest, RelaxationReplaysExactly) {
  core::RelaxOptions opts;
  opts.cells_per_node = 4;
  opts.sweeps = 50;
  const auto a = core::run_relaxation(3, {}, opts);
  const auto b = core::run_relaxation(3, {}, opts);
  EXPECT_EQ(a.u, b.u);  // bitwise: same operations in the same order
  EXPECT_DOUBLE_EQ(a.max_update_last_sweep, b.max_update_last_sweep);
}

TEST(DeterminismTest, LabelingReplaysExactly) {
  core::LabelingProblem prob;
  prob.labels = 2;
  prob.compat = core::smoothing_compat(2);
  prob.initial.assign(2 * 2 * 8, 0.5);
  core::LabelingOptions opts;
  opts.objects_per_node = 2;
  opts.sweeps = 20;
  const auto a = core::run_labeling(3, prob, opts);
  const auto b = core::run_labeling(3, prob, opts);
  EXPECT_EQ(a.p, b.p);
}

TEST(DeterminismTest, DifferentSeedsDifferentSchedulesSameAnswer) {
  // Sanity that determinism is not an artifact of identical inputs only:
  // different inputs follow different compare-exchange data paths but the
  // structural metrics (message counts) are input-independent.
  auto in1 = util::random_keys(74, 64);
  auto in2 = util::random_keys(75, 64);
  const auto a = sort::run_sft(6, in1);
  const auto b = sort::run_sft(6, in2);
  EXPECT_NE(a.output, b.output);
  EXPECT_EQ(a.summary.total_msgs, b.summary.total_msgs);
  EXPECT_EQ(a.summary.total_words, b.summary.total_words);
}

}  // namespace
}  // namespace aoft
