// Randomized fault sweeps over the two AOFT applications beyond sorting:
// under arbitrary single-link halo corruption, a protected run must end
// fail-stop or with output identical to the unfaulted run (the corruption
// was dropped on the floor by shape guards) — never silently diverged.

#include <gtest/gtest.h>

#include <cmath>

#include "aoft/labeling.h"
#include "aoft/relaxation.h"
#include "fault/adversary.h"
#include "hypercube/gray.h"
#include "util/rng.h"

namespace aoft::core {
namespace {

// Corrupt the halo value field on one random Gray-ring link from one random
// sweep onward.
fault::Mutator random_halo_corruption(int dim, util::Rng& rng, int max_sweep) {
  cube::Topology topo(dim);
  const auto from = static_cast<cube::NodeId>(rng.next_below(topo.num_nodes()));
  const auto pos = cube::gray_chain_position(topo, from);
  const auto to = rng.next_bool() && pos.has_next ? pos.next
                  : pos.has_prev                  ? pos.prev
                                                  : pos.next;
  const int sweep = 1 + static_cast<int>(
                            rng.next_below(static_cast<std::uint64_t>(max_sweep)));
  const double bogus = static_cast<double>(rng.next_in(-40, 40)) / 10.0;
  return [=](cube::NodeId f, cube::NodeId t, sim::Message& m) {
    if (f != from || t != to || m.kind != sim::MsgKind::kApp || m.stage < sweep ||
        m.data.empty())
      return fault::Action::kPass;
    const auto packed = std::bit_cast<sim::Key>(bogus);
    if (m.data[m.data.size() > 1 ? 1 : 0] == packed) return fault::Action::kPass;
    m.data[m.data.size() > 1 ? 1 : 0] = packed;
    return fault::Action::kMutated;
  };
}

TEST(AppFaultSweepTest, RelaxationNeverSilentlyDiverges) {
  const int dim = 3;
  RelaxOptions base;
  base.cells_per_node = 4;
  base.sweeps = 30;
  const auto reference = run_relaxation(dim, {}, base);
  ASSERT_TRUE(reference.errors.empty());

  util::Rng rng(808);
  int fail_stops = 0;
  for (int rep = 0; rep < 20; ++rep) {
    fault::Adversary adversary;
    adversary.add(random_halo_corruption(dim, rng, base.sweeps - 2));
    auto opts = base;
    opts.interceptor = &adversary;
    const auto run = run_relaxation(dim, {}, opts);
    if (run.fail_stop()) {
      ++fail_stops;
      continue;
    }
    // No alarm: the mutator must not have changed anything observable.
    EXPECT_EQ(run.u, reference.u) << "rep=" << rep;
  }
  EXPECT_GT(fail_stops, 10) << "most corruptions should be caught";
}

TEST(AppFaultSweepTest, LabelingNeverSilentlyDiverges) {
  const int dim = 3;
  LabelingProblem prob;
  prob.labels = 2;
  prob.compat = smoothing_compat(2, 0.1);
  prob.initial.resize(4 * 8 * 2);
  util::Rng init_rng(77);
  for (std::size_t i = 0; i < prob.initial.size(); i += 2) {
    const double p = 0.2 + 0.6 * init_rng.next_unit();
    prob.initial[i] = p;
    prob.initial[i + 1] = 1.0 - p;
  }
  LabelingOptions base;
  base.objects_per_node = 4;
  base.sweeps = 25;
  const auto reference = run_labeling(dim, prob, base);
  ASSERT_TRUE(reference.errors.empty());

  util::Rng rng(909);
  int fail_stops = 0;
  for (int rep = 0; rep < 20; ++rep) {
    fault::Adversary adversary;
    adversary.add(random_halo_corruption(dim, rng, base.sweeps - 2));
    auto opts = base;
    opts.interceptor = &adversary;
    const auto run = run_labeling(dim, prob, opts);
    if (run.fail_stop()) {
      ++fail_stops;
      continue;
    }
    EXPECT_EQ(run.p, reference.p) << "rep=" << rep;
  }
  EXPECT_GT(fail_stops, 10);
}

}  // namespace
}  // namespace aoft::core
