// Resilience bound (paper Thm 3): with up to n-1 faulty nodes in the n-cube,
// S_FT must never deliver a wrong sort; beyond the bound no promise is made.

#include <gtest/gtest.h>

#include "fault/adversary.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

using sort::Outcome;

// Assign k distinct faulty nodes a randomized mix of processor faults.
NodeFaultMap random_faults(int dim, int k, util::Rng& rng) {
  NodeFaultMap map;
  const auto num_nodes = cube::NodeId{1} << dim;
  while (static_cast<int>(map.size()) < k) {
    const auto node = static_cast<cube::NodeId>(rng.next_below(num_nodes));
    if (map.contains(node)) continue;
    NodeFault f;
    const int stage =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(dim - 1)));
    const int iter = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(stage + 1)));
    switch (rng.next_below(3)) {
      case 0: f.halt_at = StagePoint{stage, iter}; break;
      case 1: f.invert_direction_from = StagePoint{stage, iter}; break;
      default:
        f.substitute_at = StagePoint{stage, iter};
        f.substitute_value = rng.next_in(1 << 24, 1 << 26);
        break;
    }
    map[node] = f;
  }
  return map;
}

TEST(ResilienceTest, UpToNMinusOneFaultyNodesNeverSilentWrong) {
  const int dim = 4;  // n = 4: tolerate up to 3 faulty nodes
  util::Rng rng(4242);
  for (int k = 1; k <= dim - 1; ++k) {
    for (int rep = 0; rep < 8; ++rep) {
      auto input = util::random_keys(rng.next_u64(), std::size_t{1} << dim);
      sort::SftOptions opts;
      opts.node_faults = random_faults(dim, k, rng);
      auto run = sort::run_sft(dim, input, opts);
      EXPECT_NE(sort::classify(run, input), Outcome::kSilentWrong)
          << "k=" << k << " rep=" << rep;
    }
  }
}

TEST(ResilienceTest, MixedLinkAndProcessorFaults) {
  const int dim = 4;
  util::Rng rng(777);
  for (int rep = 0; rep < 10; ++rep) {
    auto input = util::random_keys(rng.next_u64(), 16);
    Adversary adversary;
    const auto liar = static_cast<cube::NodeId>(rng.next_below(16));
    adversary.add(two_faced_gossip(
        liar, {1, 1}, liar, rng.next_in(1, 1 << 20), 1,
        [](cube::NodeId dest) { return (dest & 2u) != 0; }));
    sort::SftOptions opts;
    opts.interceptor = &adversary;
    opts.node_faults = random_faults(dim, 1, rng);
    auto run = sort::run_sft(dim, input, opts);
    EXPECT_NE(sort::classify(run, input), Outcome::kSilentWrong) << "rep=" << rep;
  }
}

TEST(ResilienceTest, UnprotectedBaselineCorruptsUnderTheSameFaults) {
  // The contrast column: the same fault mix drives S_NR to silent corruption
  // in a substantial fraction of runs.
  const int dim = 4;
  util::Rng rng(4242);
  int silent = 0, total = 0;
  for (int rep = 0; rep < 24; ++rep) {
    auto input = util::random_keys(rng.next_u64(), 16);
    sort::SnrOptions opts;
    opts.node_faults = random_faults(dim, 2, rng);
    auto run = sort::run_snr(dim, input, opts);
    silent += sort::classify(run, input) == Outcome::kSilentWrong;
    ++total;
  }
  EXPECT_GT(silent, total / 4) << "baseline should corrupt often";
}

TEST(ResilienceTest, DetectionIsFailStopAcrossTheSystem) {
  // Once any node signals, the run never pretends to have succeeded: the
  // classify() of a fail-stop run stays fail-stop regardless of outputs.
  auto input = util::random_keys(99, 16);
  sort::SftOptions opts;
  opts.node_faults[7].invert_direction_from = StagePoint{2, 1};
  auto run = sort::run_sft(4, input, opts);
  ASSERT_TRUE(run.fail_stop());
  EXPECT_EQ(sort::classify(run, input), Outcome::kFailStop);
  // Peers of the faulty node observed either the violation or the resulting
  // silence; at least one non-faulty node is among the reporters.
  bool non_faulty_reporter = false;
  for (const auto& e : run.errors) non_faulty_reporter |= e.node != 7;
  EXPECT_TRUE(non_faulty_reporter);
}

}  // namespace
}  // namespace aoft::fault
