// Kill-and-resume harness: SIGKILL the real CLI mid-campaign, resume it, and
// demand bit-identity with an uninterrupted oracle run.
//
// The in-process suites (tests/fault/campaign_checkpoint_test.cpp) prove the
// engine's resume logic; this suite proves the *process-level* claim from
// docs/PROTOCOL.md §10: no kill point — including mid-write of the
// checkpoint or stream — can corrupt durable state or change the final
// artifacts.  It forks the actual aoft_sort_cli binary (path baked in via
// the AOFT_CLI_PATH compile definition), SIGKILLs it at staggered delays,
// resumes until the campaign completes, and byte-compares the slot stream
// against an oracle produced by one uninterrupted run — serial, parallel,
// and probabilistic-soak flavours.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "fault/campaign_store.h"
#include "util/atomic_file.h"

#ifndef AOFT_CLI_PATH
#error "build must define AOFT_CLI_PATH (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace aoft;

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "aoft_kill_" +
                           std::to_string(getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::string out, err;
  EXPECT_TRUE(util::read_file(path, &out, &err)) << path << ": " << err;
  return out;
}

// Fork/exec the CLI.  kill_after_us > 0: SIGKILL the child after that delay
// (it may legitimately win the race and exit first).  Returns the exit code,
// or -1 when the child died by signal.
int run_cli(const std::vector<std::string>& extra_args, long kill_after_us) {
  std::vector<std::string> args = {AOFT_CLI_PATH, "--campaign"};
  args.insert(args.end(), extra_args.begin(), extra_args.end());

  const pid_t pid = fork();
  if (pid == 0) {
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, STDOUT_FILENO);
      dup2(devnull, STDERR_FILENO);
      close(devnull);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(AOFT_CLI_PATH, argv.data());
    _exit(127);
  }
  EXPECT_GT(pid, 0) << "fork failed";

  if (kill_after_us > 0) {
    usleep(static_cast<useconds_t>(kill_after_us));
    kill(pid, SIGKILL);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

// Staggered kill delays: early enough to hit startup and the first slots,
// late enough to land inside checkpoint saves and stream appends.  Fixed
// (not random) so a failure reproduces.
constexpr long kKillDelaysUs[] = {1500, 4000, 9000, 20000, 45000, 90000};

// Kill/resume the same campaign until it completes.
void kill_resume_until_done(const std::vector<std::string>& args) {
  // Each killed attempt makes monotone progress (completed slots are
  // checkpointed, never re-run), so a bounded number of kills cannot
  // prevent completion; the final uninterrupted attempt must succeed.
  for (std::size_t i = 0; i < std::size(kKillDelaysUs); ++i) {
    const int code =
        run_cli(args, kKillDelaysUs[i % std::size(kKillDelaysUs)]);
    if (code == 0) break;                  // won the race and finished
    EXPECT_EQ(code, -1) << "killed attempt " << i
                        << " exited with an error instead of dying";
  }
  EXPECT_EQ(run_cli(args, 0), 0) << "final resume attempt failed";
}

struct Campaign {
  std::string name;
  std::vector<std::string> flags;  // mode/jobs flavour under test
};

class CampaignResumeKillTest : public ::testing::TestWithParam<Campaign> {};

TEST_P(CampaignResumeKillTest, KilledAndResumedStreamMatchesOracle) {
  const auto& param = GetParam();
  const std::vector<std::string> base = {"--dim=3", "--runs=3",
                                         "--seed=20260807",
                                         "--checkpoint-every=1"};

  // Oracle: one uninterrupted run.
  const std::string oracle_ckp = fresh_path(param.name + "_oracle.ckp");
  const std::string oracle_stream = fresh_path(param.name + "_oracle.jsonl");
  {
    auto args = base;
    args.insert(args.end(), param.flags.begin(), param.flags.end());
    args.push_back("--checkpoint=" + oracle_ckp);
    args.push_back("--stream=" + oracle_stream);
    args.push_back("--resume");
    ASSERT_EQ(run_cli(args, 0), 0) << "oracle run failed";
  }
  const std::string oracle = slurp(oracle_stream);
  ASSERT_FALSE(oracle.empty());

  // Victim: same campaign, SIGKILLed repeatedly, resumed to completion.
  const std::string victim_ckp = fresh_path(param.name + "_victim.ckp");
  const std::string victim_stream = fresh_path(param.name + "_victim.jsonl");
  auto args = base;
  args.insert(args.end(), param.flags.begin(), param.flags.end());
  args.push_back("--checkpoint=" + victim_ckp);
  args.push_back("--stream=" + victim_stream);
  args.push_back("--resume");
  kill_resume_until_done(args);

  EXPECT_EQ(slurp(victim_stream), oracle)
      << param.name << ": stream differs from the uninterrupted run";

  // The surviving checkpoint is healthy and complete.
  fault::CheckpointData data;
  std::string err;
  ASSERT_EQ(fault::load_checkpoint(victim_ckp, &data, &err),
            fault::StoreStatus::kOk)
      << err;
  EXPECT_EQ(data.records.size(), fault::identity_total_slots(data.identity));
}

INSTANTIATE_TEST_SUITE_P(
    Flavours, CampaignResumeKillTest,
    ::testing::Values(
        Campaign{"serial", {}},
        Campaign{"parallel", {"--jobs=2"}},
        Campaign{"soak", {"--mode=runlength:2", "--runs=8"}}),
    [](const ::testing::TestParamInfo<Campaign>& info) {
      return info.param.name;
    });

// A resume pointed at another campaign's checkpoint must refuse loudly with
// the CLI's checkpoint-error exit code (4), not clobber or silently restart.
TEST(CampaignResumeKillTest2, ResumeRefusesAForeignCheckpoint) {
  const std::string ckp = fresh_path("foreign.ckp");
  ASSERT_EQ(run_cli({"--dim=3", "--runs=2", "--seed=1", "--resume",
                     "--checkpoint=" + ckp},
                    0),
            0);
  EXPECT_EQ(run_cli({"--dim=3", "--runs=2", "--seed=2", "--resume",
                     "--checkpoint=" + ckp},
                    0),
            4);
  // force-restart is the explicit escape hatch.
  EXPECT_EQ(run_cli({"--dim=3", "--runs=2", "--seed=2",
                     "--resume=force-restart", "--checkpoint=" + ckp},
                    0),
            0);
}

// Garbage at the checkpoint path: loud exit 4 on resume, recovered by
// force-restart.
TEST(CampaignResumeKillTest2, ResumeRefusesGarbageOnDisk) {
  const std::string ckp = fresh_path("garbage.ckp");
  std::string err;
  ASSERT_TRUE(util::write_file_atomic(ckp, "not a checkpoint at all", &err))
      << err;
  EXPECT_EQ(run_cli({"--dim=3", "--runs=2", "--seed=1", "--resume",
                     "--checkpoint=" + ckp},
                    0),
            4);
  EXPECT_EQ(run_cli({"--dim=3", "--runs=2", "--seed=1",
                     "--resume=force-restart", "--checkpoint=" + ckp},
                    0),
            0);
}

// Two shards killed and resumed independently still merge into the exact
// canonical stream (merge logic itself is covered in-process; here we prove
// the shard artifacts survive process death).
TEST(CampaignResumeKillTest2, KilledShardsStillMergeToTheOracle) {
  const std::vector<std::string> base = {"--dim=3", "--runs=2",
                                         "--seed=77", "--checkpoint-every=1"};

  const std::string oracle_ckp = fresh_path("shard_oracle.ckp");
  const std::string oracle_stream = fresh_path("shard_oracle.jsonl");
  {
    auto args = base;
    args.push_back("--checkpoint=" + oracle_ckp);
    args.push_back("--stream=" + oracle_stream);
    args.push_back("--resume");
    ASSERT_EQ(run_cli(args, 0), 0);
  }

  std::vector<fault::CheckpointData> parts(2);
  for (int i = 0; i < 2; ++i) {
    const std::string ckp =
        fresh_path("shard" + std::to_string(i) + ".ckp");
    auto args = base;
    args.push_back("--shard=" + std::to_string(i) + "/2");
    args.push_back("--checkpoint=" + ckp);
    args.push_back("--resume");
    kill_resume_until_done(args);
    std::string err;
    ASSERT_EQ(fault::load_checkpoint(ckp, &parts[i], &err),
              fault::StoreStatus::kOk)
        << err;
  }

  fault::CheckpointData merged;
  std::string err;
  ASSERT_EQ(fault::merge_checkpoints(parts, &merged, &err),
            fault::StoreStatus::kOk)
      << err;
  std::string merged_stream = fault::stream_header(merged.identity);
  for (const auto& rec : merged.records)
    merged_stream += fault::stream_line(merged.identity, rec);
  EXPECT_EQ(merged_stream, slurp(oracle_stream));
}

}  // namespace
