// Scale stress: the sizes the paper could only project (its machine topped
// out at 32 nodes; Figure 7 argues about thousands).  These runs take on the
// order of a second each and assert full correctness plus the cost-model
// orderings the projection relies on.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

TEST(StressTest, SftSortsAThousandNodes) {
  const int dim = 10;  // 1024 nodes — 32x the paper's testbed
  auto input = util::random_keys(2026, std::size_t{1} << dim);
  auto run = run_sft(dim, input);
  ASSERT_TRUE(run.errors.empty());
  std::vector<Key> expect(input.begin(), input.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(run.output, expect);
  EXPECT_EQ(run.summary.watchdog_rounds, 0);
}

TEST(StressTest, SftBeatsHostSortAtScale) {
  const int dim = 11;  // 2048 nodes: past the measured crossover
  auto input = util::random_keys(2027, std::size_t{1} << dim);
  const auto sft = run_sft(dim, input);
  const auto host = run_host_sort(dim, input);
  ASSERT_TRUE(sft.errors.empty());
  EXPECT_EQ(sft.output, host.output);
  EXPECT_LT(sft.summary.elapsed, host.summary.elapsed);
  // And the unprotected sort still leads everything.
  const auto snr = run_snr(dim, input);
  EXPECT_LT(snr.summary.elapsed, sft.summary.elapsed);
}

TEST(StressTest, LargeBlocksManyKeys) {
  const int dim = 6;
  const std::size_t m = 512;  // 32K keys total
  SftOptions opts;
  opts.block = m;
  auto input = util::random_keys(2028, (std::size_t{1} << dim) * m);
  auto run = run_sft(dim, input, opts);
  ASSERT_TRUE(run.errors.empty());
  EXPECT_TRUE(std::is_sorted(run.output.begin(), run.output.end()));
  EXPECT_TRUE(is_permutation_of(run.output, input));
}

TEST(StressTest, FaultAtScaleStillFailStops) {
  const int dim = 9;  // 512 nodes
  auto input = util::random_keys(2029, std::size_t{1} << dim);
  SftOptions opts;
  opts.node_faults[300].substitute_at = fault::StagePoint{5, 2};
  opts.node_faults[300].substitute_value = 1LL << 40;
  auto run = run_sft(dim, input, opts);
  EXPECT_EQ(classify(run, input), Outcome::kFailStop);
}

}  // namespace
}  // namespace aoft::sort
