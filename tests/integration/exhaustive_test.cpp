// Exhaustive small-cube correctness: all permutations and — via the 0-1
// principle that underpins sorting-network proofs — every binary input.
// Batcher's argument: a comparator network sorts all inputs iff it sorts all
// 0-1 inputs; checking S_FT (and its checks' alarm-freedom) on the complete
// 0-1 cube is therefore a complete functional test of the exchange schedule
// for each size.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/sft.h"
#include "sort/snr.h"

namespace aoft::sort {
namespace {

TEST(ExhaustiveTest, AllPermutationsOfFourKeys) {
  std::vector<Key> keys{3, 11, 25, 40};
  std::sort(keys.begin(), keys.end());
  const std::vector<Key> expect = keys;
  do {
    auto run = run_sft(2, keys);
    ASSERT_TRUE(run.errors.empty()) << "alarm on a fault-free permutation";
    ASSERT_EQ(run.output, expect);
  } while (std::next_permutation(keys.begin(), keys.end()));
}

TEST(ExhaustiveTest, AllBinaryInputsDim3) {
  for (unsigned mask = 0; mask < 256; ++mask) {
    std::vector<Key> input(8);
    int ones = 0;
    for (int b = 0; b < 8; ++b) {
      input[b] = (mask >> b) & 1u;
      ones += static_cast<int>(input[b]);
    }
    auto run = run_sft(3, input);
    ASSERT_TRUE(run.errors.empty()) << "mask=" << mask;
    for (int k = 0; k < 8; ++k)
      ASSERT_EQ(run.output[static_cast<std::size_t>(k)], k >= 8 - ones ? 1 : 0)
          << "mask=" << mask << " k=" << k;
  }
}

TEST(ExhaustiveTest, AllBinaryInputsDim4Snr) {
  // The baseline gets the same treatment (cheaper, so one size up).
  for (unsigned mask = 0; mask < 65536; mask += 7) {  // stride keeps it quick
    std::vector<Key> input(16);
    int ones = 0;
    for (int b = 0; b < 16; ++b) {
      input[b] = (mask >> b) & 1u;
      ones += static_cast<int>(input[b]);
    }
    auto run = run_snr(4, input);
    for (int k = 0; k < 16; ++k)
      ASSERT_EQ(run.output[static_cast<std::size_t>(k)], k >= 16 - ones ? 1 : 0)
          << "mask=" << mask;
  }
}

TEST(ExhaustiveTest, AllBinaryBlockInputsDim2) {
  // Blocks of two bits per node, every assignment: 2^8 cases on a 2-cube.
  for (unsigned mask = 0; mask < 256; ++mask) {
    std::vector<Key> input(8);
    int ones = 0;
    for (int b = 0; b < 8; ++b) {
      input[b] = (mask >> b) & 1u;
      ones += static_cast<int>(input[b]);
    }
    SftOptions opts;
    opts.block = 2;
    auto run = run_sft(2, input, opts);
    ASSERT_TRUE(run.errors.empty()) << "mask=" << mask;
    for (int k = 0; k < 8; ++k)
      ASSERT_EQ(run.output[static_cast<std::size_t>(k)], k >= 8 - ones ? 1 : 0)
          << "mask=" << mask;
  }
}

}  // namespace
}  // namespace aoft::sort
