// Never-wrong, always-terminating: under the full escalation ladder every
// fault pattern the predicates catch must end in a *correct* sorted output —
// fail-stop is no longer an acceptable final state, only a rung.  The
// terminal host rung is reliable (Environmental Assumption 2), so the ladder
// converts Theorem 3's "correct or fail-stop" into plain "correct".

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "fault/adversary.h"
#include "fault/supervisor.h"
#include "util/rng.h"

namespace aoft::fault {
namespace {

struct LinkScenario {
  std::string name;
  std::function<Mutator(StagePoint)> make;
};

const std::vector<LinkScenario>& link_scenarios() {
  static const std::vector<LinkScenario> scenarios = {
      {"corrupt_data", [](StagePoint p) { return corrupt_data(6, p, 41); }},
      {"corrupt_gossip",
       [](StagePoint p) { return corrupt_gossip_entry(6, p, 3, 17, 1); }},
      {"two_faced",
       [](StagePoint p) {
         return two_faced_gossip(6, p, 3, 17, 1,
                                 [](cube::NodeId d) { return d % 2 == 0; });
       }},
      {"drop_message", [](StagePoint p) { return drop_message(6, p); }},
      {"dead_link", [](StagePoint p) { return dead_link(6, 7, p); }},
      {"garble_lbs", [](StagePoint p) { return garble_lbs(6, p, 99); }},
      {"replay_stale", [](StagePoint p) { return replay_stale_lbs(6, p); }},
  };
  return scenarios;
}

TEST(SupervisorLadderTest, PermanentLinkFaultsAlwaysEndCorrect) {
  const int dim = 4;
  auto input = util::random_keys(31, std::size_t{1} << dim);
  for (const auto& sc : link_scenarios()) {
    for (StagePoint p : {StagePoint{1, 1}, StagePoint{2, 0}, StagePoint{3, 2}}) {
      Adversary adv;
      adv.add(sc.make(p));
      const auto run = run_supervised_sort(
          dim, input, {}, {},
          [&adv](int) -> sim::LinkInterceptor* { return &adv; });
      EXPECT_EQ(run.outcome, sort::Outcome::kCorrect)
          << sc.name << " at s" << p.stage << "i" << p.iter
          << " ended " << sort::to_string(run.outcome) << " on rung "
          << to_string(run.final_rung);
      EXPECT_EQ(sort::classify(run.last, input), sort::Outcome::kCorrect);
    }
  }
}

TEST(SupervisorLadderTest, TransientLinkFaultsRecoverWithoutRetiringAnyone) {
  const int dim = 4;
  auto input = util::random_keys(32, std::size_t{1} << dim);
  for (const auto& sc : link_scenarios()) {
    Adversary adv;
    adv.add(sc.make({2, 1}));
    const auto run = run_supervised_sort(
        dim, input, {}, {},
        [&adv](int attempt) -> sim::LinkInterceptor* {
          return attempt == 0 ? &adv : nullptr;
        });
    EXPECT_EQ(run.outcome, sort::Outcome::kCorrect) << sc.name;
    EXPECT_TRUE(run.retired.empty()) << sc.name;
    EXPECT_LE(run.attempts, 2) << sc.name;
  }
}

TEST(SupervisorLadderTest, PermanentProcessorFaultsAlwaysEndCorrect) {
  const int dim = 4;
  auto input = util::random_keys(33, std::size_t{1} << dim);
  std::vector<std::pair<std::string, NodeFault>> faults;
  {
    NodeFault f;
    f.halt_at = StagePoint{2, 0};
    faults.emplace_back("halt", f);
  }
  {
    NodeFault f;
    f.invert_direction_from = StagePoint{1, 1};
    faults.emplace_back("invert", f);
  }
  {
    NodeFault f;
    f.substitute_at = StagePoint{2, 2};
    f.substitute_value = 1;
    faults.emplace_back("substitute", f);
  }
  for (const auto& [name, fault] : faults) {
    for (cube::NodeId victim : {cube::NodeId{0}, cube::NodeId{9}}) {
      sort::SftOptions base;
      base.node_faults[victim] = fault;
      const auto run = run_supervised_sort(dim, input, base);
      EXPECT_EQ(run.outcome, sort::Outcome::kCorrect)
          << name << " on node " << victim << " ended "
          << sort::to_string(run.outcome) << " on rung "
          << to_string(run.final_rung);
    }
  }
}

}  // namespace
}  // namespace aoft::fault
