// Property sweeps (parameterized): correctness and alarm-freedom of S_FT over
// the (dimension × seed × block × distribution) grid, and the Theorem-3
// never-silently-wrong property over the (fault class × seed) grid.

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/campaign.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

// ---- fault-free sweep -------------------------------------------------------

struct SweepParam {
  int dim;
  std::uint64_t seed;
  std::size_t block;
  std::int64_t alphabet;  // 0 = full 32-bit range
};

class SftSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SftSweepTest, SortsCorrectlyWithoutAlarms) {
  const auto p = GetParam();
  const std::size_t total = (std::size_t{1} << p.dim) * p.block;
  auto input = p.alphabet == 0
                   ? util::random_keys(p.seed, total)
                   : util::random_keys_small_alphabet(p.seed, total, p.alphabet);
  SftOptions opts;
  opts.block = p.block;
  auto run = run_sft(p.dim, input, opts);
  ASSERT_TRUE(run.errors.empty())
      << "false alarm: " << run.errors.front().detail;
  std::vector<Key> expect(input.begin(), input.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(run.output, expect);
  EXPECT_EQ(run.summary.watchdog_rounds, 0);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (int dim = 1; dim <= 6; ++dim)
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL})
      params.push_back({dim, seed * 1000 + static_cast<std::uint64_t>(dim), 1, 0});
  // Blocks, including non-power-of-two sizes.
  for (std::size_t block : {2u, 3u, 8u})
    for (int dim : {2, 4})
      params.push_back({dim, 500 + block, block, 0});
  // Duplicate-heavy alphabets stress the tie handling in Φ_F.
  for (std::int64_t alphabet : {1, 2, 5})
    for (int dim : {3, 5})
      params.push_back({dim, 900 + static_cast<std::uint64_t>(alphabet), 1, alphabet});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Grid, SftSweepTest, ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "dim" + std::to_string(p.dim) + "_seed" +
                                  std::to_string(p.seed) + "_m" +
                                  std::to_string(p.block) + "_a" +
                                  std::to_string(p.alphabet);
                         });

// ---- Theorem 3 sweep --------------------------------------------------------

struct FaultParam {
  fault::FaultClass fclass;
  std::uint64_t seed;
};

class Theorem3Test : public ::testing::TestWithParam<FaultParam> {};

TEST_P(Theorem3Test, NeverSilentlyWrong) {
  const auto p = GetParam();
  fault::CampaignConfig cfg;
  cfg.dim = 4;
  cfg.seed = p.seed;
  util::Rng rng(p.seed);
  for (int rep = 0; rep < 5; ++rep) {
    const auto scenario = fault::draw_scenario(p.fclass, cfg, rng);
    const auto result = fault::run_scenario_sft(scenario, cfg);
    EXPECT_NE(result.outcome, Outcome::kSilentWrong)
        << fault::to_string(p.fclass) << " faulty=" << scenario.faulty
        << " stage=" << scenario.point.stage << " iter=" << scenario.point.iter
        << " delta=" << scenario.delta;
  }
}

std::vector<FaultParam> theorem3_params() {
  std::vector<FaultParam> params;
  for (auto fclass : fault::kAllFaultClasses)
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL})
      params.push_back({fclass, seed});
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllClasses, Theorem3Test,
                         ::testing::ValuesIn(theorem3_params()),
                         [](const auto& info) {
                           std::string name = fault::to_string(info.param.fclass);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name + "_s" + std::to_string(info.param.seed);
                         });

// The same theorem with blocks: every predicate "scales by m" (§5), so the
// guarantee must survive m > 1 unchanged.
TEST(Theorem3BlockTest, NeverSilentlyWrongWithBlocks) {
  fault::CampaignConfig cfg;
  cfg.dim = 3;
  cfg.block = 3;
  cfg.seed = 99;
  util::Rng rng(99);
  for (auto fclass : fault::kAllFaultClasses) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto scenario = fault::draw_scenario(fclass, cfg, rng);
      const auto result = fault::run_scenario_sft(scenario, cfg);
      EXPECT_NE(result.outcome, Outcome::kSilentWrong)
          << fault::to_string(fclass) << " faulty=" << scenario.faulty
          << " stage=" << scenario.point.stage;
    }
  }
}

}  // namespace
}  // namespace aoft::sort
