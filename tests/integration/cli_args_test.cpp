// CLI argument validation, end to end against the real binary: unknown
// arguments and unparseable values must produce a usage error and exit 1 —
// never a silently different run — and the new transport surface
// (--transport/--kill/--node-bin/--emit-run) enforces its documented
// constraints.  Also proves the --emit-run cross-check contract at the CLI
// level: the same fault script on sim and shm emits records that agree in
// everything but the transport label.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/atomic_file.h"

#ifndef AOFT_CLI_PATH
#error "build must define AOFT_CLI_PATH (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace aoft;

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "aoft_cli_" +
                           std::to_string(getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

// Fork/exec the CLI with the given arguments; returns its exit code
// (-1 when it died by signal, 127 when exec failed).
int run_cli(const std::vector<std::string>& extra_args) {
  std::vector<std::string> args = {AOFT_CLI_PATH};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  const pid_t pid = fork();
  if (pid == 0) {
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, STDOUT_FILENO);
      dup2(devnull, STDERR_FILENO);
      close(devnull);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(AOFT_CLI_PATH, argv.data());
    _exit(127);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

obs::json::Value parse_run_file(const std::string& path) {
  std::string text, err;
  EXPECT_TRUE(util::read_file(path, &text, &err)) << path << ": " << err;
  auto parsed = obs::json::parse(text, &err);
  EXPECT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(parsed->is_object());
  return *parsed;
}

TEST(CliArgs, UnknownArgumentIsAUsageError) {
  EXPECT_EQ(run_cli({"--algo=sft", "--dim=2", "--verbose"}), 1);
  EXPECT_EQ(run_cli({"--frobnicate"}), 1);
}

TEST(CliArgs, GarbageNumericValuesAreUsageErrors) {
  EXPECT_EQ(run_cli({"--dim=four"}), 1);
  EXPECT_EQ(run_cli({"--dim=4x"}), 1);
  EXPECT_EQ(run_cli({"--block=2.5"}), 1);
  EXPECT_EQ(run_cli({"--seed=-1"}), 1);
  EXPECT_EQ(run_cli({"--campaign", "--runs=ten"}), 1);
  EXPECT_EQ(run_cli({"--campaign", "--jobs=all"}), 1);
  EXPECT_EQ(run_cli({"--campaign", "--mode=independent:lots"}), 1);
}

TEST(CliArgs, TransportSurfaceValidation) {
  EXPECT_EQ(run_cli({"--transport=carrier-pigeon"}), 1);
  EXPECT_EQ(run_cli({"--transport=shm", "--algo=host", "--dim=2"}), 1);
  EXPECT_EQ(run_cli({"--transport=tcp", "--algo=host", "--dim=2"}), 1);
  EXPECT_EQ(run_cli({"--transport=shm", "--campaign"}), 1);
  EXPECT_EQ(run_cli({"--transport=tcp", "--campaign"}), 1);
  EXPECT_EQ(run_cli({"--transport=shm", "--dim=9"}), 1);
  EXPECT_EQ(run_cli({"--transport=tcp", "--dim=9"}), 1);
  EXPECT_EQ(run_cli({"--node-bin=/bin/true", "--dim=2"}), 1)
      << "--node-bin without a multi-process transport";
  EXPECT_EQ(run_cli({"--transport=shm", "--dim=2", "--timeout=soon"}), 1);
  EXPECT_EQ(run_cli({"--hosts=hosts.txt", "--dim=2"}), 1)
      << "--hosts without --transport=tcp";
  EXPECT_EQ(run_cli({"--transport=shm", "--hosts=hosts.txt", "--dim=2"}), 1);
  EXPECT_EQ(run_cli({"--kill=1@1:0", "--halt=1@1:0", "--dim=2"}), 1)
      << "--kill and --halt are mutually exclusive";
  EXPECT_EQ(run_cli({"--wedge=1@1:0", "--halt=1@1:0", "--dim=2"}), 1)
      << "--wedge and --halt are mutually exclusive";
  EXPECT_EQ(run_cli({"--wedge=1@1:0", "--kill=1@1:0", "--dim=2"}), 1)
      << "--wedge and --kill are mutually exclusive";
  EXPECT_EQ(run_cli({"--transport=shm", "--wedge=1@1:0", "--dim=2"}), 1)
      << "a stopped child is invisible to waitpid: --wedge rejects shm";
}

TEST(CliArgs, CleanRunsStillExitZero) {
  EXPECT_EQ(run_cli({"--algo=sft", "--dim=2", "--quiet"}), 0);
  EXPECT_EQ(run_cli({"--algo=sft", "--dim=2", "--transport=shm", "--quiet"}),
            0);
  EXPECT_EQ(run_cli({"--algo=sft", "--dim=2", "--transport=tcp", "--quiet"}),
            0);
}

TEST(CliArgs, EmitRunWritesACanonicalRecord) {
  const auto path = fresh_path("run.json");
  ASSERT_EQ(run_cli({"--algo=sft", "--dim=2", "--block=2", "--seed=9",
                     "--halt=1@1:0", "--quiet", "--emit-run=" + path}),
            2)
      << "a halt script is a fail-stop (exit 2)";
  const auto v = parse_run_file(path);
  const auto& o = v.object();
  std::string s;
  ASSERT_TRUE(obs::json::get_str(o, "schema", s));
  EXPECT_EQ(s, "aoft-run-v1");
  ASSERT_TRUE(obs::json::get_str(o, "transport", s));
  EXPECT_EQ(s, "sim");
  ASSERT_TRUE(obs::json::get_str(o, "outcome", s));
  EXPECT_EQ(s, "fail-stop");
  ASSERT_TRUE(obs::json::get_str(o, "output_fnv", s));
  EXPECT_EQ(s.rfind("0x", 0), 0u);
  const auto errs = o.find("errors");
  ASSERT_NE(errs, o.end());
  ASSERT_TRUE(errs->second.is_array());
  EXPECT_FALSE(errs->second.array().empty());
}

TEST(CliArgs, SimAndShmEmitRunsAgree) {
  const auto sim_path = fresh_path("sim.json");
  const auto shm_path = fresh_path("shm.json");
  const std::vector<std::string> script = {"--algo=sft", "--dim=2",
                                           "--block=2", "--seed=5",
                                           "--halt=1@1:0", "--quiet"};
  auto with = [&](const std::vector<std::string>& extra) {
    auto args = script;
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  };
  ASSERT_EQ(run_cli(with({"--emit-run=" + sim_path})), 2);
  ASSERT_EQ(run_cli(with({"--transport=shm", "--emit-run=" + shm_path})), 2);

  const auto sim_v = parse_run_file(sim_path);
  const auto shm_v = parse_run_file(shm_path);
  const auto& a = sim_v.object();
  const auto& b = shm_v.object();
  for (const char* key : {"outcome", "algo", "output_fnv"}) {
    std::string sa, sb;
    ASSERT_TRUE(obs::json::get_str(a, key, sa)) << key;
    ASSERT_TRUE(obs::json::get_str(b, key, sb)) << key;
    EXPECT_EQ(sa, sb) << key;
  }
  std::string ta, tb;
  ASSERT_TRUE(obs::json::get_str(a, "transport", ta));
  ASSERT_TRUE(obs::json::get_str(b, "transport", tb));
  EXPECT_EQ(ta, "sim");
  EXPECT_EQ(tb, "shm");

  // Same agreement over sockets: only the transport label may move.
  const auto tcp_path = fresh_path("tcp.json");
  ASSERT_EQ(run_cli(with({"--transport=tcp", "--emit-run=" + tcp_path})), 2);
  const auto tcp_v = parse_run_file(tcp_path);
  const auto& c = tcp_v.object();
  for (const char* key : {"outcome", "algo", "output_fnv"}) {
    std::string sa, sc;
    ASSERT_TRUE(obs::json::get_str(a, key, sa)) << key;
    ASSERT_TRUE(obs::json::get_str(c, key, sc)) << key;
    EXPECT_EQ(sa, sc) << key;
  }
  std::string tc;
  ASSERT_TRUE(obs::json::get_str(c, "transport", tc));
  EXPECT_EQ(tc, "tcp");
}

}  // namespace
