// Integration property: the mask algebra describes the real traffic.
//
// Lemma 3 asserts that vect_mask(i, j, k) is exactly the set of elements
// node k has collected after the iteration-j exchange.  The predicates build
// on that claim, so here it is checked against the *actual* link events of a
// recorded S_FT run: replaying the recorded messages through a set-union
// model must land every node's coverage on the closed-form masks, and the
// message sizes must match the slice the protocol claims to send.

#include <gtest/gtest.h>

#include "hypercube/masks.h"
#include "hypercube/subcube.h"
#include "sim/machine.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

TEST(TrafficMaskTest, RecordedMessagesMatchTheMaskAlgebra) {
  const int dim = 4;
  const auto num_nodes = cube::NodeId{1} << dim;
  cube::Topology topo(dim);

  // Run S_FT with link-event recording via a pass-through interceptor-free
  // machine: re-run the protocol manually?  No — run_sft owns its machine,
  // so use an interceptor that records (from, to, stage, iter, words).
  struct Recorder : sim::LinkInterceptor {
    struct Event {
      cube::NodeId from, to;
      int stage, iter;
      std::size_t lbs_words;
    };
    std::vector<Event> events;
    bool on_send(cube::NodeId from, cube::NodeId to, sim::Message& m) override {
      events.push_back({from, to, m.stage, m.iter, m.lbs.size()});
      return true;
    }
  } recorder;

  auto input = util::random_keys(31, num_nodes);
  SftOptions opts;
  opts.interceptor = &recorder;
  auto run = run_sft(dim, input, opts);
  ASSERT_TRUE(run.errors.empty());

  // Nodes synchronize pairwise only, so the raw send order may interleave
  // stages across distant nodes; replay in protocol order (stages ascend,
  // iterations descend; the stable sort keeps each pair's send-then-reply
  // order).
  std::stable_sort(recorder.events.begin(), recorder.events.end(),
                   [](const auto& a, const auto& b) {
                     return a.stage != b.stage ? a.stage < b.stage
                                               : a.iter > b.iter;
                   });

  // Replay: coverage of each node per stage, reset at stage boundaries.
  std::vector<util::BitVec> cover(num_nodes);
  int cur_stage = 0;
  auto reset_all = [&] {
    for (cube::NodeId p = 0; p < num_nodes; ++p)
      cover[p] = util::BitVec::single(num_nodes, p);
  };
  reset_all();
  for (const auto& e : recorder.events) {
    ASSERT_GE(e.stage, cur_stage);
    if (e.stage != cur_stage) {
      cur_stage = e.stage;
      reset_all();
    }
    const int mask_stage = std::min(e.stage, dim - 1);
    // The slice must cover the sender's stage window exactly.
    const auto window = cube::home_subcube(std::min(e.stage + 1, dim), e.from);
    EXPECT_EQ(e.lbs_words, static_cast<std::size_t>(window.size()))
        << "stage " << e.stage << " iter " << e.iter;
    // Receiver's coverage gains the sender's: the recorded exchange order is
    // send-then-reply within (stage, iter), so applying events in order
    // reproduces pre/post masks.
    cover[e.to] |= cover[e.from];
    // After this delivery the receiver must never exceed the closed form for
    // the *post*-exchange mask of this iteration.
    EXPECT_TRUE(cover[e.to].is_subset_of(
        cube::vect_mask(topo, mask_stage, e.iter, e.to)))
        << "stage " << e.stage << " iter " << e.iter << " to " << e.to;
  }

  // At the end of the final round every node holds the whole cube.
  for (cube::NodeId p = 0; p < num_nodes; ++p)
    EXPECT_EQ(cover[p].count(), num_nodes) << "node " << p;
}

TEST(TrafficMaskTest, PerIterationCoverageIsExactlyTheClosedForm) {
  // Stronger: after *both* messages of an (i, j) pair exchange, partner
  // coverages equal vect_mask exactly (not just subset).
  const int dim = 3;
  const auto num_nodes = cube::NodeId{1} << dim;
  cube::Topology topo(dim);

  struct Recorder : sim::LinkInterceptor {
    std::vector<std::tuple<cube::NodeId, cube::NodeId, int, int>> events;
    bool on_send(cube::NodeId from, cube::NodeId to, sim::Message& m) override {
      events.push_back({from, to, m.stage, m.iter});
      return true;
    }
  } recorder;

  auto input = util::random_keys(33, num_nodes);
  SftOptions opts;
  opts.interceptor = &recorder;
  auto run = run_sft(dim, input, opts);
  ASSERT_TRUE(run.errors.empty());

  std::stable_sort(recorder.events.begin(), recorder.events.end(),
                   [](const auto& a, const auto& b) {
                     return std::get<2>(a) != std::get<2>(b)
                                ? std::get<2>(a) < std::get<2>(b)
                                : std::get<3>(a) > std::get<3>(b);
                   });

  std::vector<util::BitVec> cover(num_nodes);
  for (cube::NodeId p = 0; p < num_nodes; ++p)
    cover[p] = util::BitVec::single(num_nodes, p);
  int cur_stage = 0;
  // Count deliveries per (stage, iter, node) to know when a pair is done.
  std::vector<int> recv_count(num_nodes, 0);
  int cur_iter = -2;
  for (const auto& [from, to, stage, iter] : recorder.events) {
    if (stage != cur_stage) {
      cur_stage = stage;
      for (cube::NodeId p = 0; p < num_nodes; ++p)
        cover[p] = util::BitVec::single(num_nodes, p);
    }
    if (iter != cur_iter) {
      cur_iter = iter;
      std::fill(recv_count.begin(), recv_count.end(), 0);
    }
    cover[to] |= cover[from];
    ++recv_count[to];
    const int mask_stage = std::min(stage, dim - 1);
    // Once a node has received its message for this iteration, its coverage
    // must be the closed-form post mask.
    EXPECT_EQ(cover[to], cube::vect_mask(topo, mask_stage, iter, to))
        << "stage " << stage << " iter " << iter << " node " << to;
  }
}

// Host-link traffic appears in the recorded event log alongside node-node
// traffic (regression: send_host used to bypass the recording path, so
// checkpoint uploads and error reports were invisible to traffic accounting).
TEST(TrafficMaskTest, CheckpointUploadsAppearInTheLinkEventLog) {
  const int dim = 3;
  const auto num_nodes = cube::NodeId{1} << dim;

  SftOptions opts;
  opts.checkpoint = true;
  opts.record_link_events = true;
  auto input = util::random_keys(35, num_nodes);
  auto run = run_sft(dim, input, opts);
  ASSERT_TRUE(run.errors.empty());

  std::size_t uploads = 0, node_node = 0;
  for (const auto& e : run.link_events) {
    ASSERT_FALSE(e.to_host && e.from_host);
    if (e.to_host) {
      EXPECT_EQ(e.kind, sim::MsgKind::kCheckpoint);
      EXPECT_TRUE(e.delivered);  // host links never drop
      EXPECT_GT(e.words, 0u);
      ++uploads;
    } else if (!e.from_host) {
      ++node_node;
    }
  }
  // One upload per node per stage boundary.
  EXPECT_EQ(uploads, static_cast<std::size_t>(num_nodes) * dim);
  EXPECT_GT(node_node, 0u);
}

TEST(TrafficMaskTest, ErrorReportsAppearInTheLinkEventLog) {
  const int dim = 3;
  const auto num_nodes = cube::NodeId{1} << dim;

  SftOptions opts;
  opts.record_link_events = true;
  opts.node_faults[5].halt_at = fault::StagePoint{1, 0};
  auto input = util::random_keys(37, num_nodes);
  auto run = run_sft(dim, input, opts);
  ASSERT_TRUE(run.fail_stop());

  std::size_t error_msgs = 0;
  for (const auto& e : run.link_events)
    if (e.to_host && e.kind == sim::MsgKind::kHostError) {
      EXPECT_TRUE(e.delivered);
      ++error_msgs;
    }
  // Every fail-stop report travelled the host link and was recorded.
  EXPECT_EQ(error_msgs, run.errors.size());
  EXPECT_GE(error_msgs, 1u);
}

}  // namespace
}  // namespace aoft::sort
