// The backend oracle contract over sockets (docs/PROTOCOL.md §11, §13): for
// identical inputs and fault scripts the tcp backend — one OS process per
// node over framed loopback connections — must reproduce the deterministic
// simulator's sorted output and fail-stop verdicts, exactly as the shm
// backend does.  For every scripted fault except process death the *entire*
// output image is bit-identical; kill scripts compare verdicts only (the
// SIGKILLed child dies before publishing its block).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

#ifndef AOFT_NODE_PATH
#error "build must define AOFT_NODE_PATH (see tests/CMakeLists.txt)"
#endif

namespace aoft::sort {
namespace {

SftOptions tcp_opts(const SftOptions& base) {
  SftOptions o = base;
  o.backend = transport::Backend::kTcp;
  o.tcp.recv_timeout_s = 5.0;
  o.tcp.run_deadline_s = 60.0;
  return o;
}

std::vector<std::tuple<cube::NodeId, int, int, int>> error_keys(
    const SortRun& run) {
  std::vector<std::tuple<cube::NodeId, int, int, int>> keys;
  for (const auto& e : run.errors)
    keys.emplace_back(e.node, e.stage, e.iter, static_cast<int>(e.source));
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expect_match(const SortRun& sim_run, const SortRun& tcp_run,
                  std::span<const Key> input, const char* what) {
  EXPECT_EQ(tcp_run.output, sim_run.output) << what << ": output diverged";
  EXPECT_EQ(error_keys(tcp_run), error_keys(sim_run))
      << what << ": verdicts diverged";
  EXPECT_EQ(classify(tcp_run, input), classify(sim_run, input)) << what;
}

TEST(TcpSortCrossCheck, FaultFreeRunsMatchTheOracle) {
  for (int dim = 1; dim <= 3; ++dim) {
    for (std::size_t m : {std::size_t{1}, std::size_t{4}}) {
      SftOptions base;
      base.block = m;
      auto input = util::random_keys(
          5000 + static_cast<std::uint64_t>(dim) * 10 + m,
          (std::size_t{1} << dim) * m);
      auto sim_run = run_sft(dim, input, base);
      auto tcp_run = run_sft(dim, input, tcp_opts(base));
      ASSERT_TRUE(tcp_run.errors.empty())
          << "dim=" << dim << " m=" << m
          << " first: " << tcp_run.errors.front().detail;
      expect_match(sim_run, tcp_run, input, "fault-free");
    }
  }
}

TEST(TcpSortCrossCheck, Dim0SingleNodeRuns) {
  SftOptions base;
  base.block = 4;
  auto input = util::random_keys(11, 4);
  auto sim_run = run_sft(0, input, base);
  auto tcp_run = run_sft(0, input, tcp_opts(base));
  expect_match(sim_run, tcp_run, input, "dim-0");
}

TEST(TcpSortCrossCheck, HaltFaultYieldsIdenticalFailStop) {
  for (int dim = 2; dim <= 3; ++dim) {
    SftOptions base;
    base.node_faults[1].halt_at = fault::StagePoint{1, 0};
    auto input = util::random_keys(8000 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    auto sim_run = run_sft(dim, input, base);
    auto tcp_run = run_sft(dim, input, tcp_opts(base));
    ASSERT_FALSE(sim_run.errors.empty());
    expect_match(sim_run, tcp_run, input, "halt");
  }
}

TEST(TcpSortCrossCheck, InvertAndSubstituteFaultsMatch) {
  const int dim = 3;
  auto input = util::random_keys(8099, std::size_t{1} << dim);

  SftOptions invert;
  invert.node_faults[3].invert_direction_from = fault::StagePoint{1, 1};
  expect_match(run_sft(dim, input, invert),
               run_sft(dim, input, tcp_opts(invert)), input, "invert");

  SftOptions subst;
  subst.node_faults[5].substitute_at = fault::StagePoint{1, 1};
  subst.node_faults[5].substitute_value = 123456;
  expect_match(run_sft(dim, input, subst),
               run_sft(dim, input, tcp_opts(subst)), input, "substitute");
}

TEST(TcpSortCrossCheck, SigkilledNodeMatchesTheSimulatorsVerdict) {
  const int dim = 3;
  SftOptions base;
  base.block = 2;
  base.node_faults[1].halt_at = fault::StagePoint{1, 0};
  base.node_faults[1].kill_process = true;
  auto input = util::random_keys(8300, (std::size_t{1} << dim) * 2);
  auto sim_run = run_sft(dim, input, base);
  auto tcp_run = run_sft(dim, input, tcp_opts(base));
  ASSERT_FALSE(sim_run.errors.empty()) << "the kill script must be reached";
  EXPECT_EQ(error_keys(tcp_run), error_keys(sim_run));
  EXPECT_EQ(classify(tcp_run, input), classify(sim_run, input));
  EXPECT_EQ(classify(tcp_run, input), Outcome::kFailStop);
}

TEST(TcpSortCrossCheck, ExecModeMatchesForkMode) {
  const int dim = 2;
  SftOptions base;
  base.block = 2;
  auto input = util::random_keys(8077, (std::size_t{1} << dim) * 2);

  auto exec_opts = tcp_opts(base);
  exec_opts.tcp.node_binary = AOFT_NODE_PATH;

  auto sim_run = run_sft(dim, input, base);
  auto fork_run = run_sft(dim, input, tcp_opts(base));
  auto exec_run = run_sft(dim, input, exec_opts);
  EXPECT_EQ(exec_run.output, sim_run.output);
  EXPECT_EQ(fork_run.output, exec_run.output);
  EXPECT_TRUE(exec_run.errors.empty());
}

TEST(TcpSortCrossCheck, ExecModeHaltVerdictMatches) {
  const int dim = 2;
  SftOptions base;
  base.node_faults[2].halt_at = fault::StagePoint{1, 0};
  auto input = util::random_keys(8555, std::size_t{1} << dim);

  auto exec_opts = tcp_opts(base);
  exec_opts.tcp.node_binary = AOFT_NODE_PATH;

  auto sim_run = run_sft(dim, input, base);
  auto exec_run = run_sft(dim, input, exec_opts);
  ASSERT_FALSE(sim_run.errors.empty());
  expect_match(sim_run, exec_run, input, "exec halt");
}

TEST(TcpSortCrossCheck, CheckpointCertificationMatches) {
  const int dim = 3;
  SftOptions base;
  base.block = 2;
  base.checkpoint = true;
  auto input = util::random_keys(8655, (std::size_t{1} << dim) * 2);
  auto sim_run = run_sft(dim, input, base);
  auto tcp_run = run_sft(dim, input, tcp_opts(base));
  expect_match(sim_run, tcp_run, input, "checkpoint");
  ASSERT_EQ(tcp_run.checkpoints.size(), sim_run.checkpoints.size());
  for (std::size_t i = 0; i < sim_run.checkpoints.size(); ++i) {
    EXPECT_EQ(tcp_run.checkpoints[i].certified,
              sim_run.checkpoints[i].certified)
        << "stage " << sim_run.checkpoints[i].stage;
    EXPECT_EQ(tcp_run.checkpoints[i].state, sim_run.checkpoints[i].state);
  }
}

TEST(TcpSortCrossCheck, SnrMatchesTheOracle) {
  const int dim = 3;
  SnrOptions base;
  base.block = 2;
  auto input = util::random_keys(8777, (std::size_t{1} << dim) * 2);

  SnrOptions tcp = base;
  tcp.backend = transport::Backend::kTcp;
  tcp.tcp.recv_timeout_s = 5.0;
  tcp.tcp.run_deadline_s = 60.0;

  auto sim_run = run_snr(dim, input, base);
  auto tcp_run = run_snr(dim, input, tcp);
  EXPECT_EQ(tcp_run.output, sim_run.output);
  EXPECT_EQ(classify(tcp_run, input), Outcome::kCorrect);
}

TEST(TcpSortCrossCheck, LinkEventTrafficMatchesTheOracle) {
  const int dim = 2;
  SftOptions base;
  base.record_link_events = true;
  auto input = util::random_keys(8888, std::size_t{1} << dim);
  auto sim_run = run_sft(dim, input, base);
  auto tcp_run = run_sft(dim, input, tcp_opts(base));
  expect_match(sim_run, tcp_run, input, "link events");

  // Both backends record sender-side events; under the shared canonical
  // order the multisets must be identical message for message.
  auto key = [](const sim::LinkEvent& e) {
    return std::tuple(e.stage, e.iter, e.from, e.to, e.to_host, e.from_host,
                      static_cast<int>(e.kind), e.words, e.delivered);
  };
  auto canon = [&](std::vector<sim::LinkEvent> evs) {
    std::sort(evs.begin(), evs.end(),
              [&](const auto& x, const auto& y) { return key(x) < key(y); });
    return evs;
  };
  const auto a = canon(sim_run.link_events);
  const auto b = canon(tcp_run.link_events);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(key(a[i]), key(b[i])) << "event " << i;
}

}  // namespace
}  // namespace aoft::sort
