// Timeout-based peer-death detection (docs/PROTOCOL.md §13.4).  PeerWatch is
// a pure state machine over caller-supplied time points, so the unit tests
// here drive every transition with a fake clock — no sleeps, no sockets.
// The one integration case at the bottom wedges a real node process with
// SIGSTOP mid-protocol: it neither speaks nor exits, which is exactly the
// failure mode waitpid-based detection cannot see and the heartbeat
// watchdog exists for (Environmental Assumption 4 over real sockets).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <tuple>
#include <vector>

#include "fault/supervisor.h"
#include "sort/sft.h"
#include "transport/peer_watch.h"
#include "util/rng.h"

namespace aoft::transport {
namespace {

using Time = PeerWatch::Time;
using std::chrono::milliseconds;

Time t0() { return Time{} + std::chrono::hours(1); }

TEST(PeerWatch, ConnectRunsAndSilenceKills) {
  PeerWatch w(2, /*heartbeat_loss_s=*/1.0);
  EXPECT_EQ(w.state(0), SlotState::kIdle);
  w.mark_up(0, t0());
  w.mark_up(1, t0());
  EXPECT_EQ(w.state(0), SlotState::kRunning);
  // First beats arm the silence rule for both peers.
  w.note_activity(0, t0());
  w.note_activity(1, t0());

  // Heartbeats keep peer 0 alive; peer 1 goes silent.
  EXPECT_FALSE(w.sweep(t0() + milliseconds(900)));
  w.note_activity(0, t0() + milliseconds(900));
  EXPECT_TRUE(w.sweep(t0() + milliseconds(1500)));
  EXPECT_EQ(w.state(0), SlotState::kRunning);
  EXPECT_EQ(w.state(1), SlotState::kDead);
  EXPECT_TRUE(w.terminal(1));
  EXPECT_FALSE(w.all_terminal());
}

TEST(PeerWatch, SetupSilenceNeverKillsAnUnheardPeer) {
  PeerWatch w(1, /*heartbeat_loss_s=*/1.0);
  // Connected (HELLO taken / mesh built) but never heard from since: the
  // peer is rightfully quiet through CONFIG transfer and its own mesh —
  // minutes, under the --hosts manual-launch workflow.  Only EOF or the
  // run-deadline backstop may kill it here, never the silence sweep.
  w.mark_up(0, t0());
  EXPECT_FALSE(w.sweep(t0() + std::chrono::hours(1)));
  EXPECT_EQ(w.state(0), SlotState::kRunning);
  EXPECT_EQ(w.next_deadline(), Time::max())
      << "an un-armed peer must not contribute a sweep deadline";
  // The first post-mesh heartbeat arms the rule; silence counts from there.
  const Time armed = t0() + std::chrono::hours(1);
  w.note_activity(0, armed);
  EXPECT_EQ(w.next_deadline(), armed + milliseconds(1000));
  EXPECT_FALSE(w.sweep(armed + milliseconds(900)));
  EXPECT_TRUE(w.sweep(armed + milliseconds(1500)));
  EXPECT_EQ(w.state(0), SlotState::kDead);
}

TEST(PeerWatch, SetLossRescalesTheSilenceBound) {
  PeerWatch w(1, /*heartbeat_loss_s=*/1.0);
  w.mark_up(0, t0());
  w.note_activity(0, t0());
  // broadcast_config grows the bound with the block so a long compute
  // burst (which sends no beats) is not read as death.
  w.set_loss(10.0);
  EXPECT_FALSE(w.sweep(t0() + milliseconds(5000)));
  EXPECT_EQ(w.state(0), SlotState::kRunning);
  EXPECT_EQ(w.next_deadline(), t0() + milliseconds(10000));
  EXPECT_TRUE(w.sweep(t0() + milliseconds(10001)));
  EXPECT_EQ(w.state(0), SlotState::kDead);
}

TEST(PeerWatch, FinishBeatsTheWatchdog) {
  PeerWatch w(1, 1.0);
  w.mark_up(0, t0());
  w.note_activity(0, t0());
  EXPECT_TRUE(w.sweep(t0() + milliseconds(2000)));
  EXPECT_EQ(w.state(0), SlotState::kDead);
  // A FINISH already in flight when the sweep fired upgrades the verdict:
  // results beat timeouts.
  w.mark_finished(0, SlotState::kDone);
  EXPECT_EQ(w.state(0), SlotState::kDone);
  // ... and the upgrade is sticky against later EOF/sweeps.
  w.mark_dead(0);
  EXPECT_FALSE(w.sweep(t0() + std::chrono::hours(2)))
      << "a terminal peer is no longer subject to the silence rule";
  EXPECT_EQ(w.state(0), SlotState::kDone);
  EXPECT_TRUE(w.all_terminal());
}

TEST(PeerWatch, EofKillsWithoutWaitingForTheDeadline) {
  PeerWatch w(1, 60.0);
  w.mark_up(0, t0());
  w.mark_dead(0);  // connection EOF: the kernel FINs a SIGKILLed process
  EXPECT_EQ(w.state(0), SlotState::kDead);
  EXPECT_TRUE(w.all_terminal());
}

TEST(PeerWatch, DisabledSilenceRuleNeverSweeps) {
  PeerWatch w(1, /*heartbeat_loss_s=*/0.0);
  w.mark_up(0, t0());
  w.note_activity(0, t0());  // armed, but the rule itself is off
  EXPECT_FALSE(w.sweep(t0() + std::chrono::hours(24)));
  EXPECT_EQ(w.state(0), SlotState::kRunning);
  EXPECT_EQ(w.next_deadline(), Time::max());
  w.mark_dead(0);  // EOF still applies
  EXPECT_EQ(w.state(0), SlotState::kDead);
}

TEST(PeerWatch, NextDeadlineTracksTheQuietestRunningPeer) {
  PeerWatch w(3, 1.0);
  w.mark_up(0, t0());
  w.note_activity(0, t0());
  w.mark_up(1, t0() + milliseconds(500));
  w.note_activity(1, t0() + milliseconds(500));
  // Peer 2 stays kIdle: never subject to the silence rule.
  EXPECT_EQ(w.next_deadline(), t0() + milliseconds(1000));
  w.note_activity(0, t0() + milliseconds(800));
  EXPECT_EQ(w.next_deadline(), t0() + milliseconds(1500));
  w.mark_finished(0, SlotState::kDone);
  w.mark_finished(1, SlotState::kFailed);
  EXPECT_EQ(w.next_deadline(), Time::max());
}

TEST(PeerWatch, IdlePeersAreNeitherSweptNorTerminal) {
  PeerWatch w(2, 0.5);
  w.mark_up(0, t0());
  w.note_activity(0, t0());
  EXPECT_FALSE(w.sweep(t0() + milliseconds(100)));
  EXPECT_TRUE(w.sweep(t0() + milliseconds(10000)));
  EXPECT_EQ(w.state(0), SlotState::kDead);
  EXPECT_EQ(w.state(1), SlotState::kIdle) << "never-connected peer untouched";
  EXPECT_FALSE(w.all_terminal());
}

// ---- the wedged-peer integration case --------------------------------------

std::vector<std::tuple<cube::NodeId, int, int, int>> error_keys(
    const sort::SortRun& run) {
  std::vector<std::tuple<cube::NodeId, int, int, int>> keys;
  for (const auto& e : run.errors)
    keys.emplace_back(e.node, e.stage, e.iter, static_cast<int>(e.source));
  std::sort(keys.begin(), keys.end());
  return keys;
}

sort::SftOptions tcp_opts(const sort::SftOptions& base) {
  sort::SftOptions o = base;
  o.backend = Backend::kTcp;
  o.tcp.recv_timeout_s = 5.0;
  o.tcp.run_deadline_s = 60.0;
  o.tcp.heartbeat_interval_s = 0.05;
  o.tcp.heartbeat_loss_s = 0.5;
  return o;
}

fault::NodeFaultMap wedge_fault(cube::NodeId node, fault::StagePoint at) {
  fault::NodeFaultMap faults;
  faults[node].halt_at = at;
  faults[node].wedge_process = true;
  return faults;
}

TEST(TcpWedge, SigstoppedNodeMatchesTheSimulatorsVerdict) {
  const int dim = 3;
  sort::SftOptions base;
  base.node_faults = wedge_fault(2, fault::StagePoint{1, 0});
  auto input = util::random_keys(808, std::size_t{1} << dim);

  // The simulator degrades a wedge to a graceful halt; over tcp the node
  // really SIGSTOPs and only the heartbeat watchdog can declare it dead.
  // Verdicts must agree; the output image is not compared (the wedged node
  // never publishes its block, like a SIGKILLed one).
  auto sim_run = sort::run_sft(dim, input, base);
  auto tcp_run = sort::run_sft(dim, input, tcp_opts(base));
  ASSERT_FALSE(sim_run.errors.empty()) << "the wedge script must be reached";
  EXPECT_EQ(error_keys(tcp_run), error_keys(sim_run));
  EXPECT_EQ(sort::classify(tcp_run, input), sort::classify(sim_run, input));
  EXPECT_EQ(sort::classify(tcp_run, input), sort::Outcome::kFailStop);
}

TEST(TcpWedge, SupervisorRetiresAWedgedNode) {
  const int dim = 2;
  sort::SftOptions base = tcp_opts({});
  auto input = util::random_keys(2025, std::size_t{1} << dim);

  // Persistent wedge: every full-cube attempt loses the node again, so the
  // ladder must retire it into the subcube rung — the same terminal state a
  // SIGKILLed shm child reaches, which is the tentpole equivalence.
  const auto faults = wedge_fault(1, fault::StagePoint{1, 0});
  const auto run = fault::run_supervised_sort(
      dim, input, base, fault::RecoveryPolicy{},
      [](int) -> sim::LinkInterceptor* { return nullptr; },
      [&](int) -> fault::NodeFaultMap { return faults; });
  EXPECT_EQ(run.outcome, sort::Outcome::kCorrect);
  EXPECT_TRUE(run.recovered);
  ASSERT_FALSE(run.retired.empty());
  EXPECT_EQ(run.retired.front(), 1u);
}

}  // namespace
}  // namespace aoft::transport
