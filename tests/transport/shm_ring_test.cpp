#include "transport/shm_ring.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

namespace aoft::transport {
namespace {

struct RingFixture : ::testing::Test {
  static constexpr std::uint64_t kCap = 256;  // power of two
  ShmRingHdr hdr;
  std::vector<unsigned char> buf = std::vector<unsigned char>(kCap);
  ShmRing ring{&hdr, buf.data(), kCap};

  void SetUp() override { ShmRing::init(&hdr); }
};

TEST_F(RingFixture, StartsEmpty) {
  EXPECT_TRUE(ring.empty());
  std::vector<unsigned char> out;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST_F(RingFixture, RoundTripsOneRecord) {
  const char payload[] = "hello rings";
  ASSERT_TRUE(ring.try_push(payload, sizeof payload));
  EXPECT_FALSE(ring.empty());
  std::vector<unsigned char> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_EQ(out.size(), sizeof payload);
  EXPECT_EQ(std::memcmp(out.data(), payload, sizeof payload), 0);
  EXPECT_TRUE(ring.empty());
}

TEST_F(RingFixture, PreservesFifoOrder) {
  for (std::uint32_t v = 0; v < 10; ++v)
    ASSERT_TRUE(ring.try_push(&v, sizeof v));
  std::vector<unsigned char> out;
  for (std::uint32_t v = 0; v < 10; ++v) {
    ASSERT_TRUE(ring.try_pop(out));
    std::uint32_t got = 0;
    ASSERT_EQ(out.size(), sizeof got);
    std::memcpy(&got, out.data(), sizeof got);
    EXPECT_EQ(got, v);
  }
}

TEST_F(RingFixture, RejectsWhenFull) {
  // Each record costs 4 (length) + 60 bytes; four fit in 256, a fifth not.
  const std::vector<unsigned char> rec(60, 0xAB);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(ring.try_push(rec.data(), rec.size()));
  EXPECT_FALSE(ring.try_push(rec.data(), rec.size()));
  // Draining one record makes room again.
  std::vector<unsigned char> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(rec.data(), rec.size()));
}

TEST_F(RingFixture, WrapsAroundTheBufferEnd) {
  // Advance the cursors to just short of the boundary, then push a record
  // that must split across it.
  const std::vector<unsigned char> filler(100, 0x11);
  std::vector<unsigned char> out;
  ASSERT_TRUE(ring.try_push(filler.data(), filler.size()));
  ASSERT_TRUE(ring.try_push(filler.data(), filler.size()));
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));  // cursors now at 208 of 256
  std::vector<unsigned char> rec(90);
  std::iota(rec.begin(), rec.end(), 0);
  ASSERT_TRUE(ring.try_push(rec.data(), rec.size()));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, rec);
}

TEST(ShmRingStress, SpscThreadsSeeEveryRecordInOrder) {
  constexpr std::uint64_t kCap = 1024;
  constexpr std::uint32_t kRecords = 200000;
  ShmRingHdr hdr;
  ShmRing::init(&hdr);
  std::vector<unsigned char> buf(kCap);
  ShmRing producer(&hdr, buf.data(), kCap);
  ShmRing consumer(&hdr, buf.data(), kCap);

  std::thread prod([&] {
    for (std::uint32_t v = 0; v < kRecords;) {
      // Variable record sizes exercise wrap at many alignments.
      unsigned char rec[32];
      const std::uint32_t len = 4 + (v % 24);
      std::memcpy(rec, &v, 4);
      for (std::uint32_t i = 4; i < len; ++i)
        rec[i] = static_cast<unsigned char>(v + i);
      if (producer.try_push(rec, len)) ++v;
    }
  });

  std::vector<unsigned char> out;
  for (std::uint32_t expect = 0; expect < kRecords;) {
    if (!consumer.try_pop(out)) continue;
    std::uint32_t got = 0;
    ASSERT_GE(out.size(), 4u);
    std::memcpy(&got, out.data(), 4);
    ASSERT_EQ(got, expect);
    ASSERT_EQ(out.size(), 4 + (expect % 24));
    for (std::uint32_t i = 4; i < out.size(); ++i)
      ASSERT_EQ(out[i], static_cast<unsigned char>(expect + i));
    ++expect;
  }
  prod.join();
  EXPECT_TRUE(consumer.empty());
}

}  // namespace
}  // namespace aoft::transport
