// The kill_process escalation and the process-death half of the §11 oracle
// contract: under the shm backend a scripted kill really SIGKILLs the node's
// OS process mid-protocol, while the simulator degrades the same script to a
// graceful halt — and the two must still produce the same fail-stop verdict
// (same detecting nodes, same stages, same classification).  The output image
// is NOT compared for kill scripts: the killed child dies before publishing
// its block, which is precisely what the escalation exists to exercise.
//
// Also covered here: exec mode (each node spawned by exec'ing the
// tools/aoft_node launcher, path baked in via AOFT_NODE_PATH) and the
// recovery supervisor detecting and recovering from a SIGKILLed node across
// its escalation ladder.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "fault/supervisor.h"
#include "sort/sft.h"
#include "util/rng.h"

#ifndef AOFT_NODE_PATH
#error "build must define AOFT_NODE_PATH (see tests/CMakeLists.txt)"
#endif

namespace aoft::sort {
namespace {

SftOptions shm_opts(const SftOptions& base) {
  SftOptions o = base;
  o.backend = transport::Backend::kShm;
  o.shm.recv_timeout_s = 5.0;
  o.shm.run_deadline_s = 60.0;
  return o;
}

std::vector<std::tuple<cube::NodeId, int, int, int>> error_keys(
    const SortRun& run) {
  std::vector<std::tuple<cube::NodeId, int, int, int>> keys;
  for (const auto& e : run.errors)
    keys.emplace_back(e.node, e.stage, e.iter, static_cast<int>(e.source));
  std::sort(keys.begin(), keys.end());
  return keys;
}

fault::NodeFaultMap kill_fault(cube::NodeId node, fault::StagePoint at) {
  fault::NodeFaultMap faults;
  faults[node].halt_at = at;
  faults[node].kill_process = true;
  return faults;
}

TEST(ShmKill, SigkilledNodeMatchesTheSimulatorsVerdict) {
  for (int dim = 2; dim <= 3; ++dim) {
    SftOptions base;
    base.block = 2;
    base.node_faults = kill_fault(1, fault::StagePoint{1, 0});
    auto input = util::random_keys(300 + static_cast<std::uint64_t>(dim),
                                   (std::size_t{1} << dim) * 2);
    auto sim_run = run_sft(dim, input, base);
    auto shm_run = run_sft(dim, input, shm_opts(base));
    ASSERT_FALSE(sim_run.errors.empty()) << "the kill script must be reached";
    EXPECT_EQ(error_keys(shm_run), error_keys(sim_run))
        << "dim=" << dim << ": verdicts diverged";
    EXPECT_EQ(classify(shm_run, input), classify(sim_run, input));
    EXPECT_EQ(classify(shm_run, input), Outcome::kFailStop);
  }
}

TEST(ShmKill, ExecModeMatchesForkMode) {
  const int dim = 2;
  SftOptions base;
  base.block = 2;
  auto input = util::random_keys(77, (std::size_t{1} << dim) * 2);

  auto fork_opts = shm_opts(base);
  auto exec_opts = shm_opts(base);
  exec_opts.shm.node_binary = AOFT_NODE_PATH;

  auto sim_run = run_sft(dim, input, base);
  auto fork_run = run_sft(dim, input, fork_opts);
  auto exec_run = run_sft(dim, input, exec_opts);
  EXPECT_EQ(exec_run.output, sim_run.output);
  EXPECT_EQ(fork_run.output, exec_run.output);
  EXPECT_TRUE(exec_run.errors.empty());
}

TEST(ShmKill, ExecModeKillVerdictMatches) {
  const int dim = 2;
  SftOptions base;
  base.node_faults = kill_fault(2, fault::StagePoint{1, 0});
  auto input = util::random_keys(555, std::size_t{1} << dim);

  auto exec_opts = shm_opts(base);
  exec_opts.shm.node_binary = AOFT_NODE_PATH;

  auto sim_run = run_sft(dim, input, base);
  auto exec_run = run_sft(dim, input, exec_opts);
  ASSERT_FALSE(sim_run.errors.empty());
  EXPECT_EQ(error_keys(exec_run), error_keys(sim_run));
  EXPECT_EQ(classify(exec_run, input), Outcome::kFailStop);
}

TEST(ShmKill, SupervisorRecoversFromASigkilledNode) {
  const int dim = 3;
  SftOptions base;
  base.block = 2;
  base.backend = transport::Backend::kShm;
  base.shm.recv_timeout_s = 5.0;
  base.shm.run_deadline_s = 60.0;
  auto input = util::random_keys(2024, (std::size_t{1} << dim) * 2);

  const auto faults = kill_fault(3, fault::StagePoint{1, 0});
  const auto run = fault::run_supervised_sort(
      dim, input, base, fault::RecoveryPolicy{},
      [](int) -> sim::LinkInterceptor* { return nullptr; },
      [&](int attempt) -> fault::NodeFaultMap {
        // Transient: the node is killed on the first attempt only — the
        // ladder's job is to notice the death and drive a clean retry.
        return attempt == 0 ? faults : fault::NodeFaultMap{};
      });
  EXPECT_EQ(run.outcome, Outcome::kCorrect);
  EXPECT_TRUE(run.recovered) << "a fail-stop must precede the correct run";
  EXPECT_GE(run.attempts, 2);
}

}  // namespace
}  // namespace aoft::sort
