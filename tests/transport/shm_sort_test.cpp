// The backend oracle contract (docs/PROTOCOL.md §11): for identical inputs
// and fault scripts, the shared-memory multi-process backend must reproduce
// the deterministic simulator's sorted output and fail-stop verdicts.  For
// every scripted fault except kill_process the *entire* output image is
// bit-identical — a receive fails exactly when its message was never sent,
// which is the same condition on both fabrics.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

SftOptions shm_opts(const SftOptions& base) {
  SftOptions o = base;
  o.backend = transport::Backend::kShm;
  o.shm.recv_timeout_s = 5.0;
  o.shm.run_deadline_s = 60.0;
  return o;
}

// Canonical error key: (node, stage, iter, source).  The two backends report
// the same violation set but may order reports differently (sim: delivery
// order; shm: node order).
std::vector<std::tuple<cube::NodeId, int, int, int>> error_keys(
    const SortRun& run) {
  std::vector<std::tuple<cube::NodeId, int, int, int>> keys;
  for (const auto& e : run.errors)
    keys.emplace_back(e.node, e.stage, e.iter, static_cast<int>(e.source));
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expect_match(const SortRun& sim_run, const SortRun& shm_run,
                  std::span<const Key> input, const char* what) {
  EXPECT_EQ(shm_run.output, sim_run.output) << what << ": output diverged";
  EXPECT_EQ(error_keys(shm_run), error_keys(sim_run))
      << what << ": verdicts diverged";
  EXPECT_EQ(classify(shm_run, input), classify(sim_run, input)) << what;
}

TEST(ShmSortCrossCheck, FaultFreeRunsMatchTheOracle) {
  for (int dim = 1; dim <= 3; ++dim) {
    for (std::size_t m : {std::size_t{1}, std::size_t{4}}) {
      SftOptions base;
      base.block = m;
      auto input = util::random_keys(
          1000 + static_cast<std::uint64_t>(dim) * 10 + m,
          (std::size_t{1} << dim) * m);
      auto sim_run = run_sft(dim, input, base);
      auto shm_run = run_sft(dim, input, shm_opts(base));
      ASSERT_TRUE(shm_run.errors.empty())
          << "dim=" << dim << " m=" << m
          << " first: " << shm_run.errors.front().detail;
      expect_match(sim_run, shm_run, input, "fault-free");
    }
  }
}

TEST(ShmSortCrossCheck, Dim4FaultFreeMatches) {
  SftOptions base;
  base.block = 2;
  auto input = util::random_keys(4242, (std::size_t{1} << 4) * 2);
  auto sim_run = run_sft(4, input, base);
  auto shm_run = run_sft(4, input, shm_opts(base));
  expect_match(sim_run, shm_run, input, "dim-4 fault-free");
}

TEST(ShmSortCrossCheck, HaltFaultYieldsIdenticalFailStop) {
  for (int dim = 2; dim <= 3; ++dim) {
    SftOptions base;
    base.node_faults[1].halt_at = fault::StagePoint{1, 0};
    auto input = util::random_keys(7 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    auto sim_run = run_sft(dim, input, base);
    auto shm_run = run_sft(dim, input, shm_opts(base));
    ASSERT_FALSE(sim_run.errors.empty());
    expect_match(sim_run, shm_run, input, "halt");
  }
}

TEST(ShmSortCrossCheck, InvertAndSubstituteFaultsMatch) {
  const int dim = 3;
  auto input = util::random_keys(99, std::size_t{1} << dim);

  SftOptions invert;
  invert.node_faults[3].invert_direction_from = fault::StagePoint{1, 1};
  expect_match(run_sft(dim, input, invert),
               run_sft(dim, input, shm_opts(invert)), input, "invert");

  SftOptions subst;
  subst.node_faults[5].substitute_at = fault::StagePoint{1, 1};
  subst.node_faults[5].substitute_value = 123456;
  expect_match(run_sft(dim, input, subst),
               run_sft(dim, input, shm_opts(subst)), input, "substitute");
}

TEST(ShmSortCrossCheck, CheckpointCertificationMatches) {
  const int dim = 3;
  SftOptions base;
  base.block = 2;
  base.checkpoint = true;
  auto input = util::random_keys(555, (std::size_t{1} << dim) * 2);
  auto sim_run = run_sft(dim, input, base);
  auto shm_run = run_sft(dim, input, shm_opts(base));
  expect_match(sim_run, shm_run, input, "checkpoint");
  ASSERT_EQ(shm_run.checkpoints.size(), sim_run.checkpoints.size());
  for (std::size_t i = 0; i < sim_run.checkpoints.size(); ++i) {
    EXPECT_EQ(shm_run.checkpoints[i].certified,
              sim_run.checkpoints[i].certified)
        << "stage " << sim_run.checkpoints[i].stage;
    EXPECT_EQ(shm_run.checkpoints[i].state, sim_run.checkpoints[i].state);
  }
}

TEST(ShmSortCrossCheck, ResumeFromCertifiedCheckpointMatches) {
  const int dim = 3;
  SftOptions base;
  base.checkpoint = true;
  auto input = util::random_keys(31337, std::size_t{1} << dim);
  auto first = run_sft(dim, input, base);
  auto rs = make_resume_state(first.checkpoints);
  ASSERT_TRUE(rs.has_value());
  SftOptions plain;
  auto sim_run = resume_sft(dim, *rs, plain);
  auto shm_run = resume_sft(dim, *rs, shm_opts(plain));
  expect_match(sim_run, shm_run, input, "resume");
  EXPECT_EQ(classify(shm_run, input), Outcome::kCorrect);
}

TEST(ShmSortCrossCheck, LinkEventMultisetsMatchCanonically) {
  const int dim = 2;
  SftOptions base;
  base.record_link_events = true;
  auto input = util::random_keys(11, std::size_t{1} << dim);
  auto sim_run = run_sft(dim, input, base);
  auto shm_run = run_sft(dim, input, shm_opts(base));

  const auto canon = [](std::vector<sim::LinkEvent> evs) {
    const auto key = [](const sim::LinkEvent& e) {
      return std::make_tuple(e.stage, e.iter, e.from, e.to, e.to_host,
                             e.from_host, static_cast<int>(e.kind), e.words,
                             e.delivered);
    };
    std::sort(evs.begin(), evs.end(),
              [&](const sim::LinkEvent& a, const sim::LinkEvent& b) {
                return key(a) < key(b);
              });
    std::vector<std::tuple<int, int, cube::NodeId, cube::NodeId, bool, bool,
                           int, std::uint32_t, bool>>
        keys;
    for (const auto& e : evs) keys.push_back(key(e));
    return keys;
  };
  ASSERT_FALSE(shm_run.link_events.empty());
  EXPECT_EQ(canon(shm_run.link_events), canon(sim_run.link_events));
}

TEST(ShmSortCrossCheck, SnrBackendMatchesAndStaysUnprotected) {
  const int dim = 3;
  auto input = util::random_keys(77, std::size_t{1} << dim);

  SnrOptions base;
  auto sim_run = run_snr(dim, input, base);
  SnrOptions shm = base;
  shm.backend = transport::Backend::kShm;
  shm.shm.recv_timeout_s = 5.0;
  auto shm_run = run_snr(dim, input, shm);
  EXPECT_EQ(shm_run.output, sim_run.output);
  EXPECT_EQ(classify(shm_run, input), Outcome::kCorrect);

  // Unprotected under a substitution: silent-wrong on both fabrics.
  SnrOptions bad = base;
  bad.node_faults[2].substitute_at = fault::StagePoint{1, 1};
  bad.node_faults[2].substitute_value = 999999;
  auto sim_bad = run_snr(dim, input, bad);
  SnrOptions shm_bad = bad;
  shm_bad.backend = transport::Backend::kShm;
  shm_bad.shm.recv_timeout_s = 5.0;
  auto shm_bad_run = run_snr(dim, input, shm_bad);
  EXPECT_EQ(shm_bad_run.output, sim_bad.output);
  EXPECT_EQ(classify(shm_bad_run, input), classify(sim_bad, input));
}

TEST(ShmSortCrossCheck, RejectsInProcessAffordances) {
  auto input = util::random_keys(1, 4);
  SftOptions with_machine;
  with_machine.backend = transport::Backend::kShm;
  sim::Machine mach(cube::Topology{2}, {});
  with_machine.machine = &mach;
  EXPECT_THROW(run_sft(2, input, with_machine), std::invalid_argument);

  SftOptions with_observer;
  with_observer.backend = transport::Backend::kShm;
  with_observer.observer = [](const StageSnapshot&) {};
  EXPECT_THROW(run_sft(2, input, with_observer), std::invalid_argument);
}

}  // namespace
}  // namespace aoft::sort
