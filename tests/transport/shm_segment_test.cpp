#include "transport/shm_segment.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sort/shm_detail.h"
#include "transport/wire.h"

namespace aoft::transport {
namespace {

ShmSegment::Config small_cfg(int dim, std::uint64_t block) {
  ShmSegment::Config cfg;
  cfg.dim = dim;
  cfg.block = block;
  cfg.record_events = true;
  return cfg;
}

TEST(ShmSegment, CreatePopulatesHeaderAndRegions) {
  auto seg = ShmSegment::create(small_cfg(3, 4));
  const auto& hd = seg.header();
  EXPECT_EQ(seg.dim(), 3);
  EXPECT_EQ(seg.num_nodes(), 8u);
  EXPECT_EQ(hd.block, 4u);
  EXPECT_EQ(hd.version, kSegmentVersion);
  EXPECT_EQ(seg.input().size(), 32u);
  EXPECT_EQ(seg.llbs().size(), 32u);
  EXPECT_EQ(seg.output().size(), 32u);
  EXPECT_GT(hd.event_cap, 0u);
  EXPECT_EQ(seg.events(7).size(), hd.event_cap);
  // Regions ordered and within bounds.
  EXPECT_LT(hd.off_faults, hd.off_slots);
  EXPECT_LT(hd.off_slots, hd.off_events);
  EXPECT_LT(hd.off_events, hd.off_input);
  EXPECT_LT(hd.off_rings, hd.total_bytes);
}

TEST(ShmSegment, SlotsStartIdleAndKeyRegionsRoundTrip) {
  auto seg = ShmSegment::create(small_cfg(2, 2));
  for (cube::NodeId p = 0; p < seg.num_nodes(); ++p)
    EXPECT_EQ(static_cast<SlotState>(
                  seg.slot(p).state.load(std::memory_order_acquire)),
              SlotState::kIdle);
  auto in = seg.input();
  std::iota(in.begin(), in.end(), sim::Key{100});
  EXPECT_EQ(seg.input()[0], 100);
  EXPECT_EQ(seg.input()[7], 107);
  // Output is a distinct region.
  EXPECT_EQ(seg.output()[0], 0);
}

TEST(ShmSegment, RingsAreDistinctAndSizedForWholeRunTraffic) {
  auto seg = ShmSegment::create(small_cfg(3, 4));
  const char probe[] = "probe";
  ASSERT_TRUE(seg.link_ring(5, 1).try_push(probe, sizeof probe));
  // Only (to=5, k=1) sees it; neighbours don't.
  EXPECT_TRUE(seg.link_ring(5, 0).empty());
  EXPECT_TRUE(seg.link_ring(5, 2).empty());
  EXPECT_TRUE(seg.link_ring(4, 1).empty());
  EXPECT_FALSE(seg.link_ring(5, 1).empty());
  EXPECT_TRUE(seg.up_ring(5).empty());
  EXPECT_TRUE(seg.down_ring(5).empty());

  // A directed link carries at most dim+1 full-size messages per run: the
  // ring must hold that many maximal records without ever rejecting.
  const auto& hd = seg.header();
  const std::uint64_t keys = seg.num_nodes() * hd.block;
  const std::uint64_t max_payload =
      sizeof(WireMsgHdr) + (2 * hd.block + keys) * sizeof(sim::Key);
  auto ring = seg.link_ring(0, 0);
  std::vector<unsigned char> rec(max_payload, 0x5A);
  for (int i = 0; i < seg.dim() + 1; ++i)
    ASSERT_TRUE(ring.try_push(rec.data(), rec.size())) << "message " << i;
}

TEST(ShmSegment, AttachSeesCreatorWrites) {
  auto seg = ShmSegment::create(small_cfg(2, 1));
  seg.input()[3] = 42;
  seg.slot(1).state.store(static_cast<std::uint32_t>(SlotState::kRunning),
                          std::memory_order_release);
  auto other = ShmSegment::attach(seg.name());
  EXPECT_EQ(other.input()[3], 42);
  EXPECT_EQ(static_cast<SlotState>(
                other.slot(1).state.load(std::memory_order_acquire)),
            SlotState::kRunning);
  // And writes flow the other way through the same pages.
  other.output()[0] = 7;
  EXPECT_EQ(seg.output()[0], 7);
}

TEST(ShmSegment, AttachRejectsUnknownName) {
  EXPECT_THROW(ShmSegment::attach("/aoft-no-such-segment"),
               std::runtime_error);
}

TEST(ShmSegment, CreateRejectsOversizedCube) {
  ShmSegment::Config cfg;
  cfg.dim = kMaxShmDim + 1;
  EXPECT_THROW(ShmSegment::create(cfg), std::invalid_argument);
}

TEST(ShmSegment, FaultScriptsRoundTripThroughWireForm) {
  auto seg = ShmSegment::create(small_cfg(3, 1));
  fault::NodeFaultMap faults;
  fault::NodeFault halt;
  halt.halt_at = fault::StagePoint{1, 0};
  halt.kill_process = true;
  faults[2] = halt;
  fault::NodeFault lie;
  lie.substitute_at = fault::StagePoint{2, 2};
  lie.substitute_value = -77;
  lie.silent_checker = true;
  faults[5] = lie;
  fault::NodeFault invert;
  invert.invert_direction_from = fault::StagePoint{0, 0};
  faults[7] = invert;

  sort::shm_detail::fill_wire_faults(seg, faults);
  const auto back = sort::shm_detail::faults_from_segment(seg);
  ASSERT_EQ(back.size(), 3u);
  ASSERT_TRUE(back.at(2).halt_at.has_value());
  EXPECT_EQ(back.at(2).halt_at->stage, 1);
  EXPECT_EQ(back.at(2).halt_at->iter, 0);
  EXPECT_TRUE(back.at(2).kill_process);
  ASSERT_TRUE(back.at(5).substitute_at.has_value());
  EXPECT_EQ(back.at(5).substitute_value, -77);
  EXPECT_TRUE(back.at(5).silent_checker);
  ASSERT_TRUE(back.at(7).invert_direction_from.has_value());
  EXPECT_FALSE(back.at(7).kill_process);
}

TEST(WireMessage, EncodeDecodeRoundTrip) {
  sim::KeyPool pool;
  sim::Message m(pool);
  m.kind = sim::MsgKind::kDataLbs;
  m.from = 3;
  m.stage = 2;
  m.iter = 1;
  m.tag = 9;
  m.arrival = 12.5;
  m.data.assign({1, 2, 3});
  m.lbs.assign({-4, -5});

  std::vector<unsigned char> bytes;
  encode_message(m, bytes);
  sim::Message out(pool);
  ASSERT_TRUE(decode_message(bytes, pool, out));
  EXPECT_EQ(out.kind, sim::MsgKind::kDataLbs);
  EXPECT_EQ(out.from, 3u);
  EXPECT_EQ(out.stage, 2);
  EXPECT_EQ(out.iter, 1);
  EXPECT_EQ(out.tag, 9);
  EXPECT_EQ(out.arrival, 12.5);
  ASSERT_EQ(out.data.size(), 3u);
  EXPECT_EQ(out.data[2], 3);
  ASSERT_EQ(out.lbs.size(), 2u);
  EXPECT_EQ(out.lbs[1], -5);

  // Truncated or length-inconsistent records are rejected.
  std::vector<unsigned char> cut(bytes.begin(), bytes.end() - 1);
  sim::Message bad(pool);
  EXPECT_FALSE(decode_message(cut, pool, bad));
  EXPECT_FALSE(decode_message(std::span<const unsigned char>(bytes).first(10),
                              pool, bad));
}

}  // namespace
}  // namespace aoft::transport
