// Stream framing for the socket backend (docs/PROTOCOL.md §13.1): the
// FrameReader must reassemble frames from arbitrary byte-stream fragmentation
// — TCP guarantees order and completeness but nothing about boundaries, so a
// header can arrive split across two reads and a payload across ten.  Also
// covered: the malformed-stream latch (garbage lengths/types stop the reader
// instead of desynchronizing it) and TcpConn's nonblocking short-write /
// partial-read handling over a socketpair.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>

#include <cstring>
#include <vector>

#include "transport/frame.h"
#include "transport/tcp_transport.h"

namespace aoft::transport {
namespace {

std::vector<unsigned char> bytes_of(std::initializer_list<int> v) {
  std::vector<unsigned char> out;
  for (int b : v) out.push_back(static_cast<unsigned char>(b));
  return out;
}

std::vector<unsigned char> payload_bytes(std::size_t n, unsigned seed) {
  std::vector<unsigned char> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<unsigned char>((seed + i * 131) & 0xff);
  return p;
}

TEST(FrameReader, RoundTripsFramesFedByteAtATime) {
  std::vector<unsigned char> stream;
  const auto p1 = payload_bytes(5, 1);
  const auto p2 = payload_bytes(0, 2);  // heartbeat: empty payload
  const auto p3 = payload_bytes(300, 3);
  append_frame(stream, FrameType::kData, p1);
  append_frame(stream, FrameType::kHeartbeat, p2);
  append_frame(stream, FrameType::kFinish, p3);

  FrameReader r;
  std::vector<std::pair<FrameType, std::vector<unsigned char>>> got;
  for (unsigned char b : stream) {
    r.feed({&b, 1});
    while (auto f = r.next())
      got.emplace_back(f->type, std::vector<unsigned char>(f->payload.begin(),
                                                           f->payload.end()));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, FrameType::kData);
  EXPECT_EQ(got[0].second, p1);
  EXPECT_EQ(got[1].first, FrameType::kHeartbeat);
  EXPECT_TRUE(got[1].second.empty());
  EXPECT_EQ(got[2].first, FrameType::kFinish);
  EXPECT_EQ(got[2].second, p3);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.malformed());
}

TEST(FrameReader, SplitMidHeaderStaysPending) {
  std::vector<unsigned char> stream;
  const auto p = payload_bytes(16, 9);
  append_frame(stream, FrameType::kConfig, p);

  FrameReader r;
  // First fragment ends 3 bytes into the 8-byte header.
  r.feed({stream.data(), 3});
  EXPECT_FALSE(r.next().has_value());
  EXPECT_FALSE(r.malformed());
  // Second fragment completes the header but not the payload.
  r.feed({stream.data() + 3, sizeof(FrameHdr)});
  EXPECT_FALSE(r.next().has_value());
  // Rest of the payload: the frame pops out whole.
  r.feed({stream.data() + 3 + sizeof(FrameHdr),
          stream.size() - 3 - sizeof(FrameHdr)});
  auto f = r.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kConfig);
  EXPECT_EQ(std::vector<unsigned char>(f->payload.begin(), f->payload.end()),
            p);
}

TEST(FrameReader, ManyFramesAcrossUnevenFragments) {
  std::vector<unsigned char> stream;
  const int kFrames = 200;
  for (int i = 0; i < kFrames; ++i)
    append_frame(stream, FrameType::kData,
                 payload_bytes(static_cast<std::size_t>(i % 37), i));
  FrameReader r;
  int got = 0;
  std::size_t at = 0;
  std::size_t chunk = 1;
  while (at < stream.size()) {
    const std::size_t n = std::min(chunk, stream.size() - at);
    r.feed({stream.data() + at, n});
    at += n;
    chunk = chunk * 3 % 101 + 1;  // uneven, deterministic fragment sizes
    while (auto f = r.next()) {
      EXPECT_EQ(f->payload.size(), static_cast<std::size_t>(got % 37));
      ++got;
    }
  }
  EXPECT_EQ(got, kFrames);
  EXPECT_TRUE(r.empty());
}

TEST(FrameReader, PayloadSpansStayValidUntilTheNextFeed) {
  // next() hands out spans aliasing the reader's buffer; only feed() may
  // move it (compaction / reallocation).  Make the consumed prefix large
  // enough that eager compaction inside next() would have shifted the
  // bytes under an earlier span.
  std::vector<unsigned char> stream;
  const auto p1 = payload_bytes(6000, 21);
  const auto p2 = payload_bytes(6000, 22);
  const auto p3 = payload_bytes(64, 23);
  append_frame(stream, FrameType::kData, p1);
  append_frame(stream, FrameType::kData, p2);
  append_frame(stream, FrameType::kData, p3);

  FrameReader r;
  r.feed(stream);
  const auto f1 = r.next();
  const auto f2 = r.next();
  const auto f3 = r.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_EQ(std::vector<unsigned char>(f1->payload.begin(), f1->payload.end()),
            p1)
      << "the first span must survive the later next() calls";
  EXPECT_EQ(std::vector<unsigned char>(f2->payload.begin(), f2->payload.end()),
            p2);
  EXPECT_EQ(std::vector<unsigned char>(f3->payload.begin(), f3->payload.end()),
            p3);
}

TEST(Frame, AppendFrameRejectsAPayloadBeyondTheFrameLimit) {
  // A payload over kMaxFrameBytes would silently truncate the u32 length
  // and desynchronize the stream; the sender must refuse loudly instead.
  std::vector<unsigned char> huge(std::size_t{kMaxFrameBytes} + 1);
  std::vector<unsigned char> out;
  EXPECT_THROW(append_frame(out, FrameType::kConfig, huge),
               std::length_error);
  EXPECT_TRUE(out.empty()) << "the guard must fire before any copy";
}

TEST(FrameReader, ImpossibleLengthLatchesMalformed) {
  FrameHdr h;
  h.len = kMaxFrameBytes + 1;
  h.type = static_cast<std::uint8_t>(FrameType::kData);
  FrameReader r;
  r.feed({reinterpret_cast<const unsigned char*>(&h), sizeof h});
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.malformed());
  // Latched: even a valid follow-up frame yields nothing.
  std::vector<unsigned char> good;
  append_frame(good, FrameType::kHeartbeat, {});
  r.feed(good);
  EXPECT_FALSE(r.next().has_value());
}

TEST(FrameReader, UnknownTypeLatchesMalformed) {
  auto junk = bytes_of({0, 0, 0, 0, 99, 0, 0, 0});  // len=0, type=99
  FrameReader r;
  r.feed(junk);
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.malformed());

  auto zero = bytes_of({0, 0, 0, 0, 0, 0, 0, 0});  // type=0 is also invalid
  FrameReader r2;
  r2.feed(zero);
  EXPECT_FALSE(r2.next().has_value());
  EXPECT_TRUE(r2.malformed());
}

TEST(Frame, TakeCursorReadsPodsAndRejectsShortPayloads) {
  WireHello hello;
  std::memcpy(hello.magic, kTcpMagic, sizeof kTcpMagic);
  hello.role = 3;
  hello.listen_port = 4242;
  std::vector<unsigned char> buf(as_bytes_of(hello).begin(),
                                 as_bytes_of(hello).end());
  std::span<const unsigned char> cursor(buf);
  WireHello out;
  ASSERT_TRUE(take(cursor, out));
  EXPECT_EQ(out.role, 3);
  EXPECT_EQ(out.listen_port, 4242);
  EXPECT_TRUE(cursor.empty());
  EXPECT_FALSE(take(cursor, out)) << "empty cursor must refuse";
}

// ---- TcpConn over a socketpair ---------------------------------------------

struct ConnPair {
  TcpConn a, b;
  ConnPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    for (int fd : fds) {
      const int fl = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    }
    a = TcpConn(fds[0]);
    b = TcpConn(fds[1]);
  }
};

TEST(TcpConn, FramesSurvivePartialReadsAndShortWrites) {
  ConnPair pair;
  // Big enough to overflow the socketpair's buffer: flush() must report
  // "not drained" and finish over multiple calls while the peer reads.
  const auto big = payload_bytes(1 << 20, 7);
  pair.a.queue_frame(FrameType::kData, big);

  std::vector<unsigned char> got;
  bool done = false;
  for (int spin = 0; spin < 100000 && !done; ++spin) {
    pair.a.flush();
    pair.b.read_some();
    while (auto f = pair.b.reader().next()) {
      got.assign(f->payload.begin(), f->payload.end());
      done = true;
    }
  }
  ASSERT_TRUE(done) << "1 MiB frame never reassembled";
  EXPECT_EQ(got, big);
  EXPECT_FALSE(pair.a.want_write());
}

TEST(TcpConn, InterleavedSmallFramesKeepOrder) {
  ConnPair pair;
  for (int i = 0; i < 64; ++i)
    pair.a.queue_frame(i % 2 ? FrameType::kHeartbeat : FrameType::kData,
                       payload_bytes(static_cast<std::size_t>(i), i));
  int seen = 0;
  for (int spin = 0; spin < 1000 && seen < 64; ++spin) {
    pair.a.flush();
    pair.b.read_some();
    while (auto f = pair.b.reader().next()) {
      EXPECT_EQ(f->payload.size(), static_cast<std::size_t>(seen));
      EXPECT_EQ(f->type,
                seen % 2 ? FrameType::kHeartbeat : FrameType::kData);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 64);
}

TEST(TcpConn, PeerCloseReadsAsEof) {
  ConnPair pair;
  pair.a.queue_frame(FrameType::kFinish, payload_bytes(8, 1));
  pair.a.flush();
  pair.a.close_fd();

  // The queued frame still arrives (kernel buffered), then EOF.
  bool got_finish = false;
  for (int spin = 0; spin < 1000 && !pair.b.eof(); ++spin) {
    pair.b.read_some();
    while (auto f = pair.b.reader().next())
      got_finish = f->type == FrameType::kFinish;
  }
  EXPECT_TRUE(got_finish) << "in-flight FINISH must beat the EOF";
  EXPECT_TRUE(pair.b.eof());
  EXPECT_EQ(pair.b.read_some(), 0u);
}

TEST(TcpConn, WritingToAClosedPeerAbsorbsSilently) {
  ConnPair pair;
  pair.b.close_fd();
  // MSG_NOSIGNAL + broken-connection absorption: no signal, no throw, and
  // the writer keeps draining its buffer as if the receiver halted.
  for (int i = 0; i < 100; ++i)
    pair.a.queue_frame(FrameType::kData, payload_bytes(1000, i));
  EXPECT_TRUE(pair.a.flush());
  EXPECT_FALSE(pair.a.want_write());
}

}  // namespace
}  // namespace aoft::transport
