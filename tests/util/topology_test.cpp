#include "util/topology.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace aoft::util {
namespace {

namespace fs = std::filesystem;

TEST(CpulistTest, ParsesSinglesRangesAndMixes) {
  std::vector<int> cpus;
  ASSERT_TRUE(parse_cpulist("5", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{5}));
  ASSERT_TRUE(parse_cpulist("0-3", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(parse_cpulist("0-3,8,10-11", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  ASSERT_TRUE(parse_cpulist(" 2 , 0-1 \n", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2}));
}

TEST(CpulistTest, SortsAndDeduplicates) {
  std::vector<int> cpus;
  ASSERT_TRUE(parse_cpulist("3,1,1-2,3", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{1, 2, 3}));
}

TEST(CpulistTest, EmptyTextIsAnEmptyList) {
  std::vector<int> cpus{99};
  ASSERT_TRUE(parse_cpulist("", &cpus));
  EXPECT_TRUE(cpus.empty());
  cpus = {99};
  ASSERT_TRUE(parse_cpulist("  \n ", &cpus));
  EXPECT_TRUE(cpus.empty());
}

TEST(CpulistTest, RejectsMalformedTokens) {
  std::vector<int> cpus;
  EXPECT_FALSE(parse_cpulist("a", &cpus));
  EXPECT_FALSE(parse_cpulist("1,,2", &cpus));
  EXPECT_FALSE(parse_cpulist("-3", &cpus));
  EXPECT_FALSE(parse_cpulist("3-", &cpus));
  EXPECT_FALSE(parse_cpulist("3-1", &cpus));   // descending range
  EXPECT_FALSE(parse_cpulist("1.5", &cpus));
  EXPECT_FALSE(parse_cpulist("0x2", &cpus));
}

TEST(PlacementPolicyTest, ParsesNamedPoliciesAndRoundTrips) {
  for (const char* name : {"none", "compact", "scatter"}) {
    PlacementPolicy p;
    std::string err;
    ASSERT_TRUE(PlacementPolicy::parse(name, &p, &err)) << err;
    EXPECT_TRUE(p.cpus.empty());
    EXPECT_EQ(p.str(), name);
    PlacementPolicy again;
    ASSERT_TRUE(PlacementPolicy::parse(p.str(), &again, &err)) << err;
    EXPECT_EQ(p, again);
  }
}

TEST(PlacementPolicyTest, ParsesExplicitListsAndRoundTrips) {
  PlacementPolicy p;
  std::string err;
  ASSERT_TRUE(PlacementPolicy::parse("0,2,4", &p, &err)) << err;
  EXPECT_EQ(p.kind, Placement::kExplicit);
  EXPECT_EQ(p.cpus, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(p.str(), "0,2,4");
  ASSERT_TRUE(PlacementPolicy::parse("0-3", &p, &err)) << err;
  EXPECT_EQ(p.cpus, (std::vector<int>{0, 1, 2, 3}));
  PlacementPolicy again;
  ASSERT_TRUE(PlacementPolicy::parse(p.str(), &again, &err)) << err;
  EXPECT_EQ(p, again);
}

TEST(PlacementPolicyTest, RejectsGarbageAndEmptyLists) {
  PlacementPolicy p;
  std::string err;
  EXPECT_FALSE(PlacementPolicy::parse("", &p, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(PlacementPolicy::parse("bogus", &p, &err));
  EXPECT_FALSE(PlacementPolicy::parse("1,,2", &p, &err));
  EXPECT_FALSE(PlacementPolicy::parse("-3", &p, &err));
  EXPECT_TRUE(PlacementPolicy::parse("compact", &p, nullptr));  // null err ok
}

TEST(HostTopologyTest, SingleNodeFallbackShape) {
  const auto topo = HostTopology::single_node(4);
  ASSERT_EQ(topo.cpus.size(), 4u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(topo.cpus[static_cast<std::size_t>(c)].cpu, c);
    EXPECT_EQ(topo.cpus[static_cast<std::size_t>(c)].node, 0);
  }
  EXPECT_EQ(topo.nodes, 1);
  EXPECT_TRUE(topo.fallback);
  EXPECT_GE(HostTopology::single_node(0).cpus.size(), 1u);  // hw concurrency
}

TEST(HostTopologyTest, NodeOfAndHasCpu) {
  const auto topo = HostTopology::single_node(2);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(1), 0);
  EXPECT_EQ(topo.node_of(2), -1);
  EXPECT_TRUE(topo.has_cpu(1));
  EXPECT_FALSE(topo.has_cpu(7));
}

// Fixture sysfs trees: a fake /sys/devices/system/node with two NUMA nodes.
class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "aoft_topology_fixture";
    fs::remove_all(root_);
    write_node(0, "0-1");
    write_node(1, "2-3");
    // Entries a real /sys tree also contains; discovery must skip them.
    fs::create_directories(root_ / "cpufreq");
    std::ofstream(root_ / "online") << "0-1\n";
    fs::create_directories(root_ / "nodeX");  // malformed suffix
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_node(int node, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(node));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << "\n";
  }

  fs::path root_;
};

TEST_F(SysfsFixture, ReadsTwoNodeTree) {
  const auto topo = HostTopology::from_sysfs(root_.string(), {});
  ASSERT_EQ(topo.cpus.size(), 4u);
  EXPECT_EQ(topo.nodes, 2);
  EXPECT_FALSE(topo.fallback);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(1), 0);
  EXPECT_EQ(topo.node_of(2), 1);
  EXPECT_EQ(topo.node_of(3), 1);
}

TEST_F(SysfsFixture, RestrictsToTheAvailableCpuSet) {
  const auto topo = HostTopology::from_sysfs(root_.string(), {1, 3});
  ASSERT_EQ(topo.cpus.size(), 2u);
  EXPECT_EQ(topo.cpus[0].cpu, 1);
  EXPECT_EQ(topo.cpus[0].node, 0);
  EXPECT_EQ(topo.cpus[1].cpu, 3);
  EXPECT_EQ(topo.cpus[1].node, 1);
  EXPECT_EQ(topo.nodes, 2);
  // A CPU the affinity mask grants but sysfs never mentions lands on node 0.
  const auto extra = HostTopology::from_sysfs(root_.string(), {3, 9});
  EXPECT_EQ(extra.node_of(9), 0);
}

TEST_F(SysfsFixture, MissingRootFallsBackToSingleNode) {
  const auto topo =
      HostTopology::from_sysfs((root_ / "does_not_exist").string(), {0, 1});
  ASSERT_EQ(topo.cpus.size(), 2u);
  EXPECT_EQ(topo.nodes, 1);
  EXPECT_TRUE(topo.fallback);
  EXPECT_EQ(topo.node_of(0), 0);
  // No available set either: hardware-concurrency single-node shape.
  const auto empty =
      HostTopology::from_sysfs((root_ / "does_not_exist").string(), {});
  EXPECT_GE(empty.cpus.size(), 1u);
  EXPECT_TRUE(empty.fallback);
}

TEST(HostTopologyTest, DiscoverReturnsSomethingUsable) {
  const auto topo = HostTopology::discover();
  ASSERT_FALSE(topo.cpus.empty());
  EXPECT_GE(topo.nodes, 1);
  for (std::size_t i = 1; i < topo.cpus.size(); ++i)
    EXPECT_LT(topo.cpus[i - 1].cpu, topo.cpus[i].cpu);  // ascending, unique
  for (const auto& hc : topo.cpus) EXPECT_GE(hc.node, 0);
}

// Two nodes, two CPUs each: 0,1 on node 0 and 2,3 on node 1.
HostTopology two_by_two() {
  HostTopology topo;
  topo.cpus = {{0, 0}, {1, 0}, {2, 1}, {3, 1}};
  topo.nodes = 2;
  return topo;
}

TEST(PlanPlacementTest, NoneLeavesEveryWorkerUnpinned) {
  const auto pins = plan_placement({}, two_by_two(), 3);
  ASSERT_EQ(pins.size(), 3u);
  for (const auto& pin : pins) {
    EXPECT_EQ(pin.cpu, -1);
    EXPECT_EQ(pin.node, -1);
  }
  EXPECT_EQ(pins[2].worker, 2);
}

TEST(PlanPlacementTest, CompactFillsANodeBeforeSpilling) {
  PlacementPolicy p;
  p.kind = Placement::kCompact;
  const auto pins = plan_placement(p, two_by_two(), 4);
  ASSERT_EQ(pins.size(), 4u);
  EXPECT_EQ(pins[0].cpu, 0);
  EXPECT_EQ(pins[1].cpu, 1);
  EXPECT_EQ(pins[2].cpu, 2);
  EXPECT_EQ(pins[3].cpu, 3);
  EXPECT_EQ(pins[0].node, 0);
  EXPECT_EQ(pins[1].node, 0);
  EXPECT_EQ(pins[2].node, 1);
  EXPECT_EQ(pins[3].node, 1);
}

TEST(PlanPlacementTest, ScatterAlternatesNodes) {
  PlacementPolicy p;
  p.kind = Placement::kScatter;
  const auto pins = plan_placement(p, two_by_two(), 4);
  ASSERT_EQ(pins.size(), 4u);
  EXPECT_EQ(pins[0].cpu, 0);
  EXPECT_EQ(pins[1].cpu, 2);
  EXPECT_EQ(pins[2].cpu, 1);
  EXPECT_EQ(pins[3].cpu, 3);
  EXPECT_EQ(pins[0].node, 0);
  EXPECT_EQ(pins[1].node, 1);
  EXPECT_EQ(pins[2].node, 0);
  EXPECT_EQ(pins[3].node, 1);
}

TEST(PlanPlacementTest, WorkersWrapWhenTheyOutnumberCpus) {
  PlacementPolicy p;
  p.kind = Placement::kCompact;
  const auto pins = plan_placement(p, two_by_two(), 6);
  ASSERT_EQ(pins.size(), 6u);
  EXPECT_EQ(pins[4].cpu, 0);
  EXPECT_EQ(pins[5].cpu, 1);
}

TEST(PlanPlacementTest, ExplicitListCyclesInAscendingOrder) {
  // cpulist syntax denotes a *set*: parse canonicalizes "3,1" to 1,3.
  PlacementPolicy p;
  std::string err;
  ASSERT_TRUE(PlacementPolicy::parse("3,1", &p, &err)) << err;
  EXPECT_EQ(p.str(), "1,3");
  const auto pins = plan_placement(p, two_by_two(), 3);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0].cpu, 1);
  EXPECT_EQ(pins[0].node, 0);
  EXPECT_EQ(pins[1].cpu, 3);
  EXPECT_EQ(pins[1].node, 1);
  EXPECT_EQ(pins[2].cpu, 1);  // wrapped
}

TEST(PlanPlacementTest, ExplicitUnavailableCpuThrows) {
  PlacementPolicy p;
  ASSERT_TRUE(PlacementPolicy::parse("0,9", &p, nullptr));
  EXPECT_THROW(plan_placement(p, two_by_two(), 2), std::invalid_argument);
}

TEST(PlanPlacementTest, DegenerateWorkerCountsAndTopologies) {
  PlacementPolicy compact;
  compact.kind = Placement::kCompact;
  EXPECT_TRUE(plan_placement(compact, two_by_two(), 0).empty());
  EXPECT_TRUE(plan_placement(compact, two_by_two(), -2).empty());
  // An empty topology plans everything unpinned rather than dividing by zero.
  const auto pins = plan_placement(compact, HostTopology{}, 2);
  ASSERT_EQ(pins.size(), 2u);
  EXPECT_EQ(pins[0].cpu, -1);
  EXPECT_EQ(pins[1].cpu, -1);
}

TEST(PinCurrentThreadTest, PinsARealCpuAndRejectsNonsense) {
  // Pin inside a scratch thread so the test runner's own affinity mask is
  // never narrowed.
  const auto topo = HostTopology::discover();
  ASSERT_FALSE(topo.cpus.empty());
  const int cpu = topo.cpus.front().cpu;
  bool pinned = false, huge = true, negative = true;
  std::thread([&] {
    pinned = pin_current_thread(cpu);
    huge = pin_current_thread(1 << 20);
    negative = pin_current_thread(-1);
  }).join();
#if defined(__linux__)
  EXPECT_TRUE(pinned);
#endif
  EXPECT_FALSE(huge);
  EXPECT_FALSE(negative);
}

}  // namespace
}  // namespace aoft::util
