#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace aoft::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextUnitInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

TEST(RngTest, RandomKeysAre32Bit) {
  auto keys = random_keys(21, 1000);
  EXPECT_EQ(keys.size(), 1000u);
  for (auto k : keys) {
    EXPECT_GE(k, -2147483648LL);
    EXPECT_LE(k, 2147483647LL);
  }
}

TEST(RngTest, RandomKeysDeterministic) {
  EXPECT_EQ(random_keys(5, 64), random_keys(5, 64));
  EXPECT_NE(random_keys(5, 64), random_keys(6, 64));
}

TEST(RngTest, SmallAlphabetProducesDuplicates) {
  auto keys = random_keys_small_alphabet(23, 256, 3);
  for (auto k : keys) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 3);
  }
  // With 256 draws from 3 symbols, all three appear.
  std::set<std::int64_t> seen(keys.begin(), keys.end());
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace aoft::util
