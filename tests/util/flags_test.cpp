// Checked flag parsing (util/flags.h).  The bench harnesses keep their
// documented ignore-unknown-argument behaviour, but a *known* flag with an
// unparseable value must die loudly: "--runs=ten" silently becoming 0 via
// atoi once corrupted a whole sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/flags.h"

namespace {

using namespace aoft;

TEST(ParseI64, AcceptsDecimalIntegers) {
  long long v = 0;
  EXPECT_TRUE(util::parse_i64("0", v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(util::parse_i64("-17", v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(util::parse_i64("9223372036854775807", v));
  EXPECT_EQ(v, std::numeric_limits<long long>::max());
}

TEST(ParseI64, RejectsGarbageAndPartialParses) {
  long long v = 42;
  EXPECT_FALSE(util::parse_i64(nullptr, v));
  EXPECT_FALSE(util::parse_i64("", v));
  EXPECT_FALSE(util::parse_i64("ten", v));
  EXPECT_FALSE(util::parse_i64("12x", v));       // atoi: 12
  EXPECT_FALSE(util::parse_i64("1e3", v));       // atoi: 1
  EXPECT_FALSE(util::parse_i64("4 ", v));        // trailing junk
  EXPECT_FALSE(util::parse_i64("9223372036854775808", v));  // overflow
  EXPECT_EQ(v, 42) << "failed parses must not clobber the output";
}

TEST(ParseU64, RejectsNegativeInsteadOfWrapping) {
  std::uint64_t v = 7;
  // strtoull accepts "-1" and wraps it to UINT64_MAX; a negative count or
  // seed is garbage, not a very large number.
  EXPECT_FALSE(util::parse_u64("-1", v));
  EXPECT_FALSE(util::parse_u64("", v));
  EXPECT_FALSE(util::parse_u64("1.5", v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(util::parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseF64, AcceptsNumbersRejectsJunk) {
  double v = 0;
  EXPECT_TRUE(util::parse_f64("1.25", v));
  EXPECT_DOUBLE_EQ(v, 1.25);
  EXPECT_TRUE(util::parse_f64("1e-3", v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_FALSE(util::parse_f64("fast", v));
  EXPECT_FALSE(util::parse_f64("1.5x", v));
  EXPECT_FALSE(util::parse_f64("", v));
}

TEST(FlagValue, FindsKnownFlagsIgnoresUnknown) {
  char a0[] = "bench", a1[] = "--runs=5", a2[] = "--mystery=zzz";
  char* argv[] = {a0, a1, a2};
  EXPECT_STREQ(util::flag_value(3, argv, "--runs"), "5");
  EXPECT_EQ(util::flag_value(3, argv, "--jobs"), nullptr);
  // Unknown arguments stay ignored by design (the CI default is no args).
  EXPECT_EQ(util::flag_int(3, argv, "--jobs", 4), 4);
  EXPECT_EQ(util::flag_int(3, argv, "--runs", 4), 5);
}

using FlagDeath = ::testing::Test;

TEST(FlagDeath, GarbageValueForKnownFlagExits2) {
  char a0[] = "bench", a1[] = "--runs=ten";
  char* argv[] = {a0, a1};
  EXPECT_EXIT(util::flag_int(2, argv, "--runs", 4),
              ::testing::ExitedWithCode(2), "bad value");
}

TEST(FlagDeath, NegativeU64Exits2) {
  char a0[] = "bench", a1[] = "--seed=-3";
  char* argv[] = {a0, a1};
  EXPECT_EXIT(util::flag_u64(2, argv, "--seed", 1),
              ::testing::ExitedWithCode(2), "bad value");
}

}  // namespace
