#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/topology.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace aoft::util {
namespace {

TEST(ThreadPoolTest, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_EQ(ThreadPool::resolve(3), 3);
  EXPECT_GE(ThreadPool::resolve(-2), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForHandlesMoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 6);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "empty range ran a body"; });
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(50, 0);
  pool.parallel_for(out.size(), [&out](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 49 * 50 / 2);
}

TEST(ThreadPoolTest, FirstJobExceptionRethrownOnWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception was drained.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WorkersRunOnTheirPinnedCpu) {
  const auto topo = HostTopology::discover();
  ASSERT_FALSE(topo.cpus.empty());
  const int cpu = topo.cpus.front().cpu;
  std::vector<WorkerPin> pins(2);
  for (int w = 0; w < 2; ++w) pins[static_cast<std::size_t>(w)] = {w, cpu, 0};
  ThreadPool pool(2, pins);
  ASSERT_EQ(pool.pins().size(), 2u);
  EXPECT_EQ(pool.pins()[1].cpu, cpu);
#if defined(__linux__)
  std::atomic<int> mismatches{0};
  pool.parallel_for(64, [&](std::size_t) {
    if (sched_getcpu() != cpu) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
#endif
}

TEST(ThreadPoolTest, RejectedPinDegradesToUnpinnedExecution) {
  // A nonsense CPU id cannot be applied; the worker must still run jobs.
  ThreadPool pool(2, {{0, 1 << 20, 0}, {1, -1, -1}});
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, PoolReusableAcrossParallelForCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(20, [&total](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace aoft::util
