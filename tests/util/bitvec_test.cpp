#include "util/bitvec.h"

#include <gtest/gtest.h>

namespace aoft::util {
namespace {

TEST(BitVecTest, DefaultConstructedIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitVecTest, StartsAllClear) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVecTest, SetResetTest) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(69));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVecTest, InitializerListConstruction) {
  BitVec v(16, {1, 3, 5});
  EXPECT_EQ(v.count(), 3u);
  EXPECT_TRUE(v.test(1));
  EXPECT_TRUE(v.test(3));
  EXPECT_TRUE(v.test(5));
}

TEST(BitVecTest, SingleFactory) {
  auto v = BitVec::single(128, 127);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_TRUE(v.test(127));
}

TEST(BitVecTest, ClearResetsEverything) {
  BitVec v(80, {0, 40, 79});
  v.clear();
  EXPECT_TRUE(v.none());
}

TEST(BitVecTest, AnyNone) {
  BitVec v(65);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
  v.set(64);
  EXPECT_TRUE(v.any());
  EXPECT_FALSE(v.none());
}

TEST(BitVecTest, BitwiseOr) {
  BitVec a(10, {1, 2});
  BitVec b(10, {2, 3});
  auto c = a | b;
  EXPECT_EQ(c, BitVec(10, {1, 2, 3}));
}

TEST(BitVecTest, BitwiseAnd) {
  BitVec a(10, {1, 2, 5});
  BitVec b(10, {2, 3, 5});
  EXPECT_EQ(a & b, BitVec(10, {2, 5}));
}

TEST(BitVecTest, BitwiseXor) {
  BitVec a(10, {1, 2});
  BitVec b(10, {2, 3});
  EXPECT_EQ(a ^ b, BitVec(10, {1, 3}));
}

TEST(BitVecTest, ComplementRespectsSize) {
  BitVec a(66, {0, 65});
  auto c = ~a;
  EXPECT_EQ(c.count(), 64u);  // everything except the two set bits
  EXPECT_FALSE(c.test(0));
  EXPECT_FALSE(c.test(65));
  EXPECT_TRUE(c.test(1));
  // Complement twice is identity (checks the trailing-word trim).
  EXPECT_EQ(~c, a);
}

TEST(BitVecTest, SubsetRelation) {
  BitVec small(20, {3, 7});
  BitVec big(20, {3, 7, 11});
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
  EXPECT_TRUE(BitVec(20).is_subset_of(small));
}

TEST(BitVecTest, Intersects) {
  BitVec a(20, {3});
  BitVec b(20, {4});
  BitVec c(20, {3, 4});
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersects(c));
  EXPECT_TRUE(c.intersects(b));
}

TEST(BitVecTest, SetBitsAscending) {
  BitVec v(130, {129, 0, 64});
  EXPECT_EQ(v.set_bits(), (std::vector<std::size_t>{0, 64, 129}));
}

TEST(BitVecTest, ToStringBitZeroLeftmost) {
  BitVec v(5, {0, 3});
  EXPECT_EQ(v.to_string(), "10010");
}

TEST(BitVecTest, EqualityIncludesSize) {
  BitVec a(10, {1});
  BitVec b(11, {1});
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a, BitVec(10, {1}));
}

}  // namespace
}  // namespace aoft::util
