#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aoft::util {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"N", "time"});
  t.add_row({"4", "1.0"});
  t.add_row({"1024", "123.5"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("N     time"), std::string::npos);
  EXPECT_NE(text.find("1024  123.5"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(TableTest, CsvRendering) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableFmtTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(TableFmtTest, FmtInt) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(-123456789012345LL), "-123456789012345");
}

TEST(TableFmtTest, FmtSci) {
  EXPECT_EQ(fmt_sci(1234.5, 2), "1.23e+03");
}

}  // namespace
}  // namespace aoft::util
