// KeyPool / KeyBuf / util::Ring semantics: the storage layer under the
// zero-allocation messaging hot path.  These are pure value-semantics tests;
// the end-to-end "no allocations at steady state" claim lives in
// sort/alloc_regression_test.cpp.

#include "sim/pool.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/ring.h"

namespace aoft::sim {
namespace {

TEST(KeyPoolTest, AcquireReusesReleasedCapacity) {
  KeyPool pool;
  std::vector<Key> v;
  v.reserve(64);
  const Key* storage = v.data();
  pool.release(std::move(v));
  EXPECT_EQ(pool.free_count(), 1u);

  std::vector<Key> again = pool.acquire();
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_TRUE(again.empty());         // released vectors come back cleared
  EXPECT_GE(again.capacity(), 64u);   // ... but keep their capacity
  EXPECT_EQ(again.data(), storage);   // literally the same storage
}

TEST(KeyPoolTest, ReleaseIgnoresEmptyCapacity) {
  KeyPool pool;
  pool.release(std::vector<Key>{});
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(KeyPoolTest, DisabledPoolingDropsReleases) {
  KeyPool pool;
  set_pooling(false);
  std::vector<Key> v(8, 1);
  pool.release(std::move(v));
  set_pooling(true);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(KeyBufTest, DestructionReturnsStorageToPool) {
  KeyPool pool;
  {
    KeyBuf b(pool);
    b.assign({1, 2, 3});
  }
  EXPECT_EQ(pool.free_count(), 1u);
  // The next pooled buffer picks the storage straight back up.
  KeyBuf c(pool);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(KeyBufTest, MoveStealsStorageAndPoolMembership) {
  KeyPool pool;
  KeyBuf a(pool);
  a.assign({4, 5, 6});
  KeyBuf b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd state
  // `a` no longer owns pooled storage: destroying it must not double-release.
  { KeyBuf sink = std::move(a); }
  EXPECT_EQ(pool.free_count(), 0u);  // only `b` will release, on destruction
}

TEST(KeyBufTest, CopyIsDeepAndUnpooled) {
  KeyPool pool;
  std::size_t released;
  {
    KeyBuf a(pool);
    a.assign({7, 8});
    KeyBuf copy(a);
    copy[0] = 99;
    EXPECT_EQ(a[0], 7);
    released = pool.free_count();
  }
  // Both destroyed: only the pooled original returned to the free list.
  EXPECT_EQ(released, 0u);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(KeyBufTest, CopyAssignKeepsDestinationPool) {
  KeyPool pool;
  {
    KeyBuf dst(pool);
    dst.assign(16, Key{0});
    KeyBuf src;
    src.assign({1, 2});
    dst = src;
    EXPECT_EQ(dst.size(), 2u);
    EXPECT_EQ(dst[1], 2);
  }
  EXPECT_EQ(pool.free_count(), 1u);  // dst stayed pooled through assignment
}

TEST(KeyBufTest, TakeDetachesFromPool) {
  KeyPool pool;
  KeyBuf a(pool);
  a.assign({1, 2, 3});
  std::vector<Key> v = std::move(a).take();
  EXPECT_EQ(v, (std::vector<Key>{1, 2, 3}));
  { KeyBuf sink = std::move(a); }  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.free_count(), 0u);  // nothing returns: storage was taken
}

TEST(KeyBufTest, ComparesWithVectorsAndBufs) {
  KeyBuf a;
  a.assign({1, 2});
  KeyBuf b;
  b.assign({1, 2});
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a == (std::vector<Key>{1, 2}));
  b.push_back(3);
  EXPECT_FALSE(a == b);
}

TEST(RingTest, FifoAcrossGrowth) {
  util::Ring<int> r;
  for (int i = 0; i < 100; ++i) r.push_back(i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(RingTest, WrapsWithoutGrowingAtSteadyState) {
  util::Ring<int> r;
  for (int i = 0; i < 4; ++i) r.push_back(i);
  const std::size_t cap = r.capacity();
  // Ping-pong far beyond one capacity's worth of pushes: never grows.
  for (int i = 0; i < 1000; ++i) {
    r.push_back(i);
    r.pop_front();
  }
  EXPECT_EQ(r.capacity(), cap);
  EXPECT_EQ(r.size(), 4u);
}

TEST(RingTest, ClearKeepsCapacityAndReleasesElements) {
  // Elements must be destroyed/reset on clear and pop so pooled buffers
  // inside queued Messages return to their pool immediately.
  util::Ring<std::vector<int>> r;
  r.push_back(std::vector<int>(32, 7));
  r.push_back(std::vector<int>(32, 8));
  const std::size_t cap = r.capacity();
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), cap);
  r.push_back(std::vector<int>{1});
  EXPECT_EQ(r.front().at(0), 1);
}

}  // namespace
}  // namespace aoft::sim
