#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/channel.h"
#include "sim/machine.h"

namespace aoft::sim {
namespace {

TEST(SchedulerTest, RunsSpawnedTasksInOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    sched.spawn([](std::vector<int>& out, int id) -> SimTask {
      out.push_back(id);
      co_return;
    }(order, i));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerTest, RunWithNoTasksReturnsImmediately) {
  Scheduler sched;
  EXPECT_EQ(sched.run(), 0);
}

TEST(SchedulerTest, PropagatesTaskException) {
  Scheduler sched;
  sched.spawn([]() -> SimTask {
    throw std::runtime_error("boom");
    co_return;
  }());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

// Regression: run() rethrows the first task exception while *other* tasks
// are still suspended mid-coroutine.  The scheduler owns every frame, so the
// abandoned coroutines must be reclaimed when it is destroyed (ASan would
// flag the leak) and later spawns/runs must not touch the dead state.
TEST(SchedulerTest, ExceptionWithSuspendedPeersLeaksNothing) {
  Scheduler sched;
  Channel ch(sched);
  bool resumed = false;
  sched.spawn([](Channel& c, bool& r) -> SimTask {
    auto res = co_await c.recv();  // suspends forever: nobody pushes
    (void)res;
    r = true;
  }(ch, resumed));
  sched.spawn([]() -> SimTask {
    throw std::runtime_error("mid-run failure");
    co_return;
  }());
  EXPECT_THROW(sched.run(), std::runtime_error);
  EXPECT_FALSE(resumed);  // the waiter was abandoned, not spuriously resumed
}

// The same property one layer up: a throwing node program leaves the Machine
// consumed (ran() == true, second run refused) with its frames reclaimed.
TEST(SchedulerTest, ThrowingNodeMainLeavesMachineConsumed) {
  Machine machine(cube::Topology{2}, CostModel{});
  EXPECT_THROW(machine.run([](Ctx& ctx) -> SimTask {
                 if (ctx.id() == 1) throw std::runtime_error("node died");
                 // Every other node blocks on a message that never comes.
                 auto r = co_await ctx.recv(ctx.topo().neighbor(ctx.id(), 0));
                 (void)r;
               }),
               std::runtime_error);
  EXPECT_TRUE(machine.ran());
  EXPECT_THROW(machine.run([](Ctx&) -> SimTask { co_return; }),
               std::logic_error);
}

TEST(SchedulerTest, NoWatchdogWhenNothingBlocks) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i)
    sched.spawn([]() -> SimTask { co_return; }());
  EXPECT_EQ(sched.run(), 0);
}

TEST(SchedulerTest, WatchdogBreaksCircularWait) {
  // Two tasks each waiting for the other's message: classic deadlock; the
  // watchdog must fail both receives and let the tasks terminate.
  Scheduler sched;
  Channel a(sched), b(sched);
  int timeouts = 0;
  auto waiter = [](Channel& mine, int& n) -> SimTask {
    auto r = co_await mine.recv();
    if (!r.ok) ++n;
  };
  sched.spawn(waiter(a, timeouts));
  sched.spawn(waiter(b, timeouts));
  EXPECT_GE(sched.run(), 1);
  EXPECT_EQ(timeouts, 2);
}

TEST(SchedulerTest, WorkAfterTimeoutStillRuns) {
  // A task that times out can still communicate afterwards.
  Scheduler sched;
  Channel never(sched), later(sched);
  std::vector<int> got;
  sched.spawn([](Channel& n, Channel& l, std::vector<int>& out) -> SimTask {
    auto r = co_await n.recv();
    if (!r.ok) l.push({});
    auto r2 = co_await l.recv();
    out.push_back(r2.ok ? 1 : 0);
  }(never, later, got));
  sched.run();
  EXPECT_EQ(got, std::vector<int>{1});
}

TEST(SchedulerTest, ManyTasksComplete) {
  Scheduler sched;
  int done = 0;
  for (int i = 0; i < 5000; ++i)
    sched.spawn([](int& d) -> SimTask {
      ++d;
      co_return;
    }(done));
  sched.run();
  EXPECT_EQ(done, 5000);
}

}  // namespace
}  // namespace aoft::sim
