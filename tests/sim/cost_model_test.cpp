#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace aoft::sim {
namespace {

TEST(CostModelTest, MessageCostIsAffineInWords) {
  CostModel cm;
  cm.alpha_send = 8.0;
  cm.beta = 0.5;
  EXPECT_DOUBLE_EQ(cm.msg_cost(0), 8.0);
  EXPECT_DOUBLE_EQ(cm.msg_cost(10), 13.0);
}

TEST(CostModelTest, HostMessageCost) {
  CostModel cm;
  cm.host_alpha = 1.0;
  cm.host_beta = 7.0;
  EXPECT_DOUBLE_EQ(cm.host_msg_cost(4), 29.0);
}

TEST(CostModelTest, DefaultsMatchCalibration) {
  // The calibration constants documented in cost_model.h; the table bench
  // depends on these defaults reproducing the paper's fitted forms.
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.alpha_send, 5.5);
  EXPECT_DOUBLE_EQ(cm.alpha_recv, 5.5);
  EXPECT_DOUBLE_EQ(cm.beta, 0.0207);
  EXPECT_DOUBLE_EQ(cm.merge_entry, 0.62);
  EXPECT_DOUBLE_EQ(cm.host_beta, 7.0);
  EXPECT_DOUBLE_EQ(cm.host_cmp, 0.45);
}

}  // namespace
}  // namespace aoft::sim
