#include "sim/machine.h"

#include <gtest/gtest.h>

namespace aoft::sim {
namespace {

// Each node sends its id to every neighbor and sums what it hears back.
TEST(MachineTest, NeighborExchange) {
  Machine machine(cube::Topology{3}, CostModel{});
  std::vector<long> sums(8, 0);
  machine.run([&sums](Ctx& ctx) -> SimTask {
    for (int k = 0; k < ctx.dim(); ++k) {
      Message m;
      m.kind = MsgKind::kApp;
      m.data = {static_cast<Key>(ctx.id())};
      ctx.send(ctx.topo().neighbor(ctx.id(), k), std::move(m));
    }
    for (int k = 0; k < ctx.dim(); ++k) {
      auto r = co_await ctx.recv(ctx.topo().neighbor(ctx.id(), k));
      EXPECT_TRUE(r.ok);
      ctx.account_recv(r.msg);
      sums[ctx.id()] += static_cast<long>(r.msg.data.at(0));
    }
  });
  for (cube::NodeId p = 0; p < 8; ++p) {
    long expect = 0;
    for (int k = 0; k < 3; ++k) expect += static_cast<long>(p ^ (1u << k));
    EXPECT_EQ(sums[p], expect);
  }
  EXPECT_TRUE(machine.errors().empty());
  EXPECT_EQ(machine.summary().watchdog_rounds, 0);
}

// Machine::run may be called once: reusing the machine would replay against
// consumed channels and dirty scheduler state, so it must hard-fail.
TEST(MachineTest, SecondRunThrows) {
  Machine machine(cube::Topology{2}, CostModel{});
  auto noop = [](Ctx&) -> SimTask { co_return; };
  machine.run(noop);
  EXPECT_THROW(machine.run(noop), std::logic_error);
}

TEST(MachineTest, RunPerNodeAlsoEnforcesRunOnce) {
  Machine machine(cube::Topology{1}, CostModel{});
  std::vector<NodeMain> mains(2, [](Ctx&) -> SimTask { co_return; });
  machine.run_per_node(mains);
  EXPECT_THROW(machine.run_per_node(mains), std::logic_error);
  // A failed re-run leaves the first run's results readable.
  EXPECT_TRUE(machine.errors().empty());
}

TEST(MachineTest, SendChargesSenderByMessageSize) {
  CostModel cm;
  cm.alpha_send = 10.0;
  cm.beta = 2.0;
  Machine machine(cube::Topology{1}, cm);
  machine.run([](Ctx& ctx) -> SimTask {
    if (ctx.id() == 0) {
      Message m;
      m.data = {1, 2, 3};  // 3 words
      ctx.send(1, std::move(m));
    } else {
      auto r = co_await ctx.recv(0);
      EXPECT_TRUE(r.ok);
      ctx.account_recv(r.msg);
    }
  });
  EXPECT_DOUBLE_EQ(machine.node_stats(0).comm_ticks, 10.0 + 3 * 2.0);
  EXPECT_EQ(machine.node_stats(0).msgs_sent, 1u);
  EXPECT_EQ(machine.node_stats(0).words_sent, 3u);
}

TEST(MachineTest, ReceiverClockAdvancesToArrival) {
  CostModel cm;
  cm.alpha_send = 5.0;
  cm.beta = 0.0;
  cm.alpha_recv = 2.0;
  Machine machine(cube::Topology{1}, cm);
  machine.run([](Ctx& ctx) -> SimTask {
    if (ctx.id() == 0) {
      ctx.charge(100.0);  // sender is far ahead in logical time
      ctx.send(1, Message{});
    } else {
      auto r = co_await ctx.recv(0);
      EXPECT_TRUE(r.ok);
      ctx.account_recv(r.msg);
    }
    co_return;
  });
  // Receiver: max(0, 100 + 5) + 2.
  EXPECT_DOUBLE_EQ(machine.node_stats(1).clock, 107.0);
}

TEST(MachineTest, ChargeAccumulatesComputeTicks) {
  Machine machine(cube::Topology{0}, CostModel{});
  machine.run([](Ctx& ctx) -> SimTask {
    ctx.charge(1.5);
    ctx.charge(2.5);
    co_return;
  });
  EXPECT_DOUBLE_EQ(machine.node_stats(0).comp_ticks, 4.0);
  EXPECT_DOUBLE_EQ(machine.node_stats(0).clock, 4.0);
}

TEST(MachineTest, HostGatherScatterRoundTrip) {
  Machine machine(cube::Topology{2}, CostModel{});
  std::vector<Key> got(4, -1);
  machine.run(
      [&got](Ctx& ctx) -> SimTask {
        Message up;
        up.kind = MsgKind::kHostGather;
        up.data = {static_cast<Key>(ctx.id() * 10)};
        ctx.send_host(std::move(up));
        auto r = co_await ctx.recv_host();
        EXPECT_TRUE(r.ok);
        ctx.account_recv(r.msg);
        got[ctx.id()] = r.msg.data.at(0);
      },
      [](HostCtx& host) -> SimTask {
        std::vector<Key> vals(4, 0);
        for (int i = 0; i < 4; ++i) {
          auto r = co_await host.recv();
          EXPECT_TRUE(r.ok);
          host.account_recv(r.msg);
          vals[r.msg.from] = r.msg.data.at(0);
        }
        for (cube::NodeId p = 0; p < 4; ++p) {
          Message down;
          down.kind = MsgKind::kHostScatter;
          down.data = {vals[p] + 1};
          host.send(p, std::move(down));
        }
      });
  EXPECT_EQ(got, (std::vector<Key>{1, 11, 21, 31}));
}

TEST(MachineTest, HostPaysSerialPerWordCost) {
  CostModel cm;
  cm.host_alpha = 1.0;
  cm.host_beta = 7.0;
  Machine machine(cube::Topology{1}, cm);
  machine.run(
      [](Ctx& ctx) -> SimTask {
        Message up;
        up.kind = MsgKind::kHostGather;
        up.data = {1, 2};  // 2 words
        ctx.send_host(std::move(up));
        co_return;
      },
      [](HostCtx& host) -> SimTask {
        for (int i = 0; i < 2; ++i) {
          auto r = co_await host.recv();
          EXPECT_TRUE(r.ok);
          host.account_recv(r.msg);
        }
      });
  EXPECT_DOUBLE_EQ(machine.host_stats().comm_ticks, 2 * (1.0 + 2 * 7.0));
}

// Dropping interceptor: the receiver's watchdog fires and the node reports.
struct DropAll : LinkInterceptor {
  bool on_send(cube::NodeId, cube::NodeId, Message&) override { return false; }
};

TEST(MachineTest, DroppedMessageIsDetectedAsAbsence) {
  DropAll drop;
  Machine machine(cube::Topology{1}, CostModel{});
  machine.set_interceptor(&drop);
  machine.run([](Ctx& ctx) -> SimTask {
    if (ctx.id() == 0) {
      ctx.send(1, Message{});
    } else {
      auto r = co_await ctx.recv(0);
      if (!r.ok)
        ctx.error({0, 0, 0, ErrorSource::kTimeout, "absent"});
    }
    co_return;
  });
  ASSERT_EQ(machine.errors().size(), 1u);
  EXPECT_EQ(machine.errors()[0].node, 1u);
  EXPECT_EQ(machine.errors()[0].source, ErrorSource::kTimeout);
  EXPECT_TRUE(machine.failed_stop());
  EXPECT_GE(machine.summary().watchdog_rounds, 1);
}

// Mutating interceptor: payload is changed in flight.
struct AddOne : LinkInterceptor {
  bool on_send(cube::NodeId, cube::NodeId, Message& m) override {
    for (auto& k : m.data) k += 1;
    return true;
  }
};

TEST(MachineTest, InterceptorCanMutatePayload) {
  AddOne bump;
  Machine machine(cube::Topology{1}, CostModel{});
  machine.set_interceptor(&bump);
  std::vector<Key> got(2, 0);
  machine.run([&got](Ctx& ctx) -> SimTask {
    if (ctx.id() == 0) {
      Message m;
      m.data = {41};
      ctx.send(1, std::move(m));
    } else {
      auto r = co_await ctx.recv(0);
      EXPECT_TRUE(r.ok);
      got[1] = r.msg.data.at(0);
    }
    co_return;
  });
  EXPECT_EQ(got[1], 42);
}

// Host-link traffic must flow through the same recording path as node-node
// traffic: a gather/scatter round shows up in link_events() with the host
// flags set.  (Regression: send_host/HostCtx::send used to push straight into
// the channels, so the event log silently missed every host message.)
TEST(MachineTest, HostLinkEventsAreRecorded) {
  Machine machine(cube::Topology{1}, CostModel{});
  machine.record_link_events(true);
  machine.run(
      [](Ctx& ctx) -> SimTask {
        Message up;
        up.kind = MsgKind::kHostGather;
        up.data = {static_cast<Key>(ctx.id()), 0, 0};  // 3 words
        ctx.send_host(std::move(up));
        auto r = co_await ctx.recv_host();
        EXPECT_TRUE(r.ok);
      },
      [](HostCtx& host) -> SimTask {
        for (int i = 0; i < 2; ++i) {
          auto r = co_await host.recv();
          EXPECT_TRUE(r.ok);
          host.account_recv(r.msg);
        }
        for (cube::NodeId p = 0; p < 2; ++p) {
          Message down;
          down.kind = MsgKind::kHostScatter;
          down.data = {7};
          host.send(p, std::move(down));
        }
      });
  std::size_t uploads = 0, downloads = 0;
  for (const auto& e : machine.link_events()) {
    EXPECT_TRUE(e.delivered);  // host links never drop
    if (e.to_host) {
      ++uploads;
      EXPECT_EQ(e.kind, MsgKind::kHostGather);
      EXPECT_EQ(e.words, 3u);
    }
    if (e.from_host) {
      ++downloads;
      EXPECT_EQ(e.kind, MsgKind::kHostScatter);
      EXPECT_EQ(e.words, 1u);
    }
    EXPECT_FALSE(e.to_host && e.from_host);
  }
  EXPECT_EQ(uploads, 2u);
  EXPECT_EQ(downloads, 2u);
}

// The "links join neighbors only" invariant must hold in every build mode:
// a protocol bug that picks a non-adjacent partner has to fail loudly, not
// silently corrupt a release-mode campaign.
TEST(MachineTest, SendToNonNeighborThrows) {
  Machine machine(cube::Topology{2}, CostModel{});
  EXPECT_THROW(machine.run([](Ctx& ctx) -> SimTask {
                 if (ctx.id() == 0) ctx.send(3, Message{});  // 0 and 3 differ in 2 bits
                 co_return;
               }),
               std::logic_error);
  EXPECT_TRUE(machine.ran());  // consumed: a re-run must still be refused
}

TEST(MachineTest, RecvFromNonNeighborThrows) {
  Machine machine(cube::Topology{2}, CostModel{});
  EXPECT_THROW(machine.run([](Ctx& ctx) -> SimTask {
                 if (ctx.id() == 0) {
                   auto r = co_await ctx.recv(3);
                   (void)r;
                 }
                 co_return;
               }),
               std::logic_error);
}

TEST(MachineTest, LinkEventsRecordTraffic) {
  Machine machine(cube::Topology{1}, CostModel{});
  machine.record_link_events(true);
  machine.run([](Ctx& ctx) -> SimTask {
    if (ctx.id() == 0) {
      Message m;
      m.stage = 2;
      m.iter = 1;
      m.data = {1, 2, 3};
      ctx.send(1, std::move(m));
    } else {
      auto r = co_await ctx.recv(0);
      (void)r;
    }
    co_return;
  });
  ASSERT_EQ(machine.link_events().size(), 1u);
  const auto& e = machine.link_events()[0];
  EXPECT_EQ(e.from, 0u);
  EXPECT_EQ(e.to, 1u);
  EXPECT_EQ(e.stage, 2);
  EXPECT_EQ(e.iter, 1);
  EXPECT_EQ(e.words, 3u);
  EXPECT_TRUE(e.delivered);
}

TEST(MachineTest, SummaryAggregates) {
  Machine machine(cube::Topology{2}, CostModel{});
  machine.run([](Ctx& ctx) -> SimTask {
    ctx.charge(static_cast<double>(ctx.id()));
    co_return;
  });
  const auto s = machine.summary();
  EXPECT_DOUBLE_EQ(s.max_comp, 3.0);
  EXPECT_DOUBLE_EQ(s.elapsed, 3.0);
  EXPECT_EQ(s.total_msgs, 0u);
}

TEST(MachineTest, RunTwiceIsAnError) {
  Machine machine(cube::Topology{0}, CostModel{});
  auto noop = [](Ctx&) -> SimTask { co_return; };
  machine.run(noop);
  EXPECT_THROW(machine.run(noop), std::logic_error);
}

TEST(MachineTest, ErrorNotifiesHostInbox) {
  Machine machine(cube::Topology{0}, CostModel{});
  int host_heard = 0;
  machine.run(
      [](Ctx& ctx) -> SimTask {
        ctx.error({0, 3, 1, ErrorSource::kPhiP, "test"});
        co_return;
      },
      [&host_heard](HostCtx& host) -> SimTask {
        auto r = co_await host.recv();
        if (r.ok && r.msg.kind == MsgKind::kHostError) ++host_heard;
      });
  EXPECT_EQ(host_heard, 1);
  ASSERT_EQ(machine.errors().size(), 1u);
  EXPECT_EQ(machine.errors()[0].stage, 3);
}

// --- reuse contract ----------------------------------------------------------
// Machine::reset() re-arms the single-shot run() and must leave the machine
// observably identical to a freshly constructed one: same summary, same
// errors, same link-event log on the next run.

// A small program with real traffic, errors and charges, so reset has
// something nontrivial to clear.
SimTask ping_ring(Ctx& ctx) {
  Message m;
  m.kind = MsgKind::kApp;
  m.stage = 1;
  m.data = {static_cast<Key>(ctx.id()), 42};
  ctx.send(ctx.topo().neighbor(ctx.id(), 0), std::move(m));
  auto r = co_await ctx.recv(ctx.topo().neighbor(ctx.id(), 0));
  EXPECT_TRUE(r.ok);
  ctx.account_recv(r.msg);
  ctx.charge(static_cast<double>(ctx.id()) + 1.0);
  if (ctx.id() == 2) ctx.error({2, 1, 0, ErrorSource::kPhiP, "synthetic"});
}

TEST(MachineTest, ResetReArmsRun) {
  Machine machine(cube::Topology{2}, CostModel{});
  machine.run(ping_ring);
  EXPECT_TRUE(machine.ran());
  machine.reset();
  EXPECT_FALSE(machine.ran());
  machine.run(ping_ring);  // must not throw
  EXPECT_TRUE(machine.ran());
}

TEST(MachineTest, ResetMachineRunsIdenticallyToFresh) {
  Machine fresh(cube::Topology{2}, CostModel{});
  fresh.record_link_events(true);
  fresh.run(ping_ring);

  Machine reused(cube::Topology{2}, CostModel{});
  reused.run(ping_ring);  // dirty it first (events off: reset must restore)
  reused.reset();
  reused.record_link_events(true);
  reused.run(ping_ring);

  EXPECT_DOUBLE_EQ(reused.summary().elapsed, fresh.summary().elapsed);
  EXPECT_DOUBLE_EQ(reused.summary().max_comm, fresh.summary().max_comm);
  EXPECT_DOUBLE_EQ(reused.summary().max_comp, fresh.summary().max_comp);
  EXPECT_EQ(reused.summary().total_msgs, fresh.summary().total_msgs);
  EXPECT_EQ(reused.summary().total_words, fresh.summary().total_words);
  EXPECT_EQ(reused.summary().watchdog_rounds, fresh.summary().watchdog_rounds);

  ASSERT_EQ(reused.errors().size(), fresh.errors().size());
  for (std::size_t i = 0; i < fresh.errors().size(); ++i) {
    EXPECT_EQ(reused.errors()[i].node, fresh.errors()[i].node);
    EXPECT_EQ(reused.errors()[i].stage, fresh.errors()[i].stage);
    EXPECT_EQ(reused.errors()[i].source, fresh.errors()[i].source);
  }

  ASSERT_EQ(reused.link_events().size(), fresh.link_events().size());
  for (std::size_t i = 0; i < fresh.link_events().size(); ++i) {
    const auto& a = reused.link_events()[i];
    const auto& b = fresh.link_events()[i];
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.stage, b.stage);
    EXPECT_EQ(a.words, b.words);
    EXPECT_EQ(a.delivered, b.delivered);
  }
}

TEST(MachineTest, ResetClearsInterceptorAndEventLog) {
  Machine machine(cube::Topology{1}, CostModel{});
  machine.record_link_events(true);
  machine.run(ping_ring);
  EXPECT_FALSE(machine.link_events().empty());
  machine.reset();
  EXPECT_TRUE(machine.link_events().empty());
  EXPECT_TRUE(machine.errors().empty());
  // Event recording is off again (fresh-machine default): a run after reset
  // records nothing unless re-enabled.
  machine.run(ping_ring);
  EXPECT_TRUE(machine.link_events().empty());
}

TEST(MachineTest, ResetCanSwapCostModel) {
  CostModel expensive;
  expensive.alpha_send = 100.0;
  Machine machine(cube::Topology{1}, CostModel{});
  machine.run(ping_ring);
  const double cheap_comm = machine.summary().max_comm;
  machine.reset(expensive);
  machine.run(ping_ring);
  // The second run is priced under the new model, as if freshly constructed.
  Machine fresh(cube::Topology{1}, expensive);
  fresh.run(ping_ring);
  EXPECT_DOUBLE_EQ(machine.summary().max_comm, fresh.summary().max_comm);
  EXPECT_GT(machine.summary().max_comm, cheap_comm);
}

TEST(MachineTest, ResetAfterFailedRunRecovers) {
  Machine machine(cube::Topology{2}, CostModel{});
  EXPECT_THROW(machine.run([](Ctx& ctx) -> SimTask {
                 if (ctx.id() == 0) ctx.send(3, Message{});
                 co_return;
               }),
               std::logic_error);
  machine.reset();
  machine.run(ping_ring);  // the machine is fully usable again
  EXPECT_EQ(machine.errors().size(), 1u);
}

}  // namespace
}  // namespace aoft::sim
