#include "sim/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/scheduler.h"

namespace aoft::sim {
namespace {

Message msg_with_tag(int tag) {
  Message m;
  m.tag = tag;
  return m;
}

TEST(ChannelTest, RecvAfterPushCompletesImmediately) {
  Scheduler sched;
  Channel ch(sched);
  ch.push(msg_with_tag(7));
  std::vector<int> got;
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    auto r = co_await c.recv();
    EXPECT_TRUE(r.ok);
    out.push_back(r.msg.tag);
  }(ch, got));
  sched.run();
  EXPECT_EQ(got, std::vector<int>{7});
}

TEST(ChannelTest, RecvBeforePushSuspendsAndResumes) {
  Scheduler sched;
  Channel ch(sched);
  std::vector<int> order;
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    out.push_back(1);
    auto r = co_await c.recv();
    EXPECT_TRUE(r.ok);
    out.push_back(r.msg.tag);
  }(ch, order));
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    out.push_back(2);
    c.push(msg_with_tag(3));
    co_return;
  }(ch, order));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ChannelTest, MessagesAreFifo) {
  Scheduler sched;
  Channel ch(sched);
  for (int i = 0; i < 5; ++i) ch.push(msg_with_tag(i));
  std::vector<int> got;
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    for (int i = 0; i < 5; ++i) {
      auto r = co_await c.recv();
      EXPECT_TRUE(r.ok);
      out.push_back(r.msg.tag);
    }
  }(ch, got));
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, ManySendersOneReceiver) {
  Scheduler sched;
  Channel ch(sched);
  std::vector<int> got;
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    for (int i = 0; i < 3; ++i) {
      auto r = co_await c.recv();
      EXPECT_TRUE(r.ok);
      out.push_back(r.msg.tag);
    }
  }(ch, got));
  for (int i = 0; i < 3; ++i)
    sched.spawn([](Channel& c, int tag) -> SimTask {
      c.push(msg_with_tag(tag));
      co_return;
    }(ch, 10 + i));
  sched.run();
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12}));  // spawn order is FIFO
}

TEST(ChannelTest, WatchdogFailsWaiter) {
  Scheduler sched;
  Channel ch(sched);
  bool ok = true;
  int after = 0;
  sched.spawn([](Channel& c, bool& okflag, int& cont) -> SimTask {
    auto r = co_await c.recv();
    okflag = r.ok;
    cont = 1;  // the coroutine resumes and finishes after the timeout
  }(ch, ok, after));
  const int watchdog_rounds = sched.run();
  EXPECT_EQ(watchdog_rounds, 1);
  EXPECT_FALSE(ok);
  EXPECT_EQ(after, 1);
}

// One receiver per channel at a time — always-on, not just a debug assert: a
// second concurrent recv() would corrupt the waiter slot and hang or misroute
// messages in release builds.  The violation must surface at the offending
// co_await and leave the first receiver's suspension intact.
TEST(ChannelTest, SecondConcurrentReceiverThrows) {
  Scheduler sched;
  Channel ch(sched);
  bool first_done = false;
  sched.spawn([](Channel& c, bool& done) -> SimTask {
    auto r = co_await c.recv();  // suspends; later failed by the watchdog
    EXPECT_FALSE(r.ok);
    done = true;
  }(ch, first_done));
  sched.spawn([](Channel& c) -> SimTask {
    auto r = co_await c.recv();  // the channel is already being waited on
    (void)r;
  }(ch));
  EXPECT_THROW(sched.run(), std::logic_error);
  // The first receiver is still suspended (the run aborted); its frame is
  // reclaimed by the scheduler, so nothing leaks under ASan.
  EXPECT_FALSE(first_done);
}

// Sequential receives on one channel remain legal: the restriction is on
// *concurrent* waiters only.
TEST(ChannelTest, SequentialReceivesOnOneChannelAreFine) {
  Scheduler sched;
  Channel ch(sched);
  ch.push(msg_with_tag(1));
  ch.push(msg_with_tag(2));
  std::vector<int> got;
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    for (int i = 0; i < 2; ++i) {
      auto r = co_await c.recv();
      EXPECT_TRUE(r.ok);
      out.push_back(r.msg.tag);
    }
  }(ch, got));
  EXPECT_NO_THROW(sched.run());
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, HasMessage) {
  Scheduler sched;
  Channel ch(sched);
  EXPECT_FALSE(ch.has_message());
  ch.push({});
  EXPECT_TRUE(ch.has_message());
}

// A resume with an empty queue and no timeout means a scheduler bug woke the
// waiter spuriously.  That check must survive release builds (the campaigns
// run -O2 with NDEBUG), so it is a logic_error, not an assert — covered by
// the release-invariants CI job.
TEST(ChannelTest, ResumeWithEmptyQueueThrows) {
  Scheduler sched;
  Channel ch(sched);
  auto awaiter = ch.recv();
  EXPECT_FALSE(awaiter.await_ready());
  EXPECT_THROW(awaiter.await_resume(), std::logic_error);
}

TEST(ChannelTest, ResetClearsQueueAndTimeoutFlag) {
  Scheduler sched;
  Channel ch(sched);
  ch.push(msg_with_tag(1));
  ch.push(msg_with_tag(2));
  ch.reset();
  EXPECT_FALSE(ch.has_message());
  // The channel behaves exactly like a fresh one afterwards.
  ch.push(msg_with_tag(9));
  std::vector<int> got;
  sched.spawn([](Channel& c, std::vector<int>& out) -> SimTask {
    auto r = co_await c.recv();
    EXPECT_TRUE(r.ok);
    out.push_back(r.msg.tag);
  }(ch, got));
  sched.run();
  EXPECT_EQ(got, std::vector<int>{9});
}

}  // namespace
}  // namespace aoft::sim
