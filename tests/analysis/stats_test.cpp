#include "analysis/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace aoft::analysis {
namespace {

TEST(StatsTest, EmptySample) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(StatsTest, SingleValue) {
  const std::vector<double> xs{4.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(StatsTest, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // the classic example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(StatsTest, PercentilesNearestRank) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 10), 1.0);
}

TEST(StatsTest, PercentileIgnoresInputOrder) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

}  // namespace
}  // namespace aoft::analysis
