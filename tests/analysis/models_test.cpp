#include "analysis/models.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aoft::analysis {
namespace {

TEST(ModelsTest, BasisFunctionValues) {
  EXPECT_DOUBLE_EQ(basis_const().fn(1024), 1.0);
  EXPECT_DOUBLE_EQ(basis_n().fn(1024), 1024.0);
  EXPECT_DOUBLE_EQ(basis_log2n().fn(1024), 10.0);
  EXPECT_DOUBLE_EQ(basis_log2sq().fn(1024), 100.0);
  EXPECT_DOUBLE_EQ(basis_nlog2n().fn(1024), 10240.0);
}

TEST(ModelsTest, PaperFormBases) {
  EXPECT_EQ(sft_comm_basis().size(), 2u);
  EXPECT_EQ(sft_comp_basis().size(), 1u);
  EXPECT_EQ(seq_comm_basis().size(), 1u);
  EXPECT_EQ(seq_comp_basis().size(), 1u);
}

// Build a TimeModel directly from known coefficients.
TimeModel model(double comm_logsq, double comm_nlogn, double comp_n,
                bool sft_shape) {
  TimeModel m;
  if (sft_shape) {
    m.comm_basis = sft_comm_basis();
    m.comm.coeffs = {comm_logsq, comm_nlogn};
    m.comp_basis = sft_comp_basis();
    m.comp.coeffs = {comp_n};
  } else {
    m.comm_basis = seq_comm_basis();
    m.comm.coeffs = {comm_logsq};  // reused as the N coefficient
    m.comp_basis = seq_comp_basis();
    m.comp.coeffs = {comm_nlogn};  // reused as the N·log N coefficient
  }
  return m;
}

TEST(ModelsTest, TotalSumsComponents) {
  const auto m = model(8.0, 0.05, 11.5, true);
  const double n = 1024.0;
  EXPECT_DOUBLE_EQ(m.total(n), 8.0 * 100 + 0.05 * 10240 + 11.5 * 1024);
}

TEST(ModelsTest, PaperConstantsCrossOver) {
  // With the paper's own constants, S_FT (8log²N + .05NlogN + 11.5N) must
  // overtake the host sort (14N + .45NlogN) at some realistic cube size.
  const auto sft = model(8.0, 0.05, 11.5, true);
  const auto seq = model(14.0, 0.45, 0.0, false);
  const auto cross = crossover_nodes(sft, seq, 1, 24);
  EXPECT_GT(cross, 16ULL) << "host wins at the sizes of Figure 6";
  EXPECT_LE(cross, 1ULL << 12) << "S_FT wins well within Figure 7's range";
}

TEST(ModelsTest, PaperConstantsLimitRatioIsElevenPercent) {
  // The paper: "in the limit ... the cost of reliable parallel sorting
  // becomes 11% the cost of sequential sorting" — that is 0.05/0.45, the
  // ratio of the two N·log2 N coefficients.
  const auto sft = model(8.0, 0.05, 11.5, true);
  const auto seq = model(14.0, 0.45, 0.0, false);
  EXPECT_NEAR(asymptotic_ratio(sft, seq), 0.05 / 0.45, 1e-12);
  // At finite sizes the ratio is still approaching the limit from above.
  EXPECT_GT(limit_ratio(sft, seq, 40), 0.05 / 0.45);
  EXPECT_LT(limit_ratio(sft, seq, 40), 0.5);
}

TEST(ModelsTest, NoCrossoverReturnsZero) {
  const auto fast = model(1.0, 0.0, 0.0, false);   // 1·N total
  const auto slow = model(2.0, 0.0, 0.0, false);   // 2·N total
  EXPECT_EQ(crossover_nodes(slow, fast, 1, 20), 0ULL);
  EXPECT_EQ(crossover_nodes(fast, slow, 1, 20), 2ULL);
}

}  // namespace
}  // namespace aoft::analysis
