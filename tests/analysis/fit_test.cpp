#include "analysis/fit.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aoft::analysis {
namespace {

TEST(SolveLinearTest, SolvesKnownSystem) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  const auto x = solve_linear({2, 1, 1, -1}, {5, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearTest, NeedsPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear({0, 1, 1, 0}, {3, 4});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearTest, SingularThrows) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 2}), std::runtime_error);
}

TEST(SolveLinearTest, OneByOne) {
  const auto x = solve_linear({4}, {8});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(FitTest, RecoversExactCoefficients) {
  // y = 8·log2²N + 0.05·N·log2 N, sampled at powers of two — the paper's
  // S_FT communication form.
  std::vector<Basis> basis{
      {"log2²N", [](double n) { const double l = std::log2(n); return l * l; }},
      {"N·log2 N", [](double n) { return n * std::log2(n); }}};
  std::vector<double> xs, ys;
  for (int d = 2; d <= 10; ++d) {
    const double n = std::ldexp(1.0, d);
    xs.push_back(n);
    ys.push_back(8.0 * d * d + 0.05 * n * d);
  }
  const auto r = fit(basis, xs, ys);
  EXPECT_NEAR(r.coeffs[0], 8.0, 1e-9);
  EXPECT_NEAR(r.coeffs[1], 0.05, 1e-12);
  EXPECT_NEAR(r.rms_residual, 0.0, 1e-9);
  EXPECT_NEAR(r.r_squared, 1.0, 1e-12);
}

TEST(FitTest, LeastSquaresOnNoisyData) {
  std::vector<Basis> basis{{"N", [](double n) { return n; }}};
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2.1, 3.9, 6.1, 7.9};  // ~ 2N
  const auto r = fit(basis, xs, ys);
  EXPECT_NEAR(r.coeffs[0], 2.0, 0.05);
  EXPECT_GT(r.r_squared, 0.99);
  EXPECT_GT(r.rms_residual, 0.0);
}

TEST(FitTest, EvalMatchesModel) {
  std::vector<Basis> basis{{"1", [](double) { return 1.0; }},
                           {"N", [](double n) { return n; }}};
  const std::vector<double> xs{0, 1, 2};
  const std::vector<double> ys{1, 3, 5};  // 1 + 2N
  const auto r = fit(basis, xs, ys);
  EXPECT_NEAR(r.eval(basis, 10.0), 21.0, 1e-9);
}

TEST(FitTest, ToStringNamesTerms) {
  std::vector<Basis> basis{{"N", [](double n) { return n; }}};
  FitResult r;
  r.coeffs = {2.5};
  const auto s = r.to_string(basis);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("N"), std::string::npos);
}

}  // namespace
}  // namespace aoft::analysis
