// Exact communication-structure tests for S_FT: the paper's efficiency claim
// is not just asymptotic — the message *schedule* is S_NR's schedule plus
// one final round, and the piggybacked volume follows a closed form.

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

std::uint64_t expected_msgs(int dim) {
  // Per iteration (i, j): every node sends exactly one message; iterations
  // n(n+1)/2 in the main loop plus n in the final round.
  const std::uint64_t n = static_cast<std::uint64_t>(dim);
  return (std::uint64_t{1} << dim) * (n * (n + 1) / 2 + n);
}

std::uint64_t expected_words(int dim, std::uint64_t m) {
  // Main loop, iteration (i, j): the passive node sends m data words, the
  // active one 2m; both send the window slice of 2^{i+1} blocks.  The final
  // round sends the whole cube's slice, no data.
  const std::uint64_t nodes = std::uint64_t{1} << dim;
  std::uint64_t words = 0;
  for (int i = 0; i < dim; ++i)
    for (int j = 0; j <= i; ++j) {
      const std::uint64_t slice = (std::uint64_t{1} << (i + 1)) * m;
      words += (nodes / 2) * (m + slice) + (nodes / 2) * (2 * m + slice);
    }
  words += nodes * static_cast<std::uint64_t>(dim) * nodes * m;
  return words;
}

TEST(SftStatsTest, MessageCountMatchesClosedForm) {
  for (int dim : {1, 2, 3, 4, 5, 6}) {
    auto input = util::random_keys(4, std::size_t{1} << dim);
    const auto run = run_sft(dim, input);
    EXPECT_EQ(run.summary.total_msgs, expected_msgs(dim)) << "dim=" << dim;
  }
}

TEST(SftStatsTest, WordVolumeMatchesClosedForm) {
  for (int dim : {2, 3, 4, 5}) {
    auto input = util::random_keys(5, std::size_t{1} << dim);
    const auto run = run_sft(dim, input);
    EXPECT_EQ(run.summary.total_words, expected_words(dim, 1)) << "dim=" << dim;
  }
}

TEST(SftStatsTest, WordVolumeScalesByBlockSize) {
  const int dim = 4;
  for (std::uint64_t m : {2ULL, 4ULL}) {
    SftOptions opts;
    opts.block = m;
    auto input = util::random_keys(6, (std::size_t{1} << dim) * m);
    const auto run = run_sft(dim, input, opts);
    EXPECT_EQ(run.summary.total_words, expected_words(dim, m)) << "m=" << m;
  }
}

TEST(SftStatsTest, VolumeIsThetaNLogNPerNode) {
  // Per-node word volume ~ 3·N·log2 N for m = 1 (2·N·logN main loop slices
  // + N·logN final round), within a factor accounting for the data words.
  const int dim = 8;
  const double n = 256.0;
  auto input = util::random_keys(7, 256);
  const auto run = run_sft(dim, input);
  const double per_node = static_cast<double>(run.summary.total_words) / n;
  const double nlogn = n * dim;
  EXPECT_GT(per_node, 2.0 * nlogn);
  EXPECT_LT(per_node, 3.5 * nlogn);
}

TEST(SftStatsTest, ComputationScalesLinearly) {
  // Thm 4: S_FT computes in O(N) per node; doubling the cube should roughly
  // double max_comp, not quadruple it.
  auto comp = [](int dim) {
    auto input = util::random_keys(8, std::size_t{1} << dim);
    return run_sft(dim, input).summary.max_comp;
  };
  const double c7 = comp(7), c9 = comp(9);
  EXPECT_NEAR(c9 / c7, 4.0, 1.0);  // 4x nodes -> ~4x per-node computation
}

TEST(SftStatsTest, DeterministicAcrossRuns) {
  auto input = util::random_keys(9, 64);
  const auto a = run_sft(6, input);
  const auto b = run_sft(6, input);
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.summary.elapsed, b.summary.elapsed);
  EXPECT_EQ(a.summary.total_msgs, b.summary.total_msgs);
  EXPECT_EQ(a.summary.total_words, b.summary.total_words);
}

TEST(SftStatsTest, AblationTogglesReduceComputationNotTraffic) {
  // Disabling the checks must not change the message schedule (the gossip
  // still rides along) but strictly reduces charged computation.
  auto input = util::random_keys(10, 64);
  SftOptions all_on;
  SftOptions all_off;
  all_off.check_progress = all_off.check_feasibility = false;
  all_off.check_consistency = all_off.check_exchange = false;
  const auto on = run_sft(6, input, all_on);
  const auto off = run_sft(6, input, all_off);
  EXPECT_EQ(on.summary.total_msgs, off.summary.total_msgs);
  EXPECT_EQ(on.summary.total_words, off.summary.total_words);
  EXPECT_GT(on.summary.max_comp, off.summary.max_comp);
  EXPECT_EQ(on.output, off.output);
}

}  // namespace
}  // namespace aoft::sort
