// Host-based baselines: correctness, cost-shape and centralized detection.

#include "sort/sequential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace aoft::sort {
namespace {

std::vector<Key> sorted_copy(std::span<const Key> v) {
  std::vector<Key> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  return s;
}

TEST(HostSortTest, SortsAllDimensions) {
  for (int dim = 0; dim <= 7; ++dim) {
    auto input = util::random_keys(200 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    auto run = run_host_sort(dim, input);
    EXPECT_EQ(run.output, sorted_copy(input)) << "dim=" << dim;
    EXPECT_TRUE(run.errors.empty());
  }
}

TEST(HostSortTest, SortsBlocks) {
  HostSortOptions opts;
  opts.block = 8;
  auto input = util::random_keys(3, 32 * 8);
  auto run = run_host_sort(5, input, opts);
  EXPECT_EQ(run.output, sorted_copy(input));
}

TEST(HostSortTest, HostCommunicationIsLinearInN) {
  // The paper's sequential comm component ~ 14N: gather + scatter of one
  // word per node through the serial host link.
  auto comm = [](int dim) {
    auto input = util::random_keys(7, std::size_t{1} << dim);
    return run_host_sort(dim, input).summary.host_comm;
  };
  const double c5 = comm(5), c7 = comm(7);
  EXPECT_NEAR(c7 / c5, 4.0, 0.3);  // 4x nodes -> ~4x host communication
  // Absolute scale: 2 messages per node, each 1 + host_beta·1 = 8 ticks.
  EXPECT_NEAR(c5, 32 * 2 * 8.0, 1.0);
}

TEST(HostSortTest, HostComputationIsNLogN) {
  auto comp = [](int dim) {
    auto input = util::random_keys(7, std::size_t{1} << dim);
    return run_host_sort(dim, input).summary.host_comp;
  };
  // 0.45 · N · log2 N exactly, by construction.
  EXPECT_DOUBLE_EQ(comp(5), 0.45 * 32 * 5);
  EXPECT_DOUBLE_EQ(comp(8), 0.45 * 256 * 8);
}

TEST(HostVerifyTest, AcceptsFaultFreeRun) {
  for (int dim : {2, 4, 6}) {
    auto input = util::random_keys(300 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    auto run = run_host_verified_snr(dim, input);
    EXPECT_EQ(run.output, sorted_copy(input)) << "dim=" << dim;
    EXPECT_TRUE(run.errors.empty()) << "dim=" << dim;
  }
}

TEST(HostVerifyTest, DetectsCorruptedOutputAtTermination) {
  // The same inverted-direction fault S_NR alone silently accepts is caught
  // by the host's Theorem-1 assertion — but only after the sort completed.
  auto input = util::random_keys(23, 16);
  HostVerifyOptions opts;
  opts.node_faults[5].invert_direction_from = fault::StagePoint{1, 1};
  auto run = run_host_verified_snr(4, input, opts);
  EXPECT_EQ(classify(run, input), Outcome::kFailStop);
  ASSERT_FALSE(run.errors.empty());
  EXPECT_EQ(run.errors.front().source, sim::ErrorSource::kApp);
}

TEST(HostVerifyTest, DetectsHaltedNode) {
  auto input = util::random_keys(29, 16);
  HostVerifyOptions opts;
  opts.node_faults[3].halt_at = fault::StagePoint{1, 0};
  auto run = run_host_verified_snr(4, input, opts);
  EXPECT_EQ(classify(run, input), Outcome::kFailStop);
}

TEST(HostVerifyTest, CostsMoreThanPlainHostSort) {
  // Verification uploads the data twice (raw and sorted) where the plain
  // host sort moves it up once and down once; on top of that it runs the
  // whole parallel sort first, so it finishes strictly later.
  auto input = util::random_keys(31, 64);
  const auto verified = run_host_verified_snr(6, input);
  const auto plain = run_host_sort(6, input);
  EXPECT_GT(verified.summary.host_comm, plain.summary.host_comm);
  EXPECT_GT(verified.summary.elapsed, plain.summary.elapsed);
}

}  // namespace
}  // namespace aoft::sort
