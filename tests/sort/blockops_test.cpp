#include "sort/blockops.h"

#include <gtest/gtest.h>

namespace aoft::sort::blockops {
namespace {

// Local convenience over the scratch-based API — production code keeps its
// pooled scratch; only the tests want a fresh vector per call.
std::vector<Key> merged(std::span<const Key> a, std::span<const Key> b,
                        bool ascending) {
  std::vector<Key> out(a.size() + b.size());
  merge_dir_into(a, b, ascending, out);
  return out;
}

TEST(BlockOpsTest, SortDirAscending) {
  std::vector<Key> b{3, 1, 2};
  sort_dir(b, true);
  EXPECT_EQ(b, (std::vector<Key>{1, 2, 3}));
}

TEST(BlockOpsTest, SortDirDescending) {
  std::vector<Key> b{3, 1, 2};
  sort_dir(b, false);
  EXPECT_EQ(b, (std::vector<Key>{3, 2, 1}));
}

TEST(BlockOpsTest, IsSortedDir) {
  EXPECT_TRUE(is_sorted_dir(std::vector<Key>{1, 2, 2, 3}, true));
  EXPECT_FALSE(is_sorted_dir(std::vector<Key>{1, 2, 2, 3}, false));
  EXPECT_TRUE(is_sorted_dir(std::vector<Key>{3, 2, 2, 1}, false));
  EXPECT_TRUE(is_sorted_dir(std::vector<Key>{7}, true));
  EXPECT_TRUE(is_sorted_dir(std::vector<Key>{}, false));
}

TEST(BlockOpsTest, ReverseFlipsDirection) {
  std::vector<Key> b{1, 2, 3};
  reverse_block(b);
  EXPECT_TRUE(is_sorted_dir(b, false));
}

TEST(BlockOpsTest, MergeAscending) {
  const std::vector<Key> a{1, 4, 6}, b{2, 3, 7};
  EXPECT_EQ(merged(a, b, true), (std::vector<Key>{1, 2, 3, 4, 6, 7}));
}

TEST(BlockOpsTest, MergeDescending) {
  const std::vector<Key> a{6, 4, 1}, b{7, 3, 2};
  EXPECT_EQ(merged(a, b, false), (std::vector<Key>{7, 6, 4, 3, 2, 1}));
}

TEST(BlockOpsTest, MergeWithDuplicates) {
  const std::vector<Key> a{2, 2}, b{2, 5};
  EXPECT_EQ(merged(a, b, true), (std::vector<Key>{2, 2, 2, 5}));
}

TEST(BlockOpsTest, SubMultisetPositive) {
  const std::vector<Key> super{1, 2, 2, 5, 9};
  EXPECT_TRUE(contains_submultiset(super, std::vector<Key>{2, 5}, true));
  EXPECT_TRUE(contains_submultiset(super, std::vector<Key>{2, 2}, true));
  EXPECT_TRUE(contains_submultiset(super, std::vector<Key>{}, true));
}

TEST(BlockOpsTest, SubMultisetRespectsMultiplicity) {
  const std::vector<Key> super{1, 2, 5};
  EXPECT_FALSE(contains_submultiset(super, std::vector<Key>{2, 2}, true));
}

TEST(BlockOpsTest, SubMultisetDescending) {
  const std::vector<Key> super{9, 5, 2, 1};
  EXPECT_TRUE(contains_submultiset(super, std::vector<Key>{9, 1}, false));
  EXPECT_FALSE(contains_submultiset(super, std::vector<Key>{9, 3}, false));
}

}  // namespace
}  // namespace aoft::sort::blockops
