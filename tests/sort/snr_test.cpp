// S_NR baseline: sorts correctly when fault-free, has the textbook message
// complexity, and silently corrupts under faults (its raison d'être here).

#include "sort/snr.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace aoft::sort {
namespace {

std::vector<Key> sorted_copy(std::span<const Key> v) {
  std::vector<Key> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  return s;
}

TEST(SnrTest, SortsAllDimensions) {
  for (int dim = 0; dim <= 8; ++dim) {
    auto input = util::random_keys(100 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    auto run = run_snr(dim, input);
    EXPECT_EQ(run.output, sorted_copy(input)) << "dim=" << dim;
    EXPECT_TRUE(run.errors.empty());
  }
}

TEST(SnrTest, SortsDuplicates) {
  auto input = util::random_keys_small_alphabet(5, 128, 3);
  auto run = run_snr(7, input);
  EXPECT_EQ(run.output, sorted_copy(input));
}

TEST(SnrTest, SortsBlocks) {
  for (std::size_t m : {2u, 7u, 32u}) {
    SnrOptions opts;
    opts.block = m;
    auto input = util::random_keys(m * 31, 16 * m);
    auto run = run_snr(4, input, opts);
    EXPECT_EQ(run.output, sorted_copy(input)) << "m=" << m;
  }
}

TEST(SnrTest, MessageCountMatchesTheSchedule) {
  // Each of the n(n+1)/2 iterations exchanges one message each way per pair:
  // N messages per iteration in total.
  for (int dim : {2, 3, 4, 5}) {
    auto input = util::random_keys(9, std::size_t{1} << dim);
    auto run = run_snr(dim, input);
    const std::uint64_t n = static_cast<std::uint64_t>(dim);
    const std::uint64_t expected = (std::uint64_t{1} << dim) * n * (n + 1) / 2;
    EXPECT_EQ(run.summary.total_msgs, expected) << "dim=" << dim;
  }
}

TEST(SnrTest, RunTimeGrowsAsLogSquared) {
  // Elapsed simulated time should grow ~ log²N, far below linear in N.
  auto t = [](int dim) {
    auto input = util::random_keys(17, std::size_t{1} << dim);
    return run_snr(dim, input).summary.elapsed;
  };
  const double t4 = t(4), t8 = t(8);
  // log²: 16 -> 64 vs 64 -> 256 nodes: time ratio ~ (8/4)^2 = 4.
  EXPECT_LT(t8 / t4, 6.0);
  EXPECT_GT(t8 / t4, 2.0);
}

TEST(SnrTest, SilentlyCorruptsUnderInvertedDirection) {
  // The motivating failure: a node that keeps the wrong half produces a
  // wrong output with no indication whatsoever.
  auto input = util::random_keys(23, 16);
  SnrOptions opts;
  opts.node_faults[5].invert_direction_from = fault::StagePoint{1, 1};
  auto run = run_snr(4, input, opts);
  EXPECT_TRUE(run.errors.empty()) << "S_NR must stay silent";
  EXPECT_EQ(classify(run, input), Outcome::kSilentWrong);
}

TEST(SnrTest, HaltedNodeCausesSilentPartialResult) {
  auto input = util::random_keys(29, 16);
  SnrOptions opts;
  opts.node_faults[3].halt_at = fault::StagePoint{1, 0};
  auto run = run_snr(4, input, opts);
  EXPECT_TRUE(run.errors.empty());
  EXPECT_NE(classify(run, input), Outcome::kFailStop);
}

}  // namespace
}  // namespace aoft::sort
