// Stage-by-stage trace checks of S_FT on the paper's Figure-5 example and on
// random inputs: every intermediate LBS must satisfy the invariants Lemma 2
// promises (bitonic windows, permutations of the stage's subcube inputs) and
// all members of a window must agree on its content.

#include <gtest/gtest.h>

#include <map>

#include "sort/keys.h"
#include "sort/predicates.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

using SnapshotKey = std::pair<int, cube::NodeId>;  // (stage, window start)

std::map<SnapshotKey, std::vector<StageSnapshot>> collect_snapshots(
    int dim, std::span<const Key> input, std::size_t m = 1) {
  std::map<SnapshotKey, std::vector<StageSnapshot>> by_window;
  SftOptions opts;
  opts.block = m;
  opts.observer = [&by_window](const StageSnapshot& s) {
    by_window[{s.stage, s.window.start}].push_back(s);
  };
  auto run = run_sft(dim, input, opts);
  EXPECT_TRUE(run.errors.empty());
  return by_window;
}

TEST(SftTraceTest, Figure5StageZeroHoldsInitialPairs) {
  const std::vector<Key> input{10, 8, 3, 9, 4, 2, 7, 5};
  auto snaps = collect_snapshots(3, input);
  // Stage 0 windows are the pairs; their LBS is the initial data of the pair.
  EXPECT_EQ(snaps.at({0, 0}).front().lbs_window, (std::vector<Key>{10, 8}));
  EXPECT_EQ(snaps.at({0, 2}).front().lbs_window, (std::vector<Key>{3, 9}));
  EXPECT_EQ(snaps.at({0, 4}).front().lbs_window, (std::vector<Key>{4, 2}));
  EXPECT_EQ(snaps.at({0, 6}).front().lbs_window, (std::vector<Key>{7, 5}));
}

TEST(SftTraceTest, Figure5StageOneWindows) {
  // After stage 0, pairs are sorted alternately: (8,10),(9,3),(2,4),(7,5).
  // Stage 1 gossips those values across each 4-node window.
  const std::vector<Key> input{10, 8, 3, 9, 4, 2, 7, 5};
  auto snaps = collect_snapshots(3, input);
  EXPECT_EQ(snaps.at({1, 0}).front().lbs_window, (std::vector<Key>{8, 10, 9, 3}));
  EXPECT_EQ(snaps.at({1, 4}).front().lbs_window, (std::vector<Key>{2, 4, 7, 5}));
}

TEST(SftTraceTest, Figure5FinalStageIsSorted) {
  const std::vector<Key> input{10, 8, 3, 9, 4, 2, 7, 5};
  auto snaps = collect_snapshots(3, input);
  EXPECT_EQ(snaps.at({3, 0}).front().lbs_window,
            (std::vector<Key>{2, 3, 4, 5, 7, 8, 9, 10}));
}

TEST(SftTraceTest, AllWindowMembersAgreeOnTheSequence) {
  auto input = util::random_keys(11, 32);
  auto snaps = collect_snapshots(5, input);
  for (const auto& [key, group] : snaps) {
    ASSERT_EQ(group.size(), group.front().window.size())
        << "every member of the window reports once";
    for (const auto& s : group)
      EXPECT_EQ(s.lbs_window, group.front().lbs_window)
          << "stage " << key.first << " window @" << key.second;
  }
}

TEST(SftTraceTest, EveryStageWindowIsBitonic) {
  auto input = util::random_keys(13, 64);
  auto snaps = collect_snapshots(6, input);
  for (const auto& [key, group] : snaps) {
    const bool final_stage = key.first == 6;
    EXPECT_FALSE(phi_p(group.front().lbs_window, final_stage).has_value())
        << "stage " << key.first << " window @" << key.second;
  }
}

TEST(SftTraceTest, StageWindowsArePermutationsOfTheirInputs) {
  auto input = util::random_keys(17, 32);
  auto snaps = collect_snapshots(5, input);
  for (const auto& [key, group] : snaps) {
    const auto& s = group.front();
    const std::span<const Key> window_input(
        input.data() + s.window.start, s.window.size());
    EXPECT_TRUE(is_permutation_of(s.lbs_window, window_input))
        << "stage " << key.first << " window @" << key.second;
  }
}

TEST(SftTraceTest, LlbsOfStageIsLbsOfPreviousStage) {
  auto input = util::random_keys(19, 16);
  std::map<SnapshotKey, std::vector<StageSnapshot>> snaps =
      collect_snapshots(4, input);
  // For stage i >= 1, the LLBS a node carries over its previous window must
  // equal the LBS it validated at stage i-1.
  for (const auto& [key, group] : snaps) {
    const auto [stage, start] = key;
    if (stage == 0 || stage == 4) continue;
    for (const auto& s : group) {
      const auto prev_window = cube::home_subcube(stage, s.node);
      auto it = snaps.find({stage - 1, prev_window.start});
      ASSERT_NE(it, snaps.end());
      const auto& prev = it->second.front().lbs_window;
      // Extract the prev window slice from this stage's llbs_window.
      const std::size_t off = prev_window.start - s.window.start;
      std::vector<Key> llbs_slice(
          s.llbs_window.begin() + static_cast<std::ptrdiff_t>(off),
          s.llbs_window.begin() + static_cast<std::ptrdiff_t>(off + prev_window.size()));
      EXPECT_EQ(llbs_slice, prev) << "stage " << stage << " node " << s.node;
    }
  }
}

TEST(SftTraceTest, BlockTraceKeepsInvariants) {
  const std::size_t m = 3;
  auto input = util::random_keys(23, 16 * m);
  auto snaps = collect_snapshots(4, input, m);
  for (const auto& [key, group] : snaps) {
    const bool final_stage = key.first == 4;
    EXPECT_FALSE(phi_p(group.front().lbs_window, final_stage).has_value());
    const auto& s = group.front();
    const std::span<const Key> window_input(input.data() + s.window.start * m,
                                            s.window.size() * m);
    EXPECT_TRUE(is_permutation_of(s.lbs_window, window_input));
  }
}

}  // namespace
}  // namespace aoft::sort
