// Allocation regression guard for the pooled messaging hot path.
//
// After one warm-up run on a reused machine, every pooled structure (key
// buffers, channel rings, coroutine frames, scheduler queues) has reached its
// steady-state capacity, so subsequent runs should hit the heap essentially
// never.  This binary links the counting ::operator new replacement
// (util/alloc_hook.h) and measures per-run deltas; under sanitizers the stub
// is linked instead (ASan owns the allocator) and the suite skips.
//
// Bounds are deliberately loose multiples of the measured values — the test
// exists to catch a reintroduced per-message or per-key allocation, which
// shows up as hundreds of allocations per run, not to freeze exact counts.

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/machine.h"
#include "sim/pool.h"
#include "sort/sft.h"
#include "util/alloc_hook.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

#define SKIP_WITHOUT_HOOK()                                             \
  if (!util::alloc_hook_active())                                       \
  GTEST_SKIP() << "counting allocator not linked (sanitizer build?)"

// Allocations during fn(), total across the calling thread's process — the
// simulation is single-threaded, so the delta is exact.
template <typename Fn>
std::uint64_t allocs_during(Fn&& fn) {
  const std::uint64_t before = util::alloc_count();
  fn();
  return util::alloc_count() - before;
}

// Pure messaging ping-pong on a warm machine: the distilled hot path with no
// sort logic on top.  This one must be *exactly* allocation-free.
TEST(AllocRegressionTest, WarmPingPongRunsAllocationFree) {
  SKIP_WITHOUT_HOOK();
  sim::Machine machine(cube::Topology{3}, sim::CostModel{});
  auto program = [](sim::Ctx& ctx) -> sim::SimTask {
    const cube::NodeId peer = ctx.topo().neighbor(ctx.id(), 0);
    for (int round = 0; round < 64; ++round) {
      sim::Message m(ctx.pool());
      m.kind = sim::MsgKind::kApp;
      m.data.resize(16, static_cast<sim::Key>(round));
      ctx.send(peer, std::move(m));
      auto r = co_await ctx.recv(peer);
      EXPECT_TRUE(r.ok);
      ctx.account_recv(r.msg);
    }
  };

  // The pool's inventory grows toward the peak working set over the first few
  // runs (LIFO reuse can hand a warm buffer to a holder that idles it, so one
  // run's demand is not yet the peak).  It must converge to allocation-free
  // quickly; assert the fixed point, not the trajectory.
  machine.run(program);
  std::uint64_t steady = ~std::uint64_t{0};
  for (int cycle = 0; cycle < 8 && steady != 0; ++cycle) {
    machine.reset();
    steady = allocs_during([&] { machine.run(program); });
  }
  EXPECT_EQ(steady, 0u) << "warm messaging round-trips must not allocate";
}

// Full S_FT on a warm reused machine: a handful of per-run allocations remain
// by design (the result's output vector, shared-state bookkeeping) but
// nothing proportional to messages or keys may survive.
TEST(AllocRegressionTest, WarmSftRunStaysNearZero) {
  SKIP_WITHOUT_HOOK();
  const int dim = 3;
  auto input = util::random_keys(404, std::size_t{1} << dim);

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  SftOptions opts;
  opts.machine = &machine;
  (void)run_sft(dim, input, opts);  // warm-up

  const std::uint64_t steady = allocs_during([&] {
    auto run = run_sft(dim, input, opts);
    ASSERT_TRUE(run.errors.empty());
  });
  // dim 3 exchanges ~100 messages; per-message allocation would blow far
  // past this bound.
  EXPECT_LE(steady, 32u) << "steady-state S_FT run allocates per message";
}

// The residual per-run count must not scale with the block size: block keys
// ride exclusively in pooled buffers.
TEST(AllocRegressionTest, SteadyStateCountIsBlockSizeIndependent) {
  SKIP_WITHOUT_HOOK();
  const int dim = 3;
  auto measure = [&](std::size_t block) {
    auto input =
        util::random_keys(11 + block, (std::size_t{1} << dim) * block);
    sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
    SftOptions opts;
    opts.block = block;
    opts.machine = &machine;
    (void)run_sft(dim, input, opts);  // warm-up
    return allocs_during([&] { (void)run_sft(dim, input, opts); });
  };
  const std::uint64_t small = measure(1);
  const std::uint64_t large = measure(16);
  // 16x the keys per message must not mean more allocations — the counts are
  // equal up to noise (both are a handful of fixed bookkeeping allocations).
  EXPECT_LE(large, small + 4);
}

// The whole point, quantified: pooling plus machine reuse removes at least
// 90% of the heap traffic of a scenario run.
TEST(AllocRegressionTest, PoolingRemovesAlmostAllAllocations) {
  SKIP_WITHOUT_HOOK();
  const int dim = 4;
  auto input = util::random_keys(77, std::size_t{1} << dim);

  sim::set_pooling(false);
  const std::uint64_t unpooled = allocs_during([&] {
    (void)run_sft(dim, input, {});  // fresh machine, no pooling: the old path
  });
  sim::set_pooling(true);

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  SftOptions opts;
  opts.machine = &machine;
  (void)run_sft(dim, input, opts);  // warm-up
  const std::uint64_t pooled =
      allocs_during([&] { (void)run_sft(dim, input, opts); });

  EXPECT_LT(pooled * 10, unpooled)
      << "pooled=" << pooled << " unpooled=" << unpooled;
}

}  // namespace
}  // namespace aoft::sort
