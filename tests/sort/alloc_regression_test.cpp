// Allocation regression guard for the pooled messaging hot path.
//
// After one warm-up run on a reused machine, every pooled structure (key
// buffers, channel rings, coroutine frames, scheduler queues) has reached its
// steady-state capacity, so subsequent runs should hit the heap essentially
// never.  This binary links the counting ::operator new replacement
// (util/alloc_hook.h) and measures per-run deltas; under sanitizers the stub
// is linked instead (ASan owns the allocator) and the suite skips.
//
// Bounds are deliberately loose multiples of the measured values — the test
// exists to catch a reintroduced per-message or per-key allocation, which
// shows up as hundreds of allocations per run, not to freeze exact counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/machine.h"
#include "sim/pool.h"
#include "sort/kernels.h"
#include "sort/predicates.h"
#include "sort/sft.h"
#include "util/alloc_hook.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

#define SKIP_WITHOUT_HOOK()                                             \
  if (!util::alloc_hook_active())                                       \
  GTEST_SKIP() << "counting allocator not linked (sanitizer build?)"

// Allocations during fn(), total across the calling thread's process — the
// simulation is single-threaded, so the delta is exact.
template <typename Fn>
std::uint64_t allocs_during(Fn&& fn) {
  const std::uint64_t before = util::alloc_count();
  fn();
  return util::alloc_count() - before;
}

// Pure messaging ping-pong on a warm machine: the distilled hot path with no
// sort logic on top.  This one must be *exactly* allocation-free.
TEST(AllocRegressionTest, WarmPingPongRunsAllocationFree) {
  SKIP_WITHOUT_HOOK();
  sim::Machine machine(cube::Topology{3}, sim::CostModel{});
  auto program = [](sim::Ctx& ctx) -> sim::SimTask {
    const cube::NodeId peer = ctx.topo().neighbor(ctx.id(), 0);
    for (int round = 0; round < 64; ++round) {
      sim::Message m(ctx.pool());
      m.kind = sim::MsgKind::kApp;
      m.data.resize(16, static_cast<sim::Key>(round));
      ctx.send(peer, std::move(m));
      auto r = co_await ctx.recv(peer);
      EXPECT_TRUE(r.ok);
      ctx.account_recv(r.msg);
    }
  };

  // The pool's inventory grows toward the peak working set over the first few
  // runs (LIFO reuse can hand a warm buffer to a holder that idles it, so one
  // run's demand is not yet the peak).  It must converge to allocation-free
  // quickly; assert the fixed point, not the trajectory.
  machine.run(program);
  std::uint64_t steady = ~std::uint64_t{0};
  for (int cycle = 0; cycle < 8 && steady != 0; ++cycle) {
    machine.reset();
    steady = allocs_during([&] { machine.run(program); });
  }
  EXPECT_EQ(steady, 0u) << "warm messaging round-trips must not allocate";
}

// Full S_FT on a warm reused machine: a handful of per-run allocations remain
// by design (the result's output vector, shared-state bookkeeping) but
// nothing proportional to messages or keys may survive.
TEST(AllocRegressionTest, WarmSftRunStaysNearZero) {
  SKIP_WITHOUT_HOOK();
  const int dim = 3;
  auto input = util::random_keys(404, std::size_t{1} << dim);

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  SftOptions opts;
  opts.machine = &machine;
  (void)run_sft(dim, input, opts);  // warm-up

  const std::uint64_t steady = allocs_during([&] {
    auto run = run_sft(dim, input, opts);
    ASSERT_TRUE(run.errors.empty());
  });
  // dim 3 exchanges ~100 messages; per-message allocation would blow far
  // past this bound.
  EXPECT_LE(steady, 32u) << "steady-state S_FT run allocates per message";
}

// The residual per-run count must not scale with the block size: block keys
// ride exclusively in pooled buffers.
TEST(AllocRegressionTest, SteadyStateCountIsBlockSizeIndependent) {
  SKIP_WITHOUT_HOOK();
  const int dim = 3;
  auto measure = [&](std::size_t block) {
    auto input =
        util::random_keys(11 + block, (std::size_t{1} << dim) * block);
    sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
    SftOptions opts;
    opts.block = block;
    opts.machine = &machine;
    (void)run_sft(dim, input, opts);  // warm-up
    return allocs_during([&] { (void)run_sft(dim, input, opts); });
  };
  const std::uint64_t small = measure(1);
  const std::uint64_t large = measure(16);
  // 16x the keys per message must not mean more allocations — the counts are
  // equal up to noise (both are a handful of fixed bookkeeping allocations).
  EXPECT_LE(large, small + 4);
}

// The whole point, quantified: pooling plus machine reuse removes at least
// 90% of the heap traffic of a scenario run.
TEST(AllocRegressionTest, PoolingRemovesAlmostAllAllocations) {
  SKIP_WITHOUT_HOOK();
  const int dim = 4;
  auto input = util::random_keys(77, std::size_t{1} << dim);

  sim::set_pooling(false);
  const std::uint64_t unpooled = allocs_during([&] {
    (void)run_sft(dim, input, {});  // fresh machine, no pooling: the old path
  });
  sim::set_pooling(true);

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  SftOptions opts;
  opts.machine = &machine;
  (void)run_sft(dim, input, opts);  // warm-up
  const std::uint64_t pooled =
      allocs_during([&] { (void)run_sft(dim, input, opts); });

  EXPECT_LT(pooled * 10, unpooled)
      << "pooled=" << pooled << " unpooled=" << unpooled;
}

// Every kernel on every executable dispatch path is steady-state
// allocation-free: the SIMD layer works in registers and caller storage, and
// a merge that fell back to an allocating path would silently reintroduce the
// heap traffic PR 4 removed.
TEST(AllocRegressionTest, KernelsAllocateNothingOnAnyPath) {
  SKIP_WITHOUT_HOOK();
  const std::size_t n = 256;
  std::vector<Key> asc = util::random_keys(5150, n);
  std::sort(asc.begin(), asc.end());
  std::vector<Key> bitonic = asc;
  std::sort(bitonic.begin() + static_cast<std::ptrdiff_t>(n / 2),
            bitonic.end(), std::greater<Key>{});
  std::vector<Key> other = util::random_keys(5151, n);
  std::sort(other.begin(), other.end());
  std::vector<Key> out(2 * n);

  for (const auto path : {util::simd::Path::kScalar, util::simd::Path::kAvx2,
                          util::simd::Path::kNeon}) {
    if (!util::simd::supported(path)) continue;
    const auto& t = kernels::table_for(path);
    const std::uint64_t allocs = allocs_during([&] {
      for (int round = 0; round < 16; ++round) {
        (void)t.run_break(bitonic.data(), n, true);
        (void)t.mismatch(asc.data(), other.data(), n);
        (void)t.phi_f_scan(bitonic.data(), asc.data(), n, true);
        t.merge(asc.data(), n, other.data(), n, true, out.data());
        (void)t.includes(out.data(), 2 * n, asc.data(), n, true);
      }
    });
    EXPECT_EQ(allocs, 0u) << "path " << util::simd::to_string(path);
  }
}

// The predicate wrappers above the kernels stay allocation-free on the pass
// path too (a Violation allocates its message string, but passing verdicts —
// the steady state — must not touch the heap).
TEST(AllocRegressionTest, PassingPredicatesAllocateNothing) {
  SKIP_WITHOUT_HOOK();
  const std::size_t n = 128;
  std::vector<Key> window = util::random_keys(6060, n);
  std::sort(window.begin(), window.begin() + static_cast<std::ptrdiff_t>(n / 2));
  std::sort(window.begin() + static_cast<std::ptrdiff_t>(n / 2), window.end(),
            std::greater<Key>{});
  std::vector<Key> sorted = window;
  std::sort(sorted.begin(), sorted.end());

  // Φ_C fixture: sender covers the whole window, half the nodes already held.
  cube::Subcube sc;
  sc.start = 0;
  sc.end = 7;
  sc.dim = 3;
  const std::size_t m = 16;
  std::vector<Key> local(8 * m, 0);
  std::vector<Key> recv(8 * m);
  util::BitVec local_cover(8), sender_cover(8);
  for (std::size_t p = 0; p < 8; ++p) {
    sender_cover.set(p);
    for (std::size_t w = 0; w < m; ++w) recv[p * m + w] = sorted[p * m + w];
    if (p % 2 == 0) {
      local_cover.set(p);
      for (std::size_t w = 0; w < m; ++w) local[p * m + w] = sorted[p * m + w];
    }
  }

  // Warm-up absorbs the uncovered half so the measured pass is pure verify.
  MergeStats stats;
  ASSERT_FALSE(phi_c_merge(local, local_cover, recv, sender_cover, sc, m,
                           &stats)
                   .has_value());
  const std::uint64_t allocs = allocs_during([&] {
    for (int round = 0; round < 16; ++round) {
      EXPECT_FALSE(phi_p(window, false).has_value());
      EXPECT_FALSE(phi_f(window, sorted, true).has_value());
      EXPECT_FALSE(phi_c_merge(local, local_cover, recv, sender_cover, sc, m,
                               &stats)
                       .has_value());
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace aoft::sort
