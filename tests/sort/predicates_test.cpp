// Unit tests for the constraint predicate Φ = (Φ_P, Φ_F, Φ_C) as pure
// functions (paper Figs. 4a-4c), independent of the simulator.

#include "sort/predicates.h"

#include <gtest/gtest.h>

namespace aoft::sort {
namespace {

using util::BitVec;

// ---- Φ_P --------------------------------------------------------------------

TEST(PhiPTest, AcceptsBitonicHalves) {
  const std::vector<Key> v{1, 3, 5, 9, 8, 6, 4, 2};
  EXPECT_FALSE(phi_p(v, false).has_value());
}

TEST(PhiPTest, AcceptsPlateaus) {
  const std::vector<Key> v{1, 1, 2, 2, 2, 2, 1, 1};
  EXPECT_FALSE(phi_p(v, false).has_value());
}

TEST(PhiPTest, NoConstraintAcrossTheMidpoint) {
  // Ascending half may end below the start of the descending half.
  const std::vector<Key> v{1, 2, 9, 8};
  EXPECT_FALSE(phi_p(v, false).has_value());
}

TEST(PhiPTest, RejectsBrokenAscendingRun) {
  const std::vector<Key> v{1, 5, 3, 9, 8, 6, 4, 2};
  const auto viol = phi_p(v, false);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->position, 1);
  EXPECT_NE(viol->what.find("ascending"), std::string::npos);
}

TEST(PhiPTest, RejectsBrokenDescendingRun) {
  const std::vector<Key> v{1, 3, 5, 9, 8, 6, 7, 2};
  const auto viol = phi_p(v, false);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->position, 5);
  EXPECT_NE(viol->what.find("descending"), std::string::npos);
}

TEST(PhiPTest, FinalStageDemandsFullyAscending) {
  const std::vector<Key> bitonic{1, 3, 5, 9, 8, 6, 4, 2};
  EXPECT_TRUE(phi_p(bitonic, true).has_value());
  const std::vector<Key> sorted{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(phi_p(sorted, true).has_value());
}

TEST(PhiPTest, TrivialWindows) {
  EXPECT_FALSE(phi_p(std::vector<Key>{}, false).has_value());
  EXPECT_FALSE(phi_p(std::vector<Key>{5}, false).has_value());
  EXPECT_FALSE(phi_p(std::vector<Key>{5, 1}, false).has_value());  // halves of 1
  EXPECT_TRUE(phi_p(std::vector<Key>{5, 1}, true).has_value());
}

// ---- Φ_F --------------------------------------------------------------------

TEST(PhiFTest, AcceptsSortedPermutationOfBitonic) {
  const std::vector<Key> llbs{1, 4, 9, 7};  // asc run {1,4}, desc run {9,7}
  const std::vector<Key> lbs{1, 4, 7, 9};
  EXPECT_FALSE(phi_f(llbs, lbs, true).has_value());
}

TEST(PhiFTest, AcceptsDescendingDirection) {
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{9, 7, 4, 1};
  EXPECT_FALSE(phi_f(llbs, lbs, false).has_value());
}

TEST(PhiFTest, RejectsSubstitutedElement) {
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{1, 5, 7, 9};  // 4 replaced by 5
  EXPECT_TRUE(phi_f(llbs, lbs, true).has_value());
}

TEST(PhiFTest, RejectsDuplicatedElement) {
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{1, 1, 7, 9};  // 4 dropped, 1 duplicated
  EXPECT_TRUE(phi_f(llbs, lbs, true).has_value());
}

TEST(PhiFTest, RejectsValueFromOutside) {
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{0, 4, 7, 9};
  const auto viol = phi_f(llbs, lbs, true);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->position, 0);
}

TEST(PhiFTest, HandlesHeavyDuplicates) {
  const std::vector<Key> llbs{2, 2, 2, 2};
  const std::vector<Key> lbs{2, 2, 2, 2};
  EXPECT_FALSE(phi_f(llbs, lbs, true).has_value());
  EXPECT_FALSE(phi_f(llbs, lbs, false).has_value());
}

TEST(PhiFTest, DuplicateAcrossRunBoundary) {
  // The same key sits at the tail of the ascending and the head of the
  // descending run; greedy consumption must still succeed.
  const std::vector<Key> llbs{1, 5, 5, 3};
  const std::vector<Key> lbs{1, 3, 5, 5};
  EXPECT_FALSE(phi_f(llbs, lbs, true).has_value());
}

TEST(PhiFTest, SingletonWindow) {
  EXPECT_FALSE(phi_f(std::vector<Key>{3}, std::vector<Key>{3}, true).has_value());
  EXPECT_TRUE(phi_f(std::vector<Key>{3}, std::vector<Key>{4}, true).has_value());
}

TEST(PhiFTest, PairWindowEitherOrder) {
  // LLBS of size 2 is bitonic in either arrangement; LBS must be its sorted
  // permutation.
  EXPECT_FALSE(phi_f(std::vector<Key>{8, 2}, std::vector<Key>{2, 8}, true).has_value());
  EXPECT_FALSE(phi_f(std::vector<Key>{2, 8}, std::vector<Key>{2, 8}, true).has_value());
  EXPECT_TRUE(phi_f(std::vector<Key>{2, 8}, std::vector<Key>{2, 9}, true).has_value());
}

TEST(PhiFTest, CatchesReorderedNotSorted) {
  // phi_f iterates lbs in claimed sorted order; a non-sorted lbs that is a
  // true permutation can still fail, which is fine: phi_p already vouched for
  // sortedness when called through bit_compare.
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{9, 1, 4, 7};
  EXPECT_TRUE(phi_f(llbs, lbs, true).has_value());
}

// ---- Φ_C --------------------------------------------------------------------

class PhiCTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 8;
  cube::Subcube window_{0, 3, 2};  // nodes 0..3
  std::vector<Key> local_ = std::vector<Key>(kNodes, 0);
  BitVec cover_{kNodes};
};

TEST_F(PhiCTest, AbsorbsFreshEntries) {
  local_[0] = 10;
  cover_.set(0);
  const std::vector<Key> slice{99, 20, 0, 0};  // entries for nodes 0..3
  BitVec sender(kNodes, {1});                  // sender only has node 1
  MergeStats stats;
  auto v = phi_c_merge(local_, cover_, slice, sender, window_, 1, &stats);
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(local_[1], 20);
  EXPECT_EQ(local_[0], 10);  // untouched: sender did not cover it
  EXPECT_TRUE(cover_.test(1));
  EXPECT_EQ(stats.absorbed, 1u);
  EXPECT_EQ(stats.checked, 0u);
}

TEST_F(PhiCTest, CrossChecksOverlap) {
  local_[2] = 30;
  cover_.set(2);
  const std::vector<Key> slice{0, 0, 30, 0};
  BitVec sender(kNodes, {2});
  MergeStats stats;
  auto v = phi_c_merge(local_, cover_, slice, sender, window_, 1, &stats);
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(stats.checked, 1u);
}

TEST_F(PhiCTest, FlagsDisagreeingCopies) {
  local_[2] = 30;
  cover_.set(2);
  const std::vector<Key> slice{0, 0, 31, 0};
  BitVec sender(kNodes, {2});
  auto v = phi_c_merge(local_, cover_, slice, sender, window_, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->position, 2);
  EXPECT_NE(v->what.find("phi_C"), std::string::npos);
  EXPECT_EQ(local_[2], 30);  // local copy is never overwritten
}

TEST_F(PhiCTest, IgnoresUncoveredGarbage) {
  // Positions the sender has not collected contain stale bytes; they must be
  // ignored even if they disagree with local state.
  local_[3] = 7;
  cover_.set(3);
  const std::vector<Key> slice{-1, -1, -1, -999};
  BitVec sender(kNodes);  // sender covers nothing
  auto v = phi_c_merge(local_, cover_, slice, sender, window_, 1);
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(local_[3], 7);
}

TEST_F(PhiCTest, WindowOffsetsAreRespected) {
  cube::Subcube upper{4, 7, 2};
  local_[5] = 50;
  cover_.set(5);
  const std::vector<Key> slice{0, 50, 60, 0};  // nodes 4..7
  BitVec sender(kNodes, {5, 6});
  auto v = phi_c_merge(local_, cover_, slice, sender, upper, 1);
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(local_[6], 60);
}

TEST_F(PhiCTest, BlockEntriesCompareAllWords) {
  // m = 2: one corrupted word inside a block must be caught.
  std::vector<Key> local(16, 0);
  BitVec cover(8, {1});
  local[2] = 5;
  local[3] = 6;  // node 1's block
  std::vector<Key> slice(8, 0);
  slice[2] = 5;
  slice[3] = 7;  // second word differs
  BitVec sender(8, {1});
  auto v = phi_c_merge(local, cover, slice, sender, cube::Subcube{0, 3, 2}, 2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->position, 1);
}

// ---- bit_compare ------------------------------------------------------------

TEST(BitCompareTest, ChecksProgressThenFeasibility) {
  // Full-cube arrays for a dim-2 cube; outer = whole cube, inner = lower half.
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{1, 4, 9, 7};
  const cube::Subcube outer{0, 3, 2};
  const cube::Subcube inner{0, 1, 1};
  // lbs over inner = {1,4} sorted ascending; llbs over inner = {1,4}.
  EXPECT_FALSE(
      bit_compare(llbs, lbs, outer, inner, true, false, 1).has_value());
}

TEST(BitCompareTest, ProgressViolationWinsFirst) {
  const std::vector<Key> llbs{1, 4, 9, 7};
  const std::vector<Key> lbs{4, 1, 9, 7};  // lower half not ascending
  const auto v = bit_compare(llbs, lbs, {0, 3, 2}, {0, 1, 1}, true, false, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->what.find("phi_P"), std::string::npos);
}

TEST(BitCompareTest, FeasibilityViolationDetected) {
  const std::vector<Key> llbs{2, 4, 9, 7};
  const std::vector<Key> lbs{1, 4, 9, 7};  // bitonic, but 1 not in llbs inner
  const auto v = bit_compare(llbs, lbs, {0, 3, 2}, {0, 1, 1}, true, false, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->what.find("phi_F"), std::string::npos);
}

TEST(BitCompareTest, FinalStageWholeCube) {
  const std::vector<Key> llbs{1, 5, 8, 3};  // bitonic over the cube
  const std::vector<Key> sorted{1, 3, 5, 8};
  const cube::Subcube cube{0, 3, 2};
  EXPECT_FALSE(bit_compare(llbs, sorted, cube, cube, true, true, 1).has_value());
  const std::vector<Key> wrong{1, 3, 8, 5};
  EXPECT_TRUE(bit_compare(llbs, wrong, cube, cube, true, true, 1).has_value());
}

}  // namespace
}  // namespace aoft::sort
