#include "sort/driver.h"

#include <gtest/gtest.h>

namespace aoft::sort {
namespace {

SortRun make_run(std::vector<Key> out) {
  SortRun r;
  r.output = std::move(out);
  return r;
}

TEST(ClassifyTest, CorrectRun) {
  const std::vector<Key> input{3, 1, 2};
  EXPECT_EQ(classify(make_run({1, 2, 3}), input), Outcome::kCorrect);
}

TEST(ClassifyTest, FailStopWinsOverOutput) {
  const std::vector<Key> input{3, 1, 2};
  auto run = make_run({1, 2, 3});
  run.errors.push_back({0, 1, 0, sim::ErrorSource::kPhiC, "x"});
  EXPECT_EQ(classify(run, input), Outcome::kFailStop);
}

TEST(ClassifyTest, UnsortedOutputIsSilentWrong) {
  const std::vector<Key> input{3, 1, 2};
  EXPECT_EQ(classify(make_run({2, 1, 3}), input), Outcome::kSilentWrong);
}

TEST(ClassifyTest, NonPermutationIsSilentWrong) {
  const std::vector<Key> input{3, 1, 2};
  EXPECT_EQ(classify(make_run({1, 2, 4}), input), Outcome::kSilentWrong);
}

TEST(ClassifyTest, SizeMismatchIsSilentWrong) {
  const std::vector<Key> input{3, 1, 2};
  EXPECT_EQ(classify(make_run({1, 2}), input), Outcome::kSilentWrong);
}

TEST(ClassifyTest, DuplicateAwarePermutationCheck) {
  const std::vector<Key> input{2, 2, 1};
  EXPECT_EQ(classify(make_run({1, 2, 2}), input), Outcome::kCorrect);
  EXPECT_EQ(classify(make_run({1, 1, 2}), input), Outcome::kSilentWrong);
}

TEST(OutcomeTest, Names) {
  EXPECT_STREQ(to_string(Outcome::kCorrect), "correct");
  EXPECT_STREQ(to_string(Outcome::kFailStop), "fail-stop");
  EXPECT_STREQ(to_string(Outcome::kSilentWrong), "SILENT-WRONG");
}

}  // namespace
}  // namespace aoft::sort
