// Machine reuse contract at the protocol level: running S_FT on a reset()
// machine must be *observably identical* to running it on a fresh one —
// output, error reports, cost summary, link-event log, and the serialized
// observability trace, byte for byte.  The campaign engine leans on this to
// keep one machine per worker thread (CampaignConfig::reuse_machines).

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/adversary.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "obs/trace_io.h"
#include "sim/machine.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

// Run S_FT with the observability sink bound; return the run plus the trace
// serialized to JSONL (byte-comparable).
struct TracedRun {
  SortRun run;
  std::string trace;
};

TracedRun traced_sft(int dim, std::span<const Key> input, SftOptions opts) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  TracedRun out;
  {
    obs::ScopedSink sink(&tracer, &metrics);
    opts.record_link_events = true;
    out.run = run_sft(dim, input, opts);
  }
  std::ostringstream os;
  obs::TraceMeta meta;
  meta.dim = dim;
  meta.block = opts.block;
  meta.seed = 0;
  meta.mode = "test";
  obs::write_jsonl(os, meta, tracer);
  out.trace = os.str();
  return out;
}

void expect_same_run(const TracedRun& a, const TracedRun& b) {
  EXPECT_EQ(a.run.output, b.run.output);
  ASSERT_EQ(a.run.errors.size(), b.run.errors.size());
  for (std::size_t i = 0; i < a.run.errors.size(); ++i) {
    EXPECT_EQ(a.run.errors[i].node, b.run.errors[i].node);
    EXPECT_EQ(a.run.errors[i].stage, b.run.errors[i].stage);
    EXPECT_EQ(a.run.errors[i].iter, b.run.errors[i].iter);
    EXPECT_EQ(a.run.errors[i].source, b.run.errors[i].source);
    EXPECT_EQ(a.run.errors[i].detail, b.run.errors[i].detail);
  }
  EXPECT_DOUBLE_EQ(a.run.summary.elapsed, b.run.summary.elapsed);
  EXPECT_DOUBLE_EQ(a.run.summary.max_comm, b.run.summary.max_comm);
  EXPECT_DOUBLE_EQ(a.run.summary.max_comp, b.run.summary.max_comp);
  EXPECT_EQ(a.run.summary.total_msgs, b.run.summary.total_msgs);
  EXPECT_EQ(a.run.summary.total_words, b.run.summary.total_words);
  ASSERT_EQ(a.run.link_events.size(), b.run.link_events.size());
  for (std::size_t i = 0; i < a.run.link_events.size(); ++i) {
    EXPECT_EQ(a.run.link_events[i].from, b.run.link_events[i].from);
    EXPECT_EQ(a.run.link_events[i].to, b.run.link_events[i].to);
    EXPECT_EQ(a.run.link_events[i].words, b.run.link_events[i].words);
    EXPECT_EQ(a.run.link_events[i].stage, b.run.link_events[i].stage);
  }
  EXPECT_EQ(a.trace, b.trace);  // serialized bytes, the strictest equality
}

TEST(SftReuseTest, CleanRunOnResetMachineIsBitIdentical) {
  const int dim = 4;
  auto input = util::random_keys(2026, std::size_t{1} << dim);
  const auto fresh = traced_sft(dim, input, {});

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  SftOptions reuse;
  reuse.machine = &machine;
  // Dirty the machine with a different run first: the comparison must hold
  // from *any* prior state, not just from construction.
  auto other = util::random_keys(7, std::size_t{1} << dim);
  (void)run_sft(dim, other, reuse);

  const auto reused = traced_sft(dim, input, reuse);
  expect_same_run(fresh, reused);
}

TEST(SftReuseTest, FaultyRunOnResetMachineIsBitIdentical) {
  const int dim = 4;
  auto input = util::random_keys(1989, std::size_t{1} << dim);

  auto make_opts = [](fault::Adversary& adv) {
    adv.add(fault::corrupt_data(5, {2, 1}, 17));
    SftOptions opts;
    opts.interceptor = &adv;
    return opts;
  };

  fault::Adversary adv_fresh;
  const auto fresh = traced_sft(dim, input, make_opts(adv_fresh));
  EXPECT_TRUE(fresh.run.fail_stop());

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  (void)run_sft(dim, input, [&] {
    SftOptions warm;
    warm.machine = &machine;
    return warm;
  }());  // clean warm-up run, then the faulty one on the same machine
  fault::Adversary adv_reuse;
  auto opts = make_opts(adv_reuse);
  opts.machine = &machine;
  const auto reused = traced_sft(dim, input, opts);
  expect_same_run(fresh, reused);
}

TEST(SftReuseTest, BlockRunsWithDifferentSizesShareAMachine) {
  // Block size changes between leases (same dim): pooled buffers sized for
  // one block must not leak into the next run's behavior.
  const int dim = 3;
  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  for (std::size_t block : {4u, 1u, 8u}) {
    auto input = util::random_keys(31 + block, (std::size_t{1} << dim) * block);
    SftOptions fresh_opts;
    fresh_opts.block = block;
    const auto fresh = traced_sft(dim, input, fresh_opts);
    SftOptions reuse = fresh_opts;
    reuse.machine = &machine;
    const auto reused = traced_sft(dim, input, reuse);
    expect_same_run(fresh, reused);
  }
}

TEST(SftReuseTest, DimensionMismatchThrows) {
  sim::Machine machine(cube::Topology{3}, sim::CostModel{});
  auto input = util::random_keys(1, 16);
  SftOptions opts;
  opts.machine = &machine;
  EXPECT_THROW((void)run_sft(4, input, opts), std::invalid_argument);

  SnrOptions snr_opts;
  snr_opts.machine = &machine;
  EXPECT_THROW((void)run_snr(4, input, snr_opts), std::invalid_argument);
}

TEST(SftReuseTest, SnrReuseMatchesFresh) {
  const int dim = 4;
  auto input = util::random_keys(55, std::size_t{1} << dim);
  const auto fresh = run_snr(dim, input);

  sim::Machine machine(cube::Topology{dim}, sim::CostModel{});
  SnrOptions opts;
  opts.machine = &machine;
  (void)run_snr(dim, util::random_keys(56, std::size_t{1} << dim), opts);
  const auto reused = run_snr(dim, input, opts);
  EXPECT_EQ(reused.output, fresh.output);
  EXPECT_DOUBLE_EQ(reused.summary.elapsed, fresh.summary.elapsed);
  EXPECT_EQ(reused.summary.total_msgs, fresh.summary.total_msgs);
  EXPECT_EQ(reused.summary.total_words, fresh.summary.total_words);
}

}  // namespace
}  // namespace aoft::sort
