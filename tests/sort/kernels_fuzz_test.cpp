// Differential fuzzing of the SIMD kernel tables against the scalar
// reference (sort/kernels.h).
//
// The dispatch contract is bit-identity, not mere verdict agreement: for
// every kernel, every compiled-and-executable path must return the same
// value — including the exact first-failure position for run_break/mismatch/
// phi_f_scan and the exact output bytes for merge — on the same input.  The
// generators below deliberately cover the shapes where a vector
// implementation can diverge from a scalar one:
//   * sizes 0, 1 and every length around the 4-lane (AVX2) and 2-lane (NEON)
//     boundaries, so tails and the small-size scalar fallbacks are hit;
//   * duplicate-heavy alphabets, because the Φ_F scalar reference prefers the
//     l-side run on equal keys and a vectorized bulk advance must reproduce
//     that tie-break exactly;
//   * violations planted at every position, including lane 0, the last lane
//     of a vector and the scalar tail.

#include "sort/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace aoft::sort::kernels {
namespace {

using util::simd::Path;

std::vector<Path> testable_paths() {
  std::vector<Path> paths{Path::kScalar};
  for (const Path p : {Path::kAvx2, Path::kNeon})
    if (util::simd::supported(p)) paths.push_back(p);
  return paths;
}

// Sizes straddling lane-width multiples for both vector widths, plus the
// degenerate and fallback-threshold cases.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  12, 15,
                              16, 17, 23, 31, 32, 33, 63, 64, 65, 100, 257};

std::vector<Key> random_keys(util::Rng& rng, std::size_t n,
                             std::uint64_t alphabet) {
  std::vector<Key> v(n);
  for (auto& k : v) k = static_cast<Key>(rng.next_u64() % alphabet);
  return v;
}

TEST(KernelsFuzzTest, RunBreakMatchesScalarEverywhere) {
  const auto paths = testable_paths();
  const auto& scalar = detail::scalar_table();
  util::Rng rng(0x5eedu);
  for (const std::size_t n : kSizes) {
    for (const bool non_dec : {true, false}) {
      for (int round = 0; round < 40; ++round) {
        // Mix clean runs (no break), runs broken at a planted position, and
        // raw random noise (breaks everywhere).
        std::vector<Key> v = random_keys(rng, n, round % 3 == 0 ? 4 : 1u << 20);
        if (round % 4 == 1) {
          std::sort(v.begin(), v.end());
          if (!non_dec) std::reverse(v.begin(), v.end());
          if (n >= 2 && round % 8 == 5) {
            // Plant a single break at a random pair.
            const std::size_t at = rng.next_u64() % (n - 1);
            v[at + 1] = non_dec ? v[at] - 1 : v[at] + 1;
          }
        }
        const std::size_t want = scalar.run_break(v.data(), n, non_dec);
        for (const Path p : paths)
          ASSERT_EQ(table_for(p).run_break(v.data(), n, non_dec), want)
              << util::simd::to_string(p) << " n=" << n << " dir=" << non_dec;
      }
    }
  }
}

TEST(KernelsFuzzTest, MismatchMatchesScalarEverywhere) {
  const auto paths = testable_paths();
  const auto& scalar = detail::scalar_table();
  util::Rng rng(0xabcdu);
  for (const std::size_t n : kSizes) {
    for (int round = 0; round < 40; ++round) {
      std::vector<Key> a = random_keys(rng, n, 1u << 16);
      std::vector<Key> b = a;
      if (n > 0 && round % 3 != 0) {
        // Flip one word (any position, including 0 and n-1) or a suffix.
        const std::size_t at = rng.next_u64() % n;
        if (round % 3 == 1) {
          b[at] ^= 1;
        } else {
          for (std::size_t i = at; i < n; ++i) b[i] += 7;
        }
      }
      const std::size_t want = scalar.mismatch(a.data(), b.data(), n);
      for (const Path p : paths)
        ASSERT_EQ(table_for(p).mismatch(a.data(), b.data(), n), want)
            << util::simd::to_string(p) << " n=" << n;
    }
  }
}

// Build a (llbs, lbs) pair the way the protocol does: llbs is a bitonic
// window (ascending half then descending half), lbs is some directional
// permutation-or-corruption of it.
struct PhiFCase {
  std::vector<Key> llbs;
  std::vector<Key> lbs;
};

PhiFCase make_phi_f_case(util::Rng& rng, std::size_t n, bool ascending,
                         bool corrupt) {
  PhiFCase c;
  // Duplicate-heavy alphabet: equal keys across the half boundary are the
  // tie-break hazard for a bulk u-side advance.
  const std::uint64_t alphabet = std::max<std::uint64_t>(2, n / 2);
  c.llbs = random_keys(rng, n, alphabet);
  const std::size_t half = n / 2;
  std::sort(c.llbs.begin(), c.llbs.begin() + half);
  std::sort(c.llbs.begin() + half, c.llbs.end(), std::greater<Key>{});
  c.lbs = c.llbs;
  std::sort(c.lbs.begin(), c.lbs.end());
  if (!ascending) std::reverse(c.lbs.begin(), c.lbs.end());
  if (corrupt && n > 0) {
    const std::size_t at = rng.next_u64() % n;
    c.lbs[at] += 1 + static_cast<Key>(rng.next_u64() % 3);
    // Re-sort so lbs is still directional (phi_f's precondition) but no
    // longer a permutation of llbs.
    std::sort(c.lbs.begin(), c.lbs.end());
    if (!ascending) std::reverse(c.lbs.begin(), c.lbs.end());
  }
  return c;
}

TEST(KernelsFuzzTest, PhiFScanMatchesScalarEverywhere) {
  const auto paths = testable_paths();
  const auto& scalar = detail::scalar_table();
  util::Rng rng(0xf00du);
  for (const std::size_t n : kSizes) {
    if (n < 2) continue;  // the kernel contract starts at size 2
    for (const bool ascending : {true, false}) {
      for (int round = 0; round < 60; ++round) {
        const PhiFCase c =
            make_phi_f_case(rng, n, ascending, round % 2 == 1);
        const std::int64_t want =
            scalar.phi_f_scan(c.llbs.data(), c.lbs.data(), n, ascending);
        for (const Path p : paths)
          ASSERT_EQ(table_for(p).phi_f_scan(c.llbs.data(), c.lbs.data(), n,
                                            ascending),
                    want)
              << util::simd::to_string(p) << " n=" << n << " asc=" << ascending
              << " round=" << round;
      }
    }
  }
}

TEST(KernelsFuzzTest, MergeOutputBytesMatchScalarEverywhere) {
  const auto paths = testable_paths();
  const auto& scalar = detail::scalar_table();
  util::Rng rng(0x4242u);
  for (const std::size_t la : kSizes) {
    for (const std::size_t lb : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                 std::size_t{4}, std::size_t{7}, std::size_t{16},
                                 std::size_t{33}, la}) {
      for (const bool ascending : {true, false}) {
        // Duplicate-heavy so stability differences would be *observable* if
        // keys carried identity — they do not, which is exactly why the
        // bitonic-network merge can be byte-identical to std::merge.
        std::vector<Key> a = random_keys(rng, la, 8);
        std::vector<Key> b = random_keys(rng, lb, 8);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (!ascending) {
          std::reverse(a.begin(), a.end());
          std::reverse(b.begin(), b.end());
        }
        std::vector<Key> want(la + lb);
        scalar.merge(a.data(), la, b.data(), lb, ascending, want.data());
        for (const Path p : paths) {
          std::vector<Key> got(la + lb, Key{-777});
          table_for(p).merge(a.data(), la, b.data(), lb, ascending, got.data());
          ASSERT_EQ(got, want) << util::simd::to_string(p) << " la=" << la
                               << " lb=" << lb << " asc=" << ascending;
        }
      }
    }
  }
}

TEST(KernelsFuzzTest, IncludesMatchesScalarEverywhere) {
  const auto paths = testable_paths();
  const auto& scalar = detail::scalar_table();
  util::Rng rng(0x1cebeefu);
  for (const std::size_t ls : kSizes) {
    for (const bool ascending : {true, false}) {
      for (int round = 0; round < 30; ++round) {
        std::vector<Key> super = random_keys(rng, ls, 16);
        std::sort(super.begin(), super.end());
        // sub: a true sub-multiset, or a perturbed one (wrong value or excess
        // multiplicity).
        std::vector<Key> sub;
        for (const Key k : super)
          if (rng.next_u64() % 3 == 0) sub.push_back(k);
        if (round % 2 == 1 && !sub.empty()) {
          sub[rng.next_u64() % sub.size()] += 1;
          std::sort(sub.begin(), sub.end());
        }
        if (!ascending) {
          std::reverse(super.begin(), super.end());
          std::reverse(sub.begin(), sub.end());
        }
        const bool want = scalar.includes(super.data(), ls, sub.data(),
                                          sub.size(), ascending);
        for (const Path p : paths)
          ASSERT_EQ(table_for(p).includes(super.data(), ls, sub.data(),
                                          sub.size(), ascending),
                    want)
              << util::simd::to_string(p) << " ls=" << ls;
      }
    }
  }
}

// The public dispatch layer: force_path redirects table(), unavailable paths
// throw, and the env-driven default resolves to a supported path.
TEST(KernelsFuzzTest, DispatchControlForcesAndRejects) {
  const Path original = active_path();
  for (const Path p : testable_paths()) {
    force_path(p);
    EXPECT_EQ(active_path(), p);
    EXPECT_EQ(&table(), &table_for(p));
  }
  for (const Path p : {Path::kAvx2, Path::kNeon})
    if (!util::simd::supported(p)) EXPECT_THROW(force_path(p), std::runtime_error);
  force_path(original);
  EXPECT_TRUE(util::simd::supported(active_path()));
}

}  // namespace
}  // namespace aoft::sort::kernels
