// Mutation fuzzing of the constraint predicate.
//
// bit_compare is the last line of defence, so it must be *complete* for the
// states the protocol can reach: accept exactly the valid (LLBS, LBS) pairs
// and reject every corruption of LBS.  We check it against an executable
// specification (naive bitonicity + multiset equality via sorting) over
// hundreds of randomized instances and single-element mutations —
// equivalence, not just spot checks.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/predicates.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

struct Instance {
  std::vector<Key> llbs;  // full outer window, bitonic inner halves
  std::vector<Key> lbs;   // full outer window, sorted halves
  cube::Subcube outer;
  cube::Subcube inner;    // lower or upper half of outer
  bool inner_ascending;
};

// Build a valid stage-end instance over a window of 2^(i+1) keys: lbs has
// the lower dim-i half ascending and the upper descending; llbs holds, over
// the inner half, a bitonic (evens-up, odds-down) permutation of the same
// keys; the node under test sits in the lower or upper half.
Instance make_valid(int i, bool lower_half, util::Rng& rng, std::int64_t alphabet) {
  const std::size_t n = std::size_t{1} << (i + 1);
  const std::size_t half = n / 2;
  std::vector<Key> keys(n);
  for (auto& k : keys)
    k = alphabet == 0 ? rng.next_in(-1000, 1000) : rng.next_in(0, alphabet - 1);
  std::sort(keys.begin(), keys.end());

  Instance inst;
  inst.outer = cube::Subcube{0, static_cast<cube::NodeId>(n - 1), i + 1};
  inst.lbs.resize(n);
  for (std::size_t k = 0; k < half; ++k) inst.lbs[k] = keys[k];          // asc
  for (std::size_t k = 0; k < half; ++k) inst.lbs[half + k] = keys[n - 1 - k];

  // llbs: per outer half, a bitonic-halves permutation of that half's keys —
  // even-ranked values ascending, then odd-ranked values descending.
  inst.llbs.resize(n);
  auto fill_half = [&](std::size_t lo, std::vector<Key> vals) {
    std::sort(vals.begin(), vals.end());
    std::vector<Key> evens, odds;
    for (std::size_t k = 0; k < vals.size(); ++k)
      (k % 2 == 0 ? evens : odds).push_back(vals[k]);
    std::size_t idx = lo;
    for (auto v : evens) inst.llbs[idx++] = v;
    for (auto it = odds.rbegin(); it != odds.rend(); ++it) inst.llbs[idx++] = *it;
  };
  fill_half(0, std::vector<Key>(inst.lbs.begin(),
                                inst.lbs.begin() + static_cast<std::ptrdiff_t>(half)));
  fill_half(half,
            std::vector<Key>(inst.lbs.begin() + static_cast<std::ptrdiff_t>(half),
                             inst.lbs.end()));

  inst.inner = lower_half ? inst.outer.lower_half() : inst.outer.upper_half();
  inst.inner_ascending = lower_half;
  return inst;
}

// Executable specification of what bit_compare must accept.
bool spec_accepts(const Instance& inst) {
  const std::size_t n = inst.lbs.size();
  const std::size_t half = n / 2;
  if (!is_non_decreasing(std::span<const Key>(inst.lbs).subspan(0, half)))
    return false;
  if (!is_non_increasing(std::span<const Key>(inst.lbs).subspan(half)))
    return false;
  const std::size_t lo = inst.inner.start;
  const std::size_t sz = inst.inner.size();
  return is_permutation_of(std::span<const Key>(inst.lbs).subspan(lo, sz),
                           std::span<const Key>(inst.llbs).subspan(lo, sz));
}

bool predicate_accepts(const Instance& inst) {
  return !bit_compare(inst.llbs, inst.lbs, inst.outer, inst.inner,
                      inst.inner_ascending, /*final_stage=*/false, 1)
              .has_value();
}

TEST(PredicatesFuzzTest, ValidInstancesAlwaysAccepted) {
  util::Rng rng(101);
  for (int rep = 0; rep < 300; ++rep) {
    const int i = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t alphabet = rng.next_bool() ? 0 : rng.next_in(1, 6);
    const auto inst = make_valid(i, rng.next_bool(), rng, alphabet);
    ASSERT_TRUE(spec_accepts(inst)) << "broken generator, rep=" << rep;
    EXPECT_TRUE(predicate_accepts(inst)) << "false alarm, rep=" << rep;
  }
}

TEST(PredicatesFuzzTest, LbsMutationsMatchTheSpecExactly) {
  // Mutate one LBS element to a fresh value; the predicate must agree with
  // the specification on every instance (usually reject; accepting is only
  // allowed if the spec still accepts, e.g. the mutation hit the half the
  // inner check does not cover while preserving sortedness).
  util::Rng rng(202);
  int rejected = 0, accepted = 0;
  for (int rep = 0; rep < 500; ++rep) {
    const int i = 1 + static_cast<int>(rng.next_below(3));
    auto inst = make_valid(i, rng.next_bool(), rng, 0);
    const std::size_t pos = rng.next_below(inst.lbs.size());
    inst.lbs[pos] += rng.next_bool() ? rng.next_in(1, 50) : rng.next_in(-50, -1);
    const bool spec = spec_accepts(inst);
    const bool pred = predicate_accepts(inst);
    EXPECT_EQ(pred, spec) << "rep=" << rep << " pos=" << pos;
    spec ? ++accepted : ++rejected;
  }
  // Mutations inside the inner window always break the multiset; those in
  // the other half only get caught here when they break sortedness — the
  // *partner's* Φ_F covers that half.  Both outcomes must occur in bulk.
  EXPECT_GT(rejected, 200);
  EXPECT_GT(accepted, 100);
}

TEST(PredicatesFuzzTest, LbsSwapsMatchTheSpecExactly) {
  // Swapping two distinct values preserves the multiset, so only the
  // sortedness component can convict — the spec captures exactly when.
  util::Rng rng(303);
  for (int rep = 0; rep < 500; ++rep) {
    const int i = 1 + static_cast<int>(rng.next_below(3));
    auto inst = make_valid(i, rng.next_bool(), rng, 0);
    const std::size_t a = rng.next_below(inst.lbs.size());
    const std::size_t b = rng.next_below(inst.lbs.size());
    std::swap(inst.lbs[a], inst.lbs[b]);
    EXPECT_EQ(predicate_accepts(inst), spec_accepts(inst))
        << "rep=" << rep << " a=" << a << " b=" << b;
  }
}

TEST(PredicatesFuzzTest, LlbsTamperingIsAlwaysRejected) {
  // Changing a covered LLBS element to a fresh value breaks the multiset
  // equality over the inner window; Φ_F must reject no matter what shape the
  // tampering produced.
  util::Rng rng(404);
  for (int rep = 0; rep < 300; ++rep) {
    const int i = 1 + static_cast<int>(rng.next_below(3));
    auto inst = make_valid(i, rng.next_bool(), rng, 0);
    const std::size_t pos =
        inst.inner.start + rng.next_below(inst.inner.size());
    inst.llbs[pos] += 7001;  // outside the generator's value range
    EXPECT_FALSE(predicate_accepts(inst)) << "rep=" << rep << " pos=" << pos;
  }
}

}  // namespace
}  // namespace aoft::sort
