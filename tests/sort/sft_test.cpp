// S_FT unit tests: fault-free correctness across dimensions, block sizes and
// key distributions; alarm-freedom; the paper's Figure-5 input; cost sanity.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

std::vector<Key> sorted_copy(std::span<const Key> v) {
  std::vector<Key> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  return s;
}

TEST(SftTest, SortsFigure5Example) {
  // The paper's worked example (Fig. 5): n = 3, list {10,8,3,9,4,2,7,5}.
  const std::vector<Key> input{10, 8, 3, 9, 4, 2, 7, 5};
  auto run = run_sft(3, input);
  EXPECT_TRUE(run.errors.empty());
  EXPECT_EQ(run.output, (std::vector<Key>{2, 3, 4, 5, 7, 8, 9, 10}));
  EXPECT_EQ(classify(run, input), Outcome::kCorrect);
}

TEST(SftTest, SortsAllDimensionsFaultFree) {
  for (int dim = 0; dim <= 7; ++dim) {
    auto input = util::random_keys(42 + static_cast<std::uint64_t>(dim),
                                   std::size_t{1} << dim);
    auto run = run_sft(dim, input);
    ASSERT_TRUE(run.errors.empty()) << "dim=" << dim << " first error: "
                                    << run.errors.front().detail;
    EXPECT_EQ(run.output, sorted_copy(input)) << "dim=" << dim;
  }
}

TEST(SftTest, SortsWithDuplicateKeys) {
  for (int dim = 1; dim <= 6; ++dim) {
    auto input = util::random_keys_small_alphabet(
        7 + static_cast<std::uint64_t>(dim), std::size_t{1} << dim, 4);
    auto run = run_sft(dim, input);
    ASSERT_TRUE(run.errors.empty()) << "dim=" << dim;
    EXPECT_EQ(run.output, sorted_copy(input)) << "dim=" << dim;
  }
}

TEST(SftTest, SortsBlocks) {
  for (std::size_t m : {2u, 5u, 16u}) {
    SftOptions opts;
    opts.block = m;
    const int dim = 4;
    auto input = util::random_keys(m, (std::size_t{1} << dim) * m);
    auto run = run_sft(dim, input, opts);
    ASSERT_TRUE(run.errors.empty()) << "m=" << m;
    EXPECT_EQ(run.output, sorted_copy(input)) << "m=" << m;
  }
}

TEST(SftTest, AlreadySortedAndReversedInputs) {
  const int dim = 5;
  const std::size_t n = std::size_t{1} << dim;
  std::vector<Key> asc(n), desc(n), constant(n, 7);
  for (std::size_t i = 0; i < n; ++i) {
    asc[i] = static_cast<Key>(i);
    desc[i] = static_cast<Key>(n - i);
  }
  for (const auto& input : {asc, desc, constant}) {
    auto run = run_sft(dim, input);
    ASSERT_TRUE(run.errors.empty());
    EXPECT_EQ(run.output, sorted_copy(input));
  }
}

TEST(SftTest, NoWatchdogInFaultFreeRun) {
  auto input = util::random_keys(3, 64);
  auto run = run_sft(6, input);
  EXPECT_EQ(run.summary.watchdog_rounds, 0);
  EXPECT_TRUE(run.errors.empty());
}

}  // namespace
}  // namespace aoft::sort
