// Fault detection in the block (m keys per node) variant: corruption at the
// granularity of single words inside blocks, which exercises the
// word-by-word comparisons the scaled predicates perform.

#include <gtest/gtest.h>

#include "fault/adversary.h"
#include "sort/sft.h"
#include "util/rng.h"

namespace aoft::sort {
namespace {

constexpr std::size_t kM = 4;
constexpr int kDim = 3;

std::vector<Key> block_input(std::uint64_t seed) {
  return util::random_keys(seed, (std::size_t{1} << kDim) * kM);
}

// Corrupt exactly one word of the data operand at one exchange.
fault::Mutator corrupt_one_word(cube::NodeId faulty, fault::StagePoint at,
                                std::size_t word, Key delta) {
  return [=](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != faulty || m.stage != at.stage || m.iter != at.iter ||
        m.data.size() <= word)
      return fault::Action::kPass;
    m.data[word] += delta;
    return fault::Action::kMutated;
  };
}

TEST(SftBlockFaultTest, SingleWordOperandCorruptionDetected) {
  // Corrupt words of the reply's *second* half — the half the passive
  // partner adopts as its new block.  (Corrupting the first half touches
  // only the redundant checking copy: the active node already kept its half
  // locally, so a wire glitch there that happens to preserve sortedness is
  // genuinely harmless and may be masked.)
  for (std::size_t word : {kM, 2 * kM - 1}) {
    fault::Adversary a;
    a.add(corrupt_one_word(5, {1, 1}, word, 1000001));
    SftOptions opts;
    opts.block = kM;
    opts.interceptor = &a;
    auto in = block_input(1);
    auto run = run_sft(kDim, in, opts);
    EXPECT_EQ(classify(run, in), Outcome::kFailStop) << "word=" << word;
  }
}

TEST(SftBlockFaultTest, CheckingCopyGlitchNeverProducesWrongOutput) {
  // The complementary property for first-half corruption: whatever the
  // glitch does to the redundant copy, the run ends correct or fail-stop.
  for (std::size_t word = 0; word < kM; ++word) {
    fault::Adversary a;
    a.add(corrupt_one_word(5, {1, 1}, word, -999983));
    SftOptions opts;
    opts.block = kM;
    opts.interceptor = &a;
    auto in = block_input(7 + word);
    auto run = run_sft(kDim, in, opts);
    EXPECT_NE(classify(run, in), Outcome::kSilentWrong) << "word=" << word;
  }
}

TEST(SftBlockFaultTest, MiddleWordOfGossipBlockDetected) {
  // Corrupt the 3rd word of node 2's own gossiped block: the Φ_C merge
  // compares all m words, so a single interior word must convict.
  fault::Adversary a;
  a.add([](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != 2 || m.stage != 1 || m.lbs.size() < 3 * kM)
      return fault::Action::kPass;
    // Node 2's entry in its stage-1 window [0..3] sits at slice offset 2*kM.
    m.lbs[2 * kM + 2] += 77777;
    return fault::Action::kMutated;
  });
  SftOptions opts;
  opts.block = kM;
  opts.interceptor = &a;
  auto in = block_input(2);
  auto run = run_sft(kDim, in, opts);
  EXPECT_EQ(classify(run, in), Outcome::kFailStop);
}

TEST(SftBlockFaultTest, SubstitutionInsideBlockDetected) {
  SftOptions opts;
  opts.block = kM;
  opts.node_faults[6].substitute_at = fault::StagePoint{1, 0};
  opts.node_faults[6].substitute_value = -123456789;
  auto in = block_input(3);
  auto run = run_sft(kDim, in, opts);
  EXPECT_EQ(classify(run, in), Outcome::kFailStop);
}

TEST(SftBlockFaultTest, InvertedMergeSplitDetectedImmediately) {
  // With m > 1 an inverted merge direction yields a block sorted the wrong
  // way, which the operand sortedness assertion catches on arrival.
  SftOptions opts;
  opts.block = kM;
  opts.node_faults[3].invert_direction_from = fault::StagePoint{1, 1};
  auto in = block_input(4);
  auto run = run_sft(kDim, in, opts);
  ASSERT_EQ(classify(run, in), Outcome::kFailStop);
  EXPECT_LE(run.errors.front().stage, 1);
}

TEST(SftBlockFaultTest, TwoFacedBlockGossipDetected) {
  fault::Adversary a;
  a.add(fault::two_faced_gossip(2, {2, 0}, /*entry=*/3, 555, kM,
                                [](cube::NodeId d) { return (d & 1u) == 1u; }));
  SftOptions opts;
  opts.block = kM;
  opts.interceptor = &a;
  auto in = block_input(5);
  auto run = run_sft(kDim, in, opts);
  EXPECT_EQ(classify(run, in), Outcome::kFailStop);
}

TEST(SftBlockFaultTest, TruncatedBlockDetected) {
  // A Byzantine sender ships a short operand block (node 3 is the passive
  // sender at stage 1, iteration 1): malformed-operand assertion.
  fault::Adversary a;
  a.add([](cube::NodeId from, cube::NodeId, sim::Message& m) {
    if (from != 3 || m.stage != 1 || m.iter != 1 || m.data.size() != kM)
      return fault::Action::kPass;
    m.data.pop_back();
    return fault::Action::kMutated;
  });
  SftOptions opts;
  opts.block = kM;
  opts.interceptor = &a;
  auto in = block_input(6);
  auto run = run_sft(kDim, in, opts);
  EXPECT_EQ(classify(run, in), Outcome::kFailStop);
}

}  // namespace
}  // namespace aoft::sort
