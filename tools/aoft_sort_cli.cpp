// aoft-sort command-line driver.
//
// Run any of the four sorting algorithms on a simulated hypercube with
// optional fault injection, from the shell:
//
//   aoft_sort_cli --algo=sft --dim=5 --block=4 --seed=7
//   aoft_sort_cli --algo=snr --dim=4 --halt=3@1:0
//   aoft_sort_cli --algo=sft --dim=4 --invert=5@1:1 --diagnose
//   aoft_sort_cli --algo=sft --dim=4 --two-faced=2@2:0 --diagnose
//   aoft_sort_cli --algo=sft --dim=4 --halt=9@2:0 --recover=ladder
//   aoft_sort_cli --algo=sft --dim=4 --halt=9@2:0 --transient --recover=rollback
//
// Prints the outcome, timing summary and (with --diagnose) the host-side
// fault localization.  With --recover the run goes through the recovery
// supervisor (fault/supervisor.h) and every escalation-ladder attempt is
// printed; --transient confines the injected fault to the first attempt.
// Exit status: 0 = correct, 2 = fail-stop detected, 3 = silent wrong (only
// reachable with --algo=snr under faults).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/adversary.h"
#include "fault/localization.h"
#include "fault/supervisor.h"
#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"

namespace {

using namespace aoft;

struct Args {
  std::string algo = "sft";
  int dim = 4;
  std::size_t block = 1;
  std::uint64_t seed = 1;
  bool diagnose = false;
  bool quiet = false;
  std::string recover = "off";  // off|restart|rollback|ladder
  bool transient = false;       // injected faults hit attempt 0 only
  // fault specs "node@stage:iter"
  bool has_halt = false, has_invert = false, has_two_faced = false;
  cube::NodeId fault_node = 0;
  fault::StagePoint fault_point{};
};

bool parse_point(const char* s, cube::NodeId& node, fault::StagePoint& p) {
  unsigned n = 0;
  int stage = 0, iter = 0;
  if (std::sscanf(s, "%u@%d:%d", &n, &stage, &iter) != 3) return false;
  node = n;
  p = {stage, iter};
  return true;
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return a.size() > std::strlen(prefix) ? a.c_str() + std::strlen(prefix)
                                            : "";
    };
    if (a.rfind("--algo=", 0) == 0) {
      args.algo = value("--algo=");
    } else if (a.rfind("--dim=", 0) == 0) {
      args.dim = std::atoi(value("--dim="));
    } else if (a.rfind("--block=", 0) == 0) {
      args.block = static_cast<std::size_t>(std::atoll(value("--block=")));
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(value("--seed=")));
    } else if (a.rfind("--halt=", 0) == 0) {
      args.has_halt = parse_point(value("--halt="), args.fault_node, args.fault_point);
      if (!args.has_halt) return false;
    } else if (a.rfind("--invert=", 0) == 0) {
      args.has_invert =
          parse_point(value("--invert="), args.fault_node, args.fault_point);
      if (!args.has_invert) return false;
    } else if (a.rfind("--two-faced=", 0) == 0) {
      args.has_two_faced =
          parse_point(value("--two-faced="), args.fault_node, args.fault_point);
      if (!args.has_two_faced) return false;
    } else if (a.rfind("--recover=", 0) == 0) {
      args.recover = value("--recover=");
    } else if (a == "--transient") {
      args.transient = true;
    } else if (a == "--diagnose") {
      args.diagnose = true;
    } else if (a == "--quiet") {
      args.quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  if (args.dim < 0 || args.dim > 14) {
    std::fprintf(stderr, "--dim must be in [0, 14]\n");
    return false;
  }
  if (args.block == 0) {
    std::fprintf(stderr, "--block must be >= 1\n");
    return false;
  }
  if (args.algo != "sft" && args.algo != "snr" && args.algo != "host" &&
      args.algo != "host-verified") {
    std::fprintf(stderr, "--algo must be sft|snr|host|host-verified\n");
    return false;
  }
  if (args.recover != "off" && args.recover != "restart" &&
      args.recover != "rollback" && args.recover != "ladder") {
    std::fprintf(stderr, "--recover must be off|restart|rollback|ladder\n");
    return false;
  }
  if (args.recover != "off" && args.algo != "sft") {
    std::fprintf(stderr, "--recover requires --algo=sft\n");
    return false;
  }
  return true;
}

fault::RecoveryPolicy recovery_policy(const std::string& name) {
  fault::RecoveryPolicy p;  // "ladder": every rung enabled
  if (name == "restart") {
    p = fault::RecoveryPolicy::full_restart(3);
  } else if (name == "rollback") {
    p.reconfigure = false;
    p.host_fallback = false;
    p.max_attempts = 3;
    p.attempts_per_config = 3;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--algo=sft|snr|host|host-verified] [--dim=N]\n"
                 "          [--block=M] [--seed=S] [--halt=node@stage:iter]\n"
                 "          [--invert=node@stage:iter] [--two-faced=node@stage:iter]\n"
                 "          [--recover=off|restart|rollback|ladder] [--transient]\n"
                 "          [--diagnose] [--quiet]\n",
                 argv[0]);
    return 1;
  }

  const auto input = util::random_keys(
      args.seed, (std::size_t{1} << args.dim) * args.block);

  fault::NodeFaultMap node_faults;
  if (args.has_halt) node_faults[args.fault_node].halt_at = args.fault_point;
  if (args.has_invert)
    node_faults[args.fault_node].invert_direction_from = args.fault_point;
  fault::Adversary adversary;
  if (args.has_two_faced)
    adversary.add(fault::two_faced_gossip(
        args.fault_node, args.fault_point, args.fault_node ^ 1u, 4097,
        args.block, [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
  sim::LinkInterceptor* interceptor = args.has_two_faced ? &adversary : nullptr;

  if (args.recover != "off") {
    sort::SftOptions base;
    base.block = args.block;
    const auto run = fault::run_supervised_sort(
        args.dim, input, base, recovery_policy(args.recover),
        [&](int attempt) -> sim::LinkInterceptor* {
          if (!args.has_two_faced) return nullptr;
          return (args.transient && attempt > 0) ? nullptr : &adversary;
        },
        [&](int attempt) -> fault::NodeFaultMap {
          return (args.transient && attempt > 0) ? fault::NodeFaultMap{}
                                                 : node_faults;
        });
    const auto outcome = run.outcome;
    if (!args.quiet) {
      std::printf("algo=sft(recover=%s) nodes=%u keys=%zu outcome=%s\n",
                  args.recover.c_str(), 1u << args.dim, input.size(),
                  sort::to_string(outcome));
      for (const auto& ev : run.events) {
        std::printf("attempt %d: rung=%-9s dim=%d block=%zu resume=%d "
                    "outcome=%s ticks=%.1f",
                    ev.attempt, fault::to_string(ev.rung), ev.config_dim,
                    ev.block, ev.resume_stage, sort::to_string(ev.outcome),
                    ev.ticks);
        if (!ev.suspects.empty()) {
          std::printf("  suspects =");
          for (auto s : ev.suspects) std::printf(" %u", s);
          if (ev.link_suspected) std::printf(" (link)");
        }
        std::printf("\n");
      }
      if (!run.retired.empty()) {
        std::printf("retired:");
        for (auto s : run.retired) std::printf(" %u", s);
        std::printf("\n");
      }
      std::printf("attempts=%d final-rung=%s recovered=%s salvaged-stages=%d "
                  "total=%.1f ticks\n",
                  run.attempts, fault::to_string(run.final_rung),
                  run.recovered ? "yes" : "no", run.stages_salvaged,
                  run.total_ticks);
    }
    switch (outcome) {
      case sort::Outcome::kCorrect: return 0;
      case sort::Outcome::kFailStop: return 2;
      case sort::Outcome::kSilentWrong: return 3;
    }
    return 1;
  }

  sort::SortRun run;
  if (args.algo == "sft") {
    sort::SftOptions opts;
    opts.block = args.block;
    opts.node_faults = node_faults;
    opts.interceptor = interceptor;
    run = sort::run_sft(args.dim, input, opts);
  } else if (args.algo == "snr") {
    sort::SnrOptions opts;
    opts.block = args.block;
    opts.node_faults = node_faults;
    opts.interceptor = interceptor;
    run = sort::run_snr(args.dim, input, opts);
  } else if (args.algo == "host") {
    sort::HostSortOptions opts;
    opts.block = args.block;
    run = sort::run_host_sort(args.dim, input, opts);
  } else {
    sort::HostVerifyOptions opts;
    opts.block = args.block;
    opts.node_faults = node_faults;
    opts.interceptor = interceptor;
    run = sort::run_host_verified_snr(args.dim, input, opts);
  }

  const auto outcome = sort::classify(run, input);
  if (!args.quiet) {
    std::printf("algo=%s nodes=%u keys=%zu outcome=%s\n", args.algo.c_str(),
                1u << args.dim, input.size(), sort::to_string(outcome));
    std::printf("elapsed=%.1f ticks  comm(max/node)=%.1f  comp(max/node)=%.1f  "
                "msgs=%llu  words=%llu\n",
                run.summary.elapsed, run.summary.max_comm, run.summary.max_comp,
                static_cast<unsigned long long>(run.summary.total_msgs),
                static_cast<unsigned long long>(run.summary.total_words));
    for (const auto& e : run.errors)
      std::printf("error: node %u stage %d iter %d %s: %s\n", e.node, e.stage,
                  e.iter, sim::to_string(e.source), e.detail.c_str());
    if (args.diagnose && !run.errors.empty()) {
      const auto d = fault::localize(run.errors, args.dim);
      std::printf("diagnosis: suspects =");
      for (auto s : d.suspects) std::printf(" %u", s);
      std::printf("%s%s\n", d.conclusive ? " (conclusive)" : "",
                  d.link_suspected ? " (link fault suspected)" : "");
    }
  }
  switch (outcome) {
    case sort::Outcome::kCorrect: return 0;
    case sort::Outcome::kFailStop: return 2;
    case sort::Outcome::kSilentWrong: return 3;
  }
  return 1;
}
