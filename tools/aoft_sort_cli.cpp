// aoft-sort command-line driver.
//
// Run any of the four sorting algorithms on a simulated hypercube with
// optional fault injection, from the shell:
//
//   aoft_sort_cli --algo=sft --dim=5 --block=4 --seed=7
//   aoft_sort_cli --algo=snr --dim=4 --halt=3@1:0
//   aoft_sort_cli --algo=sft --dim=4 --invert=5@1:1 --diagnose
//   aoft_sort_cli --algo=sft --dim=4 --two-faced=2@2:0 --diagnose
//   aoft_sort_cli --algo=sft --dim=4 --halt=9@2:0 --recover=ladder
//   aoft_sort_cli --algo=sft --dim=4 --halt=9@2:0 --transient --recover=rollback
//   aoft_sort_cli --algo=sft --dim=3 --transport=shm
//   aoft_sort_cli --algo=sft --dim=3 --transport=shm --kill=2@1:0 --recover=ladder
//   aoft_sort_cli --algo=sft --dim=3 --transport=tcp --wedge=2@1:0 --recover=ladder
//   aoft_sort_cli --campaign --dim=4 --runs=40 --jobs=0 --seed=1989
//   aoft_sort_cli --campaign --multi=3 --jobs=2
//   aoft_sort_cli --campaign --jobs=0 --pin=compact
//
// --transport picks the fabric (docs/PROTOCOL.md §11): sim (default) is the
// deterministic in-process simulator, shm runs one OS process per node over
// shared-memory rings, tcp runs one OS process per node over framed loopback
// or LAN sockets (docs/PROTOCOL.md §13; both multi-process fabrics are
// sft/snr only, dim <= 8, no --campaign).  --node-bin spawns nodes by
// exec'ing tools/aoft_node instead of forking; --timeout overrides the
// receive-timeout backstop; --hosts=FILE (tcp only) pins nodes to machines
// the operator launches aoft_node on by hand.  --kill=node@stage:iter
// escalates a halt fault to real process death (SIGKILL under shm/tcp,
// graceful halt under sim — identical fail-stop verdicts either way, which
// is the oracle contract).  --wedge=node@stage:iter instead SIGSTOPs the
// node: it neither speaks nor exits, which only the tcp heartbeat watchdog
// (or the sim, degrading it to a graceful halt) can tell apart from a slow
// peer — the shm parent's waitpid authority cannot, so --wedge rejects
// --transport=shm.  --emit-run writes a canonical aoft-run-v1 JSON record
// of the run (parameters, outcome, sorted error tuples, output checksum);
// bench_check --cross-check compares two of them across transports.
// --trace-links writes the run's per-message link events as a canonically
// sorted JSONL trace for trace_inspect --diff.
//
// Prints the outcome, timing summary and (with --diagnose) the host-side
// fault localization.  With --recover the run goes through the recovery
// supervisor (fault/supervisor.h) and every escalation-ladder attempt is
// printed; --transient confines the injected fault to the first attempt.
// Exit status: 0 = correct, 2 = fail-stop detected, 3 = silent wrong (only
// reachable with --algo=snr under faults).
//
// --campaign runs the §4 fault-injection campaign instead of a single sort:
// --runs scenarios per adversary class, fanned out over --jobs worker
// threads (0 = one per hardware thread; results are bit-identical for every
// job count), plus an optional --multi=K simultaneous-fault sweep.
// --pin=none|compact|scatter|CPULIST places those workers on cores/NUMA
// nodes (util/topology.h) — wall-clock only, results and traces stay
// bit-identical across policies.  Exit status 0 iff every S_FT tally has
// silent_wrong == 0 (Theorem 3).
//
// Campaign durability (docs/PROTOCOL.md §10):
//   --checkpoint=PATH persists a crash-safe slots-completed checkpoint;
//   --resume skips the slots it records (a resumed campaign's summary and
//   stream are bit-identical to an uninterrupted run's); --resume=
//   force-restart discards an unusable checkpoint and starts clean.  A
//   corrupted or mismatched checkpoint exits with status 4 and a specific
//   diagnosis.  --stream=PATH emits one canonical JSONL record per slot
//   while the campaign runs; --shard=i/N sweeps only slots g with
//   g % N == i (fold shards back with tools/campaign_merge).
//   --mode=independent:P / --mode=runlength:K replace the scripted
//   single-fault sweep with probabilistic soak slots (fault_spec.h); the
//   Theorem 3 gate then applies to silent-wrongs within the <= n-1 bound.
//   --multi sweeps are never checkpointed — they rerun on resume.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>

#include "fault/adversary.h"
#include "obs/sink.h"
#include "obs/json.h"
#include "obs/trace_io.h"
#include "fault/campaign.h"
#include "fault/campaign_store.h"
#include "fault/localization.h"
#include "fault/supervisor.h"
#include "sort/kernels.h"
#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "transport/backend.h"
#include "transport/shm_segment.h"
#include "util/atomic_file.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/topology.h"

namespace {

using namespace aoft;

struct Args {
  std::string algo = "sft";
  int dim = 4;
  std::size_t block = 1;
  std::uint64_t seed = 1;
  bool diagnose = false;
  bool quiet = false;
  std::string recover = "off";  // off|restart|rollback|ladder
  bool transient = false;       // injected faults hit attempt 0 only
  std::string trace;            // structured run trace output path
                                // (.json = Chrome trace_event, else JSONL)
  // campaign mode
  bool campaign = false;
  int jobs = 1;      // campaign worker threads; 0 = hardware concurrency
  int runs = 25;     // exercised scenarios per fault class
  int batch = 1;     // consecutive scenarios per worker claim (cache-hot runs)
  int multi_k = 0;   // if > 0, also sweep 1..K simultaneous faults
  std::string simd;  // force a kernel dispatch path (scalar|avx2|neon|auto)
  bool has_pin = false;
  util::PlacementPolicy pin;  // worker placement (campaign mode only)
  // campaign durability (docs/PROTOCOL.md §10)
  std::string checkpoint;      // --checkpoint=PATH
  bool resume = false;         // --resume[=force-restart]
  bool force_restart = false;
  std::string stream;          // --stream=PATH (per-slot JSONL)
  int shard_index = 0;         // --shard=i/N
  int shard_count = 1;
  int checkpoint_every = 1;    // --checkpoint-every=N
  int stop_after = 0;          // --stop-after=N (kill-point simulation)
  fault::InjectionPolicy injection;  // --mode=scripted|independent:P|runlength:K
  // transport (docs/PROTOCOL.md §11, §13)
  transport::Backend backend = transport::Backend::kSim;
  std::string node_bin;      // --node-bin=PATH (shm/tcp exec mode)
  double shm_timeout = 0.0;  // --timeout=SECONDS (recv backstop; 0 = default)
  std::string hosts_file;    // --hosts=FILE (tcp: pin nodes to machines)
  std::string emit_run;      // --emit-run=PATH (aoft-run-v1 record)
  std::string trace_links;   // --trace-links=PATH (canonical kLink trace)
  // fault specs "node@stage:iter"
  bool has_halt = false, has_invert = false, has_two_faced = false;
  bool has_kill = false;   // --kill: halt escalated to process death
  bool has_wedge = false;  // --wedge: halt escalated to SIGSTOP (wedged peer)
  cube::NodeId fault_node = 0;
  fault::StagePoint fault_point{};
};

bool parse_point(const char* s, cube::NodeId& node, fault::StagePoint& p) {
  unsigned n = 0;
  int stage = 0, iter = 0;
  if (std::sscanf(s, "%u@%d:%d", &n, &stage, &iter) != 3) return false;
  node = n;
  p = {stage, iter};
  return true;
}

// Checked numeric flag values (util/flags.h): the old atoi parsing silently
// turned "--dim=four" into 0 and "--seed=1e9" into 1 — every typo became a
// different, valid-looking run.  Any unparseable value now prints the flag
// and falls through to the usage error (exit 1).
bool checked_int(const char* flag, const char* v, int& out) {
  long long n = 0;
  if (!util::parse_i64(v, n) || n < INT_MIN || n > INT_MAX) {
    std::fprintf(stderr, "%s: bad value \"%s\" (want an integer)\n", flag, v);
    return false;
  }
  out = static_cast<int>(n);
  return true;
}

bool checked_u64(const char* flag, const char* v, std::uint64_t& out) {
  if (!util::parse_u64(v, out)) {
    std::fprintf(stderr, "%s: bad value \"%s\" (want a non-negative integer)\n",
                 flag, v);
    return false;
  }
  return true;
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return a.size() > std::strlen(prefix) ? a.c_str() + std::strlen(prefix)
                                            : "";
    };
    if (a.rfind("--algo=", 0) == 0) {
      args.algo = value("--algo=");
    } else if (a.rfind("--dim=", 0) == 0) {
      if (!checked_int("--dim", value("--dim="), args.dim)) return false;
    } else if (a.rfind("--block=", 0) == 0) {
      std::uint64_t block = 0;
      if (!checked_u64("--block", value("--block="), block)) return false;
      args.block = static_cast<std::size_t>(block);
    } else if (a.rfind("--seed=", 0) == 0) {
      if (!checked_u64("--seed", value("--seed="), args.seed)) return false;
    } else if (a.rfind("--halt=", 0) == 0) {
      args.has_halt = parse_point(value("--halt="), args.fault_node, args.fault_point);
      if (!args.has_halt) return false;
    } else if (a.rfind("--invert=", 0) == 0) {
      args.has_invert =
          parse_point(value("--invert="), args.fault_node, args.fault_point);
      if (!args.has_invert) return false;
    } else if (a.rfind("--two-faced=", 0) == 0) {
      args.has_two_faced =
          parse_point(value("--two-faced="), args.fault_node, args.fault_point);
      if (!args.has_two_faced) return false;
    } else if (a.rfind("--kill=", 0) == 0) {
      args.has_kill =
          parse_point(value("--kill="), args.fault_node, args.fault_point);
      if (!args.has_kill) return false;
    } else if (a.rfind("--wedge=", 0) == 0) {
      args.has_wedge =
          parse_point(value("--wedge="), args.fault_node, args.fault_point);
      if (!args.has_wedge) return false;
    } else if (a.rfind("--transport=", 0) == 0) {
      if (!transport::parse_backend(value("--transport="), args.backend)) {
        std::fprintf(stderr, "--transport must be sim|shm|tcp\n");
        return false;
      }
    } else if (a.rfind("--hosts=", 0) == 0) {
      args.hosts_file = value("--hosts=");
      if (args.hosts_file.empty()) {
        std::fprintf(stderr, "--hosts requires a path\n");
        return false;
      }
    } else if (a.rfind("--node-bin=", 0) == 0) {
      args.node_bin = value("--node-bin=");
      if (args.node_bin.empty()) {
        std::fprintf(stderr, "--node-bin requires a path\n");
        return false;
      }
    } else if (a.rfind("--timeout=", 0) == 0) {
      if (!util::parse_f64(value("--timeout="), args.shm_timeout) ||
          args.shm_timeout <= 0) {
        std::fprintf(stderr, "--timeout: bad value \"%s\" (want seconds > 0)\n",
                     value("--timeout="));
        return false;
      }
    } else if (a.rfind("--emit-run=", 0) == 0) {
      args.emit_run = value("--emit-run=");
      if (args.emit_run.empty()) {
        std::fprintf(stderr, "--emit-run requires a path\n");
        return false;
      }
    } else if (a.rfind("--trace-links=", 0) == 0) {
      args.trace_links = value("--trace-links=");
      if (args.trace_links.empty()) {
        std::fprintf(stderr, "--trace-links requires a path\n");
        return false;
      }
    } else if (a.rfind("--recover=", 0) == 0) {
      args.recover = value("--recover=");
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace = value("--trace=");
      if (args.trace.empty()) {
        std::fprintf(stderr, "--trace requires a path\n");
        return false;
      }
    } else if (a == "--campaign") {
      args.campaign = true;
    } else if (a.rfind("--jobs=", 0) == 0) {
      if (!checked_int("--jobs", value("--jobs="), args.jobs)) return false;
    } else if (a.rfind("--runs=", 0) == 0) {
      if (!checked_int("--runs", value("--runs="), args.runs)) return false;
    } else if (a.rfind("--batch=", 0) == 0) {
      if (!checked_int("--batch", value("--batch="), args.batch)) return false;
    } else if (a.rfind("--simd=", 0) == 0) {
      args.simd = value("--simd=");
    } else if (a.rfind("--multi=", 0) == 0) {
      if (!checked_int("--multi", value("--multi="), args.multi_k))
        return false;
    } else if (a.rfind("--checkpoint=", 0) == 0) {
      args.checkpoint = value("--checkpoint=");
      if (args.checkpoint.empty()) {
        std::fprintf(stderr, "--checkpoint requires a path\n");
        return false;
      }
    } else if (a == "--resume") {
      args.resume = true;
    } else if (a.rfind("--resume=", 0) == 0) {
      const std::string mode = value("--resume=");
      if (mode != "force-restart") {
        std::fprintf(stderr, "--resume takes no value, or =force-restart\n");
        return false;
      }
      args.resume = true;
      args.force_restart = true;
    } else if (a.rfind("--stream=", 0) == 0) {
      args.stream = value("--stream=");
      if (args.stream.empty()) {
        std::fprintf(stderr, "--stream requires a path\n");
        return false;
      }
    } else if (a.rfind("--shard=", 0) == 0) {
      if (std::sscanf(value("--shard="), "%d/%d", &args.shard_index,
                      &args.shard_count) != 2 ||
          args.shard_count < 1 || args.shard_index < 0 ||
          args.shard_index >= args.shard_count) {
        std::fprintf(stderr, "--shard must be i/N with 0 <= i < N\n");
        return false;
      }
    } else if (a.rfind("--checkpoint-every=", 0) == 0) {
      if (!checked_int("--checkpoint-every", value("--checkpoint-every="),
                       args.checkpoint_every))
        return false;
      if (args.checkpoint_every < 1) {
        std::fprintf(stderr, "--checkpoint-every must be >= 1\n");
        return false;
      }
    } else if (a.rfind("--stop-after=", 0) == 0) {
      if (!checked_int("--stop-after", value("--stop-after="),
                       args.stop_after))
        return false;
      if (args.stop_after < 1) {
        std::fprintf(stderr, "--stop-after must be >= 1\n");
        return false;
      }
    } else if (a.rfind("--mode=", 0) == 0) {
      const std::string mode = value("--mode=");
      if (mode == "scripted") {
        args.injection.mode = fault::InjectionMode::kScripted;
      } else if (mode.rfind("independent:", 0) == 0) {
        args.injection.mode = fault::InjectionMode::kIndependent;
        if (!util::parse_f64(mode.c_str() + 12, args.injection.p) ||
            !(args.injection.p > 0.0 && args.injection.p <= 1.0)) {
          std::fprintf(stderr, "--mode=independent:P needs 0 < P <= 1\n");
          return false;
        }
      } else if (mode.rfind("runlength:", 0) == 0) {
        long long k = 0;
        if (!util::parse_i64(mode.c_str() + 10, k) || k < 1) {
          std::fprintf(stderr, "--mode=runlength:K needs K >= 1\n");
          return false;
        }
        args.injection.mode = fault::InjectionMode::kRunLength;
        args.injection.k = static_cast<std::uint64_t>(k);
      } else {
        std::fprintf(stderr,
                     "--mode must be scripted|independent:P|runlength:K\n");
        return false;
      }
    } else if (a.rfind("--pin=", 0) == 0) {
      std::string perr;
      if (!util::PlacementPolicy::parse(value("--pin="), &args.pin, &perr)) {
        std::fprintf(stderr, "--pin: %s\n", perr.c_str());
        return false;
      }
      args.has_pin = true;
    } else if (a == "--transient") {
      args.transient = true;
    } else if (a == "--diagnose") {
      args.diagnose = true;
    } else if (a == "--quiet") {
      args.quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  if (args.dim < 0 || args.dim > 14) {
    std::fprintf(stderr, "--dim must be in [0, 14]\n");
    return false;
  }
  if (args.block == 0) {
    std::fprintf(stderr, "--block must be >= 1\n");
    return false;
  }
  if (args.algo != "sft" && args.algo != "snr" && args.algo != "host" &&
      args.algo != "host-verified") {
    std::fprintf(stderr, "--algo must be sft|snr|host|host-verified\n");
    return false;
  }
  if (args.recover != "off" && args.recover != "restart" &&
      args.recover != "rollback" && args.recover != "ladder") {
    std::fprintf(stderr, "--recover must be off|restart|rollback|ladder\n");
    return false;
  }
  if (args.recover != "off" && args.algo != "sft") {
    std::fprintf(stderr, "--recover requires --algo=sft\n");
    return false;
  }
  if (args.jobs < 0) {
    std::fprintf(stderr, "--jobs must be >= 0 (0 = hardware concurrency)\n");
    return false;
  }
  if (args.campaign && args.runs < 1) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    return false;
  }
  if (args.batch < 1) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return false;
  }
  if (args.multi_k < 0 || args.multi_k > (1 << args.dim)) {
    std::fprintf(stderr, "--multi must be in [0, 2^dim]\n");
    return false;
  }
  if (args.has_pin && !args.campaign) {
    std::fprintf(stderr, "--pin requires --campaign\n");
    return false;
  }
  if (!args.campaign &&
      (!args.checkpoint.empty() || args.resume || !args.stream.empty() ||
       args.shard_count != 1 || args.stop_after > 0 ||
       args.injection.mode != fault::InjectionMode::kScripted)) {
    std::fprintf(stderr,
                 "--checkpoint/--resume/--stream/--shard/--stop-after/--mode "
                 "require --campaign\n");
    return false;
  }
  if (args.resume && args.checkpoint.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=PATH\n");
    return false;
  }
  if (args.multi_k > 0 &&
      args.injection.mode != fault::InjectionMode::kScripted) {
    std::fprintf(stderr, "--multi requires --mode=scripted\n");
    return false;
  }
  const bool shm = args.backend == transport::Backend::kShm;
  const bool tcp = args.backend == transport::Backend::kTcp;
  if (shm || tcp) {
    const char* t = shm ? "shm" : "tcp";
    if (args.campaign) {
      std::fprintf(stderr, "--transport=%s does not support --campaign "
                           "(campaigns run on the in-process simulator)\n", t);
      return false;
    }
    if (args.algo != "sft" && args.algo != "snr") {
      std::fprintf(stderr, "--transport=%s requires --algo=sft|snr\n", t);
      return false;
    }
    if (args.dim > transport::kMaxProcessDim) {
      std::fprintf(stderr, "--transport=%s supports --dim up to %d\n", t,
                   transport::kMaxProcessDim);
      return false;
    }
    if (args.has_two_faced && !args.node_bin.empty()) {
      std::fprintf(stderr, "--two-faced needs the in-process interceptor: "
                           "use fork mode (drop --node-bin) or "
                           "--transport=sim\n");
      return false;
    }
  } else if (!args.node_bin.empty() || args.shm_timeout > 0) {
    std::fprintf(stderr, "--node-bin/--timeout require --transport=shm|tcp\n");
    return false;
  }
  if (!args.hosts_file.empty() && !tcp) {
    std::fprintf(stderr, "--hosts requires --transport=tcp\n");
    return false;
  }
  if (args.has_wedge && shm) {
    std::fprintf(stderr, "--wedge needs socket death detection: a stopped "
                         "child never exits, so the shm parent's waitpid "
                         "authority cannot see it — use --transport=tcp "
                         "(heartbeat watchdog) or sim (graceful halt)\n");
    return false;
  }
  if (args.has_kill && args.has_halt) {
    std::fprintf(stderr, "--kill already escalates --halt; give only one\n");
    return false;
  }
  if (args.has_wedge && (args.has_halt || args.has_kill)) {
    std::fprintf(stderr, "--wedge already escalates --halt and excludes "
                         "--kill; give only one\n");
    return false;
  }
  if (!args.trace_links.empty() &&
      (args.algo != "sft" || args.campaign || args.recover != "off")) {
    std::fprintf(stderr,
                 "--trace-links requires a single (non-campaign, "
                 "non-recover) --algo=sft run\n");
    return false;
  }
  if (!args.emit_run.empty() && args.campaign) {
    std::fprintf(stderr, "--emit-run requires a single or supervised run\n");
    return false;
  }
  return true;
}

// Serialize the collected trace and print the metrics digest.  Returns false
// (after printing the cause) when the trace file cannot be written.
bool finish_trace(const Args& args, const char* mode,
                  const obs::Tracer& tracer,
                  const obs::MetricsRegistry& metrics) {
  if (args.trace.empty()) return true;
  obs::TraceMeta meta;
  meta.dim = args.dim;
  meta.block = args.block;
  meta.seed = args.seed;
  meta.mode = mode;
  std::string err;
  if (!obs::write_trace_file(args.trace, meta, tracer, &err)) {
    std::fprintf(stderr, "trace: %s\n", err.c_str());
    return false;
  }
  if (!args.quiet) {
    std::printf("trace: %zu events -> %s\n", tracer.size(),
                args.trace.c_str());
    std::fputs(obs::format_metrics(metrics).c_str(), stdout);
  }
  return true;
}

// Write the canonical aoft-run-v1 record (--emit-run): run parameters,
// outcome, error tuples sorted by (node, stage, iter, source), and — unless
// the script killed a node, whose block is then intentionally unwritten — an
// fnv1a64 checksum of the output keys.  bench_check --cross-check compares
// two of these across transports; everything but "transport" must match.
bool emit_run_file(const Args& args, const sort::SortRun& run,
                   sort::Outcome outcome, int attempts, bool recovered) {
  if (args.emit_run.empty()) return true;
  auto errs = run.errors;
  std::sort(errs.begin(), errs.end(), [](const auto& x, const auto& y) {
    return std::tuple(x.node, x.stage, x.iter,
                      std::string_view(sim::to_string(x.source))) <
           std::tuple(y.node, y.stage, y.iter,
                      std::string_view(sim::to_string(y.source)));
  });
  std::string j = "{\"schema\":\"aoft-run-v1\"";
  j += ",\"transport\":";
  j += obs::json::escape(transport::to_string(args.backend));
  // Provenance like "transport": which kernel table ran.  Never compared by
  // the cross-check — dispatch is bit-identical by contract (PROTOCOL §12).
  j += ",\"simd\":";
  j += obs::json::escape(util::simd::to_string(sort::kernels::active_path()));
  j += ",\"algo\":" + obs::json::escape(args.algo);
  j += ",\"dim\":" + std::to_string(args.dim);
  j += ",\"block\":" + std::to_string(args.block);
  j += ",\"seed\":" + std::to_string(args.seed);
  j += ",\"outcome\":" + obs::json::escape(sort::to_string(outcome));
  j += ",\"attempts\":" + std::to_string(attempts);
  j += ",\"recovered\":";
  j += recovered ? "true" : "false";
  j += ",\"errors\":[";
  for (std::size_t i = 0; i < errs.size(); ++i) {
    if (i > 0) j += ",";
    j += "{\"node\":" + std::to_string(errs[i].node);
    j += ",\"stage\":" + std::to_string(errs[i].stage);
    j += ",\"iter\":" + std::to_string(errs[i].iter);
    j += ",\"source\":" + obs::json::escape(sim::to_string(errs[i].source));
    j += "}";
  }
  j += "]";
  if (!args.has_kill && !args.has_wedge) {
    char fnv[32];
    std::snprintf(fnv, sizeof(fnv), "0x%016llx",
                  static_cast<unsigned long long>(util::fnv1a64(
                      run.output.data(),
                      run.output.size() * sizeof(sort::Key))));
    j += ",\"output_fnv\":\"";
    j += fnv;
    j += "\"";
  }
  j += "}\n";
  std::string err;
  if (!util::write_file_atomic(args.emit_run, j, &err)) {
    std::fprintf(stderr, "emit-run: %s\n", err.c_str());
    return false;
  }
  return true;
}

// Write the run's link events as a canonically sorted kLink trace
// (--trace-links).  Both transports record sender-side events; sorting by
// (stage, iter, from, to, to_host, from_host, kind, words, delivered) makes
// the file a pure function of the message multiset, so trace_inspect --diff
// compares sim and shm traces directly.
bool emit_link_trace(const Args& args, const sort::SortRun& run) {
  if (args.trace_links.empty()) return true;
  auto evs = run.link_events;
  auto key = [](const sim::LinkEvent& e) {
    return std::tuple(e.stage, e.iter, e.from, e.to, e.to_host, e.from_host,
                      static_cast<int>(e.kind), e.words, e.delivered);
  };
  std::sort(evs.begin(), evs.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  obs::Tracer t;
  for (const auto& e : evs) {
    const std::int64_t b = (static_cast<std::int64_t>(e.words) << 16) |
                           (static_cast<std::int64_t>(e.kind) << 8) |
                           (std::int64_t{e.delivered} << 2) |
                           (std::int64_t{e.to_host} << 1) |
                           std::int64_t{e.from_host};
    t.instant(obs::Ev::kLink,
              e.from_host ? obs::kHostNode
                          : static_cast<std::int32_t>(e.from),
              e.stage, e.iter, 0.0,
              e.to_host ? obs::kHostNode : static_cast<std::int64_t>(e.to),
              b);
  }
  obs::TraceMeta meta;
  meta.dim = args.dim;
  meta.block = args.block;
  meta.seed = args.seed;
  meta.mode = "links";
  meta.transport = transport::to_string(args.backend);
  std::string err;
  if (!obs::write_trace_file(args.trace_links, meta, t, &err)) {
    std::fprintf(stderr, "trace-links: %s\n", err.c_str());
    return false;
  }
  return true;
}

// Soak-mode campaign body: probabilistic injection, SoakTally output, gated
// on silent-wrong *within* the Theorem 3 resilience bound.
int run_soak_mode(const Args& args, fault::CampaignConfig& cfg,
                  const obs::Tracer& tracer,
                  const obs::MetricsRegistry& metrics) {
  const auto tally = fault::run_soak_campaign(cfg);
  if (!args.quiet) {
    util::Table table({"metric", "value"});
    table.add_row({"runs", util::fmt_int(tally.runs)});
    table.add_row({"dropped", util::fmt_int(tally.dropped)});
    table.add_row({"attempts", util::fmt_int(tally.attempts)});
    table.add_row({"detected", util::fmt_int(tally.detected)});
    table.add_row({"masked", util::fmt_int(tally.masked)});
    table.add_row({"SILENT-WRONG (in bound)",
                   util::fmt_int(tally.silent_wrong_in_bound)});
    table.add_row({"beyond-bound runs", util::fmt_int(tally.beyond_bound_runs)});
    table.add_row({"silent-wrong (beyond bound)",
                   util::fmt_int(tally.silent_wrong_beyond)});
    table.add_row({"multi-fault runs", util::fmt_int(tally.multi_fired)});
    table.add_row({"injections fired",
                   util::fmt_int(static_cast<int>(tally.faults_fired))});
    table.add_row({"max dislocation",
                   util::fmt_int(static_cast<int>(tally.max_dislocation))});
    table.print(std::cout);
    std::printf("\ncoverage: %zu/%zu slots\n", tally.slots_done,
                tally.slots_total);
    std::printf("Theorem 3 verdict (within <= n-1 bound): silent-wrong = %d  "
                "[%s]\n",
                tally.silent_wrong_in_bound,
                tally.silent_wrong_in_bound == 0 ? "OK" : "VIOLATION");
  }
  if (!finish_trace(args, "soak-campaign", tracer, metrics)) return 1;
  return tally.silent_wrong_in_bound == 0 ? 0 : 1;
}

int run_campaign_mode(const Args& args) {
  fault::CampaignConfig cfg;
  cfg.dim = args.dim;
  cfg.block = args.block;
  cfg.runs_per_class = args.runs;
  cfg.seed = args.seed;
  cfg.jobs = args.jobs;
  cfg.scenario_batch = args.batch;
  cfg.placement = args.pin;
  cfg.injection = args.injection;
  cfg.checkpoint_path = args.checkpoint;
  cfg.resume = args.resume;
  cfg.force_restart = args.force_restart;
  cfg.stream_path = args.stream;
  cfg.shard_index = args.shard_index;
  cfg.shard_count = args.shard_count;
  cfg.checkpoint_every = args.checkpoint_every;
  cfg.stop_after_slots = args.stop_after;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (!args.trace.empty()) {
    cfg.tracer = &tracer;
    cfg.metrics = &metrics;
  }

  if (!args.quiet)
    std::printf("fault campaign: dim=%d block=%zu runs/class=%d seed=%llu "
                "jobs=%d batch=%d pin=%s simd=%s mode=%s shard=%d/%d\n\n",
                cfg.dim, cfg.block, cfg.runs_per_class,
                static_cast<unsigned long long>(cfg.seed), cfg.jobs,
                cfg.scenario_batch, cfg.placement.str().c_str(),
                util::simd::to_string(sort::kernels::active_path()),
                fault::to_string(cfg.injection.mode), cfg.shard_index,
                cfg.shard_count);

  if (cfg.injection.mode != fault::InjectionMode::kScripted)
    return run_soak_mode(args, cfg, tracer, metrics);

  const auto summary = fault::run_campaign(cfg);
  int silent = 0;
  if (!args.quiet) {
    util::Table table({"fault class", "runs", "dropped", "attempts",
                       "detected", "masked", "SILENT-WRONG", "S_NR silent"});
    for (std::size_t i = 0; i < summary.sft.size(); ++i) {
      const auto& s = summary.sft[i];
      const auto& b = summary.snr[i];
      table.add_row({fault::to_string(s.fclass), util::fmt_int(s.runs),
                     util::fmt_int(s.dropped), util::fmt_int(s.attempts),
                     util::fmt_int(s.detected), util::fmt_int(s.masked),
                     util::fmt_int(s.silent_wrong),
                     b.runs > 0 ? util::fmt_int(b.silent_wrong) + "/" +
                                      util::fmt_int(b.runs)
                                : "n/a"});
    }
    table.print(std::cout);
  }
  for (const auto& s : summary.sft) silent += s.silent_wrong;

  if (args.multi_k > 0) {
    const auto tallies = fault::run_multi_campaign(cfg, args.multi_k);
    if (!args.quiet) {
      std::printf("\nmulti-fault sweep (k simultaneous faults):\n");
      util::Table table({"k", "runs", "dropped", "attempts", "detected",
                         "masked", "SILENT-WRONG"});
      for (const auto& t : tallies)
        table.add_row({util::fmt_int(t.k), util::fmt_int(t.runs),
                       util::fmt_int(t.dropped), util::fmt_int(t.attempts),
                       util::fmt_int(t.detected), util::fmt_int(t.masked),
                       util::fmt_int(t.silent_wrong)});
      table.print(std::cout);
    }
    for (const auto& t : tallies)
      if (t.k <= args.dim - 1) silent += t.silent_wrong;
  }

  if (!args.quiet) {
    std::printf("\ncoverage: %zu/%zu slots\n", summary.slots_done,
                summary.slots_total);
    std::printf("Theorem 3 verdict: S_FT silent-wrong = %d  [%s]\n", silent,
                silent == 0 ? "OK" : "VIOLATION");
  }
  if (!finish_trace(args, "campaign", tracer, metrics)) return 1;
  return silent == 0 ? 0 : 1;
}

fault::RecoveryPolicy recovery_policy(const std::string& name) {
  fault::RecoveryPolicy p;  // "ladder": every rung enabled
  if (name == "restart") {
    p = fault::RecoveryPolicy::full_restart(3);
  } else if (name == "rollback") {
    p.reconfigure = false;
    p.host_fallback = false;
    p.max_attempts = 3;
    p.attempts_per_config = 3;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--algo=sft|snr|host|host-verified] [--dim=N]\n"
                 "          [--block=M] [--seed=S] [--halt=node@stage:iter]\n"
                 "          [--invert=node@stage:iter] [--two-faced=node@stage:iter]\n"
                 "          [--kill=node@stage:iter] [--wedge=node@stage:iter]\n"
                 "          [--transport=sim|shm|tcp] [--hosts=FILE]\n"
                 "          [--node-bin=PATH] [--timeout=SECONDS]\n"
                 "          [--emit-run=PATH] [--trace-links=PATH]\n"
                 "          [--recover=off|restart|rollback|ladder] [--transient]\n"
                 "          [--diagnose] [--quiet] [--trace=PATH]\n"
                 "       %s --campaign [--dim=N] [--block=M] [--seed=S]\n"
                 "          [--runs=R] [--jobs=J] [--batch=B] [--multi=K] [--quiet]\n"
                 "          [--pin=none|compact|scatter|CPULIST]\n"
                 "          [--simd=scalar|avx2|neon|auto]\n"
                 "          [--mode=scripted|independent:P|runlength:K]\n"
                 "          [--checkpoint=PATH] [--resume[=force-restart]]\n"
                 "          [--stream=PATH] [--shard=i/N]\n"
                 "          [--checkpoint-every=N] [--stop-after=N]\n"
                 "          [--trace=PATH]  (.json = Chrome trace, else JSONL)\n",
                 argv[0], argv[0]);
    return 1;
  }

  if (!args.simd.empty()) {
    // Pin the kernel dispatch path before any sort runs.  Like AOFT_SIMD in
    // the environment, an unavailable path dies loudly (usage error) rather
    // than degrading — dispatch is environment metadata and never changes
    // results (docs/PROTOCOL.md §12), so forcing exists purely for CI and
    // benchmarking.
    try {
      if (const auto p = util::simd::parse(args.simd))
        sort::kernels::force_path(*p);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--simd: %s\n", e.what());
      return 1;
    }
  }

  if (args.campaign) {
    try {
      return run_campaign_mode(args);
    } catch (const fault::StoreError& e) {
      // Unusable checkpoint/stream: loud, specific, distinct exit status.
      std::fprintf(stderr, "campaign store [%s]: %s\n",
                   fault::to_string(e.status()), e.what());
      return 4;
    }
  }

  // Single and supervised runs execute on this thread; bind the sinks here.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::optional<obs::ScopedSink> sink;
  if (!args.trace.empty()) sink.emplace(&tracer, &metrics);

  const auto input = util::random_keys(
      args.seed, (std::size_t{1} << args.dim) * args.block);

  fault::NodeFaultMap node_faults;
  if (args.has_halt) node_faults[args.fault_node].halt_at = args.fault_point;
  if (args.has_kill) {
    node_faults[args.fault_node].halt_at = args.fault_point;
    node_faults[args.fault_node].kill_process = true;
  }
  if (args.has_wedge) {
    node_faults[args.fault_node].halt_at = args.fault_point;
    node_faults[args.fault_node].wedge_process = true;
  }
  if (args.has_invert)
    node_faults[args.fault_node].invert_direction_from = args.fault_point;
  fault::Adversary adversary;
  if (args.has_two_faced)
    adversary.add(fault::two_faced_gossip(
        args.fault_node, args.fault_point, args.fault_node ^ 1u, 4097,
        args.block, [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
  sim::LinkInterceptor* interceptor = args.has_two_faced ? &adversary : nullptr;

  // Transport knobs shared by every path that builds sort options (SftOptions
  // and SnrOptions both carry backend/shm/tcp).  --timeout scales the tcp
  // heartbeat thresholds down with it so a wedged peer is still declared
  // dead by the watchdog before the recv backstop fires.
  auto apply_transport = [&](auto& opts) {
    opts.backend = args.backend;
    opts.shm.node_binary = args.node_bin;
    opts.tcp.node_binary = args.node_bin;
    opts.tcp.hosts_file = args.hosts_file;
    if (args.shm_timeout > 0) {
      opts.shm.recv_timeout_s = args.shm_timeout;
      opts.shm.run_deadline_s = std::max(args.shm_timeout * 8.0,
                                         opts.shm.run_deadline_s);
      opts.tcp.recv_timeout_s = args.shm_timeout;
      opts.tcp.run_deadline_s = std::max(args.shm_timeout * 8.0,
                                         opts.tcp.run_deadline_s);
      opts.tcp.heartbeat_loss_s =
          std::min(opts.tcp.heartbeat_loss_s, args.shm_timeout * 0.5);
      opts.tcp.heartbeat_interval_s =
          std::min(opts.tcp.heartbeat_interval_s,
                   opts.tcp.heartbeat_loss_s * 0.25);
    }
  };

  if (args.recover != "off") {
    sort::SftOptions base;
    base.block = args.block;
    apply_transport(base);
    const auto run = fault::run_supervised_sort(
        args.dim, input, base, recovery_policy(args.recover),
        [&](int attempt) -> sim::LinkInterceptor* {
          if (!args.has_two_faced) return nullptr;
          return (args.transient && attempt > 0) ? nullptr : &adversary;
        },
        [&](int attempt) -> fault::NodeFaultMap {
          return (args.transient && attempt > 0) ? fault::NodeFaultMap{}
                                                 : node_faults;
        });
    const auto outcome = run.outcome;
    if (!args.quiet) {
      std::printf("algo=sft(recover=%s) nodes=%u keys=%zu outcome=%s\n",
                  args.recover.c_str(), 1u << args.dim, input.size(),
                  sort::to_string(outcome));
      for (const auto& ev : run.events) {
        std::printf("attempt %d: rung=%-9s dim=%d block=%zu resume=%d "
                    "outcome=%s ticks=%.1f",
                    ev.attempt, fault::to_string(ev.rung), ev.config_dim,
                    ev.block, ev.resume_stage, sort::to_string(ev.outcome),
                    ev.ticks);
        if (!ev.suspects.empty()) {
          std::printf("  suspects =");
          for (auto s : ev.suspects) std::printf(" %u", s);
          if (ev.link_suspected) std::printf(" (link)");
        }
        std::printf("\n");
      }
      if (!run.retired.empty()) {
        std::printf("retired:");
        for (auto s : run.retired) std::printf(" %u", s);
        std::printf("\n");
      }
      std::printf("attempts=%d final-rung=%s recovered=%s salvaged-stages=%d "
                  "total=%.1f ticks\n",
                  run.attempts, fault::to_string(run.final_rung),
                  run.recovered ? "yes" : "no", run.stages_salvaged,
                  run.total_ticks);
    }
    if (!finish_trace(args, "supervised", tracer, metrics)) return 1;
    if (!emit_run_file(args, run.last, outcome, run.attempts, run.recovered))
      return 1;
    switch (outcome) {
      case sort::Outcome::kCorrect: return 0;
      case sort::Outcome::kFailStop: return 2;
      case sort::Outcome::kSilentWrong: return 3;
    }
    return 1;
  }

  sort::SortRun run;
  if (args.algo == "sft") {
    sort::SftOptions opts;
    opts.block = args.block;
    opts.node_faults = node_faults;
    opts.interceptor = interceptor;
    opts.record_link_events = !args.trace_links.empty();
    apply_transport(opts);
    run = sort::run_sft(args.dim, input, opts);
  } else if (args.algo == "snr") {
    sort::SnrOptions opts;
    opts.block = args.block;
    opts.node_faults = node_faults;
    opts.interceptor = interceptor;
    apply_transport(opts);
    run = sort::run_snr(args.dim, input, opts);
  } else if (args.algo == "host") {
    sort::HostSortOptions opts;
    opts.block = args.block;
    run = sort::run_host_sort(args.dim, input, opts);
  } else {
    sort::HostVerifyOptions opts;
    opts.block = args.block;
    opts.node_faults = node_faults;
    opts.interceptor = interceptor;
    run = sort::run_host_verified_snr(args.dim, input, opts);
  }

  const auto outcome = sort::classify(run, input);
  if (!args.quiet) {
    std::printf("algo=%s nodes=%u keys=%zu outcome=%s\n", args.algo.c_str(),
                1u << args.dim, input.size(), sort::to_string(outcome));
    std::printf("elapsed=%.1f ticks  comm(max/node)=%.1f  comp(max/node)=%.1f  "
                "msgs=%llu  words=%llu\n",
                run.summary.elapsed, run.summary.max_comm, run.summary.max_comp,
                static_cast<unsigned long long>(run.summary.total_msgs),
                static_cast<unsigned long long>(run.summary.total_words));
    for (const auto& e : run.errors)
      std::printf("error: node %u stage %d iter %d %s: %s\n", e.node, e.stage,
                  e.iter, sim::to_string(e.source), e.detail.c_str());
    if (args.diagnose && !run.errors.empty()) {
      const auto d = fault::localize(run.errors, args.dim);
      std::printf("diagnosis: suspects =");
      for (auto s : d.suspects) std::printf(" %u", s);
      std::printf("%s%s\n", d.conclusive ? " (conclusive)" : "",
                  d.link_suspected ? " (link fault suspected)" : "");
    }
  }
  if (!finish_trace(args, "single", tracer, metrics)) return 1;
  if (!emit_run_file(args, run, outcome, 1, false)) return 1;
  if (!emit_link_trace(args, run)) return 1;
  switch (outcome) {
    case sort::Outcome::kCorrect: return 0;
    case sort::Outcome::kFailStop: return 2;
    case sort::Outcome::kSilentWrong: return 3;
  }
  return 1;
}
