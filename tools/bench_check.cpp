// bench_check — CI perf gate over BENCH_campaign.json.
//
//   bench_check FRESH.json REFERENCE.json [--min-pooling-speedup=F]
//
// FRESH is the file campaign_throughput just wrote on this runner; REFERENCE
// is the one committed at the repo root.  Both must be structurally sound;
// FRESH additionally gates the merge:
//
//   FAIL when  silent_wrong_total != 0         (Theorem 3 violated),
//              summaries_identical != true     (engine nondeterminism),
//              a required key is missing or mistyped,
//              pooling_speedup < the configured floor (default 1.0 — the
//              pooled hot path must never be slower than the baseline it
//              replaced; wall-clock-for-wall-clock on the same runner this
//              is noise-free enough to gate on),
//              the speedup/cpus_available contract is broken: hosts with
//              >= 2 CPUs must report a positive "speedup" number, hosts
//              with fewer must report "speedup": null plus a
//              speedup_skipped_reason string (no more committing 0.7x
//              "slowdowns" measured on a 1-core container).
//
// Raw throughput numbers (scenarios/sec, placement matrix, trace overhead)
// are printed as an informational fresh-vs-reference diff but never gate:
// CI runners differ too much machine-to-machine for absolute wall-clock
// comparisons to be signal.
//
// Exit status: 0 = gate passed, 1 = gate failed or file/parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using namespace aoft::obs;

int failures = 0;

void fail(const char* file, const std::string& what) {
  std::fprintf(stderr, "FAIL %s: %s\n", file, what.c_str());
  ++failures;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

// Required numeric / boolean keys every BENCH_campaign.json must carry.
constexpr const char* kNumKeys[] = {
    "dim",
    "runs_per_class",
    "hardware_concurrency",
    "cpus_available",
    "numa_nodes",
    "scenarios_executed",
    "unpooled_seconds",
    "unpooled_scenarios_per_sec",
    "serial_seconds",
    "serial_scenarios_per_sec",
    "pooling_speedup",
    "parallel_jobs",
    "parallel_seconds",
    "parallel_scenarios_per_sec",
    "traced_seconds",
    "trace_events",
    "trace_overhead",
    "silent_wrong_total",
};

// Structural + correctness checks shared by FRESH and REFERENCE.  Returns
// the parsed object via `out`; false (with failures recorded) when the file
// is unusable.
bool check_file(const char* label, const std::string& path, json::Value* out) {
  std::string text;
  if (!read_file(path, &text)) {
    fail(label, "cannot open " + path);
    return false;
  }
  std::string err;
  auto parsed = json::parse(text, &err);
  if (!parsed) {
    fail(label, path + ": " + err);
    return false;
  }
  if (!parsed->is_object()) {
    fail(label, path + ": top level is not an object");
    return false;
  }
  const auto& o = parsed->object();
  double d = 0;
  for (const char* key : kNumKeys)
    if (!json::get_num(o, key, d))
      fail(label, "missing or non-numeric key \"" + std::string(key) + "\"");
  std::string s;
  if (!json::get_str(o, "placement", s))
    fail(label, "missing or non-string key \"placement\"");
  bool b = false;
  if (!json::get_bool(o, "alloc_hook_active", b))
    fail(label, "missing or non-boolean key \"alloc_hook_active\"");

  if (!json::get_bool(o, "summaries_identical", b))
    fail(label, "missing or non-boolean key \"summaries_identical\"");
  else if (!b)
    fail(label, "summaries_identical is false — campaign engine produced "
                "different results across pooling/jobs/placement");

  if (json::get_num(o, "silent_wrong_total", d) && d != 0)
    fail(label, "silent_wrong_total = " + std::to_string(d) +
                    " (Theorem 3 requires 0)");

  auto matrix = o.find("placement_matrix");
  if (matrix == o.end() || !matrix->second.is_array() ||
      matrix->second.array().empty()) {
    fail(label, "missing or empty \"placement_matrix\" array");
  } else {
    for (const auto& entry : matrix->second.array()) {
      if (!entry.is_object() || !json::get_str(entry.object(), "placement", s) ||
          !json::get_num(entry.object(), "seconds", d) ||
          !json::get_num(entry.object(), "scenarios_per_sec", d)) {
        fail(label, "malformed placement_matrix entry");
        break;
      }
    }
  }

  // speedup is the one key whose *type* is conditional: a number on real
  // multi-core hosts, null (with a stated reason) on 1-CPU runners.
  double cpus = 0;
  json::get_num(o, "cpus_available", cpus);
  auto speedup = o.find("speedup");
  if (speedup == o.end()) {
    fail(label, "missing key \"speedup\" (number or null)");
  } else if (cpus >= 2) {
    if (!speedup->second.is_number() || speedup->second.num() <= 0)
      fail(label, "host has >= 2 CPUs but \"speedup\" is not a positive "
                  "number");
  } else {
    if (!speedup->second.is_null())
      fail(label, "host has < 2 CPUs but \"speedup\" is not null — "
                  "single-core serial-vs-parallel timings are noise, not a "
                  "speedup");
    if (!json::get_str(o, "speedup_skipped_reason", s))
      fail(label, "null \"speedup\" needs a \"speedup_skipped_reason\" "
                  "string");
  }

  *out = *parsed;
  return true;
}

void info_diff(const json::Object& fresh, const json::Object& ref,
               const char* key) {
  double a = 0, b = 0;
  if (json::get_num(fresh, key, a) && json::get_num(ref, key, b) && b != 0)
    std::printf("  %-28s fresh %12.2f   ref %12.2f   (%+.1f%%)\n", key, a, b,
                100.0 * (a - b) / b);
}

}  // namespace

int main(int argc, char** argv) {
  const char* fresh_path = nullptr;
  const char* ref_path = nullptr;
  double min_pooling = 1.0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--min-pooling-speedup=", 22) == 0) {
      min_pooling = std::atof(a + 22);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      fresh_path = nullptr;
      break;
    } else if (!fresh_path) {
      fresh_path = a;
    } else if (!ref_path) {
      ref_path = a;
    } else {
      fresh_path = nullptr;
      break;
    }
  }
  if (!fresh_path || !ref_path) {
    std::fprintf(stderr,
                 "usage: %s FRESH.json REFERENCE.json "
                 "[--min-pooling-speedup=F]\n",
                 argv[0]);
    return 1;
  }

  json::Value fresh_v, ref_v;
  const bool fresh_ok = check_file("fresh", fresh_path, &fresh_v);
  const bool ref_ok = check_file("reference", ref_path, &ref_v);

  if (fresh_ok) {
    double d = 0;
    if (json::get_num(fresh_v.object(), "pooling_speedup", d) &&
        d < min_pooling)
      fail("fresh", "pooling_speedup " + std::to_string(d) +
                        " is below the floor " + std::to_string(min_pooling) +
                        " — the pooled hot path regressed past its baseline");
  }

  if (fresh_ok && ref_ok) {
    std::printf("informational fresh-vs-reference throughput "
                "(never gates):\n");
    const auto& f = fresh_v.object();
    const auto& r = ref_v.object();
    info_diff(f, r, "unpooled_scenarios_per_sec");
    info_diff(f, r, "serial_scenarios_per_sec");
    info_diff(f, r, "parallel_scenarios_per_sec");
    info_diff(f, r, "pooling_speedup");
    info_diff(f, r, "trace_overhead");
  }

  if (failures == 0) {
    std::printf("bench_check: OK (%s vs %s, pooling floor %.2fx)\n",
                fresh_path, ref_path, min_pooling);
    return 0;
  }
  std::fprintf(stderr, "bench_check: %d failure(s)\n", failures);
  return 1;
}
