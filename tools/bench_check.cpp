// bench_check — CI perf gate over BENCH_campaign.json and the campaign
// durability artifacts, plus the transport oracle cross-check.
//
//   bench_check FRESH.json REFERENCE.json [--min-pooling-speedup=F]
//              [--stream=SLOTS.jsonl] [--merge-summary=MERGED.json]
//              [--kernels=BENCH_kernels.json] [--min-kernel-speedup=F]
//   bench_check --cross-check SIM_RUN.json SHM_RUN.json
//
// --cross-check compares two aoft-run-v1 records (aoft_sort_cli
// --emit-run=...) from the *same* fault script on different transports: the
// run parameters, outcome, canonical error tuples, output checksum (when
// both runs carry one — kill scripts intentionally omit it), and recovery
// summary must all agree.  The "transport" field is the one key allowed to
// differ; anything else failing is a backend divergence, which Theorem 3's
// oracle contract (docs/PROTOCOL.md §11) forbids.
//
// --stream validates a campaign slot stream (aoft_sort_cli --stream=...):
// a schema header line plus one structurally sound record per slot, global
// slots ascending within the declared shard.  --merge-summary gates a
// campaign_merge --summary output: the merge must be complete, byte-match
// its oracle (summaries_identical) and carry silent_wrong_total == 0.
// --kernels gates a BENCH_kernels.json from the bench/micro_predicates SIMD
// sweep: structural soundness, plus best_speedup >= --min-kernel-speedup on
// SIMD dispatch paths and best_speedup null (with a reason) on scalar.  All
// three flags also work without the positional FRESH/REFERENCE pair.
//
// FRESH is the file campaign_throughput just wrote on this runner; REFERENCE
// is the one committed at the repo root.  Both must be structurally sound;
// FRESH additionally gates the merge:
//
//   FAIL when  silent_wrong_total != 0         (Theorem 3 violated),
//              summaries_identical != true     (engine nondeterminism),
//              a required key is missing or mistyped,
//              pooling_speedup < the configured floor (default 1.0 — the
//              pooled hot path must never be slower than the baseline it
//              replaced; wall-clock-for-wall-clock on the same runner this
//              is noise-free enough to gate on),
//              the speedup/cpus_available contract is broken: hosts with
//              >= 2 CPUs must report a positive "speedup" number, hosts
//              with fewer must report "speedup": null plus a
//              speedup_skipped_reason string (no more committing 0.7x
//              "slowdowns" measured on a 1-core container).
//
// Raw throughput numbers (scenarios/sec, placement matrix, trace overhead)
// are printed as an informational fresh-vs-reference diff but never gate:
// CI runners differ too much machine-to-machine for absolute wall-clock
// comparisons to be signal.
//
// Exit status: 0 = gate passed, 1 = gate failed or file/parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/flags.h"

namespace {

using namespace aoft::obs;

int failures = 0;

void fail(const char* file, const std::string& what) {
  std::fprintf(stderr, "FAIL %s: %s\n", file, what.c_str());
  ++failures;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

// Required numeric / boolean keys every BENCH_campaign.json must carry.
constexpr const char* kNumKeys[] = {
    "dim",
    "runs_per_class",
    "hardware_concurrency",
    "cpus_available",
    "numa_nodes",
    "scenarios_executed",
    "unpooled_seconds",
    "unpooled_scenarios_per_sec",
    "serial_seconds",
    "serial_scenarios_per_sec",
    "pooling_speedup",
    "parallel_jobs",
    "parallel_seconds",
    "parallel_scenarios_per_sec",
    "scenario_batch",
    "batched_seconds",
    "batched_scenarios_per_sec",
    "traced_seconds",
    "trace_events",
    "trace_overhead",
    "silent_wrong_total",
};

// Structural + correctness checks shared by FRESH and REFERENCE.  Returns
// the parsed object via `out`; false (with failures recorded) when the file
// is unusable.
bool check_file(const char* label, const std::string& path, json::Value* out) {
  std::string text;
  if (!read_file(path, &text)) {
    fail(label, "cannot open " + path);
    return false;
  }
  std::string err;
  auto parsed = json::parse(text, &err);
  if (!parsed) {
    fail(label, path + ": " + err);
    return false;
  }
  if (!parsed->is_object()) {
    fail(label, path + ": top level is not an object");
    return false;
  }
  const auto& o = parsed->object();
  double d = 0;
  for (const char* key : kNumKeys)
    if (!json::get_num(o, key, d))
      fail(label, "missing or non-numeric key \"" + std::string(key) + "\"");
  std::string s;
  if (!json::get_str(o, "placement", s))
    fail(label, "missing or non-string key \"placement\"");
  if (!json::get_str(o, "simd", s))
    fail(label, "missing or non-string key \"simd\" (kernel dispatch path)");
  bool b = false;
  if (!json::get_bool(o, "alloc_hook_active", b))
    fail(label, "missing or non-boolean key \"alloc_hook_active\"");

  if (!json::get_bool(o, "summaries_identical", b))
    fail(label, "missing or non-boolean key \"summaries_identical\"");
  else if (!b)
    fail(label, "summaries_identical is false — campaign engine produced "
                "different results across pooling/jobs/placement");

  if (json::get_num(o, "silent_wrong_total", d) && d != 0)
    fail(label, "silent_wrong_total = " + std::to_string(d) +
                    " (Theorem 3 requires 0)");

  auto matrix = o.find("placement_matrix");
  if (matrix == o.end() || !matrix->second.is_array() ||
      matrix->second.array().empty()) {
    fail(label, "missing or empty \"placement_matrix\" array");
  } else {
    for (const auto& entry : matrix->second.array()) {
      if (!entry.is_object() || !json::get_str(entry.object(), "placement", s) ||
          !json::get_num(entry.object(), "seconds", d) ||
          !json::get_num(entry.object(), "scenarios_per_sec", d)) {
        fail(label, "malformed placement_matrix entry");
        break;
      }
    }
  }

  // speedup is the one key whose *type* is conditional: a number on real
  // multi-core hosts, null (with a stated reason) on 1-CPU runners.
  double cpus = 0;
  json::get_num(o, "cpus_available", cpus);
  auto speedup = o.find("speedup");
  if (speedup == o.end()) {
    fail(label, "missing key \"speedup\" (number or null)");
  } else if (cpus >= 2) {
    if (!speedup->second.is_number() || speedup->second.num() <= 0)
      fail(label, "host has >= 2 CPUs but \"speedup\" is not a positive "
                  "number");
  } else {
    if (!speedup->second.is_null())
      fail(label, "host has < 2 CPUs but \"speedup\" is not null — "
                  "single-core serial-vs-parallel timings are noise, not a "
                  "speedup");
    if (!json::get_str(o, "speedup_skipped_reason", s))
      fail(label, "null \"speedup\" needs a \"speedup_skipped_reason\" "
                  "string");
  }

  *out = *parsed;
  return true;
}

// Required keys of every slot record in an aoft-campaign-v1 stream.
constexpr const char* kSlotNumKeys[] = {"g", "slot", "attempts", "fired",
                                        "faulty_nodes", "dislocation"};

// Validate a campaign slot stream: header line + one JSONL record per slot.
void check_stream(const std::string& path) {
  const char* label = "stream";
  std::string text;
  if (!read_file(path, &text)) {
    fail(label, "cannot open " + path);
    return;
  }
  std::size_t pos = 0, line_no = 0;
  double shard_count = 1;
  double prev_g = -1;
  bool have_header = false;
  std::size_t records = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      fail(label, path + ": last line is not newline-terminated (torn write)");
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    std::string err;
    auto parsed = json::parse(line, &err);
    if (!parsed || !parsed->is_object()) {
      fail(label, path + " line " + std::to_string(line_no) + ": " +
                      (parsed ? "not an object" : err));
      return;
    }
    const auto& o = parsed->object();
    if (line_no == 1) {
      std::string schema;
      if (!json::get_str(o, "schema", schema) ||
          schema != "aoft-campaign-v1") {
        fail(label, path + ": header schema is not \"aoft-campaign-v1\"");
        return;
      }
      double d = 0;
      for (const char* key : {"dim", "runs_per_class", "seed", "total_slots"})
        if (!json::get_num(o, key, d))
          fail(label, path + ": header missing numeric \"" +
                          std::string(key) + "\"");
      std::string s;
      if (!json::get_str(o, "mode", s))
        fail(label, path + ": header missing \"mode\"");
      if (!json::get_str(o, "shard", s) ||
          std::sscanf(s.c_str(), "%*d/%lf", &shard_count) != 1)
        fail(label, path + ": header \"shard\" is not \"i/N\"");
      have_header = true;
      continue;
    }
    ++records;
    double d = 0;
    for (const char* key : kSlotNumKeys)
      if (!json::get_num(o, key, d))
        fail(label, path + " line " + std::to_string(line_no) +
                        ": missing numeric \"" + std::string(key) + "\"");
    std::string s;
    if (!json::get_str(o, "class", s))
      fail(label, path + " line " + std::to_string(line_no) +
                      ": missing \"class\"");
    bool dropped = false, exercised = false;
    if (!json::get_bool(o, "dropped", dropped) ||
        !json::get_bool(o, "exercised", exercised) || dropped == exercised)
      fail(label, path + " line " + std::to_string(line_no) +
                      ": dropped/exercised flags missing or inconsistent");
    // A dropped slot has a null outcome; an exercised one a string.  Either
    // way the key must be present — redraw exhaustion is surfaced, not
    // omitted.
    auto outcome = o.find("outcome");
    if (outcome == o.end() ||
        (exercised ? !outcome->second.is_string()
                   : !outcome->second.is_null()))
      fail(label, path + " line " + std::to_string(line_no) +
                      ": \"outcome\" must be a string (exercised) or null "
                      "(dropped)");
    double g = 0;
    if (json::get_num(o, "g", g)) {
      if (g <= prev_g)
        fail(label, path + " line " + std::to_string(line_no) +
                        ": global slots not strictly ascending");
      prev_g = g;
    }
    if (failures > 0 && records > 3) return;  // stop flooding on a bad file
  }
  if (!have_header) fail(label, path + ": empty stream (no header line)");
  if (failures == 0)
    std::printf("stream %s: header + %zu record(s) OK\n", path.c_str(),
                records);
}

// Gate a campaign_merge --summary output.
void check_merge_summary(const std::string& path) {
  const char* label = "merge-summary";
  std::string text;
  if (!read_file(path, &text)) {
    fail(label, "cannot open " + path);
    return;
  }
  std::string err;
  auto parsed = json::parse(text, &err);
  if (!parsed || !parsed->is_object()) {
    fail(label, path + ": " + (parsed ? "top level is not an object" : err));
    return;
  }
  const auto& o = parsed->object();
  std::string schema;
  if (!json::get_str(o, "schema", schema) ||
      schema != "aoft-campaign-merge-v1") {
    fail(label, path + ": schema is not \"aoft-campaign-merge-v1\"");
    return;
  }
  double d = 0;
  for (const char* key : {"slots_total", "slots_done", "silent_wrong_total"})
    if (!json::get_num(o, key, d))
      fail(label, path + ": missing numeric \"" + std::string(key) + "\"");
  bool b = false;
  if (!json::get_bool(o, "complete", b))
    fail(label, path + ": missing boolean \"complete\"");
  else if (!b)
    fail(label, path + ": merge coverage incomplete");
  if (!json::get_bool(o, "summaries_identical", b))
    fail(label, path + ": \"summaries_identical\" missing or not boolean — "
                    "run campaign_merge with --oracle");
  else if (!b)
    fail(label, path + ": summaries_identical is false — the merged shards "
                    "do not reproduce the unsharded campaign");
  if (json::get_num(o, "silent_wrong_total", d) && d != 0)
    fail(label, path + ": silent_wrong_total = " + std::to_string(d) +
                    " (Theorem 3 requires 0)");
  if (failures == 0)
    std::printf("merge-summary %s: OK\n", path.c_str());
}

// Gate a BENCH_kernels.json (bench/micro_predicates kernel sweep).
//
// Structural: schema aoft-kernels-v1, a dispatch path string, a non-empty
// entries array with numeric scalar_ns/dispatched_ns/speedup and a boolean
// delegated flag per entry.  Perf: when the dispatched path is a SIMD one,
// best_speedup must be a number >= `floor` — the vectorized scans must not
// silently regress to parity with scalar.  When the dispatched path IS
// scalar, best_speedup must be null with a stated reason (same honesty rule
// as the campaign parallel speedup on 1-CPU hosts).
void check_kernels(const std::string& path, double floor) {
  const char* label = "kernels";
  std::string text;
  if (!read_file(path, &text)) {
    fail(label, "cannot open " + path);
    return;
  }
  std::string err;
  auto parsed = json::parse(text, &err);
  if (!parsed || !parsed->is_object()) {
    fail(label, path + ": " + (parsed ? "top level is not an object" : err));
    return;
  }
  const auto& o = parsed->object();
  std::string schema;
  if (!json::get_str(o, "schema", schema) || schema != "aoft-kernels-v1") {
    fail(label, path + ": schema is not \"aoft-kernels-v1\"");
    return;
  }
  std::string dispatch;
  if (!json::get_str(o, "dispatch", dispatch)) {
    fail(label, path + ": missing \"dispatch\" path string");
    return;
  }

  auto entries = o.find("entries");
  if (entries == o.end() || !entries->second.is_array() ||
      entries->second.array().empty()) {
    fail(label, path + ": missing or empty \"entries\" array");
  } else {
    for (const auto& e : entries->second.array()) {
      double d = 0;
      std::string kernel;
      bool delegated = false;
      if (!e.is_object() || !json::get_str(e.object(), "kernel", kernel) ||
          !json::get_num(e.object(), "size", d) ||
          !json::get_num(e.object(), "scalar_ns", d) || d <= 0 ||
          !json::get_num(e.object(), "dispatched_ns", d) || d <= 0 ||
          !json::get_num(e.object(), "speedup", d) || d <= 0 ||
          !json::get_bool(e.object(), "delegated", delegated)) {
        fail(label, path + ": malformed entries record");
        break;
      }
    }
  }

  auto best = o.find("best_speedup");
  if (best == o.end()) {
    fail(label, path + ": missing key \"best_speedup\" (number or null)");
  } else if (dispatch != "scalar") {
    if (!best->second.is_number())
      fail(label, path + ": dispatch is \"" + dispatch +
                      "\" but \"best_speedup\" is not a number");
    else if (best->second.num() < floor)
      fail(label, path + ": best_speedup " +
                      std::to_string(best->second.num()) +
                      " is below the floor " + std::to_string(floor) +
                      " — the vectorized kernels regressed to scalar parity");
  } else {
    if (!best->second.is_null())
      fail(label, path + ": dispatch is scalar but \"best_speedup\" is not "
                      "null — scalar-vs-scalar timing is noise, not a "
                      "speedup");
    std::string reason;
    if (!json::get_str(o, "speedup_null_reason", reason))
      fail(label, path + ": null \"best_speedup\" needs a "
                      "\"speedup_null_reason\" string");
  }
  if (failures == 0)
    std::printf("kernels %s: OK (dispatch %s, floor %.2fx)\n", path.c_str(),
                dispatch.c_str(), floor);
}

// ---- transport oracle cross-check ------------------------------------------

// Load an aoft-run-v1 record; false (with failures recorded) when unusable.
bool load_run(const char* label, const std::string& path, json::Value* out) {
  std::string text;
  if (!read_file(path, &text)) {
    fail(label, "cannot open " + path);
    return false;
  }
  std::string err;
  auto parsed = json::parse(text, &err);
  if (!parsed || !parsed->is_object()) {
    fail(label, path + ": " + (parsed ? "top level is not an object" : err));
    return false;
  }
  std::string schema;
  if (!json::get_str(parsed->object(), "schema", schema) ||
      schema != "aoft-run-v1") {
    fail(label, path + ": schema is not \"aoft-run-v1\"");
    return false;
  }
  *out = *parsed;
  return true;
}

// One canonical error tuple as "(node,stage,iter,source)" for diagnostics.
std::string error_tuple(const json::Object& e) {
  double node = -1, stage = -1, iter = -1;
  std::string source;
  json::get_num(e, "node", node);
  json::get_num(e, "stage", stage);
  json::get_num(e, "iter", iter);
  json::get_str(e, "source", source);
  return "(" + std::to_string(static_cast<long long>(node)) + "," +
         std::to_string(static_cast<long long>(stage)) + "," +
         std::to_string(static_cast<long long>(iter)) + "," + source + ")";
}

// Compare two aoft-run-v1 records from the same fault script on different
// transports.  Everything but "transport" must agree.
void check_cross(const std::string& path_a, const std::string& path_b) {
  const char* label = "cross-check";
  json::Value va, vb;
  if (!load_run(label, path_a, &va) || !load_run(label, path_b, &vb)) return;
  const auto& a = va.object();
  const auto& b = vb.object();

  for (const char* key : {"dim", "block", "seed", "attempts"}) {
    double na = -1, nb = -1;
    const bool ha = json::get_num(a, key, na);
    const bool hb = json::get_num(b, key, nb);
    if (ha != hb || na != nb)
      fail(label, "\"" + std::string(key) + "\" differs: " +
                      std::to_string(na) + " vs " + std::to_string(nb));
  }
  for (const char* key : {"algo", "outcome", "output_fnv"}) {
    std::string sa, sb;
    const bool ha = json::get_str(a, key, sa);
    const bool hb = json::get_str(b, key, sb);
    if (ha != hb)
      fail(label, "\"" + std::string(key) + "\" present in only one run");
    else if (sa != sb)
      fail(label, "\"" + std::string(key) + "\" differs: \"" + sa +
                      "\" vs \"" + sb + "\"");
  }
  bool ra = false, rb = false;
  if (json::get_bool(a, "recovered", ra) != json::get_bool(b, "recovered", rb)
      || ra != rb)
    fail(label, "\"recovered\" differs");

  const auto ea = a.find("errors");
  const auto eb = b.find("errors");
  if (ea == a.end() || eb == b.end() || !ea->second.is_array() ||
      !eb->second.is_array()) {
    fail(label, "missing \"errors\" array");
  } else {
    const auto& arr_a = ea->second.array();
    const auto& arr_b = eb->second.array();
    if (arr_a.size() != arr_b.size()) {
      fail(label,
           "error counts differ: " + std::to_string(arr_a.size()) + " vs " +
               std::to_string(arr_b.size()));
    } else {
      for (std::size_t i = 0; i < arr_a.size(); ++i) {
        if (!arr_a[i].is_object() || !arr_b[i].is_object()) {
          fail(label, "malformed errors entry " + std::to_string(i));
          break;
        }
        const std::string ta = error_tuple(arr_a[i].object());
        const std::string tb = error_tuple(arr_b[i].object());
        if (ta != tb)
          fail(label, "error tuple " + std::to_string(i) + " differs: " + ta +
                          " vs " + tb);
      }
    }
  }

  std::string trans_a = "?", trans_b = "?";
  json::get_str(a, "transport", trans_a);
  json::get_str(b, "transport", trans_b);
  if (failures == 0)
    std::printf("cross-check: OK (%s [%s] == %s [%s])\n", path_a.c_str(),
                trans_a.c_str(), path_b.c_str(), trans_b.c_str());
}

void info_diff(const json::Object& fresh, const json::Object& ref,
               const char* key) {
  double a = 0, b = 0;
  if (json::get_num(fresh, key, a) && json::get_num(ref, key, b) && b != 0)
    std::printf("  %-28s fresh %12.2f   ref %12.2f   (%+.1f%%)\n", key, a, b,
                100.0 * (a - b) / b);
}

}  // namespace

int main(int argc, char** argv) {
  const char* fresh_path = nullptr;
  const char* ref_path = nullptr;
  double min_pooling = 1.0;
  double min_kernel = 1.0;
  std::vector<std::string> stream_paths;
  std::vector<std::string> merge_paths;
  std::vector<std::string> kernel_paths;
  bool cross_check = false;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--min-pooling-speedup=", 22) == 0) {
      if (!aoft::util::parse_f64(a + 22, min_pooling)) {
        std::fprintf(stderr, "--min-pooling-speedup: bad value \"%s\"\n",
                     a + 22);
        usage_error = true;
        break;
      }
    } else if (std::strncmp(a, "--min-kernel-speedup=", 21) == 0) {
      if (!aoft::util::parse_f64(a + 21, min_kernel)) {
        std::fprintf(stderr, "--min-kernel-speedup: bad value \"%s\"\n",
                     a + 21);
        usage_error = true;
        break;
      }
    } else if (std::strcmp(a, "--cross-check") == 0) {
      cross_check = true;
    } else if (std::strncmp(a, "--stream=", 9) == 0) {
      stream_paths.push_back(a + 9);
    } else if (std::strncmp(a, "--merge-summary=", 16) == 0) {
      merge_paths.push_back(a + 16);
    } else if (std::strncmp(a, "--kernels=", 10) == 0) {
      kernel_paths.push_back(a + 10);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      usage_error = true;
      break;
    } else if (!fresh_path) {
      fresh_path = a;
    } else if (!ref_path) {
      ref_path = a;
    } else {
      usage_error = true;
      break;
    }
  }
  // The positional pair is required unless only artifact checks were asked.
  const bool artifacts_only =
      !fresh_path && (!stream_paths.empty() || !merge_paths.empty() ||
                      !kernel_paths.empty());
  if (usage_error || (!artifacts_only && (!fresh_path || !ref_path))) {
    std::fprintf(stderr,
                 "usage: %s FRESH.json REFERENCE.json "
                 "[--min-pooling-speedup=F]\n"
                 "       [--stream=SLOTS.jsonl]... "
                 "[--merge-summary=MERGED.json]...\n"
                 "       [--kernels=BENCH_kernels.json]... "
                 "[--min-kernel-speedup=F]\n"
                 "       %s --cross-check SIM_RUN.json SHM_RUN.json\n",
                 argv[0], argv[0]);
    return 1;
  }

  if (cross_check) {
    check_cross(fresh_path, ref_path);
    if (failures == 0) return 0;
    std::fprintf(stderr, "bench_check: %d failure(s)\n", failures);
    return 1;
  }

  for (const auto& path : stream_paths) check_stream(path);
  for (const auto& path : merge_paths) check_merge_summary(path);
  for (const auto& path : kernel_paths) check_kernels(path, min_kernel);
  if (artifacts_only) {
    if (failures == 0) {
      std::printf("bench_check: OK (campaign artifacts)\n");
      return 0;
    }
    std::fprintf(stderr, "bench_check: %d failure(s)\n", failures);
    return 1;
  }

  json::Value fresh_v, ref_v;
  const bool fresh_ok = check_file("fresh", fresh_path, &fresh_v);
  const bool ref_ok = check_file("reference", ref_path, &ref_v);

  if (fresh_ok) {
    double d = 0;
    if (json::get_num(fresh_v.object(), "pooling_speedup", d) &&
        d < min_pooling)
      fail("fresh", "pooling_speedup " + std::to_string(d) +
                        " is below the floor " + std::to_string(min_pooling) +
                        " — the pooled hot path regressed past its baseline");
  }

  if (fresh_ok && ref_ok) {
    std::printf("informational fresh-vs-reference throughput "
                "(never gates):\n");
    const auto& f = fresh_v.object();
    const auto& r = ref_v.object();
    info_diff(f, r, "unpooled_scenarios_per_sec");
    info_diff(f, r, "serial_scenarios_per_sec");
    info_diff(f, r, "parallel_scenarios_per_sec");
    info_diff(f, r, "pooling_speedup");
    info_diff(f, r, "trace_overhead");
  }

  if (failures == 0) {
    std::printf("bench_check: OK (%s vs %s, pooling floor %.2fx)\n",
                fresh_path, ref_path, min_pooling);
    return 0;
  }
  std::fprintf(stderr, "bench_check: %d failure(s)\n", failures);
  return 1;
}
