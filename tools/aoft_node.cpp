// aoft_node — per-node launcher for the shared-memory transport's exec mode.
//
//   aoft_node --segment=/aoft-<pid>-<seq> --node=P
//
// The parent (aoft_sort_cli --transport=shm --node-bin=..., or any caller
// setting ShmOptions::node_binary) creates the segment and exec's one of
// these per hypercube node.  The launcher re-opens the segment by name,
// reconstructs the node program's options from the segment header — exec'd
// children inherit nothing — and runs exactly the node body a forked child
// would (sort/sft.cpp, sort/snr.cpp).  Exit status: 0 = slot published
// (kDone, or a protocol-detected fail-stop), 1 = harness failure (kFailed,
// reason in the slot), 2 = usage/attach error before the slot was claimed.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "sort/sft.h"
#include "sort/snr.h"
#include "transport/shm_segment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  const char* segment = aoft::util::flag_value(argc, argv, "--segment");
  const char* node_str = aoft::util::flag_value(argc, argv, "--node");
  long long node = -1;
  if (segment == nullptr || node_str == nullptr ||
      !aoft::util::parse_i64(node_str, node) || node < 0) {
    std::fprintf(stderr, "usage: %s --segment=NAME --node=P\n", argv[0]);
    return 2;
  }
  try {
    auto seg = aoft::transport::ShmSegment::attach(segment);
    if (node >= static_cast<long long>(seg.num_nodes())) {
      std::fprintf(stderr, "%s: node %lld outside the %u-node cube\n", argv[0],
                   node, seg.num_nodes());
      return 2;
    }
    const auto p = static_cast<aoft::cube::NodeId>(node);
    return seg.header().algo == 0 ? aoft::sort::detail::run_sft_shm_node(seg, p)
                                  : aoft::sort::detail::run_snr_shm_node(seg, p);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
