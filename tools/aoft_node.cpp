// aoft_node — per-node launcher for the multi-process transports' exec mode.
//
//   aoft_node --segment=/aoft-<pid>-<seq> --node=P            (shm backend)
//   aoft_node --connect=HOST:PORT --node=P [--listen=ADDR[:PORT]]  (tcp)
//
// Shm mode: the parent (aoft_sort_cli --transport=shm --node-bin=..., or any
// caller setting ShmOptions::node_binary) creates the segment and exec's one
// of these per hypercube node.  The launcher re-opens the segment by name and
// reconstructs the node program's options from the segment header — exec'd
// children inherit nothing.
//
// Tcp mode: --connect names the parent's rendezvous socket.  The launcher
// binds its own listen socket (--listen, default 127.0.0.1 ephemeral), HELLOs
// the parent, and blocks for the CONFIG broadcast, which carries everything
// the segment header would (docs/PROTOCOL.md §13.2) — including which
// algorithm to run.  This is also the manual launcher for nodes pinned to
// other machines via --hosts: start it by hand there, pointing --connect at
// the driving host.
//
// Either way it then runs exactly the node body a forked child would
// (sort/sft.cpp, sort/snr.cpp).  Exit status: 0 = result published (kDone,
// or a protocol-detected fail-stop), 1 = harness failure (kFailed, reason in
// the slot/FINISH), 2 = usage/attach/rendezvous error before the run began.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "sort/sft.h"
#include "sort/snr.h"
#include "transport/shm_segment.h"
#include "transport/tcp_transport.h"
#include "util/flags.h"

namespace {

// "HOST:PORT" / "HOST" → (addr, port).  Returns false on garbage.
bool split_endpoint(const char* s, std::string& addr, std::uint16_t& port,
                    bool port_required) {
  const char* colon = std::strrchr(s, ':');
  if (colon == nullptr) {
    if (port_required || *s == '\0') return false;
    addr = s;
    return true;
  }
  long long v = 0;
  if (!aoft::util::parse_i64(colon + 1, v) || v < 0 || v > 65535) return false;
  if (colon == s) return false;
  addr.assign(s, colon);
  port = static_cast<std::uint16_t>(v);
  return true;
}

int run_tcp(const char* connect, long long node, const char* listen,
            const char* argv0) {
  std::string parent_addr;
  std::uint16_t parent_port = 0;
  if (!split_endpoint(connect, parent_addr, parent_port, true) ||
      parent_port == 0) {
    std::fprintf(stderr, "%s: --connect needs HOST:PORT\n", argv0);
    return 2;
  }
  std::string listen_addr = "127.0.0.1";
  std::uint16_t listen_port = 0;
  if (listen != nullptr &&
      !split_endpoint(listen, listen_addr, listen_port, false)) {
    std::fprintf(stderr, "%s: --listen needs ADDR[:PORT]\n", argv0);
    return 2;
  }
  const auto p = static_cast<aoft::cube::NodeId>(node);
  // The CONFIG wait is bounded by the run deadline: a parent that never
  // broadcasts is indistinguishable from one that died.
  aoft::transport::TcpNodeEndpoint ep(p, parent_addr, parent_port, listen_addr,
                                      listen_port,
                                      aoft::transport::kDefaultRunDeadlineS);
  if (node >= (1LL << ep.config().dim)) {
    std::fprintf(stderr, "%s: node %lld outside the dim-%d cube\n", argv0,
                 node, ep.config().dim);
    return 2;
  }
  return ep.config().algo == 0 ? aoft::sort::detail::run_sft_tcp_node(ep, p)
                               : aoft::sort::detail::run_snr_tcp_node(ep, p);
}

}  // namespace

int main(int argc, char** argv) {
  const char* segment = aoft::util::flag_value(argc, argv, "--segment");
  const char* connect = aoft::util::flag_value(argc, argv, "--connect");
  const char* node_str = aoft::util::flag_value(argc, argv, "--node");
  long long node = -1;
  if ((segment == nullptr) == (connect == nullptr) || node_str == nullptr ||
      !aoft::util::parse_i64(node_str, node) || node < 0) {
    std::fprintf(stderr,
                 "usage: %s --segment=NAME --node=P\n"
                 "       %s --connect=HOST:PORT --node=P [--listen=ADDR[:PORT]]\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    if (connect != nullptr) {
      return run_tcp(connect, node,
                     aoft::util::flag_value(argc, argv, "--listen"), argv[0]);
    }
    auto seg = aoft::transport::ShmSegment::attach(segment);
    if (node >= static_cast<long long>(seg.num_nodes())) {
      std::fprintf(stderr, "%s: node %lld outside the %u-node cube\n", argv[0],
                   node, seg.num_nodes());
      return 2;
    }
    const auto p = static_cast<aoft::cube::NodeId>(node);
    return seg.header().algo == 0 ? aoft::sort::detail::run_sft_shm_node(seg, p)
                                  : aoft::sort::detail::run_snr_shm_node(seg, p);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
