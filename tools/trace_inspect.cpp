// trace_inspect — validate, summarize and diff aoft run traces.
//
//   trace_inspect --check FILE      schema-validate (JSONL or Chrome format),
//                                   print "OK format=<f> events=<n>"
//   trace_inspect --summary FILE    per-stage digest of a JSONL trace
//   trace_inspect --diff A B        byte-compare two JSONL traces; prints the
//                                   first differing line (traces are
//                                   deterministic, so equal runs are equal
//                                   files).  Lines recording the worker
//                                   placement plan (worker.cpu /
//                                   worker.node, docs/PROTOCOL.md §9.4) are
//                                   environment metadata, not run content —
//                                   they differ across --pin policies and
//                                   job counts by design, so --diff skips
//                                   them on both sides and reports how many
//                                   it ignored
//
// Exit status: 0 = valid / equal, 1 = invalid / different / usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "obs/trace_io.h"

namespace {

using namespace aoft;

int check(const std::string& path) {
  std::string error, format;
  std::size_t events = 0;
  if (!obs::validate_trace_file(path, &error, &format, &events)) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s: OK format=%s events=%zu\n", path.c_str(), format.c_str(),
              events);
  return 0;
}

int summary(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string error;
  auto parsed = obs::read_jsonl(is, &error);
  if (!parsed) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::fputs(obs::summarize(*parsed).c_str(), stdout);
  return 0;
}

// Worker placement events describe the execution environment (which CPU a
// pool worker was planned onto), not the run: they legitimately differ
// across --pin policies and job counts while the run content stays
// byte-identical.  The JSONL field order is fixed, so a prefix test is an
// exact kind test.
bool is_placement_line(const std::string& line) {
  return line.rfind("{\"k\":\"worker.", 0) == 0;
}

// The JSONL header declares the total event count, which includes the
// skipped placement events — mask it out of the comparison too.  It may also
// name the transport that carried the run ("sim" vs "shm"); the §11 oracle
// contract is exactly that the *content* matches across transports, so the
// label is environment metadata like placement, not run content.
bool is_header_line(const std::string& line) {
  return line.rfind("{\"schema\":", 0) == 0;
}

std::string normalize_header(std::string s) {
  const auto ev = s.rfind(",\"events\":");
  if (ev != std::string::npos) s.erase(ev);
  constexpr std::string_view kField = ",\"transport\":\"";
  const auto tp = s.find(kField);
  if (tp != std::string::npos) {
    const auto end = s.find('"', tp + kField.size());  // value's close quote
    if (end != std::string::npos) s.erase(tp, end - tp + 1);
  }
  return s;
}

int diff(const std::string& a_path, const std::string& b_path) {
  std::ifstream a(a_path), b(b_path);
  if (!a || !b) {
    std::fprintf(stderr, "cannot open %s\n", (!a ? a_path : b_path).c_str());
    return 1;
  }
  std::size_t ignored = 0;
  bool header_differs = false;
  // Next comparable line, skipping placement events.
  auto next = [&ignored](std::ifstream& is, std::string& line) {
    while (std::getline(is, line)) {
      if (is_placement_line(line)) {
        ++ignored;
        continue;
      }
      return true;
    }
    return false;
  };
  std::string la, lb;
  std::size_t lineno = 0;
  for (;;) {
    const bool ga = next(a, la);
    const bool gb = next(b, lb);
    ++lineno;
    if (!ga && !gb) {
      if (ignored > 0)
        std::printf("traces identical (%zu lines, %zu placement lines "
                    "ignored%s)\n",
                    lineno - 1, ignored,
                    header_differs ? ", headers differ only in event count"
                                   : "");
      else
        std::printf("traces identical (%zu lines)\n", lineno - 1);
      return 0;
    }
    if (ga != gb) {
      std::printf("traces differ: %s ends at line %zu\n",
                  (ga ? b_path : a_path).c_str(), lineno - 1);
      return 1;
    }
    if (la != lb) {
      // Header event counts include placement events, and the transport
      // label legitimately differs across backends; tolerate exactly those.
      if (lineno == 1 && is_header_line(la) && is_header_line(lb)) {
        if (normalize_header(la) == normalize_header(lb)) {
          header_differs = true;
          continue;
        }
      }
      std::printf("traces differ at line %zu:\n- %s\n+ %s\n", lineno,
                  la.c_str(), lb.c_str());
      return 1;
    }
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --check FILE\n"
               "       %s --summary FILE\n"
               "       %s --diff A B\n",
               argv0, argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--check" && argc == 3) return check(argv[2]);
  if (cmd == "--summary" && argc == 3) return summary(argv[2]);
  if (cmd == "--diff" && argc == 4) return diff(argv[2], argv[3]);
  return usage(argv[0]);
}
