// campaign_merge: fold per-shard campaign checkpoints back into the
// canonical whole (docs/PROTOCOL.md §10.4).
//
//   campaign_merge --out=merged.ckp shard0.ckp shard1.ckp ...
//                  [--stream=merged.jsonl] [--summary=merged.json]
//                  [--oracle=full.jsonl] [--allow-partial]
//
// Every input must be a loadable checkpoint of the *same* campaign (same
// dim/block/runs/seed/mode/checks and shard count, distinct shard indices);
// anything else is a loud per-file error.  The merged artifact claims shard
// 0/1 — the whole slot space — so its stream and summary are byte-identical
// to what one unsharded, uninterrupted run produces, regardless of how the
// work was split (proved against --oracle, which byte-compares the merged
// stream with an unsharded run's stream and records the verdict in the
// summary JSON as "summaries_identical").
//
// Exit status: 0 = merged (and complete, unless --allow-partial);
// 1 = usage; 2 = a shard failed to load or the parts are inconsistent;
// 3 = merged coverage is incomplete without --allow-partial;
// 4 = an output file could not be written;
// 5 = --oracle given and the streams differ.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "fault/campaign_store.h"
#include "obs/json.h"
#include "util/atomic_file.h"

namespace {

using namespace aoft;

// Canonical merged-summary JSON (consumed by tools/bench_check --merge-summary).
std::string summary_json(const fault::CampaignConfig& cfg,
                         const fault::CheckpointData& merged, int shard_count_in,
                         bool complete, const char* oracle_verdict) {
  const auto id = merged.identity;
  std::string out = "{\n  \"schema\": \"aoft-campaign-merge-v1\",\n";
  out += "  \"dim\": " + std::to_string(id.dim) + ",\n";
  out += "  \"block\": " + std::to_string(id.block) + ",\n";
  out += "  \"runs_per_class\": " + std::to_string(id.runs_per_class) + ",\n";
  out += "  \"seed\": " + std::to_string(id.seed) + ",\n";
  out += "  \"mode\": ";
  out += obs::json::escape(
      to_string(static_cast<fault::InjectionMode>(id.mode)));
  out += ",\n";
  out += "  \"shard_count_in\": " + std::to_string(shard_count_in) + ",\n";
  out += "  \"slots_total\": " +
         std::to_string(fault::identity_total_slots(id)) + ",\n";
  out += "  \"slots_done\": " + std::to_string(merged.records.size()) + ",\n";
  out += std::string("  \"complete\": ") + (complete ? "true" : "false") +
         ",\n";

  long long silent_total = 0;
  if (static_cast<fault::InjectionMode>(id.mode) ==
      fault::InjectionMode::kScripted) {
    const auto summary = fault::summarize_slots(cfg, merged);
    out += "  \"sft\": [\n";
    for (std::size_t i = 0; i < summary.sft.size(); ++i) {
      const auto& t = summary.sft[i];
      silent_total += t.silent_wrong;
      out += "    {\"class\": ";
      out += obs::json::escape(fault::to_string(t.fclass));
      out += ", \"runs\": " + std::to_string(t.runs);
      out += ", \"detected\": " + std::to_string(t.detected);
      out += ", \"masked\": " + std::to_string(t.masked);
      out += ", \"silent_wrong\": " + std::to_string(t.silent_wrong);
      out += ", \"attempts\": " + std::to_string(t.attempts);
      out += ", \"dropped\": " + std::to_string(t.dropped);
      out += ", \"multi_fired\": " + std::to_string(t.multi_fired);
      out += i + 1 < summary.sft.size() ? "},\n" : "}\n";
    }
    out += "  ],\n";
    long long snr_silent = 0;
    for (const auto& t : summary.snr) snr_silent += t.silent_wrong;
    out += "  \"snr_silent_wrong_total\": " + std::to_string(snr_silent) +
           ",\n";
  } else {
    const auto tally = fault::summarize_soak(cfg, merged);
    silent_total = tally.silent_wrong_in_bound;
    out += "  \"soak\": {\"runs\": " + std::to_string(tally.runs);
    out += ", \"detected\": " + std::to_string(tally.detected);
    out += ", \"masked\": " + std::to_string(tally.masked);
    out += ", \"silent_wrong_in_bound\": " +
           std::to_string(tally.silent_wrong_in_bound);
    out += ", \"silent_wrong_beyond\": " +
           std::to_string(tally.silent_wrong_beyond);
    out += ", \"beyond_bound_runs\": " +
           std::to_string(tally.beyond_bound_runs);
    out += ", \"multi_fired\": " + std::to_string(tally.multi_fired);
    out += ", \"faults_fired\": " + std::to_string(tally.faults_fired);
    out += ", \"attempts\": " + std::to_string(tally.attempts);
    out += ", \"dropped\": " + std::to_string(tally.dropped);
    out += ", \"max_dislocation\": " + std::to_string(tally.max_dislocation);
    out += "},\n";
  }
  out += "  \"silent_wrong_total\": " + std::to_string(silent_total) + ",\n";
  out += std::string("  \"summaries_identical\": ") + oracle_verdict + "\n";
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, stream_path, summary_path, oracle_path;
  bool allow_partial = false;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a.rfind("--stream=", 0) == 0) {
      stream_path = a.substr(9);
    } else if (a.rfind("--summary=", 0) == 0) {
      summary_path = a.substr(10);
    } else if (a.rfind("--oracle=", 0) == 0) {
      oracle_path = a.substr(9);
    } else if (a == "--allow-partial") {
      allow_partial = true;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 1;
    } else {
      shard_paths.push_back(a);
    }
  }
  if (out_path.empty() || shard_paths.empty()) {
    std::fprintf(stderr,
                 "usage: campaign_merge --out=MERGED.ckp SHARD.ckp...\n"
                 "       [--stream=MERGED.jsonl] [--summary=MERGED.json]\n"
                 "       [--oracle=FULL.jsonl] [--allow-partial]\n");
    return 1;
  }

  std::vector<fault::CheckpointData> parts(shard_paths.size());
  for (std::size_t i = 0; i < shard_paths.size(); ++i) {
    std::string err;
    const auto status =
        fault::load_checkpoint(shard_paths[i], &parts[i], &err);
    if (status != fault::StoreStatus::kOk) {
      std::fprintf(stderr, "%s: [%s] %s\n", shard_paths[i].c_str(),
                   fault::to_string(status), err.c_str());
      return 2;
    }
  }

  const int shard_count_in = parts.front().identity.shard_count;
  fault::CheckpointData merged;
  std::string err;
  const auto status = fault::merge_checkpoints(parts, &merged, &err);
  if (status != fault::StoreStatus::kOk) {
    std::fprintf(stderr, "merge: [%s] %s\n", fault::to_string(status),
                 err.c_str());
    return 2;
  }
  const std::size_t total = fault::identity_total_slots(merged.identity);
  const bool complete = merged.records.size() == total;

  if (!fault::save_checkpoint(out_path, merged, &err)) {
    std::fprintf(stderr, "%s: %s\n", out_path.c_str(), err.c_str());
    return 4;
  }

  std::string merged_stream;
  if (!stream_path.empty() || !oracle_path.empty()) {
    merged_stream = fault::stream_header(merged.identity);
    for (const auto& rec : merged.records)
      merged_stream += fault::stream_line(merged.identity, rec);
  }
  if (!stream_path.empty() &&
      !aoft::util::write_file_atomic(stream_path, merged_stream, &err)) {
    std::fprintf(stderr, "%s: %s\n", stream_path.c_str(), err.c_str());
    return 4;
  }

  const char* verdict = "null";
  bool oracle_matches = true;
  if (!oracle_path.empty()) {
    std::string oracle;
    if (!aoft::util::read_file(oracle_path, &oracle, &err)) {
      std::fprintf(stderr, "%s: %s\n", oracle_path.c_str(), err.c_str());
      return 4;
    }
    oracle_matches = oracle == merged_stream;
    verdict = oracle_matches ? "true" : "false";
  }

  if (!summary_path.empty()) {
    const auto cfg = fault::config_of(merged.identity);
    const std::string json =
        summary_json(cfg, merged, shard_count_in, complete, verdict);
    if (!aoft::util::write_file_atomic(summary_path, json, &err)) {
      std::fprintf(stderr, "%s: %s\n", summary_path.c_str(), err.c_str());
      return 4;
    }
  }

  std::printf("merged %zu shard(s): %zu/%zu slots%s%s\n", parts.size(),
              merged.records.size(), total, complete ? "" : " (partial)",
              oracle_path.empty()
                  ? ""
                  : (oracle_matches ? ", stream == oracle"
                                    : ", stream != ORACLE"));
  if (!complete && !allow_partial) {
    std::fprintf(stderr,
                 "merge: coverage incomplete (%zu of %zu slots); rerun the "
                 "missing shards or pass --allow-partial\n",
                 merged.records.size(), total);
    return 3;
  }
  if (!oracle_matches) return 5;
  return 0;
}
