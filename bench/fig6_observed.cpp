// Figure 6 — "Sorting Time Comparisons" (paper §5).
//
// The paper times S_NR, S_FT and a host sequential sort for 32-bit integers
// on 4, 8, 16 and 32 Ncube nodes (one element per node) and finds the host
// sort still ahead at those sizes, with the measured points matching the
// fitted component model.  This harness regenerates the same series on the
// simulated multicomputer — in calibrated logical clock ticks — and extends
// the sweep a little beyond 32 nodes to make the approaching crossover
// visible (the full projection is bench/fig7_projection).

#include <cmath>
#include <iostream>

#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

// The paper overlays a "(Theoretical)" line computed from its fitted
// component table; we overlay the same forms with the paper's constants.
double paper_sft_model(double n) {
  const double l = std::log2(n);
  return 8.0 * l * l + 0.05 * n * l + 11.5 * n;
}
double paper_seq_model(double n) {
  return 14.0 * n + 0.45 * n * std::log2(n);
}

}  // namespace

int main() {
  using namespace aoft;

  std::cout << "Figure 6 reproduction: observed sorting time (logical clock ticks)\n"
            << "one 32-bit key per node, uniform random input\n"
            << "(model) columns are the paper's own fitted forms, its constants\n\n";

  util::Table table({"nodes", "S_NR", "S_FT", "S_FT(model)", "host-seq",
                     "seq(model)", "host-verified", "S_FT/host"});
  // The paper measures 4..32 nodes; rows beyond 32 extend the same
  // experiment toward the crossover region.
  for (int dim = 2; dim <= 8; ++dim) {
    const std::size_t n = std::size_t{1} << dim;
    const auto input = util::random_keys(1989 + static_cast<std::uint64_t>(dim), n);

    const auto snr = sort::run_snr(dim, input);
    const auto sft = sort::run_sft(dim, input);
    const auto host = sort::run_host_sort(dim, input);
    const auto verified = sort::run_host_verified_snr(dim, input);

    table.add_row({util::fmt_int(static_cast<long long>(n)),
                   util::fmt_double(snr.summary.elapsed, 1),
                   util::fmt_double(sft.summary.elapsed, 1),
                   util::fmt_double(paper_sft_model(static_cast<double>(n)), 1),
                   util::fmt_double(host.summary.elapsed, 1),
                   util::fmt_double(paper_seq_model(static_cast<double>(n)), 1),
                   util::fmt_double(verified.summary.elapsed, 1),
                   util::fmt_double(sft.summary.elapsed / host.summary.elapsed, 2)});
  }
  table.print(std::cout);

  std::cout << "\npaper's qualitative findings to compare against:\n"
            << "  * S_NR is far cheapest (no reliability, O(log^2 N) time),\n"
            << "  * host sequential sort beats S_FT at 4..32 nodes (constant\n"
            << "    multiplier dominates at small N; S_FT/host > 1 there),\n"
            << "  * the S_FT/host ratio falls as N grows - the crossover is\n"
            << "    approaching (Figure 7 carries it to large systems).\n\n";

  std::cout << "CSV:\n";
  table.print_csv(std::cout);
  return 0;
}
