// Recovery ladder vs blind restart (extension, DESIGN.md §7).
//
// The paper's S_FT ends at fail-stop; the recovery supervisor escalates
// through rollback re-execution, subcube reconfiguration and a terminal host
// sort until the output is correct.  This harness quantifies what the ladder
// buys over the naive alternative (full restart until the budget runs out,
// then host sort): attempts used, work salvaged by checkpoint rollback, and
// time to correct output.
//
//   recovered-work fraction = sum of resume stages / ((n+1) * retries)
//
// is the share of stage-work the rollback rungs did *not* have to redo; 0 for
// any restart-based policy.  Every row must end kCorrect — the never-wrong
// invariant — whatever rung it terminates on.

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/adversary.h"
#include "fault/supervisor.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace aoft;

struct Scenario {
  std::string name;
  bool transient = false;  // fault present on attempt 0 only
  std::function<fault::Mutator()> mutator;  // link fault (optional)
  fault::NodeFaultMap node_faults;          // processor fault (optional)
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"transient drop s3", true,
                 [] { return fault::drop_message(6, {3, 1}); }, {}});
  out.push_back({"transient garble s3", true,
                 [] { return fault::garble_lbs(6, {3, 0}, 77); }, {}});
  {
    Scenario s{"transient halt s3", true, nullptr, {}};
    s.node_faults[9].halt_at = fault::StagePoint{3, 0};
    out.push_back(std::move(s));
  }
  {
    Scenario s{"permanent halt s2", false, nullptr, {}};
    s.node_faults[9].halt_at = fault::StagePoint{2, 0};
    out.push_back(std::move(s));
  }
  out.push_back({"permanent dead link", false,
                 [] { return fault::dead_link(3, 2, {1, 0}); }, {}});
  {
    Scenario s{"permanent invert s1", false, nullptr, {}};
    s.node_faults[5].invert_direction_from = fault::StagePoint{1, 1};
    out.push_back(std::move(s));
  }
  return out;
}

fault::SupervisedRun run_case(int dim, std::span<const sort::Key> input,
                              const Scenario& sc,
                              const fault::RecoveryPolicy& policy) {
  sort::SftOptions base;
  base.block = 8;
  fault::Adversary adv;
  if (sc.mutator) adv.add(sc.mutator());
  fault::InterceptorFactory icpt = nullptr;
  if (sc.mutator) {
    icpt = [&adv, &sc](int attempt) -> sim::LinkInterceptor* {
      return (sc.transient && attempt > 0) ? nullptr : &adv;
    };
  }
  fault::NodeFaultFactory nf = nullptr;
  if (!sc.node_faults.empty()) {
    nf = [&sc](int attempt) -> fault::NodeFaultMap {
      return (sc.transient && attempt > 0) ? fault::NodeFaultMap{}
                                           : sc.node_faults;
    };
  }
  return run_supervised_sort(dim, input, base, policy, icpt, nf);
}

}  // namespace

int main(int argc, char** argv) {
  const int dim = 5;
  const std::size_t m = 8;
  const int jobs = util::flag_int(argc, argv, "--jobs", 1);
  auto input = util::random_keys(42, (std::size_t{1} << dim) * m);

  fault::RecoveryPolicy ladder;  // defaults: rollback + reconfigure + host
  fault::RecoveryPolicy restart;
  restart.rollback = false;
  restart.reconfigure = false;  // blind full restarts, then the host rung
  restart.attempts_per_config = ladder.attempts_per_config;
  restart.max_attempts = ladder.max_attempts;

  std::cout << "Recovery ladder vs full restart (dim " << dim
            << ", m = 8, time to *correct* output)\n\n";

  util::Table table({"scenario", "policy", "attempts", "final rung",
                     "salvaged", "recovered-work", "ticks", "speedup"});
  bool all_correct = true;
  // Each (scenario, policy) pair is an independent single-OS-thread
  // simulation; fan them out and report rows in the original order.
  const auto cases = scenarios();
  std::vector<fault::SupervisedRun> restarts(cases.size());
  std::vector<fault::SupervisedRun> ladders(cases.size());
  const auto body = [&](std::size_t u) {
    const auto& sc = cases[u / 2];
    if (u % 2 == 0)
      restarts[u / 2] = run_case(dim, input, sc, restart);
    else
      ladders[u / 2] = run_case(dim, input, sc, ladder);
  };
  const int n_jobs = util::ThreadPool::resolve(jobs);
  if (n_jobs <= 1) {
    for (std::size_t u = 0; u < cases.size() * 2; ++u) body(u);
  } else {
    util::ThreadPool pool(n_jobs);
    pool.parallel_for(cases.size() * 2, body);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& sc = cases[i];
    const auto& base = restarts[i];
    const auto& lad = ladders[i];
    all_correct &= base.outcome == sort::Outcome::kCorrect;
    all_correct &= lad.outcome == sort::Outcome::kCorrect;
    for (const auto* r : {&base, &lad}) {
      const bool is_ladder = r == &lad;
      const int retries = r->attempts - 1;
      const double frac =
          retries > 0 ? static_cast<double>(r->stages_salvaged) /
                            (static_cast<double>(dim + 1) * retries)
                      : 0.0;
      table.add_row(
          {sc.name, is_ladder ? "ladder" : "restart",
           util::fmt_int(r->attempts), fault::to_string(r->final_rung),
           util::fmt_int(r->stages_salvaged), util::fmt_double(frac, 2),
           util::fmt_double(r->total_ticks, 1),
           is_ladder ? util::fmt_double(base.total_ticks / r->total_ticks, 2)
                     : "1.00"});
    }
  }
  table.print(std::cout);
  std::cout << "\nnever-wrong invariant: "
            << (all_correct ? "every run ended correct"
                            : "VIOLATED — a run ended non-correct")
            << "\n";
  std::cout << "'salvaged' sums the resume stages of rollback attempts; the\n"
            << "ladder rolls transient faults back to the last certified\n"
            << "boundary and survives permanent ones by retiring the suspect\n"
            << "subcube, where restart pays the full re-sort every time.\n";
  return all_correct ? 0 : 1;
}
