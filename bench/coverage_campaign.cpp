// §4 — "Error Coverage and Resilience" (Theorem 3).
//
// The paper proves S_FT "produces either a correct bitonic sort or stops
// with an error" under up to n-1 Byzantine-faulty nodes.  This harness runs
// a randomized fault-injection campaign over every adversary class in the
// model (link corruption, two-faced gossip, relay tampering, message loss,
// dead links, garbled piggybacks, fail-silence, miscomputation, consistent
// lying) and tabulates the outcome per class — for S_FT and, as the
// contrast column the paper's argument rests on, for the unprotected S_NR.
//
// Required result: the S_FT silent-wrong column is identically zero.

#include <iostream>
#include <map>

#include "fault/campaign.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aoft;

  fault::CampaignConfig cfg;
  cfg.dim = util::flag_int(argc, argv, "--dim", 4);
  cfg.runs_per_class = util::flag_int(argc, argv, "--runs", 40);
  cfg.seed = util::flag_u64(argc, argv, "--seed", 1989);
  cfg.jobs = util::flag_int(argc, argv, "--jobs", 1);

  std::cout << "Section 4 reproduction: error coverage campaign\n"
            << "cube dimension " << cfg.dim << " (n-1 = " << cfg.dim - 1
            << " tolerated faults), " << cfg.runs_per_class
            << " exercised scenarios per class, jobs=" << cfg.jobs << "\n\n";

  const auto summary = fault::run_campaign(cfg);

  util::Table table({"fault class", "runs", "dropped", "S_FT detected",
                     "S_FT masked", "S_FT SILENT-WRONG", "S_NR silent-wrong"});
  int total_silent = 0;
  int total_dropped = 0;
  for (std::size_t i = 0; i < summary.sft.size(); ++i) {
    const auto& s = summary.sft[i];
    const auto& b = summary.snr[i];
    total_silent += s.silent_wrong;
    total_dropped += s.dropped;
    table.add_row({fault::to_string(s.fclass), util::fmt_int(s.runs),
                   util::fmt_int(s.dropped), util::fmt_int(s.detected),
                   util::fmt_int(s.masked), util::fmt_int(s.silent_wrong),
                   b.runs > 0 ? util::fmt_int(b.silent_wrong) + "/" +
                                    util::fmt_int(b.runs)
                              : "n/a"});
  }
  table.print(std::cout);
  if (total_dropped > 0)
    std::cout << "\nWARNING: " << total_dropped << " slot(s) never exercised "
              << "their fault within the redraw budget; percentages above are "
              << "over the per-class 'runs' column, not the requested "
              << cfg.runs_per_class << ".\n";

  // Detection latency: stages between injection and the first ERROR signal.
  std::map<int, int> latency_histogram;
  int detected_runs = 0;
  for (const auto& r : summary.runs) {
    if (r.outcome != sort::Outcome::kFailStop) continue;
    ++detected_runs;
    ++latency_histogram[r.detection_stage - r.scenario.point.stage];
  }
  std::cout << "\ndetection latency (stages after injection):\n";
  util::Table lat({"latency", "runs", "share"});
  for (const auto& [stages, count] : latency_histogram)
    lat.add_row({util::fmt_int(stages), util::fmt_int(count),
                 util::fmt_double(100.0 * count / detected_runs, 1) + "%"});
  lat.print(std::cout);

  // Theorem 3's actual statement is about k simultaneous faults, k <= n-1:
  // re-run with random *mixed* fault sets of growing size (plus k = n, one
  // past the bound, where the theorem makes no promise).
  std::cout << "\nmulti-fault resilience (random mixed classes, distinct nodes):\n";
  fault::CampaignConfig multi_cfg = cfg;
  multi_cfg.runs_per_class = 30;
  const auto tallies = fault::run_multi_campaign(multi_cfg, cfg.dim);
  util::Table multi({"simultaneous faults", "runs", "dropped", "detected",
                     "masked", "SILENT-WRONG", "within Thm 3 bound"});
  for (const auto& t : tallies) {
    multi.add_row({util::fmt_int(t.k), util::fmt_int(t.runs),
                   util::fmt_int(t.dropped), util::fmt_int(t.detected),
                   util::fmt_int(t.masked), util::fmt_int(t.silent_wrong),
                   t.k <= cfg.dim - 1 ? "yes" : "no (k = n)"});
    if (t.k <= cfg.dim - 1) total_silent += t.silent_wrong;
  }
  multi.print(std::cout);

  std::cout << "\nTheorem 3 verdict: S_FT silent-wrong runs (within bound) = "
            << total_silent
            << (total_silent == 0 ? "  [OK: never an incorrect result]"
                                  : "  [VIOLATION]")
            << "\n";
  return total_silent == 0 ? 0 : 1;
}
