// Figure 8 — "Block Sorting Time Comparisons" (paper §5, last experiment).
//
// Each processor holds m elements; compare-exchange becomes a 2m merge-split
// plus local sorting, adding O(m + m·log2 m) per step to both S_NR and S_FT,
// and every predicate scales by m.  The paper plots S_FT against the host
// sequential sort "for a representative value of m" and observes a plot that
// is "virtually a right shift" of the single-element comparison: block
// sorting amortizes the per-message overhead, so reliable parallel sorting
// wins from small cube sizes onward.

#include <iostream>

#include "sort/sequential.h"
#include "sort/sft.h"
#include "sort/snr.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aoft;

  const std::size_t m = 32;  // representative block size
  std::cout << "Figure 8 reproduction: block bitonic sort/merge, m = " << m
            << " keys per node\n\n";

  util::Table table({"nodes", "total keys", "S_NR", "S_FT", "host-seq",
                     "S_FT/host"});
  for (int dim = 2; dim <= 8; ++dim) {
    const std::size_t n = std::size_t{1} << dim;
    const auto input =
        util::random_keys(88 + static_cast<std::uint64_t>(dim), n * m);

    sort::SnrOptions snr_opts;
    snr_opts.block = m;
    sort::SftOptions sft_opts;
    sft_opts.block = m;
    sort::HostSortOptions host_opts;
    host_opts.block = m;

    const auto snr = sort::run_snr(dim, input, snr_opts);
    const auto sft = sort::run_sft(dim, input, sft_opts);
    const auto host = sort::run_host_sort(dim, input, host_opts);

    table.add_row({util::fmt_int(static_cast<long long>(n)),
                   util::fmt_int(static_cast<long long>(n * m)),
                   util::fmt_double(snr.summary.elapsed, 1),
                   util::fmt_double(sft.summary.elapsed, 1),
                   util::fmt_double(host.summary.elapsed, 1),
                   util::fmt_double(sft.summary.elapsed / host.summary.elapsed, 3)});
  }
  table.print(std::cout);

  std::cout << "\npaper's qualitative finding to compare against: with blocks\n"
            << "the S_FT/host ratio drops below 1 at much smaller cube sizes\n"
            << "than in Figure 6 — 'fault-tolerant sorting becomes quickly\n"
            << "more efficient than host sorting when the bitonic sort/merge\n"
            << "is considered'.\n\n";

  // The m-sweep the figure's caption implies: the crossover cube size as a
  // function of the block size.
  std::cout << "crossover cube size vs block size:\n";
  util::Table sweep({"m", "smallest N with S_FT <= host"});
  for (std::size_t mm : {1u, 4u, 16u, 64u}) {
    long long cross = -1;
    for (int dim = 2; dim <= 8 && cross < 0; ++dim) {
      const std::size_t n = std::size_t{1} << dim;
      const auto input =
          util::random_keys(99 + mm + static_cast<std::uint64_t>(dim), n * mm);
      sort::SftOptions sft_opts;
      sft_opts.block = mm;
      sort::HostSortOptions host_opts;
      host_opts.block = mm;
      const auto sft = sort::run_sft(dim, input, sft_opts);
      const auto host = sort::run_host_sort(dim, input, host_opts);
      if (sft.summary.elapsed <= host.summary.elapsed)
        cross = static_cast<long long>(n);
    }
    sweep.add_row({util::fmt_int(static_cast<long long>(mm)),
                   cross < 0 ? "> 256" : util::fmt_int(cross)});
  }
  sweep.print(std::cout);
  return 0;
}
