// Figure 7 — "Projected Sorting Time Comparisons - Large Systems".
//
// The paper could run at most 32 nodes, so it fitted the §5 component table
// and projected run times out to the cube sizes a "real multicomputer
// application" would use, concluding (1) S_FT rapidly overtakes the host
// sequential sort, and (2) in the limit reliable parallel sorting costs ~11%
// of sequential sorting.  We do the same: fit the models on simulated
// measurements (dims 2..11, sizes the paper could not reach), then project
// to 2^20 nodes, locate the crossover and report the asymptotic ratio.

#include <cmath>
#include <iostream>

#include "analysis/models.h"
#include "sort/sequential.h"
#include "sort/sft.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aoft;

  std::cout << "Figure 7 reproduction: projected run times for large systems\n\n";

  // --- measure -------------------------------------------------------------
  std::vector<double> ns, sft_comm, sft_comp, seq_comm, seq_comp;
  std::vector<double> sft_total_measured, seq_total_measured;
  for (int dim = 2; dim <= 11; ++dim) {
    const std::size_t n = std::size_t{1} << dim;
    const auto input = util::random_keys(7 + static_cast<std::uint64_t>(dim), n);
    const auto sft = sort::run_sft(dim, input);
    const auto host = sort::run_host_sort(dim, input);
    ns.push_back(static_cast<double>(n));
    sft_comm.push_back(sft.summary.max_comm);
    sft_comp.push_back(sft.summary.max_comp);
    seq_comm.push_back(host.summary.host_comm);
    seq_comp.push_back(host.summary.host_comp);
    sft_total_measured.push_back(sft.summary.elapsed);
    seq_total_measured.push_back(host.summary.elapsed);
  }

  // --- fit -----------------------------------------------------------------
  analysis::TimeModel sft_model, seq_model;
  sft_model.comm_basis = analysis::sft_comm_basis();
  sft_model.comm = analysis::fit(sft_model.comm_basis, ns, sft_comm);
  sft_model.comp_basis = analysis::sft_comp_basis();
  sft_model.comp = analysis::fit(sft_model.comp_basis, ns, sft_comp);
  seq_model.comm_basis = analysis::seq_comm_basis();
  seq_model.comm = analysis::fit(seq_model.comm_basis, ns, seq_comm);
  seq_model.comp_basis = analysis::seq_comp_basis();
  seq_model.comp = analysis::fit(seq_model.comp_basis, ns, seq_comp);

  std::cout << "fitted on dims 2..11:\n"
            << "  S_FT: " << sft_model.comm.to_string(sft_model.comm_basis)
            << "  +  " << sft_model.comp.to_string(sft_model.comp_basis) << "\n"
            << "  seq:  " << seq_model.comm.to_string(seq_model.comm_basis)
            << "  +  " << seq_model.comp.to_string(seq_model.comp_basis) << "\n\n";

  // --- project -------------------------------------------------------------
  util::Table table({"nodes", "S_FT (model)", "seq (model)", "ratio",
                     "S_FT measured", "seq measured"});
  for (int dim = 2; dim <= 20; ++dim) {
    const double n = std::ldexp(1.0, dim);
    const double a = sft_model.total(n);
    const double b = seq_model.total(n);
    const std::size_t idx = static_cast<std::size_t>(dim - 2);
    const bool measured = idx < sft_total_measured.size();
    table.add_row({util::fmt_int(1LL << dim), util::fmt_sci(a, 3),
                   util::fmt_sci(b, 3), util::fmt_double(a / b, 3),
                   measured ? util::fmt_sci(sft_total_measured[idx], 3) : "-",
                   measured ? util::fmt_sci(seq_total_measured[idx], 3) : "-"});
  }
  table.print(std::cout);

  const auto cross = analysis::crossover_nodes(sft_model, seq_model, 2, 24);
  std::cout << "\ncrossover (model): S_FT overtakes the host sort at "
            << cross << " nodes (paper: beyond its 32-node testbed, within\n"
            << "the sizes 'we are concerned with in a real multicomputer "
               "application')\n";
  std::cout << "asymptotic ratio S_FT/seq: "
            << util::fmt_double(analysis::asymptotic_ratio(sft_model, seq_model), 4)
            << "  (paper: 'in the limit ... 11%' = 0.111)\n";
  return 0;
}
