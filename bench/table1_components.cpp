// §5 component table — "Measurement of the running time for each component
// of the two algorithms yields the following table (measured in clock ticks)":
//
//     Algorithm    Communication Time          Computation Time
//     S_FT         8·log2²N + .05·N·log2 N     11.5·N
//     Sequential   14·N                        0.45·N·log2 N
//
// This harness measures the per-component tick totals on the simulator over
// a sweep of cube sizes, fits the paper's model forms by least squares, and
// prints the recovered coefficients next to the paper's.

#include <cmath>
#include <iostream>

#include "analysis/models.h"
#include "sort/sequential.h"
#include "sort/sft.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aoft;

  std::cout << "Section 5 component-model reproduction\n\n";

  std::vector<double> ns;
  std::vector<double> sft_comm, sft_comp, seq_comm, seq_comp;
  util::Table raw({"nodes", "S_FT comm", "S_FT comp", "seq comm", "seq comp"});
  for (int dim = 2; dim <= 10; ++dim) {
    const std::size_t n = std::size_t{1} << dim;
    const auto input = util::random_keys(42 + static_cast<std::uint64_t>(dim), n);
    const auto sft = sort::run_sft(dim, input);
    const auto host = sort::run_host_sort(dim, input);
    ns.push_back(static_cast<double>(n));
    // Communication of S_FT: the per-node maximum (the paper times the node
    // program); sequential communication/computation happen at the host.
    sft_comm.push_back(sft.summary.max_comm);
    sft_comp.push_back(sft.summary.max_comp);
    seq_comm.push_back(host.summary.host_comm);
    seq_comp.push_back(host.summary.host_comp);
    raw.add_row({util::fmt_int(static_cast<long long>(n)),
                 util::fmt_double(sft.summary.max_comm, 1),
                 util::fmt_double(sft.summary.max_comp, 1),
                 util::fmt_double(host.summary.host_comm, 1),
                 util::fmt_double(host.summary.host_comp, 1)});
  }
  std::cout << "measured component totals (ticks):\n";
  raw.print(std::cout);

  const auto sft_comm_b = analysis::sft_comm_basis();
  const auto sft_comp_b = analysis::sft_comp_basis();
  const auto seq_comm_b = analysis::seq_comm_basis();
  const auto seq_comp_b = analysis::seq_comp_basis();
  const auto f_sft_comm = analysis::fit(sft_comm_b, ns, sft_comm);
  const auto f_sft_comp = analysis::fit(sft_comp_b, ns, sft_comp);
  const auto f_seq_comm = analysis::fit(seq_comm_b, ns, seq_comm);
  const auto f_seq_comp = analysis::fit(seq_comp_b, ns, seq_comp);

  std::cout << "\nfitted model forms (paper's values in brackets):\n\n";
  util::Table fits({"component", "fitted", "paper", "R^2"});
  fits.add_row({"S_FT communication", f_sft_comm.to_string(sft_comm_b),
                "8·log2²N + 0.05·N·log2 N", util::fmt_double(f_sft_comm.r_squared, 4)});
  fits.add_row({"S_FT computation", f_sft_comp.to_string(sft_comp_b), "11.5·N",
                util::fmt_double(f_sft_comp.r_squared, 4)});
  fits.add_row({"sequential communication", f_seq_comm.to_string(seq_comm_b),
                "14·N", util::fmt_double(f_seq_comm.r_squared, 4)});
  fits.add_row({"sequential computation", f_seq_comp.to_string(seq_comp_b),
                "0.45·N·log2 N", util::fmt_double(f_seq_comp.r_squared, 4)});
  fits.print(std::cout);

  std::cout << "\nshape checks:\n"
            << "  S_FT comm N·log2 N coefficient: "
            << util::fmt_double(f_sft_comm.coeffs[1], 4) << " (paper 0.05)\n"
            << "  seq comp N·log2 N coefficient:  "
            << util::fmt_double(f_seq_comp.coeffs[0], 4) << " (paper 0.45)\n"
            << "  their ratio (the paper's limit): "
            << util::fmt_double(f_sft_comm.coeffs[1] / f_seq_comp.coeffs[0], 4)
            << " (paper 0.05/0.45 = 0.111)\n";
  return 0;
}
