// Localization accuracy (extension, DESIGN.md §7).
//
// The paper stops at fail-stop detection; any real system must then decide
// *which* node to retire.  This harness measures, per fault class, how often
// the host-side localization (fault/localization.h) (a) includes the true
// culprit among its suspects, (b) identifies it exactly, and (c) how many
// suspects it names on average — quantifying the diagnostic value of the
// earliest error reports.

#include <iostream>
#include <vector>

#include "fault/campaign.h"
#include "fault/localization.h"
#include "sort/sft.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace aoft;

// Re-run a scenario, keeping the raw reports for diagnosis.
fault::Diagnosis diagnose(const fault::Scenario& s) {
  auto input = util::random_keys(s.input_seed,
                                 (std::size_t{1} << s.dim) * s.block);
  fault::Adversary adversary;
  sort::SftOptions opts;
  opts.block = s.block;
  fault::NodeFaultMap nf;
  // Mirror fault/campaign.cpp's instantiation through the public pieces.
  switch (s.fclass) {
    case fault::FaultClass::kCorruptData:
      adversary.add(fault::corrupt_data(s.faulty, s.point, s.delta));
      break;
    case fault::FaultClass::kCorruptGossip:
      adversary.add(fault::corrupt_gossip_entry(s.faulty, s.point, s.faulty,
                                                s.delta, s.block));
      break;
    case fault::FaultClass::kTwoFacedGossip:
      adversary.add(fault::two_faced_gossip(
          s.faulty, s.point, s.faulty, s.delta, s.block,
          [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
      break;
    case fault::FaultClass::kRelayTamper:
      adversary.add(fault::corrupt_gossip_entry(s.faulty, s.point, s.aux_node,
                                                s.delta, s.block));
      break;
    case fault::FaultClass::kDropMessage:
      adversary.add(fault::drop_message(s.faulty, s.point));
      break;
    case fault::FaultClass::kDeadLink:
      adversary.add(fault::dead_link(s.faulty, s.aux_node, s.point));
      break;
    case fault::FaultClass::kGarbleLbs:
      adversary.add(fault::garble_lbs(s.faulty, s.point, s.input_seed));
      break;
    case fault::FaultClass::kReplayStale:
      adversary.add(fault::replay_stale_lbs(s.faulty, s.point));
      break;
    case fault::FaultClass::kHaltNode:
      nf[s.faulty].halt_at = s.point;
      break;
    case fault::FaultClass::kInvertDirection:
      nf[s.faulty].invert_direction_from = s.point;
      break;
    case fault::FaultClass::kSubstituteValue:
      nf[s.faulty].substitute_at = s.point;
      nf[s.faulty].substitute_value = 3000000000LL + s.delta;
      break;
  }
  opts.node_faults = std::move(nf);
  opts.interceptor = &adversary;
  auto run = sort::run_sft(s.dim, input, opts);
  return fault::localize(run.errors, s.dim);
}

}  // namespace

int main(int argc, char** argv) {
  fault::CampaignConfig cfg;
  cfg.dim = util::flag_int(argc, argv, "--dim", 4);
  cfg.runs_per_class = util::flag_int(argc, argv, "--runs", 30);
  cfg.seed = util::flag_u64(argc, argv, "--seed", 13);
  cfg.jobs = util::flag_int(argc, argv, "--jobs", 1);

  std::cout << "Localization accuracy per fault class (dim " << cfg.dim
            << ", " << cfg.runs_per_class << " detected scenarios each, jobs="
            << cfg.jobs << ")\n\n";

  // One slot = one detected (fail-stop) scenario; attempt a of slot i draws
  // from derive_seed(seed, class, i, a), the campaign engine's schedule, so
  // slots are independent and the table is identical for every job count.
  struct SlotOut {
    bool detected = false;
    bool contained = false;
    bool exact = false;
    int suspects = 0;
  };
  const auto slots = static_cast<std::size_t>(cfg.runs_per_class);
  const auto classes = std::size(fault::kAllFaultClasses);
  std::vector<SlotOut> outs(classes * slots);
  const auto body = [&](std::size_t u) {
    const auto fclass = fault::kAllFaultClasses[u / slots];
    const std::size_t slot = u % slots;
    for (int attempt = 0; attempt < fault::kMaxSlotAttempts; ++attempt) {
      util::Rng rng(util::derive_seed(
          cfg.seed, static_cast<std::uint64_t>(fclass), slot,
          static_cast<std::uint64_t>(attempt)));
      const auto s = fault::draw_scenario(fclass, cfg, rng);
      const auto result = fault::run_scenario_sft(s, cfg);
      if (!result.fault_exercised ||
          result.outcome != sort::Outcome::kFailStop)
        continue;
      const auto d = diagnose(s);
      auto& out = outs[u];
      out.detected = true;
      out.suspects = static_cast<int>(d.suspects.size());
      for (auto sus : d.suspects) out.contained |= sus == s.faulty;
      out.exact =
          d.conclusive && !d.suspects.empty() && d.suspects[0] == s.faulty;
      return;
    }
  };
  const int jobs = util::ThreadPool::resolve(cfg.jobs);
  if (jobs <= 1) {
    for (std::size_t u = 0; u < outs.size(); ++u) body(u);
  } else {
    util::ThreadPool pool(jobs);
    pool.parallel_for(outs.size(), body);
  }

  util::Table table({"fault class", "detected", "culprit in suspects",
                     "exact", "avg suspects"});
  for (std::size_t c = 0; c < classes; ++c) {
    const auto fclass = fault::kAllFaultClasses[c];
    int detected = 0, contained = 0, exact = 0;
    double suspects_sum = 0.0;
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const auto& out = outs[c * slots + slot];
      if (!out.detected) continue;
      ++detected;
      contained += out.contained;
      exact += out.exact;
      suspects_sum += out.suspects;
    }
    table.add_row({fault::to_string(fclass), util::fmt_int(detected),
                   detected ? util::fmt_double(100.0 * contained / detected, 1) + "%"
                            : "-",
                   detected ? util::fmt_double(100.0 * exact / detected, 1) + "%"
                            : "-",
                   detected ? util::fmt_double(suspects_sum / detected, 2) : "-"});
  }
  table.print(std::cout);
  std::cout << "\n'culprit in suspects' is the soundness metric; 'exact' is\n"
            << "precision.  Link-evidenced classes localize to the node or\n"
            << "the link pair (Definition 3 case 2a); window-evidenced classes\n"
            << "(consistent liars) only narrow to the failing inner subcube.\n";
  return 0;
}
