// Localization accuracy (extension, DESIGN.md §7).
//
// The paper stops at fail-stop detection; any real system must then decide
// *which* node to retire.  This harness measures, per fault class, how often
// the host-side localization (fault/localization.h) (a) includes the true
// culprit among its suspects, (b) identifies it exactly, and (c) how many
// suspects it names on average — quantifying the diagnostic value of the
// earliest error reports.

#include <iostream>

#include "fault/campaign.h"
#include "fault/localization.h"
#include "sort/sft.h"
#include "util/table.h"

namespace {

using namespace aoft;

// Re-run a scenario, keeping the raw reports for diagnosis.
fault::Diagnosis diagnose(const fault::Scenario& s) {
  auto input = util::random_keys(s.input_seed,
                                 (std::size_t{1} << s.dim) * s.block);
  fault::Adversary adversary;
  sort::SftOptions opts;
  opts.block = s.block;
  fault::NodeFaultMap nf;
  // Mirror fault/campaign.cpp's instantiation through the public pieces.
  switch (s.fclass) {
    case fault::FaultClass::kCorruptData:
      adversary.add(fault::corrupt_data(s.faulty, s.point, s.delta));
      break;
    case fault::FaultClass::kCorruptGossip:
      adversary.add(fault::corrupt_gossip_entry(s.faulty, s.point, s.faulty,
                                                s.delta, s.block));
      break;
    case fault::FaultClass::kTwoFacedGossip:
      adversary.add(fault::two_faced_gossip(
          s.faulty, s.point, s.faulty, s.delta, s.block,
          [](cube::NodeId dest) { return (dest & 1u) == 1u; }));
      break;
    case fault::FaultClass::kRelayTamper:
      adversary.add(fault::corrupt_gossip_entry(s.faulty, s.point, s.aux_node,
                                                s.delta, s.block));
      break;
    case fault::FaultClass::kDropMessage:
      adversary.add(fault::drop_message(s.faulty, s.point));
      break;
    case fault::FaultClass::kDeadLink:
      adversary.add(fault::dead_link(s.faulty, s.aux_node, s.point));
      break;
    case fault::FaultClass::kGarbleLbs:
      adversary.add(fault::garble_lbs(s.faulty, s.point, s.input_seed));
      break;
    case fault::FaultClass::kReplayStale:
      adversary.add(fault::replay_stale_lbs(s.faulty, s.point));
      break;
    case fault::FaultClass::kHaltNode:
      nf[s.faulty].halt_at = s.point;
      break;
    case fault::FaultClass::kInvertDirection:
      nf[s.faulty].invert_direction_from = s.point;
      break;
    case fault::FaultClass::kSubstituteValue:
      nf[s.faulty].substitute_at = s.point;
      nf[s.faulty].substitute_value = 3000000000LL + s.delta;
      break;
  }
  opts.node_faults = std::move(nf);
  opts.interceptor = &adversary;
  auto run = sort::run_sft(s.dim, input, opts);
  return fault::localize(run.errors, s.dim);
}

}  // namespace

int main() {
  fault::CampaignConfig cfg;
  cfg.dim = 4;
  cfg.runs_per_class = 30;
  cfg.seed = 13;

  std::cout << "Localization accuracy per fault class (dim " << cfg.dim
            << ", " << cfg.runs_per_class << " detected scenarios each)\n\n";

  util::Table table({"fault class", "detected", "culprit in suspects",
                     "exact", "avg suspects"});
  util::Rng rng(cfg.seed);
  for (auto fclass : fault::kAllFaultClasses) {
    int detected = 0, contained = 0, exact = 0;
    double suspects_sum = 0.0;
    int attempts = 0;
    while (detected < cfg.runs_per_class && attempts < cfg.runs_per_class * 10) {
      ++attempts;
      const auto s = fault::draw_scenario(fclass, cfg, rng);
      const auto result = fault::run_scenario_sft(s, cfg);
      if (!result.fault_exercised ||
          result.outcome != sort::Outcome::kFailStop)
        continue;
      ++detected;
      const auto d = diagnose(s);
      suspects_sum += static_cast<double>(d.suspects.size());
      bool in = false;
      for (auto sus : d.suspects) in |= sus == s.faulty;
      contained += in;
      exact += d.conclusive && !d.suspects.empty() && d.suspects[0] == s.faulty;
    }
    table.add_row({fault::to_string(fclass), util::fmt_int(detected),
                   detected ? util::fmt_double(100.0 * contained / detected, 1) + "%"
                            : "-",
                   detected ? util::fmt_double(100.0 * exact / detected, 1) + "%"
                            : "-",
                   detected ? util::fmt_double(suspects_sum / detected, 2) : "-"});
  }
  table.print(std::cout);
  std::cout << "\n'culprit in suspects' is the soundness metric; 'exact' is\n"
            << "precision.  Link-evidenced classes localize to the node or\n"
            << "the link pair (Definition 3 case 2a); window-evidenced classes\n"
            << "(consistent liars) only narrow to the failing inner subcube.\n";
  return 0;
}
