// Ablation — which component of the constraint predicate catches what.
//
// The paper motivates the Φ_P/Φ_F/Φ_C triad qualitatively; this harness
// makes the division of labour measurable: the §4 campaign re-runs with each
// predicate disabled in turn, and the silent-wrong / detected counts show
// which adversary classes each component is load-bearing for.  (DESIGN.md §7
// lists this as an extension beyond the paper's own evaluation.)

#include <iostream>

#include "fault/campaign.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aoft;

  const int jobs = util::flag_int(argc, argv, "--jobs", 1);
  const int runs = util::flag_int(argc, argv, "--runs", 15);

  struct Config {
    const char* name;
    bool progress, feasibility, consistency, exchange;
  };
  const Config configs[] = {
      {"full predicate", true, true, true, true},
      {"no phi_P", false, true, true, true},
      {"no phi_F", true, false, true, true},
      {"no phi_C", true, true, false, true},
      {"no exchange check", true, true, true, false},
      {"checks all off", false, false, false, false},
  };

  std::cout << "Predicate ablation: silent-wrong (and detected) runs per fault "
               "class\n\n";

  util::Table table({"fault class", "full", "no phi_P", "no phi_F", "no phi_C",
                     "no exch", "all off"});
  // One row per fault class; each cell is "silent/detected".
  std::vector<std::vector<std::string>> cells(
      std::size(fault::kAllFaultClasses),
      std::vector<std::string>(std::size(configs)));

  int total_dropped = 0;
  for (std::size_t c = 0; c < std::size(configs); ++c) {
    fault::CampaignConfig cfg;
    cfg.dim = 4;
    cfg.runs_per_class = runs;
    cfg.seed = 77;  // identical scenarios across ablation columns
    cfg.jobs = jobs;
    cfg.check_progress = configs[c].progress;
    cfg.check_feasibility = configs[c].feasibility;
    cfg.check_consistency = configs[c].consistency;
    cfg.check_exchange = configs[c].exchange;
    const auto summary = fault::run_campaign(cfg);
    for (std::size_t i = 0; i < summary.sft.size(); ++i) {
      cells[i][c] = util::fmt_int(summary.sft[i].silent_wrong) + "/" +
                    util::fmt_int(summary.sft[i].detected);
      // Surface short-fills: a dropped slot means this cell's denominator is
      // smaller than the requested run count.
      if (summary.sft[i].dropped > 0) {
        cells[i][c] += " (-" + util::fmt_int(summary.sft[i].dropped) + ")";
        total_dropped += summary.sft[i].dropped;
      }
    }
  }
  for (std::size_t i = 0; i < std::size(fault::kAllFaultClasses); ++i)
    table.add_row({fault::to_string(fault::kAllFaultClasses[i]), cells[i][0],
                   cells[i][1], cells[i][2], cells[i][3], cells[i][4],
                   cells[i][5]});
  table.print(std::cout);

  if (total_dropped > 0)
    std::cout << "\nWARNING: (-d) cells dropped d slot(s) whose fault never "
              << "fired; their denominators are " << runs << " minus d.\n";
  std::cout << "\ncell format: silent-wrong/detected out of " << runs
            << " runs.\n"
            << "reading: the 'full' column must be silent-free; removing a\n"
            << "component opens exactly the holes it was designed to close\n"
            << "(e.g. timeouts still catch drops with every check off, but\n"
            << "miscomputation and lies then pass silently).\n";
  return 0;
}
