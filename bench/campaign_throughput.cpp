// Campaign engine throughput: pooled vs unpooled, serial vs parallel, and a
// worker-placement matrix.
//
// The §4 campaigns are the statistical backbone of the Theorem 3 claim; how
// many fault scenarios we can afford bounds how strong that evidence is.
// This harness times the identical campaign several ways:
//
//   unpooled — jobs=1, sim::set_pooling(false), reuse_machines=false: the
//              construct-everything-per-scenario baseline the pooled hot
//              path is measured against,
//   serial   — jobs=1 with pooling and per-worker machine reuse (default),
//   matrix   — jobs=N under each worker-placement policy (none / compact /
//              scatter when the host has >= 2 CPUs, plus the --pin policy if
//              it is an explicit CPU list), so CI artifacts show what
//              affinity buys on that runner's topology,
//   traced   — jobs=N under the --pin policy with tracer + metrics attached.
//
// All CampaignSummaries must be bit-identical — pooling, machine reuse,
// parallelism, placement and tracing are engine concerns, never observable
// in results.  When the binary links the counting allocation hook
// (util/alloc_hook.h), per-scenario heap-allocation counts are reported for
// the unpooled and pooled runs; numbers land in BENCH_campaign.json for CI
// trend tracking.
//
//   batched  — jobs=N with scenario_batch > 1: workers claim runs of
//              consecutive slots so a leased machine stays cache-hot across
//              a whole batch instead of bouncing through the claim counter
//              per scenario.
//
//   campaign_throughput [--dim=4] [--runs=50] [--jobs=0] [--seed=1989]
//                       [--batch=8] [--pin=compact]
//                       [--out=BENCH_campaign.json]
//
// On a single-CPU host a serial-vs-parallel "speedup" is noise, not signal:
// the JSON then reports "speedup": null plus speedup_skipped_reason instead
// of a misleading sub-1.0 number (tools/bench_check enforces this rule).
//
// Exit status: 0 iff the summaries match, every S_FT tally has
// silent_wrong == 0, and the JSON was written.  The >= 3x parallel speedup
// target only applies on >= 4-core machines; the JSON records
// hardware_concurrency / cpus_available / numa_nodes so consumers can judge.

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "util/atomic_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/pool.h"
#include "sort/kernels.h"
#include "util/alloc_hook.h"
#include "util/flags.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "util/topology.h"

namespace {

using namespace aoft;

bool same_tally(const fault::ClassTally& a, const fault::ClassTally& b) {
  return a.fclass == b.fclass && a.runs == b.runs && a.detected == b.detected &&
         a.masked == b.masked && a.silent_wrong == b.silent_wrong &&
         a.attempts == b.attempts && a.dropped == b.dropped &&
         a.multi_fired == b.multi_fired;
}

bool same_summary(const fault::CampaignSummary& a,
                  const fault::CampaignSummary& b) {
  if (a.sft.size() != b.sft.size() || a.snr.size() != b.snr.size() ||
      a.runs.size() != b.runs.size() || a.slots_total != b.slots_total ||
      a.slots_done != b.slots_done)
    return false;
  for (std::size_t i = 0; i < a.sft.size(); ++i)
    if (!same_tally(a.sft[i], b.sft[i]) || !same_tally(a.snr[i], b.snr[i]))
      return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& x = a.runs[i];
    const auto& y = b.runs[i];
    if (x.scenario.fclass != y.scenario.fclass ||
        x.scenario.faulty != y.scenario.faulty ||
        !(x.scenario.point == y.scenario.point) ||
        x.scenario.delta != y.scenario.delta ||
        x.scenario.input_seed != y.scenario.input_seed ||
        x.scenario.aux_node != y.scenario.aux_node ||
        x.outcome != y.outcome || x.fault_exercised != y.fault_exercised ||
        x.first_detector != y.first_detector ||
        x.detection_stage != y.detection_stage ||
        x.faults_fired != y.faults_fired)
      return false;
  }
  return true;
}

// printf-append into the JSON buffer (the file is written atomically at the
// end — a killed benchmark must never leave a truncated BENCH_*.json where a
// good one stood).
void appendf(std::string& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[1024];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Scenario executions the campaign consumed: every S_FT attempt (exercised
// or redrawn) plus every counted S_NR contrast run.
long long scenarios_executed(const fault::CampaignSummary& s) {
  long long total = 0;
  for (const auto& t : s.sft) total += t.attempts;
  for (const auto& t : s.snr) total += t.runs;
  return total;
}

struct Timed {
  fault::CampaignSummary summary;
  double seconds = 0.0;
  std::uint64_t allocs = 0;  // ::operator new calls during the run (hooked)
};

Timed timed_campaign(fault::CampaignConfig cfg, int jobs,
                     const util::PlacementPolicy& placement = {}) {
  cfg.jobs = jobs;
  cfg.placement = placement;
  Timed t;
  const std::uint64_t a0 = util::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  t.summary = fault::run_campaign(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  t.seconds = std::chrono::duration<double>(t1 - t0).count();
  t.allocs = util::alloc_count() - a0;
  return t;
}

struct MatrixEntry {
  util::PlacementPolicy policy;
  Timed timed;
};

}  // namespace

int main(int argc, char** argv) {
  fault::CampaignConfig cfg;
  cfg.dim = util::flag_int(argc, argv, "--dim", 4);
  cfg.runs_per_class = util::flag_int(argc, argv, "--runs", 50);
  cfg.seed = util::flag_u64(argc, argv, "--seed", 1989);
  const int batch = util::flag_int(argc, argv, "--batch", 8);
  if (batch < 1) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return 1;
  }
  const int parallel_jobs =
      util::ThreadPool::resolve(util::flag_int(argc, argv, "--jobs", 0));
  const char* out_arg = util::flag_value(argc, argv, "--out");
  const std::string out_path = out_arg ? out_arg : "BENCH_campaign.json";
  const char* pin_arg = util::flag_value(argc, argv, "--pin");
  util::PlacementPolicy headline;
  {
    std::string perr;
    if (!util::PlacementPolicy::parse(pin_arg ? pin_arg : "compact",
                                      &headline, &perr)) {
      std::fprintf(stderr, "--pin: %s\n", perr.c_str());
      return 1;
    }
  }
  const int hw = util::ThreadPool::resolve(0);
  const auto topo = util::HostTopology::discover();
  const int cpus_available =
      topo.cpus.empty() ? hw : static_cast<int>(topo.cpus.size());

  // An explicit --pin list naming an unavailable CPU would otherwise throw
  // mid-benchmark; reject it up front.
  try {
    util::plan_placement(headline, topo, parallel_jobs);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "--pin: %s\n", e.what());
    return 1;
  }

  std::cout << "campaign throughput: dim=" << cfg.dim << " runs/class="
            << cfg.runs_per_class << " seed=" << cfg.seed
            << " parallel jobs=" << parallel_jobs << " batch=" << batch
            << " pin=" << headline.str() << " simd="
            << util::simd::to_string(aoft::sort::kernels::active_path())
            << " (hardware threads: " << hw << ", cpus: " << cpus_available
            << ", numa nodes: " << topo.nodes
            << ", alloc hook: " << (util::alloc_hook_active() ? "on" : "off")
            << ")\n";

  // Baseline first, before any pooled run warms thread-local machines: no
  // key pooling, no machine reuse — a fresh Machine, channel set and vector
  // per scenario, the engine as it was before the pooled hot path.
  sim::set_pooling(false);
  fault::CampaignConfig unpooled_cfg = cfg;
  unpooled_cfg.reuse_machines = false;
  const auto unpooled = timed_campaign(unpooled_cfg, 1);
  sim::set_pooling(true);

  const auto serial = timed_campaign(cfg, 1);

  // Placement matrix: the same parallel campaign under each policy.  On a
  // single-CPU host pinning every worker to the one core is indistinguishable
  // from none, so only the headline policy runs.
  std::vector<util::PlacementPolicy> policies;
  if (cpus_available >= 2) {
    for (const char* name : {"none", "compact", "scatter"}) {
      util::PlacementPolicy p;
      util::PlacementPolicy::parse(name, &p, nullptr);
      policies.push_back(p);
    }
    bool headline_listed = false;
    for (const auto& p : policies) headline_listed |= (p == headline);
    if (!headline_listed) policies.push_back(headline);
  } else {
    policies.push_back(headline);
  }
  std::vector<MatrixEntry> matrix;
  for (const auto& p : policies)
    matrix.push_back({p, timed_campaign(cfg, parallel_jobs, p)});
  const Timed* parallel = nullptr;
  for (const auto& e : matrix)
    if (e.policy == headline) parallel = &e.timed;

  // Cache-hot batching: the same parallel campaign, but each worker claims
  // `batch` consecutive slots per trip to the shared counter, so a leased
  // machine's pools stay warm across the whole run.  The summary must still
  // be bit-identical (fault/campaign.h; tests/fault/campaign_determinism).
  fault::CampaignConfig batched_cfg = cfg;
  batched_cfg.scenario_batch = batch;
  const auto batched = timed_campaign(batched_cfg, parallel_jobs, headline);

  // Final run with the observability layer attached: same campaign, tracer +
  // metrics collected per slot and merged.  Guards the "zero-cost when
  // disabled / cheap when enabled" contract — the traced summary must still
  // be bit-identical, and trace_overhead is recorded for trend tracking.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  fault::CampaignConfig traced_cfg = cfg;
  traced_cfg.tracer = &tracer;
  traced_cfg.metrics = &metrics;
  const auto traced = timed_campaign(traced_cfg, parallel_jobs, headline);

  bool identical = same_summary(serial.summary, unpooled.summary) &&
                   same_summary(serial.summary, traced.summary) &&
                   same_summary(serial.summary, batched.summary);
  for (const auto& e : matrix)
    identical = identical && same_summary(serial.summary, e.timed.summary);
  int silent_wrong = 0;
  for (const auto& t : serial.summary.sft) silent_wrong += t.silent_wrong;
  const long long scenarios = scenarios_executed(serial.summary);
  const auto rate = [scenarios](const Timed& t) {
    return t.seconds > 0 ? scenarios / t.seconds : 0.0;
  };
  const auto per_scenario = [scenarios](const Timed& t) {
    return scenarios > 0 ? static_cast<double>(t.allocs) / scenarios : 0.0;
  };
  const double pooling_speedup =
      serial.seconds > 0 ? unpooled.seconds / serial.seconds : 0.0;
  // On a 1-CPU host "parallelism" just adds scheduling overhead; a speedup
  // figure there is misleading (this repo once committed 0.739x from a
  // single-core container as if it were a regression), so it is withheld.
  const bool speedup_valid = cpus_available >= 2;
  const double parallel_speedup =
      speedup_valid && parallel->seconds > 0
          ? serial.seconds / parallel->seconds
          : 0.0;
  const double trace_overhead =
      parallel->seconds > 0
          ? (traced.seconds - parallel->seconds) / parallel->seconds
          : 0.0;

  std::printf("unpooled : %8.3f s  %9.1f scenarios/s  %8.1f allocs/scenario\n",
              unpooled.seconds, rate(unpooled), per_scenario(unpooled));
  std::printf(
      "serial   : %8.3f s  %9.1f scenarios/s  %8.1f allocs/scenario  "
      "(%.2fx vs unpooled)\n",
      serial.seconds, rate(serial), per_scenario(serial), pooling_speedup);
  for (const auto& e : matrix)
    std::printf("pin=%-8s: %8.3f s  %9.1f scenarios/s  (%d jobs)\n",
                e.policy.str().c_str(), e.timed.seconds, rate(e.timed),
                parallel_jobs);
  std::printf("batch=%-4d: %8.3f s  %9.1f scenarios/s  (%d jobs)\n", batch,
              batched.seconds, rate(batched), parallel_jobs);
  if (speedup_valid)
    std::printf("parallel speedup (pin=%s): %.2fx vs serial\n",
                headline.str().c_str(), parallel_speedup);
  else
    std::printf("parallel speedup: skipped (%d CPU available)\n",
                cpus_available);
  std::printf("traced   : %8.3f s  (%zu events, %+.1f%% vs parallel)\n",
              traced.seconds, tracer.size(), 100.0 * trace_overhead);
  std::printf("summaries bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf("S_FT silent-wrong total: %d\n", silent_wrong);

  std::string json;
  appendf(json,
          "{\n"
          "  \"dim\": %d,\n"
          "  \"runs_per_class\": %d,\n"
          "  \"seed\": %llu,\n"
          "  \"hardware_concurrency\": %d,\n"
          "  \"cpus_available\": %d,\n"
          "  \"numa_nodes\": %d,\n"
          "  \"placement\": \"%s\",\n"
          "  \"simd\": \"%s\",\n"
          "  \"alloc_hook_active\": %s,\n"
          "  \"scenarios_executed\": %lld,\n"
          "  \"unpooled_seconds\": %.6f,\n"
          "  \"unpooled_scenarios_per_sec\": %.2f,\n"
          "  \"unpooled_allocs_per_scenario\": %.2f,\n"
          "  \"serial_seconds\": %.6f,\n"
          "  \"serial_scenarios_per_sec\": %.2f,\n"
          "  \"pooled_allocs_per_scenario\": %.2f,\n"
          "  \"pooling_speedup\": %.3f,\n"
          "  \"parallel_jobs\": %d,\n"
          "  \"parallel_seconds\": %.6f,\n"
          "  \"parallel_scenarios_per_sec\": %.2f,\n"
          "  \"scenario_batch\": %d,\n"
          "  \"batched_seconds\": %.6f,\n"
          "  \"batched_scenarios_per_sec\": %.2f,\n",
          cfg.dim, cfg.runs_per_class,
          static_cast<unsigned long long>(cfg.seed), hw, cpus_available,
          topo.nodes, headline.str().c_str(),
          util::simd::to_string(aoft::sort::kernels::active_path()),
          util::alloc_hook_active() ? "true" : "false", scenarios,
          unpooled.seconds, rate(unpooled), per_scenario(unpooled),
          serial.seconds, rate(serial), per_scenario(serial), pooling_speedup,
          parallel_jobs, parallel->seconds, rate(*parallel), batch,
          batched.seconds, rate(batched));
  if (speedup_valid)
    appendf(json, "  \"speedup\": %.3f,\n", parallel_speedup);
  else
    appendf(json,
            "  \"speedup\": null,\n"
            "  \"speedup_skipped_reason\": \"only %d CPU available; "
            "serial-vs-parallel timing is scheduling noise\",\n",
            cpus_available);
  appendf(json, "  \"placement_matrix\": [\n");
  for (std::size_t i = 0; i < matrix.size(); ++i)
    appendf(json,
            "    {\"placement\": \"%s\", \"seconds\": %.6f, "
            "\"scenarios_per_sec\": %.2f}%s\n",
            matrix[i].policy.str().c_str(), matrix[i].timed.seconds,
            rate(matrix[i].timed), i + 1 < matrix.size() ? "," : "");
  appendf(json,
          "  ],\n"
          "  \"traced_seconds\": %.6f,\n"
          "  \"trace_events\": %zu,\n"
          "  \"trace_overhead\": %.4f,\n"
          "  \"summaries_identical\": %s,\n"
          "  \"silent_wrong_total\": %d\n"
          "}\n",
          traced.seconds, tracer.size(), trace_overhead,
          identical ? "true" : "false", silent_wrong);
  std::string write_err;
  if (!util::write_file_atomic(out_path, json, &write_err)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 write_err.c_str());
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  return identical && silent_wrong == 0 ? 0 : 1;
}
