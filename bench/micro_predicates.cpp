// Lemmas 7-9 — asymptotic costs of the checking machinery, measured.
//
//   Lemma 7: vect_mask(i, j) runs in O(2^{i-j})           (the recursion)
//   Lemma 8: bit_compare runs in O(2^i) at stage i        (Φ_P + Φ_F scans)
//   Lemma 9: Φ_C runs in O(2^{j+1} + 2^{i-j}) per message (merge + mask)
//
// google-benchmark over the (i, j) grid; the per-item complexities are
// visible in how time scales with the reported window/coverage sizes.

#include <benchmark/benchmark.h>

#include "hypercube/masks.h"
#include "sort/predicates.h"
#include "util/rng.h"

namespace {

using namespace aoft;

void BM_VectMaskRecursive(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  cube::Topology topo(12);
  for (auto _ : state) {
    auto m = cube::vect_mask_recursive(topo, i, j, 1234 & (topo.num_nodes() - 1));
    benchmark::DoNotOptimize(m);
  }
  state.SetComplexityN(1 << (i - j));
}

void BM_VectMaskClosedForm(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  cube::Topology topo(12);
  for (auto _ : state) {
    auto m = cube::vect_mask(topo, i, j, 1234 & (topo.num_nodes() - 1));
    benchmark::DoNotOptimize(m);
  }
}

// Lemma 7 grid: fixed i = 11, j sweeping down — work doubles per step.
BENCHMARK(BM_VectMaskRecursive)
    ->Args({11, 11})->Args({11, 9})->Args({11, 7})->Args({11, 5})
    ->Args({11, 3})->Args({11, 1})->Args({11, 0})
    ->Complexity(benchmark::oN);
BENCHMARK(BM_VectMaskClosedForm)
    ->Args({11, 7})->Args({11, 3})->Args({11, 0});

void BM_BitCompare(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  // Build a valid stage-i check instance: full-cube arrays for dim i+1.
  // lbs: lower dim-i window sorted ascending, upper sorted descending
  // (what stage i-1 produced); llbs over the lower window: the bitonic
  // sequence stage i-1 started from (evens ascending, then odds descending).
  const std::size_t n = std::size_t{1} << (i + 1);
  auto keys = util::random_keys(1, n);
  std::vector<sort::Key> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  std::vector<sort::Key> lbs(n), llbs(n);
  for (std::size_t k = 0; k < n / 2; ++k) lbs[k] = sorted[k];
  for (std::size_t k = 0; k < n / 2; ++k) lbs[n / 2 + k] = sorted[n - 1 - k];
  const std::size_t half = n / 2;
  for (std::size_t k = 0; k < half / 2; ++k) llbs[k] = sorted[2 * k];
  for (std::size_t k = 0; k < half / 2; ++k)
    llbs[half / 2 + k] = sorted[half - 1 - 2 * k];
  for (std::size_t k = half; k < n; ++k) llbs[k] = sorted[k];
  const cube::Subcube outer{0, static_cast<cube::NodeId>(n - 1), i + 1};
  const cube::Subcube inner{0, static_cast<cube::NodeId>(n / 2 - 1), i};
  for (auto _ : state) {
    auto v = sort::bit_compare(llbs, lbs, outer, inner, true, false, 1);
    if (v.has_value()) state.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitCompare)->DenseRange(3, 12, 3)->Complexity(benchmark::oN);

void BM_PhiCMerge(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  cube::Topology topo(12);
  const cube::NodeId me = 0;
  const cube::NodeId partner = cube::NodeId{1} << j;
  const auto window = cube::home_subcube(i + 1, me);
  const auto sender_cover = cube::pre_mask(topo, i, j, partner);
  const auto my_cover = cube::pre_mask(topo, i, j, me);
  auto keys = util::random_keys(2, topo.num_nodes());
  std::vector<sort::Key> slice(window.size());
  for (cube::NodeId p = window.start; p <= window.end; ++p)
    slice[p - window.start] = keys[p];
  std::vector<sort::Key> local = keys;
  for (auto _ : state) {
    state.PauseTiming();  // reset the coverage outside the measured region
    util::BitVec cover = my_cover;
    state.ResumeTiming();
    auto v = sort::phi_c_merge(local, cover, slice, sender_cover, window, 1);
    if (v.has_value()) state.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(local);
  }
  state.SetComplexityN(1 << (i - j));
}
// Lemma 9 grid: i fixed, j sweeping — sender coverage 2^{i-j} dominates.
BENCHMARK(BM_PhiCMerge)
    ->Args({11, 11})->Args({11, 8})->Args({11, 5})->Args({11, 2})->Args({11, 0})
    ->Complexity(benchmark::oN);

}  // namespace
