// Lemmas 7-9 — asymptotic costs of the checking machinery, measured — plus
// the SIMD kernel sweep.
//
//   Lemma 7: vect_mask(i, j) runs in O(2^{i-j})           (the recursion)
//   Lemma 8: bit_compare runs in O(2^i) at stage i        (Φ_P + Φ_F scans)
//   Lemma 9: Φ_C runs in O(2^{j+1} + 2^{i-j}) per message (merge + mask)
//
// google-benchmark over the (i, j) grid; the per-item complexities are
// visible in how time scales with the reported window/coverage sizes.
//
// After the lemma benchmarks, a per-kernel size sweep times each of the five
// sort/kernels.h entry points through the scalar reference table and through
// the dispatched table, on identical pass-shaped inputs (worst case: the
// whole array is scanned).  Results land in BENCH_kernels.json
// (--out=PATH to redirect) for the tools/bench_check --kernels gate.  When
// the dispatched path *is* scalar (no SIMD compiled in, or AOFT_SIMD=scalar)
// the speedup is reported as null with a stated reason — scalar-vs-scalar
// timing is noise, never a measurement.
//
//   micro_predicates [--out=BENCH_kernels.json] [google-benchmark flags]

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "hypercube/masks.h"
#include "sort/kernels.h"
#include "sort/predicates.h"
#include "util/atomic_file.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace aoft;

void BM_VectMaskRecursive(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  cube::Topology topo(12);
  for (auto _ : state) {
    auto m = cube::vect_mask_recursive(topo, i, j, 1234 & (topo.num_nodes() - 1));
    benchmark::DoNotOptimize(m);
  }
  state.SetComplexityN(1 << (i - j));
}

void BM_VectMaskClosedForm(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  cube::Topology topo(12);
  for (auto _ : state) {
    auto m = cube::vect_mask(topo, i, j, 1234 & (topo.num_nodes() - 1));
    benchmark::DoNotOptimize(m);
  }
}

// Lemma 7 grid: fixed i = 11, j sweeping down — work doubles per step.
BENCHMARK(BM_VectMaskRecursive)
    ->Args({11, 11})->Args({11, 9})->Args({11, 7})->Args({11, 5})
    ->Args({11, 3})->Args({11, 1})->Args({11, 0})
    ->Complexity(benchmark::oN);
BENCHMARK(BM_VectMaskClosedForm)
    ->Args({11, 7})->Args({11, 3})->Args({11, 0});

void BM_BitCompare(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  // Build a valid stage-i check instance: full-cube arrays for dim i+1.
  // lbs: lower dim-i window sorted ascending, upper sorted descending
  // (what stage i-1 produced); llbs over the lower window: the bitonic
  // sequence stage i-1 started from (evens ascending, then odds descending).
  const std::size_t n = std::size_t{1} << (i + 1);
  auto keys = util::random_keys(1, n);
  std::vector<sort::Key> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  std::vector<sort::Key> lbs(n), llbs(n);
  for (std::size_t k = 0; k < n / 2; ++k) lbs[k] = sorted[k];
  for (std::size_t k = 0; k < n / 2; ++k) lbs[n / 2 + k] = sorted[n - 1 - k];
  const std::size_t half = n / 2;
  for (std::size_t k = 0; k < half / 2; ++k) llbs[k] = sorted[2 * k];
  for (std::size_t k = 0; k < half / 2; ++k)
    llbs[half / 2 + k] = sorted[half - 1 - 2 * k];
  for (std::size_t k = half; k < n; ++k) llbs[k] = sorted[k];
  const cube::Subcube outer{0, static_cast<cube::NodeId>(n - 1), i + 1};
  const cube::Subcube inner{0, static_cast<cube::NodeId>(n / 2 - 1), i};
  for (auto _ : state) {
    auto v = sort::bit_compare(llbs, lbs, outer, inner, true, false, 1);
    if (v.has_value()) state.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitCompare)->DenseRange(3, 12, 3)->Complexity(benchmark::oN);

void BM_PhiCMerge(benchmark::State& state) {
  const int i = static_cast<int>(state.range(0));
  const int j = static_cast<int>(state.range(1));
  cube::Topology topo(12);
  const cube::NodeId me = 0;
  const cube::NodeId partner = cube::NodeId{1} << j;
  const auto window = cube::home_subcube(i + 1, me);
  const auto sender_cover = cube::pre_mask(topo, i, j, partner);
  const auto my_cover = cube::pre_mask(topo, i, j, me);
  auto keys = util::random_keys(2, topo.num_nodes());
  std::vector<sort::Key> slice(window.size());
  for (cube::NodeId p = window.start; p <= window.end; ++p)
    slice[p - window.start] = keys[p];
  std::vector<sort::Key> local = keys;
  for (auto _ : state) {
    state.PauseTiming();  // reset the coverage outside the measured region
    util::BitVec cover = my_cover;
    state.ResumeTiming();
    auto v = sort::phi_c_merge(local, cover, slice, sender_cover, window, 1);
    if (v.has_value()) state.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(local);
  }
  state.SetComplexityN(1 << (i - j));
}
// Lemma 9 grid: i fixed, j sweeping — sender coverage 2^{i-j} dominates.
BENCHMARK(BM_PhiCMerge)
    ->Args({11, 11})->Args({11, 8})->Args({11, 5})->Args({11, 2})->Args({11, 0})
    ->Complexity(benchmark::oN);

// ---- SIMD kernel sweep -----------------------------------------------------

// Minimum measured time per (kernel, size, table) sample; three samples are
// taken and the fastest kept, so a descheduled trial cannot fake a slowdown.
constexpr double kSampleNs = 2e6;

// ns/call of op(), minimum of three timed samples, each at least kSampleNs
// long (iteration count auto-scales up from 1).
template <typename Fn>
double time_ns_per_call(Fn&& op) {
  op();  // warm caches and the dispatch table
  double best = -1.0;
  for (int trial = 0; trial < 3; ++trial) {
    long long iters = 1;
    for (;;) {
      const auto t0 = std::chrono::steady_clock::now();
      for (long long k = 0; k < iters; ++k) op();
      const auto t1 = std::chrono::steady_clock::now();
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count();
      if (ns >= kSampleNs) {
        const double per = ns / static_cast<double>(iters);
        if (best < 0 || per < best) best = per;
        break;
      }
      iters *= 4;
    }
  }
  return best;
}

struct SweepEntry {
  const char* kernel;
  std::size_t size;
  double scalar_ns;
  double dispatched_ns;
  double speedup;   // scalar_ns / dispatched_ns
  bool delegated;   // dispatched entry IS the scalar function pointer
};

// True when table `t` delegates kernel `which` to the same function as `s`
// (SIMD tables keep the scalar pointer for kernels that measured slower
// vectorized — see kernels_avx2.cpp).
bool same_fn(const sort::kernels::KernelTable& t,
             const sort::kernels::KernelTable& s, int which) {
  switch (which) {
    case 0: return t.run_break == s.run_break;
    case 1: return t.mismatch == s.mismatch;
    case 2: return t.phi_f_scan == s.phi_f_scan;
    case 3: return t.merge == s.merge;
    default: return t.includes == s.includes;
  }
}

// Pass-shaped inputs sized n: every kernel scans (or writes) everything, the
// worst case Φ predicates pay on every clean stage.  Interleavings are
// *random*, as in a real exchange — a regular pattern (strict alternation,
// one run first) would hand the scalar code perfectly predicted branches and
// misstate both sides of the comparison.
struct SweepFixture {
  std::vector<sort::Key> asc;        // sorted ascending, n
  std::vector<sort::Key> asc_copy;   // byte-identical to asc (mismatch)
  std::vector<sort::Key> llbs;       // random 2-run partition of asc (Φ_F)
  std::vector<sort::Key> merge_a;    // independent sorted run, n
  std::vector<sort::Key> merge_b;    // independent sorted run, n
  std::vector<sort::Key> super;      // merge of merge_a and merge_b, 2n
  std::vector<sort::Key> out;        // merge destination, 2n

  explicit SweepFixture(std::size_t n) {
    util::Rng rng(0x5eedULL + n);
    merge_a.resize(n);
    merge_b.resize(n);
    for (auto& k : merge_a) k = static_cast<sort::Key>(rng.next_u64() >> 8);
    for (auto& k : merge_b) k = static_cast<sort::Key>(rng.next_u64() >> 8);
    std::sort(merge_a.begin(), merge_a.end());
    std::sort(merge_b.begin(), merge_b.end());
    super.resize(2 * n);
    std::merge(merge_a.begin(), merge_a.end(), merge_b.begin(), merge_b.end(),
               super.begin());
    asc = merge_a;  // includes: asc is a sub-multiset of super by construction
    asc_copy = asc;
    // Φ_F instance: split asc into a random half-half partition — lower run =
    // the picked keys ascending, upper run = the rest descending.  Any such
    // partition scans to completion (the next key in visit order is the
    // minimum of both run heads), and the head alternation is irregular.
    const std::size_t half = n / 2;
    std::vector<int> pick(n, 0);
    std::fill(pick.begin(), pick.begin() + static_cast<std::ptrdiff_t>(half),
              1);
    for (std::size_t k = n - 1; k > 0; --k)
      std::swap(pick[k], pick[rng.next_u64() % (k + 1)]);
    llbs.resize(n);
    std::size_t lo = 0, hi = n;
    for (std::size_t k = 0; k < n; ++k)
      if (pick[k])
        llbs[lo++] = asc[k];
      else
        llbs[--hi] = asc[k];
    out.resize(2 * n);
  }
};

// Time one kernel through `t` on the fixture; `which` indexes the five
// KernelTable members in declaration order.
double time_kernel(const sort::kernels::KernelTable& t, int which,
                   const SweepFixture& f) {
  const std::size_t n = f.asc.size();
  switch (which) {
    case 0:
      return time_ns_per_call([&] {
        benchmark::DoNotOptimize(t.run_break(f.asc.data(), n, true));
      });
    case 1:
      return time_ns_per_call([&] {
        benchmark::DoNotOptimize(
            t.mismatch(f.asc.data(), f.asc_copy.data(), n));
      });
    case 2:
      return time_ns_per_call([&] {
        benchmark::DoNotOptimize(
            t.phi_f_scan(f.llbs.data(), f.asc.data(), n, true));
      });
    case 3:
      return time_ns_per_call([&] {
        t.merge(f.merge_a.data(), n, f.merge_b.data(), n, true,
                const_cast<sort::Key*>(f.out.data()));
        benchmark::DoNotOptimize(f.out.data());
      });
    default:
      return time_ns_per_call([&] {
        benchmark::DoNotOptimize(
            t.includes(f.super.data(), 2 * n, f.asc.data(), n, true));
      });
  }
}

void appendf(std::string& s, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) s.append(buf, static_cast<std::size_t>(n));
}

int run_kernel_sweep(const std::string& out_path) {
  namespace kernels = sort::kernels;
  const auto dispatch = kernels::active_path();
  const auto& scalar = kernels::table_for(util::simd::Path::kScalar);
  const auto& dispatched = kernels::table();

  // Window sizes 2^3..2^6 are the dim 3-6 stage windows EXPERIMENTS.md §15
  // tabulates; 512/4096 are block-scaled payloads where vector width, not
  // call overhead, dominates.
  const std::size_t sizes[] = {8, 16, 32, 64, 512, 4096};
  const char* names[] = {"run_break", "mismatch", "phi_f_scan", "merge",
                         "includes"};

  std::vector<SweepEntry> entries;
  const SweepEntry* best = nullptr;
  std::printf("\nkernel sweep (dispatch=%s):\n",
              util::simd::to_string(dispatch));
  for (const std::size_t n : sizes) {
    const SweepFixture fix(n);
    for (int which = 0; which < 5; ++which) {
      SweepEntry e;
      e.kernel = names[which];
      e.size = n;
      e.delegated = same_fn(dispatched, scalar, which);
      e.scalar_ns = time_kernel(scalar, which, fix);
      // Timing the identical function twice and quoting the ratio as a
      // "speedup" would be pure noise; a delegated entry is 1.0 by identity.
      e.dispatched_ns = e.delegated ? e.scalar_ns : time_kernel(dispatched, which, fix);
      e.speedup = e.dispatched_ns > 0 ? e.scalar_ns / e.dispatched_ns : 0.0;
      entries.push_back(e);
      if (e.delegated)
        std::printf("  %-10s n=%-5zu scalar %9.1f ns   (delegated to scalar)\n",
                    e.kernel, e.size, e.scalar_ns);
      else
        std::printf("  %-10s n=%-5zu scalar %9.1f ns   %s %9.1f ns   %.2fx\n",
                    e.kernel, e.size, e.scalar_ns,
                    util::simd::to_string(dispatch), e.dispatched_ns,
                    e.speedup);
    }
  }
  for (const auto& e : entries)
    if (!e.delegated && (!best || e.speedup > best->speedup)) best = &e;

  const bool simd_active = dispatch != util::simd::Path::kScalar;
  std::string json;
  appendf(json,
          "{\n"
          "  \"schema\": \"aoft-kernels-v1\",\n"
          "  \"dispatch\": \"%s\",\n"
          "  \"entries\": [\n",
          util::simd::to_string(dispatch));
  for (std::size_t i = 0; i < entries.size(); ++i)
    appendf(json,
            "    {\"kernel\": \"%s\", \"size\": %zu, \"scalar_ns\": %.1f, "
            "\"dispatched_ns\": %.1f, \"speedup\": %.3f, "
            "\"delegated\": %s}%s\n",
            entries[i].kernel, entries[i].size, entries[i].scalar_ns,
            entries[i].dispatched_ns, entries[i].speedup,
            entries[i].delegated ? "true" : "false",
            i + 1 < entries.size() ? "," : "");
  appendf(json, "  ],\n");
  if (simd_active && best) {
    appendf(json,
            "  \"best_speedup\": %.3f,\n"
            "  \"best_kernel\": \"%s\",\n"
            "  \"best_size\": %zu\n",
            best->speedup, best->kernel, best->size);
    std::printf("best: %s n=%zu at %.2fx\n", best->kernel, best->size,
                best->speedup);
  } else {
    // Same honesty rule as BENCH_campaign.json's parallel speedup on 1-CPU
    // hosts: a scalar-vs-scalar ratio is timing noise, not a speedup.
    appendf(json,
            "  \"best_speedup\": null,\n"
            "  \"speedup_null_reason\": \"dispatched path is scalar "
            "(no SIMD compiled in or AOFT_SIMD=scalar); scalar-vs-scalar "
            "timing is noise, not a speedup\"\n");
    std::printf("best: withheld (dispatched path is scalar)\n");
  }
  appendf(json, "}\n");

  std::string err;
  if (!util::write_file_atomic(out_path, json, &err)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 err.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

// Custom main (instead of benchmark_main): peel off --out= before handing
// the rest to google-benchmark, run the lemma benchmarks, then the kernel
// sweep.
int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else
      bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_kernel_sweep(out_path);
}
