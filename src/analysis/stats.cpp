#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace aoft::analysis {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  double sq = 0.0;
  for (double x : xs) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.n));
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace aoft::analysis
