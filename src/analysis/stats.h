// Small descriptive-statistics helpers for campaign and bench summaries.

#pragma once

#include <span>

namespace aoft::analysis {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

// Summary statistics of a sample (all zeros for an empty span).
Summary summarize(std::span<const double> xs);

// p-th percentile (0..100) by nearest-rank on a copy; 0 for empty input.
double percentile(std::span<const double> xs, double p);

}  // namespace aoft::analysis
