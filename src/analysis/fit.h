// Linear least-squares fitting for run-time component models.
//
// The paper's §5 table expresses each measured component as a small linear
// combination of basis functions of the problem size (8·log²N + 0.05·N·log N,
// 11.5·N, ...).  We recover such coefficients from simulator measurements by
// ordinary least squares over arbitrary user-supplied bases, solving the
// normal equations directly — the bases have at most a handful of terms, so
// numerical sophistication beyond partial pivoting is unnecessary.

#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace aoft::analysis {

// One basis function of the problem size with a printable name, e.g.
// {"N·log2 N", [](double n){ return n * std::log2(n); }}.
struct Basis {
  std::string name;
  std::function<double(double)> fn;
};

struct FitResult {
  std::vector<double> coeffs;  // one per basis term
  double rms_residual = 0.0;   // sqrt(mean squared residual)
  double r_squared = 1.0;      // 1 - SS_res / SS_tot

  double eval(std::span<const Basis> basis, double x) const;
  // "8.13·log²N + 0.049·N·log2 N" style rendering.
  std::string to_string(std::span<const Basis> basis, int precision = 3) const;
};

// Fit y ≈ Σ c_i · basis_i(x) by least squares.  xs.size() == ys.size() and
// must be at least basis.size().
FitResult fit(std::span<const Basis> basis, std::span<const double> xs,
              std::span<const double> ys);

// Solve the square system a·x = b by Gaussian elimination with partial
// pivoting (a is row-major, size n*n).  Exposed for tests.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

}  // namespace aoft::analysis
