#include "analysis/fit.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace aoft::analysis {

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  assert(a.size() == n * n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    if (std::fabs(a[pivot * n + col]) < 1e-12)
      throw std::runtime_error("solve_linear: singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri * n + c] * x[c];
    x[ri] = s / a[ri * n + ri];
  }
  return x;
}

FitResult fit(std::span<const Basis> basis, std::span<const double> xs,
              std::span<const double> ys) {
  assert(xs.size() == ys.size() && xs.size() >= basis.size());
  const std::size_t k = basis.size();
  const std::size_t n = xs.size();

  // Design matrix rows f_j(x_i); normal equations (FᵀF)c = Fᵀy.
  std::vector<double> f(n * k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) f[i * k + j] = basis[j].fn(xs[i]);

  std::vector<double> ftf(k * k, 0.0), fty(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      fty[j] += f[i * k + j] * ys[i];
      for (std::size_t l = 0; l < k; ++l)
        ftf[j * k + l] += f[i * k + j] * f[i * k + l];
    }
  }

  FitResult r;
  r.coeffs = solve_linear(std::move(ftf), std::move(fty));

  double ss_res = 0.0, ss_tot = 0.0, mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < k; ++j) pred += r.coeffs[j] * f[i * k + j];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
  }
  r.rms_residual = std::sqrt(ss_res / static_cast<double>(n));
  r.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return r;
}

double FitResult::eval(std::span<const Basis> basis, double x) const {
  double y = 0.0;
  for (std::size_t j = 0; j < basis.size(); ++j) y += coeffs[j] * basis[j].fn(x);
  return y;
}

std::string FitResult::to_string(std::span<const Basis> basis, int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t j = 0; j < basis.size(); ++j) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, coeffs[j]);
    if (j > 0) out += coeffs[j] < 0 ? " " : " + ";
    out += buf;
    out += "·";
    out += basis[j].name;
  }
  return out;
}

}  // namespace aoft::analysis
