// The paper's run-time model forms (§5) and large-system projection helpers.
//
// Figure 7 ("Projected Sorting Time Comparisons - Large Systems") and
// Figure 8 (block sorting) extrapolate the measured component table to cube
// sizes far beyond the 32 nodes the authors could run.  We reproduce that:
// bench binaries measure components on simulable sizes, fit the paper's model
// forms with analysis/fit.h, and project with the helpers below.

#pragma once

#include <vector>

#include "analysis/fit.h"

namespace aoft::analysis {

// Standard bases over the node count N.
Basis basis_const();     // 1
Basis basis_n();         // N
Basis basis_log2n();     // log2 N
Basis basis_log2sq();    // log2² N
Basis basis_nlog2n();    // N·log2 N

// The paper's component forms:
//   S_FT communication  ~ c1·log2²N + c2·N·log2 N     (their 8 and 0.05)
//   S_FT computation    ~ c·N                          (their 11.5)
//   sequential comm     ~ c·N                          (their 14)
//   sequential comp     ~ c·N·log2 N                   (their 0.45)
std::vector<Basis> sft_comm_basis();
std::vector<Basis> sft_comp_basis();
std::vector<Basis> seq_comm_basis();
std::vector<Basis> seq_comp_basis();

// A fitted two-component (communication + computation) model of one
// algorithm's total run time as a function of N.
struct TimeModel {
  std::vector<Basis> comm_basis;
  FitResult comm;
  std::vector<Basis> comp_basis;
  FitResult comp;

  double total(double n_nodes) const;
};

// Smallest power-of-two node count at which `a` becomes no slower than `b`,
// scanning dimensions [lo_dim, hi_dim].  Returns 0 if `a` never catches up.
unsigned long long crossover_nodes(const TimeModel& a, const TimeModel& b,
                                   int lo_dim, int hi_dim);

// a.total(N) / b.total(N) at N = 2^dim — the finite-size cost ratio plotted
// in Figure 7.
double limit_ratio(const TimeModel& a, const TimeModel& b, int dim = 30);

// The true N→∞ ratio: both totals are dominated by their N·log2 N terms, so
// the limit is the ratio of those coefficients (the paper's "in the limit
// ... 11% the cost of sequential sorting" is 0.05/0.45).  Falls back to
// limit_ratio at 2^1000 when either model lacks an N·log2 N term.
double asymptotic_ratio(const TimeModel& a, const TimeModel& b);

}  // namespace aoft::analysis
