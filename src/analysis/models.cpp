#include "analysis/models.h"

#include <cmath>

namespace aoft::analysis {

Basis basis_const() {
  return {"1", [](double) { return 1.0; }};
}
Basis basis_n() {
  return {"N", [](double n) { return n; }};
}
Basis basis_log2n() {
  return {"log2 N", [](double n) { return std::log2(n); }};
}
Basis basis_log2sq() {
  return {"log2²N", [](double n) {
            const double l = std::log2(n);
            return l * l;
          }};
}
Basis basis_nlog2n() {
  return {"N·log2 N", [](double n) { return n * std::log2(n); }};
}

std::vector<Basis> sft_comm_basis() { return {basis_log2sq(), basis_nlog2n()}; }
std::vector<Basis> sft_comp_basis() { return {basis_n()}; }
std::vector<Basis> seq_comm_basis() { return {basis_n()}; }
std::vector<Basis> seq_comp_basis() { return {basis_nlog2n()}; }

double TimeModel::total(double n_nodes) const {
  return comm.eval(comm_basis, n_nodes) + comp.eval(comp_basis, n_nodes);
}

unsigned long long crossover_nodes(const TimeModel& a, const TimeModel& b,
                                   int lo_dim, int hi_dim) {
  for (int d = lo_dim; d <= hi_dim; ++d) {
    const double n = std::ldexp(1.0, d);
    if (a.total(n) <= b.total(n)) return 1ULL << d;
  }
  return 0;
}

double limit_ratio(const TimeModel& a, const TimeModel& b, int dim) {
  const double n = std::ldexp(1.0, dim);
  return a.total(n) / b.total(n);
}

namespace {

// Sum of the model's N·log2 N coefficients across both components.
double nlog2n_coefficient(const TimeModel& m) {
  double c = 0.0;
  const auto scan = [&c](const std::vector<Basis>& basis,
                         const std::vector<double>& coeffs) {
    for (std::size_t i = 0; i < basis.size() && i < coeffs.size(); ++i)
      if (basis[i].name == "N·log2 N") c += coeffs[i];
  };
  scan(m.comm_basis, m.comm.coeffs);
  scan(m.comp_basis, m.comp.coeffs);
  return c;
}

}  // namespace

double asymptotic_ratio(const TimeModel& a, const TimeModel& b) {
  const double ca = nlog2n_coefficient(a);
  const double cb = nlog2n_coefficient(b);
  if (ca > 0.0 && cb > 0.0) return ca / cb;
  return limit_ratio(a, b, 1000);
}

}  // namespace aoft::analysis
