// Coroutine task type for simulated processors.
//
// Every node of the simulated multicomputer (and the host) runs as one C++20
// coroutine.  Tasks are eagerly created, lazily started: `initial_suspend` is
// `suspend_always`, so nothing executes until the scheduler first resumes the
// handle.  Tasks never co_await each other; the only suspension points are
// channel receives, so the scheduler wholly owns interleaving and execution
// is deterministic.
//
// SimTask is a move-only owner of the coroutine frame.  The scheduler takes
// ownership on spawn and destroys frames after completion.

#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_pool.h"

namespace aoft::sim {

class [[nodiscard]] SimTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    // Coroutine frames come from the thread-local frame pool: N frames per
    // scenario is the dominant steady-state allocation once key buffers are
    // pooled.  The sized delete matches frame_allocate's rounded buckets.
    static void* operator new(std::size_t size) { return frame_allocate(size); }
    static void operator delete(void* p, std::size_t size) noexcept {
      frame_deallocate(p, size);
    }

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  SimTask() = default;
  explicit SimTask(Handle h) : handle_(h) {}
  SimTask(SimTask&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  SimTask& operator=(SimTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  Handle handle() const { return handle_; }
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

}  // namespace aoft::sim
