// Message type exchanged over simulated point-to-point links.
//
// Per the paper's environmental assumptions (§3): message passing over
// point-to-point links is the only inter-node communication, there is no
// atomic broadcast, and the absence of an expected message is detectable
// (modelled by the scheduler's quiescence timeout — see scheduler.h).
//
// A message carries a small typed header (protocol position: stage/iteration
// of the sort, message kind) plus two key vectors: `data` for the
// compare-exchange operands and `lbs` for the piggybacked bitonic-sequence
// slice of the fault-tolerant algorithm.  The cost model charges for the
// total number of key words.

#pragma once

#include <cstdint>
#include <vector>

#include "hypercube/topology.h"
#include "sim/pool.h"

namespace aoft::sim {

// Key (= std::int64_t) lives in sim/pool.h next to the pooled storage; the
// paper's experiments sort 32-bit integers, we store 64 so adversaries can
// inject out-of-universe values.

enum class MsgKind : std::uint8_t {
  kData,        // compare-exchange operand(s) only (algorithm S_NR)
  kDataLbs,     // operands + piggybacked LBS slice (algorithm S_FT)
  kLbsOnly,     // final pure-exchange verification round of S_FT
  kHostGather,  // node -> host: initial or sorted values
  kHostScatter, // host -> node: sorted values
  kHostError,   // node -> host: fail-stop error report
  kCheckpoint,  // node -> host: validated stage-boundary state (recovery)
  kApp,         // application-defined payload (e.g. AOFT relaxation)
};

struct Message {
  Message() = default;
  // Pooled message: data/lbs draw their storage from (and return it to) the
  // machine's key pool.  Protocol hot paths construct messages this way.
  explicit Message(KeyPool& pool) : data(pool), lbs(pool) {}

  MsgKind kind = MsgKind::kData;
  cube::NodeId from = 0;
  std::int32_t stage = -1;  // outer loop index i, -1 when not applicable
  std::int32_t iter = -1;   // inner loop index j, -1 when not applicable
  std::int32_t tag = 0;     // application-defined discriminator
  KeyBuf data;
  KeyBuf lbs;

  // Logical time at which the message becomes available to the receiver;
  // stamped by the network at send time.
  double arrival = 0.0;

  std::size_t words() const { return data.size() + lbs.size(); }
};

// Result of a receive: ok == false means the watchdog fired while waiting
// (absent message, Environmental Assumption 4) and `msg` is empty.
struct RecvResult {
  bool ok = false;
  Message msg;
};

}  // namespace aoft::sim
