#include "sim/frame_pool.h"

#include <cstdlib>
#include <new>

namespace aoft::sim {

#ifdef AOFT_FRAME_POOL_DISABLED

void* frame_allocate(std::size_t size) { return ::operator new(size); }
void frame_deallocate(void* p, std::size_t) { ::operator delete(p); }
std::size_t frame_pool_cached() { return 0; }

#else

namespace {

constexpr std::size_t kGranularity = 64;
constexpr std::size_t kMaxBuckets = 16;  // blocks up to 16*64 = 1024 bytes
constexpr std::size_t kMaxCachedPerBucket = 64;

struct Bucket {
  void* head = nullptr;  // singly linked through the first word of each block
  std::size_t count = 0;
};

struct FramePool {
  Bucket buckets[kMaxBuckets];
  ~FramePool() {
    for (auto& b : buckets) {
      while (b.head != nullptr) {
        void* next = *static_cast<void**>(b.head);
        std::free(b.head);
        b.head = next;
      }
    }
  }
};

// Allocation discipline: every bucketable size (<= kMaxBuckets granules) is
// malloc'd at its rounded-up bucket size and free'd with std::free, whether
// or not it passed through the cache; oversized blocks always use plain
// ::operator new/delete.  Routing by size alone keeps alloc/free pairs
// matched even across thread_local teardown.
//
// tls_state is trivially destructible, so it stays readable after the
// FramePool thread_local is destroyed (coroutine frames owned by other
// thread_locals may be freed during that teardown, and thread_local
// destruction order is unspecified).
thread_local signed char tls_state = 0;  // 0 = not constructed, 1 = alive, 2 = destroyed
thread_local struct PoolHolder {
  FramePool pool;
  PoolHolder() { tls_state = 1; }
  ~PoolHolder() { tls_state = 2; }
} tls_holder;

FramePool* pool_if_alive() {
  if (tls_state == 2) return nullptr;
  // Odr-using tls_holder constructs it on this thread's first call.
  return &tls_holder.pool;
}

// Round the request up to a whole number of granules.  Allocations are always
// made at the rounded size, so a cached block of bucket i satisfies any
// request that rounds to bucket i.
std::size_t bucket_index(std::size_t size) {
  return (size + kGranularity - 1) / kGranularity - 1;
}

}  // namespace

void* frame_allocate(std::size_t size) {
  const std::size_t i = bucket_index(size);
  if (i >= kMaxBuckets) return ::operator new(size);
  if (FramePool* pool = pool_if_alive()) {
    Bucket& b = pool->buckets[i];
    if (b.head != nullptr) {
      void* p = b.head;
      b.head = *static_cast<void**>(p);
      --b.count;
      return p;
    }
  }
  void* p = std::malloc((i + 1) * kGranularity);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void frame_deallocate(void* p, std::size_t size) {
  const std::size_t i = bucket_index(size);
  if (i >= kMaxBuckets) {
    ::operator delete(p);
    return;
  }
  if (FramePool* pool = pool_if_alive()) {
    Bucket& b = pool->buckets[i];
    if (b.count < kMaxCachedPerBucket) {
      *static_cast<void**>(p) = b.head;
      b.head = p;
      ++b.count;
      return;
    }
  }
  std::free(p);
}

std::size_t frame_pool_cached() {
  FramePool* pool = pool_if_alive();
  if (pool == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& b : pool->buckets) n += b.count;
  return n;
}

#endif  // AOFT_FRAME_POOL_DISABLED

}  // namespace aoft::sim
