#include "sim/scheduler.h"

#include <algorithm>

#include "obs/sink.h"
#include "sim/channel.h"

namespace aoft::sim {

Scheduler::~Scheduler() {
  for (auto h : tasks_)
    if (h) h.destroy();
}

void Scheduler::reset() {
  for (auto h : tasks_)
    if (h) h.destroy();
  tasks_.clear();
  ready_.clear();
  blocked_.clear();
  quiesce_scratch_.clear();
  idle_handler_ = {};
}

void Scheduler::spawn(SimTask task) {
  auto h = task.release();
  tasks_.push_back(h);
  ready_.push_back(h);
}

void Scheduler::add_blocked(Channel* ch) {
  ch->blocked_index_ = static_cast<std::ptrdiff_t>(blocked_.size());
  blocked_.push_back(ch);
}

void Scheduler::remove_blocked(Channel* ch) {
  const auto i = ch->blocked_index_;
  if (i < 0) return;
  blocked_[static_cast<std::size_t>(i)] = blocked_.back();
  blocked_[static_cast<std::size_t>(i)]->blocked_index_ = i;
  blocked_.pop_back();
  ch->blocked_index_ = -1;
}

int Scheduler::run() {
  int watchdog_rounds = 0;
  for (;;) {
    while (!ready_.empty()) {
      auto h = ready_.front();
      ready_.pop_front();
      h.resume();
      if (h.done()) {
        auto& promise =
            SimTask::Handle::from_address(h.address()).promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
      }
    }
    if (blocked_.empty()) break;
    // Remote transport attached: pump it before declaring message absence —
    // on a real transport, quiescence of the *local* tasks proves nothing.
    if (idle_handler_ && idle_handler_()) continue;
    // Global quiescence with suspended receivers: the watchdog fires and
    // every pending receive fails (message absence detected).
    ++watchdog_rounds;
    if (auto* me = obs::metrics()) me->inc(obs::Counter::kWatchdogRounds);
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kWatchdogRound, obs::kGlobal, -1, -1, 0.0,
                  watchdog_rounds,
                  static_cast<std::int64_t>(blocked_.size()));
    quiesce_scratch_.swap(blocked_);  // keep both capacities across rounds
    blocked_.clear();
    for (Channel* ch : quiesce_scratch_) {
      ch->blocked_index_ = -1;
      ch->fail_waiter();
    }
    quiesce_scratch_.clear();
  }
  return watchdog_rounds;
}

}  // namespace aoft::sim
