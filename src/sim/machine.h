// The simulated hypercube multicomputer.
//
// A Machine owns: the topology, one context per node (private memory, logical
// clock, link endpoints), a host processor with reliable links to every node,
// a deterministic cooperative scheduler, and an optional link-level fault
// interceptor.  It implements exactly the paper's environmental assumptions
// (§3):
//
//   1. node-node links and node processors may be Byzantine (the interceptor
//      and adversarial node programs model this),
//   2. the host and the host links are reliable (no interception there),
//   3. only point-to-point messages, no atomic broadcast,
//   4. message absence is detectable (scheduler watchdog),
//   5. all nodes are sane at start-up.
//
// Node programs are coroutines written against Ctx; the optional host program
// runs against HostCtx.  Lifetime note: Machine::run keeps the program
// callables alive until every coroutine finishes, and coroutine lambdas must
// not outlive their closure, so programs are passed by const reference and
// copied into the run frame.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hypercube/topology.h"
#include "sim/channel.h"
#include "sim/cost_model.h"
#include "sim/message.h"
#include "sim/pool.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace aoft::sim {

// Which executable assertion (or condition) raised a fail-stop error.
enum class ErrorSource : std::uint8_t {
  kPhiP,     // progress: sequence not bitonic
  kPhiF,     // feasibility: sequence not complete w.r.t. the previous one
  kPhiC,     // consistency: redundant copies disagree
  kTimeout,  // expected message absent (watchdog)
  kApp,      // application-defined assertion
};

const char* to_string(ErrorSource s);

struct ErrorReport {
  cube::NodeId node = 0;
  int stage = -1;
  int iter = -1;
  ErrorSource source = ErrorSource::kApp;
  std::string detail;
};

struct NodeStats {
  double clock = 0.0;       // logical time at completion
  double comp_ticks = 0.0;  // charged computation
  double comm_ticks = 0.0;  // charged send/receive overhead (excludes waiting)
  std::uint64_t msgs_sent = 0;
  std::uint64_t words_sent = 0;
};

struct RunSummary {
  double elapsed = 0.0;    // max final clock over nodes and host
  double max_comm = 0.0;   // max per-node communication ticks
  double max_comp = 0.0;   // max per-node computation ticks
  double host_comm = 0.0;  // host communication ticks
  double host_comp = 0.0;  // host computation ticks
  std::uint64_t total_msgs = 0;
  std::uint64_t total_words = 0;
  int watchdog_rounds = 0;
};

class Machine;
class RemoteLink;  // sim/remote.h

// Per-node view of the machine: the only interface node programs may use.
class Ctx {
 public:
  cube::NodeId id() const { return id_; }
  const cube::Topology& topo() const;
  int dim() const { return topo().dimension(); }

  double clock() const { return stats_.clock; }
  void charge(double ticks) {
    stats_.clock += ticks;
    stats_.comp_ticks += ticks;
  }

  // Non-blocking send over the hypercube link to an adjacent node.  Subject
  // to fault interception.
  void send(cube::NodeId to, Message m);

  // Awaitable receive from the link to an adjacent node.
  Channel::RecvAwaiter recv(cube::NodeId from);

  // Receive-side cost accounting; protocols call this once per successfully
  // received message: the clock advances to the message arrival time (waiting
  // is not separately charged) plus the receive overhead.
  void account_recv(const Message& m);

  // Reliable host link.
  void send_host(Message m);
  Channel::RecvAwaiter recv_host();

  // Record a fail-stop diagnostic and notify the host (reliable).
  void error(ErrorReport r);

  // The machine's key pool; protocols build pooled Messages/KeyBufs from it.
  KeyPool& pool();

  const NodeStats& stats() const { return stats_; }

 private:
  friend class Machine;
  Machine* machine_ = nullptr;
  cube::NodeId id_ = 0;
  NodeStats stats_;
};

// The host processor's view.
class HostCtx {
 public:
  const cube::Topology& topo() const;

  double clock() const { return stats_.clock; }
  void charge(double ticks) {
    stats_.clock += ticks;
    stats_.comp_ticks += ticks;
  }

  void send(cube::NodeId to, Message m);
  Channel::RecvAwaiter recv();  // shared inbox: messages from any node

  // Receive-side accounting: the host pays the serial per-word link cost when
  // draining its inbox, which is what makes it the bottleneck the paper
  // describes for host-based sorting.
  void account_recv(const Message& m);

  // Bulk-path accounting for checkpoint drains (CostModel::ckpt_word): the
  // spool absorbs the words off the interactive link's critical path.
  void account_bulk_recv(const Message& m);

  // Record a fail-stop diagnostic from the host side (e.g. the Theorem-1
  // verifier rejecting an upload, or an expected upload never arriving).
  void error(ErrorReport r);

  KeyPool& pool();

  const NodeStats& stats() const { return stats_; }

 private:
  friend class Machine;
  Machine* machine_ = nullptr;
  NodeStats stats_;
};

using NodeMain = std::function<SimTask(Ctx&)>;
using HostMain = std::function<SimTask(HostCtx&)>;

// Link-level fault injection: sees every message at send time on node-node
// links (host links are reliable by assumption).  Return false to drop the
// message; the message may be mutated in place.  Byzantine *node* behaviour
// is modelled by intercepting all links out of that node, possibly
// differently per destination (two-faced behaviour).
class LinkInterceptor {
 public:
  virtual ~LinkInterceptor() = default;
  virtual bool on_send(cube::NodeId from, cube::NodeId to, Message& m) = 0;
};

// One record per delivered or dropped message (optional, for tests).  Host
// traffic is recorded too: `to_host` marks a node→host upload (`to` is
// meaningless), `from_host` a host→node push (`from` is meaningless).  Host
// links are reliable, so host events always have delivered == true.
struct LinkEvent {
  cube::NodeId from = 0;
  cube::NodeId to = 0;
  MsgKind kind = MsgKind::kData;
  int stage = -1;
  int iter = -1;
  std::uint32_t words = 0;
  bool delivered = true;
  bool to_host = false;
  bool from_host = false;
};

class Machine {
 public:
  Machine(cube::Topology topo, CostModel cost);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const cube::Topology& topo() const { return topo_; }
  const CostModel& cost() const { return cost_; }

  void set_interceptor(LinkInterceptor* interceptor) { interceptor_ = interceptor; }
  void record_link_events(bool on) { record_events_ = on; }

  // Run `node_main` on every node, plus an optional host program, to
  // completion.  May be called once per Machine (or once per reset()).
  void run(const NodeMain& node_main, const HostMain& host_main = {});

  // As above with a distinct program per node (adversarial node programs).
  // Taken by value: callers that no longer need their vector can move it in
  // and the closures are stored exactly once for the whole run.
  void run_per_node(std::vector<NodeMain> mains, const HostMain& host_main = {});

  // ---- remote transport (sim/remote.h) -------------------------------------
  // Drive only one endpoint of the cube — node `local_node`, or the host when
  // local_node is negative — and route every non-local delivery through
  // `link`.  Inbound messages are pumped from the link whenever the local
  // tasks quiesce; the watchdog fires only once the link reports that nothing
  // further can arrive.  Attach before running; reset() detaches.
  void attach_remote(RemoteLink* link, std::int32_t local_node);
  bool remote() const { return remote_ != nullptr; }

  // Run exactly one node's program (attach_remote(link, p) first).
  void run_remote_node(cube::NodeId p, const NodeMain& node_main);
  // Run only the host program (attach_remote(link, negative) first).
  void run_remote_host(const HostMain& host_main);

  // Return the machine to its just-constructed state so it can run again:
  // destroys any leftover coroutine frames, drains channels (pooled buffers
  // return to the pool), zeroes clocks/stats, clears the interceptor, event
  // log and error list, and re-arms the run-once contract.  A reset machine
  // is observably identical to a freshly constructed one — same event log,
  // same trace bytes — which is what lets the campaign engine keep one
  // machine per worker instead of reconstructing per scenario.
  void reset();
  void reset(const CostModel& cost);  // as above, swapping the cost model

  // The free list backing pooled messages.  Single-threaded, like the
  // machine itself.
  KeyPool& pool() { return pool_; }

  const std::vector<ErrorReport>& errors() const { return errors_; }
  bool failed_stop() const { return !errors_.empty(); }

  // True once run/run_per_node has been entered (even if it threw): the
  // machine is single-shot until the next reset(), and a failed run must not
  // be re-entered.
  bool ran() const { return ran_; }

  const NodeStats& node_stats(cube::NodeId p) const { return ctxs_[p].stats_; }
  const NodeStats& host_stats() const { return host_ctx_.stats_; }
  const std::vector<LinkEvent>& link_events() const { return events_; }

  RunSummary summary() const;

 private:
  friend class Ctx;
  friend class HostCtx;

  Channel& link_channel(cube::NodeId to, cube::NodeId from);
  void deliver(cube::NodeId from, cube::NodeId to, Message m);

  // The host-link counterparts of deliver(): every message still flows
  // through one recording point (LinkEvent log + metrics), but host links are
  // reliable by assumption — no interceptor, never dropped.
  void deliver_host(cube::NodeId from, Message m);
  void deliver_from_host(cube::NodeId to, Message m);

  cube::Topology topo_;
  CostModel cost_;
  // Declared before the scheduler and channels: their destructors release
  // pooled buffers (queued messages, frames holding KeyBufs) into pool_, so
  // pool_ must be destroyed after them.
  KeyPool pool_;
  Scheduler sched_;

  // in_links_[p][k]: messages arriving at p across dimension k.
  std::vector<std::vector<std::unique_ptr<Channel>>> in_links_;
  std::unique_ptr<Channel> host_inbox_;
  std::vector<std::unique_ptr<Channel>> host_out_;

  std::vector<Ctx> ctxs_;
  HostCtx host_ctx_;

  // Remote-transport state: the attached link, the driven endpoint (node
  // label, or negative for the host) and the scratch peer list the idle pump
  // rebuilds per quiescence.
  bool remote_idle();
  RemoteLink* remote_ = nullptr;
  std::int32_t remote_local_ = -1;
  std::vector<cube::NodeId> remote_peers_;

  LinkInterceptor* interceptor_ = nullptr;
  bool record_events_ = false;
  std::vector<LinkEvent> events_;
  std::vector<ErrorReport> errors_;
  int watchdog_rounds_ = 0;
  bool ran_ = false;
};

}  // namespace aoft::sim
