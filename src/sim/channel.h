// Asynchronous single-receiver message channel.
//
// Models one direction of a point-to-point link (or the host's shared inbox).
// Sends never block — real message-passing multicomputers buffer outgoing
// messages — while receives suspend the calling coroutine until a message is
// available or the scheduler's quiescence watchdog fires (timeout).
//
// At most one coroutine may be suspended on a channel at a time; the sorting
// protocols only ever have one logical receiver per link, and the host inbox
// has a single host task.

#pragma once

#include <coroutine>
#include <cstddef>

#include "sim/message.h"
#include "util/ring.h"

namespace aoft::sim {

class Scheduler;

class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Enqueue a message; wakes the waiting receiver, if any.
  void push(Message m);

  bool has_message() const { return !queue_.empty(); }

  // Awaitable receive.
  class RecvAwaiter {
   public:
    explicit RecvAwaiter(Channel& ch) : ch_(ch) {}
    bool await_ready() const noexcept { return ch_.has_message(); }
    void await_suspend(std::coroutine_handle<> h);
    RecvResult await_resume();

   private:
    Channel& ch_;
  };

  RecvAwaiter recv() { return RecvAwaiter{*this}; }

  // Called by the scheduler when global quiescence is reached while this
  // channel has a suspended receiver: the receive completes with ok = false.
  void fail_waiter();

  // Return the channel to its just-constructed state (Machine::reset).  Any
  // queued messages release their pooled buffers; the queue keeps its
  // capacity.  Must not be called while a receiver is suspended.
  void reset();

 private:
  friend class RecvAwaiter;

  friend class Scheduler;

  Scheduler& sched_;
  util::Ring<Message> queue_;
  std::coroutine_handle<> waiter_ = nullptr;
  bool timed_out_ = false;
  // Position in the scheduler's blocked list while a receiver is suspended;
  // lets the scheduler unblock in O(1) via swap-remove.
  std::ptrdiff_t blocked_index_ = -1;
};

}  // namespace aoft::sim
