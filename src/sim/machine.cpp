#include "sim/machine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/sink.h"
#include "sim/remote.h"

namespace aoft::sim {

const char* to_string(ErrorSource s) {
  switch (s) {
    case ErrorSource::kPhiP: return "phi_P(progress)";
    case ErrorSource::kPhiF: return "phi_F(feasibility)";
    case ErrorSource::kPhiC: return "phi_C(consistency)";
    case ErrorSource::kTimeout: return "timeout(absent message)";
    case ErrorSource::kApp: return "application";
  }
  return "?";
}

// ---- Ctx ----

const cube::Topology& Ctx::topo() const { return machine_->topo_; }

KeyPool& Ctx::pool() { return machine_->pool_; }

void Ctx::send(cube::NodeId to, Message m) {
  // Always-on invariant (not an assert: protocol code paths that pick a wrong
  // partner must fail loudly in release builds too).
  if (!machine_->topo_.adjacent(id_, to))
    throw std::logic_error("node links join neighbors only: node " +
                           std::to_string(id_) + " cannot send to " +
                           std::to_string(to));
  m.from = id_;
  const double cost = machine_->cost_.msg_cost(m.words());
  stats_.clock += cost;
  stats_.comm_ticks += cost;
  stats_.msgs_sent += 1;
  stats_.words_sent += m.words();
  m.arrival = stats_.clock;
  machine_->deliver(id_, to, std::move(m));
}

Channel::RecvAwaiter Ctx::recv(cube::NodeId from) {
  return machine_->link_channel(id_, from).recv();
}

void Ctx::account_recv(const Message& m) {
  stats_.clock = std::max(stats_.clock, m.arrival);
  const double cost = machine_->cost_.alpha_recv;
  stats_.clock += cost;
  stats_.comm_ticks += cost;
}

void Ctx::send_host(Message m) {
  m.from = id_;
  // Host links are reliable and lightly loaded at the node end; the serial
  // per-word cost is paid by the host when it drains its inbox.
  const double cost = machine_->cost_.alpha_send;
  stats_.clock += cost;
  stats_.comm_ticks += cost;
  stats_.msgs_sent += 1;
  stats_.words_sent += m.words();
  m.arrival = stats_.clock;
  machine_->deliver_host(id_, std::move(m));
}

Channel::RecvAwaiter Ctx::recv_host() {
  return machine_->host_out_[id_]->recv();
}

void Ctx::error(ErrorReport r) {
  r.node = id_;
  if (auto* tr = obs::tracer())
    tr->instant(obs::Ev::kError, id_, r.stage, r.iter, stats_.clock,
                static_cast<std::int64_t>(r.source), 0, r.detail);
  if (auto* me = obs::metrics()) me->inc(obs::Counter::kErrors);
  Message m;
  m.kind = MsgKind::kHostError;
  m.stage = r.stage;
  m.iter = r.iter;
  m.tag = static_cast<std::int32_t>(r.source);
  machine_->errors_.push_back(std::move(r));
  send_host(std::move(m));
}

// ---- HostCtx ----

const cube::Topology& HostCtx::topo() const { return machine_->topo_; }

KeyPool& HostCtx::pool() { return machine_->pool_; }

void HostCtx::send(cube::NodeId to, Message m) {
  const double cost = machine_->cost_.host_msg_cost(m.words());
  stats_.clock += cost;
  stats_.comm_ticks += cost;
  stats_.msgs_sent += 1;
  stats_.words_sent += m.words();
  m.arrival = stats_.clock;
  machine_->deliver_from_host(to, std::move(m));
}

Channel::RecvAwaiter HostCtx::recv() { return machine_->host_inbox_->recv(); }

void HostCtx::error(ErrorReport r) {
  if (auto* tr = obs::tracer())
    tr->instant(obs::Ev::kError, obs::kHostNode, r.stage, r.iter, stats_.clock,
                static_cast<std::int64_t>(r.source), 0, r.detail);
  if (auto* me = obs::metrics()) me->inc(obs::Counter::kErrors);
  machine_->errors_.push_back(std::move(r));
}

void HostCtx::account_recv(const Message& m) {
  stats_.clock = std::max(stats_.clock, m.arrival);
  const double cost = machine_->cost_.host_msg_cost(m.words());
  stats_.clock += cost;
  stats_.comm_ticks += cost;
}

void HostCtx::account_bulk_recv(const Message& m) {
  stats_.clock = std::max(stats_.clock, m.arrival);
  const double cost = machine_->cost_.host_alpha +
                      machine_->cost_.ckpt_word * static_cast<double>(m.words());
  stats_.clock += cost;
  stats_.comm_ticks += cost;
}

// ---- Machine ----

Machine::Machine(cube::Topology topo, CostModel cost)
    : topo_(topo), cost_(cost) {
  const auto n = topo_.num_nodes();
  in_links_.resize(n);
  host_out_.resize(n);
  ctxs_.resize(n);
  for (cube::NodeId p = 0; p < n; ++p) {
    in_links_[p].resize(static_cast<std::size_t>(topo_.dimension()));
    for (int k = 0; k < topo_.dimension(); ++k)
      in_links_[p][static_cast<std::size_t>(k)] = std::make_unique<Channel>(sched_);
    host_out_[p] = std::make_unique<Channel>(sched_);
    ctxs_[p].machine_ = this;
    ctxs_[p].id_ = p;
  }
  host_inbox_ = std::make_unique<Channel>(sched_);
  host_ctx_.machine_ = this;
}

Machine::~Machine() = default;

Channel& Machine::link_channel(cube::NodeId to, cube::NodeId from) {
  if (!topo_.adjacent(to, from))
    throw std::logic_error("node links join neighbors only: no link " +
                           std::to_string(from) + " -> " + std::to_string(to));
  const int k = __builtin_ctz(to ^ from);
  return *in_links_[to][static_cast<std::size_t>(k)];
}

void Machine::deliver(cube::NodeId from, cube::NodeId to, Message m) {
  bool pass = true;
  if (interceptor_ != nullptr) pass = interceptor_->on_send(from, to, m);
  if (record_events_)
    events_.push_back(LinkEvent{from, to, m.kind, m.stage, m.iter,
                                static_cast<std::uint32_t>(m.words()), pass});
  if (auto* me = obs::metrics()) {
    me->inc(obs::Counter::kLinkMsgs);
    me->inc(obs::Counter::kLinkWords, m.words());
    me->observe_msg_words(m.words());
    if (!pass) me->inc(obs::Counter::kDroppedMsgs);
  }
  if (!pass) {
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kDrop, from, m.stage, m.iter, m.arrival, to,
                  static_cast<std::int64_t>(m.words()));
    return;
  }
  // Interception, recording and metrics all happen sender-side (above), so a
  // remote run's event log is the local node's exact share of the sim's.
  if (remote_ != nullptr && static_cast<std::int32_t>(to) != remote_local_) {
    remote_->send_node(from, to, m);
    return;
  }
  link_channel(to, from).push(std::move(m));
}

void Machine::deliver_host(cube::NodeId from, Message m) {
  if (record_events_) {
    LinkEvent ev{from, 0, m.kind, m.stage, m.iter,
                 static_cast<std::uint32_t>(m.words()), true};
    ev.to_host = true;
    events_.push_back(ev);
  }
  if (auto* me = obs::metrics()) {
    me->inc(obs::Counter::kHostMsgs);
    me->inc(obs::Counter::kHostWords, m.words());
  }
  if (remote_ != nullptr && remote_local_ >= 0) {  // node endpoint: host is remote
    remote_->send_host(from, m);
    return;
  }
  host_inbox_->push(std::move(m));
}

void Machine::deliver_from_host(cube::NodeId to, Message m) {
  if (record_events_) {
    LinkEvent ev{0, to, m.kind, m.stage, m.iter,
                 static_cast<std::uint32_t>(m.words()), true};
    ev.from_host = true;
    events_.push_back(ev);
  }
  if (auto* me = obs::metrics()) {
    me->inc(obs::Counter::kHostMsgs);
    me->inc(obs::Counter::kHostWords, m.words());
  }
  if (remote_ != nullptr && static_cast<std::int32_t>(to) != remote_local_) {
    remote_->send_from_host(to, m);
    return;
  }
  host_out_[to]->push(std::move(m));
}

void Machine::run(const NodeMain& node_main, const HostMain& host_main) {
  if (ran_) throw std::logic_error("Machine::run may be called once per reset");
  ran_ = true;
  // One copy of each callable lives in this frame for the whole run; every
  // node coroutine references the same closure (coroutine lambdas must not
  // outlive their closure object).
  NodeMain local(node_main);
  HostMain host_local(host_main);
  for (cube::NodeId p = 0; p < topo_.num_nodes(); ++p)
    sched_.spawn(local(ctxs_[p]));
  if (host_local) sched_.spawn(host_local(host_ctx_));
  watchdog_rounds_ = sched_.run();
}

void Machine::run_per_node(std::vector<NodeMain> mains,
                           const HostMain& host_main) {
  if (ran_) throw std::logic_error("Machine::run may be called once per reset");
  ran_ = true;
  assert(mains.size() == topo_.num_nodes());
  // `mains` is owned by value: the closures sit in this frame until every
  // coroutine finishes, with no second copy.
  HostMain host_local(host_main);
  for (cube::NodeId p = 0; p < topo_.num_nodes(); ++p)
    sched_.spawn(mains[p](ctxs_[p]));
  if (host_local) sched_.spawn(host_local(host_ctx_));
  watchdog_rounds_ = sched_.run();
}

void Machine::attach_remote(RemoteLink* link, std::int32_t local_node) {
  if (ran_)
    throw std::logic_error("attach_remote must precede the machine's run");
  remote_ = link;
  remote_local_ = local_node;
  sched_.set_idle_handler([this] { return remote_idle(); });
}

void Machine::run_remote_node(cube::NodeId p, const NodeMain& node_main) {
  if (ran_) throw std::logic_error("Machine::run may be called once per reset");
  if (remote_ == nullptr || remote_local_ != static_cast<std::int32_t>(p))
    throw std::logic_error("run_remote_node requires attach_remote(link, p)");
  ran_ = true;
  NodeMain local(node_main);
  sched_.spawn(local(ctxs_[p]));
  watchdog_rounds_ = sched_.run();
}

void Machine::run_remote_host(const HostMain& host_main) {
  if (ran_) throw std::logic_error("Machine::run may be called once per reset");
  if (remote_ == nullptr || remote_local_ >= 0)
    throw std::logic_error(
        "run_remote_host requires attach_remote(link, negative)");
  ran_ = true;
  HostMain host_local(host_main);
  sched_.spawn(host_local(host_ctx_));
  watchdog_rounds_ = sched_.run();
}

bool Machine::remote_idle() {
  const auto deliver = [this](bool from_host, cube::NodeId from, Message&& m) {
    if (remote_local_ < 0) {
      host_inbox_->push(std::move(m));
    } else if (from_host) {
      host_out_[static_cast<std::size_t>(remote_local_)]->push(std::move(m));
    } else {
      link_channel(static_cast<cube::NodeId>(remote_local_), from)
          .push(std::move(m));
    }
  };
  for (;;) {
    if (remote_->pump(pool_, deliver) > 0) return true;
    // Map each blocked receiver back to the peer it waits on, so the link
    // can detect peer death long before the real-time timeout: a receiver on
    // in_links_[local][k] waits on neighbor local ^ (1 << k).  A receiver
    // blocked on the host link names no peer — the host is reliable by
    // Environmental Assumption 2, so only the deadline can fail it.
    remote_peers_.clear();
    if (remote_local_ >= 0) {
      const auto local = static_cast<cube::NodeId>(remote_local_);
      for (const Channel* ch : sched_.blocked())
        for (int k = 0; k < topo_.dimension(); ++k)
          if (ch == in_links_[local][static_cast<std::size_t>(k)].get())
            remote_peers_.push_back(local ^ (cube::NodeId{1} << k));
    }
    if (!remote_->wait_activity(remote_peers_)) return false;
  }
}

void Machine::reset() { reset(cost_); }

void Machine::reset(const CostModel& cost) {
  // Order matters: destroying leftover coroutine frames releases any pooled
  // buffers they still hold, and channel resets release queued messages —
  // all into pool_, which stays warm for the next run.
  sched_.reset();
  for (auto& row : in_links_)
    for (auto& ch : row) ch->reset();
  for (auto& ch : host_out_) ch->reset();
  host_inbox_->reset();
  for (auto& ctx : ctxs_) ctx.stats_ = NodeStats{};
  host_ctx_.stats_ = NodeStats{};
  cost_ = cost;
  remote_ = nullptr;
  remote_local_ = -1;
  interceptor_ = nullptr;
  record_events_ = false;
  events_.clear();
  errors_.clear();
  watchdog_rounds_ = 0;
  ran_ = false;
}

RunSummary Machine::summary() const {
  RunSummary s;
  for (const auto& ctx : ctxs_) {
    const auto& st = ctx.stats_;
    s.elapsed = std::max(s.elapsed, st.clock);
    s.max_comm = std::max(s.max_comm, st.comm_ticks);
    s.max_comp = std::max(s.max_comp, st.comp_ticks);
    s.total_msgs += st.msgs_sent;
    s.total_words += st.words_sent;
  }
  s.elapsed = std::max(s.elapsed, host_ctx_.stats_.clock);
  s.host_comm = host_ctx_.stats_.comm_ticks;
  s.host_comp = host_ctx_.stats_.comp_ticks;
  s.total_msgs += host_ctx_.stats_.msgs_sent;
  s.total_words += host_ctx_.stats_.words_sent;
  s.watchdog_rounds = watchdog_rounds_;
  return s;
}

}  // namespace aoft::sim
