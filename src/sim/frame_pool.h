// Thread-local free list for coroutine frame storage.
//
// Every simulated node task allocates one coroutine frame per run; under the
// campaign engine that is N frames per scenario, thousands per second.  The
// frames of a given protocol come in a handful of distinct sizes, so a small
// bucketed free list (64-byte granularity) absorbs virtually all of them
// after warm-up.
//
// The pool is thread-local because campaign workers run whole Machines on
// worker threads; frames never migrate between threads (a Machine is
// single-threaded), so no locking is needed and determinism is unaffected.
//
// Under AddressSanitizer the pool is compiled out: recycling frames would
// hide use-after-free on coroutine handles, which is exactly what the
// sanitizer job exists to catch.

#pragma once

#include <cstddef>

namespace aoft::sim {

#if defined(__SANITIZE_ADDRESS__)
#define AOFT_FRAME_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AOFT_FRAME_POOL_DISABLED 1
#endif
#endif

// Allocate / free coroutine frame storage through the thread-local pool.
// frame_deallocate must be passed the same size frame_allocate was given
// (the sized operator delete guarantees this for coroutine frames).
void* frame_allocate(std::size_t size);
void frame_deallocate(void* p, std::size_t size);

// Free list introspection for tests: number of cached blocks on this thread.
std::size_t frame_pool_cached();

}  // namespace aoft::sim
