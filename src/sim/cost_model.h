// Logical-clock cost model, calibrated to the paper's Ncube measurements.
//
// The paper reports component run times in Ncube "clock ticks" (§5):
//
//     S_FT        communication  8·log²N + 0.05·N·log N     computation 11.5·N
//     sequential  communication  14·N                       computation 0.45·N·log N
//
// We do not have an Ncube; instead every simulated node keeps a logical clock
// advanced by the charges below, calibrated so the *fitted component forms*
// land on the paper's constants (bench/table1_components recovers
// 8.1·log²N + 0.048·N·log N / 11.9·N / 16·N / 0.45·N·log N; see
// EXPERIMENTS.md):
//
//   * 5.5 ticks per message at each end          -> the 8·log²N term
//     (each node sends and receives ~log²N/2 messages over the whole sort),
//   * 0.0207 ticks per key word on node links    -> the 0.05·N·log N term
//     (each node moves ~2.3·N·log N piggybacked words over the whole sort),
//   * 7 ticks per word on host links             -> sequential ~14·N
//     (gather N words + scatter N words),
//   * 0.45 ticks per host comparison             -> sequential 0.45·N·log N
//     (the paper deliberately times a single-if "sort" at the theoretical
//     N·log N minimum),
//   * 1 tick per comparison, 0.62 per merge entry -> S_FT computation ≈ 11.5·N
//     (Thm 4's O(2^{i+3})-per-stage accounting sums to ~12·N entry visits).
//
// Timing rule (LogP-like): send charges alpha + beta·words to the sender and
// stamps the message with the sender's clock as arrival time; receive charges
// alpha to the receiver and advances it to max(own clock, arrival).  Elapsed
// time of a run is the maximum final clock over all processors.

#pragma once

#include <cstddef>

namespace aoft::sim {

struct CostModel {
  // Node-node links.
  double alpha_send = 5.5;   // per-message startup at the sender
  double alpha_recv = 5.5;   // per-message overhead at the receiver
  double beta = 0.0207;      // per key word transferred

  // Host links (program/data download and result upload; reliable).
  double host_alpha = 1.0;
  double host_beta = 7.0;  // per word; dominated by the serial host bottleneck

  // Checkpoint drain at the host (recovery supervisor).  Stage-boundary
  // checkpoints stream to the host's spool off the critical path, so the
  // drain pays a bulk per-word rate instead of the interactive host_beta;
  // nodes still pay alpha_send per upload, so checkpointing is not free.
  double ckpt_word = 0.1;

  // Node computation.
  double cmp = 1.0;          // one key comparison or min/max
  double copy = 0.1;         // move one key word locally
  double merge_entry = 0.62; // one LBS entry handled by the consistency merge

  // Host computation.
  double host_cmp = 0.45;  // one comparison in the host's minimal "sort"

  double msg_cost(std::size_t words) const {
    return alpha_send + beta * static_cast<double>(words);
  }
  double host_msg_cost(std::size_t words) const {
    return host_alpha + host_beta * static_cast<double>(words);
  }
};

}  // namespace aoft::sim
