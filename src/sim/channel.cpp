#include "sim/channel.h"

#include <cassert>
#include <stdexcept>

#include "obs/sink.h"
#include "sim/scheduler.h"

namespace aoft::sim {

void Channel::push(Message m) {
  queue_.push_back(std::move(m));
  if (auto* me = obs::metrics()) me->observe_queue_depth(queue_.size());
  if (waiter_) {
    auto h = waiter_;
    waiter_ = nullptr;
    sched_.remove_blocked(this);
    sched_.ready(h);
  }
}

void Channel::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  // Always-on invariant.  Thrown before any state is mutated, so the
  // exception propagates out of the offending co_await and leaves the channel
  // (and the first receiver's suspension) untouched.
  if (ch_.waiter_ != nullptr)
    throw std::logic_error("one receiver per channel at a time");
  ch_.waiter_ = h;
  ch_.timed_out_ = false;
  ch_.sched_.add_blocked(&ch_);
}

RecvResult Channel::RecvAwaiter::await_resume() {
  if (ch_.timed_out_) {
    ch_.timed_out_ = false;
    return RecvResult{false, {}};
  }
  // Always-on invariant (PR 3 policy: protocol invariants survive NDEBUG).
  // A receiver resumed without a timeout flag must have a message waiting;
  // anything else is a scheduler/channel bookkeeping bug, not a protocol
  // fault, and must fail loudly in release builds too.
  if (!ch_.has_message())
    throw std::logic_error("channel resumed with empty queue and no timeout");
  RecvResult r{true, std::move(ch_.queue_.front())};
  ch_.queue_.pop_front();
  return r;
}

void Channel::reset() {
  assert(waiter_ == nullptr);
  queue_.clear();
  timed_out_ = false;
  blocked_index_ = -1;
}

void Channel::fail_waiter() {
  assert(waiter_ != nullptr);
  if (auto* me = obs::metrics()) me->inc(obs::Counter::kTimeouts);
  if (auto* tr = obs::tracer())
    tr->instant(obs::Ev::kTimeout, obs::kGlobal, -1, -1, 0.0);
  auto h = waiter_;
  waiter_ = nullptr;
  timed_out_ = true;
  sched_.ready(h);
}

}  // namespace aoft::sim
