#include "sim/channel.h"

#include "sim/scheduler.h"

namespace aoft::sim {

void Channel::push(Message m) {
  queue_.push_back(std::move(m));
  if (waiter_) {
    auto h = waiter_;
    waiter_ = nullptr;
    sched_.remove_blocked(this);
    sched_.ready(h);
  }
}

void Channel::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  assert(ch_.waiter_ == nullptr && "one receiver per channel at a time");
  ch_.waiter_ = h;
  ch_.timed_out_ = false;
  ch_.sched_.add_blocked(&ch_);
}

RecvResult Channel::RecvAwaiter::await_resume() {
  if (ch_.timed_out_) {
    ch_.timed_out_ = false;
    return RecvResult{false, {}};
  }
  assert(ch_.has_message());
  RecvResult r{true, std::move(ch_.queue_.front())};
  ch_.queue_.pop_front();
  return r;
}

void Channel::fail_waiter() {
  assert(waiter_ != nullptr);
  auto h = waiter_;
  waiter_ = nullptr;
  timed_out_ = true;
  sched_.ready(h);
}

}  // namespace aoft::sim
