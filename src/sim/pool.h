// Pooled key storage for the messaging hot path.
//
// Theorem 4 prices S_FT at O(log^2 N + N log N) communication; in the
// simulator every gossiped word used to ride in a freshly heap-allocated
// std::vector<Key>.  KeyPool is a per-Machine free list of key vectors and
// KeyBuf is the vector-like RAII handle protocols hold: acquiring reuses a
// retired vector's capacity, destroying (or moving-from) returns the storage
// to the pool.  Pooling is invisible to the wire protocol — message contents,
// cost charges and trace bytes are identical with pooling on or off.
//
// KeyBuf is a contiguous range of Key (begin()/end() return raw pointers), so
// it converts implicitly to std::span<Key> / std::span<const Key> and slots
// into the span-based predicate and blockops APIs unchanged.
//
// The global set_pooling(false) switch exists for one consumer only:
// bench/campaign_throughput's before/after columns, which must measure the
// unpooled baseline from the same binary.  It is not thread-safe to flip
// while simulations run.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

namespace aoft::sim {

// Sort keys.  The paper's experiments sort 32-bit integers; we store keys in
// 64 bits so adversaries can also inject out-of-universe values.
using Key = std::int64_t;

namespace detail {
inline std::atomic<bool> g_pooling{true};
}  // namespace detail

// Runtime pooling toggle (benchmark baseline only; flip while idle).
inline void set_pooling(bool on) {
  detail::g_pooling.store(on, std::memory_order_relaxed);
}
inline bool pooling_enabled() {
  return detail::g_pooling.load(std::memory_order_relaxed);
}

// Free list of retired key vectors.  Not thread-safe: each Machine owns one
// pool and a Machine is single-threaded by construction.
class KeyPool {
 public:
  std::vector<Key> acquire() {
    if (!free_.empty()) {
      std::vector<Key> v = std::move(free_.back());
      free_.pop_back();
      return v;
    }
    return {};
  }

  void release(std::vector<Key>&& v) {
    if (!pooling_enabled() || v.capacity() == 0) return;
    if (free_.size() >= kMaxFree) return;  // let the excess free normally
    v.clear();
    free_.push_back(std::move(v));
  }

  std::size_t free_count() const { return free_.size(); }

 private:
  static constexpr std::size_t kMaxFree = 256;
  std::vector<std::vector<Key>> free_;
};

// Vector-like key buffer that returns its storage to a KeyPool on
// destruction.  Default-constructed KeyBufs are unpooled (plain vector
// semantics); copies are deep and unpooled on the destination side unless the
// destination already has a pool, in which case copy-assignment keeps the
// destination's pool and capacity.
class KeyBuf {
 public:
  KeyBuf() = default;
  explicit KeyBuf(KeyPool& pool) : v_(pool.acquire()), pool_(&pool) {}

  ~KeyBuf() { release(); }

  KeyBuf(KeyBuf&& o) noexcept
      : v_(std::move(o.v_)), pool_(std::exchange(o.pool_, nullptr)) {
    o.v_.clear();
  }

  KeyBuf& operator=(KeyBuf&& o) noexcept {
    if (this != &o) {
      release();
      v_ = std::move(o.v_);
      o.v_.clear();
      pool_ = std::exchange(o.pool_, nullptr);
    }
    return *this;
  }

  // Deep copy; the copy is unpooled (safe to outlive any Machine).
  KeyBuf(const KeyBuf& o) : v_(o.v_) {}

  // Copy-assignment keeps this buffer's pool and reuses its capacity.
  KeyBuf& operator=(const KeyBuf& o) {
    if (this != &o) v_.assign(o.v_.begin(), o.v_.end());
    return *this;
  }

  KeyBuf& operator=(const std::vector<Key>& v) {
    v_.assign(v.begin(), v.end());
    return *this;
  }

  KeyBuf& operator=(std::initializer_list<Key> il) {
    v_.assign(il);
    return *this;
  }

  // Detach the storage (e.g. to hand a result out of the simulation).  The
  // vector no longer returns to the pool.
  std::vector<Key> take() && {
    pool_ = nullptr;
    return std::move(v_);
  }

  // --- vector-like interface ------------------------------------------------
  using value_type = Key;
  using iterator = Key*;
  using const_iterator = const Key*;

  Key* data() { return v_.data(); }
  const Key* data() const { return v_.data(); }
  Key* begin() { return v_.data(); }
  Key* end() { return v_.data() + v_.size(); }
  const Key* begin() const { return v_.data(); }
  const Key* end() const { return v_.data() + v_.size(); }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  Key& operator[](std::size_t i) { return v_[i]; }
  const Key& operator[](std::size_t i) const { return v_[i]; }
  Key& at(std::size_t i) { return v_.at(i); }
  const Key& at(std::size_t i) const { return v_.at(i); }
  Key& front() { return v_.front(); }
  const Key& front() const { return v_.front(); }
  Key& back() { return v_.back(); }
  const Key& back() const { return v_.back(); }

  void reserve(std::size_t n) { v_.reserve(n); }
  void resize(std::size_t n, Key fill = 0) { v_.resize(n, fill); }
  void clear() { v_.clear(); }
  void push_back(Key k) { v_.push_back(k); }
  void pop_back() { v_.pop_back(); }

  template <typename It>
  void assign(It first, It last) {
    v_.assign(first, last);
  }
  void assign(std::size_t n, Key k) { v_.assign(n, k); }
  void assign(std::initializer_list<Key> il) { v_.assign(il); }

  friend bool operator==(const KeyBuf& a, const KeyBuf& b) {
    return a.v_ == b.v_;
  }
  bool operator==(const std::vector<Key>& v) const { return v_ == v; }

 private:
  void release() {
    if (pool_ != nullptr) pool_->release(std::move(v_));
  }

  std::vector<Key> v_;
  KeyPool* pool_ = nullptr;
};

}  // namespace aoft::sim
