// Deterministic cooperative scheduler for the simulated multicomputer.
//
// All node tasks and the host task run on one OS thread.  The ready queue is
// FIFO and tasks are spawned in node order, so every simulation of the same
// (input, fault plan) pair replays identically — a property the fault
// campaigns and the resume-style tests rely on.
//
// Watchdog model: when no task is runnable but some tasks are suspended on
// channel receives, a real machine would eventually trip a timeout (the
// paper's Environmental Assumption 4: "the absence of a message can be
// detected and constitutes an error").  The scheduler models the watchdog by
// failing every pending receive at global quiescence; receivers observe
// RecvResult::ok == false and fail-stop.

#pragma once

#include <coroutine>
#include <functional>
#include <vector>

#include "sim/task.h"
#include "util/ring.h"

namespace aoft::sim {

class Channel;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  // Take ownership of a task and queue it for its first resume.
  void spawn(SimTask task);

  void ready(std::coroutine_handle<> h) { ready_.push_back(h); }

  // Channels report receivers blocking/unblocking so the watchdog can find
  // them at quiescence.  Both operations are O(1).
  void add_blocked(Channel* ch);
  void remove_blocked(Channel* ch);

  // Remote-transport hook (sim/remote.h): invoked at global quiescence
  // *before* the watchdog.  Returning true means external progress was made
  // (messages were pumped into channels), so the scheduler re-enters its
  // ready loop instead of failing the blocked receivers.
  void set_idle_handler(std::function<bool()> handler) {
    idle_handler_ = std::move(handler);
  }

  // Channels currently holding a suspended receiver; idle handlers map these
  // back to the peers being waited on.
  const std::vector<Channel*>& blocked() const { return blocked_; }

  // Drive everything to completion.  Returns the number of watchdog rounds
  // that were needed (0 for a fault-free run of a deadlock-free protocol).
  // Rethrows the first exception escaping a task (programming error).
  int run();

  // Destroy all owned frames and empty the queues, keeping their capacity
  // (Machine::reset).  Safe after run() completed or threw.
  void reset();

 private:
  std::vector<SimTask::Handle> tasks_;  // owned frames
  util::Ring<std::coroutine_handle<>> ready_;
  std::vector<Channel*> blocked_;
  std::function<bool()> idle_handler_;
  // Scratch for the watchdog sweep: swapped with blocked_ at quiescence so
  // neither vector's capacity is lost across rounds (std::move would discard
  // the allocation every round).
  std::vector<Channel*> quiesce_scratch_;
};

}  // namespace aoft::sim
