// Remote-transport extension point for the simulated multicomputer.
//
// A Machine normally owns every link in the cube.  With a RemoteLink
// attached (Machine::attach_remote) it drives only the *local* endpoint —
// one node's coroutine, or the host's — and forwards every non-local
// delivery to the link; a separate OS process drives each other endpoint
// against the same link (transport/shm_transport.h).
//
// Inbound traffic is pulled at quiescence: when every local task is blocked
// on a receive, the scheduler's idle hook pumps the link instead of firing
// the watchdog, and the watchdog only fires once the link itself reports
// that nothing further can arrive — every waited-on peer is terminally down
// with its rings drained, or a real-time deadline expired.  That preserves
// the paper's Environmental Assumption 4 (message absence is detectable) on
// a transport where absence takes actual wall-clock time to establish.
//
// The interface lives in sim, not transport, so the transport library can
// implement it against sim without a dependency cycle.

#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "hypercube/topology.h"
#include "sim/message.h"
#include "sim/pool.h"

namespace aoft::sim {

class RemoteLink {
 public:
  virtual ~RemoteLink() = default;

  // Outbound, invoked from Machine::deliver* after interception, link-event
  // recording and metrics.  Must match Channel::push semantics: never blocks
  // the protocol, never fails — a dead peer absorbs traffic exactly like a
  // sim channel whose receiver already halted.
  virtual void send_node(cube::NodeId from, cube::NodeId to,
                         const Message& m) = 0;
  virtual void send_host(cube::NodeId from, const Message& m) = 0;
  virtual void send_from_host(cube::NodeId to, const Message& m) = 0;

  // Inbound: drain everything currently available, handing each message to
  // `deliver`.  Returns the number of messages delivered.  `pool` backs the
  // reconstructed pooled key buffers.
  using Deliver =
      std::function<void(bool from_host, cube::NodeId from, Message&&)>;
  virtual std::size_t pump(KeyPool& pool, const Deliver& deliver) = 0;

  // Idle wait.  `peers` holds the node labels the local receivers are
  // currently blocked on (empty when only host traffic is awaited).  Return
  // true to re-pump; return false when no further message can arrive — the
  // machine then lets the watchdog fail the blocked receivers.
  virtual bool wait_activity(std::span<const cube::NodeId> peers) = 0;
};

}  // namespace aoft::sim
