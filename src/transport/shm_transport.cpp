#include "transport/shm_transport.h"

#include <unistd.h>

#include <bit>
#include <thread>

#include "transport/wire.h"

namespace aoft::transport {

namespace {
constexpr auto kIdleNap = std::chrono::microseconds(200);
}

ShmTransport::ShmTransport(ShmSegment& seg, std::int32_t role)
    : seg_(seg), role_(role) {
  scratch_.reserve(4096);
}

bool ShmTransport::push_ring(ShmRing ring, const sim::Message& m) {
  encode_message(m, scratch_);
  return ring.try_push(scratch_.data(),
                       static_cast<std::uint32_t>(scratch_.size()));
}

void ShmTransport::send_node(cube::NodeId from, cube::NodeId to,
                             const sim::Message& m) {
  const int k = std::countr_zero(from ^ to);
  if (!push_ring(seg_.link_ring(to, k), m))
    ++seg_.slot(from).send_overflow;  // sized for the whole run: a bug, not
                                      // backpressure — absorb like a dead peer
}

void ShmTransport::send_host(cube::NodeId from, const sim::Message& m) {
  if (!push_ring(seg_.up_ring(from), m)) ++seg_.slot(from).send_overflow;
}

void ShmTransport::send_from_host(cube::NodeId to, const sim::Message& m) {
  if (!push_ring(seg_.down_ring(to), m)) ++seg_.slot(to).send_overflow;
}

std::size_t ShmTransport::pump(sim::KeyPool& pool, const Deliver& deliver) {
  std::size_t delivered = 0;
  std::vector<unsigned char> rec;
  const auto drain = [&](ShmRing ring, bool from_host) {
    while (ring.try_pop(rec)) {
      sim::Message m(pool);
      if (!decode_message(rec, pool, m))
        throw std::runtime_error("shm ring record corrupt");
      deliver(from_host, m.from, std::move(m));
      ++delivered;
    }
  };
  if (role_ == kHostRole) {
    for (cube::NodeId p = 0; p < seg_.num_nodes(); ++p)
      drain(seg_.up_ring(p), false);
  } else {
    const auto me = static_cast<cube::NodeId>(role_);
    for (int k = 0; k < seg_.dim(); ++k) drain(seg_.link_ring(me, k), false);
    drain(seg_.down_ring(me), true);
  }
  if (delivered > 0) waiting_ = false;
  return delivered;
}

bool ShmTransport::wait_activity(std::span<const cube::NodeId> peers) {
  const auto now = std::chrono::steady_clock::now();
  if (!waiting_) {
    waiting_ = true;
    wait_start_ = now;
  }

  if (role_ == kHostRole) {
    if (host_poll_) host_poll_();
    bool all_down = true;
    for (cube::NodeId p = 0; all_down && p < seg_.num_nodes(); ++p)
      all_down = slot_terminal(static_cast<SlotState>(
          seg_.slot(p).state.load(std::memory_order_acquire)));
    if (all_down) {
      // Slots first, rings second: anything a child pushed before its
      // terminal store is visible by now, so empty rings mean silence.
      bool drained = true;
      for (cube::NodeId p = 0; drained && p < seg_.num_nodes(); ++p)
        drained = seg_.up_ring(p).empty();
      if (drained) return false;
    }
    std::this_thread::sleep_for(kIdleNap);
    return true;
  }

  // Node role.  An orphaned child can never receive again: its host (and
  // the cube around it) is gone.
  if (getppid() != seg_.header().host_pid) return false;

  if (!peers.empty()) {
    bool all_down = true;
    for (cube::NodeId q : peers)
      all_down = all_down && slot_terminal(static_cast<SlotState>(
                                 seg_.slot(q).state.load(
                                     std::memory_order_acquire)));
    if (all_down) {
      const auto me = static_cast<cube::NodeId>(role_);
      bool drained = true;
      for (int k = 0; drained && k < seg_.dim(); ++k)
        drained = seg_.link_ring(me, k).empty();
      if (drained && seg_.down_ring(me).empty()) return false;
    }
  }

  const double waited =
      std::chrono::duration<double>(now - wait_start_).count();
  if (waited > seg_.header().recv_timeout_s) return false;

  std::this_thread::sleep_for(kIdleNap);
  return true;
}

}  // namespace aoft::transport
