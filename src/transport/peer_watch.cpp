#include "transport/peer_watch.h"

namespace aoft::transport {

PeerWatch::PeerWatch(int n, double heartbeat_loss_s)
    : peers_(static_cast<std::size_t>(n)),
      loss_(heartbeat_loss_s),
      silence_rule_(heartbeat_loss_s > 0.0) {}

void PeerWatch::mark_up(int peer, Time now) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (slot_terminal(p.state)) return;
  p.state = SlotState::kRunning;
  p.last_rx = now;
}

void PeerWatch::note_activity(int peer, Time now) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.state == SlotState::kIdle) p.state = SlotState::kRunning;
  p.last_rx = now;
  p.armed = true;
}

void PeerWatch::set_loss(double heartbeat_loss_s) {
  loss_ = std::chrono::duration<double>(heartbeat_loss_s);
  silence_rule_ = heartbeat_loss_s > 0.0;
}

void PeerWatch::mark_finished(int peer, SlotState result) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.state == SlotState::kDone || p.state == SlotState::kFailed) return;
  p.state = result;  // kDead -> result: the FINISH beat the watchdog
}

void PeerWatch::mark_dead(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.state == SlotState::kDone || p.state == SlotState::kFailed) return;
  p.state = SlotState::kDead;
}

bool PeerWatch::sweep(Time now) {
  if (!silence_rule_) return false;
  bool changed = false;
  for (Peer& p : peers_) {
    if (p.state != SlotState::kRunning || !p.armed) continue;
    if (now - p.last_rx >
        std::chrono::duration_cast<Clock::duration>(loss_)) {
      p.state = SlotState::kDead;
      changed = true;
    }
  }
  return changed;
}

PeerWatch::Time PeerWatch::next_deadline() const {
  Time best = Time::max();
  if (!silence_rule_) return best;
  for (const Peer& p : peers_) {
    if (p.state != SlotState::kRunning || !p.armed) continue;
    const Time t =
        p.last_rx + std::chrono::duration_cast<Clock::duration>(loss_);
    if (t < best) best = t;
  }
  return best;
}

bool PeerWatch::all_terminal() const {
  for (const Peer& p : peers_)
    if (!slot_terminal(p.state)) return false;
  return true;
}

}  // namespace aoft::transport
