// sim::RemoteLink over a ShmSegment: the per-process endpoint driver.
//
// Each OS process owns one endpoint — node p (role == p) or the host (role
// == kHostRole) — and a ShmTransport wired to the shared segment.  Sends
// encode into the destination's inbound ring; pump drains every ring that
// feeds the local endpoint.  wait_activity implements message-absence
// detection (Environmental Assumption 4) on real time: a blocked node
// returns "nothing further can arrive" only once every peer it waits on is
// terminally down (status slot) with its inbound rings drained, or after
// recv_timeout_s of no progress; the host variant waits for all slots
// terminal and up-rings empty, polling the parent's reaper on the way.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/remote.h"
#include "transport/shm_segment.h"

namespace aoft::transport {

class ShmTransport final : public sim::RemoteLink {
 public:
  // `role` is a node id, or kHostRole for the host endpoint.
  ShmTransport(ShmSegment& seg, std::int32_t role);

  // Host side: invoked on every wait iteration so the parent can reap dead
  // children and enforce the run deadline while its collector is blocked.
  void set_host_poll(std::function<void()> poll) { host_poll_ = std::move(poll); }

  void send_node(cube::NodeId from, cube::NodeId to,
                 const sim::Message& m) override;
  void send_host(cube::NodeId from, const sim::Message& m) override;
  void send_from_host(cube::NodeId to, const sim::Message& m) override;
  std::size_t pump(sim::KeyPool& pool, const Deliver& deliver) override;
  bool wait_activity(std::span<const cube::NodeId> peers) override;

 private:
  bool push_ring(ShmRing ring, const sim::Message& m);

  ShmSegment& seg_;
  std::int32_t role_;
  std::function<void()> host_poll_;
  std::vector<unsigned char> scratch_;

  // One waiting episode: starts when wait_activity first sees no progress,
  // ends when pump delivers something.  The recv timeout bounds the episode.
  bool waiting_ = false;
  std::chrono::steady_clock::time_point wait_start_{};
};

}  // namespace aoft::transport
