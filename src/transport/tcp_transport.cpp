#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "transport/wire.h"

namespace aoft::transport {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("tcp: " + what + " (" + std::strerror(errno) + ")");
}

void set_nonblocking(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  if (fl < 0 || fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0)
    die("fcntl(O_NONBLOCK)");
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_addr(const std::string& addr, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1)
    throw std::runtime_error("tcp: bad IPv4 address '" + addr + "'");
  return sa;
}

// Poll one fd for readability, bounded.
bool wait_readable(int fd, int timeout_ms) {
  pollfd pf{fd, POLLIN, 0};
  return ::poll(&pf, 1, timeout_ms) > 0;
}

}  // namespace

// ---- TcpConn ----------------------------------------------------------------

TcpConn::TcpConn(TcpConn&& o) noexcept { *this = std::move(o); }

TcpConn& TcpConn::operator=(TcpConn&& o) noexcept {
  if (this != &o) {
    close_fd();
    fd_ = o.fd_;
    broken_ = o.broken_;
    eof_ = o.eof_;
    wbuf_ = std::move(o.wbuf_);
    wpos_ = o.wpos_;
    reader_ = std::move(o.reader_);
    last_tx = o.last_tx;
    o.fd_ = -1;
  }
  return *this;
}

TcpConn::~TcpConn() { close_fd(); }

void TcpConn::close_fd() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void TcpConn::queue_frame(FrameType type,
                          std::span<const unsigned char> payload) {
  if (!open()) return;  // dead peers absorb traffic, like a halted receiver
  append_frame(wbuf_, type, payload);
  flush();
}

bool TcpConn::flush() {
  if (fd_ < 0 || broken_) {
    wbuf_.clear();
    wpos_ = 0;
    return true;
  }
  while (wpos_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + wpos_, wbuf_.size() - wpos_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      wpos_ += static_cast<std::size_t>(n);
      last_tx = Clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // signal, not a dead peer
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    broken_ = true;  // peer gone mid-write: absorb the rest
    wbuf_.clear();
    wpos_ = 0;
    return true;
  }
  if (wpos_ == wbuf_.size()) {
    wbuf_.clear();
    wpos_ = 0;
  } else if (wpos_ > 65536) {
    wbuf_.erase(wbuf_.begin(), wbuf_.begin() + static_cast<long>(wpos_));
    wpos_ = 0;
  }
  return wpos_ == wbuf_.size();
}

std::size_t TcpConn::read_some() {
  if (fd_ < 0 || eof_) return 0;
  std::size_t total = 0;
  unsigned char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      reader_.feed({buf, static_cast<std::size_t>(n)});
      total += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // signal, not a dead peer
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof_ = true;  // orderly close or reset: either way the peer is gone
    break;
  }
  return total;
}

// ---- TcpListener ------------------------------------------------------------

TcpListener::TcpListener(const std::string& addr, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) die("socket");
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa = make_addr(addr, port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) < 0)
    die("bind " + addr);
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) < 0)
    die("getsockname");
  port_ = ntohs(sa.sin_port);
  if (::listen(fd_, 128) < 0) die("listen");
  set_nonblocking(fd_);
}

TcpListener::TcpListener(TcpListener&& o) noexcept
    : fd_(o.fd_), port_(o.port_) {
  o.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& o) noexcept {
  if (this != &o) {
    close_fd();
    fd_ = o.fd_;
    port_ = o.port_;
    o.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() { close_fd(); }

void TcpListener::close_fd() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<TcpConn> TcpListener::accept_one() {
  if (fd_ < 0) return std::nullopt;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return std::nullopt;
  set_nonblocking(cfd);
  set_nodelay(cfd);
  return TcpConn(cfd);
}

TcpConn tcp_dial(const std::string& addr, std::uint16_t port,
                 double timeout_s) {
  const sockaddr_in sa = make_addr(addr, port);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) die("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) ==
        0) {
      set_nonblocking(fd);
      set_nodelay(fd);
      return TcpConn(fd);
    }
    ::close(fd);
    if (Clock::now() >= deadline)
      throw std::runtime_error("tcp: connect to " + addr + ":" +
                               std::to_string(port) + " timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// ---- hosts file -------------------------------------------------------------

std::vector<std::optional<HostPin>> parse_hosts_file(const std::string& path,
                                                     int num_nodes) {
  std::vector<std::optional<HostPin>> pins(
      static_cast<std::size_t>(num_nodes));
  std::ifstream in(path);
  if (!in) throw std::runtime_error("tcp: cannot open hosts file " + path);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    long id = -1;
    if (!(ls >> id)) continue;  // blank / comment-only line
    HostPin pin;
    long port = 0;
    if (id < 0 || id >= num_nodes || !(ls >> pin.addr) ||
        ((ls >> port) && (port < 0 || port > 65535)))
      throw std::runtime_error("tcp: bad hosts line " +
                               std::to_string(lineno) + " in " + path);
    pin.port = static_cast<std::uint16_t>(port);
    pins[static_cast<std::size_t>(id)] = std::move(pin);
  }
  return pins;
}

// ---- TcpNodeEndpoint --------------------------------------------------------

TcpNodeEndpoint::TcpNodeEndpoint(cube::NodeId node,
                                 const std::string& parent_addr,
                                 std::uint16_t parent_port,
                                 const std::string& listen_addr,
                                 std::uint16_t listen_port,
                                 double setup_timeout_s)
    : me_(node),
      listener_(listen_addr, listen_port),
      parent_(tcp_dial(parent_addr, parent_port, setup_timeout_s)),
      watch_(0, 0.0) {
  scratch_.reserve(4096);

  WireHello hello;
  std::memcpy(hello.magic, kTcpMagic, sizeof hello.magic);
  hello.role = static_cast<std::int32_t>(me_);
  hello.listen_port = listener_.port();
  std::snprintf(hello.listen_addr, sizeof hello.listen_addr, "%s",
                listen_addr.c_str());
  parent_.queue_frame(FrameType::kHello, as_bytes_of(hello));

  // Block for the CONFIG broadcast — it arrives only after every node of
  // the cube has HELLOed, so this wait covers the whole fleet's rendezvous.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(setup_timeout_s));
  std::vector<unsigned char> cfg_payload;
  for (;;) {
    parent_.flush();
    if (auto f = parent_.reader().next()) {
      if (f->type == FrameType::kConfig) {
        cfg_payload.assign(f->payload.begin(), f->payload.end());
        break;
      }
      continue;  // stray heartbeat
    }
    if (parent_.reader().malformed() || parent_.eof())
      throw std::runtime_error("tcp: parent stream ended before CONFIG");
    if (Clock::now() >= deadline)
      throw std::runtime_error("tcp: CONFIG wait timed out");
    wait_readable(parent_.fd(), 50);
    parent_.read_some();
  }

  std::span<const unsigned char> cur(cfg_payload);
  if (!take(cur, cfg_) ||
      std::memcmp(cfg_.magic, kTcpMagic, sizeof cfg_.magic) != 0 ||
      cfg_.for_node != static_cast<std::int32_t>(me_) ||
      cfg_.dim > static_cast<std::uint32_t>(kMaxProcessDim))
    throw std::runtime_error("tcp: CONFIG head corrupt");
  dim_ = static_cast<int>(cfg_.dim);
  const cube::NodeId n = cube::NodeId{1} << dim_;
  faults_.resize(n);
  port_map_.resize(n);
  for (auto& f : faults_)
    if (!take(cur, f)) throw std::runtime_error("tcp: CONFIG faults corrupt");
  for (auto& e : port_map_)
    if (!take(cur, e)) throw std::runtime_error("tcp: CONFIG ports corrupt");
  const std::size_t keys = static_cast<std::size_t>(n) * cfg_.block;
  const std::size_t want =
      keys * sizeof(sim::Key) * (cfg_.with_resume ? 2 : 1);
  if (cur.size() != want)
    throw std::runtime_error("tcp: CONFIG key payload corrupt");
  input_.resize(keys);
  std::memcpy(input_.data(), cur.data(), keys * sizeof(sim::Key));
  if (cfg_.with_resume) {
    llbs_.resize(keys);
    std::memcpy(llbs_.data(), cur.data() + keys * sizeof(sim::Key),
                keys * sizeof(sim::Key));
  }

  peers_.resize(static_cast<std::size_t>(dim_));
  watch_ = PeerWatch(dim_, cfg_.heartbeat_loss_s);
}

TcpNodeEndpoint::~TcpNodeEndpoint() = default;

TcpConn& TcpNodeEndpoint::neighbor(cube::NodeId q) {
  return peers_[static_cast<std::size_t>(std::countr_zero(me_ ^ q))];
}

void TcpNodeEndpoint::connect_peers() {
  const auto now = Clock::now();
  int expect_accept = 0;
  for (int k = 0; k < dim_; ++k) {
    const cube::NodeId q = me_ ^ (cube::NodeId{1} << k);
    if (q < me_) {
      // Every node listens before it HELLOs and CONFIG follows the last
      // HELLO, so the lower neighbor is already accepting.
      peers_[static_cast<std::size_t>(k)] =
          tcp_dial(port_map_[q].addr, port_map_[q].port, cfg_.recv_timeout_s);
      WireHello hello;
      std::memcpy(hello.magic, kTcpMagic, sizeof hello.magic);
      hello.role = static_cast<std::int32_t>(me_);
      peers_[static_cast<std::size_t>(k)].queue_frame(FrameType::kHello,
                                                      as_bytes_of(hello));
    } else {
      ++expect_accept;
    }
  }

  std::vector<TcpConn> anon;
  const auto deadline =
      now + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(cfg_.recv_timeout_s));
  while (expect_accept > 0) {
    if (Clock::now() >= deadline)
      throw std::runtime_error("tcp: peer mesh accept timed out");
    while (auto c = listener_.accept_one()) anon.push_back(std::move(*c));
    bool progressed = false;
    for (auto& c : anon) {
      if (!c.open()) continue;
      c.read_some();
      if (auto f = c.reader().next()) {
        WireHello hello;
        auto payload = f->payload;
        if (f->type != FrameType::kHello || !take(payload, hello) ||
            std::memcmp(hello.magic, kTcpMagic, sizeof hello.magic) != 0)
          throw std::runtime_error("tcp: bad peer hello");
        const auto q = static_cast<cube::NodeId>(hello.role);
        if ((me_ ^ q) == 0 || std::popcount(me_ ^ q) != 1 || q < me_)
          throw std::runtime_error("tcp: peer hello from non-neighbor");
        neighbor(q) = std::move(c);
        --expect_accept;
        progressed = true;
      }
    }
    std::erase_if(anon, [](const TcpConn& c) { return c.fd() < 0; });
    if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  listener_.close_fd();
  // kRunning, but each peer's silence rule stays un-armed until it is first
  // heard from — a neighbor may still be meshing with ITS other neighbors.
  for (int k = 0; k < dim_; ++k) watch_.mark_up(k, Clock::now());
  // Announce liveness right away: the regular cadence only starts once the
  // machine reaches its pump loop, which is an entire block-local sort from
  // here, and peers / the host arm their watchdogs on this first beat.
  if (cfg_.heartbeat_interval_s > 0) {
    parent_.queue_frame(FrameType::kHeartbeat, {});
    for (auto& c : peers_) c.queue_frame(FrameType::kHeartbeat, {});
  }
}

void TcpNodeEndpoint::send_node(cube::NodeId from, cube::NodeId to,
                                const sim::Message& m) {
  (void)from;
  encode_message(m, scratch_);
  neighbor(to).queue_frame(FrameType::kData, scratch_);
}

void TcpNodeEndpoint::send_host(cube::NodeId, const sim::Message& m) {
  encode_message(m, scratch_);
  parent_.queue_frame(FrameType::kData, scratch_);
}

void TcpNodeEndpoint::send_from_host(cube::NodeId, const sim::Message&) {
  throw std::logic_error("tcp: node endpoint cannot send as host");
}

bool TcpNodeEndpoint::service() {
  const auto now = Clock::now();
  const bool was_empty = inbox_.empty();

  const auto drain = [&](TcpConn& c, int k, bool from_host) {
    if (!c.open() && !c.eof()) return;
    if (c.read_some() > 0 && k >= 0) watch_.note_activity(k, now);
    while (auto f = c.reader().next()) {
      if (f->type == FrameType::kData)
        inbox_.push_back(
            {from_host, {f->payload.begin(), f->payload.end()}});
      // heartbeats carry no payload; their bytes already refreshed last_rx
    }
    if (c.reader().malformed())
      throw std::runtime_error("tcp: corrupt stream from peer");
    if (c.eof() && k >= 0) watch_.mark_dead(k);
  };

  drain(parent_, -1, true);
  for (int k = 0; k < dim_; ++k)
    drain(peers_[static_cast<std::size_t>(k)], k, false);

  // Our own liveness: beat every transmit-idle link so blocked peers (and
  // the host's wedge detector) keep seeing a live neighbor.
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(cfg_.heartbeat_interval_s));
  const auto beat = [&](TcpConn& c) {
    if (!c.open()) return;
    if (now - c.last_tx >= interval) c.queue_frame(FrameType::kHeartbeat, {});
    c.flush();
  };
  if (cfg_.heartbeat_interval_s > 0) {
    beat(parent_);
    for (auto& c : peers_) beat(c);
  } else {
    parent_.flush();
    for (auto& c : peers_) c.flush();
  }

  watch_.sweep(now);
  return was_empty && !inbox_.empty();
}

std::size_t TcpNodeEndpoint::pump(sim::KeyPool& pool, const Deliver& deliver) {
  service();
  std::size_t delivered = 0;
  while (!inbox_.empty()) {
    Pending rec = std::move(inbox_.front());
    inbox_.pop_front();
    sim::Message m(pool);
    if (!decode_message(rec.bytes, pool, m))
      throw std::runtime_error("tcp: data frame corrupt");
    deliver(rec.from_host, m.from, std::move(m));
    ++delivered;
  }
  if (delivered > 0) waiting_ = false;
  return delivered;
}

bool TcpNodeEndpoint::wait_activity(std::span<const cube::NodeId> peers) {
  const auto now = Clock::now();
  if (!waiting_) {
    waiting_ = true;
    wait_start_ = now;
  }

  if (service()) return true;  // fresh data: let the machine pump

  // An orphaned node can never receive again: its host (and the cube around
  // it) is gone.  Mirrors the shm getppid() check.
  if (parent_.eof()) return false;

  if (!peers.empty()) {
    bool all_down = true;
    for (cube::NodeId q : peers)
      all_down = all_down &&
                 watch_.terminal(std::countr_zero(me_ ^ q));
    // service() drained every complete frame into the inbox, so an empty
    // inbox here means the dead peers' streams really are exhausted.
    if (all_down && inbox_.empty()) return false;
  }

  const double waited =
      std::chrono::duration<double>(now - wait_start_).count();
  if (waited > cfg_.recv_timeout_s) return false;

  // Sleep on the sockets until data, a heartbeat deadline, or a short nap.
  std::vector<pollfd> pfds;
  const auto add = [&](const TcpConn& c) {
    if (c.fd() >= 0)
      pfds.push_back(
          {c.fd(),
           static_cast<short>(POLLIN | (c.want_write() ? POLLOUT : 0)), 0});
  };
  add(parent_);
  for (const auto& c : peers_) add(c);
  ::poll(pfds.data(), pfds.size(), 20);
  return true;
}

void TcpNodeEndpoint::finish(SlotState state, const FinishHead& head,
                             std::span<const WireError> errors,
                             std::span<const WireLinkEvent> events,
                             std::span<const sim::Key> output) {
  std::vector<unsigned char> payload;
  FinishHead h = head;
  h.node = static_cast<std::int32_t>(me_);
  h.state = static_cast<std::uint32_t>(state);
  h.error_count = static_cast<std::uint32_t>(errors.size());
  h.event_count = static_cast<std::uint32_t>(events.size());
  h.out_count = static_cast<std::uint32_t>(output.size());
  const auto append = [&payload](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    payload.insert(payload.end(), b, b + n);
  };
  append(&h, sizeof h);
  append(errors.data(), errors.size_bytes());
  append(events.data(), events.size_bytes());
  append(output.data(), output.size_bytes());
  parent_.queue_frame(FrameType::kFinish, payload);

  // Flush everything still buffered (final exchange traffic included) before
  // closing; a peer that will not drain us is itself dead, so bound the try.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool done = parent_.flush();
    for (auto& c : peers_) done = c.flush() && done;
    if (done || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  parent_.close_fd();
  for (auto& c : peers_) c.close_fd();
}

// ---- TcpHostEndpoint --------------------------------------------------------

TcpHostEndpoint::TcpHostEndpoint(int dim, const TcpOptions& opts)
    : dim_(dim),
      n_(cube::NodeId{1} << dim),
      opts_(opts),
      addr_(opts.listen_addr),
      listener_(opts.listen_addr, opts.port),
      conns_(n_),
      port_map_(n_),
      slots_(n_),
      watch_(static_cast<int>(n_), opts.heartbeat_loss_s) {
  scratch_.reserve(4096);
}

void TcpHostEndpoint::rendezvous(double setup_timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(setup_timeout_s));
  cube::NodeId helloed = 0;
  while (helloed < n_) {
    if (Clock::now() >= deadline)
      throw std::runtime_error("tcp: rendezvous timed out with " +
                               std::to_string(helloed) + "/" +
                               std::to_string(n_) + " nodes");
    if (host_poll_) host_poll_();  // notice children that died pre-HELLO
    while (auto c = listener_.accept_one())
      anonymous_.push_back(std::move(*c));
    for (auto& c : anonymous_) {
      if (c.fd() < 0) continue;
      c.read_some();
      if (auto f = c.reader().next()) {
        WireHello hello;
        auto payload = f->payload;
        if (f->type != FrameType::kHello || !take(payload, hello) ||
            std::memcmp(hello.magic, kTcpMagic, sizeof hello.magic) != 0 ||
            hello.role < 0 || static_cast<cube::NodeId>(hello.role) >= n_)
          throw std::runtime_error("tcp: bad node hello");
        const auto p = static_cast<cube::NodeId>(hello.role);
        if (conns_[p].fd() >= 0)
          throw std::runtime_error("tcp: duplicate hello from node " +
                                   std::to_string(p));
        std::snprintf(port_map_[p].addr, sizeof port_map_[p].addr, "%s",
                      hello.listen_addr);
        port_map_[p].port = hello.listen_port;
        conns_[p] = std::move(c);
        // kRunning, silence rule un-armed: the node is rightfully quiet
        // until CONFIG reaches it and its mesh completes (minutes, under
        // --hosts); its first post-mesh heartbeat arms the watchdog.
        watch_.mark_up(static_cast<int>(p), Clock::now());
        ++helloed;
      } else if (c.eof() || c.reader().malformed()) {
        c.close_fd();
      }
    }
    std::erase_if(anonymous_, [](const TcpConn& c) { return c.fd() < 0; });
    if (helloed < n_) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void TcpHostEndpoint::broadcast_config(TcpConfigHead head,
                                       std::span<const WireFault> faults,
                                       std::span<const sim::Key> input,
                                       std::span<const sim::Key> llbs) {
  std::memcpy(head.magic, kTcpMagic, sizeof head.magic);
  head.dim = static_cast<std::uint32_t>(dim_);
  head.recv_timeout_s = opts_.recv_timeout_s;
  head.heartbeat_interval_s = opts_.heartbeat_interval_s;
  // Grow the silence bound with the block (the longest compute burst a node
  // performs without touching its sockets) and hold the host's own watchdog
  // to the same scaled value the nodes will sweep with.
  head.heartbeat_loss_s = scaled_heartbeat_loss(opts_.heartbeat_loss_s,
                                                head.block);
  watch_.set_loss(head.heartbeat_loss_s);
  // Same bound the drivers checked before spawning; re-checked here so no
  // caller can push an unframeable CONFIG into append_frame's truncation
  // guard with a less helpful message.
  const std::size_t config_bytes = sizeof head + faults.size_bytes() +
                                   port_map_.size() * sizeof(WirePortEntry) +
                                   input.size_bytes() + llbs.size_bytes();
  if (config_bytes > kMaxFrameBytes)
    throw std::runtime_error(
        "tcp: CONFIG payload of " + std::to_string(config_bytes) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame limit — shrink block or dim for the tcp backend");
  std::vector<unsigned char> payload;
  for (cube::NodeId p = 0; p < n_; ++p) {
    head.for_node = static_cast<std::int32_t>(p);
    payload.clear();
    const auto append = [&payload](const void* ptr, std::size_t bytes) {
      const auto* b = static_cast<const unsigned char*>(ptr);
      payload.insert(payload.end(), b, b + bytes);
    };
    append(&head, sizeof head);
    append(faults.data(), faults.size_bytes());
    append(port_map_.data(), port_map_.size() * sizeof(WirePortEntry));
    append(input.data(), input.size_bytes());
    append(llbs.data(), llbs.size_bytes());
    conns_[p].queue_frame(FrameType::kConfig, payload);
  }
}

void TcpHostEndpoint::handle_frame(cube::NodeId p, const Frame& f) {
  switch (f.type) {
    case FrameType::kData:
      inbox_.push_back({p, {f.payload.begin(), f.payload.end()}});
      return;
    case FrameType::kHeartbeat:
      return;  // bytes already refreshed last_rx
    case FrameType::kFinish: {
      TcpSlot& s = slots_[p];
      auto cur = f.payload;
      if (!take(cur, s.head) ||
          s.head.node != static_cast<std::int32_t>(p) ||
          cur.size() != s.head.error_count * sizeof(WireError) +
                            s.head.event_count * sizeof(WireLinkEvent) +
                            s.head.out_count * sizeof(sim::Key))
        throw std::runtime_error("tcp: finish frame corrupt");
      s.errors.resize(s.head.error_count);
      for (auto& e : s.errors) take(cur, e);
      s.events.resize(s.head.event_count);
      for (auto& e : s.events) take(cur, e);
      s.output.resize(s.head.out_count);
      if (s.head.out_count) {
        std::memcpy(s.output.data(), cur.data(),
                    s.head.out_count * sizeof(sim::Key));
      }
      s.state = static_cast<SlotState>(s.head.state);
      watch_.mark_finished(static_cast<int>(p), s.state);
      return;
    }
    default:
      throw std::runtime_error("tcp: unexpected frame from node");
  }
}

bool TcpHostEndpoint::service() {
  const auto now = Clock::now();
  const bool was_empty = inbox_.empty();
  for (cube::NodeId p = 0; p < n_; ++p) {
    TcpConn& c = conns_[p];
    if (c.fd() < 0) continue;
    if (c.read_some() > 0) watch_.note_activity(static_cast<int>(p), now);
    while (auto f = c.reader().next()) handle_frame(p, *f);
    if (c.reader().malformed())
      throw std::runtime_error("tcp: corrupt stream from node " +
                               std::to_string(p));
    if (c.eof()) {
      watch_.mark_dead(static_cast<int>(p));  // kDone/kFailed stay put
      c.close_fd();
    } else {
      c.flush();
    }
  }
  watch_.sweep(now);
  // Mirror the sweep into the result slots so collectors see kDead for
  // wedged peers that never EOF'd.
  for (cube::NodeId p = 0; p < n_; ++p)
    if (!slot_terminal(slots_[p].state))
      slots_[p].state = watch_.state(static_cast<int>(p));
  return was_empty && !inbox_.empty();
}

std::size_t TcpHostEndpoint::pump(sim::KeyPool& pool, const Deliver& deliver) {
  service();
  std::size_t delivered = 0;
  while (!inbox_.empty()) {
    Pending rec = std::move(inbox_.front());
    inbox_.pop_front();
    sim::Message m(pool);
    if (!decode_message(rec.bytes, pool, m))
      throw std::runtime_error("tcp: data frame corrupt");
    deliver(false, rec.from, std::move(m));
    ++delivered;
  }
  if (delivered > 0) waiting_ = false;
  return delivered;
}

bool TcpHostEndpoint::wait_activity(std::span<const cube::NodeId>) {
  const auto now = Clock::now();
  if (!waiting_) {
    waiting_ = true;
    wait_start_ = now;
  }
  if (host_poll_) host_poll_();
  if (service()) return true;
  if (watch_.all_terminal() && inbox_.empty()) return false;

  std::vector<pollfd> pfds;
  for (const auto& c : conns_)
    if (c.fd() >= 0)
      pfds.push_back(
          {c.fd(),
           static_cast<short>(POLLIN | (c.want_write() ? POLLOUT : 0)), 0});
  if (!pfds.empty()) ::poll(pfds.data(), pfds.size(), 20);
  else std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return true;
}

void TcpHostEndpoint::await_all() {
  while (!watch_.all_terminal()) {
    if (host_poll_) host_poll_();
    service();
    std::vector<pollfd> pfds;
    for (const auto& c : conns_)
      if (c.fd() >= 0)
        pfds.push_back(
            {c.fd(),
             static_cast<short>(POLLIN | (c.want_write() ? POLLOUT : 0)), 0});
    if (!pfds.empty()) ::poll(pfds.data(), pfds.size(), 20);
    else std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service();  // collect any FINISH that raced the final sweep
}

void TcpHostEndpoint::send_node(cube::NodeId, cube::NodeId,
                                const sim::Message&) {
  throw std::logic_error("tcp: host endpoint cannot send node-to-node");
}

void TcpHostEndpoint::send_host(cube::NodeId, const sim::Message&) {
  throw std::logic_error("tcp: host endpoint cannot send to itself");
}

void TcpHostEndpoint::send_from_host(cube::NodeId to, const sim::Message& m) {
  encode_message(m, scratch_);
  conns_[to].queue_frame(FrameType::kData, scratch_);
}

// ---- TcpParent --------------------------------------------------------------

TcpParent::TcpParent(int dim, double run_deadline_s)
    : pids_(cube::NodeId{1} << dim, 0),
      reaped_(cube::NodeId{1} << dim, true),
      start_(Clock::now()),
      deadline_s_(run_deadline_s) {}

void TcpParent::spawn_fork(const std::function<int(cube::NodeId)>& child_main,
                           const std::vector<std::optional<HostPin>>& pins) {
  for (cube::NodeId p = 0; p < pids_.size(); ++p) {
    if (p < pins.size() && pins[p]) continue;  // external node
    const pid_t pid = ::fork();
    if (pid < 0) die("fork");
    if (pid == 0) _exit(child_main(p));
    pids_[p] = pid;
    reaped_[p] = false;
  }
}

void TcpParent::spawn_exec(const std::string& binary,
                           const std::string& parent_addr,
                           std::uint16_t parent_port,
                           const std::vector<std::optional<HostPin>>& pins) {
  const std::string connect_arg =
      "--connect=" + parent_addr + ":" + std::to_string(parent_port);
  for (cube::NodeId p = 0; p < pids_.size(); ++p) {
    if (p < pins.size() && pins[p]) continue;
    const std::string node_arg = "--node=" + std::to_string(p);
    const pid_t pid = ::fork();
    if (pid < 0) die("fork");
    if (pid == 0) {
      ::execl(binary.c_str(), binary.c_str(), connect_arg.c_str(),
              node_arg.c_str(), static_cast<char*>(nullptr));
      _exit(127);
    }
    pids_[p] = pid;
    reaped_[p] = false;
  }
}

void TcpParent::poll() {
  for (std::size_t p = 0; p < pids_.size(); ++p) {
    if (reaped_[p]) continue;
    int status = 0;
    if (::waitpid(pids_[p], &status, WNOHANG) == pids_[p]) reaped_[p] = true;
  }
  if (!killed_) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start_).count();
    if (elapsed > deadline_s_) kill_all();
  }
}

void TcpParent::kill_all() {
  killed_ = true;
  for (std::size_t p = 0; p < pids_.size(); ++p)
    if (!reaped_[p]) ::kill(pids_[p], SIGKILL);
  for (std::size_t p = 0; p < pids_.size(); ++p) {
    if (reaped_[p]) continue;
    int status = 0;
    if (::waitpid(pids_[p], &status, 0) == pids_[p]) reaped_[p] = true;
  }
}

void TcpParent::await_exits() {
  // Verdicts are already in (the host link saw every node terminal); give
  // well-behaved children a moment to _exit, then SIGKILL stragglers — a
  // wedged (SIGSTOPped) child never exits on its own.
  const auto grace = Clock::now() + std::chrono::milliseconds(500);
  for (;;) {
    poll();
    bool all = true;
    for (std::size_t p = 0; p < pids_.size(); ++p) all = all && reaped_[p];
    if (all) return;
    if (Clock::now() >= grace) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill_all();
}

}  // namespace aoft::transport
