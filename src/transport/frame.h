// Stream framing for the socket backend (docs/PROTOCOL.md §13.1).
//
// TCP is a byte stream; the rings' record boundaries have to be rebuilt with
// a length prefix.  Every frame is
//
//   [u32 len][u8 type][3 pad][payload: len bytes]
//
// in native byte order — both ends of a cube are the same build, exactly the
// assumption wire.h already makes for the shm rings.  kData payloads are the
// unchanged WireMsgHdr encoding from wire.h, so the logical arrival stamp
// and key blocks travel byte-identically over both multi-process fabrics.
//
// FrameReader is an incremental cursor over whatever the socket delivered:
// feed() appends raw bytes, next() yields complete frames and leaves partial
// ones (including a split mid-header) buffered for the next read.

#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "transport/shm_segment.h"
#include "transport/slot_state.h"

namespace aoft::transport {

enum class FrameType : std::uint8_t {
  kHello = 1,      // node -> parent: identity + the node's own listen port
  kConfig = 2,     // parent -> node: job config, faults, port map, input keys
  kData = 3,       // node <-> node / node <-> host: one encoded sim::Message
  kHeartbeat = 4,  // either direction: liveness only, empty payload
  kFinish = 5,     // node -> parent: terminal state, stats, errors, output
};

struct FrameHdr {
  std::uint32_t len = 0;  // payload bytes, excluding this header
  std::uint8_t type = 0;
  std::uint8_t pad_[3] = {};
};
static_assert(sizeof(FrameHdr) == 8);

// A frame larger than this is a protocol violation, not a big message: the
// largest legitimate payload is a kConfig or kFinish carrying a full key
// image (2^kMaxProcessDim nodes * block keys), and callers size well under
// this.  Guards the reader against interpreting stream garbage as a length.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;  // 256 MiB

inline void append_frame(std::vector<unsigned char>& out, FrameType type,
                         std::span<const unsigned char> payload) {
  // Silent u32 truncation here would desynchronize the stream; a payload
  // this large is a sender bug (drivers bound CONFIG, the biggest frame,
  // via config_frame_bytes below), so refuse loudly before any copy.
  if (payload.size() > kMaxFrameBytes)
    throw std::length_error("tcp: frame payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds the " +
                            std::to_string(kMaxFrameBytes) +
                            "-byte frame limit");
  FrameHdr h;
  h.len = static_cast<std::uint32_t>(payload.size());
  h.type = static_cast<std::uint8_t>(type);
  const std::size_t at = out.size();
  out.resize(at + sizeof h + payload.size());
  std::memcpy(out.data() + at, &h, sizeof h);
  if (!payload.empty())
    std::memcpy(out.data() + at + sizeof h, payload.data(), payload.size());
}

struct Frame {
  FrameType type;
  std::span<const unsigned char> payload;  // valid until the next feed()
};

class FrameReader {
 public:
  // Append raw bytes from the socket.  This is the ONLY call that moves the
  // buffer (compaction and reallocation both happen here), so every payload
  // span handed out by next() since the previous feed() stays valid.
  void feed(std::span<const unsigned char> bytes) {
    compact();
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Next complete frame, or nullopt if the buffer holds only a partial one.
  // The payload span aliases the internal buffer and is valid until the
  // next feed(); next() itself never invalidates previously returned spans.
  // Sets malformed() (and yields nothing further) on an impossible length
  // or unknown type — stream corruption is a harness bug, callers throw.
  std::optional<Frame> next() {
    if (malformed_) return std::nullopt;
    if (buf_.size() - pos_ < sizeof(FrameHdr)) return std::nullopt;
    FrameHdr h;
    std::memcpy(&h, buf_.data() + pos_, sizeof h);
    if (h.len > kMaxFrameBytes || h.type < 1 ||
        h.type > static_cast<std::uint8_t>(FrameType::kFinish)) {
      malformed_ = true;
      return std::nullopt;
    }
    if (buf_.size() - pos_ < sizeof h + h.len) return std::nullopt;
    Frame f;
    f.type = static_cast<FrameType>(h.type);
    f.payload = std::span<const unsigned char>(buf_.data() + pos_ + sizeof h,
                                               h.len);
    pos_ += sizeof h + h.len;
    return f;
  }

  bool malformed() const { return malformed_; }
  bool empty() const { return pos_ == buf_.size(); }

 private:
  void compact() {
    // Reclaim consumed bytes once they dominate the buffer, preserving any
    // partial frame tail.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
      pos_ = 0;
    }
  }

  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;
  bool malformed_ = false;
};

// ---- control-frame payloads (POD, native order) -----------------------------

inline constexpr char kTcpMagic[8] = {'A', 'O', 'F', 'T', 'T', 'C', 'P', '1'};

// kHello payload.  role is the node id, or kHostRole is never sent — only
// nodes dial the parent.  listen_port is the ephemeral port the node bound
// for its peer mesh; listen_addr is the address peers should dial (the
// node's bind address, or its source address as a default).
struct WireHello {
  char magic[8] = {};
  std::int32_t role = 0;
  std::uint16_t listen_port = 0;
  std::uint8_t pad_[2] = {};
  char listen_addr[48] = {};
};
static_assert(std::is_trivially_copyable_v<WireHello>);

// One row of the port map broadcast inside kConfig.
struct WirePortEntry {
  char addr[48] = {};
  std::uint16_t port = 0;
  std::uint8_t pad_[6] = {};
};
static_assert(std::is_trivially_copyable_v<WirePortEntry>);

// kConfig payload: this fixed head, then WireFault[N], WirePortEntry[N],
// Key[N*m] input, and (if with_resume) Key[N*m] llbs.  Mirrors SegmentHeader
// field-for-field so exec'd children reconstruct SftOptions/SnrOptions the
// same way shm exec children do from the segment.
struct TcpConfigHead {
  char magic[8] = {};
  std::uint32_t version = 1;
  std::uint32_t dim = 0;
  std::uint64_t block = 1;
  std::int32_t start_stage = 0;
  std::uint8_t algo = 0;  // 0 = sft, 1 = snr
  std::uint8_t checkpoint = 0, record_events = 0, with_resume = 0;
  std::uint8_t check_progress = 1, check_feasibility = 1;
  std::uint8_t check_consistency = 1, check_exchange = 1;
  std::int32_t for_node = 0;  // the addressee (sanity check)
  double recv_timeout_s = kDefaultRecvTimeoutS;
  double heartbeat_interval_s = 0.0;
  double heartbeat_loss_s = 0.0;
  sim::CostModel cost{};
  std::uint32_t event_cap = 0;
  std::uint32_t pad_ = 0;
};
static_assert(std::is_trivially_copyable_v<TcpConfigHead>);

// Exact CONFIG payload size for a job: head + WireFault[N] + WirePortEntry[N]
// + the input key image (+ the LLBS image on a resume).  CONFIG is the
// largest frame of the protocol, so the drivers use this to reject a job
// that cannot fit one frame *before* spawning any process, with a message
// naming the real limit instead of a downstream "stream ended before
// CONFIG" mystery; broadcast_config re-checks the same bound at send time.
inline std::size_t config_frame_bytes(int dim, std::uint64_t block,
                                      bool with_resume) {
  const std::size_t n = std::size_t{1} << dim;
  return sizeof(TcpConfigHead) +
         n * (sizeof(WireFault) + sizeof(WirePortEntry)) +
         n * static_cast<std::size_t>(block) * sizeof(sim::Key) *
             (with_resume ? 2 : 1);
}

// kFinish payload: this fixed head, then WireError[error_count],
// WireLinkEvent[event_count], Key[out_count] (the node's output block).
// Field set matches NodeSlot so parent-side result assembly is shared with
// the shm backend.
struct FinishHead {
  std::int32_t node = 0;
  std::uint32_t state = 0;  // SlotState: kDone or kFailed
  double clock = 0.0, comp_ticks = 0.0, comm_ticks = 0.0;
  std::uint64_t msgs_sent = 0, words_sent = 0;
  std::uint32_t watchdog_rounds = 0;
  std::uint32_t error_count = 0, error_overflow = 0;
  std::uint32_t event_count = 0, event_overflow = 0;
  std::uint32_t out_count = 0;
  char fail_reason[kErrDetailBytes] = {};
};
static_assert(std::is_trivially_copyable_v<FinishHead>);

template <class T>
inline std::span<const unsigned char> as_bytes_of(const T& v) {
  return {reinterpret_cast<const unsigned char*>(&v), sizeof v};
}

// Read one POD out of a payload cursor; false if the payload is too short.
template <class T>
inline bool take(std::span<const unsigned char>& payload, T& out) {
  if (payload.size() < sizeof(T)) return false;
  std::memcpy(&out, payload.data(), sizeof(T));
  payload = payload.subspan(sizeof(T));
  return true;
}

}  // namespace aoft::transport
