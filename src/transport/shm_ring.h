// Lock-free single-producer/single-consumer byte ring for shared memory.
//
// The in-process simulator already queues messages through util::Ring; this
// is the same idea flattened into a position-independent layout a segment
// can hold: a 128-byte header with the producer and consumer cursors on
// separate cache lines, followed by a power-of-two byte buffer.  Records are
// length-prefixed (u32 length, then payload); cursors grow monotonically and
// are reduced modulo the capacity on access, so full/empty never alias.
//
// Exactly one process writes (the link's sender) and one reads (the
// receiver), which is all the sorting protocols need: every hypercube link
// is point-to-point and directed, and the host links are per-node.  The
// atomics are lock-free on every platform the cpp toolchain targets here, so
// they are address-free and safe across process boundaries (mmap'd MAP_SHARED).

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

namespace aoft::transport {

struct ShmRingHdr {
  alignas(64) std::atomic<std::uint64_t> tail;  // bytes ever written
  alignas(64) std::atomic<std::uint64_t> head;  // bytes ever read
};
static_assert(sizeof(ShmRingHdr) == 128, "cursor cache lines");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process rings need address-free atomics");

// Non-owning view over a (header, buffer) pair living in a shared segment.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(ShmRingHdr* hdr, unsigned char* buf, std::uint64_t capacity)
      : hdr_(hdr), buf_(buf), cap_(capacity), mask_(capacity - 1) {}

  static void init(ShmRingHdr* hdr) {
    hdr->tail.store(0, std::memory_order_relaxed);
    hdr->head.store(0, std::memory_order_relaxed);
  }

  std::uint64_t capacity() const { return cap_; }

  bool empty() const {
    return hdr_->head.load(std::memory_order_acquire) ==
           hdr_->tail.load(std::memory_order_acquire);
  }

  // Producer side.  False when the record does not fit right now.
  bool try_push(const void* data, std::uint32_t len) {
    const std::uint64_t need = 4 + static_cast<std::uint64_t>(len);
    const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
    if (cap_ - (tail - head) < need) return false;
    copy_in(tail, &len, 4);
    copy_in(tail + 4, data, len);
    hdr_->tail.store(tail + need, std::memory_order_release);
    return true;
  }

  // Consumer side.  False when the ring is empty; otherwise fills `out` with
  // one record's payload.
  bool try_pop(std::vector<unsigned char>& out) {
    const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
    if (tail == head) return false;
    std::uint32_t len = 0;
    copy_out(head, &len, 4);
    out.resize(len);
    copy_out(head + 4, out.data(), len);
    hdr_->head.store(head + 4 + len, std::memory_order_release);
    return true;
  }

 private:
  // Wrap-aware copies: at most two memcpy chunks each.
  void copy_in(std::uint64_t pos, const void* src, std::uint64_t n) {
    const std::uint64_t at = pos & mask_;
    const std::uint64_t first = n < cap_ - at ? n : cap_ - at;
    std::memcpy(buf_ + at, src, first);
    if (n > first)
      std::memcpy(buf_, static_cast<const unsigned char*>(src) + first,
                  n - first);
  }
  void copy_out(std::uint64_t pos, void* dst, std::uint64_t n) const {
    const std::uint64_t at = pos & mask_;
    const std::uint64_t first = n < cap_ - at ? n : cap_ - at;
    std::memcpy(dst, buf_ + at, first);
    if (n > first)
      std::memcpy(static_cast<unsigned char*>(dst) + first, buf_, n - first);
  }

  ShmRingHdr* hdr_ = nullptr;
  unsigned char* buf_ = nullptr;
  std::uint64_t cap_ = 0;
  std::uint64_t mask_ = 0;
};

}  // namespace aoft::transport
