// sim::RemoteLink over TCP sockets: the per-process endpoint drivers for the
// kTcp backend (docs/PROTOCOL.md §13).
//
// Topology of one run: every node process dials the parent's rendezvous
// socket, HELLOs with the ephemeral port it bound for itself, and blocks for
// the CONFIG broadcast (job config + fault scripts + port map + input keys —
// the same payload the shm SegmentHeader carries).  Nodes then build the
// hypercube's peer mesh directly: node p dials each neighbor q = p^2^k with
// q < p and accepts the neighbors with q > p, so every physical link of the
// cube is one TCP connection and node programs run completely unmodified.
//
// Death detection is the tentpole difference from shm: there is no shared
// segment for a parent authority to flip slots in, so each endpoint runs its
// own PeerWatch — connection EOF means the peer's process is gone (the
// kernel FINs a SIGKILLed process's sockets immediately), and heartbeat
// silence beyond heartbeat_loss_s catches a *wedged* peer that neither
// speaks nor exits.  Both transition the peer to the same terminal kDead
// state a reaped shm child gets, and `recv_timeout_s` remains the absolute
// backstop on any wait episode, so Environmental Assumption 4 (message
// absence is detectable) holds with the identical failure semantics.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/remote.h"
#include "transport/backend.h"
#include "transport/frame.h"
#include "transport/peer_watch.h"

namespace aoft::transport {

// ---- socket plumbing --------------------------------------------------------

// One nonblocking framed connection.  Public because the framing tests drive
// it over socketpair()s to exercise partial reads and short writes.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  TcpConn(TcpConn&& o) noexcept;
  TcpConn& operator=(TcpConn&& o) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  ~TcpConn();

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0 && !broken_; }
  void close_fd();

  // Queue one frame and try to flush what's buffered.  Never blocks, never
  // throws on a dead peer: a broken connection silently absorbs traffic,
  // exactly like a sim channel whose receiver halted.
  void queue_frame(FrameType type, std::span<const unsigned char> payload);

  // Push buffered bytes out (nonblocking).  Returns true when the write
  // buffer is empty.
  bool flush();
  bool want_write() const { return wpos_ < wbuf_.size(); }

  // Drain the kernel's receive buffer into the frame reader.  Returns the
  // byte count read; 0 with eof() set once the peer closed; 0 without eof()
  // when the read would block.
  std::size_t read_some();
  bool eof() const { return eof_; }

  FrameReader& reader() { return reader_; }

  std::chrono::steady_clock::time_point last_tx{};

 private:
  int fd_ = -1;
  bool broken_ = false;
  bool eof_ = false;
  std::vector<unsigned char> wbuf_;
  std::size_t wpos_ = 0;
  FrameReader reader_;
};

// Bound listening socket (SO_REUSEADDR, nonblocking).  port 0 picks an
// ephemeral port; `port()` reports the real one.  Throws std::runtime_error
// on any socket failure.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(const std::string& addr, std::uint16_t port);
  TcpListener(TcpListener&& o) noexcept;
  TcpListener& operator=(TcpListener&& o) noexcept;
  TcpListener(const TcpListener&) = delete;
  ~TcpListener();

  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }
  void close_fd();

  // Accept one pending connection (nonblocking, TCP_NODELAY applied), or
  // nullopt when none is pending.
  std::optional<TcpConn> accept_one();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Blocking connect with retry until `timeout_s` (the target may not be
// listening yet).  Returns a nonblocking TCP_NODELAY connection; throws
// std::runtime_error on timeout.
TcpConn tcp_dial(const std::string& addr, std::uint16_t port,
                 double timeout_s);

// ---- hosts file -------------------------------------------------------------

// `--hosts=FILE`: pin nodes to external machines.  Line format
//     <node-id> <addr> [<port>]
// ('#' comments, blank lines ignored).  A pinned node is NOT spawned by the
// parent — the operator launches `aoft_node --connect=<parent> --node=<id>`
// on that machine and the rendezvous pairs it up.  The addr/port here is
// only advisory (which address the node should bind); the authoritative
// port map is built from the HELLOs.
struct HostPin {
  std::string addr;
  std::uint16_t port = 0;  // 0: ephemeral
};
std::vector<std::optional<HostPin>> parse_hosts_file(const std::string& path,
                                                     int num_nodes);

// ---- node endpoint ----------------------------------------------------------

// Result of one node's run, as published by its FINISH frame.  Mirrors
// NodeSlot so the sort layer assembles SortRun identically on both
// multi-process backends.
struct TcpSlot {
  SlotState state = SlotState::kIdle;
  FinishHead head{};
  std::vector<WireError> errors;
  std::vector<WireLinkEvent> events;
  std::vector<sim::Key> output;
};

class TcpNodeEndpoint final : public sim::RemoteLink {
 public:
  // Dials the parent, HELLOs, and blocks until the CONFIG broadcast arrives
  // (bounded by setup_timeout_s).  After construction config()/faults()/
  // input()/llbs()/port_map() are valid.  Throws std::runtime_error on any
  // setup failure.
  TcpNodeEndpoint(cube::NodeId node, const std::string& parent_addr,
                  std::uint16_t parent_port, const std::string& listen_addr,
                  std::uint16_t listen_port, double setup_timeout_s);
  ~TcpNodeEndpoint() override;

  const TcpConfigHead& config() const { return cfg_; }
  const std::vector<WireFault>& faults() const { return faults_; }
  const std::vector<sim::Key>& input() const { return input_; }
  const std::vector<sim::Key>& llbs() const { return llbs_; }

  // Build the peer mesh from the port map: dial lower neighbors, accept
  // higher ones, then drop the listen socket.  Must complete before the
  // machine runs; throws on timeout.
  void connect_peers();

  // Publish the terminal FINISH frame (flushing all buffered peer traffic
  // first) and close every connection.
  void finish(SlotState state, const FinishHead& head,
              std::span<const WireError> errors,
              std::span<const WireLinkEvent> events,
              std::span<const sim::Key> output);

  // sim::RemoteLink
  void send_node(cube::NodeId from, cube::NodeId to,
                 const sim::Message& m) override;
  void send_host(cube::NodeId from, const sim::Message& m) override;
  void send_from_host(cube::NodeId to, const sim::Message& m) override;
  std::size_t pump(sim::KeyPool& pool, const Deliver& deliver) override;
  bool wait_activity(std::span<const cube::NodeId> peers) override;

 private:
  struct Pending {
    bool from_host;
    std::vector<unsigned char> bytes;  // encode_message record
  };

  TcpConn& neighbor(cube::NodeId q);
  // Read every open connection, queue kData, track liveness; send due
  // heartbeats; flush write buffers.  Returns true if any inbound data
  // frame arrived.
  bool service();

  cube::NodeId me_;
  int dim_ = 0;
  TcpConfigHead cfg_{};
  std::vector<WireFault> faults_;
  std::vector<WirePortEntry> port_map_;
  std::vector<sim::Key> input_, llbs_;

  TcpListener listener_;
  TcpConn parent_;
  std::vector<TcpConn> peers_;  // indexed by dimension k
  PeerWatch watch_;             // indexed by dimension k
  std::deque<Pending> inbox_;
  std::vector<unsigned char> scratch_;

  bool waiting_ = false;
  std::chrono::steady_clock::time_point wait_start_{};
};

// ---- host endpoint ----------------------------------------------------------

class TcpHostEndpoint final : public sim::RemoteLink {
 public:
  TcpHostEndpoint(int dim, const TcpOptions& opts);

  std::uint16_t port() const { return listener_.port(); }
  const std::string& addr() const { return addr_; }

  // Invoked on every wait iteration so the parent process manager can reap
  // zombies and enforce the run deadline (mirrors ShmTransport's hook).
  void set_host_poll(std::function<void()> poll) {
    host_poll_ = std::move(poll);
  }

  // Accept connections until every node has HELLOed (bounded by
  // setup_timeout_s; throws on expiry).  Builds the authoritative port map.
  void rendezvous(double setup_timeout_s);

  // Send each node its CONFIG: `head` plus faults/port-map/input/llbs tail
  // (for_node is stamped per recipient here).
  void broadcast_config(TcpConfigHead head,
                        std::span<const WireFault> faults,
                        std::span<const sim::Key> input,
                        std::span<const sim::Key> llbs);

  // Service the fleet until every node is terminal and all FINISH results
  // are in (the non-checkpoint wait; checkpoint-mode hosts instead run a
  // Machine whose idle hook pumps this link).
  void await_all();

  TcpSlot& slot(cube::NodeId p) { return slots_[p]; }
  SlotState peer_state(cube::NodeId p) const {
    return watch_.state(static_cast<int>(p));
  }

  // sim::RemoteLink
  void send_node(cube::NodeId from, cube::NodeId to,
                 const sim::Message& m) override;
  void send_host(cube::NodeId from, const sim::Message& m) override;
  void send_from_host(cube::NodeId to, const sim::Message& m) override;
  std::size_t pump(sim::KeyPool& pool, const Deliver& deliver) override;
  bool wait_activity(std::span<const cube::NodeId> peers) override;

 private:
  struct Pending {
    cube::NodeId from;
    std::vector<unsigned char> bytes;
  };

  bool service();
  void handle_frame(cube::NodeId p, const Frame& f);

  int dim_;
  cube::NodeId n_;
  TcpOptions opts_;
  std::string addr_;
  TcpListener listener_;
  std::vector<TcpConn> conns_;        // indexed by node, valid after rendezvous
  std::vector<TcpConn> anonymous_;    // accepted, HELLO not yet seen
  std::vector<WirePortEntry> port_map_;
  std::vector<TcpSlot> slots_;
  PeerWatch watch_;  // indexed by node
  std::deque<Pending> inbox_;
  std::vector<unsigned char> scratch_;
  std::function<void()> host_poll_;

  bool waiting_ = false;
  std::chrono::steady_clock::time_point wait_start_{};
};

// ---- local process fleet ----------------------------------------------------

// Child-process lifecycle for locally spawned tcp nodes.  Unlike ShmParent,
// this is NOT the death-detection authority — sockets are (EOF/heartbeat in
// the endpoints above).  waitpid here only reaps zombies and enforces the
// run deadline; await_exits SIGKILLs stragglers (a wedged child never exits
// on its own) once the host link has its verdicts.
class TcpParent {
 public:
  TcpParent(int dim, double run_deadline_s);

  // Fork one child per non-pinned node; each runs child_main(p) and _exits
  // with its return value.
  void spawn_fork(const std::function<int(cube::NodeId)>& child_main,
                  const std::vector<std::optional<HostPin>>& pins);

  // Fork+exec `binary --connect=<addr>:<port> --node=<p>` per non-pinned
  // node (tools/aoft_node is the standard launcher).
  void spawn_exec(const std::string& binary, const std::string& parent_addr,
                  std::uint16_t parent_port,
                  const std::vector<std::optional<HostPin>>& pins);

  // Reap zombies without blocking; SIGKILL the fleet once the run deadline
  // expires.  Safe to call repeatedly.
  void poll();

  // SIGKILL every still-live child, then reap them all.
  void kill_all();
  void await_exits();

 private:
  std::vector<std::int32_t> pids_;
  std::vector<bool> reaped_;
  std::chrono::steady_clock::time_point start_;
  double deadline_s_;
  bool killed_ = false;
};

}  // namespace aoft::transport
