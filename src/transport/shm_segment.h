// The shared-memory segment one multi-process sort runs over.
//
// Layout (offsets in the header, every region 64-byte aligned):
//
//   SegmentHeader      job configuration: dimensions, cost model, predicate
//                      toggles, per-run timeouts — everything an exec'd
//                      child needs to reconstruct its SftOptions/SnrOptions
//   WireFault[N]       scripted per-node faults (fault::NodeFault as POD)
//   NodeSlot[N]        per-child status (atomic), pid, stats, error records
//   WireLinkEvent[N*cap] per-child link-event log (record_events)
//   Key[N*m] input     flattened run input
//   Key[N*m] llbs      resume state C_{start-1} (with_resume)
//   Key[N*m] output    per-node result blocks, written at child completion
//   rings              N*dim node link rings, N up (node->host) rings,
//                      N down (host->node) rings, each ShmRingHdr + buffer
//
// Rings are sized for the whole run's traffic on their link — S_FT uses each
// directed link at most dim+1 times — so a push only fails when the protocol
// misbehaves; senders then count the overflow in their slot rather than
// block (a dead peer must absorb traffic like a halted sim receiver).
//
// The segment is created with shm_open + ftruncate + mmap(MAP_SHARED): fork
// children inherit the mapping, exec'd children re-open it by name.

#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "hypercube/topology.h"
#include "sim/cost_model.h"
#include "sim/pool.h"
#include "transport/backend.h"
#include "transport/shm_ring.h"
#include "transport/slot_state.h"

namespace aoft::transport {

inline constexpr int kMaxShmDim = kMaxProcessDim;  // shared multi-process cap
inline constexpr char kSegmentMagic[8] = {'A', 'O', 'F', 'T',
                                          'S', 'H', 'M', '1'};
inline constexpr std::uint32_t kSegmentVersion = 1;
inline constexpr std::uint32_t kMaxSlotErrors = 16;
inline constexpr std::uint32_t kErrDetailBytes = 96;

// The host's role id for ShmTransport (any negative value works for
// Machine::attach_remote; this one is the convention).
inline constexpr std::int32_t kHostRole = -1;

// fault::NodeFault flattened to POD for the segment (exec'd children cannot
// inherit the parent's NodeFaultMap).
struct WireFault {
  std::uint8_t has_halt = 0, has_invert = 0, has_subst = 0;
  std::uint8_t silent_checker = 0, kill_process = 0, wedge_process = 0;
  std::int32_t halt_stage = 0, halt_iter = 0;
  std::int32_t invert_stage = 0, invert_iter = 0;
  std::int32_t subst_stage = 0, subst_iter = 0;
  std::int64_t subst_value = 0;
};

struct WireError {
  std::int32_t stage = -1, iter = -1;
  std::uint8_t source = 0;
  char detail[kErrDetailBytes] = {};
};

struct WireLinkEvent {
  std::int32_t from = 0, to = 0;
  std::uint8_t kind = 0, delivered = 0, to_host = 0, from_host = 0;
  std::int32_t stage = -1, iter = -1;
  std::uint32_t words = 0;
};

// SlotState and slot_terminal() live in transport/slot_state.h — the tcp
// backend's PeerWatch shares them.

struct NodeSlot {
  std::atomic<std::uint32_t> state;  // SlotState; child-written, parent-reaped
  std::int32_t pid = 0;
  // sim::NodeStats of the child's machine, published at completion.
  double clock = 0.0, comp_ticks = 0.0, comm_ticks = 0.0;
  std::uint64_t msgs_sent = 0, words_sent = 0;
  std::uint32_t watchdog_rounds = 0;
  std::uint32_t send_overflow = 0;  // ring-full sends absorbed (sizing bug)
  std::uint32_t error_count = 0, error_overflow = 0;
  std::uint32_t event_count = 0, event_overflow = 0;
  WireError errors[kMaxSlotErrors] = {};
  char fail_reason[kErrDetailBytes] = {};
};

struct SegmentHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t dim = 0;
  std::uint64_t block = 1;
  std::int32_t start_stage = 0;
  std::uint8_t algo = 0;  // 0 = sft, 1 = snr
  std::uint8_t checkpoint = 0, record_events = 0, with_resume = 0;
  std::uint8_t check_progress = 1, check_feasibility = 1;
  std::uint8_t check_consistency = 1, check_exchange = 1;
  std::int32_t host_pid = 0;
  double recv_timeout_s = kDefaultRecvTimeoutS;
  double run_deadline_s = kDefaultRunDeadlineS;
  sim::CostModel cost{};
  std::uint64_t link_ring_bytes = 0, up_ring_bytes = 0, down_ring_bytes = 0;
  std::uint32_t event_cap = 0;
  std::uint64_t off_faults = 0, off_slots = 0, off_events = 0;
  std::uint64_t off_input = 0, off_llbs = 0, off_output = 0, off_rings = 0;
  std::uint64_t total_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<SegmentHeader>);

class ShmSegment {
 public:
  struct Config {
    int dim = 0;
    std::uint64_t block = 1;
    std::uint8_t algo = 0;
    int start_stage = 0;
    bool checkpoint = false;
    bool record_events = false;
    bool with_resume = false;
    bool check_progress = true, check_feasibility = true;
    bool check_consistency = true, check_exchange = true;
    sim::CostModel cost{};
    double recv_timeout_s = kDefaultRecvTimeoutS;
    double run_deadline_s = kDefaultRunDeadlineS;
  };

  // Parent side: create, size and zero-init a fresh segment.  Throws
  // std::runtime_error on any shm/mmap failure and std::invalid_argument on
  // an out-of-range configuration (dim > kMaxShmDim).
  static ShmSegment create(const Config& cfg);

  // Child side (exec mode): open an existing segment by name and validate
  // magic/version/size.  Throws std::runtime_error on mismatch.
  static ShmSegment attach(const std::string& name);

  ShmSegment(ShmSegment&&) noexcept;
  ShmSegment& operator=(ShmSegment&&) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment();  // unmaps; the creating side also shm_unlinks

  const std::string& name() const { return name_; }
  int dim() const { return static_cast<int>(header().dim); }
  cube::NodeId num_nodes() const { return cube::NodeId{1} << header().dim; }

  SegmentHeader& header() { return *reinterpret_cast<SegmentHeader*>(base_); }
  const SegmentHeader& header() const {
    return *reinterpret_cast<const SegmentHeader*>(base_);
  }

  WireFault& fault(cube::NodeId p);
  NodeSlot& slot(cube::NodeId p);
  std::span<WireLinkEvent> events(cube::NodeId p);  // event_cap entries
  std::span<sim::Key> input();
  std::span<sim::Key> llbs();
  std::span<sim::Key> output();

  // Messages into `to` across dimension k.
  ShmRing link_ring(cube::NodeId to, int k);
  ShmRing up_ring(cube::NodeId p);    // p -> host
  ShmRing down_ring(cube::NodeId p);  // host -> p

 private:
  ShmSegment() = default;
  unsigned char* at(std::uint64_t off) { return base_ + off; }

  std::string name_;
  unsigned char* base_ = nullptr;
  std::uint64_t size_ = 0;
  bool owner_ = false;  // the creator unlinks on destruction
};

}  // namespace aoft::transport
