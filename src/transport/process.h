// Child-process lifecycle for the shared-memory backend.
//
// ShmParent owns the one-process-per-node fleet: it forks (or fork+execs)
// the children, reaps them, and is the authority that turns a vanished
// process into a kDead status slot — a SIGKILLed child cannot update its own
// slot, so peers' message-absence detection depends on the parent polling.
// finish_shm_node is the child-side counterpart: it publishes a completed
// machine's stats, error reports and link events into the node's slot.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "transport/shm_segment.h"

namespace aoft::transport {

class ShmParent {
 public:
  explicit ShmParent(ShmSegment& seg);

  // Fork one child per node; each child runs child_main(p) and _exits with
  // its return value.  The parent records pids in the status slots.
  void spawn_fork(const std::function<int(cube::NodeId)>& child_main);

  // Fork+exec `binary --segment=<name> --node=<p>` per node (fresh address
  // spaces; tools/aoft_node is the standard launcher).
  void spawn_exec(const std::string& binary);

  // Reap exits without blocking and keep the status slots truthful: a child
  // that died by signal (or exited without publishing a terminal state)
  // becomes kDead/kFailed here.  Enforces the run deadline by killing the
  // fleet once it expires.  Safe to call repeatedly; host wait loops call it
  // on every iteration.
  void poll();

  // Block (polling) until every child is reaped.
  void await_all();

  // SIGKILL every still-live child.
  void kill_all();

  bool all_reaped() const;

 private:
  void reap(cube::NodeId p, int wstatus);

  ShmSegment& seg_;
  std::vector<std::int32_t> pids_;
  std::vector<bool> reaped_;
  std::chrono::steady_clock::time_point start_;
  bool killed_ = false;
};

// Publish a finished node machine into its status slot: stats, watchdog
// rounds, error reports (truncated at kMaxSlotErrors) and link events
// (truncated at event_cap).  Does NOT store the terminal state — the caller
// copies its output block first, then stores kDone, so a kDone slot always
// implies a complete output region.
void finish_shm_node(ShmSegment& seg, cube::NodeId p, const sim::Machine& mach);

// The fail-stop injection for the shm backend: die the way a crashed node
// dies, mid-protocol with no goodbye.  (The simulator degrades kill_process
// to a graceful halt; that equivalence is part of the oracle contract.)
[[noreturn]] void kill_self();

// The wedge injection for the tcp backend: SIGSTOP mid-protocol, so the
// process neither speaks nor exits and only the heartbeat-loss watchdog can
// declare it dead (fault::NodeFault::wedge_process).
[[noreturn]] void wedge_self();

}  // namespace aoft::transport
