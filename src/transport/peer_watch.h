// Timeout-based peer-death detection for the socket backend
// (docs/PROTOCOL.md §13.4).
//
// The shm backend gets death detection for free: the parent waitpid()s and
// flips the victim's segment slot to kDead.  Over sockets there is no shared
// parent authority — each endpoint must decide for itself when a silent peer
// is gone.  PeerWatch is that decision, as a pure state machine over
// caller-supplied time points (so tests drive it with fake clocks):
//
//   kIdle --connect--> kRunning --FINISH--> kDone | kFailed
//                         |
//                         +------EOF/ECONNRESET--------------> kDead
//                         +------silence > heartbeat_loss_s--> kDead
//
// kDead may later upgrade to kDone/kFailed if a FINISH frame was already in
// flight when the watchdog fired — results beat timeouts.  All other
// terminal states are sticky.  `terminal()` uses the shared slot_terminal()
// predicate, so the supervisor ladder retires a heartbeat-lost tcp peer into
// the subcube rung by exactly the rule it applies to a SIGKILLed shm child.
//
// The silence rule ARMS per peer only at the first inbound activity
// (note_activity); mark_up alone never starts the countdown.  A peer is
// necessarily silent through the whole setup window — fleet rendezvous,
// CONFIG transfer, peer mesh — which takes minutes under the --hosts
// manual-launch workflow, and it cannot heartbeat before CONFIG even tells
// it the cadence.  Counting that silence as death would falsely kill live
// fleets; instead an unheard peer is covered by the EOF rule (a crashed
// process FINs instantly) and the parent's run-deadline backstop.  Nodes
// emit an immediate heartbeat the moment their mesh completes, so arming
// happens promptly and wedge detection is live from the first stage.

#pragma once

#include <chrono>
#include <vector>

#include "transport/slot_state.h"

namespace aoft::transport {

class PeerWatch {
 public:
  using Clock = std::chrono::steady_clock;
  using Time = Clock::time_point;

  // `n` peers, all kIdle.  heartbeat_loss_s <= 0 disables the silence rule
  // (EOF and FINISH still apply).
  PeerWatch(int n, double heartbeat_loss_s);

  // Peer connected: kIdle -> kRunning, stamps last_rx.  Does NOT arm the
  // silence rule — the peer may legitimately stay quiet through the rest of
  // setup.  No-op on a terminal peer.
  void mark_up(int peer, Time now);

  // Any bytes arrived from the peer (data or heartbeat): refresh last_rx
  // and arm the silence rule for this peer.
  void note_activity(int peer, Time now);

  // Rescale the silence bound (e.g. broadcast_config growing it with the
  // block size once the job is known); <= 0 disables the rule.
  void set_loss(double heartbeat_loss_s);

  // FINISH frame processed: terminal result state.  Upgrades kDead (result
  // already in flight when the watchdog fired); ignored if already
  // kDone/kFailed.
  void mark_finished(int peer, SlotState result);

  // Connection EOF / reset without FINISH: kDead unless already kDone or
  // kFailed.
  void mark_dead(int peer);

  // Apply the silence rule to every armed kRunning peer; returns true if
  // any peer transitioned to kDead.
  bool sweep(Time now);

  // Earliest deadline at which sweep() could change state, or Time::max()
  // when no peer is subject to the silence rule.  Lets the poll loop sleep
  // exactly long enough.
  Time next_deadline() const;

  SlotState state(int peer) const { return peers_[peer].state; }
  bool terminal(int peer) const { return slot_terminal(peers_[peer].state); }
  bool all_terminal() const;

 private:
  struct Peer {
    SlotState state = SlotState::kIdle;
    Time last_rx{};
    bool armed = false;  // first inbound activity seen; gates the silence rule
  };
  std::vector<Peer> peers_;
  std::chrono::duration<double> loss_;
  bool silence_rule_;
};

}  // namespace aoft::transport
