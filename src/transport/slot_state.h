// Per-node lifecycle state shared by the multi-process backends.
//
// The shm backend stores a SlotState in each NodeSlot of the mmap'd segment;
// the tcp backend tracks the same states per peer in PeerWatch.  Keeping the
// enum in one header means "terminal" means exactly one thing everywhere:
// the supervisor ladder retires a kDead tcp peer into the subcube rung by
// the same rule it uses for a SIGKILLed shm child.

#pragma once

#include <cstdint>

namespace aoft::transport {

enum class SlotState : std::uint32_t {
  kIdle = 0,     // spawned/known, node not yet running
  kRunning = 1,  // node entered its node program
  kDone = 2,     // node completed and published its results
  kFailed = 3,   // node caught an exception (harness bug; fail_reason set)
  kDead = 4,     // death observed without a kDone slot: shm — parent reaped a
                 // crash/SIGKILL; tcp — connection EOF or heartbeat loss
};

inline const char* to_string(SlotState s) {
  switch (s) {
    case SlotState::kIdle: return "idle";
    case SlotState::kRunning: return "running";
    case SlotState::kDone: return "done";
    case SlotState::kFailed: return "failed";
    case SlotState::kDead: return "dead";
  }
  return "?";
}

// Terminal from a waiting peer's point of view: no further message can ever
// originate from this node.
inline bool slot_terminal(SlotState s) {
  return s == SlotState::kDone || s == SlotState::kFailed ||
         s == SlotState::kDead;
}

}  // namespace aoft::transport
