#include "transport/process.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace aoft::transport {

namespace {

void store_state(NodeSlot& slot, SlotState s) {
  slot.state.store(static_cast<std::uint32_t>(s), std::memory_order_release);
}

void copy_detail(char (&dst)[kErrDetailBytes], const std::string& src) {
  const std::size_t n = std::min(src.size(), sizeof dst - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

ShmParent::ShmParent(ShmSegment& seg)
    : seg_(seg),
      pids_(seg.num_nodes(), 0),
      reaped_(seg.num_nodes(), false),
      start_(std::chrono::steady_clock::now()) {}

void ShmParent::spawn_fork(
    const std::function<int(cube::NodeId)>& child_main) {
  for (cube::NodeId p = 0; p < seg_.num_nodes(); ++p) {
    const pid_t pid = fork();
    if (pid < 0) {
      kill_all();
      throw std::runtime_error("fork failed for node " + std::to_string(p));
    }
    if (pid == 0) _exit(child_main(p));
    pids_[p] = pid;
    seg_.slot(p).pid = pid;
  }
}

void ShmParent::spawn_exec(const std::string& binary) {
  const std::string seg_arg = "--segment=" + seg_.name();
  for (cube::NodeId p = 0; p < seg_.num_nodes(); ++p) {
    const std::string node_arg = "--node=" + std::to_string(p);
    const pid_t pid = fork();
    if (pid < 0) {
      kill_all();
      throw std::runtime_error("fork failed for node " + std::to_string(p));
    }
    if (pid == 0) {
      execl(binary.c_str(), binary.c_str(), seg_arg.c_str(), node_arg.c_str(),
            static_cast<char*>(nullptr));
      // Exec failure: no segment state is trustworthy from here, just leave.
      std::perror("execl");
      _exit(127);
    }
    pids_[p] = pid;
    seg_.slot(p).pid = pid;
  }
}

void ShmParent::reap(cube::NodeId p, int wstatus) {
  reaped_[p] = true;
  NodeSlot& slot = seg_.slot(p);
  const auto state = static_cast<SlotState>(
      slot.state.load(std::memory_order_acquire));
  if (slot_terminal(state)) return;  // child published before exiting
  if (WIFSIGNALED(wstatus)) {
    // Crashed or SIGKILLed mid-protocol: this store is what lets waiting
    // peers conclude the node is silent forever.
    store_state(slot, SlotState::kDead);
    return;
  }
  copy_detail(slot.fail_reason, WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0
                                    ? "exited " + std::to_string(
                                          WEXITSTATUS(wstatus)) +
                                          " without publishing"
                                    : "exited without publishing");
  store_state(slot, SlotState::kFailed);
}

void ShmParent::poll() {
  for (cube::NodeId p = 0; p < seg_.num_nodes(); ++p) {
    if (reaped_[p] || pids_[p] == 0) continue;
    int wstatus = 0;
    const pid_t got = waitpid(pids_[p], &wstatus, WNOHANG);
    if (got == pids_[p]) reap(p, wstatus);
  }
  if (!killed_ && !all_reaped()) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    if (elapsed > seg_.header().run_deadline_s) kill_all();
  }
}

void ShmParent::await_all() {
  while (!all_reaped()) {
    poll();
    if (all_reaped()) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void ShmParent::kill_all() {
  killed_ = true;
  for (cube::NodeId p = 0; p < seg_.num_nodes(); ++p)
    if (!reaped_[p] && pids_[p] != 0) kill(pids_[p], SIGKILL);
}

bool ShmParent::all_reaped() const {
  for (cube::NodeId p = 0; p < seg_.num_nodes(); ++p)
    if (!reaped_[p] && pids_[p] != 0) return false;
  return true;
}

void finish_shm_node(ShmSegment& seg, cube::NodeId p,
                     const sim::Machine& mach) {
  NodeSlot& slot = seg.slot(p);
  const sim::NodeStats& st = mach.node_stats(p);
  slot.clock = st.clock;
  slot.comp_ticks = st.comp_ticks;
  slot.comm_ticks = st.comm_ticks;
  slot.msgs_sent = st.msgs_sent;
  slot.words_sent = st.words_sent;
  slot.watchdog_rounds =
      static_cast<std::uint32_t>(mach.summary().watchdog_rounds);

  for (const sim::ErrorReport& e : mach.errors()) {
    if (slot.error_count >= kMaxSlotErrors) {
      ++slot.error_overflow;
      continue;
    }
    WireError& w = slot.errors[slot.error_count++];
    w.stage = e.stage;
    w.iter = e.iter;
    w.source = static_cast<std::uint8_t>(e.source);
    copy_detail(w.detail, e.detail);
  }

  const auto cap = seg.header().event_cap;
  if (cap > 0) {
    auto events = seg.events(p);
    for (const sim::LinkEvent& e : mach.link_events()) {
      if (slot.event_count >= cap) {
        ++slot.event_overflow;
        continue;
      }
      WireLinkEvent& w = events[slot.event_count++];
      w.from = static_cast<std::int32_t>(e.from);
      w.to = static_cast<std::int32_t>(e.to);
      w.kind = static_cast<std::uint8_t>(e.kind);
      w.delivered = e.delivered ? 1 : 0;
      w.to_host = e.to_host ? 1 : 0;
      w.from_host = e.from_host ? 1 : 0;
      w.stage = e.stage;
      w.iter = e.iter;
      w.words = e.words;
    }
  }
}

void kill_self() {
  raise(SIGKILL);
  for (;;) pause();  // unreachable; SIGKILL cannot be caught
}

void wedge_self() {
  // A stopped process holds its sockets open and beats no heartbeat: only
  // timeout-based detection can retire it.  If anything ever SIGCONTs us,
  // die rather than resume a protocol the cube has long since given up on.
  raise(SIGSTOP);
  raise(SIGKILL);
  for (;;) pause();
}

}  // namespace aoft::transport
