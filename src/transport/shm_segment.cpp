#include "transport/shm_segment.h"

#include "transport/wire.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace aoft::transport {

namespace {

constexpr std::uint64_t kAlign = 64;

std::uint64_t align_up(std::uint64_t v) {
  return (v + kAlign - 1) & ~(kAlign - 1);
}

std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// One ring's footprint: header plus power-of-two buffer.
std::uint64_t ring_footprint(std::uint64_t buf_bytes) {
  return sizeof(ShmRingHdr) + buf_bytes;
}

}  // namespace

ShmSegment ShmSegment::create(const Config& cfg) {
  if (cfg.dim < 0 || cfg.dim > kMaxShmDim)
    throw std::invalid_argument(
        "shm backend supports cube dimensions 0.." +
        std::to_string(kMaxShmDim) + ", got " + std::to_string(cfg.dim));
  if (cfg.block < 1)
    throw std::invalid_argument("shm backend needs block >= 1");

  const std::uint64_t n = std::uint64_t{1} << cfg.dim;
  const std::uint64_t m = cfg.block;
  const std::uint64_t keys = n * m;

  SegmentHeader hd;
  std::memcpy(hd.magic, kSegmentMagic, sizeof hd.magic);
  hd.version = kSegmentVersion;
  hd.dim = static_cast<std::uint32_t>(cfg.dim);
  hd.block = m;
  hd.start_stage = cfg.start_stage;
  hd.algo = cfg.algo;
  hd.checkpoint = cfg.checkpoint ? 1 : 0;
  hd.record_events = cfg.record_events ? 1 : 0;
  hd.with_resume = cfg.with_resume ? 1 : 0;
  hd.check_progress = cfg.check_progress ? 1 : 0;
  hd.check_feasibility = cfg.check_feasibility ? 1 : 0;
  hd.check_consistency = cfg.check_consistency ? 1 : 0;
  hd.check_exchange = cfg.check_exchange ? 1 : 0;
  hd.host_pid = static_cast<std::int32_t>(getpid());
  hd.recv_timeout_s = cfg.recv_timeout_s;
  hd.run_deadline_s = cfg.run_deadline_s;
  hd.cost = cfg.cost;

  // Whole-run ring capacities (see the header comment).  A directed node
  // link carries at most dim+1 messages, each up to a full-cube LBS slice
  // plus the exchange pair; the 2x factor absorbs adversarial growth.
  const std::uint64_t rec_over = 4 + sizeof(WireMsgHdr);  // length + header
  const std::uint64_t msg_bytes = rec_over + (2 * m + keys) * sizeof(sim::Key);
  hd.link_ring_bytes = next_pow2(
      std::max<std::uint64_t>(4096, 2 * (cfg.dim + 2) * msg_bytes));
  // Up: dim checkpoint uploads (slice-sized), error reports, snr gathers.
  const std::uint64_t up_bytes = rec_over + (keys + 2 * m + 1) * sizeof(sim::Key);
  hd.up_ring_bytes = next_pow2(
      std::max<std::uint64_t>(4096, 2 * (cfg.dim + 4) * up_bytes));
  hd.down_ring_bytes =
      next_pow2(std::max<std::uint64_t>(1024, rec_over + m * sizeof(sim::Key)));
  hd.event_cap =
      cfg.record_events
          ? 8 * static_cast<std::uint32_t>(cfg.dim * cfg.dim + 2 * cfg.dim + 8)
          : 0;

  std::uint64_t off = align_up(sizeof(SegmentHeader));
  hd.off_faults = off;
  off = align_up(off + n * sizeof(WireFault));
  hd.off_slots = off;
  off = align_up(off + n * sizeof(NodeSlot));
  hd.off_events = off;
  off = align_up(off + n * hd.event_cap * sizeof(WireLinkEvent));
  hd.off_input = off;
  off = align_up(off + keys * sizeof(sim::Key));
  hd.off_llbs = off;
  off = align_up(off + keys * sizeof(sim::Key));
  hd.off_output = off;
  off = align_up(off + keys * sizeof(sim::Key));
  hd.off_rings = off;
  const std::uint64_t per_node_rings =
      static_cast<std::uint64_t>(cfg.dim) * ring_footprint(hd.link_ring_bytes) +
      ring_footprint(hd.up_ring_bytes) + ring_footprint(hd.down_ring_bytes);
  off = align_up(off + n * per_node_rings);
  hd.total_bytes = off;

  // A collision-free name: pid + an in-process counter.
  static std::atomic<std::uint32_t> seq{0};
  ShmSegment seg;
  int fd = -1;
  for (int attempt = 0; attempt < 64; ++attempt) {
    seg.name_ = "/aoft-" + std::to_string(getpid()) + "-" +
                std::to_string(seq.fetch_add(1));
    fd = shm_open(seg.name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd >= 0) break;
    if (errno != EEXIST) fail_errno("shm_open(" + seg.name_ + ")");
  }
  if (fd < 0) fail_errno("shm_open: no free segment name");
  if (ftruncate(fd, static_cast<off_t>(hd.total_bytes)) != 0) {
    close(fd);
    shm_unlink(seg.name_.c_str());
    fail_errno("ftruncate(" + seg.name_ + ")");
  }
  void* base = mmap(nullptr, hd.total_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED, fd, 0);
  close(fd);
  if (base == MAP_FAILED) {
    shm_unlink(seg.name_.c_str());
    fail_errno("mmap(" + seg.name_ + ")");
  }
  seg.base_ = static_cast<unsigned char*>(base);
  seg.size_ = hd.total_bytes;
  seg.owner_ = true;

  // ftruncate zero-fills the mapping, which is already the rings' and
  // cursors' initial state; the header and the slot atomics get formal
  // stores so no thread ever reads an object that was never written.
  std::memcpy(seg.base_, &hd, sizeof hd);
  for (cube::NodeId p = 0; p < seg.num_nodes(); ++p)
    seg.slot(p).state.store(static_cast<std::uint32_t>(SlotState::kIdle),
                            std::memory_order_relaxed);
  return seg;
}

ShmSegment ShmSegment::attach(const std::string& name) {
  const int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) fail_errno("shm_open(" + name + ")");
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    close(fd);
    fail_errno("fstat(" + name + ")");
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < sizeof(SegmentHeader)) {
    close(fd);
    throw std::runtime_error("segment " + name + " too small for a header");
  }
  void* base = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (base == MAP_FAILED) fail_errno("mmap(" + name + ")");

  ShmSegment seg;
  seg.name_ = name;
  seg.base_ = static_cast<unsigned char*>(base);
  seg.size_ = size;
  seg.owner_ = false;
  const auto& hd = seg.header();
  if (std::memcmp(hd.magic, kSegmentMagic, sizeof hd.magic) != 0 ||
      hd.version != kSegmentVersion || hd.total_bytes != size ||
      hd.dim > static_cast<std::uint32_t>(kMaxShmDim))
    throw std::runtime_error("segment " + name +
                             " has a foreign or corrupt header");
  return seg;
}

ShmSegment::ShmSegment(ShmSegment&& o) noexcept
    : name_(std::move(o.name_)),
      base_(std::exchange(o.base_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      owner_(std::exchange(o.owner_, false)) {}

ShmSegment& ShmSegment::operator=(ShmSegment&& o) noexcept {
  if (this != &o) {
    this->~ShmSegment();
    new (this) ShmSegment(std::move(o));
  }
  return *this;
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) munmap(base_, size_);
  if (owner_) shm_unlink(name_.c_str());
}

WireFault& ShmSegment::fault(cube::NodeId p) {
  return reinterpret_cast<WireFault*>(at(header().off_faults))[p];
}

NodeSlot& ShmSegment::slot(cube::NodeId p) {
  return reinterpret_cast<NodeSlot*>(at(header().off_slots))[p];
}

std::span<WireLinkEvent> ShmSegment::events(cube::NodeId p) {
  const auto cap = header().event_cap;
  auto* base = reinterpret_cast<WireLinkEvent*>(at(header().off_events));
  return {base + static_cast<std::size_t>(p) * cap, cap};
}

std::span<sim::Key> ShmSegment::input() {
  const std::size_t keys = num_nodes() * header().block;
  return {reinterpret_cast<sim::Key*>(at(header().off_input)), keys};
}

std::span<sim::Key> ShmSegment::llbs() {
  const std::size_t keys = num_nodes() * header().block;
  return {reinterpret_cast<sim::Key*>(at(header().off_llbs)), keys};
}

std::span<sim::Key> ShmSegment::output() {
  const std::size_t keys = num_nodes() * header().block;
  return {reinterpret_cast<sim::Key*>(at(header().off_output)), keys};
}

ShmRing ShmSegment::link_ring(cube::NodeId to, int k) {
  const auto& hd = header();
  const std::uint64_t per_node =
      static_cast<std::uint64_t>(hd.dim) * ring_footprint(hd.link_ring_bytes) +
      ring_footprint(hd.up_ring_bytes) + ring_footprint(hd.down_ring_bytes);
  std::uint64_t off = hd.off_rings + to * per_node +
                      static_cast<std::uint64_t>(k) *
                          ring_footprint(hd.link_ring_bytes);
  auto* rh = reinterpret_cast<ShmRingHdr*>(at(off));
  return ShmRing(rh, at(off + sizeof(ShmRingHdr)), hd.link_ring_bytes);
}

ShmRing ShmSegment::up_ring(cube::NodeId p) {
  const auto& hd = header();
  const std::uint64_t per_node =
      static_cast<std::uint64_t>(hd.dim) * ring_footprint(hd.link_ring_bytes) +
      ring_footprint(hd.up_ring_bytes) + ring_footprint(hd.down_ring_bytes);
  const std::uint64_t off =
      hd.off_rings + p * per_node +
      static_cast<std::uint64_t>(hd.dim) * ring_footprint(hd.link_ring_bytes);
  auto* rh = reinterpret_cast<ShmRingHdr*>(at(off));
  return ShmRing(rh, at(off + sizeof(ShmRingHdr)), hd.up_ring_bytes);
}

ShmRing ShmSegment::down_ring(cube::NodeId p) {
  const auto& hd = header();
  const std::uint64_t per_node =
      static_cast<std::uint64_t>(hd.dim) * ring_footprint(hd.link_ring_bytes) +
      ring_footprint(hd.up_ring_bytes) + ring_footprint(hd.down_ring_bytes);
  const std::uint64_t off =
      hd.off_rings + p * per_node +
      static_cast<std::uint64_t>(hd.dim) * ring_footprint(hd.link_ring_bytes) +
      ring_footprint(hd.up_ring_bytes);
  auto* rh = reinterpret_cast<ShmRingHdr*>(at(off));
  return ShmRing(rh, at(off + sizeof(ShmRingHdr)), hd.down_ring_bytes);
}

}  // namespace aoft::transport
