// Transport selection: which fabric carries the cube's messages.
//
// The deterministic single-process simulator (sim/machine.h) is the oracle:
// every protocol claim is first established there.  The shared-memory
// backend (transport/shm_segment.h) runs the same node programs as one OS
// process per hypercube node over lock-free SPSC rings in an mmap'd segment;
// its sorted output and fail-stop verdicts must match the simulator's for
// identical fault scripts (docs/PROTOCOL.md §11 — the oracle contract).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace aoft::transport {

enum class Backend : std::uint8_t {
  kSim = 0,  // single-process deterministic coroutine simulator (the oracle)
  kShm = 1,  // one OS process per node over shared-memory SPSC rings
};

inline const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kShm: return "shm";
  }
  return "?";
}

inline bool parse_backend(std::string_view s, Backend& out) {
  if (s == "sim") {
    out = Backend::kSim;
    return true;
  }
  if (s == "shm") {
    out = Backend::kShm;
    return true;
  }
  return false;
}

// Knobs for the shared-memory backend (ignored under kSim).
struct ShmOptions {
  // Real-time bound a blocked receiver waits for link activity before its
  // watchdog declares message absence.  Environmental Assumption 4 needs an
  // actual clock on a real transport; peer death is detected much faster via
  // the per-node status slots, so the timeout is only the backstop for a
  // peer that wedges without dying.
  double recv_timeout_s = 15.0;

  // Parent-side bound on the whole run: on expiry every child is SIGKILLed,
  // after which the surviving receivers fail over normally.
  double run_deadline_s = 120.0;

  // Non-empty: spawn each node by exec'ing this launcher binary
  // (tools/aoft_node) so every node gets a fresh address space.  Empty: fork
  // directly — children inherit the caller's interceptor/observer closures
  // copy-on-write, which is what lets the fault-injection test rigs run
  // unchanged over real processes.
  std::string node_binary;
};

}  // namespace aoft::transport
