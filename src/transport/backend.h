// Transport selection: which fabric carries the cube's messages.
//
// The deterministic single-process simulator (sim/machine.h) is the oracle:
// every protocol claim is first established there.  The shared-memory
// backend (transport/shm_segment.h) runs the same node programs as one OS
// process per hypercube node over lock-free SPSC rings in an mmap'd segment;
// the socket backend (transport/tcp_transport.h) runs them over
// WireMsgHdr-framed TCP streams so an n-cube can span hosts.  Both must
// reproduce the simulator's sorted output and fail-stop verdicts for
// identical fault scripts (docs/PROTOCOL.md §11 — the oracle contract).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace aoft::transport {

enum class Backend : std::uint8_t {
  kSim = 0,  // single-process deterministic coroutine simulator (the oracle)
  kShm = 1,  // one OS process per node over shared-memory SPSC rings
  kTcp = 2,  // one OS process per node over framed TCP streams (may span hosts)
};

inline const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kShm: return "shm";
    case Backend::kTcp: return "tcp";
  }
  return "?";
}

inline bool parse_backend(std::string_view s, Backend& out) {
  if (s == "sim") {
    out = Backend::kSim;
    return true;
  }
  if (s == "shm") {
    out = Backend::kShm;
    return true;
  }
  if (s == "tcp") {
    out = Backend::kTcp;
    return true;
  }
  return false;
}

// Multi-process backends cap the cube so a fleet stays within sane process
// and file-descriptor budgets (256 node processes; the parent holds one
// socket per node under tcp).
inline constexpr int kMaxProcessDim = 8;

// Real-time bound a blocked receiver waits for link activity before its
// watchdog declares message absence (Environmental Assumption 4 needs an
// actual clock on a real transport).  One documented constant shared by the
// shm and tcp backends — ShmOptions, ShmSegment::Config, SegmentHeader and
// TcpOptions must all agree on it, which historically they did not.
inline constexpr double kDefaultRecvTimeoutS = 15.0;

// Parent-side bound on the whole run: on expiry every spawned child is
// SIGKILLed, after which the surviving receivers fail over normally.
inline constexpr double kDefaultRunDeadlineS = 120.0;

// A node heartbeats only from its pump loop, so a compute burst (the
// block-local sorts and merges between exchanges) sends no beats for time
// proportional to its block.  The silence bound must grow with the job or
// big blocks get live nodes declared dead: 1 µs of allowed silence per
// block key is ~2 orders of magnitude above the measured per-key sort
// cost, so the scaled bound stays a wedge detector, not a false-positive
// generator.  broadcast_config stamps the scaled value into the CONFIG
// head, so host and nodes always sweep with the same bound.
inline constexpr double kHeartbeatSlackPerKeyS = 1e-6;

inline double scaled_heartbeat_loss(double loss_s, std::uint64_t block_keys) {
  if (loss_s <= 0) return loss_s;  // <= 0 disables the silence rule
  return loss_s + kHeartbeatSlackPerKeyS * static_cast<double>(block_keys);
}

// Knobs for the shared-memory backend (ignored under kSim).
struct ShmOptions {
  // Backstop for a peer that wedges without dying; peer *death* is detected
  // much faster via the per-node status slots.
  double recv_timeout_s = kDefaultRecvTimeoutS;

  double run_deadline_s = kDefaultRunDeadlineS;

  // Non-empty: spawn each node by exec'ing this launcher binary
  // (tools/aoft_node) so every node gets a fresh address space.  Empty: fork
  // directly — children inherit the caller's interceptor/observer closures
  // copy-on-write, which is what lets the fault-injection test rigs run
  // unchanged over real processes.
  std::string node_binary;
};

// Knobs for the socket backend (ignored under kSim/kShm).  Defaults run the
// whole cube over loopback with ephemeral rendezvous ports; a hosts file
// (docs/PROTOCOL.md §13.2) pins addresses so nodes can live on other
// machines, launched there as `aoft_node --connect=HOST:PORT --node=P`.
struct TcpOptions {
  // Same watchdog backstop the shm backend uses (shared constant above).
  double recv_timeout_s = kDefaultRecvTimeoutS;

  double run_deadline_s = kDefaultRunDeadlineS;

  // Heartbeat cadence: every endpoint emits a heartbeat frame on each link
  // that has been transmit-idle for `heartbeat_interval_s`; a peer whose
  // link has been receive-silent for `heartbeat_loss_s` transitions to the
  // terminal kDead slot state (docs/PROTOCOL.md §13.4).  Two guards keep
  // the silence rule from killing live nodes: `heartbeat_loss_s` is the
  // *base* bound — broadcast_config stamps
  // scaled_heartbeat_loss(heartbeat_loss_s, block) into the CONFIG so the
  // swept bound grows with the longest compute burst a node performs
  // between waits — and the rule only arms per link once the peer has
  // actually been heard from (peer_watch.h), so the fleet's staggered
  // rendezvous/CONFIG/mesh window can never read as death.
  double heartbeat_interval_s = 0.25;
  double heartbeat_loss_s = 2.0;

  // Non-empty: spawn each local node by exec'ing this launcher binary
  // (tools/aoft_node --connect=...).  Empty: fork directly, as under shm.
  std::string node_binary;

  // Parent rendezvous endpoint.  Port 0 binds an ephemeral port (spawned
  // children are told the real one on their command line / closure).
  std::string listen_addr = "127.0.0.1";
  std::uint16_t port = 0;

  // Parsed hosts file (aoft_sort_cli --hosts=FILE).  Empty: every node is
  // local, binds 127.0.0.1:ephemeral, and is spawned by the parent.
  std::string hosts_file;
};

}  // namespace aoft::transport
