// Wire form of sim::Message for the shared-memory rings.
//
// Both ends of a segment are the same build on the same machine, so the
// layout is native-endian PODs: a fixed header followed by the data keys and
// then the lbs keys.  The sender's logical arrival stamp travels on the wire
// — receiver clocks advance from it exactly as in the simulator, which is
// what keeps per-node logical time (and therefore every Φ evaluation and
// trace line) deterministic across backends.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/message.h"
#include "sim/pool.h"

namespace aoft::transport {

struct WireMsgHdr {
  std::uint8_t kind = 0;
  std::uint8_t pad_[3] = {};
  std::int32_t from = 0;
  std::int32_t stage = -1;
  std::int32_t iter = -1;
  std::int32_t tag = 0;
  std::uint32_t ndata = 0;
  std::uint32_t nlbs = 0;
  std::uint32_t pad2_ = 0;  // keep `arrival` 8-aligned explicitly
  double arrival = 0.0;
};
static_assert(sizeof(WireMsgHdr) == 40);

inline void encode_message(const sim::Message& m,
                           std::vector<unsigned char>& out) {
  WireMsgHdr h;
  h.kind = static_cast<std::uint8_t>(m.kind);
  h.from = static_cast<std::int32_t>(m.from);
  h.stage = m.stage;
  h.iter = m.iter;
  h.tag = m.tag;
  h.ndata = static_cast<std::uint32_t>(m.data.size());
  h.nlbs = static_cast<std::uint32_t>(m.lbs.size());
  h.arrival = m.arrival;
  out.resize(sizeof h + (m.data.size() + m.lbs.size()) * sizeof(sim::Key));
  std::memcpy(out.data(), &h, sizeof h);
  unsigned char* p = out.data() + sizeof h;
  if (!m.data.empty()) {
    std::memcpy(p, m.data.data(), m.data.size() * sizeof(sim::Key));
    p += m.data.size() * sizeof(sim::Key);
  }
  if (!m.lbs.empty())
    std::memcpy(p, m.lbs.data(), m.lbs.size() * sizeof(sim::Key));
}

// Rebuild a pooled Message from one ring record.  False on a malformed
// record (truncated, or length fields disagreeing with the payload size) —
// a harness bug, not a protocol fault, so callers throw.
inline bool decode_message(std::span<const unsigned char> bytes,
                           sim::KeyPool& pool, sim::Message& out) {
  if (bytes.size() < sizeof(WireMsgHdr)) return false;
  WireMsgHdr h;
  std::memcpy(&h, bytes.data(), sizeof h);
  const std::size_t want =
      sizeof h +
      (static_cast<std::size_t>(h.ndata) + h.nlbs) * sizeof(sim::Key);
  if (bytes.size() != want) return false;
  out = sim::Message(pool);
  out.kind = static_cast<sim::MsgKind>(h.kind);
  out.from = static_cast<cube::NodeId>(h.from);
  out.stage = h.stage;
  out.iter = h.iter;
  out.tag = h.tag;
  out.arrival = h.arrival;
  const auto* keys =
      reinterpret_cast<const sim::Key*>(bytes.data() + sizeof h);
  out.data.assign(keys, keys + h.ndata);
  out.lbs.assign(keys + h.ndata, keys + h.ndata + h.nlbs);
  return true;
}

}  // namespace aoft::transport
