// Gossip-coverage mask algebra (paper Fig. 4c, procedure vect_mask; Lemma 3).
//
// During stage i of the fault-tolerant sort the inner loop walks j = i down
// to 0, and at each iteration every node exchanges its collected bitonic
// sequence LBS with its dimension-j neighbor.  vect_mask(i, j, k) is the bit
// vector with a 1 in position l iff LBS[l] has been collected by node k after
// the exchange at iteration j (from iteration i down to j) — Lemma 3.
//
// This module provides:
//   * vect_mask_recursive — the paper's O(2^{i-j}) recursion verbatim
//     (Lemma 7 benchmarks measure exactly this),
//   * vect_mask — a closed-form equivalent: after the iteration-j exchange a
//     node has collected exactly the labels reachable by flipping any subset
//     of bits {j..i} of its own label,
//   * pre_mask — coverage immediately *before* the iteration-j exchange,
//     which is what a message sent at iteration j can actually contain.
//
// The distinction between pre- and post-exchange coverage matters for the
// consistency predicate: see DESIGN.md §4 (fidelity note 2).

#pragma once

#include "hypercube/topology.h"
#include "util/bitvec.h"

namespace aoft::cube {

using util::BitVec;

// Coverage after the exchange at iteration j of stage i (paper's vect_mask),
// computed by the paper's recursion.  Preconditions: 0 <= j <= i < dimension.
BitVec vect_mask_recursive(const Topology& topo, int i, int j, NodeId node);

// Closed-form equivalent of vect_mask_recursive.
BitVec vect_mask(const Topology& topo, int i, int j, NodeId node);

// Coverage before the exchange at iteration j of stage i: the node's own
// label only when j == i (LBS was reset at the stage boundary), otherwise the
// post-exchange coverage of iteration j+1.
BitVec pre_mask(const Topology& topo, int i, int j, NodeId node);

// Number of set bits of vect_mask / pre_mask without materializing them.
std::uint64_t vect_mask_count(int i, int j);
std::uint64_t pre_mask_count(int i, int j);

}  // namespace aoft::cube
