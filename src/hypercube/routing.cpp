#include "hypercube/routing.h"

#include <algorithm>
#include <cassert>

namespace aoft::cube {

Path ecube_route(const Topology& topo, NodeId src, NodeId dst) {
  assert(topo.valid_node(src) && topo.valid_node(dst));
  Path path{src};
  NodeId cur = src;
  for (int k = 0; k < topo.dimension(); ++k) {
    if (((cur ^ dst) >> k) & 1u) {
      cur ^= NodeId{1} << k;
      path.push_back(cur);
    }
  }
  return path;
}

std::vector<Path> vertex_disjoint_paths(const Topology& topo, NodeId u, NodeId v) {
  assert(topo.adjacent(u, v));
  std::vector<Path> paths;
  paths.reserve(static_cast<std::size_t>(topo.dimension()));
  paths.push_back(Path{u, v});
  const NodeId k = u ^ v;  // single set bit: the edge dimension
  for (int d = 0; d < topo.dimension(); ++d) {
    const NodeId bit = NodeId{1} << d;
    if (bit == k) continue;
    paths.push_back(Path{u, u ^ bit, u ^ bit ^ k, v});
  }
  return paths;
}

bool internally_vertex_disjoint(const std::vector<Path>& paths) {
  std::vector<NodeId> interior;
  for (const auto& p : paths) {
    if (p.size() < 2) return false;
    for (std::size_t i = 1; i + 1 < p.size(); ++i) interior.push_back(p[i]);
  }
  std::sort(interior.begin(), interior.end());
  return std::adjacent_find(interior.begin(), interior.end()) == interior.end();
}

}  // namespace aoft::cube
