// Hypercube topology algebra.
//
// The paper's target machine is an n-dimensional binary hypercube: N = 2^n
// nodes labelled 0..N-1, with an edge between nodes whose labels differ in
// exactly one bit (paper §1).  Everything here is pure index arithmetic shared
// by the simulator, the sorting algorithms and the predicates.

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace aoft::cube {

using NodeId = std::uint32_t;

// A validated cube dimension.  Dimension 0 (a single node) is legal and is
// exercised by the degenerate-case tests.
class Topology {
 public:
  explicit Topology(int dimension) : dim_(dimension) {
    assert(dimension >= 0 && dimension < 26);
  }

  int dimension() const { return dim_; }
  NodeId num_nodes() const { return NodeId{1} << dim_; }

  bool valid_node(NodeId p) const { return p < num_nodes(); }

  // The neighbor across dimension k (flip bit k).
  NodeId neighbor(NodeId p, int k) const {
    assert(valid_node(p) && k >= 0 && k < dim_);
    return p ^ (NodeId{1} << k);
  }

  // True iff p and q are joined by a hypercube edge.
  bool adjacent(NodeId p, NodeId q) const {
    const NodeId x = p ^ q;
    return x != 0 && (x & (x - 1)) == 0;
  }

  // Hamming distance = hop count of a shortest route.
  int distance(NodeId p, NodeId q) const {
    return __builtin_popcount(p ^ q);
  }

  // All n neighbors of p, in dimension order.
  std::vector<NodeId> neighbors(NodeId p) const {
    std::vector<NodeId> out;
    out.reserve(static_cast<std::size_t>(dim_));
    for (int k = 0; k < dim_; ++k) out.push_back(neighbor(p, k));
    return out;
  }

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  int dim_;
};

// Bit b of node label p.
inline bool node_bit(NodeId p, int b) { return (p >> b) & 1u; }

}  // namespace aoft::cube
