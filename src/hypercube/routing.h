// Hypercube routing: e-cube shortest paths and vertex-disjoint path families.
//
// The consistency predicate of the paper relies on the fact that a bitonic
// subsequence reaches each checking processor along vertex-disjoint paths, so
// a single faulty relay cannot alter every copy (paper §3, Lemma 6).  The
// sorting algorithms themselves only ever use direct neighbor links; this
// module exists so the property the proof leans on can be stated, tested and
// benchmarked against the topology, and it doubles as general routing
// substrate for the simulator's host tooling.

#pragma once

#include <vector>

#include "hypercube/topology.h"

namespace aoft::cube {

// A path is the full node sequence, endpoints included.
using Path = std::vector<NodeId>;

// Deterministic dimension-ordered (e-cube) shortest route from src to dst:
// differing bits are corrected from least- to most-significant.
Path ecube_route(const Topology& topo, NodeId src, NodeId dst);

// n vertex-disjoint paths between two *adjacent* nodes u and v = u ^ 2^k:
// the direct edge plus, for every other dimension d, the detour
// u -> u^2^d -> u^2^d^2^k -> v.  Interior nodes of distinct paths are
// disjoint, which is the classical fact the paper's Lemma 6 uses.
std::vector<Path> vertex_disjoint_paths(const Topology& topo, NodeId u, NodeId v);

// True iff no two paths share a node other than the common endpoints.
bool internally_vertex_disjoint(const std::vector<Path>& paths);

}  // namespace aoft::cube
