#include "hypercube/masks.h"

#include <cassert>

namespace aoft::cube {

BitVec vect_mask_recursive(const Topology& topo, int i, int j, NodeId node) {
  assert(j >= 0 && j <= i && i < topo.dimension());
  const NodeId d = NodeId{1} << j;
  if (j == i) {
    // Base of the recursion: the first exchange of the stage unions the two
    // partners' own elements.
    BitVec m(topo.num_nodes());
    m.set(node);
    m.set(node ^ d);
    return m;
  }
  // The paper writes the two recursive calls with node±d and node; node^d is
  // the same partner expressed without the branch on the low/high side.
  return vect_mask_recursive(topo, i, j + 1, node ^ d) |
         vect_mask_recursive(topo, i, j + 1, node);
}

BitVec vect_mask(const Topology& topo, int i, int j, NodeId node) {
  assert(j >= 0 && j <= i && i < topo.dimension());
  // Labels reachable from `node` by flipping any subset of bits {j..i}.
  // Enumerate the 2^{i-j+1} subsets directly; the enumeration walks the
  // free-bit positions via the usual "spread a counter over a mask" trick.
  BitVec m(topo.num_nodes());
  const NodeId free_bits = ((NodeId{1} << (i + 1)) - 1) ^ ((NodeId{1} << j) - 1);
  NodeId subset = 0;
  for (;;) {
    m.set(node ^ subset);
    if (subset == free_bits) break;
    subset = (subset - free_bits) & free_bits;  // next subset of free_bits
  }
  return m;
}

BitVec pre_mask(const Topology& topo, int i, int j, NodeId node) {
  assert(j >= 0 && j <= i && i < topo.dimension());
  if (j == i) return BitVec::single(topo.num_nodes(), node);
  return vect_mask(topo, i, j + 1, node);
}

std::uint64_t vect_mask_count(int i, int j) {
  return std::uint64_t{1} << (i - j + 1);
}

std::uint64_t pre_mask_count(int i, int j) {
  return j == i ? 1 : (std::uint64_t{1} << (i - j));
}

}  // namespace aoft::cube
