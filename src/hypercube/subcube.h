// Home subcubes SC_{i,j} (paper Definition 4).
//
// The home subcube SC_{i,j} of dimension i of a processor P_j is the aligned
// block of 2^i node labels containing j:
//
//     start  SC^S_{i,j} = j - j mod 2^i
//     end    SC^E_{i,j} = start + 2^i - 1
//
// Stage i of the bitonic sort operates within each SC_{i+1,*}; the progress
// and feasibility predicates are evaluated over these index ranges.

#pragma once

#include <cassert>
#include <optional>
#include <span>

#include "hypercube/topology.h"

namespace aoft::cube {

// A closed index interval [start, end] of 2^dim aligned node labels.
struct Subcube {
  NodeId start = 0;
  NodeId end = 0;  // inclusive, matching the paper's SC^E notation
  int dim = 0;

  NodeId size() const { return (NodeId{1} << dim); }
  NodeId mid() const { return start + size() / 2; }  // first label of the upper half
  bool contains(NodeId p) const { return p >= start && p <= end; }

  // The lower / upper half as subcubes of dimension dim-1.
  Subcube lower_half() const {
    assert(dim >= 1);
    return Subcube{start, static_cast<NodeId>(mid() - 1), dim - 1};
  }
  Subcube upper_half() const {
    assert(dim >= 1);
    return Subcube{mid(), end, dim - 1};
  }

  friend bool operator==(const Subcube&, const Subcube&) = default;
};

// SC_{i,j}: home subcube of dimension i of node j (Definition 4).
inline Subcube home_subcube(int i, NodeId j) {
  assert(i >= 0 && i < 31);
  const NodeId size = NodeId{1} << i;
  const NodeId start = j - (j % size);
  return Subcube{start, static_cast<NodeId>(start + size - 1), i};
}

// During stage i the pair direction is fixed by bit i+1 of the node label
// (paper Fig. 2: "node mod 2^{i+2} < 2^{i+1}").  A node sorts its pair
// ascending iff that bit is 0.  In the final stage (i = n-1) bit n is always
// 0, so the last merge is globally ascending.
inline bool stage_ascending(NodeId node, int stage) {
  return !node_bit(node, stage + 1);
}

// The direction in which SC_{i,j} was sorted at the end of stage i-1: the
// whole subcube shares bit i, and bit i = 0 means ascending (see DESIGN.md §4
// and the proof of Lemma 2).  For i = 0 a single element is trivially
// "ascending".
inline bool subcube_sorted_ascending(int i, NodeId j) {
  return !node_bit(j, i);
}

// ---- degraded-mode reconfiguration algebra (recovery supervisor) ------------

// A single-dimension cut of a dim-cube: keep the (dim-1)-subcube whose labels
// have node_bit(p, bit) == keep_high, discard the other half.
struct SubcubeCut {
  int bit = 0;
  bool keep_high = false;

  bool keeps(NodeId p) const { return node_bit(p, bit) == keep_high; }

  // Relabel a kept node into the collapsed (dim-1)-cube: drop `bit`.
  NodeId relabel(NodeId p) const {
    assert(keeps(p));
    const NodeId low = p & ((NodeId{1} << bit) - 1);
    return ((p >> (bit + 1)) << bit) | low;
  }
};

// Choose the cut whose kept half contains the fewest suspects — the greedy
// step of remapping the workload onto a fault-free subcube.  Deterministic:
// ties resolve to the lowest bit, then to keeping the low half.  nullopt when
// dim == 0 or there are no suspects (no cut can make progress).
inline std::optional<SubcubeCut> best_excluding_cut(
    int dim, std::span<const NodeId> suspects) {
  if (dim <= 0 || suspects.empty()) return std::nullopt;
  SubcubeCut best;
  std::size_t best_kept = suspects.size() + 1;
  for (int b = 0; b < dim; ++b) {
    std::size_t high = 0;
    for (NodeId s : suspects) high += node_bit(s, b) ? 1 : 0;
    const std::size_t low = suspects.size() - high;
    for (bool keep_high : {false, true}) {
      const std::size_t kept = keep_high ? high : low;
      if (kept < best_kept) {
        best = SubcubeCut{b, keep_high};
        best_kept = kept;
      }
    }
  }
  return best;
}

}  // namespace aoft::cube
