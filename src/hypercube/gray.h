// Gray-code embeddings: linear arrays and rings inside the hypercube.
//
// A classical property of the binary-reflected Gray code: consecutive ranks
// differ in exactly one bit, so the sequence gray(0), gray(1), ..., gray(N-1)
// embeds an N-node ring (or chain) into the N-node hypercube with dilation 1
// — every ring edge is a cube edge.  The AOFT relaxation applications
// distribute 1-D domains over this embedding so halo exchanges ride on
// physical links.

#pragma once

#include "hypercube/topology.h"

namespace aoft::cube {

// Rank -> node label (binary-reflected Gray code).
inline NodeId gray(NodeId rank) { return rank ^ (rank >> 1); }

// Node label -> rank (inverse Gray code).
inline NodeId gray_rank(NodeId label) {
  NodeId rank = 0;
  for (; label != 0; label >>= 1) rank ^= label;
  return rank;
}

// The ring/chain neighborhood of a node under the Gray embedding.
struct RingPosition {
  NodeId rank = 0;
  bool has_prev = false;  // rank > 0
  bool has_next = false;  // rank < N-1 (the chain view; the ring wraps)
  NodeId prev = 0;        // node at rank-1 (valid when has_prev)
  NodeId next = 0;        // node at rank+1 (valid when has_next)
};

// Chain (open ring) position of `node` in a dim-cube Gray embedding.
inline RingPosition gray_chain_position(const Topology& topo, NodeId node) {
  RingPosition pos;
  pos.rank = gray_rank(node);
  pos.has_prev = pos.rank > 0;
  pos.has_next = pos.rank + 1 < topo.num_nodes();
  if (pos.has_prev) pos.prev = gray(pos.rank - 1);
  if (pos.has_next) pos.next = gray(pos.rank + 1);
  return pos;
}

// Closed-ring neighbor across the wrap edge: gray(N-1) and gray(0) also
// differ in exactly one bit (the top bit), so the full ring embeds too.
inline NodeId gray_ring_next(const Topology& topo, NodeId node) {
  const NodeId rank = gray_rank(node);
  return gray((rank + 1) & (topo.num_nodes() - 1));
}
inline NodeId gray_ring_prev(const Topology& topo, NodeId node) {
  const NodeId rank = gray_rank(node);
  return gray((rank + topo.num_nodes() - 1) & (topo.num_nodes() - 1));
}

}  // namespace aoft::cube
