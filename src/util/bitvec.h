// Dynamic fixed-width bit vector used for gossip coverage masks.
//
// The consistency predicate of the fault-tolerant bitonic sort (paper Fig. 4c)
// manipulates per-node bit masks with one bit per hypercube node.  The paper's
// pseudocode uses machine words ("lmask", "omask"); a 64-node Ncube fits in one
// word, but this library simulates cubes of dimension > 6, so masks are a
// dedicated small value type instead.
//
// BitVec is a regular type (copyable, movable, equality-comparable) with the
// usual bitwise algebra.  All operations on two vectors require equal sizes;
// this is a precondition checked with assert in debug builds.
//
// Storage uses a small-buffer optimization: up to kInlineBits bits (dimension
// <= 7 cubes) live inline with no heap allocation.  The mask algebra runs on
// every received gossip message — cube::pre_mask/vect_mask construct a BitVec
// per message — so an allocating mask would defeat the pooled hot path.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aoft::util {

class BitVec {
 public:
  static constexpr std::size_t kInlineWords = 2;
  static constexpr std::size_t kInlineBits = kInlineWords * 64;

  BitVec() = default;

  // A vector of `size` bits, all clear.
  explicit BitVec(std::size_t size) : size_(size) {
    if (nwords() > kInlineWords) heap_.assign(nwords(), 0);
  }

  // A vector of `size` bits with exactly the bits listed in `set_bits` set.
  BitVec(std::size_t size, std::initializer_list<std::size_t> set_bits) : BitVec(size) {
    for (std::size_t b : set_bits) set(b);
  }

  static BitVec single(std::size_t size, std::size_t bit) {
    BitVec v(size);
    v.set(bit);
    return v;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    assert(i < size_);
    return (words()[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) {
    assert(i < size_);
    words()[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  void reset(std::size_t i) {
    assert(i < size_);
    words()[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  void clear() {
    auto* w = words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i) w[i] = 0;
  }

  // Number of set bits.
  std::size_t count() const {
    const auto* w = words();
    std::size_t c = 0;
    for (std::size_t i = 0, n = nwords(); i < n; ++i)
      c += static_cast<std::size_t>(__builtin_popcountll(w[i]));
    return c;
  }

  bool any() const {
    const auto* w = words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i)
      if (w[i] != 0) return true;
    return false;
  }

  bool none() const { return !any(); }

  BitVec& operator|=(const BitVec& o) {
    assert(size_ == o.size_);
    auto* w = words();
    const auto* ow = o.words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i) w[i] |= ow[i];
    return *this;
  }

  BitVec& operator&=(const BitVec& o) {
    assert(size_ == o.size_);
    auto* w = words();
    const auto* ow = o.words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i) w[i] &= ow[i];
    return *this;
  }

  BitVec& operator^=(const BitVec& o) {
    assert(size_ == o.size_);
    auto* w = words();
    const auto* ow = o.words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i) w[i] ^= ow[i];
    return *this;
  }

  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  // Set-complement within the vector's size.
  BitVec operator~() const {
    BitVec r(size_);
    auto* rw = r.words();
    const auto* w = words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i) rw[i] = ~w[i];
    r.trim();
    return r;
  }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    if (a.size_ != b.size_) return false;
    const auto* aw = a.words();
    const auto* bw = b.words();
    for (std::size_t i = 0, n = a.nwords(); i < n; ++i)
      if (aw[i] != bw[i]) return false;
    return true;
  }

  // True iff every set bit of *this is also set in `o`.
  bool is_subset_of(const BitVec& o) const {
    assert(size_ == o.size_);
    const auto* w = words();
    const auto* ow = o.words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i)
      if (w[i] & ~ow[i]) return false;
    return true;
  }

  bool intersects(const BitVec& o) const {
    assert(size_ == o.size_);
    const auto* w = words();
    const auto* ow = o.words();
    for (std::size_t i = 0, n = nwords(); i < n; ++i)
      if (w[i] & ow[i]) return true;
    return false;
  }

  // Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = 0; i < size_; ++i)
      if (test(i)) out.push_back(i);
    return out;
  }

  // "01101..." with bit 0 leftmost (node order), for traces and test failure text.
  std::string to_string() const {
    std::string s;
    s.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
    return s;
  }

 private:
  std::size_t nwords() const { return (size_ + 63) / 64; }

  std::uint64_t* words() {
    return size_ <= kInlineBits ? inline_ : heap_.data();
  }
  const std::uint64_t* words() const {
    return size_ <= kInlineBits ? inline_ : heap_.data();
  }

  void trim() {
    const std::size_t used = size_ % 64;
    if (used != 0 && nwords() > 0)
      words()[nwords() - 1] &= (std::uint64_t{1} << used) - 1;
  }

  std::size_t size_ = 0;
  std::uint64_t inline_[kInlineWords] = {0, 0};
  std::vector<std::uint64_t> heap_;  // used only when size_ > kInlineBits
};

}  // namespace aoft::util
