// Dynamic fixed-width bit vector used for gossip coverage masks.
//
// The consistency predicate of the fault-tolerant bitonic sort (paper Fig. 4c)
// manipulates per-node bit masks with one bit per hypercube node.  The paper's
// pseudocode uses machine words ("lmask", "omask"); a 64-node Ncube fits in one
// word, but this library simulates cubes of dimension > 6, so masks are a
// dedicated small value type instead.
//
// BitVec is a regular type (copyable, movable, equality-comparable) with the
// usual bitwise algebra.  All operations on two vectors require equal sizes;
// this is a precondition checked with assert in debug builds.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aoft::util {

class BitVec {
 public:
  BitVec() = default;

  // A vector of `size` bits, all clear.
  explicit BitVec(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  // A vector of `size` bits with exactly the bits listed in `set_bits` set.
  BitVec(std::size_t size, std::initializer_list<std::size_t> set_bits) : BitVec(size) {
    for (std::size_t b : set_bits) set(b);
  }

  static BitVec single(std::size_t size, std::size_t bit) {
    BitVec v(size);
    v.set(bit);
    return v;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) {
    assert(i < size_);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  void reset(std::size_t i) {
    assert(i < size_);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  // Number of set bits.
  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  bool none() const { return !any(); }

  BitVec& operator|=(const BitVec& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  BitVec& operator&=(const BitVec& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  BitVec& operator^=(const BitVec& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }

  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  // Set-complement within the vector's size.
  BitVec operator~() const {
    BitVec r(size_);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = ~words_[i];
    r.trim();
    return r;
  }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  // True iff every set bit of *this is also set in `o`.
  bool is_subset_of(const BitVec& o) const {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  bool intersects(const BitVec& o) const {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  // Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = 0; i < size_; ++i)
      if (test(i)) out.push_back(i);
    return out;
  }

  // "01101..." with bit 0 leftmost (node order), for traces and test failure text.
  std::string to_string() const {
    std::string s;
    s.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
    return s;
  }

 private:
  void trim() {
    const std::size_t used = size_ % 64;
    if (used != 0 && !words_.empty()) words_.back() &= (std::uint64_t{1} << used) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace aoft::util
