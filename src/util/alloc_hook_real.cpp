// Counting replacement of the global operator new/delete family.
//
// Linked only into binaries that measure allocations (campaign_throughput,
// alloc_regression_test) and never into sanitizer builds — ASan provides its
// own interposers and two replacements is an ODR violation.  alloc_count()
// lives in this TU on purpose: any reference to it pulls this object file out
// of the archive, and with it the operator replacements.
//
// The replacements must be self-contained: malloc/free plus aligned_alloc,
// no C++ library allocation inside.  Counting uses one relaxed atomic —
// allocation order across threads is irrelevant, only totals are read.

#include "util/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

}  // namespace

namespace aoft::util {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

bool alloc_hook_active() { return true; }

}  // namespace aoft::util

// --- global replacements -----------------------------------------------------

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
