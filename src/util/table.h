// Fixed-width text tables for benchmark output.
//
// Every bench binary regenerates one of the paper's tables or figures as rows
// of text; this tiny formatter keeps them aligned and makes the series easy to
// paste into a plotting tool (a CSV dump is available alongside).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aoft::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row cells are preformatted strings; add_row copies them in order.
  void add_row(std::vector<std::string> cells);

  // Pretty fixed-width rendering with a header underline.
  void print(std::ostream& os) const;

  // Comma-separated rendering (header row first).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers used by the bench harnesses.
std::string fmt_double(double v, int precision = 2);
std::string fmt_int(long long v);
// "1.23e+06"-style compact form for the projection tables.
std::string fmt_sci(double v, int precision = 3);

}  // namespace aoft::util
