#include "util/rng.h"

namespace aoft::util {

std::vector<std::int64_t> random_keys(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<std::int64_t> keys(count);
  for (auto& k : keys) k = rng.next_in(-2147483648LL, 2147483647LL);
  return keys;
}

std::vector<std::int64_t> random_keys_small_alphabet(std::uint64_t seed,
                                                     std::size_t count,
                                                     std::int64_t alphabet) {
  Rng rng(seed);
  std::vector<std::int64_t> keys(count);
  for (auto& k : keys) k = rng.next_in(0, alphabet - 1);
  return keys;
}

}  // namespace aoft::util
