#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace aoft::util {

int ThreadPool::resolve(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads, std::vector<WorkerPin> pins)
    : pins_(std::move(pins)) {
  const int n = resolve(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  // Pin before the first job so thread-local pools and leased machines are
  // allocated NUMA-local.  A rejected pin degrades to unpinned.
  if (index < pins_.size() && pins_[index].cpu >= 0)
    pin_current_thread(pins_[index].cpu);
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      job();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t batch) {
  if (count == 0) return;
  if (batch == 0) batch = 1;
  // One claiming job per worker; runs of `batch` consecutive indices come off
  // a shared counter so a slow item does not stall the others for long.
  // `body` outlives the jobs because wait_idle() below returns only after
  // every job finished.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes =
      std::min((count + batch - 1) / batch,
               static_cast<std::size_t>(workers_.size()));
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([next, count, batch, &body] {
      for (;;) {
        const std::size_t base = next->fetch_add(batch, std::memory_order_relaxed);
        if (base >= count) return;
        const std::size_t end = std::min(base + batch, count);
        for (std::size_t i = base; i < end; ++i) body(i);
      }
    });
  }
  wait_idle();
}

}  // namespace aoft::util
