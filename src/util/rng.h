// Deterministic pseudo-random number generation for workloads and fault plans.
//
// Everything in this repository that involves randomness (input lists, fault
// injection schedules, property-test sweeps) derives from an explicit 64-bit
// seed so every run is reproducible.  The generator is xoshiro256** seeded via
// splitmix64, which is small, fast and statistically solid for simulation use.

#pragma once

#include <cstdint>
#include <vector>

namespace aoft::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the full generator state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  double next_unit() {  // [0, 1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

// splitmix64 finalizer: the bijective avalanche mix used to expand seeds.
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Derive an independent sub-seed from a root seed and a coordinate triple.
// This is the campaign engine's seed schedule (docs/PROTOCOL.md §8): every
// (stream, index, attempt) gets its own statistically independent generator,
// a pure function of the root seed — no shared-Rng draw order, so scenarios
// can be drawn and executed in any order (or in parallel) and still be
// bit-identical to a serial run.  Each coordinate is folded in with the
// splitmix64 golden-ratio increment before finalizing, mirroring how Rng's
// constructor expands one seed into four state words.
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream,
                                 std::uint64_t index, std::uint64_t attempt) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = root;
  x = mix64(x + kGolden * (stream + 1));
  x = mix64(x + kGolden * (index + 1));
  x = mix64(x + kGolden * (attempt + 1));
  return x;
}

// The workloads the paper reports sort 32-bit integers; keys below stay within
// 32-bit range unless a test asks otherwise.
std::vector<std::int64_t> random_keys(std::uint64_t seed, std::size_t count);

// Random keys drawn from a small alphabet, to exercise duplicate handling.
std::vector<std::int64_t> random_keys_small_alphabet(std::uint64_t seed,
                                                     std::size_t count,
                                                     std::int64_t alphabet);

}  // namespace aoft::util
