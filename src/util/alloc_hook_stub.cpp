// Stub allocation hook: linked everywhere the counting replacements are
// unwanted — regular binaries and every sanitizer build (ASan interposes the
// operator new family itself; a second replacement would be an ODR
// violation).  Tests gate on alloc_hook_active() and GTEST_SKIP here.

#include "util/alloc_hook.h"

namespace aoft::util {

std::uint64_t alloc_count() { return 0; }

bool alloc_hook_active() { return false; }

}  // namespace aoft::util
