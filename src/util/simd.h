// Runtime SIMD path detection for the vectorized kernels (sort/kernels.h).
//
// Three dispatch paths exist: a portable scalar reference, AVX2 (x86-64) and
// NEON (aarch64).  Which paths are *compiled* is decided at configure time by
// the AOFT_SIMD CMake option plus the target architecture; which path is
// *active* is decided once at runtime from cpuid/arch detection, overridable
// with the AOFT_SIMD environment variable (`scalar`, `avx2`, `neon`, `auto`)
// so CI can force every path through the same binary.  Asking for a path the
// build lacks or the host cannot execute dies loudly (std::runtime_error)
// rather than silently degrading — a forced path that quietly fell back to
// scalar would defeat the differential tests that rely on forcing.
//
// Dispatch is environment metadata, never semantics: every kernel returns
// bit-identical verdicts, violation positions and output bytes on every path
// (docs/PROTOCOL.md §12, enforced by tests/sort/kernels_fuzz_test.cpp).

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace aoft::util::simd {

enum class Path : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

constexpr const char* to_string(Path p) {
  switch (p) {
    case Path::kAvx2: return "avx2";
    case Path::kNeon: return "neon";
    case Path::kScalar: break;
  }
  return "scalar";
}

// True iff the kernels for `p` were compiled into this binary (AOFT_SIMD=ON
// and the target architecture matches).
bool compiled(Path p);

// True iff `p` is compiled in AND the host CPU can execute it (cpuid on
// x86-64; NEON is baseline on aarch64).  kScalar is always supported.
bool supported(Path p);

// Parse a path name: "scalar" / "avx2" / "neon" return the path, "auto"
// returns nullopt (meaning: detect).  Anything else throws std::runtime_error
// — garbage in an override must die loudly, not fall back.
std::optional<Path> parse(std::string_view name);

// The path a fresh process would select: the AOFT_SIMD env override if set
// (throwing if the forced path is unsupported), else the best supported path.
Path detect();

}  // namespace aoft::util::simd
