#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace aoft::util {

namespace {

std::string errno_text() { return std::strerror(errno); }

// Flush a stdio stream all the way to the medium.  On platforms without
// fsync the flush alone is the best available effort.
bool sync_file(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifdef _WIN32
  return _commit(_fileno(f)) == 0;
#else
  return ::fsync(fileno(f)) == 0;
#endif
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error) {
  // A per-process suffix keeps two concurrent writers (e.g. two shards
  // misconfigured onto one path) from scribbling into each other's temp.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(
#ifdef _WIN32
                           _getpid()
#else
                           ::getpid()
#endif
                           ));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + tmp + " for writing: " + errno_text();
    return false;
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = sync_file(f) && ok;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    if (error) *error = "write to " + tmp + " failed: " + errno_text();
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error)
      *error = "rename " + tmp + " -> " + path + " failed: " + errno_text();
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open " + path + ": " + errno_text();
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) {
    if (error) *error = "read from " + path + " failed";
    return false;
  }
  *out = ss.str();
  return true;
}

}  // namespace aoft::util
