// Crash-safe file replacement and the content digest used by durable
// artifacts (campaign checkpoints, BENCH_*.json, trace exports).
//
// A process that dies mid-write must never leave a truncated or interleaved
// artifact where a previous good one stood.  The only portable discipline
// that guarantees this on POSIX filesystems is: write the full contents to a
// sibling temporary file, fsync it, then rename() it over the destination —
// rename within one directory is atomic, so any observer (including a
// resumed campaign) sees either the old complete file or the new complete
// file, never a prefix.
//
// fnv1a64 is the checksum protecting the campaign checkpoint payload
// (docs/PROTOCOL.md §10): not cryptographic, but it turns every truncation,
// bit flip or partial overwrite a crash can produce into a loud
// digest-mismatch error instead of a silent partial resume.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace aoft::util {

// Atomically replace `path` with `contents`: write `path`.tmp.<pid>, fsync,
// rename over `path`.  Returns false and fills `error` (errno text included)
// on any failure; the destination is untouched in that case.
bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error);

// Read a whole file into `out`.  Returns false (and fills `error` when given)
// if the file cannot be opened or read.
bool read_file(const std::string& path, std::string* out,
               std::string* error = nullptr);

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

// FNV-1a over `len` bytes, chainable via `seed` for split buffers.
inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnvOffset) {
  return fnv1a64(s.data(), s.size(), seed);
}

}  // namespace aoft::util
