#include "util/simd.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace aoft::util::simd {

bool compiled(Path p) {
  switch (p) {
    case Path::kScalar:
      return true;
    case Path::kAvx2:
#ifdef AOFT_SIMD_AVX2
      return true;
#else
      return false;
#endif
    case Path::kNeon:
#ifdef AOFT_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool supported(Path p) {
  if (!compiled(p)) return false;
  switch (p) {
    case Path::kScalar:
      return true;
    case Path::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Path::kNeon:
      // Advanced SIMD is architecturally baseline on aarch64; if the NEON
      // kernels compiled, the host executes them.
      return true;
  }
  return false;
}

std::optional<Path> parse(std::string_view name) {
  if (name == "auto") return std::nullopt;
  if (name == "scalar") return Path::kScalar;
  if (name == "avx2") return Path::kAvx2;
  if (name == "neon") return Path::kNeon;
  throw std::runtime_error("simd: unknown path '" + std::string(name) +
                           "' (expected scalar|avx2|neon|auto)");
}

Path detect() {
  if (const char* env = std::getenv("AOFT_SIMD")) {
    if (const auto forced = parse(env)) {
      if (!supported(*forced))
        throw std::runtime_error(
            std::string("simd: AOFT_SIMD=") + to_string(*forced) +
            (compiled(*forced) ? " is not executable on this CPU"
                               : " was not compiled into this binary"));
      return *forced;
    }
  }
  if (supported(Path::kAvx2)) return Path::kAvx2;
  if (supported(Path::kNeon)) return Path::kNeon;
  return Path::kScalar;
}

}  // namespace aoft::util::simd
