// Host CPU/NUMA topology discovery and worker placement planning.
//
// The campaign engine (fault/campaign.cpp) keeps key pools, ring buffers and
// leased machines thread-local (PR 4); this layer decides *where* those
// threads run so the working set also stays cache- and NUMA-local.  Three
// pieces:
//
//   HostTopology    — which CPUs this process may run on (sched_getaffinity)
//                     and which NUMA node owns each (parsed from
//                     /sys/devices/system/node/node*/cpulist), with a
//                     portable single-node fallback for non-Linux hosts,
//   PlacementPolicy — none | compact | scatter | explicit CPU list, parsed
//                     from a --pin=POLICY flag,
//   plan_placement  — the pure function (policy, topology, workers) ->
//                     per-worker pins that util::ThreadPool applies via
//                     pthread_setaffinity_np.
//
// Placement is strictly an efficiency knob: it changes which core executes a
// slot, never what the slot computes.  Campaign results, traces and metrics
// are aggregated in (class, slot) order regardless of scheduling, so every
// policy yields bit-identical summaries (tests/fault/campaign_placement_test
// proves it).  The pin *plan* is deterministic given (policy, topology,
// worker count); only the plan — never a runtime sched_getcpu() sample — is
// recorded in traces, so a fixed host and policy always serialize the same
// bytes.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aoft::util {

struct HostCpu {
  int cpu = 0;   // OS logical CPU id
  int node = 0;  // NUMA node owning it (0 on single-node / fallback hosts)
  friend bool operator==(const HostCpu&, const HostCpu&) = default;
};

struct HostTopology {
  std::vector<HostCpu> cpus;  // the CPUs this process may use, ascending id
  int nodes = 1;              // distinct NUMA nodes among `cpus` (>= 1)
  bool fallback = false;      // true when /sys discovery was unavailable

  // The live host: sched_getaffinity for the available set, sysfs for the
  // node map.  Non-Linux builds (and affinity failures) degrade to
  // single_node(hardware_concurrency).
  static HostTopology discover();

  // Parse a /sys/devices/system/node-style tree rooted at `node_root`
  // (directories nodeK each holding a `cpulist` file).  `available_cpus`
  // restricts the result to that set; empty means "every CPU listed".
  // A missing or node-less root yields the single-node fallback over
  // `available_cpus`.  Exposed separately so tests can feed fixture trees.
  static HostTopology from_sysfs(const std::string& node_root,
                                 std::vector<int> available_cpus);

  // Portable fallback: CPUs 0..n-1, all on node 0.  n <= 0 selects the
  // hardware concurrency (at least 1).
  static HostTopology single_node(int ncpus);

  // NUMA node of `cpu`, or -1 when the CPU is not in the available set.
  int node_of(int cpu) const;
  bool has_cpu(int cpu) const { return node_of(cpu) >= 0; }
};

enum class Placement : std::uint8_t {
  kNone,      // leave workers wherever the OS scheduler drops them
  kCompact,   // fill one NUMA node before spilling to the next
  kScatter,   // round-robin workers across NUMA nodes
  kExplicit,  // user-supplied CPU set (canonicalized ascending),
              // worker i -> list[i mod size]
};

struct PlacementPolicy {
  Placement kind = Placement::kNone;
  std::vector<int> cpus;  // kExplicit only: the pinned CPU cycle

  // Parse a --pin value: "none" | "compact" | "scatter" | a CPU list in
  // cpulist syntax ("0,2,4", "0-3", "0-1,6").  Returns false and fills
  // `error` on anything else (including an empty list).
  static bool parse(std::string_view spec, PlacementPolicy* out,
                    std::string* error);

  // Round-trips through parse(); explicit lists render comma-separated.
  std::string str() const;

  friend bool operator==(const PlacementPolicy&,
                         const PlacementPolicy&) = default;
};

// One worker's planned pin.  cpu/node are -1 for unpinned (policy none).
struct WorkerPin {
  int worker = 0;
  int cpu = -1;
  int node = -1;
  friend bool operator==(const WorkerPin&, const WorkerPin&) = default;
};

// Deterministically map `workers` workers onto the topology under `policy`.
// Workers wrap around when they outnumber the planned CPU cycle.  An
// explicit policy naming a CPU outside the available set throws
// std::invalid_argument — a bad --pin should fail loudly, not silently run
// unpinned.  With policy none (or an empty topology) every pin is -1.
std::vector<WorkerPin> plan_placement(const PlacementPolicy& policy,
                                      const HostTopology& topo, int workers);

// Pin the calling thread to one CPU (pthread_setaffinity_np).  Returns false
// when pinning is unsupported on this platform or the kernel rejects the
// CPU; callers treat that as "run unpinned", never as an error.
bool pin_current_thread(int cpu);

// Parse kernel cpulist syntax ("0-3,8,10-11") into ascending CPU ids.
// Empty (or whitespace-only) text parses to an empty list.  Returns false on
// malformed tokens.  Exposed for tests and PlacementPolicy::parse.
bool parse_cpulist(std::string_view text, std::vector<int>* out);

}  // namespace aoft::util
