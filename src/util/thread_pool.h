// A small fixed-size thread pool for embarrassingly parallel simulation work.
//
// The fault campaigns run hundreds of independent single-OS-thread
// `sim::Machine` simulations; the pool fans those out across worker threads
// while the campaign layer keeps aggregation strictly in slot order, so
// results are bit-identical to a serial run (see fault/campaign.h).
//
// Design constraints:
//   * fixed size, created per campaign — no global singleton, no work
//     stealing, no dynamic resizing; predictability over cleverness,
//   * jobs must be independent — the pool provides no ordering guarantee
//     between jobs, only that wait_idle() returns after every submitted job
//     finished,
//   * the first exception thrown by a job is captured and rethrown from
//     wait_idle() / parallel_for() on the calling thread,
//   * workers may be pinned to CPUs via a util::plan_placement pin plan
//     (util/topology.h) — placement trades cache/NUMA locality only and is
//     invisible in job results; a pin the kernel rejects degrades to
//     unpinned rather than failing the pool.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/topology.h"

namespace aoft::util {

class ThreadPool {
 public:
  // threads <= 0 selects the hardware concurrency (at least 1).  When a pin
  // plan is given, worker i pins itself to pins[i].cpu before taking jobs
  // (entries with cpu < 0, and workers beyond the plan, run unpinned).
  explicit ThreadPool(int threads = 0, std::vector<WorkerPin> pins = {});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueue one job.  Never blocks.
  void submit(std::function<void()> job);

  // Block until the queue is drained and every worker is idle, then rethrow
  // the first job exception, if any.
  void wait_idle();

  // Run body(i) for every i in [0, count) across the pool and block until
  // all complete.  Indices are claimed from a shared counter, so bodies run
  // in a nondeterministic order — callers write into index i of a pre-sized
  // output and aggregate serially afterwards.  `batch` (>= 1) is how many
  // consecutive indices one claim takes: larger batches amortize the shared
  // counter and keep per-thread state (leased machines, pools) hot across
  // consecutive bodies, at the cost of coarser load balancing.  Which worker
  // runs which index is invisible to callers by the disjoint-slot convention,
  // so batch size never affects results.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    std::size_t batch = 1);

  // Map a --jobs style argument to a worker count: <= 0 means "use the
  // hardware concurrency", anything else is taken verbatim (min 1).
  static int resolve(int jobs);

  // The pin plan the pool was built with (empty when unpinned).
  const std::vector<WorkerPin>& pins() const { return pins_; }

 private:
  void worker_loop(std::size_t index);

  std::vector<WorkerPin> pins_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_work_;   // signalled when a job is enqueued
  std::condition_variable cv_idle_;   // signalled when a job finishes
  std::size_t active_ = 0;            // jobs currently executing
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace aoft::util
