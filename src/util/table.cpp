#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace aoft::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

}  // namespace aoft::util
