#include "util/topology.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace aoft::util {

namespace {

namespace fs = std::filesystem;

// Parse a non-negative decimal integer occupying the whole of `tok`.
bool parse_int(std::string_view tok, int* out) {
  if (tok.empty() || tok.size() > 9) return false;
  int v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

}  // namespace

bool parse_cpulist(std::string_view text, std::vector<int>* out) {
  out->clear();
  text = trim(text);
  if (text.empty()) return true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view tok =
        trim(text.substr(pos, comma == std::string_view::npos ? comma
                                                              : comma - pos));
    const std::size_t dash = tok.find('-');
    int lo = 0, hi = 0;
    if (dash == std::string_view::npos) {
      if (!parse_int(tok, &lo)) return false;
      hi = lo;
    } else {
      if (!parse_int(tok.substr(0, dash), &lo) ||
          !parse_int(tok.substr(dash + 1), &hi) || hi < lo)
        return false;
    }
    for (int c = lo; c <= hi; ++c) out->push_back(c);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

HostTopology HostTopology::single_node(int ncpus) {
  if (ncpus <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    ncpus = hw == 0 ? 1 : static_cast<int>(hw);
  }
  HostTopology topo;
  topo.cpus.reserve(static_cast<std::size_t>(ncpus));
  for (int c = 0; c < ncpus; ++c) topo.cpus.push_back({c, 0});
  topo.nodes = 1;
  topo.fallback = true;
  return topo;
}

HostTopology HostTopology::from_sysfs(const std::string& node_root,
                                      std::vector<int> available_cpus) {
  // cpu -> node, from every nodeK/cpulist under the root.  A missing root or
  // an empty scan leaves the map empty and selects the fallback below.
  std::map<int, int> cpu_node;
  std::error_code ec;
  for (fs::directory_iterator it(node_root, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    int node = -1;
    if (name.rfind("node", 0) != 0 ||
        !parse_int(std::string_view(name).substr(4), &node))
      continue;
    std::ifstream is(it->path() / "cpulist");
    if (!is) continue;
    const std::string text{std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>()};
    std::vector<int> cpus;
    if (!parse_cpulist(text, &cpus)) continue;
    for (int c : cpus) cpu_node[c] = node;
  }

  if (available_cpus.empty())
    for (const auto& [cpu, node] : cpu_node) available_cpus.push_back(cpu);
  if (available_cpus.empty()) return single_node(0);
  std::sort(available_cpus.begin(), available_cpus.end());
  available_cpus.erase(
      std::unique(available_cpus.begin(), available_cpus.end()),
      available_cpus.end());

  HostTopology topo;
  std::set<int> nodes;
  for (int c : available_cpus) {
    const auto it = cpu_node.find(c);
    const int node = it == cpu_node.end() ? 0 : it->second;
    topo.cpus.push_back({c, node});
    nodes.insert(node);
  }
  topo.nodes = std::max<int>(1, static_cast<int>(nodes.size()));
  topo.fallback = cpu_node.empty();
  return topo;
}

HostTopology HostTopology::discover() {
#if defined(__linux__)
  std::vector<int> available;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c)
      if (CPU_ISSET(c, &set)) available.push_back(c);
  }
  if (available.empty()) return single_node(0);
  return from_sysfs("/sys/devices/system/node", std::move(available));
#else
  return single_node(0);
#endif
}

int HostTopology::node_of(int cpu) const {
  for (const auto& hc : cpus)
    if (hc.cpu == cpu) return hc.node;
  return -1;
}

bool PlacementPolicy::parse(std::string_view spec, PlacementPolicy* out,
                            std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error) *error = what;
    return false;
  };
  out->cpus.clear();
  if (spec == "none") {
    out->kind = Placement::kNone;
    return true;
  }
  if (spec == "compact") {
    out->kind = Placement::kCompact;
    return true;
  }
  if (spec == "scatter") {
    out->kind = Placement::kScatter;
    return true;
  }
  std::vector<int> cpus;
  if (!parse_cpulist(spec, &cpus))
    return fail("placement must be none|compact|scatter or a CPU list "
                "(e.g. 0,2 or 0-3), got \"" +
                std::string(spec) + "\"");
  if (cpus.empty()) return fail("explicit placement needs at least one CPU");
  out->kind = Placement::kExplicit;
  out->cpus = std::move(cpus);
  return true;
}

std::string PlacementPolicy::str() const {
  switch (kind) {
    case Placement::kNone: return "none";
    case Placement::kCompact: return "compact";
    case Placement::kScatter: return "scatter";
    case Placement::kExplicit: {
      std::string s;
      for (int c : cpus) {
        if (!s.empty()) s += ',';
        s += std::to_string(c);
      }
      return s;
    }
  }
  return "?";
}

std::vector<WorkerPin> plan_placement(const PlacementPolicy& policy,
                                      const HostTopology& topo, int workers) {
  std::vector<WorkerPin> pins(static_cast<std::size_t>(std::max(workers, 0)));
  for (std::size_t i = 0; i < pins.size(); ++i)
    pins[i].worker = static_cast<int>(i);
  if (policy.kind == Placement::kNone || topo.cpus.empty()) return pins;

  // The CPU cycle workers are dealt onto, in policy order.
  std::vector<HostCpu> order;
  switch (policy.kind) {
    case Placement::kCompact:
      // Fill node by node: sort by (node, cpu).
      order = topo.cpus;
      std::sort(order.begin(), order.end(), [](const HostCpu& a,
                                               const HostCpu& b) {
        return a.node != b.node ? a.node < b.node : a.cpu < b.cpu;
      });
      break;
    case Placement::kScatter: {
      // Deal one CPU from each node in turn, nodes in ascending order.
      std::map<int, std::vector<int>> by_node;
      for (const auto& hc : topo.cpus) by_node[hc.node].push_back(hc.cpu);
      for (std::size_t round = 0; order.size() < topo.cpus.size(); ++round)
        for (const auto& [node, cpus] : by_node)
          if (round < cpus.size()) order.push_back({cpus[round], node});
      break;
    }
    case Placement::kExplicit:
      for (int c : policy.cpus) {
        const int node = topo.node_of(c);
        if (node < 0)
          throw std::invalid_argument(
              "placement: cpu " + std::to_string(c) +
              " is not in this process's available CPU set");
        order.push_back({c, node});
      }
      break;
    case Placement::kNone: break;  // unreachable
  }

  for (std::size_t i = 0; i < pins.size(); ++i) {
    const HostCpu& hc = order[i % order.size()];
    pins[i].cpu = hc.cpu;
    pins[i].node = hc.node;
  }
  return pins;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace aoft::util
