// Minimal --name=value flag parsing shared by the bench harnesses and small
// tools.  Unknown arguments are ignored by design: every bench keeps running
// with no arguments at all (the CI default), and flags only override.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace aoft::util {

inline const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return argv[i] + len + 1;
  }
  return nullptr;
}

inline int flag_int(int argc, char** argv, const char* name, int def) {
  const char* v = flag_value(argc, argv, name);
  return v ? std::atoi(v) : def;
}

inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t def) {
  const char* v = flag_value(argc, argv, name);
  return v ? static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10)) : def;
}

}  // namespace aoft::util
