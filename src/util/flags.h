// Minimal --name=value flag parsing shared by the bench harnesses and small
// tools.  Unknown arguments are ignored by design: every bench keeps running
// with no arguments at all (the CI default), and flags only override.  Known
// flags with unparseable values are a different matter — "--runs=ten" used to
// silently become 0 via atoi and corrupt a whole bench sweep — so the typed
// accessors reject garbage loudly (usage message + exit 2).

#pragma once

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aoft::util {

// Checked numeric parsers.  All require the *entire* string to be consumed
// (no trailing junk), reject empty strings, and report range overflow.
// They set no global state besides errno and never exit — the flag_* helpers
// below layer the loud-usage-error policy on top.

inline bool parse_i64(const char* s, long long& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = v;
  return true;
}

inline bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0') return false;
  // strtoull happily wraps "-1" to UINT64_MAX; a negative count is garbage.
  for (const char* p = s; *p != '\0'; ++p)
    if (*p == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

inline bool parse_f64(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = v;
  return true;
}

inline const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return argv[i] + len + 1;
  }
  return nullptr;
}

[[noreturn]] inline void flag_die(const char* name, const char* value,
                                  const char* want) {
  std::fprintf(stderr, "%s: bad value \"%s\" (want %s)\n", name, value, want);
  std::exit(2);
}

inline int flag_int(int argc, char** argv, const char* name, int def) {
  const char* v = flag_value(argc, argv, name);
  if (v == nullptr) return def;
  long long parsed = 0;
  if (!parse_i64(v, parsed) || parsed < INT_MIN || parsed > INT_MAX)
    flag_die(name, v, "an integer");
  return static_cast<int>(parsed);
}

inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t def) {
  const char* v = flag_value(argc, argv, name);
  if (v == nullptr) return def;
  std::uint64_t parsed = 0;
  if (!parse_u64(v, parsed)) flag_die(name, v, "a non-negative integer");
  return parsed;
}

inline double flag_f64(int argc, char** argv, const char* name, double def) {
  const char* v = flag_value(argc, argv, name);
  if (v == nullptr) return def;
  double parsed = 0.0;
  if (!parse_f64(v, parsed)) flag_die(name, v, "a number");
  return parsed;
}

}  // namespace aoft::util
