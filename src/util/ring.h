// Fixed-capacity-reusing FIFO ring buffer.
//
// Drop-in replacement for the std::deque FIFOs on the simulator hot path
// (channel message queues, the scheduler ready queue).  libstdc++'s deque
// allocates and frees a map chunk roughly every 64 steady-state push/pop
// pairs, so a deque-backed queue is never allocation-free no matter how well
// the elements themselves are pooled.  Ring keeps one power-of-two storage
// vector that only ever grows; clear() resets occupied slots to T{} (so
// pooled element resources are released) but keeps the capacity.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace aoft::util {

template <typename T>
class Ring {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[wrap(head_ + count_)] = std::move(v);
    ++count_;
  }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  void pop_front() {
    buf_[head_] = T{};  // release element resources now, not at overwrite
    head_ = wrap(head_ + 1);
    --count_;
  }

  // Empty the queue but keep the storage.  Occupied slots are reset to T{}
  // so anything they hold (e.g. pooled buffers) is released immediately.
  void clear() {
    for (std::size_t i = 0; i < count_; ++i) buf_[wrap(head_ + i)] = T{};
    head_ = 0;
    count_ = 0;
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  std::size_t wrap(std::size_t i) const {
    return i & (buf_.size() - 1);  // capacity is always a power of two
  }

  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[wrap(head_ + i)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace aoft::util
