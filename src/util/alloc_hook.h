// Global-allocation counter for the zero-allocation acceptance bar.
//
// The pooled messaging hot path (sim/pool.h, sim/frame_pool.h) claims that a
// warmed-up scenario run performs no heap allocation at steady state.  That
// claim is only testable if something counts calls to ::operator new — so the
// bench (campaign_throughput) and the allocation-regression test link
// aoft_alloc_hook, whose *real* translation unit replaces the global operator
// new/delete family with malloc-backed versions that bump a relaxed atomic.
//
// Everything else links the *stub* TU, where alloc_hook_active() is false and
// alloc_count() stays 0 — no behavior change, no contention.  CMake selects
// the TU: sanitizer builds (AOFT_SANITIZE=ON) always get the stub because
// ASan interposes operator new itself; tests must GTEST_SKIP when
// !alloc_hook_active().
//
// The counter tallies every allocation on every thread since process start.
// Callers measure deltas: record alloc_count(), run the region of interest,
// subtract.  Single-threaded regions (a Machine run) measure exactly.

#pragma once

#include <cstdint>

namespace aoft::util {

// Total calls to the replaced ::operator new (all forms) so far.  Always 0
// when the stub TU is linked.
std::uint64_t alloc_count();

// True iff the real counting TU is linked into this binary.
bool alloc_hook_active();

}  // namespace aoft::util
