#include "sort/sft.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "hypercube/masks.h"
#include "obs/sink.h"
#include "sort/blockops.h"
#include "sort/predicates.h"
#include "sort/shm_detail.h"
#include "sort/tcp_detail.h"
#include "transport/process.h"
#include "transport/shm_transport.h"
#include "transport/tcp_transport.h"

namespace aoft::sort {

namespace {

// One node's stage-boundary upload, as drained by the host collector.
struct CkptUpload {
  cube::NodeId node = 0;
  int stage = -1;
  std::vector<Key> slice;  // window representative (lowest label) only
  Key digest = 0;          // every other window member
  bool is_slice = false;
};

struct SftShared {
  SftOptions opts;
  int dim = 0;
  std::size_t m = 1;
  int start_stage = 0;          // resume_sft: first stage to execute
  // Views into caller storage (alive for the whole run): no per-run copy.
  std::span<const Key> resume_llbs;  // resume_sft: C_{start_stage-1}, full cube
  std::span<const Key> input;
  std::vector<Key> output;
  std::vector<CkptUpload> uploads;
  bool in_child = false;  // shm backend: this copy runs inside a node process

  const fault::NodeFault* fault_for(cube::NodeId p) const {
    auto it = opts.node_faults.find(p);
    return it == opts.node_faults.end() ? nullptr : &it->second;
  }
};

// Order-sensitive FNV-1a fold over a key slice; the digest the non-
// representative window members upload in place of the full slice.
Key slice_digest(std::span<const Key> s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (Key k : s) {
    h ^= static_cast<std::uint64_t>(k);
    h *= 1099511628211ULL;
  }
  return static_cast<Key>(h);
}

double local_sort_cost(const sim::CostModel& cm, std::size_t m) {
  return m > 1 ? cm.cmp * static_cast<double>(m) * std::log2(static_cast<double>(m))
               : 0.0;
}

// Classify a predicate violation string into the error taxonomy.
sim::ErrorSource source_of(const Violation& v) {
  if (v.what.rfind("phi_P", 0) == 0) return sim::ErrorSource::kPhiP;
  if (v.what.rfind("phi_F", 0) == 0) return sim::ErrorSource::kPhiF;
  if (v.what.rfind("phi_C", 0) == 0) return sim::ErrorSource::kPhiC;
  return sim::ErrorSource::kApp;
}

// Per-node protocol state bundled so the helpers below stay readable.  All
// key storage is drawn from the machine's pool: across campaign scenarios on
// a reset machine, a node's blocks and collections reuse the same capacity.
struct NodeState {
  explicit NodeState(sim::KeyPool& pool) : a(pool), lbs(pool), llbs(pool) {}

  sim::Ctx* ctx = nullptr;
  SftShared* sh = nullptr;
  const fault::NodeFault* fault = nullptr;
  bool silent = false;  // complicit checker: swallows every violation

  // Raise a fail-stop error unless this node is a silent (faulty) checker.
  // Returns true when the caller must abort (honest behaviour); a silent
  // checker carries on as if the check had passed.
  bool flag(sim::ErrorReport r) {
    if (silent) return false;
    ctx->error(std::move(r));
    return true;
  }

  sim::KeyBuf a;     // my block, stored in `cur_asc` direction
  bool cur_asc = true;

  sim::KeyBuf lbs;   // full-cube flattened collection for this stage
  sim::KeyBuf llbs;  // validated collection from the previous stage
  util::BitVec lmask;     // labels collected in `lbs`

  // The window region of `lbs` as a read-only view.
  std::span<const Key> window_slice(const cube::Subcube& w) const {
    const std::size_t m = sh->m;
    return std::span<const Key>(lbs).subspan(
        static_cast<std::size_t>(w.start) * m,
        static_cast<std::size_t>(w.size()) * m);
  }

  // Copy the window region of `lbs` into an outgoing slice, reusing `dst`'s
  // (pooled) capacity instead of materializing a fresh vector.
  template <typename Buf>
  void slice_into(const cube::Subcube& w, Buf& dst) const {
    const auto s = window_slice(w);
    dst.assign(s.begin(), s.end());
  }

  // Φ_C application to one received message.  Returns false after signalling
  // a fail-stop error.
  bool merge_received(const sim::Message& msg, const util::BitVec& sender_cover,
                      const cube::Subcube& window, int i, int j) {
    const std::size_t m = sh->m;
    const auto& cm = sh->opts.cost;
    if (msg.lbs.size() != static_cast<std::size_t>(window.size()) * m)
      return !flag({0, i, j, sim::ErrorSource::kPhiC, "malformed LBS slice"});
    // Charge the mask computation (Lemma 7) and the merge scan (Lemma 9).
    ctx->charge(cm.copy * static_cast<double>(cube::vect_mask_count(i, j)));
    MergeStats stats;
    obs::ScopedPredContext at(ctx->id(), i, j, ctx->clock());
    auto violation = phi_c_merge(lbs, lmask, msg.lbs, sender_cover, window, m, &stats);
    ctx->charge(cm.merge_entry * static_cast<double>(stats.checked + stats.absorbed));
    if (violation && sh->opts.check_consistency)
      return !flag({0, i, j, sim::ErrorSource::kPhiC, violation->what});
    return true;
  }

  // The passive partner's executable assertion on the returned pair (a, b):
  // the merge must be direction-sorted and contain the block it contributed.
  bool check_pair(std::span<const Key> merged, std::span<const Key> mine,
                  bool asc, int i, int j) {
    const auto& cm = sh->opts.cost;
    ctx->charge(cm.cmp * static_cast<double>(merged.size() + mine.size()));
    if (!sh->opts.check_exchange) return true;
    const bool ok = merged.size() == 2 * sh->m &&
                    blockops::is_sorted_dir(merged, asc) &&
                    blockops::contains_submultiset(merged, mine, asc);
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kPairCheck, ctx->id(), i, j, ctx->clock(),
                  ok ? 1 : 0);
    if (auto* me = obs::metrics())
      me->inc(ok ? obs::Counter::kPairPass : obs::Counter::kPairFail);
    if (!ok)
      return !flag({0, i, j, sim::ErrorSource::kPhiF,
                    "exchange pair inconsistent with contributed block"});
    return true;
  }

  // bit_compare at a stage boundary (paper Fig. 3 / Lemma 4), honouring the
  // ablation toggles.  Returns false after signalling.
  bool verify_stage(const cube::Subcube& outer, const cube::Subcube& inner,
                    bool inner_ascending, bool final_stage, int i) {
    const std::size_t m = sh->m;
    const auto& cm = sh->opts.cost;
    const auto window_span = [&](const sim::KeyBuf& full,
                                 const cube::Subcube& sc) {
      return std::span<const Key>(full).subspan(
          static_cast<std::size_t>(sc.start) * m,
          static_cast<std::size_t>(sc.size()) * m);
    };
    obs::ScopedPredContext at(ctx->id(), i, -1, ctx->clock());
    if (sh->opts.check_progress) {
      ctx->charge(cm.cmp * static_cast<double>(outer.size() * m));
      if (auto v = phi_p(window_span(lbs, outer), final_stage)) {
        if (flag({0, i, -1, source_of(*v), v->what})) return false;
      }
    }
    if (sh->opts.check_feasibility) {
      ctx->charge(2.0 * cm.cmp * static_cast<double>(inner.size() * m));
      if (auto v = phi_f(window_span(llbs, inner), window_span(lbs, inner),
                         inner_ascending)) {
        if (flag({0, i, -1, source_of(*v), v->what})) return false;
      }
    }
    return true;
  }
};

sim::SimTask sft_node(sim::Ctx& ctx, SftShared& sh) {
  const cube::NodeId me = ctx.id();
  const int n = sh.dim;
  const std::size_t m = sh.m;
  const std::size_t num_nodes = ctx.topo().num_nodes();
  const auto& cm = sh.opts.cost;

  NodeState st(ctx.pool());
  st.ctx = &ctx;
  st.sh = &sh;
  st.fault = sh.fault_for(me);
  st.silent = st.fault != nullptr && st.fault->silent_checker;

  st.a.assign(sh.input.begin() + static_cast<std::ptrdiff_t>(me * m),
              sh.input.begin() + static_cast<std::ptrdiff_t>((me + 1) * m));
  auto write_out = [&] {
    std::copy(st.a.begin(), st.a.end(),
              sh.output.begin() + static_cast<std::ptrdiff_t>(me * m));
  };

  if (n == 0) {  // single node: a local sort, nothing to verify against peers
    blockops::sort_dir(st.a, true);
    ctx.charge(local_sort_cost(cm, m));
    write_out();
    co_return;
  }

  const int start = sh.start_stage;
  if (start == 0) {
    // Initial local sort.  The direction alternates on bit 0 so that, per
    // pair, the flattened initial blocks already form an ascending-then-
    // descending sequence: the stage-0 gossip then has the bitonic-halves
    // shape every later Φ_F relies on (the "SC_i sorted in direction bit i"
    // invariant holds from i = 0).  With m = 1 the direction is vacuous,
    // matching Fig. 3.
    st.cur_asc = cube::subcube_sorted_ascending(0, me);
    blockops::sort_dir(st.a, st.cur_asc);
    ctx.charge(local_sort_cost(cm, m));
  } else {
    // Resuming from a host-certified checkpoint: the block arrives already
    // sorted in the direction stage start-1's merge left SC_start in, and no
    // initial local sort is re-charged — that is the salvaged work.
    st.cur_asc = cube::subcube_sorted_ascending(start, me);
  }

  st.lbs.assign(num_nodes * m, Key{0});
  st.llbs.assign(num_nodes * m, Key{0});
  if (start > 0) {
    // C_{start-1}, restricted to the node's own SC_start window — exactly the
    // entries the uninterrupted run carried over its stage-(start-1) boundary
    // (Φ_F reads nothing outside it), so downstream state stays bit-identical.
    const auto prev = cube::home_subcube(start, me);
    std::copy(
        sh.resume_llbs.begin() + static_cast<std::ptrdiff_t>(prev.start * m),
        sh.resume_llbs.begin() + static_cast<std::ptrdiff_t>((prev.end + 1) * m),
        st.llbs.begin() + static_cast<std::ptrdiff_t>(prev.start * m));
  }
  st.lmask = util::BitVec(num_nodes);
  auto reset_lbs = [&] {
    std::copy(st.a.begin(), st.a.end(),
              st.lbs.begin() + static_cast<std::ptrdiff_t>(me * m));
    st.lmask.clear();
    st.lmask.set(me);
  };
  reset_lbs();

  const auto& topo = ctx.topo();

  for (int i = start; i < n; ++i) {
    const double stage_t0 = ctx.clock();
    const cube::Subcube window = cube::home_subcube(i + 1, me);
    bool asc = cube::stage_ascending(me, i);
    if (st.fault && st.fault->invert_direction_from &&
        fault::reached(*st.fault->invert_direction_from, i, i))
      asc = !asc;
    if (st.fault && st.fault->substitute_at && st.fault->substitute_at->stage == i) {
      // Consistent liar: fabricate an element everywhere, including own gossip.
      st.a[0] = st.fault->substitute_value;
      blockops::sort_dir(st.a, st.cur_asc);
      reset_lbs();
    }
    if (asc != st.cur_asc) {
      blockops::reverse_block(st.a);
      ctx.charge(cm.copy * static_cast<double>(m));
      st.cur_asc = asc;
    }

    for (int j = i; j >= 0; --j) {
      if (st.fault && st.fault->halt_at && fault::reached(*st.fault->halt_at, i, j)) {
        if (st.fault->kill_process && sh.in_child) transport::kill_self();
        if (st.fault->wedge_process && sh.in_child) transport::wedge_self();
        write_out();
        co_return;  // fail-silent; peers' watchdogs flag the absence
      }
      const cube::NodeId partner = me ^ (cube::NodeId{1} << j);
      const bool active = !cube::node_bit(me, j);
      if (active) {
        auto r = co_await ctx.recv(partner);
        if (!r.ok) {  // cannot proceed without the operand, silent or not
          st.flag({0, i, j, sim::ErrorSource::kTimeout, "no message from partner"});
          write_out();
          co_return;
        }
        ctx.account_recv(r.msg);
        // The passive partner sent its pre-exchange collection.
        if (!st.merge_received(r.msg, cube::pre_mask(topo, i, j, partner), window,
                               i, j)) {
          write_out();
          co_return;
        }
        // Compare-exchange (merge-split for blocks).  The received buffer is
        // adopted in place (pooled — it returns to the machine's pool when
        // this iteration's state dies).
        sim::KeyBuf theirs = std::move(r.msg.data);
        if (theirs.size() != m || !blockops::is_sorted_dir(theirs, st.cur_asc)) {
          ctx.charge(cm.cmp * static_cast<double>(theirs.size()));
          if (st.flag({0, i, j, sim::ErrorSource::kPhiF,
                       "received operand block malformed"})) {
            write_out();
            co_return;
          }
          theirs.resize(m, 0);
          blockops::sort_dir(theirs, st.cur_asc);
        }
        ctx.charge(cm.cmp * static_cast<double>(m));
        if (sh.opts.check_exchange && j == i) {
          // At the first iteration of a stage the partner's gossip must carry
          // exactly the operand it sent: a node cannot tell the compare-
          // exchange one value and the collective check another.  The gossip
          // keeps the previous stage's orientation (direction bit i of the
          // owner) while the operand was reoriented to the pair direction —
          // compared in place via a reversed iteration, no materialized copy.
          const std::size_t off = static_cast<std::size_t>(partner - window.start) * m;
          const auto gossip = std::span<const Key>(r.msg.lbs).subspan(off, m);
          ctx.charge(cm.cmp * static_cast<double>(m));
          const bool same =
              cube::subcube_sorted_ascending(i, partner) != st.cur_asc
                  ? std::equal(theirs.begin(), theirs.end(),
                               std::make_reverse_iterator(gossip.end()))
                  : std::equal(theirs.begin(), theirs.end(), gossip.begin());
          if (!same && st.flag({0, i, j, sim::ErrorSource::kPhiC,
                                "operand disagrees with piggybacked gossip"})) {
            write_out();
            co_return;
          }
        }
        // Reply carries the whole pair (a, b) plus the *merged* collection.
        // The merge writes straight into the reply's pooled buffer — the
        // per-iteration `merged` vector of the unpooled code is gone.
        sim::Message reply(ctx.pool());
        reply.kind = sim::MsgKind::kDataLbs;
        reply.stage = i;
        reply.iter = j;
        reply.data.resize(2 * m);
        blockops::merge_dir_into(st.a, theirs, st.cur_asc, reply.data);
        ctx.charge(cm.cmp * static_cast<double>(2 * m));
        st.a.assign(reply.data.begin(),
                    reply.data.begin() + static_cast<std::ptrdiff_t>(m));
        st.slice_into(window, reply.lbs);
        ctx.send(partner, std::move(reply));
      } else {
        sim::Message msg(ctx.pool());
        msg.kind = sim::MsgKind::kDataLbs;
        msg.stage = i;
        msg.iter = j;
        msg.data = st.a;
        st.slice_into(window, msg.lbs);
        ctx.send(partner, std::move(msg));
        auto r = co_await ctx.recv(partner);
        if (!r.ok) {  // cannot proceed without the operand, silent or not
          st.flag({0, i, j, sim::ErrorSource::kTimeout, "no message from partner"});
          write_out();
          co_return;
        }
        ctx.account_recv(r.msg);
        // The active partner merged before replying, so its collection is the
        // union — every entry we already hold is cross-checked here.
        if (!st.merge_received(r.msg, cube::vect_mask(topo, i, j, partner), window,
                               i, j)) {
          write_out();
          co_return;
        }
        if (!st.check_pair(r.msg.data, st.a, st.cur_asc, i, j)) {
          write_out();
          co_return;
        }
        if (r.msg.data.size() >= 2 * m)
          st.a.assign(r.msg.data.begin() + static_cast<std::ptrdiff_t>(m),
                      r.msg.data.begin() + static_cast<std::ptrdiff_t>(2 * m));
      }
      if (auto* tr = obs::tracer())
        tr->instant(obs::Ev::kIter, me, i, j, ctx.clock());
    }

    // Stage boundary: bit_compare (skipped at stage 0 where no LLBS exists),
    // LLBS update, LBS reset (paper Fig. 3).
    if (i != 0) {
      const cube::Subcube inner = cube::home_subcube(i, me);
      if (!st.verify_stage(window, inner, cube::subcube_sorted_ascending(i, me),
                           /*final_stage=*/false, i)) {
        write_out();
        co_return;
      }
    }
    if (sh.opts.observer) {
      StageSnapshot snap;
      snap.node = me;
      snap.stage = i;
      snap.window = window;
      st.slice_into(window, snap.lbs_window);
      snap.llbs_window.assign(
          st.llbs.begin() + static_cast<std::ptrdiff_t>(window.start * m),
          st.llbs.begin() + static_cast<std::ptrdiff_t>((window.end + 1) * m));
      sh.opts.observer(snap);
    }
    if (sh.opts.checkpoint) {
      // Upload the just-validated window to the host: the window's lowest
      // label ships the slice, every other member only a digest, so one stage
      // boundary costs the host N*m words plus N-per-stage digest messages.
      sim::Message ck(ctx.pool());
      ck.kind = sim::MsgKind::kCheckpoint;
      ck.stage = i;
      if (me == window.start) {
        st.slice_into(window, ck.lbs);
        ctx.charge(cm.copy * static_cast<double>(window.size() * m));
      } else {
        ck.data.push_back(slice_digest(st.window_slice(window)));
        // A streaming hash fold touches each word once: copy-rate, not cmp.
        ctx.charge(cm.copy * static_cast<double>(window.size() * m));
      }
      const bool is_rep = me == window.start;
      const auto ck_words = static_cast<std::int64_t>(ck.words());
      if (auto* tr = obs::tracer())
        tr->instant(obs::Ev::kCkptUpload, me, i, -1, ctx.clock(),
                    is_rep ? 1 : 0, ck_words);
      if (auto* mreg = obs::metrics()) mreg->inc(obs::Counter::kCkptUploads);
      ctx.send_host(std::move(ck));
    }
    std::copy(st.lbs.begin() + static_cast<std::ptrdiff_t>(window.start * m),
              st.lbs.begin() + static_cast<std::ptrdiff_t>((window.end + 1) * m),
              st.llbs.begin() + static_cast<std::ptrdiff_t>(window.start * m));
    ctx.charge(cm.copy * static_cast<double>(window.size() * m));
    reset_lbs();
    if (auto* tr = obs::tracer())
      tr->span(obs::Ev::kStage, me, i, stage_t0, ctx.clock());
  }

  // Final verification: pure exchange of the finished sort over the whole
  // cube, then bit_compare against the last validated bitonic sequence.
  const cube::Subcube cube_window = cube::home_subcube(n, me);
  const int fi = n - 1;  // mask algebra of the last stage spans the whole cube
  const double final_t0 = ctx.clock();
  for (int j = fi; j >= 0; --j) {
    if (st.fault && st.fault->halt_at && fault::reached(*st.fault->halt_at, n, j)) {
      if (st.fault->kill_process && sh.in_child) transport::kill_self();
      if (st.fault->wedge_process && sh.in_child) transport::wedge_self();
      write_out();
      co_return;
    }
    const cube::NodeId partner = me ^ (cube::NodeId{1} << j);
    const bool active = !cube::node_bit(me, j);
    if (active) {
      auto r = co_await ctx.recv(partner);
      if (!r.ok) {
        st.flag({0, n, j, sim::ErrorSource::kTimeout, "no message from partner"});
        write_out();
        co_return;
      }
      ctx.account_recv(r.msg);
      if (!st.merge_received(r.msg, cube::pre_mask(topo, fi, j, partner),
                             cube_window, n, j)) {
        write_out();
        co_return;
      }
      sim::Message reply(ctx.pool());
      reply.kind = sim::MsgKind::kLbsOnly;
      reply.stage = n;
      reply.iter = j;
      st.slice_into(cube_window, reply.lbs);
      ctx.send(partner, std::move(reply));
    } else {
      sim::Message msg(ctx.pool());
      msg.kind = sim::MsgKind::kLbsOnly;
      msg.stage = n;
      msg.iter = j;
      st.slice_into(cube_window, msg.lbs);
      ctx.send(partner, std::move(msg));
      auto r = co_await ctx.recv(partner);
      if (!r.ok) {
        st.flag({0, n, j, sim::ErrorSource::kTimeout, "no message from partner"});
        write_out();
        co_return;
      }
      ctx.account_recv(r.msg);
      if (!st.merge_received(r.msg, cube::vect_mask(topo, fi, j, partner),
                             cube_window, n, j)) {
        write_out();
        co_return;
      }
    }
    if (auto* tr = obs::tracer())
      tr->instant(obs::Ev::kIter, me, n, j, ctx.clock());
  }
  if (!st.verify_stage(cube_window, cube_window, /*inner_ascending=*/true,
                       /*final_stage=*/true, n)) {
    write_out();
    co_return;
  }
  if (auto* tr = obs::tracer())
    tr->span(obs::Ev::kStage, me, n, final_t0, ctx.clock());
  if (sh.opts.observer) {
    StageSnapshot snap;
    snap.node = me;
    snap.stage = n;
    snap.window = cube_window;
    st.slice_into(cube_window, snap.lbs_window);
    snap.llbs_window.assign(st.llbs.begin(), st.llbs.end());
    sh.opts.observer(snap);
  }
  write_out();
  co_return;
}

// Host-side checkpoint collector.  Drains the inbox until global quiescence
// (the watchdog fails the receive once the sort is over — Environmental
// Assumption 4 works for the host too); error reports pass through untouched.
sim::SimTask ckpt_collector(sim::HostCtx& host, SftShared& sh) {
  for (;;) {
    auto r = co_await host.recv();
    if (!r.ok) co_return;
    if (r.msg.kind != sim::MsgKind::kCheckpoint) continue;
    host.account_bulk_recv(r.msg);
    CkptUpload up;
    up.node = r.msg.from;
    up.stage = r.msg.stage;
    if (!r.msg.lbs.empty()) {
      // Copy out: uploads outlive the run (and the machine's pool), so the
      // host-side record is a plain vector while the pooled buffer returns.
      up.slice.assign(r.msg.lbs.begin(), r.msg.lbs.end());
      up.is_slice = true;
    } else if (!r.msg.data.empty()) {
      up.digest = r.msg.data.front();
    }
    sh.uploads.push_back(std::move(up));
  }
}

// Certify the drained uploads into per-stage checkpoints.  A stage-i
// checkpoint is certified when every SC_{i+1} window has its representative
// slice confirmed by every member's digest, the assembled full-cube state is
// a permutation of the run's start state, and every dim-i subcube is sorted
// in its direction-bit orientation — the exact invariants a resume relies on.
// Colluding forgeries that survive all three are still permutations of the
// input, so a resumed sort of one still yields the correct sorted output.
std::vector<StageCheckpoint> certify_checkpoints(const SftShared& sh) {
  const int n = sh.dim;
  const std::size_t m = sh.m;
  const cube::NodeId num_nodes = cube::NodeId{1} << n;
  std::vector<StageCheckpoint> out;
  for (int i = sh.start_stage; i < n; ++i) {
    StageCheckpoint ck;
    ck.stage = i;
    ck.state.assign(num_nodes * m, 0);
    const cube::NodeId wsize = cube::NodeId{1} << (i + 1);
    ck.windows_total = static_cast<int>(num_nodes / wsize);
    for (cube::NodeId ws = 0; ws < num_nodes; ws += wsize) {
      const CkptUpload* rep = nullptr;
      int digests_ok = 0;
      for (const auto& up : sh.uploads) {
        if (up.stage != i || up.node < ws || up.node >= ws + wsize) continue;
        if (up.node == ws && up.is_slice) rep = &up;
      }
      if (rep == nullptr || rep->slice.size() != wsize * m) continue;
      const Key expect = slice_digest(rep->slice);
      for (const auto& up : sh.uploads)
        if (up.stage == i && up.node > ws && up.node < ws + wsize &&
            !up.is_slice && up.digest == expect)
          ++digests_ok;
      if (digests_ok != static_cast<int>(wsize) - 1) continue;
      std::copy(rep->slice.begin(), rep->slice.end(),
                ck.state.begin() + static_cast<std::ptrdiff_t>(ws * m));
      ++ck.windows_agreed;
    }
    if (ck.windows_agreed == ck.windows_total &&
        is_permutation_of(ck.state, sh.input)) {
      ck.certified = true;
      const cube::NodeId ssize = cube::NodeId{1} << i;
      for (cube::NodeId s = 0; s < num_nodes && ck.certified; s += ssize) {
        const std::span<const Key> sub(ck.state.data() + s * m, ssize * m);
        if (!blockops::is_sorted_dir(sub, cube::subcube_sorted_ascending(i, s)))
          ck.certified = false;
      }
    }
    out.push_back(std::move(ck));
  }
  return out;
}

// ---- shared-memory backend --------------------------------------------------

// The body every child process runs, fork- or exec-spawned: a one-node
// machine wired to the segment, the same sft_node program, results published
// into the node's slot.  kDone is stored only after the output block is
// copied, so a kDone slot always implies a complete output region.
int sft_child_body(transport::ShmSegment& seg, cube::NodeId p, SftShared& sh) {
  transport::NodeSlot& slot = seg.slot(p);
  try {
    sim::Machine mach(cube::Topology{sh.dim}, sh.opts.cost);
    transport::ShmTransport link(seg, static_cast<std::int32_t>(p));
    mach.attach_remote(&link, static_cast<std::int32_t>(p));
    mach.set_interceptor(sh.opts.interceptor);
    mach.record_link_events(sh.opts.record_link_events);
    slot.state.store(static_cast<std::uint32_t>(transport::SlotState::kRunning),
                     std::memory_order_release);
    mach.run_remote_node(p, [&sh](sim::Ctx& ctx) { return sft_node(ctx, sh); });
    transport::finish_shm_node(seg, p, mach);
    const std::size_t m = sh.m;
    std::copy(sh.output.begin() + static_cast<std::ptrdiff_t>(p * m),
              sh.output.begin() + static_cast<std::ptrdiff_t>((p + 1) * m),
              seg.output().begin() + static_cast<std::ptrdiff_t>(p * m));
    slot.state.store(static_cast<std::uint32_t>(transport::SlotState::kDone),
                     std::memory_order_release);
    return 0;
  } catch (const std::exception& e) {
    return shm_detail::fail_child(seg, p, e.what());
  }
}

SortRun run_sft_shm(int dim, SftShared& sh) {
  if (sh.opts.machine != nullptr)
    throw std::invalid_argument(
        "SftOptions::machine is a single-process affordance; not available "
        "on the shm backend");
  if (sh.opts.observer)
    throw std::invalid_argument(
        "SftOptions::observer runs in the node's process on the shm backend; "
        "its snapshots cannot reach the caller — use the sim backend");

  transport::ShmSegment::Config cfg;
  cfg.dim = dim;
  cfg.block = sh.m;
  cfg.algo = 0;
  cfg.start_stage = sh.start_stage;
  cfg.checkpoint = sh.opts.checkpoint;
  cfg.record_events = sh.opts.record_link_events;
  cfg.with_resume = sh.start_stage > 0;
  cfg.check_progress = sh.opts.check_progress;
  cfg.check_feasibility = sh.opts.check_feasibility;
  cfg.check_consistency = sh.opts.check_consistency;
  cfg.check_exchange = sh.opts.check_exchange;
  cfg.cost = sh.opts.cost;
  cfg.recv_timeout_s = sh.opts.shm.recv_timeout_s;
  cfg.run_deadline_s = sh.opts.shm.run_deadline_s;
  auto seg = transport::ShmSegment::create(cfg);

  std::copy(sh.input.begin(), sh.input.end(), seg.input().begin());
  if (sh.start_stage > 0)
    std::copy(sh.resume_llbs.begin(), sh.resume_llbs.end(),
              seg.llbs().begin());
  shm_detail::fill_wire_faults(seg, sh.opts.node_faults);

  if (auto* tr = obs::tracer())
    tr->instant(obs::Ev::kRunBegin, obs::kGlobal, sh.start_stage, -1, 0.0, dim,
                static_cast<std::int64_t>(sh.m));

  transport::ShmParent par(seg);
  sh.in_child = true;  // fork children inherit the flag copy-on-write
  if (sh.opts.shm.node_binary.empty())
    par.spawn_fork(
        [&](cube::NodeId p) { return sft_child_body(seg, p, sh); });
  else
    par.spawn_exec(sh.opts.shm.node_binary);
  sh.in_child = false;

  SortRun run;
  if (sh.opts.checkpoint) {
    // The parent is the reliable host: same collector coroutine as the sim,
    // pumping the up-rings, reaping children from the idle path.
    sim::Machine hostm(cube::Topology{dim}, sh.opts.cost);
    transport::ShmTransport hlink(seg, transport::kHostRole);
    hlink.set_host_poll([&par] { par.poll(); });
    hostm.attach_remote(&hlink, transport::kHostRole);
    hostm.run_remote_host(
        [&sh](sim::HostCtx& host) { return ckpt_collector(host, sh); });
    par.await_all();
    run.summary.host_comm = hostm.host_stats().comm_ticks;
    run.summary.host_comp = hostm.host_stats().comp_ticks;
    run.summary.elapsed = hostm.host_stats().clock;
  } else {
    par.await_all();
  }

  shm_detail::collect_shm_results(seg, run, sh.opts.record_link_events);
  if (sh.opts.checkpoint) run.checkpoints = certify_checkpoints(sh);
  if (auto* tr = obs::tracer()) {
    for (const auto& ck : run.checkpoints)
      tr->instant(obs::Ev::kCkptCertify, obs::kHostNode, ck.stage, -1,
                  run.summary.elapsed, ck.certified ? 1 : 0,
                  ck.windows_agreed);
    tr->instant(obs::Ev::kRunEnd, obs::kGlobal, -1, -1, run.summary.elapsed,
                static_cast<std::int64_t>(run.errors.size()),
                run.summary.watchdog_rounds);
  }
  return run;
}

// ---- socket backend ---------------------------------------------------------

// The body every tcp node process runs, fork- or exec-spawned: mesh up, run
// the same sft_node program on a one-node machine wired to the endpoint,
// publish results via the FINISH frame.  Fork children use the inherited
// SftShared (keeping in-process interceptors working, as under shm); exec
// children arrive here through detail::run_sft_tcp_node with one rebuilt
// from the endpoint's CONFIG.
int sft_tcp_child_body(transport::TcpNodeEndpoint& ep, cube::NodeId p,
                       SftShared& sh) {
  try {
    ep.connect_peers();
    sim::Machine mach(cube::Topology{sh.dim}, sh.opts.cost);
    mach.attach_remote(&ep, static_cast<std::int32_t>(p));
    mach.set_interceptor(sh.opts.interceptor);
    mach.record_link_events(sh.opts.record_link_events);
    mach.run_remote_node(p, [&sh](sim::Ctx& ctx) { return sft_node(ctx, sh); });
    const std::size_t m = sh.m;
    tcp_detail::finish_tcp_node(
        ep, p, mach, std::span<const Key>(sh.output).subspan(p * m, m),
        sh.opts.record_link_events);
    return 0;
  } catch (const std::exception& e) {
    return tcp_detail::fail_tcp_node(ep, p, e.what());
  }
}

SortRun run_sft_tcp(int dim, SftShared& sh) {
  if (sh.opts.machine != nullptr)
    throw std::invalid_argument(
        "SftOptions::machine is a single-process affordance; not available "
        "on the tcp backend");
  if (sh.opts.observer)
    throw std::invalid_argument(
        "SftOptions::observer runs in the node's process on the tcp backend; "
        "its snapshots cannot reach the caller — use the sim backend");
  if (dim > transport::kMaxProcessDim)
    throw std::invalid_argument("tcp backend supports dim <= " +
                                std::to_string(transport::kMaxProcessDim));
  if (const std::size_t cb =
          transport::config_frame_bytes(dim, sh.m, sh.start_stage > 0);
      cb > transport::kMaxFrameBytes)
    throw std::invalid_argument(
        "tcp: CONFIG for this job would be " + std::to_string(cb) +
        " bytes, beyond the " + std::to_string(transport::kMaxFrameBytes) +
        "-byte frame limit — shrink block or dim for the tcp backend");

  const cube::NodeId n = cube::NodeId{1} << dim;
  const auto& topts = sh.opts.tcp;
  transport::TcpHostEndpoint host(dim, topts);
  transport::TcpParent par(dim, topts.run_deadline_s);
  host.set_host_poll([&par] { par.poll(); });

  const auto pins =
      topts.hosts_file.empty()
          ? std::vector<std::optional<transport::HostPin>>(n)
          : transport::parse_hosts_file(topts.hosts_file,
                                        static_cast<int>(n));

  if (auto* tr = obs::tracer())
    tr->instant(obs::Ev::kRunBegin, obs::kGlobal, sh.start_stage, -1, 0.0, dim,
                static_cast<std::int64_t>(sh.m));

  const std::string parent_addr = host.addr();
  const std::uint16_t parent_port = host.port();
  sh.in_child = true;  // fork children inherit the flag copy-on-write
  if (topts.node_binary.empty()) {
    const double setup_s = topts.run_deadline_s;
    par.spawn_fork(
        [&, setup_s](cube::NodeId p) {
          try {
            transport::TcpNodeEndpoint ep(
                p, parent_addr, parent_port,
                pins[p] ? pins[p]->addr : std::string("127.0.0.1"),
                pins[p] ? pins[p]->port : std::uint16_t{0}, setup_s);
            return sft_tcp_child_body(ep, p, sh);
          } catch (const std::exception&) {
            return 1;  // setup failed before the endpoint could FINISH
          }
        },
        pins);
  } else {
    par.spawn_exec(topts.node_binary, parent_addr, parent_port, pins);
  }
  sh.in_child = false;

  host.rendezvous(topts.run_deadline_s);

  transport::TcpConfigHead head;
  head.block = sh.m;
  head.start_stage = sh.start_stage;
  head.algo = 0;
  head.checkpoint = sh.opts.checkpoint;
  head.record_events = sh.opts.record_link_events;
  head.with_resume = sh.start_stage > 0;
  head.check_progress = sh.opts.check_progress;
  head.check_feasibility = sh.opts.check_feasibility;
  head.check_consistency = sh.opts.check_consistency;
  head.check_exchange = sh.opts.check_exchange;
  head.cost = sh.opts.cost;
  const auto wire_faults = tcp_detail::wire_faults_of(sh.opts.node_faults, n);
  host.broadcast_config(head, wire_faults, sh.input,
                        sh.start_stage > 0 ? sh.resume_llbs
                                           : std::span<const Key>{});

  SortRun run;
  if (sh.opts.checkpoint) {
    // The parent is the reliable host: same collector coroutine as the sim,
    // pumping the sockets, reaping children from the idle path.
    sim::Machine hostm(cube::Topology{dim}, sh.opts.cost);
    hostm.attach_remote(&host, transport::kHostRole);
    hostm.run_remote_host(
        [&sh](sim::HostCtx& h) { return ckpt_collector(h, sh); });
    host.await_all();
    run.summary.host_comm = hostm.host_stats().comm_ticks;
    run.summary.host_comp = hostm.host_stats().comp_ticks;
    run.summary.elapsed = hostm.host_stats().clock;
  } else {
    host.await_all();
  }
  par.await_exits();

  tcp_detail::collect_tcp_results(host, dim, run, sh.m,
                                  sh.opts.record_link_events);
  if (sh.opts.checkpoint) run.checkpoints = certify_checkpoints(sh);
  if (auto* tr = obs::tracer()) {
    for (const auto& ck : run.checkpoints)
      tr->instant(obs::Ev::kCkptCertify, obs::kHostNode, ck.stage, -1,
                  run.summary.elapsed, ck.certified ? 1 : 0,
                  ck.windows_agreed);
    tr->instant(obs::Ev::kRunEnd, obs::kGlobal, -1, -1, run.summary.elapsed,
                static_cast<std::int64_t>(run.errors.size()),
                run.summary.watchdog_rounds);
  }
  return run;
}

SortRun run_sft_impl(int dim, SftShared& sh) {
  if (sh.opts.backend == transport::Backend::kShm) return run_sft_shm(dim, sh);
  if (sh.opts.backend == transport::Backend::kTcp) return run_sft_tcp(dim, sh);
  // Run on the caller's machine when provided (reset() keeps its pool and
  // channel storage warm across campaign scenarios); construct one otherwise.
  std::optional<sim::Machine> owned;
  sim::Machine* machine = sh.opts.machine;
  if (machine != nullptr) {
    if (machine->topo().dimension() != dim)
      throw std::invalid_argument(
          "SftOptions::machine topology dimension does not match the sort");
    machine->reset(sh.opts.cost);
  } else {
    owned.emplace(cube::Topology{dim}, sh.opts.cost);
    machine = &*owned;
  }
  machine->set_interceptor(sh.opts.interceptor);
  machine->record_link_events(sh.opts.record_link_events);
  if (auto* tr = obs::tracer())
    tr->instant(obs::Ev::kRunBegin, obs::kGlobal, sh.start_stage, -1, 0.0, dim,
                static_cast<std::int64_t>(sh.m));
  if (sh.opts.checkpoint)
    machine->run([&sh](sim::Ctx& ctx) { return sft_node(ctx, sh); },
                 [&sh](sim::HostCtx& host) { return ckpt_collector(host, sh); });
  else
    machine->run([&sh](sim::Ctx& ctx) { return sft_node(ctx, sh); });

  SortRun run;
  run.output = std::move(sh.output);
  run.errors = machine->errors();
  run.summary = machine->summary();
  if (sh.opts.checkpoint) run.checkpoints = certify_checkpoints(sh);
  if (sh.opts.record_link_events) run.link_events = machine->link_events();
  if (auto* tr = obs::tracer()) {
    for (const auto& ck : run.checkpoints)
      tr->instant(obs::Ev::kCkptCertify, obs::kHostNode, ck.stage, -1,
                  run.summary.elapsed, ck.certified ? 1 : 0, ck.windows_agreed);
    tr->instant(obs::Ev::kRunEnd, obs::kGlobal, -1, -1, run.summary.elapsed,
                static_cast<std::int64_t>(run.errors.size()),
                run.summary.watchdog_rounds);
  }
  return run;
}

}  // namespace

SortRun run_sft(int dim, std::span<const Key> input, const SftOptions& opts) {
  assert(input.size() == (std::size_t{1} << dim) * opts.block);
  SftShared sh;
  sh.opts = opts;
  sh.dim = dim;
  sh.m = opts.block;
  sh.input = input;  // view: the caller's buffer outlives the run
  sh.output.assign(input.size(), 0);
  return run_sft_impl(dim, sh);
}

// Declared in sort/driver.h next to ResumeState; lives here with the node
// program it re-enters.
SortRun resume_sft(int dim, const ResumeState& rs, const SftOptions& opts) {
  assert(rs.stage >= 1 && rs.stage < dim);
  assert(rs.blocks.size() == (std::size_t{1} << dim) * opts.block);
  assert(rs.llbs.size() == rs.blocks.size());
  SftShared sh;
  sh.opts = opts;
  sh.dim = dim;
  sh.m = opts.block;
  sh.start_stage = rs.stage;
  sh.resume_llbs = rs.llbs;  // views into the caller's ResumeState
  sh.input = rs.blocks;
  sh.output.assign(rs.blocks.size(), 0);
  return run_sft_impl(dim, sh);
}

namespace detail {

int run_sft_shm_node(transport::ShmSegment& seg, cube::NodeId p) {
  const transport::SegmentHeader& hd = seg.header();
  SftShared sh;
  sh.dim = static_cast<int>(hd.dim);
  sh.m = static_cast<std::size_t>(hd.block);
  sh.start_stage = hd.start_stage;
  sh.opts.block = sh.m;
  sh.opts.cost = hd.cost;
  sh.opts.check_progress = hd.check_progress != 0;
  sh.opts.check_feasibility = hd.check_feasibility != 0;
  sh.opts.check_consistency = hd.check_consistency != 0;
  sh.opts.check_exchange = hd.check_exchange != 0;
  sh.opts.checkpoint = hd.checkpoint != 0;
  sh.opts.record_link_events = hd.record_events != 0;
  sh.opts.node_faults = shm_detail::faults_from_segment(seg);
  sh.in_child = true;
  sh.input = seg.input();
  if (hd.with_resume) sh.resume_llbs = seg.llbs();
  sh.output.assign(sh.input.size(), 0);
  return sft_child_body(seg, p, sh);
}

int run_sft_tcp_node(transport::TcpNodeEndpoint& ep, cube::NodeId p) {
  const transport::TcpConfigHead& hd = ep.config();
  SftShared sh;
  sh.dim = static_cast<int>(hd.dim);
  sh.m = static_cast<std::size_t>(hd.block);
  sh.start_stage = hd.start_stage;
  sh.opts.block = sh.m;
  sh.opts.cost = hd.cost;
  sh.opts.check_progress = hd.check_progress != 0;
  sh.opts.check_feasibility = hd.check_feasibility != 0;
  sh.opts.check_consistency = hd.check_consistency != 0;
  sh.opts.check_exchange = hd.check_exchange != 0;
  sh.opts.checkpoint = hd.checkpoint != 0;
  sh.opts.record_link_events = hd.record_events != 0;
  sh.opts.node_faults = tcp_detail::faults_from_wire(ep.faults());
  sh.in_child = true;
  sh.input = ep.input();
  if (hd.with_resume) sh.resume_llbs = ep.llbs();
  sh.output.assign(sh.input.size(), 0);
  return sft_tcp_child_body(ep, p, sh);
}

}  // namespace detail

}  // namespace aoft::sort
