// S_FT — the reliable (fail-stop) hypercube bitonic sort (paper Fig. 3).
//
// S_FT runs the same compare-exchange schedule as S_NR, with three additions:
//
//   1. Piggybacked gossip.  Each node's element at the *start* of stage i is
//      disseminated across the stage's home subcube SC_{i+1} by appending the
//      node's collected sequence LBS to every message it already sends — no
//      extra messages, only longer ones (the paper's key efficiency claim).
//
//   2. Consistency on every receive (Φ_C).  The receiver knows, from the mask
//      algebra of hypercube/masks.h, exactly which entries the sender must
//      have collected.  Entries both sides hold travelled vertex-disjoint
//      routes and must agree; fresh entries are absorbed.  Because the active
//      node merges *before* replying, its reply re-delivers every entry the
//      passive partner already holds, which is where the cross-checking
//      redundancy comes from (DESIGN.md §4, fidelity note 2).
//
//   3. Stage-boundary verification (bit_compare = Φ_P ∘ Φ_F).  The collected
//      LBS must be bitonic over SC_{i+1}, and over the node's dim-i subcube
//      it must be a permutation of the previously validated LLBS.  A final
//      pure-exchange round re-disseminates the finished sort and re-verifies
//      it against the last validated bitonic sequence.
//
// Every violated assertion makes the node signal ERROR to the host and halt:
// the system is fail-stop built from Byzantine-faulty components (Thm 3).
//
// The exchange messages carry both halves of the compare-exchange result, so
// the passive partner can additionally assert that the pair was computed
// consistently (its own old block is contained in the returned merge and the
// merge is direction-sorted).  The paper's Fig. 3 sends the pair (a, b) for
// exactly this purpose; the check is the `check_exchange` knob below.

#pragma once

#include <functional>
#include <span>

#include "fault/fault_spec.h"
#include "hypercube/subcube.h"
#include "sim/cost_model.h"
#include "sim/machine.h"
#include "sort/driver.h"
#include "transport/backend.h"

namespace aoft::transport {
class ShmSegment;
class TcpNodeEndpoint;
}

namespace aoft::sort {

// One node's view at a stage boundary, for traces and the Figure-5 test.
struct StageSnapshot {
  cube::NodeId node = 0;
  int stage = 0;                 // completed stage index; dim for the final round
  cube::Subcube window;          // SC_{stage+1,node} (whole cube for the final round)
  std::vector<Key> lbs_window;   // collected LBS over the window, flattened
  std::vector<Key> llbs_window;  // previous validated sequence over the window
};

struct SftOptions {
  std::size_t block = 1;  // m: keys per node
  sim::CostModel cost{};

  // Predicate toggles, for the ablation benches.  All on for the real S_FT.
  bool check_progress = true;     // Φ_P
  bool check_feasibility = true;  // Φ_F
  bool check_consistency = true;  // Φ_C
  bool check_exchange = true;     // pair check on (a, b) replies

  sim::LinkInterceptor* interceptor = nullptr;  // Byzantine links
  fault::NodeFaultMap node_faults;              // Byzantine processors

  // Stage checkpointing (recovery supervisor, DESIGN §7).  At every validated
  // stage boundary each node uploads its window state to the reliable host:
  // the window's lowest label ships the full slice, every other member a
  // digest for cross-checking.  The host assembles and certifies per-stage
  // checkpoints into SortRun::checkpoints; a later resume_sft() re-enters the
  // sort at the last certified boundary instead of stage 0.
  bool checkpoint = false;

  // Copy the machine's per-message LinkEvent log (node-node and host links)
  // into SortRun::link_events.  For tests and traffic accounting; off by
  // default — the log grows with every message sent.
  bool record_link_events = false;

  // Invoked at every stage boundary of every node (small cubes only; the
  // snapshots copy the stage window).
  std::function<void(const StageSnapshot&)> observer;

  // Run on this caller-owned machine instead of constructing one: the machine
  // is reset() first (its key pool and channel storage stay warm), and its
  // topology dimension must match the sort's `dim`.  The campaign engine
  // keeps one machine per worker thread this way.  Owned by the caller; must
  // outlive the run.
  sim::Machine* machine = nullptr;

  // Which fabric carries the cube (docs/PROTOCOL.md §11).  kSim is the
  // deterministic single-process oracle; kShm runs one OS process per node
  // over shared-memory rings and must reproduce the oracle's sorted output
  // and fail-stop verdicts for identical fault scripts.  kShm rejects
  // `observer` and `machine` (both are in-process affordances a forked child
  // cannot share back) and is limited to dim <= transport::kMaxShmDim.
  transport::Backend backend = transport::Backend::kSim;
  transport::ShmOptions shm;

  // kTcp options: one OS process per node over framed loopback/LAN sockets,
  // with heartbeat-based peer-death detection in place of the shm parent's
  // waitpid authority (docs/PROTOCOL.md §13).  Same rejections and dim cap
  // as kShm.
  transport::TcpOptions tcp;
};

namespace detail {
// Exec-mode child entry (tools/aoft_node): run node `p`'s S_FT program
// against an attached segment, reconstructing the options from its header.
// Returns the child's exit code.
int run_sft_shm_node(transport::ShmSegment& seg, cube::NodeId p);
// Same for the tcp backend: the endpoint has already received its CONFIG
// (which is how aoft_node knew to dispatch here).
int run_sft_tcp_node(transport::TcpNodeEndpoint& ep, cube::NodeId p);
}  // namespace detail

// Sort `input` (flattened, size 2^dim * block) reliably.  The returned run is
// kCorrect or kFailStop for up to dim-1 faulty nodes (paper Thm 3) — the
// coverage campaign in bench/ verifies exactly that, and the unit tests
// exercise each predicate's detection separately.
SortRun run_sft(int dim, std::span<const Key> input, const SftOptions& opts = {});

}  // namespace aoft::sort
