// Common result type, outcome classification and the checkpoint/resume
// surface shared by all sorting runs.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/machine.h"
#include "sort/keys.h"

namespace aoft::sort {

// How a run ended, judged against the paper's reliability claim (Thm 3):
// a reliable algorithm may be kCorrect or kFailStop, never kSilentWrong.
enum class Outcome {
  kCorrect,     // terminated, output is the ascending sort of the input
  kFailStop,    // at least one processor signalled ERROR to the host
  kSilentWrong, // terminated without any error but the output is wrong
};

const char* to_string(Outcome o);

// One host-certified stage checkpoint (recovery supervisor, DESIGN §7).
// `state` is the full-cube flattened start-of-stage-`stage` state, assembled
// from the per-window uploads of S_FT's stage boundary; `certified` means
// every SC_{stage+1} window's representative slice matched every member's
// digest, the assembled state is a permutation of the run's start state, and
// every dim-`stage` subcube is sorted in its direction-bit orientation.
struct StageCheckpoint {
  int stage = -1;
  std::vector<Key> state;
  int windows_agreed = 0;
  int windows_total = 0;
  bool certified = false;
};

struct SortRun {
  std::vector<Key> output;  // flattened N*m keys, node p's block at [p*m, (p+1)*m)
  std::vector<sim::ErrorReport> errors;
  sim::RunSummary summary;
  std::vector<StageCheckpoint> checkpoints;  // when SftOptions::checkpoint
  std::vector<sim::LinkEvent> link_events;   // when SftOptions::record_link_events

  bool fail_stop() const { return !errors.empty(); }
};

// Classify a finished run against the original input.
Outcome classify(const SortRun& run, std::span<const Key> input);

// A consistent recovery line: re-enter S_FT at the start of `stage` with
// `blocks` (the certified start-of-stage state, C_stage) and `llbs` (the
// previous boundary's certified state, C_{stage-1}, consulted by the stage's
// own Phi_F evaluation).  Both are full-cube flattened (N*m keys).
struct ResumeState {
  int stage = 0;
  std::vector<Key> blocks;
  std::vector<Key> llbs;
};

// Build the deepest resume point available from a run's checkpoint list:
// the highest k >= 1 with both C_k and C_{k-1} certified.  nullopt when no
// such pair exists (then only a full restart can follow).
std::optional<ResumeState> make_resume_state(
    std::span<const StageCheckpoint> checkpoints);

struct SftOptions;  // sort/sft.h

// Resume-from-stage entry point: run the tail of S_FT (stages rs.stage..n-1
// plus the final verification round) from a certified checkpoint.  A resumed
// run is bit-identical, in output and in every downstream Phi evaluation, to
// the uninterrupted run that produced the checkpoint (defined in sft.cpp;
// tested by tests/integration/checkpoint_resume_test.cpp).
SortRun resume_sft(int dim, const ResumeState& rs, const SftOptions& opts);

}  // namespace aoft::sort
