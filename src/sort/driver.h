// Common result type and outcome classification for all sorting runs.

#pragma once

#include <span>
#include <vector>

#include "sim/machine.h"
#include "sort/keys.h"

namespace aoft::sort {

// How a run ended, judged against the paper's reliability claim (Thm 3):
// a reliable algorithm may be kCorrect or kFailStop, never kSilentWrong.
enum class Outcome {
  kCorrect,     // terminated, output is the ascending sort of the input
  kFailStop,    // at least one processor signalled ERROR to the host
  kSilentWrong, // terminated without any error but the output is wrong
};

const char* to_string(Outcome o);

struct SortRun {
  std::vector<Key> output;  // flattened N*m keys, node p's block at [p*m, (p+1)*m)
  std::vector<sim::ErrorReport> errors;
  sim::RunSummary summary;

  bool fail_stop() const { return !errors.empty(); }
};

// Classify a finished run against the original input.
Outcome classify(const SortRun& run, std::span<const Key> input);

}  // namespace aoft::sort
