// Host-based baselines (paper §§4–5).
//
// The paper weighs S_FT against two host-centred alternatives:
//
//   * host sort — ship all data to the host, sort there, ship it back.  The
//     paper deliberately times the host "sort" as a single if-statement
//     executed N·log2 N times (the theoretical comparison minimum), so the
//     baseline is as favourable to the host as possible; we do the same by
//     charging host_cmp · K·log2 K ticks while producing the actual sorted
//     output with std::sort.  Communication is O(N) but pays the serial
//     per-word host-link cost both ways: the host is the bottleneck.
//
//   * host-verified parallel sort — nodes ship the unsorted data to the
//     host, sort among themselves with the unprotected S_NR, then ship the
//     result to the host, which applies the Theorem-1 assertion (output is a
//     permutation of input and non-decreasing).  Centralized fault
//     *detection* at O(N) communication and O(N·log N) host computation.
//
// Both appear in Figures 6–8 as the comparison series.

#pragma once

#include <span>

#include "fault/fault_spec.h"
#include "sim/cost_model.h"
#include "sim/machine.h"
#include "sort/driver.h"

namespace aoft::sort {

struct HostSortOptions {
  std::size_t block = 1;
  sim::CostModel cost{};
};

// Gather -> host sort -> scatter.  Reliable by assumption (host and host
// links are non-faulty), and entirely serialized through the host.
SortRun run_host_sort(int dim, std::span<const Key> input,
                      const HostSortOptions& opts = {});

struct HostVerifyOptions {
  std::size_t block = 1;
  sim::CostModel cost{};
  sim::LinkInterceptor* interceptor = nullptr;  // faults hit the S_NR phase
  fault::NodeFaultMap node_faults;
};

// Nodes run S_NR; the host applies the Theorem-1 output assertion.  If the
// check fails the run is marked fail-stop (an ErrorReport from the host side
// appears in the result).  Detects corrupted *final* output, but only at
// termination and only at the host — the contrast motivating S_FT.
SortRun run_host_verified_snr(int dim, std::span<const Key> input,
                              const HostVerifyOptions& opts = {});

}  // namespace aoft::sort
