// Internal glue between the sort drivers and the socket backend: FINISH
// publication from the node side, result assembly on the host side.  Used by
// sft.cpp and snr.cpp only; shares the WireFault conversions and the
// canonical link-event order with the shm glue (sort/shm_detail.h), which is
// what makes the three backends' SortRuns byte-comparable.

#pragma once

#include <algorithm>
#include <vector>

#include "sort/shm_detail.h"
#include "transport/tcp_transport.h"

namespace aoft::sort::tcp_detail {

inline std::vector<transport::WireFault> wire_faults_of(
    const fault::NodeFaultMap& faults, cube::NodeId num_nodes) {
  std::vector<transport::WireFault> out(num_nodes);
  for (const auto& [p, f] : faults)
    if (p < num_nodes) out[p] = shm_detail::wire_fault_of(f);
  return out;
}

inline fault::NodeFaultMap faults_from_wire(
    std::span<const transport::WireFault> wire) {
  fault::NodeFaultMap out;
  for (cube::NodeId p = 0; p < wire.size(); ++p) {
    fault::NodeFault f = shm_detail::node_fault_of(wire[p]);
    if (f.any()) out.emplace(p, f);
  }
  return out;
}

// Node-side terminal publication: stats, error reports, link events and the
// output block ride the FINISH frame (the tcp analogue of finish_shm_node +
// the output copy + the kDone store, in one shot — a FINISH is only ever
// sent complete).
inline void finish_tcp_node(transport::TcpNodeEndpoint& ep, cube::NodeId p,
                            const sim::Machine& mach,
                            std::span<const sim::Key> out_block,
                            bool record_events) {
  transport::FinishHead head;
  const sim::NodeStats& st = mach.node_stats(p);
  head.clock = st.clock;
  head.comp_ticks = st.comp_ticks;
  head.comm_ticks = st.comm_ticks;
  head.msgs_sent = st.msgs_sent;
  head.words_sent = st.words_sent;
  head.watchdog_rounds =
      static_cast<std::uint32_t>(mach.summary().watchdog_rounds);

  std::vector<transport::WireError> errors;
  for (const sim::ErrorReport& e : mach.errors()) {
    if (errors.size() >= transport::kMaxSlotErrors) {
      ++head.error_overflow;
      continue;
    }
    transport::WireError w;
    w.stage = e.stage;
    w.iter = e.iter;
    w.source = static_cast<std::uint8_t>(e.source);
    std::snprintf(w.detail, sizeof w.detail, "%s", e.detail.c_str());
    errors.push_back(w);
  }

  std::vector<transport::WireLinkEvent> events;
  if (record_events) {
    events.reserve(mach.link_events().size());
    for (const sim::LinkEvent& e : mach.link_events()) {
      transport::WireLinkEvent w;
      w.from = static_cast<std::int32_t>(e.from);
      w.to = static_cast<std::int32_t>(e.to);
      w.kind = static_cast<std::uint8_t>(e.kind);
      w.delivered = e.delivered ? 1 : 0;
      w.to_host = e.to_host ? 1 : 0;
      w.from_host = e.from_host ? 1 : 0;
      w.stage = e.stage;
      w.iter = e.iter;
      w.words = e.words;
      events.push_back(w);
    }
  }

  ep.finish(transport::SlotState::kDone, head, errors, events, out_block);
}

// Node-side terminal failure: the tcp analogue of shm_detail::fail_child.
inline int fail_tcp_node(transport::TcpNodeEndpoint& ep, cube::NodeId p,
                         const char* what) {
  transport::FinishHead head;
  std::snprintf(head.fail_reason, sizeof head.fail_reason, "%s", what);
  (void)p;
  ep.finish(transport::SlotState::kFailed, head, {}, {}, {});
  return 1;
}

// Host-side assembly after every node is terminal: mirrors
// shm_detail::collect_shm_results field for field — a node the watchdog had
// to declare dead published nothing, and the fault stays visible through its
// peers' kTimeout reports, like a sim halt.
inline void collect_tcp_results(transport::TcpHostEndpoint& host, int dim,
                                SortRun& run, std::size_t m,
                                bool record_events) {
  const cube::NodeId n = cube::NodeId{1} << dim;
  run.output.assign(static_cast<std::size_t>(n) * m, 0);
  for (cube::NodeId p = 0; p < n; ++p) {
    const transport::TcpSlot& slot = host.slot(p);
    if (slot.output.size() == m)
      std::copy(slot.output.begin(), slot.output.end(),
                run.output.begin() + static_cast<std::ptrdiff_t>(p * m));
    for (const transport::WireError& w : slot.errors) {
      sim::ErrorReport r;
      r.node = p;
      r.stage = w.stage;
      r.iter = w.iter;
      r.source = static_cast<sim::ErrorSource>(w.source);
      r.detail = w.detail;
      run.errors.push_back(std::move(r));
    }
    run.summary.elapsed = std::max(run.summary.elapsed, slot.head.clock);
    run.summary.max_comm = std::max(run.summary.max_comm, slot.head.comm_ticks);
    run.summary.max_comp = std::max(run.summary.max_comp, slot.head.comp_ticks);
    run.summary.total_msgs += slot.head.msgs_sent;
    run.summary.total_words += slot.head.words_sent;
    run.summary.watchdog_rounds +=
        static_cast<int>(slot.head.watchdog_rounds);
    if (record_events) {
      for (const transport::WireLinkEvent& w : slot.events) {
        sim::LinkEvent ev;
        ev.from = static_cast<cube::NodeId>(w.from);
        ev.to = static_cast<cube::NodeId>(w.to);
        ev.kind = static_cast<sim::MsgKind>(w.kind);
        ev.stage = w.stage;
        ev.iter = w.iter;
        ev.words = w.words;
        ev.delivered = w.delivered != 0;
        ev.to_host = w.to_host != 0;
        ev.from_host = w.from_host != 0;
        run.link_events.push_back(ev);
      }
    }
  }
  if (record_events) shm_detail::canonicalize_link_events(run.link_events);
}

}  // namespace aoft::sort::tcp_detail
