// NEON kernels: 2 x 64-bit Key lanes (aarch64 only).
//
// Advanced SIMD is architecturally baseline on aarch64, so this TU needs no
// extra compile flags — it is simply only added to the build on that target
// (src/sort/CMakeLists.txt).  With 2-wide vectors the wins are in the wide
// linear scans; run_break and mismatch are vectorized here, while the
// pointer-chasing kernels (phi_f_scan, merge, includes) delegate to the
// scalar reference — delegation is invisible under the bit-identity contract
// (tests/sort/kernels_fuzz_test.cpp exercises this table like any other).

#include <arm_neon.h>

#include <cstddef>

#include "sort/kernels.h"

namespace aoft::sort::kernels {

namespace {

std::size_t run_break_neon(const Key* v, std::size_t n, bool non_decreasing) {
  if (n < 2) return n;
  const std::size_t pairs = n - 1;
  std::size_t k = 0;
  for (; k + 2 <= pairs; k += 2) {
    const int64x2_t x = vld1q_s64(v + k);
    const int64x2_t y = vld1q_s64(v + k + 1);
    const uint64x2_t bad = non_decreasing ? vcgtq_s64(x, y) : vcgtq_s64(y, x);
    if (vgetq_lane_u64(bad, 0)) return k;
    if (vgetq_lane_u64(bad, 1)) return k + 1;
  }
  for (; k < pairs; ++k) {
    const bool bad = non_decreasing ? v[k + 1] < v[k] : v[k + 1] > v[k];
    if (bad) return k;
  }
  return n;
}

std::size_t mismatch_neon(const Key* a, const Key* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_s64(vld1q_s64(a + i), vld1q_s64(b + i));
    if (!vgetq_lane_u64(eq, 0)) return i;
    if (!vgetq_lane_u64(eq, 1)) return i + 1;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return i;
  return n;
}

std::int64_t phi_f_scan_neon(const Key* llbs, const Key* lbs, std::size_t size,
                             bool ascending) {
  return detail::scalar_table().phi_f_scan(llbs, lbs, size, ascending);
}

void merge_neon(const Key* a, std::size_t la, const Key* b, std::size_t lb,
                bool ascending, Key* out) {
  detail::scalar_table().merge(a, la, b, lb, ascending, out);
}

bool includes_neon(const Key* super, std::size_t ls, const Key* sub,
                   std::size_t lb, bool ascending) {
  return detail::scalar_table().includes(super, ls, sub, lb, ascending);
}

constexpr KernelTable kNeonTable{run_break_neon, mismatch_neon,
                                 phi_f_scan_neon, merge_neon, includes_neon};

}  // namespace

namespace detail {
const KernelTable& neon_table() { return kNeonTable; }
}  // namespace detail

}  // namespace aoft::sort::kernels
