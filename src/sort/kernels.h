// Vectorized kernels under the predicates and block operations.
//
// The paper prices S_FT's fault tolerance almost entirely in predicate
// evaluations and block merges (Thm 4) — these five kernels ARE that cost,
// flattened to contiguous Key (= std::int64_t) arrays:
//
//   run_break    Φ_P bitonic-run scan (first out-of-order pair)
//   mismatch     Φ_C redundant-copy word compare (first differing word)
//   phi_f_scan   Φ_F completeness check (two-run head matching)
//   merge        blockops merge-split (two directional runs -> one)
//   includes     blockops sub-multiset containment (directional)
//
// Each has a scalar reference plus AVX2 (4x64) and NEON (2x64)
// implementations selected once at runtime through a function-pointer table
// (util/simd.h).  The dispatch contract is strict bit-identity: every path
// returns the same verdicts, the same first-failure positions and the same
// output bytes as the scalar reference, on every input — enforced by
// tests/sort/kernels_fuzz_test.cpp across all paths the host can execute.
// Both SIMD tables vectorize the wide scans (run_break, mismatch) and
// delegate the pointer-chasing kernels to scalar — measured, not assumed:
// the 4-wide bitonic merge and galloped scans lost to the branchless scalar
// loops on every size (see kernels_avx2.cpp and bench/micro_predicates).
// Delegation is indistinguishable by the contract above.
//
// Kernels take raw pointers, not spans, so the dispatch table stays a plain
// struct of function pointers; the inline span wrappers below are the
// intended call surface.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/pool.h"
#include "util/simd.h"

namespace aoft::sort::kernels {

using sim::Key;

struct KernelTable {
  // Index of the first k with the pair (v[k], v[k+1]) out of order for the
  // given direction, or n when the whole array is a clean run (n <= 1 trivially
  // is).
  std::size_t (*run_break)(const Key* v, std::size_t n, bool non_decreasing);

  // Index of the first a[i] != b[i], or n when the prefixes agree.
  std::size_t (*mismatch)(const Key* a, const Key* b, std::size_t n);

  // Φ_F completeness scan (sort/predicates.h): visit `lbs` in ascending value
  // order and consume the matching head of llbs' non-decreasing run [0, size/2)
  // — preferred — or non-increasing run [size/2, size).  Returns the
  // visit-order index of the first key matching neither head, or -1 when lbs
  // is complete w.r.t. llbs.  Requires size >= 2 (the caller handles 0/1).
  std::int64_t (*phi_f_scan)(const Key* llbs, const Key* lbs, std::size_t size,
                             bool ascending);

  // Merge two runs sorted in direction `ascending` into out[0, la+lb).
  // `out` must not alias the inputs.
  void (*merge)(const Key* a, std::size_t la, const Key* b, std::size_t lb,
                bool ascending, Key* out);

  // True iff `sub` is a sub-multiset of `super`, both sorted in direction
  // `ascending` (std::includes semantics).
  bool (*includes)(const Key* super, std::size_t ls, const Key* sub,
                   std::size_t lb, bool ascending);
};

// The table for the active dispatch path.  The path is resolved once per
// process on first use (util::simd::detect(), honoring AOFT_SIMD) and then
// only changes through force_path().
const KernelTable& table();

// The table for a specific path; throws std::runtime_error when that path is
// not compiled in or not executable on this host.
const KernelTable& table_for(util::simd::Path path);

// The path table() dispatches to.
util::simd::Path active_path();

// Pin dispatch to `path` (tests, benches, --simd= flag).  Throws like
// table_for on an unavailable path.  Not safe to call while kernels run on
// other threads — force before fanning work out.
void force_path(util::simd::Path path);

namespace detail {
// Per-path tables.  scalar_table() always exists; the SIMD tables are defined
// only when their translation unit is compiled in (AOFT_SIMD CMake option +
// matching target arch) and are referenced only under the matching macro.
const KernelTable& scalar_table();
const KernelTable& avx2_table();
const KernelTable& neon_table();
}  // namespace detail

// ---- span-based call surface -------------------------------------------

inline std::size_t run_break(std::span<const Key> v, bool non_decreasing) {
  return table().run_break(v.data(), v.size(), non_decreasing);
}

// True iff `v` is one clean run in the given direction.
inline bool is_sorted_run(std::span<const Key> v, bool non_decreasing) {
  return run_break(v, non_decreasing) == v.size();
}

inline std::size_t mismatch(std::span<const Key> a, std::span<const Key> b) {
  return table().mismatch(a.data(), b.data(), a.size());
}

inline std::int64_t phi_f_scan(std::span<const Key> llbs,
                               std::span<const Key> lbs, bool ascending) {
  return table().phi_f_scan(llbs.data(), lbs.data(), lbs.size(), ascending);
}

inline void merge(std::span<const Key> a, std::span<const Key> b,
                  bool ascending, std::span<Key> out) {
  table().merge(a.data(), a.size(), b.data(), b.size(), ascending, out.data());
}

inline bool includes(std::span<const Key> super, std::span<const Key> sub,
                     bool ascending) {
  return table().includes(super.data(), super.size(), sub.data(), sub.size(),
                          ascending);
}

}  // namespace aoft::sort::kernels
