// Scalar reference kernels and the runtime dispatch table.
//
// The scalar implementations below are the semantic ground truth: the SIMD
// translation units (kernels_avx2.cpp, kernels_neon.cpp) must reproduce their
// results bit for bit, including first-failure positions.  Keep them boring —
// every branch here is part of the contract the fuzz suite enforces.

#include "sort/kernels.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>

namespace aoft::sort::kernels {

namespace {

std::size_t run_break_scalar(const Key* v, std::size_t n, bool non_decreasing) {
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const bool bad = non_decreasing ? v[k + 1] < v[k] : v[k + 1] > v[k];
    if (bad) return k;
  }
  return n;
}

std::size_t mismatch_scalar(const Key* a, const Key* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return i;
  return n;
}

std::int64_t phi_f_scan_scalar(const Key* llbs, const Key* lbs,
                               std::size_t size, bool ascending) {
  const std::size_t half = size / 2;
  // l walks the non-decreasing run forward, u walks the non-increasing run
  // backward; both visit values in ascending order.  Iterate the sorted lbs
  // in ascending order and consume the matching run head, l preferred.
  std::size_t l = 0;
  std::size_t u = size;  // one past the element `u-1` under consideration
  for (std::size_t step = 0; step < size; ++step) {
    const std::size_t idx = ascending ? step : size - 1 - step;
    const Key key = lbs[idx];
    if (l < half && key == llbs[l]) {
      ++l;
    } else if (u > half && key == llbs[u - 1]) {
      --u;
    } else {
      return static_cast<std::int64_t>(idx);
    }
  }
  return -1;
}

void merge_scalar(const Key* a, std::size_t la, const Key* b, std::size_t lb,
                  bool ascending, Key* out) {
  if (ascending)
    std::merge(a, a + la, b, b + lb, out);
  else
    std::merge(a, a + la, b, b + lb, out, std::greater<Key>{});
}

bool includes_scalar(const Key* super, std::size_t ls, const Key* sub,
                     std::size_t lb, bool ascending) {
  if (ascending) return std::includes(super, super + ls, sub, sub + lb);
  return std::includes(super, super + ls, sub, sub + lb, std::greater<Key>{});
}

constexpr KernelTable kScalarTable{run_break_scalar, mismatch_scalar,
                                   phi_f_scan_scalar, merge_scalar,
                                   includes_scalar};

// Published (table, path) pair.  First table() call detects and publishes;
// force_path republishes.  Concurrent first-use is a benign race (every
// thread detects the same path); force_path during concurrent kernel use is
// documented as unsupported.
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<util::simd::Path> g_path{util::simd::Path::kScalar};

}  // namespace

namespace detail {
const KernelTable& scalar_table() { return kScalarTable; }
}  // namespace detail

const KernelTable& table_for(util::simd::Path path) {
  switch (path) {
    case util::simd::Path::kScalar:
      return kScalarTable;
    case util::simd::Path::kAvx2:
#ifdef AOFT_SIMD_AVX2
      if (util::simd::supported(path)) return detail::avx2_table();
#endif
      break;
    case util::simd::Path::kNeon:
#ifdef AOFT_SIMD_NEON
      if (util::simd::supported(path)) return detail::neon_table();
#endif
      break;
  }
  throw std::runtime_error(
      std::string("kernels: dispatch path '") + util::simd::to_string(path) +
      "' is not available in this build/host (AOFT_SIMD option, architecture, "
      "or cpuid)");
}

const KernelTable& table() {
  if (const KernelTable* t = g_table.load(std::memory_order_acquire)) return *t;
  const util::simd::Path path = util::simd::detect();
  const KernelTable& chosen = table_for(path);
  g_path.store(path, std::memory_order_relaxed);
  g_table.store(&chosen, std::memory_order_release);
  return chosen;
}

util::simd::Path active_path() {
  (void)table();  // ensure detection ran
  return g_path.load(std::memory_order_relaxed);
}

void force_path(util::simd::Path path) {
  const KernelTable& chosen = table_for(path);  // throws when unavailable
  g_path.store(path, std::memory_order_relaxed);
  g_table.store(&chosen, std::memory_order_release);
}

}  // namespace aoft::sort::kernels
