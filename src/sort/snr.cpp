// S_NR (paper Fig. 2) and the host-verified S_NR baseline of sequential.h —
// the latter lives here because it wraps the same node program with a
// gather/verify epilogue.

#include "sort/snr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "hypercube/subcube.h"
#include "sort/blockops.h"
#include "sort/sequential.h"
#include "sort/shm_detail.h"
#include "sort/tcp_detail.h"
#include "transport/process.h"
#include "transport/shm_transport.h"
#include "transport/tcp_transport.h"

namespace aoft::sort {

namespace {

struct SnrShared {
  std::size_t m = 1;
  sim::CostModel cost{};
  fault::NodeFaultMap node_faults;
  int dim = 0;
  bool with_host = false;  // host-verified variant: gather + Theorem-1 check
  bool in_child = false;   // shm backend: this copy runs inside a node process
  sim::LinkInterceptor* interceptor = nullptr;  // carried for fork children
  std::span<const Key> input;  // view into caller storage, alive for the run
  std::vector<Key> output;

  const fault::NodeFault* fault_for(cube::NodeId p) const {
    auto it = node_faults.find(p);
    return it == node_faults.end() ? nullptr : &it->second;
  }
};

// Cost of the initial local sort: m·log2(m) comparisons (zero for m = 1).
double local_sort_cost(const sim::CostModel& cm, std::size_t m) {
  return m > 1 ? cm.cmp * static_cast<double>(m) * std::log2(static_cast<double>(m))
               : 0.0;
}

sim::SimTask snr_node(sim::Ctx& ctx, SnrShared& sh) {
  const cube::NodeId me = ctx.id();
  const int n = sh.dim;
  const std::size_t m = sh.m;
  const auto& cm = sh.cost;
  const fault::NodeFault* fault = sh.fault_for(me);

  sim::KeyBuf a(ctx.pool());
  a.assign(sh.input.begin() + static_cast<std::ptrdiff_t>(me * m),
           sh.input.begin() + static_cast<std::ptrdiff_t>((me + 1) * m));
  // Merge-split scratch, reused across every iteration of every stage.
  sim::KeyBuf merged(ctx.pool());
  auto write_out = [&] {
    std::copy(a.begin(), a.end(),
              sh.output.begin() + static_cast<std::ptrdiff_t>(me * m));
  };

  if (sh.with_host) {
    sim::Message up(ctx.pool());
    up.kind = sim::MsgKind::kHostGather;
    up.tag = 0;  // unsorted input
    up.data = a;
    ctx.send_host(std::move(up));
  }

  bool completed = true;
  bool cur_asc = n > 0 ? cube::stage_ascending(me, 0) : true;
  blockops::sort_dir(a, cur_asc);
  ctx.charge(local_sort_cost(cm, m));

  for (int i = 0; i < n && completed; ++i) {
    bool asc = cube::stage_ascending(me, i);
    if (fault && fault->invert_direction_from &&
        fault::reached(*fault->invert_direction_from, i, i))
      asc = !asc;
    if (fault && fault->substitute_at && fault->substitute_at->stage == i) {
      a[0] = fault->substitute_value;
      blockops::sort_dir(a, cur_asc);
    }
    if (asc != cur_asc) {
      blockops::reverse_block(a);
      ctx.charge(cm.copy * static_cast<double>(m));
      cur_asc = asc;
    }

    for (int j = i; j >= 0; --j) {
      if (fault && fault->halt_at && fault::reached(*fault->halt_at, i, j)) {
        if (fault->kill_process && sh.in_child) transport::kill_self();
        if (fault->wedge_process && sh.in_child) transport::wedge_self();
        write_out();
        co_return;  // fail-silent: peers see message absence
      }
      const cube::NodeId partner = me ^ (cube::NodeId{1} << j);
      const bool active = !cube::node_bit(me, j);
      if (active) {
        auto r = co_await ctx.recv(partner);
        if (!r.ok) {  // absent message: S_NR has no checks, halt silently
          completed = false;
          break;
        }
        ctx.account_recv(r.msg);
        sim::KeyBuf theirs = std::move(r.msg.data);
        if (theirs.size() != m) theirs.resize(m, 0);  // Byzantine garbage
        if (!blockops::is_sorted_dir(theirs, cur_asc))
          blockops::sort_dir(theirs, cur_asc);  // S_NR trusts, repairs shape only
        merged.resize(2 * m);
        blockops::merge_dir_into(a, theirs, cur_asc, merged);
        ctx.charge(cm.cmp * static_cast<double>(2 * m));
        sim::Message reply(ctx.pool());
        reply.kind = sim::MsgKind::kData;
        reply.stage = i;
        reply.iter = j;
        reply.data.assign(merged.begin() + static_cast<std::ptrdiff_t>(m),
                          merged.end());
        a.assign(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(m));
        ctx.send(partner, std::move(reply));
      } else {
        sim::Message msg(ctx.pool());
        msg.kind = sim::MsgKind::kData;
        msg.stage = i;
        msg.iter = j;
        msg.data = a;
        ctx.send(partner, std::move(msg));
        auto r = co_await ctx.recv(partner);
        if (!r.ok) {
          completed = false;
          break;
        }
        ctx.account_recv(r.msg);
        a = std::move(r.msg.data);
        if (a.size() != m) a.resize(m, 0);
        if (!blockops::is_sorted_dir(a, cur_asc)) blockops::sort_dir(a, cur_asc);
      }
    }
  }
  write_out();

  if (sh.with_host && completed) {
    sim::Message up(ctx.pool());
    up.kind = sim::MsgKind::kHostGather;
    up.tag = 1;  // claimed-sorted output
    up.data = a;
    ctx.send_host(std::move(up));
    auto verdict = co_await ctx.recv_host();
    if (!verdict.ok) {
      ctx.error({0, n, -1, sim::ErrorSource::kTimeout, "no verdict from host"});
      co_return;
    }
    ctx.account_recv(verdict.msg);
    if (verdict.msg.tag != 1)
      ctx.error({0, n, -1, sim::ErrorSource::kApp,
                 "host rejected output (Theorem 1 assertion failed)"});
  }
  co_return;
}

// Host side of the host-verified variant: collect input and output, apply the
// Theorem-1 assertion (output non-decreasing and a permutation of the input),
// and broadcast the verdict.
sim::SimTask verify_host(sim::HostCtx& host, SnrShared& sh) {
  const std::size_t num_nodes = std::size_t{1} << sh.dim;
  const std::size_t m = sh.m;
  const std::size_t total = num_nodes * m;
  std::vector<Key> initial(total, 0), sorted(total, 0);
  std::vector<bool> got_sorted(num_nodes, false);

  bool complete = true;
  for (std::size_t msgs = 0; msgs < 2 * num_nodes; ++msgs) {
    auto r = co_await host.recv();
    if (!r.ok) {  // some node never reported: treat as failed verification
      complete = false;
      break;
    }
    host.account_recv(r.msg);
    if (r.msg.kind != sim::MsgKind::kHostGather) continue;  // stray error report
    auto& dst = r.msg.tag == 0 ? initial : sorted;
    if (r.msg.tag == 1) got_sorted[r.msg.from] = true;
    std::copy(r.msg.data.begin(), r.msg.data.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(r.msg.from * m));
  }

  bool ok = complete;
  if (ok) {
    // Theorem 1, part 2: non-decreasing output.
    host.charge(sh.cost.host_cmp * static_cast<double>(total));
    ok = is_non_decreasing(sorted);
  }
  if (ok) {
    // Theorem 1, part 1: output is a permutation of the input.  Matching the
    // two lists is equivalent to finding the permutation: O(K·log K).
    const double k = static_cast<double>(total);
    host.charge(sh.cost.host_cmp * (k * std::log2(std::max(k, 2.0)) + k));
    ok = is_permutation_of(sorted, initial);
  }

  if (!ok)
    host.error({0, sh.dim, -1, sim::ErrorSource::kApp,
                complete ? "Theorem 1 assertion failed on uploaded output"
                         : "some node never uploaded its output"});

  for (cube::NodeId p = 0; p < num_nodes; ++p) {
    if (!got_sorted[p]) continue;  // node died mid-protocol; nothing to answer
    sim::Message down;
    down.kind = sim::MsgKind::kHostScatter;
    down.tag = ok ? 1 : 0;
    host.send(p, std::move(down));
  }
  co_return;
}

SortRun finish(sim::Machine& machine, SnrShared& sh) {
  SortRun run;
  run.output = std::move(sh.output);
  run.errors = machine.errors();
  run.summary = machine.summary();
  return run;
}

// ---- shared-memory backend --------------------------------------------------

int snr_child_body(transport::ShmSegment& seg, cube::NodeId p, SnrShared& sh) {
  transport::NodeSlot& slot = seg.slot(p);
  try {
    sim::Machine mach(cube::Topology{sh.dim}, sh.cost);
    transport::ShmTransport link(seg, static_cast<std::int32_t>(p));
    mach.attach_remote(&link, static_cast<std::int32_t>(p));
    mach.set_interceptor(sh.interceptor);
    slot.state.store(static_cast<std::uint32_t>(transport::SlotState::kRunning),
                     std::memory_order_release);
    mach.run_remote_node(p, [&sh](sim::Ctx& ctx) { return snr_node(ctx, sh); });
    transport::finish_shm_node(seg, p, mach);
    const std::size_t m = sh.m;
    std::copy(sh.output.begin() + static_cast<std::ptrdiff_t>(p * m),
              sh.output.begin() + static_cast<std::ptrdiff_t>((p + 1) * m),
              seg.output().begin() + static_cast<std::ptrdiff_t>(p * m));
    slot.state.store(static_cast<std::uint32_t>(transport::SlotState::kDone),
                     std::memory_order_release);
    return 0;
  } catch (const std::exception& e) {
    return shm_detail::fail_child(seg, p, e.what());
  }
}

SortRun run_snr_shm(int dim, SnrShared& sh, const SnrOptions& opts) {
  if (opts.machine != nullptr)
    throw std::invalid_argument(
        "SnrOptions::machine is a single-process affordance; not available "
        "on the shm backend");

  transport::ShmSegment::Config cfg;
  cfg.dim = dim;
  cfg.block = sh.m;
  cfg.algo = 1;
  cfg.cost = sh.cost;
  cfg.recv_timeout_s = opts.shm.recv_timeout_s;
  cfg.run_deadline_s = opts.shm.run_deadline_s;
  auto seg = transport::ShmSegment::create(cfg);

  std::copy(sh.input.begin(), sh.input.end(), seg.input().begin());
  shm_detail::fill_wire_faults(seg, sh.node_faults);

  transport::ShmParent par(seg);
  sh.in_child = true;
  if (opts.shm.node_binary.empty())
    par.spawn_fork(
        [&](cube::NodeId p) { return snr_child_body(seg, p, sh); });
  else
    par.spawn_exec(opts.shm.node_binary);
  sh.in_child = false;
  par.await_all();

  SortRun run;
  shm_detail::collect_shm_results(seg, run, /*record_events=*/false);
  return run;
}

// ---- socket backend ---------------------------------------------------------

int snr_tcp_child_body(transport::TcpNodeEndpoint& ep, cube::NodeId p,
                       SnrShared& sh) {
  try {
    ep.connect_peers();
    sim::Machine mach(cube::Topology{sh.dim}, sh.cost);
    mach.attach_remote(&ep, static_cast<std::int32_t>(p));
    mach.set_interceptor(sh.interceptor);
    mach.run_remote_node(p, [&sh](sim::Ctx& ctx) { return snr_node(ctx, sh); });
    const std::size_t m = sh.m;
    tcp_detail::finish_tcp_node(
        ep, p, mach, std::span<const Key>(sh.output).subspan(p * m, m),
        /*record_events=*/false);
    return 0;
  } catch (const std::exception& e) {
    return tcp_detail::fail_tcp_node(ep, p, e.what());
  }
}

SortRun run_snr_tcp(int dim, SnrShared& sh, const SnrOptions& opts) {
  if (opts.machine != nullptr)
    throw std::invalid_argument(
        "SnrOptions::machine is a single-process affordance; not available "
        "on the tcp backend");
  if (dim > transport::kMaxProcessDim)
    throw std::invalid_argument("tcp backend supports dim <= " +
                                std::to_string(transport::kMaxProcessDim));
  if (const std::size_t cb =
          transport::config_frame_bytes(dim, sh.m, /*with_resume=*/false);
      cb > transport::kMaxFrameBytes)
    throw std::invalid_argument(
        "tcp: CONFIG for this job would be " + std::to_string(cb) +
        " bytes, beyond the " + std::to_string(transport::kMaxFrameBytes) +
        "-byte frame limit — shrink block or dim for the tcp backend");

  const cube::NodeId n = cube::NodeId{1} << dim;
  const auto& topts = opts.tcp;
  transport::TcpHostEndpoint host(dim, topts);
  transport::TcpParent par(dim, topts.run_deadline_s);
  host.set_host_poll([&par] { par.poll(); });
  const auto pins =
      topts.hosts_file.empty()
          ? std::vector<std::optional<transport::HostPin>>(n)
          : transport::parse_hosts_file(topts.hosts_file,
                                        static_cast<int>(n));

  const std::string parent_addr = host.addr();
  const std::uint16_t parent_port = host.port();
  sh.in_child = true;
  if (topts.node_binary.empty()) {
    const double setup_s = topts.run_deadline_s;
    par.spawn_fork(
        [&, setup_s](cube::NodeId p) {
          try {
            transport::TcpNodeEndpoint ep(
                p, parent_addr, parent_port,
                pins[p] ? pins[p]->addr : std::string("127.0.0.1"),
                pins[p] ? pins[p]->port : std::uint16_t{0}, setup_s);
            return snr_tcp_child_body(ep, p, sh);
          } catch (const std::exception&) {
            return 1;
          }
        },
        pins);
  } else {
    par.spawn_exec(topts.node_binary, parent_addr, parent_port, pins);
  }
  sh.in_child = false;

  host.rendezvous(topts.run_deadline_s);

  transport::TcpConfigHead head;
  head.block = sh.m;
  head.algo = 1;
  head.cost = sh.cost;
  const auto wire_faults = tcp_detail::wire_faults_of(sh.node_faults, n);
  host.broadcast_config(head, wire_faults, sh.input, {});

  host.await_all();
  par.await_exits();

  SortRun run;
  tcp_detail::collect_tcp_results(host, dim, run, sh.m,
                                  /*record_events=*/false);
  return run;
}

}  // namespace

SortRun run_snr(int dim, std::span<const Key> input, const SnrOptions& opts) {
  assert(input.size() == (std::size_t{1} << dim) * opts.block);
  SnrShared sh;
  sh.m = opts.block;
  sh.cost = opts.cost;
  sh.node_faults = opts.node_faults;
  sh.dim = dim;
  sh.interceptor = opts.interceptor;
  sh.input = input;
  sh.output.assign(input.size(), 0);

  if (opts.backend == transport::Backend::kShm)
    return run_snr_shm(dim, sh, opts);
  if (opts.backend == transport::Backend::kTcp)
    return run_snr_tcp(dim, sh, opts);

  std::optional<sim::Machine> owned;
  sim::Machine* machine = opts.machine;
  if (machine != nullptr) {
    if (machine->topo().dimension() != dim)
      throw std::invalid_argument(
          "SnrOptions::machine topology dimension does not match the sort");
    machine->reset(opts.cost);
  } else {
    owned.emplace(cube::Topology{dim}, opts.cost);
    machine = &*owned;
  }
  machine->set_interceptor(opts.interceptor);
  machine->run([&sh](sim::Ctx& ctx) { return snr_node(ctx, sh); });
  return finish(*machine, sh);
}

SortRun run_host_verified_snr(int dim, std::span<const Key> input,
                              const HostVerifyOptions& opts) {
  assert(input.size() == (std::size_t{1} << dim) * opts.block);
  SnrShared sh;
  sh.m = opts.block;
  sh.cost = opts.cost;
  sh.node_faults = opts.node_faults;
  sh.dim = dim;
  sh.with_host = true;
  sh.input = input;
  sh.output.assign(input.size(), 0);

  sim::Machine machine(cube::Topology{dim}, opts.cost);
  machine.set_interceptor(opts.interceptor);
  machine.run([&sh](sim::Ctx& ctx) { return snr_node(ctx, sh); },
              [&sh](sim::HostCtx& host) { return verify_host(host, sh); });
  return finish(machine, sh);
}

namespace detail {

int run_snr_shm_node(transport::ShmSegment& seg, cube::NodeId p) {
  const transport::SegmentHeader& hd = seg.header();
  SnrShared sh;
  sh.dim = static_cast<int>(hd.dim);
  sh.m = static_cast<std::size_t>(hd.block);
  sh.cost = hd.cost;
  sh.node_faults = shm_detail::faults_from_segment(seg);
  sh.in_child = true;
  sh.input = seg.input();
  sh.output.assign(sh.input.size(), 0);
  return snr_child_body(seg, p, sh);
}

int run_snr_tcp_node(transport::TcpNodeEndpoint& ep, cube::NodeId p) {
  const transport::TcpConfigHead& hd = ep.config();
  SnrShared sh;
  sh.dim = static_cast<int>(hd.dim);
  sh.m = static_cast<std::size_t>(hd.block);
  sh.cost = hd.cost;
  sh.node_faults = tcp_detail::faults_from_wire(ep.faults());
  sh.in_child = true;
  sh.input = ep.input();
  sh.output.assign(sh.input.size(), 0);
  return snr_tcp_child_body(ep, p, sh);
}

}  // namespace detail

}  // namespace aoft::sort
