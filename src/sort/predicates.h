// The constraint predicate Φ = (Φ_P, Φ_F, Φ_C) for bitonic sorting
// (paper §3, Figs. 4a–4c), as pure functions.
//
// The fault-tolerant sort S_FT gossips, during stage i, the values every node
// held at the *start* of the stage; the collected sequence LBS_i covers the
// node's home subcube SC_{i+1}.  At the end of the stage each node checks:
//
//   Φ_P (progress)    — LBS_i is bitonic: the lower dim-i half of the window
//                       is non-decreasing and the upper half non-increasing
//                       (the final verification checks a fully ascending
//                       sequence instead);
//   Φ_F (feasibility) — LBS_i restricted to the node's dim-i home subcube,
//                       which stage i-1 sorted, is a permutation of the
//                       previously validated LLBS_i over the same range.
//                       Because LLBS_i is bitonic, a permutation that is
//                       sorted must be its two-pointer merge, checkable in
//                       one linear pass without auxiliary storage;
//   Φ_C (consistency) — applied on every message: the received copy of each
//                       already-collected element must equal the local copy,
//                       so a Byzantine sender cannot tell different peers
//                       different stories (copies travel vertex-disjoint
//                       paths; see hypercube/routing.h).
//
// Everything is expressed over *flattened* key arrays so the block variant
// (m keys per node, paper §5) reuses the same code: a window of 2^{i+1} nodes
// with m keys each is a flat span of 2^{i+1}·m keys, and every predicate
// "scales by m" exactly as the paper states.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "hypercube/masks.h"
#include "hypercube/subcube.h"
#include "sort/keys.h"
#include "util/bitvec.h"

namespace aoft::sort {

using util::BitVec;

// A failed executable assertion, with enough context for the fail-stop
// diagnostic sent to the host.
struct Violation {
  std::string what;        // human-readable cause
  std::int64_t position;   // flattened index (or node label) it anchors to
};

// --- Φ_P: progress -----------------------------------------------------------

// Check that `window_vals` (the LBS slice over a window of `2h` nodes,
// m keys each, flattened) is bitonic: first half non-decreasing, second half
// non-increasing.  With `final_stage` the whole window must be non-decreasing
// (the paper's "i != n" guard in Fig. 4a).
std::optional<Violation> phi_p(std::span<const Key> window_vals, bool final_stage);

// --- Φ_F: feasibility --------------------------------------------------------

// Check that `lbs_inner` (sorted; ascending iff `ascending`) is a permutation
// of the bitonic `llbs_inner` (non-decreasing first half, non-increasing
// second half).  Both spans cover the same dim-i home subcube, flattened.
// One linear two-pointer pass (paper Fig. 4b); duplicates are handled by
// preferring the ascending run, which is safe because equal keys are
// interchangeable.
std::optional<Violation> phi_f(std::span<const Key> llbs_inner,
                               std::span<const Key> lbs_inner, bool ascending);

// --- Φ_C: consistency --------------------------------------------------------

// Outcome of merging one received LBS slice into the local collection.
struct MergeStats {
  std::uint64_t absorbed = 0;  // entries newly copied from the sender
  std::uint64_t checked = 0;   // entries cross-checked against a local copy
};

// Merge the received slice `recv_slice` (covering `window`, flattened with
// m = block keys per node) into `local` (a full-cube flattened array).
// `sender_cover` marks the node labels whose entries the sender had actually
// collected when it sent; `local_cover` marks the labels already collected
// locally.  Entries in both covers are compared (consistency: they travelled
// vertex-disjoint routes); entries only the sender has are absorbed.
// On success `local_cover` grows by `sender_cover`.
//
// Returns a violation on the first mismatch (paper Fig. 4c ERROR).
std::optional<Violation> phi_c_merge(std::span<Key> local, BitVec& local_cover,
                                     std::span<const Key> recv_slice,
                                     const BitVec& sender_cover,
                                     const cube::Subcube& window, std::size_t m,
                                     MergeStats* stats = nullptr);

// --- bit_compare -------------------------------------------------------------

// The paper's bit_compare: Φ_P over the stage window followed by Φ_F over the
// inner home subcube (Fig. 3 / Lemma 4).  `lbs` and `llbs` are full-cube
// flattened arrays; `outer` is SC_{i+1,node}; `inner` is SC_{i,node};
// `inner_ascending` is the direction stage i-1 sorted the inner subcube.
std::optional<Violation> bit_compare(std::span<const Key> llbs,
                                     std::span<const Key> lbs,
                                     const cube::Subcube& outer,
                                     const cube::Subcube& inner,
                                     bool inner_ascending, bool final_stage,
                                     std::size_t m);

}  // namespace aoft::sort
