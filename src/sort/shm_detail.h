// Internal glue between the sort drivers and the shared-memory backend:
// fault-script (de)serialization through the segment, child-side guard, and
// parent-side result assembly.  Used by sft.cpp and snr.cpp only.

#pragma once

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "fault/fault_spec.h"
#include "sort/driver.h"
#include "transport/process.h"
#include "transport/shm_segment.h"

namespace aoft::sort::shm_detail {

// fault::NodeFault <-> POD conversions, shared with the tcp glue
// (sort/tcp_detail.h) — the CONFIG broadcast carries the same WireFault rows
// the shm segment stores.
inline transport::WireFault wire_fault_of(const fault::NodeFault& f) {
  transport::WireFault w;
  if (f.halt_at) {
    w.has_halt = 1;
    w.halt_stage = f.halt_at->stage;
    w.halt_iter = f.halt_at->iter;
  }
  if (f.invert_direction_from) {
    w.has_invert = 1;
    w.invert_stage = f.invert_direction_from->stage;
    w.invert_iter = f.invert_direction_from->iter;
  }
  if (f.substitute_at) {
    w.has_subst = 1;
    w.subst_stage = f.substitute_at->stage;
    w.subst_iter = f.substitute_at->iter;
  }
  w.subst_value = f.substitute_value;
  w.silent_checker = f.silent_checker ? 1 : 0;
  w.kill_process = f.kill_process ? 1 : 0;
  w.wedge_process = f.wedge_process ? 1 : 0;
  return w;
}

inline fault::NodeFault node_fault_of(const transport::WireFault& w) {
  fault::NodeFault f;
  if (w.has_halt) f.halt_at = fault::StagePoint{w.halt_stage, w.halt_iter};
  if (w.has_invert)
    f.invert_direction_from = fault::StagePoint{w.invert_stage, w.invert_iter};
  if (w.has_subst)
    f.substitute_at = fault::StagePoint{w.subst_stage, w.subst_iter};
  f.substitute_value = w.subst_value;
  f.silent_checker = w.silent_checker != 0;
  f.kill_process = w.kill_process != 0;
  f.wedge_process = w.wedge_process != 0;
  return f;
}

inline void fill_wire_faults(transport::ShmSegment& seg,
                             const fault::NodeFaultMap& faults) {
  for (const auto& [p, f] : faults) {
    if (p >= seg.num_nodes()) continue;
    seg.fault(p) = wire_fault_of(f);
  }
}

// Exec-mode children rebuild their NodeFaultMap from the segment (fork-mode
// children inherit the parent's map copy-on-write and never call this).
inline fault::NodeFaultMap faults_from_segment(transport::ShmSegment& seg) {
  fault::NodeFaultMap out;
  for (cube::NodeId p = 0; p < seg.num_nodes(); ++p) {
    fault::NodeFault f = node_fault_of(seg.fault(p));
    if (f.any()) out.emplace(p, f);
  }
  return out;
}

// Children publish link events in whatever order they finish; canonicalize
// so the merged log is a deterministic function of the event multiset.
// Shared by both multi-process collectors.
inline void canonicalize_link_events(std::vector<sim::LinkEvent>& events) {
  const auto key = [](const sim::LinkEvent& e) {
    return std::make_tuple(e.stage, e.iter, e.from, e.to, e.to_host,
                           e.from_host, static_cast<int>(e.kind), e.words,
                           e.delivered);
  };
  std::sort(events.begin(), events.end(),
            [&](const sim::LinkEvent& a, const sim::LinkEvent& b) {
              return key(a) < key(b);
            });
}

// Child-side terminal failure: record why and publish kFailed so peers and
// the parent stop waiting.
inline int fail_child(transport::ShmSegment& seg, cube::NodeId p,
                      const char* what) {
  transport::NodeSlot& slot = seg.slot(p);
  std::snprintf(slot.fail_reason, sizeof slot.fail_reason, "%s", what);
  slot.state.store(static_cast<std::uint32_t>(transport::SlotState::kFailed),
                   std::memory_order_release);
  return 1;
}

// Parent-side assembly after every child is reaped: output image, per-node
// error reports (node order), summary aggregates, merged link events.  The
// host's share of the summary (checkpoint collector) is added by the caller.
inline void collect_shm_results(transport::ShmSegment& seg, SortRun& run,
                                bool record_events) {
  const auto out = seg.output();
  run.output.assign(out.begin(), out.end());

  for (cube::NodeId p = 0; p < seg.num_nodes(); ++p) {
    transport::NodeSlot& slot = seg.slot(p);
    const auto n_err = std::min(slot.error_count, transport::kMaxSlotErrors);
    for (std::uint32_t e = 0; e < n_err; ++e) {
      const transport::WireError& w = slot.errors[e];
      sim::ErrorReport r;
      r.node = p;
      r.stage = w.stage;
      r.iter = w.iter;
      r.source = static_cast<sim::ErrorSource>(w.source);
      r.detail = w.detail;
      run.errors.push_back(std::move(r));
    }
    // A child the parent had to declare dead published nothing — the fault
    // is visible through its peers' kTimeout reports, like a sim halt.
    run.summary.elapsed = std::max(run.summary.elapsed, slot.clock);
    run.summary.max_comm = std::max(run.summary.max_comm, slot.comm_ticks);
    run.summary.max_comp = std::max(run.summary.max_comp, slot.comp_ticks);
    run.summary.total_msgs += slot.msgs_sent;
    run.summary.total_words += slot.words_sent;
    run.summary.watchdog_rounds += static_cast<int>(slot.watchdog_rounds);

    if (record_events) {
      const auto events = seg.events(p);
      const auto n_ev =
          std::min<std::size_t>(slot.event_count, events.size());
      for (std::size_t e = 0; e < n_ev; ++e) {
        const transport::WireLinkEvent& w = events[e];
        sim::LinkEvent ev;
        ev.from = static_cast<cube::NodeId>(w.from);
        ev.to = static_cast<cube::NodeId>(w.to);
        ev.kind = static_cast<sim::MsgKind>(w.kind);
        ev.stage = w.stage;
        ev.iter = w.iter;
        ev.words = w.words;
        ev.delivered = w.delivered != 0;
        ev.to_host = w.to_host != 0;
        ev.from_host = w.from_host != 0;
        run.link_events.push_back(ev);
      }
    }
  }
  if (record_events) canonicalize_link_events(run.link_events);
}

}  // namespace aoft::sort::shm_detail
