// run_host_sort lives here; run_host_verified_snr is defined in snr.cpp next
// to the S_NR node program it reuses.

#include "sort/sequential.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aoft::sort {

namespace {

struct HostSortShared {
  HostSortOptions opts;
  int dim = 0;
  std::size_t m = 1;
  std::vector<Key> input;
  std::vector<Key> output;
};

sim::SimTask host_sort_node(sim::Ctx& ctx, HostSortShared& sh) {
  const cube::NodeId me = ctx.id();
  const std::size_t m = sh.m;
  sim::Message up;
  up.kind = sim::MsgKind::kHostGather;
  up.data.assign(sh.input.begin() + static_cast<std::ptrdiff_t>(me * m),
                 sh.input.begin() + static_cast<std::ptrdiff_t>((me + 1) * m));
  ctx.send_host(std::move(up));

  auto r = co_await ctx.recv_host();
  if (!r.ok) {
    ctx.error({0, -1, -1, sim::ErrorSource::kTimeout, "no scatter from host"});
    co_return;
  }
  ctx.account_recv(r.msg);
  std::copy(r.msg.data.begin(), r.msg.data.end(),
            sh.output.begin() + static_cast<std::ptrdiff_t>(me * m));
  co_return;
}

sim::SimTask host_sort_host(sim::HostCtx& host, HostSortShared& sh) {
  const std::size_t num_nodes = std::size_t{1} << sh.dim;
  const std::size_t m = sh.m;
  const std::size_t total = num_nodes * m;
  std::vector<Key> all(total, 0);

  for (std::size_t got = 0; got < num_nodes; ++got) {
    auto r = co_await host.recv();
    if (!r.ok) co_return;  // cannot happen: host links are reliable
    host.account_recv(r.msg);
    std::copy(r.msg.data.begin(), r.msg.data.end(),
              all.begin() + static_cast<std::ptrdiff_t>(r.msg.from * m));
  }

  // The paper charges the theoretical minimum: one comparison, K·log2 K times.
  std::sort(all.begin(), all.end());
  const double k = static_cast<double>(total);
  host.charge(sh.opts.cost.host_cmp * k * std::log2(std::max(k, 2.0)));

  for (cube::NodeId p = 0; p < num_nodes; ++p) {
    sim::Message down;
    down.kind = sim::MsgKind::kHostScatter;
    down.data.assign(all.begin() + static_cast<std::ptrdiff_t>(p * m),
                     all.begin() + static_cast<std::ptrdiff_t>((p + 1) * m));
    host.send(p, std::move(down));
  }
  co_return;
}

}  // namespace

SortRun run_host_sort(int dim, std::span<const Key> input,
                      const HostSortOptions& opts) {
  assert(input.size() == (std::size_t{1} << dim) * opts.block);
  HostSortShared sh;
  sh.opts = opts;
  sh.dim = dim;
  sh.m = opts.block;
  sh.input.assign(input.begin(), input.end());
  sh.output.assign(input.size(), 0);

  sim::Machine machine(cube::Topology{dim}, opts.cost);
  machine.run([&sh](sim::Ctx& ctx) { return host_sort_node(ctx, sh); },
              [&sh](sim::HostCtx& host) { return host_sort_host(host, sh); });

  SortRun run;
  run.output = std::move(sh.output);
  run.errors = machine.errors();
  run.summary = machine.summary();
  return run;
}

}  // namespace aoft::sort
