// Key utilities shared by the sorting algorithms and their checks.

#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "sim/message.h"
#include "sort/kernels.h"

namespace aoft::sort {

using sim::Key;

// True iff `v` is non-decreasing.  Routed through the dispatched run-scan
// kernel (sort/kernels.h) — same verdict as std::is_sorted on every path.
inline bool is_non_decreasing(std::span<const Key> v) {
  return kernels::is_sorted_run(v, true);
}

// True iff `v` is non-increasing.
inline bool is_non_increasing(std::span<const Key> v) {
  return kernels::is_sorted_run(v, false);
}

// True iff `v` is bitonic in the restricted sense the sort maintains:
// a non-decreasing first half followed by a non-increasing second half
// (paper Definition 2 with the split at the midpoint, which Lemma 2
// guarantees for every intermediate sequence).
inline bool is_bitonic_halves(std::span<const Key> v) {
  const std::size_t mid = v.size() / 2;
  return is_non_decreasing(v.subspan(0, mid)) && is_non_increasing(v.subspan(mid));
}

// True iff `a` is a permutation of `b` (multiset equality).
bool is_permutation_of(std::span<const Key> a, std::span<const Key> b);

}  // namespace aoft::sort
