// S_NR — the non-redundant hypercube bitonic sort (paper Fig. 2).
//
// One stage per cube dimension; stage i merges bitonic sequences within each
// dim-(i+1) home subcube by compare-exchanging across dimensions i down to 0.
// The node with a 0 in bit j is "active" at iteration j: it receives the
// partner's value, performs the compare-exchange in the direction fixed by
// bit i+1 of the pair, and writes the partner's half back.  No checking of
// any kind — this is the baseline whose silent corruption under faults
// motivates S_FT.
//
// The block generalization (m keys per node, paper §5) replaces the scalar
// compare-exchange by merge-split; with m = 1 it degenerates to Fig. 2
// exactly.

#pragma once

#include <span>

#include "fault/fault_spec.h"
#include "sim/cost_model.h"
#include "sim/machine.h"
#include "sort/driver.h"
#include "transport/backend.h"

namespace aoft::transport {
class ShmSegment;
class TcpNodeEndpoint;
}

namespace aoft::sort {

struct SnrOptions {
  std::size_t block = 1;  // m: keys per node
  sim::CostModel cost{};
  sim::LinkInterceptor* interceptor = nullptr;  // Byzantine links
  fault::NodeFaultMap node_faults;              // Byzantine processors

  // Run on this caller-owned machine instead of constructing one (reset()
  // first; dimension must match).  See SftOptions::machine.
  sim::Machine* machine = nullptr;

  // Transport selection, as in SftOptions: kShm/kTcp reject `machine` and
  // run one process per node.  The host-verified variant stays sim-only.
  transport::Backend backend = transport::Backend::kSim;
  transport::ShmOptions shm;
  transport::TcpOptions tcp;
};

namespace detail {
// Exec-mode child entry (tools/aoft_node) for the S_NR node program.
int run_snr_shm_node(transport::ShmSegment& seg, cube::NodeId p);
int run_snr_tcp_node(transport::TcpNodeEndpoint& ep, cube::NodeId p);
}  // namespace detail

// Sort `input` (flattened, size 2^dim * block) on a simulated dim-cube.
// S_NR is unprotected: under faults the run may end kSilentWrong, which is
// exactly the behaviour the coverage campaign demonstrates.
SortRun run_snr(int dim, std::span<const Key> input, const SnrOptions& opts = {});

}  // namespace aoft::sort
