#include "sort/keys.h"

namespace aoft::sort {

bool is_permutation_of(std::span<const Key> a, std::span<const Key> b) {
  if (a.size() != b.size()) return false;
  std::vector<Key> sa(a.begin(), a.end());
  std::vector<Key> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

}  // namespace aoft::sort
