#include "sort/predicates.h"

#include <cassert>

#include "obs/sink.h"

namespace aoft::sort {

namespace {

// Every predicate evaluation reports its verdict to the bound observability
// sink (obs/sink.h).  The predicates are pure functions with no protocol
// position of their own; the caller (sort/sft.cpp) binds (node, stage, iter,
// clock) via ScopedPredContext around the call.  With no sink bound this is a
// thread-local load and a branch.
std::optional<Violation> record_verdict(obs::Ev kind, obs::Counter pass_c,
                                        obs::Counter fail_c,
                                        std::optional<Violation> v) {
  if (!obs::active()) return v;
  const auto& at = obs::pred_context();
  if (auto* me = obs::metrics()) {
    me->inc(v ? fail_c : pass_c);
    me->phi_verdict(at.stage, !v);
  }
  if (auto* tr = obs::tracer())
    tr->instant(kind, at.node, at.stage, at.iter, at.clock, v ? 0 : 1,
                v ? v->position : 0, v ? v->what : std::string{});
  return v;
}

std::optional<Violation> check_run(std::span<const Key> v, std::size_t lo,
                                   std::size_t hi, bool non_decreasing,
                                   const char* which) {
  for (std::size_t k = lo; k + 1 < hi; ++k) {
    const bool bad = non_decreasing ? v[k + 1] < v[k] : v[k + 1] > v[k];
    if (bad)
      return Violation{std::string("phi_P: ") + which + " run broken",
                       static_cast<std::int64_t>(k)};
  }
  return std::nullopt;
}

}  // namespace

namespace {

std::optional<Violation> phi_p_eval(std::span<const Key> window_vals,
                                    bool final_stage) {
  if (final_stage)
    return check_run(window_vals, 0, window_vals.size(), true, "ascending(final)");
  const std::size_t mid = window_vals.size() / 2;
  if (auto v = check_run(window_vals, 0, mid, true, "ascending")) return v;
  return check_run(window_vals, mid, window_vals.size(), false, "descending");
}

}  // namespace

std::optional<Violation> phi_p(std::span<const Key> window_vals, bool final_stage) {
  return record_verdict(obs::Ev::kPhiP, obs::Counter::kPhiPPass,
                        obs::Counter::kPhiPFail,
                        phi_p_eval(window_vals, final_stage));
}

namespace {

std::optional<Violation> phi_f_eval(std::span<const Key> llbs_inner,
                                    std::span<const Key> lbs_inner,
                                    bool ascending) {
  assert(llbs_inner.size() == lbs_inner.size());
  const std::size_t size = lbs_inner.size();
  if (size <= 1) {
    if (size == 1 && llbs_inner[0] != lbs_inner[0])
      return Violation{"phi_F: singleton mismatch", 0};
    return std::nullopt;
  }
  const std::size_t half = size / 2;
  // l walks the non-decreasing run forward, u walks the non-increasing run
  // backward; both visit values in ascending order.  Iterate the sorted lbs
  // in ascending order and consume the matching run head.
  std::size_t l = 0;
  std::size_t u = size;  // one past the element `u-1` under consideration
  for (std::size_t step = 0; step < size; ++step) {
    const std::size_t idx = ascending ? step : size - 1 - step;
    const Key key = lbs_inner[idx];
    if (l < half && key == llbs_inner[l]) {
      ++l;
    } else if (u > half && key == llbs_inner[u - 1]) {
      --u;
    } else {
      return Violation{"phi_F: sequence not complete w.r.t. previous stage",
                       static_cast<std::int64_t>(idx)};
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> phi_f(std::span<const Key> llbs_inner,
                               std::span<const Key> lbs_inner, bool ascending) {
  return record_verdict(obs::Ev::kPhiF, obs::Counter::kPhiFPass,
                        obs::Counter::kPhiFFail,
                        phi_f_eval(llbs_inner, lbs_inner, ascending));
}

namespace {

std::optional<Violation> phi_c_merge_eval(std::span<Key> local, BitVec& local_cover,
                                     std::span<const Key> recv_slice,
                                     const BitVec& sender_cover,
                                     const cube::Subcube& window, std::size_t m,
                                     MergeStats* stats) {
  assert(recv_slice.size() == static_cast<std::size_t>(window.size()) * m);
  for (cube::NodeId p = window.start; p <= window.end; ++p) {
    if (!sender_cover.test(p)) continue;
    const std::size_t local_off = static_cast<std::size_t>(p) * m;
    const std::size_t slice_off = static_cast<std::size_t>(p - window.start) * m;
    if (local_cover.test(p)) {
      for (std::size_t w = 0; w < m; ++w) {
        if (local[local_off + w] != recv_slice[slice_off + w])
          return Violation{"phi_C: redundant copies disagree",
                           static_cast<std::int64_t>(p)};
      }
      if (stats) stats->checked += m;
    } else {
      for (std::size_t w = 0; w < m; ++w)
        local[local_off + w] = recv_slice[slice_off + w];
      local_cover.set(p);
      if (stats) stats->absorbed += m;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> phi_c_merge(std::span<Key> local, BitVec& local_cover,
                                     std::span<const Key> recv_slice,
                                     const BitVec& sender_cover,
                                     const cube::Subcube& window, std::size_t m,
                                     MergeStats* stats) {
  return record_verdict(obs::Ev::kPhiC, obs::Counter::kPhiCPass,
                        obs::Counter::kPhiCFail,
                        phi_c_merge_eval(local, local_cover, recv_slice,
                                         sender_cover, window, m, stats));
}

std::optional<Violation> bit_compare(std::span<const Key> llbs,
                                     std::span<const Key> lbs,
                                     const cube::Subcube& outer,
                                     const cube::Subcube& inner,
                                     bool inner_ascending, bool final_stage,
                                     std::size_t m) {
  const auto window_span = [&](std::span<const Key> full, const cube::Subcube& sc) {
    return full.subspan(static_cast<std::size_t>(sc.start) * m,
                        static_cast<std::size_t>(sc.size()) * m);
  };
  if (auto v = phi_p(window_span(lbs, outer), final_stage)) return v;
  return phi_f(window_span(llbs, inner), window_span(lbs, inner), inner_ascending);
}

}  // namespace aoft::sort
