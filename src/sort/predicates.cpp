#include "sort/predicates.h"

#include <cassert>
#include <cstring>

#include "obs/sink.h"
#include "sort/kernels.h"

namespace aoft::sort {

namespace {

// Every predicate evaluation reports its verdict to the bound observability
// sink (obs/sink.h).  The predicates are pure functions with no protocol
// position of their own; the caller (sort/sft.cpp) binds (node, stage, iter,
// clock) via ScopedPredContext around the call.  With no sink bound this is a
// thread-local load and a branch.
std::optional<Violation> record_verdict(obs::Ev kind, obs::Counter pass_c,
                                        obs::Counter fail_c,
                                        std::optional<Violation> v) {
  if (!obs::active()) return v;
  const auto& at = obs::pred_context();
  if (auto* me = obs::metrics()) {
    me->inc(v ? fail_c : pass_c);
    me->phi_verdict(at.stage, !v);
  }
  if (auto* tr = obs::tracer())
    tr->instant(kind, at.node, at.stage, at.iter, at.clock, v ? 0 : 1,
                v ? v->position : 0, v ? v->what : std::string{});
  return v;
}

std::optional<Violation> check_run(std::span<const Key> v, std::size_t lo,
                                   std::size_t hi, bool non_decreasing,
                                   const char* which) {
  const std::size_t n = hi - lo;
  const std::size_t k = kernels::table().run_break(v.data() + lo, n, non_decreasing);
  if (k == n) return std::nullopt;
  return Violation{std::string("phi_P: ") + which + " run broken",
                   static_cast<std::int64_t>(lo + k)};
}

}  // namespace

namespace {

std::optional<Violation> phi_p_eval(std::span<const Key> window_vals,
                                    bool final_stage) {
  if (final_stage)
    return check_run(window_vals, 0, window_vals.size(), true, "ascending(final)");
  const std::size_t mid = window_vals.size() / 2;
  if (auto v = check_run(window_vals, 0, mid, true, "ascending")) return v;
  return check_run(window_vals, mid, window_vals.size(), false, "descending");
}

}  // namespace

std::optional<Violation> phi_p(std::span<const Key> window_vals, bool final_stage) {
  return record_verdict(obs::Ev::kPhiP, obs::Counter::kPhiPPass,
                        obs::Counter::kPhiPFail,
                        phi_p_eval(window_vals, final_stage));
}

namespace {

std::optional<Violation> phi_f_eval(std::span<const Key> llbs_inner,
                                    std::span<const Key> lbs_inner,
                                    bool ascending) {
  assert(llbs_inner.size() == lbs_inner.size());
  const std::size_t size = lbs_inner.size();
  if (size <= 1) {
    if (size == 1 && llbs_inner[0] != lbs_inner[0])
      return Violation{"phi_F: singleton mismatch", 0};
    return std::nullopt;
  }
  const std::int64_t idx = kernels::phi_f_scan(llbs_inner, lbs_inner, ascending);
  if (idx < 0) return std::nullopt;
  return Violation{"phi_F: sequence not complete w.r.t. previous stage", idx};
}

}  // namespace

std::optional<Violation> phi_f(std::span<const Key> llbs_inner,
                               std::span<const Key> lbs_inner, bool ascending) {
  return record_verdict(obs::Ev::kPhiF, obs::Counter::kPhiFPass,
                        obs::Counter::kPhiFFail,
                        phi_f_eval(llbs_inner, lbs_inner, ascending));
}

namespace {

std::optional<Violation> phi_c_merge_eval(std::span<Key> local, BitVec& local_cover,
                                     std::span<const Key> recv_slice,
                                     const BitVec& sender_cover,
                                     const cube::Subcube& window, std::size_t m,
                                     MergeStats* stats) {
  assert(recv_slice.size() == static_cast<std::size_t>(window.size()) * m);
  // Walk maximal runs of consecutive covered-by-sender nodes that agree on
  // local coverage, so the word compare / absorb copy runs once per run over
  // run_nodes*m contiguous words (kernels.h) instead of once per node.  The
  // run decomposition is invisible: nodes are still processed in ascending
  // order, a disagreement still reports the node that owns the word, and
  // stats count exactly the nodes fully processed before a violation — the
  // same partial counts the per-node loop produced.
  cube::NodeId p = window.start;
  while (p <= window.end) {
    if (!sender_cover.test(p)) {
      ++p;
      continue;
    }
    const bool have = local_cover.test(p);
    cube::NodeId q = p;
    while (q < window.end && sender_cover.test(q + 1) &&
           local_cover.test(q + 1) == have)
      ++q;
    const std::size_t run_nodes = static_cast<std::size_t>(q - p) + 1;
    const std::size_t words = run_nodes * m;
    const std::size_t local_off = static_cast<std::size_t>(p) * m;
    const std::size_t slice_off = static_cast<std::size_t>(p - window.start) * m;
    if (have) {
      const std::size_t bad = kernels::table().mismatch(
          local.data() + local_off, recv_slice.data() + slice_off, words);
      if (bad != words) {
        if (stats) stats->checked += (bad / m) * m;
        return Violation{"phi_C: redundant copies disagree",
                         static_cast<std::int64_t>(p) +
                             static_cast<std::int64_t>(bad / m)};
      }
      if (stats) stats->checked += words;
    } else {
      std::memcpy(local.data() + local_off, recv_slice.data() + slice_off,
                  words * sizeof(Key));
      for (cube::NodeId r = p; r <= q; ++r) local_cover.set(r);
      if (stats) stats->absorbed += words;
    }
    p = q + 1;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> phi_c_merge(std::span<Key> local, BitVec& local_cover,
                                     std::span<const Key> recv_slice,
                                     const BitVec& sender_cover,
                                     const cube::Subcube& window, std::size_t m,
                                     MergeStats* stats) {
  return record_verdict(obs::Ev::kPhiC, obs::Counter::kPhiCPass,
                        obs::Counter::kPhiCFail,
                        phi_c_merge_eval(local, local_cover, recv_slice,
                                         sender_cover, window, m, stats));
}

std::optional<Violation> bit_compare(std::span<const Key> llbs,
                                     std::span<const Key> lbs,
                                     const cube::Subcube& outer,
                                     const cube::Subcube& inner,
                                     bool inner_ascending, bool final_stage,
                                     std::size_t m) {
  const auto window_span = [&](std::span<const Key> full, const cube::Subcube& sc) {
    return full.subspan(static_cast<std::size_t>(sc.start) * m,
                        static_cast<std::size_t>(sc.size()) * m);
  };
  if (auto v = phi_p(window_span(lbs, outer), final_stage)) return v;
  return phi_f(window_span(llbs, inner), window_span(lbs, inner), inner_ascending);
}

}  // namespace aoft::sort
