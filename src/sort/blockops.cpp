#include "sort/blockops.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "sort/kernels.h"

namespace aoft::sort::blockops {

void sort_dir(std::span<Key> block, bool ascending) {
  if (ascending)
    std::sort(block.begin(), block.end());
  else
    std::sort(block.begin(), block.end(), std::greater<Key>{});
}

bool is_sorted_dir(std::span<const Key> block, bool ascending) {
  return ascending ? is_non_decreasing(block) : is_non_increasing(block);
}

void reverse_block(std::span<Key> block) {
  std::reverse(block.begin(), block.end());
}

void merge_dir_into(std::span<const Key> a, std::span<const Key> b,
                    bool ascending, std::span<Key> out) {
  assert(is_sorted_dir(a, ascending) && is_sorted_dir(b, ascending));
  assert(out.size() == a.size() + b.size());
  kernels::merge(a, b, ascending, out);
}

bool contains_submultiset(std::span<const Key> super, std::span<const Key> sub,
                          bool ascending) {
  return kernels::includes(super, sub, ascending);
}

}  // namespace aoft::sort::blockops
