#include "sort/blockops.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace aoft::sort::blockops {

void sort_dir(std::span<Key> block, bool ascending) {
  if (ascending)
    std::sort(block.begin(), block.end());
  else
    std::sort(block.begin(), block.end(), std::greater<Key>{});
}

bool is_sorted_dir(std::span<const Key> block, bool ascending) {
  return ascending ? is_non_decreasing(block) : is_non_increasing(block);
}

void reverse_block(std::span<Key> block) {
  std::reverse(block.begin(), block.end());
}

std::vector<Key> merge_dir(std::span<const Key> a, std::span<const Key> b,
                           bool ascending) {
  std::vector<Key> out(a.size() + b.size());
  merge_dir_into(a, b, ascending, out);
  return out;
}

void merge_dir_into(std::span<const Key> a, std::span<const Key> b,
                    bool ascending, std::span<Key> out) {
  assert(is_sorted_dir(a, ascending) && is_sorted_dir(b, ascending));
  assert(out.size() == a.size() + b.size());
  if (ascending)
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  else
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(),
               std::greater<Key>{});
}

bool contains_submultiset(std::span<const Key> super, std::span<const Key> sub,
                          bool ascending) {
  if (ascending)
    return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end(),
                       std::greater<Key>{});
}

}  // namespace aoft::sort::blockops
