// Block (m keys per node) helpers for the bitonic sort/merge variants.
//
// Paper §5: "each processor holds m elements ... half of the processors must
// do a compare/exchange of 2m elements and then each processor must sort
// these m elements locally."  The classical realization is merge-split: both
// partners' blocks are merged and the pair splits the result, the lower node
// keeping the lower half under the pair's direction.
//
// Blocks are stored *directionally*: a node participating in an ascending
// merge holds its m keys non-decreasing, a descending one non-increasing.
// The flattened concatenation of directional blocks over a subcube is then
// exactly the global (sub)sequence the scalar predicates reason about, which
// is how "each of the predicates Φ scales by m" (paper §5) falls out for
// free — see sort/predicates.h.

#pragma once

#include <span>
#include <vector>

#include "sort/keys.h"

namespace aoft::sort::blockops {

// Sort `block` in the given direction.
void sort_dir(std::span<Key> block, bool ascending);

// True iff `block` is sorted in the given direction.
bool is_sorted_dir(std::span<const Key> block, bool ascending);

// Flip the stored direction (reverse).  A directional block reversed is
// sorted in the opposite direction.
void reverse_block(std::span<Key> block);

// Merge two blocks sorted in direction `ascending` into caller-provided
// storage (`out.size()` must equal `a.size() + b.size()`, and `out` must not
// alias the inputs).  The hot loops of S_FT/S_NR reuse one scratch buffer
// across all log^2 N iterations; there is deliberately no allocating variant
// — callers own their scratch (the former merge_dir was the last allocating
// call path through the merge).
void merge_dir_into(std::span<const Key> a, std::span<const Key> b,
                    bool ascending, std::span<Key> out);

// True iff `sub` (sorted, direction `ascending`) is a sub-multiset of
// `super` (sorted, same direction).  One linear two-pointer pass.
bool contains_submultiset(std::span<const Key> super, std::span<const Key> sub,
                          bool ascending);

}  // namespace aoft::sort::blockops
