#include "sort/driver.h"

namespace aoft::sort {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kFailStop: return "fail-stop";
    case Outcome::kSilentWrong: return "SILENT-WRONG";
  }
  return "?";
}

Outcome classify(const SortRun& run, std::span<const Key> input) {
  if (run.fail_stop()) return Outcome::kFailStop;
  if (run.output.size() == input.size() && is_non_decreasing(run.output) &&
      is_permutation_of(run.output, input))
    return Outcome::kCorrect;
  return Outcome::kSilentWrong;
}

}  // namespace aoft::sort
