#include "sort/driver.h"

#include <algorithm>

namespace aoft::sort {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kFailStop: return "fail-stop";
    case Outcome::kSilentWrong: return "SILENT-WRONG";
  }
  return "?";
}

Outcome classify(const SortRun& run, std::span<const Key> input) {
  if (run.fail_stop()) return Outcome::kFailStop;
  if (run.output.size() == input.size() && is_non_decreasing(run.output) &&
      is_permutation_of(run.output, input))
    return Outcome::kCorrect;
  return Outcome::kSilentWrong;
}

std::optional<ResumeState> make_resume_state(
    std::span<const StageCheckpoint> checkpoints) {
  auto certified = [&](int stage) -> const StageCheckpoint* {
    for (const auto& ck : checkpoints)
      if (ck.certified && ck.stage == stage) return &ck;
    return nullptr;
  };
  int max_stage = -1;
  for (const auto& ck : checkpoints)
    if (ck.certified) max_stage = std::max(max_stage, ck.stage);
  for (int k = max_stage; k >= 1; --k) {
    const auto* ck = certified(k);
    const auto* prev = certified(k - 1);
    if (ck == nullptr || prev == nullptr) continue;
    return ResumeState{k, ck->state, prev->state};
  }
  return std::nullopt;
}

}  // namespace aoft::sort
