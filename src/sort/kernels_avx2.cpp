// AVX2 kernels: 4 x 64-bit Key lanes.
//
// Compiled with -mavx2 only on x86-64 (src/sort/CMakeLists.txt); selected at
// runtime when cpuid reports AVX2 (util/simd.h).  Contract: bit-identical to
// the scalar table in kernels.cpp — verdicts, first-failure positions and
// merged output bytes — enforced by tests/sort/kernels_fuzz_test.cpp.
//
// Only the wide linear scans are vectorized.  run_break and mismatch stream
// 32 bytes per compare with no cross-iteration dependency and measure 2-4x
// over scalar (bench/micro_predicates kernel sweep).  The pointer-chasing
// kernels — phi_f_scan, merge, includes — were prototyped as 4-wide bitonic
// networks and galloped scans and *lost* to the scalar reference on every
// size (0.1-0.4x): gcc compiles the scalar loops to branchless cmov at
// ~1 ns/element, while the vector versions serialize on permute4x64 and the
// emulated 64-bit min/max (cmpgt + blendv) with data-dependent advances that
// average under two lanes of useful work per vector op.  They delegate to
// the scalar function pointers outright — delegation is invisible under the
// bit-identity contract, exactly like the NEON table (kernels_neon.cpp), and
// the sweep reports such entries as "delegated" rather than inventing a
// speedup.
// All loads are full, in-bounds 32-byte loads; the kernels are ASan-clean by
// construction.

#include <immintrin.h>

#include <cstddef>

#include "sort/kernels.h"

namespace aoft::sort::kernels {

namespace {

inline __m256i load4(const Key* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// Per-lane predicates as 4-bit masks (bit i = lane i).  Key is std::int64_t,
// so the signed compare is the right order.
inline unsigned gt_mask(__m256i a, __m256i b) {
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(a, b))));
}

inline unsigned eq_mask(__m256i a, __m256i b) {
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b))));
}

std::size_t run_break_avx2(const Key* v, std::size_t n, bool non_decreasing) {
  if (n < 2) return n;
  const std::size_t pairs = n - 1;
  std::size_t k = 0;
  if (non_decreasing) {
    for (; k + 4 <= pairs; k += 4) {
      const unsigned bad = gt_mask(load4(v + k), load4(v + k + 1));
      if (bad) return k + static_cast<std::size_t>(__builtin_ctz(bad));
    }
    for (; k < pairs; ++k)
      if (v[k + 1] < v[k]) return k;
  } else {
    for (; k + 4 <= pairs; k += 4) {
      const unsigned bad = gt_mask(load4(v + k + 1), load4(v + k));
      if (bad) return k + static_cast<std::size_t>(__builtin_ctz(bad));
    }
    for (; k < pairs; ++k)
      if (v[k + 1] > v[k]) return k;
  }
  return n;
}

std::size_t mismatch_avx2(const Key* a, const Key* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const unsigned ne = eq_mask(load4(a + i), load4(b + i)) ^ 0xFu;
    if (ne) return i + static_cast<std::size_t>(__builtin_ctz(ne));
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return i;
  return n;
}

}  // namespace

namespace detail {
const KernelTable& avx2_table() {
  // Start from the scalar table and override only the kernels that measure
  // faster: the delegated entries share the scalar function pointers, so
  // callers comparing tables see the delegation instead of a shim.
  static const KernelTable table = [] {
    KernelTable t = scalar_table();
    t.run_break = run_break_avx2;
    t.mismatch = mismatch_avx2;
    return t;
  }();
  return table;
}
}  // namespace detail

}  // namespace aoft::sort::kernels
