#include "obs/trace.h"

#include <iterator>

namespace aoft::obs {

namespace {

// Names double as the JSONL wire encoding — order must match the enum.
constexpr const char* kEvNames[] = {
    "run_begin",   "run_end",     "stage",       "iter",
    "phi_p",       "phi_f",       "phi_c",       "pair_check",
    "timeout",     "watchdog",    "error",       "drop",
    "ckpt_upload", "ckpt_certify", "attempt",    "rollback",
    "restart",     "reconfigure", "host_fallback", "scenario",
    "worker.cpu",  "worker.node", "link",
};

}  // namespace

const char* to_string(Ev e) {
  const auto i = static_cast<std::size_t>(e);
  return i < std::size(kEvNames) ? kEvNames[i] : "?";
}

bool ev_from_string(std::string_view s, Ev& out) {
  for (std::size_t i = 0; i < std::size(kEvNames); ++i) {
    if (s == kEvNames[i]) {
      out = static_cast<Ev>(i);
      return true;
    }
  }
  return false;
}

void Tracer::append(Tracer&& other) {
  if (events_.empty()) {
    events_ = std::move(other.events_);
  } else {
    events_.insert(events_.end(),
                   std::move_iterator(other.events_.begin()),
                   std::move_iterator(other.events_.end()));
  }
  other.events_.clear();
}

}  // namespace aoft::obs
