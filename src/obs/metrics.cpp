#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <iterator>

namespace aoft::obs {

namespace {

constexpr const char* kCounterNames[] = {
    "link_msgs",    "link_words",   "dropped_msgs", "host_msgs",
    "host_words",   "phi_p_pass",   "phi_p_fail",   "phi_f_pass",
    "phi_f_fail",   "phi_c_pass",   "phi_c_fail",   "pair_pass",
    "pair_fail",    "timeouts",     "watchdog_rounds", "errors",
    "ckpt_uploads", "rollbacks",    "restarts",     "reconfigures",
    "host_fallbacks", "scenarios",  "workers_pinned",
};
static_assert(std::size(kCounterNames) == kNumCounters);

}  // namespace

const char* to_string(Counter c) {
  const auto i = static_cast<std::size_t>(c);
  return i < kNumCounters ? kCounterNames[i] : "?";
}

void Histogram::observe(std::uint64_t v) {
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  buckets_[std::min(w, kBuckets - 1)] += 1;
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::total() const {
  std::uint64_t t = 0;
  for (auto b : buckets_) t += b;
  return t;
}

void Histogram::merge(const Histogram& o) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  max_ = std::max(max_, o.max_);
}

void MetricsRegistry::phi_verdict(int stage, bool pass) {
  if (stage < 0) return;
  const auto s = static_cast<std::size_t>(stage);
  if (per_stage_.size() <= s) per_stage_.resize(s + 1);
  if (pass)
    per_stage_[s].pass += 1;
  else
    per_stage_[s].fail += 1;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (std::size_t i = 0; i < kNumCounters; ++i) counters_[i] += o.counters_[i];
  msg_words_.merge(o.msg_words_);
  queue_depth_.merge(o.queue_depth_);
  if (per_stage_.size() < o.per_stage_.size())
    per_stage_.resize(o.per_stage_.size());
  for (std::size_t s = 0; s < o.per_stage_.size(); ++s) {
    per_stage_[s].pass += o.per_stage_[s].pass;
    per_stage_[s].fail += o.per_stage_[s].fail;
  }
}

}  // namespace aoft::obs
