// Lightweight counters and histograms for simulation runs.
//
// A MetricsRegistry is a fixed array of counters plus a few power-of-two
// bucketed histograms — no maps, no strings, no locks.  A registry is only
// ever written by one thread: campaigns keep one registry per slot and merge
// them in (class, slot) order after the pool drains, exactly like
// CampaignSummary aggregation, so the merged totals are bit-identical for
// every job count.  Reads go through the same thread-local sink as tracing
// (obs/sink.h); with no registry bound a counter bump is a null check.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace aoft::obs {

enum class Counter : std::uint8_t {
  kLinkMsgs,        // node-node messages offered to the network
  kLinkWords,       // key words across node-node messages
  kDroppedMsgs,     // messages the interceptor dropped
  kHostMsgs,        // messages on the reliable host links (both directions)
  kHostWords,       // key words across host-link messages
  kPhiPPass, kPhiPFail,
  kPhiFPass, kPhiFFail,
  kPhiCPass, kPhiCFail,
  kPairPass, kPairFail,  // the (a, b) exchange-pair check
  kTimeouts,        // receives failed by the watchdog
  kWatchdogRounds,
  kErrors,          // fail-stop reports
  kCkptUploads,
  kRollbacks, kRestarts, kReconfigures, kHostFallbacks,
  kScenarios,       // campaign scenario executions
  kWorkersPinned,   // campaign workers with a planned CPU pin (environment
                    //   metadata: scales with the job count, so determinism
                    //   comparisons across job counts exclude it)
  kCount_,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount_);

const char* to_string(Counter c);

// Log2-bucketed histogram: bucket k counts values v with bit_width(v) == k,
// i.e. bucket 0 holds zeros and bucket k >= 1 holds [2^(k-1), 2^k).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 24;

  void observe(std::uint64_t v);
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  std::uint64_t total() const;
  std::uint64_t max() const { return max_; }
  void merge(const Histogram& o);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t max_ = 0;
};

// Predicate verdicts pooled per stage (all of Φ_P/Φ_F/Φ_C), for the
// per-stage summary table of tools/trace_inspect.
struct StagePhi {
  std::uint64_t pass = 0;
  std::uint64_t fail = 0;
};

class MetricsRegistry {
 public:
  void inc(Counter c, std::uint64_t v = 1) {
    counters_[static_cast<std::size_t>(c)] += v;
  }
  std::uint64_t get(Counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }

  void observe_msg_words(std::uint64_t words) { msg_words_.observe(words); }
  void observe_queue_depth(std::uint64_t depth) { queue_depth_.observe(depth); }
  void phi_verdict(int stage, bool pass);

  const Histogram& msg_words() const { return msg_words_; }
  const Histogram& queue_depth() const { return queue_depth_; }
  const std::vector<StagePhi>& per_stage() const { return per_stage_; }

  void merge(const MetricsRegistry& o);

 private:
  std::array<std::uint64_t, kNumCounters> counters_{};
  Histogram msg_words_;
  Histogram queue_depth_;
  std::vector<StagePhi> per_stage_;  // indexed by stage; grown on demand
};

}  // namespace aoft::obs
