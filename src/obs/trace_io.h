// Trace serialization: JSONL (the stable machine-readable schema,
// docs/PROTOCOL.md §9) and Chrome trace_event JSON (opens directly in
// chrome://tracing / Perfetto).
//
// JSONL is the canonical format: line 1 is a header object, every further
// line one TraceEvent with a fixed field order, so byte-equality of two
// files is exactly event-equality of two runs (the determinism tests rely on
// this).  The Chrome export is a view for humans; trace_inspect can
// structurally validate both.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aoft::obs {

inline constexpr const char* kTraceSchema = "aoft-trace-v1";

// Run-level metadata, serialized as the JSONL header line.
struct TraceMeta {
  int dim = 0;
  std::uint64_t block = 1;
  std::uint64_t seed = 0;
  std::string mode;  // "single" | "supervised" | "campaign" | ...

  // Which fabric carried the run ("sim" | "shm").  Written to the header
  // only when non-empty, so traces from older writers stay byte-identical;
  // trace_inspect --diff strips it when comparing across backends.
  std::string transport;

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

void write_jsonl(std::ostream& os, const TraceMeta& meta, const Tracer& tracer);
void write_chrome(std::ostream& os, const TraceMeta& meta, const Tracer& tracer);

// Serialize to a file; ".json" picks the Chrome format, everything else
// JSONL.  Returns false and fills `error` on I/O failure.
bool write_trace_file(const std::string& path, const TraceMeta& meta,
                      const Tracer& tracer, std::string* error);

struct ParsedTrace {
  TraceMeta meta;
  std::vector<TraceEvent> events;
};

// Parse *and* schema-validate a JSONL trace: header first, known event
// kinds, node >= -2, spans with t1 >= t0, verdict events with a in {0, 1}.
// Returns nullopt and fills `error` (with a line number) on any violation.
std::optional<ParsedTrace> read_jsonl(std::istream& is, std::string* error);

// Structural validation of a Chrome trace_event export: one top-level object
// whose "traceEvents" array holds objects each carrying name/ph/ts/pid/tid.
// `events` (optional) receives the event count.
bool validate_chrome(std::istream& is, std::string* error,
                     std::size_t* events = nullptr);

// Validate either format, sniffing by content (Chrome starts with an object
// containing traceEvents; JSONL starts with the schema header line).
// `format`, when given, receives "jsonl" or "chrome".
bool validate_trace_file(const std::string& path, std::string* error,
                         std::string* format = nullptr,
                         std::size_t* events = nullptr);

// Human-readable per-stage digest of a parsed trace (trace_inspect
// --summary): stage spans, iteration marks, Φ verdicts, checkpoints, errors,
// plus run-level totals.
std::string summarize(const ParsedTrace& trace);

// Render a metrics registry as an aligned text block (CLI --trace output).
std::string format_metrics(const MetricsRegistry& m);

}  // namespace aoft::obs
