#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aoft::obs::json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> parse() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  std::optional<Value> fail(const std::string& what) {
    if (error_) *error_ = what + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    auto obj = std::make_shared<Object>();
    skip_ws();
    if (consume('}')) return Value{obj};
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected ':'");
      auto val = parse_value();
      if (!val) return std::nullopt;
      (*obj)[key->str()] = std::move(*val);
      if (consume(',')) continue;
      if (consume('}')) return Value{obj};
      return fail("expected ',' or '}'");
    }
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    auto arr = std::make_shared<Array>();
    skip_ws();
    if (consume(']')) return Value{arr};
    for (;;) {
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr->push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return Value{arr};
      return fail("expected ',' or ']'");
    }
  }

  std::optional<Value> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Value{{out}};
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Traces only escape control characters; encode as UTF-8 anyway.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  std::optional<Value> parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Value{{true}};
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Value{{false}};
    }
    return fail("bad literal");
  }

  std::optional<Value> parse_null() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Value{};
    }
    return fail("bad literal");
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return Value{{d}};
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, error).parse();
}

bool get_num(const Object& o, const char* key, double& out) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_number()) return false;
  out = it->second.num();
  return true;
}

bool get_str(const Object& o, const char* key, std::string& out) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_string()) return false;
  out = it->second.str();
  return true;
}

bool get_bool(const Object& o, const char* key, bool& out) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_bool()) return false;
  out = it->second.boolean();
  return true;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string shortest_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lg", &back);
  for (int prec = 1; prec <= 16; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    std::sscanf(shorter, "%lg", &back);
    if (back == v) return shorter;
  }
  return buf;
}

}  // namespace aoft::obs::json
