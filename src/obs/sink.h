// Thread-local observability sink: how instrumentation points find the
// current run's Tracer and MetricsRegistry without threading pointers through
// every signature.
//
// A sim::Machine run is single-threaded (one cooperative scheduler per OS
// thread), so binding the sink to the executing thread is exact: campaign
// workers bind one (tracer, registry) pair per slot around the scenario they
// execute, and nested runs (the supervisor re-entering run_sft) share the
// outer binding.
//
// Cost model: with nothing bound, an instrumentation point is one
// thread-local load and a branch — no virtual dispatch, no allocation.
// bench/campaign_throughput guards this (the disabled-path overhead must stay
// under 2%).

#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aoft::obs {

struct RunSink {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

namespace detail {
inline thread_local RunSink tls_sink;
}  // namespace detail

inline Tracer* tracer() { return detail::tls_sink.tracer; }
inline MetricsRegistry* metrics() { return detail::tls_sink.metrics; }
inline bool active() {
  return detail::tls_sink.tracer != nullptr ||
         detail::tls_sink.metrics != nullptr;
}

// RAII binder; restores the previous binding on destruction so nested scopes
// (supervisor attempts inside a CLI-level scope) compose.
class ScopedSink {
 public:
  ScopedSink(Tracer* t, MetricsRegistry* m) : prev_(detail::tls_sink) {
    detail::tls_sink = RunSink{t, m};
  }
  ~ScopedSink() { detail::tls_sink = prev_; }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  RunSink prev_;
};

// Where a predicate evaluation is happening.  The predicates
// (sort/predicates.cpp) are pure functions with no node identity; the caller
// (sort/sft.cpp) binds the protocol position around the call so the emitted
// verdict event carries (node, stage, iter, clock).
struct PredContext {
  std::int32_t node = kGlobal;
  std::int32_t stage = -1;
  std::int32_t iter = -1;
  double clock = 0.0;
};

namespace detail {
inline thread_local PredContext tls_pred;
}  // namespace detail

inline const PredContext& pred_context() { return detail::tls_pred; }

class ScopedPredContext {
 public:
  ScopedPredContext(std::int32_t node, std::int32_t stage, std::int32_t iter,
                    double clock) {
    if (active()) {
      set_ = true;
      prev_ = detail::tls_pred;
      detail::tls_pred = PredContext{node, stage, iter, clock};
    }
  }
  ~ScopedPredContext() {
    if (set_) detail::tls_pred = prev_;
  }
  ScopedPredContext(const ScopedPredContext&) = delete;
  ScopedPredContext& operator=(const ScopedPredContext&) = delete;

 private:
  bool set_ = false;
  PredContext prev_;
};

}  // namespace aoft::obs
