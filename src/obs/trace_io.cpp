#include "obs/trace_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "util/atomic_file.h"
#include "util/table.h"

namespace aoft::obs {

namespace {

using json::get_num;
using json::get_str;
using json::Object;

// ---- JSON writing -----------------------------------------------------------

void write_escaped(std::ostream& os, std::string_view s) {
  os << json::escape(s);
}

// Shortest round-trippable decimal: logical clocks are sums of cost-model
// terms, so the same run always prints the same bytes.
std::string fmt_ticks(double v) { return json::shortest_double(v); }

void write_event_jsonl(std::ostream& os, const TraceEvent& e) {
  os << "{\"k\":\"" << to_string(e.kind) << "\",\"n\":" << e.node
     << ",\"s\":" << e.stage << ",\"i\":" << e.iter << ",\"t0\":"
     << fmt_ticks(e.t0) << ",\"t1\":" << fmt_ticks(e.t1) << ",\"a\":" << e.a
     << ",\"b\":" << e.b;
  if (!e.detail.empty()) {
    os << ",\"d\":";
    write_escaped(os, e.detail);
  }
  os << "}\n";
}

// The JSON reader lives in obs/json.h (shared with tools/bench_check).

bool is_verdict(Ev e) {
  return e == Ev::kPhiP || e == Ev::kPhiF || e == Ev::kPhiC ||
         e == Ev::kPairCheck;
}

// ---- Chrome export helpers --------------------------------------------------

// chrome://tracing wants small non-negative thread ids; map the sentinel
// node ids above the cube's label space.
long chrome_tid(std::int32_t node) {
  if (node == kHostNode) return 1000000;
  if (node == kGlobal) return 1000001;
  return node;
}

std::string chrome_name(const TraceEvent& e) {
  std::string name = to_string(e.kind);
  if (e.stage >= 0) {
    name.append(" s");
    name.append(std::to_string(e.stage));
  }
  if (e.iter >= 0) {
    name.append(":");
    name.append(std::to_string(e.iter));
  }
  if (is_verdict(e.kind)) name.append(e.a != 0 ? " ok" : " FAIL");
  return name;
}

}  // namespace

void write_jsonl(std::ostream& os, const TraceMeta& meta, const Tracer& tracer) {
  os << "{\"schema\":\"" << kTraceSchema << "\",\"dim\":" << meta.dim
     << ",\"block\":" << meta.block << ",\"seed\":" << meta.seed
     << ",\"mode\":";
  write_escaped(os, meta.mode);
  if (!meta.transport.empty()) {
    os << ",\"transport\":";
    write_escaped(os, meta.transport);
  }
  os << ",\"events\":" << tracer.size() << "}\n";
  for (const auto& e : tracer.events()) write_event_jsonl(os, e);
}

void write_chrome(std::ostream& os, const TraceMeta& meta, const Tracer& tracer) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Thread-name metadata so Perfetto labels rows "node N" / "host".
  std::vector<std::int32_t> seen;
  for (const auto& e : tracer.events()) {
    if (std::find(seen.begin(), seen.end(), e.node) != seen.end()) continue;
    seen.push_back(e.node);
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << chrome_tid(e.node) << ",\"args\":{\"name\":";
    const std::string label = e.node == kHostNode ? "host"
                              : e.node == kGlobal ? "machine"
                              : "node " + std::to_string(e.node);
    write_escaped(os, label);
    os << "}}";
  }
  for (const auto& e : tracer.events()) {
    sep();
    os << "{\"name\":";
    write_escaped(os, chrome_name(e));
    os << ",\"cat\":\"" << to_string(e.kind) << "\",\"ph\":\""
       << (e.is_span() ? 'X' : 'i') << "\",\"ts\":" << fmt_ticks(e.t0);
    if (e.is_span()) os << ",\"dur\":" << fmt_ticks(e.t1 - e.t0);
    else os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << chrome_tid(e.node)
       << ",\"args\":{\"stage\":" << e.stage << ",\"iter\":" << e.iter
       << ",\"a\":" << e.a << ",\"b\":" << e.b;
    if (!e.detail.empty()) {
      os << ",\"detail\":";
      write_escaped(os, e.detail);
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\""
     << kTraceSchema << "\",\"dim\":" << meta.dim << ",\"block\":" << meta.block
     << ",\"seed\":" << meta.seed << ",\"mode\":";
  write_escaped(os, meta.mode);
  if (!meta.transport.empty()) {
    os << ",\"transport\":";
    write_escaped(os, meta.transport);
  }
  os << "}}\n";
}

bool write_trace_file(const std::string& path, const TraceMeta& meta,
                      const Tracer& tracer, std::string* error) {
  // Serialize fully in memory, then replace the destination atomically
  // (util/atomic_file.h): a crash mid-export must never leave a truncated
  // trace where a previous complete one stood.
  const bool chrome =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::ostringstream os;
  if (chrome)
    write_chrome(os, meta, tracer);
  else
    write_jsonl(os, meta, tracer);
  return util::write_file_atomic(path, os.str(), error);
}

std::optional<ParsedTrace> read_jsonl(std::istream& is, std::string* error) {
  auto fail = [&](std::size_t line, const std::string& what) {
    if (error) *error = "line " + std::to_string(line) + ": " + what;
    return std::nullopt;
  };

  std::string line;
  std::size_t lineno = 0;
  ParsedTrace out;
  bool have_header = false;
  std::int64_t declared_events = -1;

  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string perr;
    auto v = json::parse(line, &perr);
    if (!v) return fail(lineno, perr);
    if (!v->is_object()) return fail(lineno, "expected a JSON object");
    const auto& obj = v->object();

    if (!have_header) {
      std::string schema;
      if (!get_str(obj, "schema", schema) || schema != kTraceSchema)
        return fail(lineno, "missing or unknown schema header");
      double d = 0, b = 0, s = 0;
      if (!get_num(obj, "dim", d) || !get_num(obj, "block", b) ||
          !get_num(obj, "seed", s))
        return fail(lineno, "header missing dim/block/seed");
      out.meta.dim = static_cast<int>(d);
      out.meta.block = static_cast<std::uint64_t>(b);
      out.meta.seed = static_cast<std::uint64_t>(s);
      get_str(obj, "mode", out.meta.mode);
      get_str(obj, "transport", out.meta.transport);
      double ev_count = -1;
      if (get_num(obj, "events", ev_count))
        declared_events = static_cast<std::int64_t>(ev_count);
      have_header = true;
      continue;
    }

    TraceEvent e;
    std::string kind;
    if (!get_str(obj, "k", kind) || !ev_from_string(kind, e.kind))
      return fail(lineno, "missing or unknown event kind");
    double n = 0, s = 0, i = 0, t0 = 0, t1 = 0, a = 0, b = 0;
    if (!get_num(obj, "n", n) || !get_num(obj, "s", s) ||
        !get_num(obj, "i", i) || !get_num(obj, "t0", t0) ||
        !get_num(obj, "t1", t1) || !get_num(obj, "a", a) ||
        !get_num(obj, "b", b))
      return fail(lineno, "event missing a required field (n/s/i/t0/t1/a/b)");
    e.node = static_cast<std::int32_t>(n);
    e.stage = static_cast<std::int32_t>(s);
    e.iter = static_cast<std::int32_t>(i);
    e.t0 = t0;
    e.t1 = t1;
    e.a = static_cast<std::int64_t>(a);
    e.b = static_cast<std::int64_t>(b);
    get_str(obj, "d", e.detail);

    if (e.node < kGlobal) return fail(lineno, "node id below -2");
    if (e.t1 < e.t0) return fail(lineno, "span ends before it starts");
    if (e.t0 < 0.0) return fail(lineno, "negative timestamp");
    if (is_verdict(e.kind) && e.a != 0 && e.a != 1)
      return fail(lineno, "verdict payload must be 0 or 1");
    out.events.push_back(std::move(e));
  }

  if (!have_header) {
    if (error) *error = "empty file (no schema header)";
    return std::nullopt;
  }
  if (declared_events >= 0 &&
      declared_events != static_cast<std::int64_t>(out.events.size())) {
    if (error)
      *error = "header declares " + std::to_string(declared_events) +
               " events, file has " + std::to_string(out.events.size());
    return std::nullopt;
  }
  return out;
}

bool validate_chrome(std::istream& is, std::string* error,
                     std::size_t* events) {
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  std::string perr;
  auto v = json::parse(text, &perr);
  if (!v) {
    if (error) *error = perr;
    return false;
  }
  if (!v->is_object()) {
    if (error) *error = "top level is not an object";
    return false;
  }
  const auto& obj = v->object();
  auto it = obj.find("traceEvents");
  if (it == obj.end() || !it->second.is_array()) {
    if (error) *error = "missing traceEvents array";
    return false;
  }
  std::size_t count = 0;
  for (const auto& ev : it->second.array()) {
    if (!ev.is_object()) {
      if (error) *error = "traceEvents[" + std::to_string(count) + "] is not an object";
      return false;
    }
    const auto& eo = ev.object();
    std::string name, ph;
    double ts = 0, pid = 0, tid = 0;
    if (!get_str(eo, "name", name) || !get_str(eo, "ph", ph) ||
        !get_num(eo, "pid", pid) || !get_num(eo, "tid", tid)) {
      if (error)
        *error = "traceEvents[" + std::to_string(count) +
                 "] missing name/ph/pid/tid";
      return false;
    }
    // Metadata events (ph "M") carry no timestamp; everything else must.
    if (ph != "M" && !get_num(eo, "ts", ts)) {
      if (error)
        *error = "traceEvents[" + std::to_string(count) + "] missing ts";
      return false;
    }
    if (ph == "X") {
      double dur = 0;
      if (!get_num(eo, "dur", dur) || dur < 0) {
        if (error)
          *error = "traceEvents[" + std::to_string(count) +
                   "] complete event without non-negative dur";
        return false;
      }
    }
    ++count;
  }
  if (events) *events = count;
  return true;
}

bool validate_trace_file(const std::string& path, std::string* error,
                         std::string* format, std::size_t* events) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  // Sniff: a JSONL trace's first line contains the schema header; a Chrome
  // trace is one (possibly multi-line) object with traceEvents.
  std::string first;
  std::getline(is, first);
  is.seekg(0);
  if (first.find("\"schema\"") != std::string::npos &&
      first.find(kTraceSchema) != std::string::npos) {
    if (format) *format = "jsonl";
    auto parsed = read_jsonl(is, error);
    if (!parsed) return false;
    if (events) *events = parsed->events.size();
    return true;
  }
  if (format) *format = "chrome";
  return validate_chrome(is, error, events);
}

std::string summarize(const ParsedTrace& trace) {
  struct StageRow {
    std::uint64_t spans = 0, iters = 0;
    std::uint64_t phi_pass = 0, phi_fail = 0;
    std::uint64_t ckpts = 0, errors = 0;
    double max_t1 = 0.0;
  };
  std::map<int, StageRow> stages;
  std::uint64_t watchdog = 0, timeouts = 0, drops = 0, errors = 0;
  std::uint64_t scenarios = 0, attempts = 0;
  double elapsed = 0.0;
  // Worker placement plan (campaigns run with --pin): worker -> cpu / node.
  std::map<std::int64_t, std::int64_t> worker_cpu, worker_node;
  std::string placement_policy;

  for (const auto& e : trace.events) {
    elapsed = std::max(elapsed, e.t1);
    switch (e.kind) {
      case Ev::kStage: {
        auto& r = stages[e.stage];
        ++r.spans;
        r.max_t1 = std::max(r.max_t1, e.t1);
        break;
      }
      case Ev::kIter: ++stages[e.stage].iters; break;
      case Ev::kPhiP:
      case Ev::kPhiF:
      case Ev::kPhiC:
      case Ev::kPairCheck: {
        auto& r = stages[e.stage];
        if (e.a != 0) ++r.phi_pass;
        else ++r.phi_fail;
        break;
      }
      case Ev::kCkptUpload: ++stages[e.stage].ckpts; break;
      case Ev::kError:
        ++errors;
        if (e.stage >= 0) ++stages[e.stage].errors;
        break;
      case Ev::kWatchdogRound: ++watchdog; break;
      case Ev::kTimeout: ++timeouts; break;
      case Ev::kDrop: ++drops; break;
      case Ev::kScenario: ++scenarios; break;
      case Ev::kAttempt: ++attempts; break;
      case Ev::kWorkerCpu:
        worker_cpu[e.a] = e.b;
        if (placement_policy.empty()) placement_policy = e.detail;
        break;
      case Ev::kWorkerNode: worker_node[e.a] = e.b; break;
      default: break;
    }
  }

  std::ostringstream os;
  os << "trace: schema=" << kTraceSchema << " dim=" << trace.meta.dim
     << " block=" << trace.meta.block << " seed=" << trace.meta.seed
     << " mode=" << (trace.meta.mode.empty() ? "?" : trace.meta.mode);
  if (!trace.meta.transport.empty())
    os << " transport=" << trace.meta.transport;
  os << " events=" << trace.events.size() << "\n";
  if (!worker_cpu.empty()) {
    os << "placement: policy="
       << (placement_policy.empty() ? "?" : placement_policy)
       << " workers=" << worker_cpu.size();
    for (const auto& [worker, cpu] : worker_cpu) {
      os << " w" << worker << "->cpu" << cpu;
      const auto it = worker_node.find(worker);
      if (it != worker_node.end()) os << "/node" << it->second;
    }
    os << "\n";
  }
  util::Table table({"stage", "spans", "iters", "phi pass", "phi FAIL",
                     "ckpt", "errors", "max t1"});
  for (const auto& [stage, r] : stages)
    table.add_row({util::fmt_int(stage), util::fmt_int(static_cast<long long>(r.spans)),
                   util::fmt_int(static_cast<long long>(r.iters)),
                   util::fmt_int(static_cast<long long>(r.phi_pass)),
                   util::fmt_int(static_cast<long long>(r.phi_fail)),
                   util::fmt_int(static_cast<long long>(r.ckpts)),
                   util::fmt_int(static_cast<long long>(r.errors)),
                   util::fmt_double(r.max_t1, 1)});
  table.print(os);
  os << "totals: errors=" << errors << " watchdog_rounds=" << watchdog
     << " timeouts=" << timeouts << " drops=" << drops;
  if (scenarios > 0) os << " scenarios=" << scenarios;
  if (attempts > 0) os << " attempts=" << attempts;
  os << " elapsed=" << util::fmt_double(elapsed, 1) << " ticks\n";
  return os.str();
}

std::string format_metrics(const MetricsRegistry& m) {
  std::ostringstream os;
  os << "metrics:\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (m.get(c) == 0) continue;
    os << "  " << to_string(c) << " = " << m.get(c) << "\n";
  }
  if (!m.per_stage().empty()) {
    os << "  phi verdicts per stage:";
    for (std::size_t s = 0; s < m.per_stage().size(); ++s)
      os << " s" << s << "=" << m.per_stage()[s].pass << "/"
         << m.per_stage()[s].fail;
    os << " (pass/fail)\n";
  }
  if (m.msg_words().total() > 0)
    os << "  msg words: max=" << m.msg_words().max()
       << " msgs=" << m.msg_words().total() << "\n";
  if (m.queue_depth().total() > 0)
    os << "  queue depth: max=" << m.queue_depth().max() << "\n";
  return os.str();
}

}  // namespace aoft::obs
