#include "obs/trace_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <variant>

#include "util/table.h"

namespace aoft::obs {

namespace {

// ---- JSON writing -----------------------------------------------------------

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Shortest round-trippable decimal: logical clocks are sums of cost-model
// terms, so the same run always prints the same bytes.
std::string fmt_ticks(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lg", &back);
  for (int prec = 1; prec <= 16; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    std::sscanf(shorter, "%lg", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void write_event_jsonl(std::ostream& os, const TraceEvent& e) {
  os << "{\"k\":\"" << to_string(e.kind) << "\",\"n\":" << e.node
     << ",\"s\":" << e.stage << ",\"i\":" << e.iter << ",\"t0\":"
     << fmt_ticks(e.t0) << ",\"t1\":" << fmt_ticks(e.t1) << ",\"a\":" << e.a
     << ",\"b\":" << e.b;
  if (!e.detail.empty()) {
    os << ",\"d\":";
    write_escaped(os, e.detail);
  }
  os << "}\n";
}

// ---- minimal JSON reader ----------------------------------------------------
//
// Just enough JSON to read back what we (or a Chrome exporter) write:
// objects, arrays, strings with the common escapes, numbers, true/false/null.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const { return v.index() == 5; }
  bool is_array() const { return v.index() == 4; }
  bool is_string() const { return v.index() == 3; }
  bool is_number() const { return v.index() == 2; }
  const JsonObject& object() const { return *std::get<5>(v); }
  const JsonArray& array() const { return *std::get<4>(v); }
  const std::string& str() const { return std::get<3>(v); }
  double num() const { return std::get<2>(v); }
};

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  std::optional<JsonValue> fail(const std::string& what) {
    if (error_) *error_ = what + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return JsonValue{obj};
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected ':'");
      auto val = parse_value();
      if (!val) return std::nullopt;
      (*obj)[key->str()] = std::move(*val);
      if (consume(',')) continue;
      if (consume('}')) return JsonValue{obj};
      return fail("expected ',' or '}'");
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return JsonValue{arr};
    for (;;) {
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr->push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return JsonValue{arr};
      return fail("expected ',' or ']'");
    }
  }

  std::optional<JsonValue> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return JsonValue{{out}};
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Traces only escape control characters; encode as UTF-8 anyway.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue{{true}};
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue{{false}};
    }
    return fail("bad literal");
  }

  std::optional<JsonValue> parse_null() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return fail("bad literal");
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return JsonValue{{d}};
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text, error).parse();
}

bool get_num(const JsonObject& o, const char* key, double& out) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_number()) return false;
  out = it->second.num();
  return true;
}

bool get_str(const JsonObject& o, const char* key, std::string& out) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_string()) return false;
  out = it->second.str();
  return true;
}

bool is_verdict(Ev e) {
  return e == Ev::kPhiP || e == Ev::kPhiF || e == Ev::kPhiC ||
         e == Ev::kPairCheck;
}

// ---- Chrome export helpers --------------------------------------------------

// chrome://tracing wants small non-negative thread ids; map the sentinel
// node ids above the cube's label space.
long chrome_tid(std::int32_t node) {
  if (node == kHostNode) return 1000000;
  if (node == kGlobal) return 1000001;
  return node;
}

std::string chrome_name(const TraceEvent& e) {
  std::string name = to_string(e.kind);
  if (e.stage >= 0) {
    name.append(" s");
    name.append(std::to_string(e.stage));
  }
  if (e.iter >= 0) {
    name.append(":");
    name.append(std::to_string(e.iter));
  }
  if (is_verdict(e.kind)) name.append(e.a != 0 ? " ok" : " FAIL");
  return name;
}

}  // namespace

void write_jsonl(std::ostream& os, const TraceMeta& meta, const Tracer& tracer) {
  os << "{\"schema\":\"" << kTraceSchema << "\",\"dim\":" << meta.dim
     << ",\"block\":" << meta.block << ",\"seed\":" << meta.seed
     << ",\"mode\":";
  write_escaped(os, meta.mode);
  os << ",\"events\":" << tracer.size() << "}\n";
  for (const auto& e : tracer.events()) write_event_jsonl(os, e);
}

void write_chrome(std::ostream& os, const TraceMeta& meta, const Tracer& tracer) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Thread-name metadata so Perfetto labels rows "node N" / "host".
  std::vector<std::int32_t> seen;
  for (const auto& e : tracer.events()) {
    if (std::find(seen.begin(), seen.end(), e.node) != seen.end()) continue;
    seen.push_back(e.node);
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << chrome_tid(e.node) << ",\"args\":{\"name\":";
    const std::string label = e.node == kHostNode ? "host"
                              : e.node == kGlobal ? "machine"
                              : "node " + std::to_string(e.node);
    write_escaped(os, label);
    os << "}}";
  }
  for (const auto& e : tracer.events()) {
    sep();
    os << "{\"name\":";
    write_escaped(os, chrome_name(e));
    os << ",\"cat\":\"" << to_string(e.kind) << "\",\"ph\":\""
       << (e.is_span() ? 'X' : 'i') << "\",\"ts\":" << fmt_ticks(e.t0);
    if (e.is_span()) os << ",\"dur\":" << fmt_ticks(e.t1 - e.t0);
    else os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << chrome_tid(e.node)
       << ",\"args\":{\"stage\":" << e.stage << ",\"iter\":" << e.iter
       << ",\"a\":" << e.a << ",\"b\":" << e.b;
    if (!e.detail.empty()) {
      os << ",\"detail\":";
      write_escaped(os, e.detail);
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\""
     << kTraceSchema << "\",\"dim\":" << meta.dim << ",\"block\":" << meta.block
     << ",\"seed\":" << meta.seed << ",\"mode\":";
  write_escaped(os, meta.mode);
  os << "}}\n";
}

bool write_trace_file(const std::string& path, const TraceMeta& meta,
                      const Tracer& tracer, std::string* error) {
  std::ofstream os(path);
  if (!os) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool chrome =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (chrome)
    write_chrome(os, meta, tracer);
  else
    write_jsonl(os, meta, tracer);
  os.flush();
  if (!os) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::optional<ParsedTrace> read_jsonl(std::istream& is, std::string* error) {
  auto fail = [&](std::size_t line, const std::string& what) {
    if (error) *error = "line " + std::to_string(line) + ": " + what;
    return std::nullopt;
  };

  std::string line;
  std::size_t lineno = 0;
  ParsedTrace out;
  bool have_header = false;
  std::int64_t declared_events = -1;

  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string perr;
    auto v = parse_json(line, &perr);
    if (!v) return fail(lineno, perr);
    if (!v->is_object()) return fail(lineno, "expected a JSON object");
    const auto& obj = v->object();

    if (!have_header) {
      std::string schema;
      if (!get_str(obj, "schema", schema) || schema != kTraceSchema)
        return fail(lineno, "missing or unknown schema header");
      double d = 0, b = 0, s = 0;
      if (!get_num(obj, "dim", d) || !get_num(obj, "block", b) ||
          !get_num(obj, "seed", s))
        return fail(lineno, "header missing dim/block/seed");
      out.meta.dim = static_cast<int>(d);
      out.meta.block = static_cast<std::uint64_t>(b);
      out.meta.seed = static_cast<std::uint64_t>(s);
      get_str(obj, "mode", out.meta.mode);
      double ev_count = -1;
      if (get_num(obj, "events", ev_count))
        declared_events = static_cast<std::int64_t>(ev_count);
      have_header = true;
      continue;
    }

    TraceEvent e;
    std::string kind;
    if (!get_str(obj, "k", kind) || !ev_from_string(kind, e.kind))
      return fail(lineno, "missing or unknown event kind");
    double n = 0, s = 0, i = 0, t0 = 0, t1 = 0, a = 0, b = 0;
    if (!get_num(obj, "n", n) || !get_num(obj, "s", s) ||
        !get_num(obj, "i", i) || !get_num(obj, "t0", t0) ||
        !get_num(obj, "t1", t1) || !get_num(obj, "a", a) ||
        !get_num(obj, "b", b))
      return fail(lineno, "event missing a required field (n/s/i/t0/t1/a/b)");
    e.node = static_cast<std::int32_t>(n);
    e.stage = static_cast<std::int32_t>(s);
    e.iter = static_cast<std::int32_t>(i);
    e.t0 = t0;
    e.t1 = t1;
    e.a = static_cast<std::int64_t>(a);
    e.b = static_cast<std::int64_t>(b);
    get_str(obj, "d", e.detail);

    if (e.node < kGlobal) return fail(lineno, "node id below -2");
    if (e.t1 < e.t0) return fail(lineno, "span ends before it starts");
    if (e.t0 < 0.0) return fail(lineno, "negative timestamp");
    if (is_verdict(e.kind) && e.a != 0 && e.a != 1)
      return fail(lineno, "verdict payload must be 0 or 1");
    out.events.push_back(std::move(e));
  }

  if (!have_header) {
    if (error) *error = "empty file (no schema header)";
    return std::nullopt;
  }
  if (declared_events >= 0 &&
      declared_events != static_cast<std::int64_t>(out.events.size())) {
    if (error)
      *error = "header declares " + std::to_string(declared_events) +
               " events, file has " + std::to_string(out.events.size());
    return std::nullopt;
  }
  return out;
}

bool validate_chrome(std::istream& is, std::string* error,
                     std::size_t* events) {
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  std::string perr;
  auto v = parse_json(text, &perr);
  if (!v) {
    if (error) *error = perr;
    return false;
  }
  if (!v->is_object()) {
    if (error) *error = "top level is not an object";
    return false;
  }
  const auto& obj = v->object();
  auto it = obj.find("traceEvents");
  if (it == obj.end() || !it->second.is_array()) {
    if (error) *error = "missing traceEvents array";
    return false;
  }
  std::size_t count = 0;
  for (const auto& ev : it->second.array()) {
    if (!ev.is_object()) {
      if (error) *error = "traceEvents[" + std::to_string(count) + "] is not an object";
      return false;
    }
    const auto& eo = ev.object();
    std::string name, ph;
    double ts = 0, pid = 0, tid = 0;
    if (!get_str(eo, "name", name) || !get_str(eo, "ph", ph) ||
        !get_num(eo, "pid", pid) || !get_num(eo, "tid", tid)) {
      if (error)
        *error = "traceEvents[" + std::to_string(count) +
                 "] missing name/ph/pid/tid";
      return false;
    }
    // Metadata events (ph "M") carry no timestamp; everything else must.
    if (ph != "M" && !get_num(eo, "ts", ts)) {
      if (error)
        *error = "traceEvents[" + std::to_string(count) + "] missing ts";
      return false;
    }
    if (ph == "X") {
      double dur = 0;
      if (!get_num(eo, "dur", dur) || dur < 0) {
        if (error)
          *error = "traceEvents[" + std::to_string(count) +
                   "] complete event without non-negative dur";
        return false;
      }
    }
    ++count;
  }
  if (events) *events = count;
  return true;
}

bool validate_trace_file(const std::string& path, std::string* error,
                         std::string* format, std::size_t* events) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  // Sniff: a JSONL trace's first line contains the schema header; a Chrome
  // trace is one (possibly multi-line) object with traceEvents.
  std::string first;
  std::getline(is, first);
  is.seekg(0);
  if (first.find("\"schema\"") != std::string::npos &&
      first.find(kTraceSchema) != std::string::npos) {
    if (format) *format = "jsonl";
    auto parsed = read_jsonl(is, error);
    if (!parsed) return false;
    if (events) *events = parsed->events.size();
    return true;
  }
  if (format) *format = "chrome";
  return validate_chrome(is, error, events);
}

std::string summarize(const ParsedTrace& trace) {
  struct StageRow {
    std::uint64_t spans = 0, iters = 0;
    std::uint64_t phi_pass = 0, phi_fail = 0;
    std::uint64_t ckpts = 0, errors = 0;
    double max_t1 = 0.0;
  };
  std::map<int, StageRow> stages;
  std::uint64_t watchdog = 0, timeouts = 0, drops = 0, errors = 0;
  std::uint64_t scenarios = 0, attempts = 0;
  double elapsed = 0.0;

  for (const auto& e : trace.events) {
    elapsed = std::max(elapsed, e.t1);
    switch (e.kind) {
      case Ev::kStage: {
        auto& r = stages[e.stage];
        ++r.spans;
        r.max_t1 = std::max(r.max_t1, e.t1);
        break;
      }
      case Ev::kIter: ++stages[e.stage].iters; break;
      case Ev::kPhiP:
      case Ev::kPhiF:
      case Ev::kPhiC:
      case Ev::kPairCheck: {
        auto& r = stages[e.stage];
        if (e.a != 0) ++r.phi_pass;
        else ++r.phi_fail;
        break;
      }
      case Ev::kCkptUpload: ++stages[e.stage].ckpts; break;
      case Ev::kError:
        ++errors;
        if (e.stage >= 0) ++stages[e.stage].errors;
        break;
      case Ev::kWatchdogRound: ++watchdog; break;
      case Ev::kTimeout: ++timeouts; break;
      case Ev::kDrop: ++drops; break;
      case Ev::kScenario: ++scenarios; break;
      case Ev::kAttempt: ++attempts; break;
      default: break;
    }
  }

  std::ostringstream os;
  os << "trace: schema=" << kTraceSchema << " dim=" << trace.meta.dim
     << " block=" << trace.meta.block << " seed=" << trace.meta.seed
     << " mode=" << (trace.meta.mode.empty() ? "?" : trace.meta.mode)
     << " events=" << trace.events.size() << "\n";
  util::Table table({"stage", "spans", "iters", "phi pass", "phi FAIL",
                     "ckpt", "errors", "max t1"});
  for (const auto& [stage, r] : stages)
    table.add_row({util::fmt_int(stage), util::fmt_int(static_cast<long long>(r.spans)),
                   util::fmt_int(static_cast<long long>(r.iters)),
                   util::fmt_int(static_cast<long long>(r.phi_pass)),
                   util::fmt_int(static_cast<long long>(r.phi_fail)),
                   util::fmt_int(static_cast<long long>(r.ckpts)),
                   util::fmt_int(static_cast<long long>(r.errors)),
                   util::fmt_double(r.max_t1, 1)});
  table.print(os);
  os << "totals: errors=" << errors << " watchdog_rounds=" << watchdog
     << " timeouts=" << timeouts << " drops=" << drops;
  if (scenarios > 0) os << " scenarios=" << scenarios;
  if (attempts > 0) os << " attempts=" << attempts;
  os << " elapsed=" << util::fmt_double(elapsed, 1) << " ticks\n";
  return os.str();
}

std::string format_metrics(const MetricsRegistry& m) {
  std::ostringstream os;
  os << "metrics:\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (m.get(c) == 0) continue;
    os << "  " << to_string(c) << " = " << m.get(c) << "\n";
  }
  if (!m.per_stage().empty()) {
    os << "  phi verdicts per stage:";
    for (std::size_t s = 0; s < m.per_stage().size(); ++s)
      os << " s" << s << "=" << m.per_stage()[s].pass << "/"
         << m.per_stage()[s].fail;
    os << " (pass/fail)\n";
  }
  if (m.msg_words().total() > 0)
    os << "  msg words: max=" << m.msg_words().max()
       << " msgs=" << m.msg_words().total() << "\n";
  if (m.queue_depth().total() > 0)
    os << "  queue depth: max=" << m.queue_depth().max() << "\n";
  return os.str();
}

}  // namespace aoft::obs
