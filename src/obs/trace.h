// Structured run traces: the machine-readable execution record the paper's
// argument needs (Thm 3 is a claim about *what the system observed when it
// halted* — which Φ component fired, at which stage, on which node).
//
// A Tracer is a per-run append-only event log.  Instrumentation points across
// the stack emit into it:
//
//   sort/sft.cpp         — run begin/end, per-node stage spans, iteration
//                          marks, checkpoint uploads and certifications,
//   sort/predicates.cpp  — every Φ_P/Φ_F/Φ_C evaluation with its verdict,
//   sim/machine.cpp      — fail-stop error reports, dropped link messages,
//   sim/channel.cpp      — receive timeouts (watchdog fail-overs),
//   sim/scheduler.cpp    — watchdog rounds,
//   fault/supervisor.cpp — attempts, rollback/restart/reconfigure decisions,
//   fault/campaign.cpp   — per-slot scenario marks (merged in slot order).
//
// Timestamps are the simulation's *logical* clocks, so a trace is a pure
// function of (input, fault plan, seed): the determinism tests compare traces
// byte-for-byte across thread counts.  Tracing is disabled by default and
// must stay off the hot path: emission goes through a thread-local sink
// pointer (obs/sink.h) — a null check, no virtual dispatch, no allocation
// when no tracer is bound.
//
// Serialization (JSONL and Chrome trace_event) lives in obs/trace_io.h.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aoft::obs {

// Event kinds.  The JSONL schema (docs/PROTOCOL.md §9) encodes these by
// name, so renames are schema changes; additions are backward-compatible.
enum class Ev : std::uint8_t {
  kRunBegin,       // a=dim, b=block; stage=start stage (resume > 0)
  kRunEnd,         // t=elapsed ticks; a=#errors, b=watchdog rounds
  kStage,          // span: one node's stage [t0, t1]; stage=dim means the
                   // final pure-exchange verification round
  kIter,           // instant: compare-exchange iteration finished
  kPhiP,           // verdict: a=1 pass / 0 fail, b=position, detail=cause
  kPhiF,           // verdict, as kPhiP
  kPhiC,           // verdict, as kPhiP (one per merged message)
  kPairCheck,      // verdict: the passive partner's (a, b) exchange check
  kTimeout,        // a channel receive failed at quiescence (fail-over)
  kWatchdogRound,  // a=round number, b=receivers failed this round
  kError,          // fail-stop report: a=ErrorSource, detail=diagnostic
  kDrop,           // interceptor dropped a link message; a=dest, b=words
  kCkptUpload,     // a=1 representative slice / 0 digest, b=words
  kCkptCertify,    // host verdict on a stage checkpoint: a=certified,
                   //   b=windows agreed
  kAttempt,        // span: one supervised attempt; a=attempt, b=Rung,
                   //   detail=outcome
  kRollback,       // supervisor resumes from a checkpoint; a=resume stage
  kRestart,        // supervisor restarts from scratch
  kReconfigure,    // a=new dim, b=new block, detail=retired physical nodes
  kHostFallback,   // terminal host-sort rung entered
  kScenario,       // campaign slot attempt; a=slot, b=attempt, detail=class
  kWorkerCpu,      // campaign worker pin plan: a=worker, b=cpu (-1 unpinned),
                   //   detail=placement policy.  Environment metadata: these
                   //   describe *where* workers run, not what the run
                   //   computed, so trace_inspect --diff skips them.
  kWorkerNode,     // as kWorkerCpu, b=NUMA node of the planned pin
  kLink,           // one link message (transport cross-checks): node=sender
                   //   (kHostNode when from the host), a=receiver (kHostNode
                   //   when to the host), b packs
                   //   words<<16 | kind<<8 | delivered<<2 | to_host<<1
                   //   | from_host.  Emitted canonically sorted by the CLI's
                   //   --trace-links writer, not on the sim hot path.
};

const char* to_string(Ev e);
bool ev_from_string(std::string_view s, Ev& out);

// `node` values outside the cube's label space.
inline constexpr std::int32_t kHostNode = -1;  // the reliable host processor
inline constexpr std::int32_t kGlobal = -2;    // machine/supervisor scope

struct TraceEvent {
  Ev kind = Ev::kRunBegin;
  std::int32_t node = kGlobal;
  std::int32_t stage = -1;
  std::int32_t iter = -1;
  double t0 = 0.0;  // logical ticks
  double t1 = 0.0;  // == t0 for instants, >= t0 for spans
  std::int64_t a = 0;  // kind-specific payload (see enum comments)
  std::int64_t b = 0;
  std::string detail;

  bool is_span() const { return kind == Ev::kStage || kind == Ev::kAttempt; }
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(Tracer&&) = default;
  Tracer& operator=(Tracer&&) = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void emit(TraceEvent ev) { events_.push_back(std::move(ev)); }

  void instant(Ev kind, std::int32_t node, std::int32_t stage,
               std::int32_t iter, double t, std::int64_t a = 0,
               std::int64_t b = 0, std::string detail = {}) {
    emit(TraceEvent{kind, node, stage, iter, t, t, a, b, std::move(detail)});
  }

  void span(Ev kind, std::int32_t node, std::int32_t stage, double t0,
            double t1, std::int64_t a = 0, std::int64_t b = 0,
            std::string detail = {}) {
    emit(TraceEvent{kind, node, stage, -1, t0, t1, a, b, std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  // Steal `other`'s events onto the end of this log.  Campaigns keep one
  // Tracer per slot and append them in (class, slot) order, so the merged
  // trace is identical for every job count.
  void append(Tracer&& other);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace aoft::obs
