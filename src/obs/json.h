// Minimal JSON reader shared by the trace tooling (obs/trace_io.cpp) and the
// CI perf gate (tools/bench_check.cpp).
//
// Just enough JSON to read back what this repo writes: objects, arrays,
// strings with the common escapes, numbers, true/false/null.  Not a general
// parser — no streaming, no duplicate-key detection, numbers land in a
// double (exact for the 53-bit integers our files contain).

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace aoft::obs::json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Array>, std::shared_ptr<Object>>
      v = nullptr;

  bool is_null() const { return v.index() == 0; }
  bool is_bool() const { return v.index() == 1; }
  bool is_number() const { return v.index() == 2; }
  bool is_string() const { return v.index() == 3; }
  bool is_array() const { return v.index() == 4; }
  bool is_object() const { return v.index() == 5; }
  bool boolean() const { return std::get<1>(v); }
  double num() const { return std::get<2>(v); }
  const std::string& str() const { return std::get<3>(v); }
  const Array& array() const { return *std::get<4>(v); }
  const Object& object() const { return *std::get<5>(v); }
};

// Parse one complete JSON document.  Returns nullopt and fills `error`
// (with a byte offset) on malformed input or trailing characters.
std::optional<Value> parse(std::string_view text, std::string* error);

// Typed field accessors: true iff `key` exists with the matching type.
bool get_num(const Object& o, const char* key, double& out);
bool get_str(const Object& o, const char* key, std::string& out);
bool get_bool(const Object& o, const char* key, bool& out);

// ---- canonical writing helpers ---------------------------------------------
// Shared by the trace serializer (obs/trace_io.cpp) and the campaign slot
// stream (fault/campaign_store.cpp): both formats promise that equal runs
// serialize to equal bytes, so string escaping and double formatting must be
// identical everywhere.

// `s` as a quoted JSON string with the common escapes.
std::string escape(std::string_view s);

// Shortest decimal that round-trips to the same double, so canonical files
// never differ in trailing digits.
std::string shortest_double(double v);

}  // namespace aoft::obs::json
